#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "compress/bdi.hh"
#include "compress/chain.hh"

namespace exma {
namespace {

std::vector<u8>
lineFromU64(const std::vector<u64> &vals)
{
    std::vector<u8> line(kLineBytes, 0);
    for (size_t i = 0; i < vals.size() && i < 8; ++i)
        std::memcpy(line.data() + i * 8, &vals[i], 8);
    return line;
}

TEST(Bdi, ZeroLineIsOneByte)
{
    std::vector<u8> line(kLineBytes, 0);
    EXPECT_EQ(bdiLineSize(line), 1u);
}

TEST(Bdi, RepeatedValueIsEightBytes)
{
    auto line = lineFromU64({7, 7, 7, 7, 7, 7, 7, 7});
    EXPECT_EQ(bdiLineSize(line), 8u);
}

TEST(Bdi, NarrowDeltasCompressWell)
{
    auto line = lineFromU64({1000, 1003, 1001, 1002, 1005, 1004, 1000,
                             1006});
    // base8-delta1: 8 + 1 + 8 = 17 bytes.
    EXPECT_EQ(bdiLineSize(line), 17u);
}

TEST(Bdi, RandomLineIncompressible)
{
    Rng rng(1);
    std::vector<u8> line(kLineBytes);
    for (auto &b : line)
        b = static_cast<u8>(rng.below(256));
    EXPECT_EQ(bdiLineSize(line), kLineBytes);
}

TEST(Bdi, RoundTripBase8)
{
    auto line = lineFromU64({5000, 5100, 4950, 5001, 5200, 5111, 4999,
                             5050});
    for (int w : {2, 4}) {
        auto blob = bdiEncodeBase8(line, w);
        ASSERT_FALSE(blob.empty());
        EXPECT_EQ(bdiDecodeBase8(blob, w), line);
    }
}

TEST(Bdi, EncodeRejectsWideDeltas)
{
    auto line = lineFromU64({0, u64{1} << 40, 0, 0, 0, 0, 0, 0});
    EXPECT_TRUE(bdiEncodeBase8(line, 1).empty());
}

TEST(Bdi, BufferRatioAboutHalfOnSpecLikeData)
{
    // §IV.C.4: "B∆I typically reduces data size ... by ~50%".
    // Model SPEC-like data: pointers sharing a base with word noise.
    Rng rng(2);
    std::vector<u8> data;
    for (int l = 0; l < 2000; ++l) {
        u64 base = 0x7f0000000000ULL + (rng.below(1u << 20) << 12);
        std::vector<u64> vals(8);
        for (auto &v : vals)
            v = rng.bernoulli(0.5) ? base + rng.below(1 << 14)
                                   : rng.below(1 << 10);
        auto line = lineFromU64(vals);
        data.insert(data.end(), line.begin(), line.end());
    }
    const double ratio = bdiCompressRatio(data);
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 0.7);
}

TEST(Chain, SortedLineCompressesToQuarter)
{
    // 16 sorted u32 with small gaps: 1 + 4 + 15 = 20 bytes vs 64.
    std::vector<u32> vals;
    u32 v = 1000;
    for (int i = 0; i < 16; ++i)
        vals.push_back(v += 3);
    EXPECT_EQ(chainLineSize(vals), 20u);
    EXPECT_LT(chainCompressRatio(vals), 0.35);
}

TEST(Chain, MediumGapsUseTwoByteDeltas)
{
    std::vector<u32> vals;
    u32 v = 0;
    for (int i = 0; i < 16; ++i)
        vals.push_back(v += 1000);
    EXPECT_EQ(chainLineSize(vals), 1u + 4u + 15u * 2u);
}

TEST(Chain, HugeGapsFallBackToRaw)
{
    std::vector<u32> vals;
    u32 v = 0;
    for (int i = 0; i < 16; ++i)
        vals.push_back(v += (1u << 26));
    EXPECT_EQ(chainLineSize(vals), 64u);
}

TEST(Chain, RoundTrip)
{
    Rng rng(3);
    u32 v = 0;
    std::vector<u32> vals;
    for (int i = 0; i < 16; ++i)
        vals.push_back(v += static_cast<u32>(rng.below(300)));
    auto blob = chainEncode(vals);
    EXPECT_EQ(chainDecode(blob), vals);
    EXPECT_EQ(blob.size(), chainLineSize(vals));
}

TEST(Chain, RoundTripPartialLine)
{
    std::vector<u32> vals = {10, 20, 25};
    auto blob = chainEncode(vals);
    EXPECT_EQ(chainDecode(blob), vals);
}

TEST(Chain, BeatsBdiOnSortedIncrements)
{
    // The paper's headline: CHAIN ≈ 25% on EXMA data where B∆I ≈ 50%.
    Rng rng(4);
    std::vector<u32> vals;
    u32 v = 0;
    for (int i = 0; i < 16000; ++i)
        vals.push_back(v += static_cast<u32>(1 + rng.below(120)));
    const double chain = chainCompressRatio(vals);
    std::vector<u8> raw(vals.size() * 4);
    std::memcpy(raw.data(), vals.data(), raw.size());
    const double bdi = bdiCompressRatio(raw);
    EXPECT_LT(chain, 0.40);
    EXPECT_LT(chain, bdi);
}

TEST(Chain, AdderOpsPerLine)
{
    std::vector<u32> vals(16);
    for (size_t i = 0; i < 16; ++i)
        vals[i] = static_cast<u32>(i);
    EXPECT_EQ(chainDecodeAdderOps(vals), 15u);
    EXPECT_EQ(chainDecodeAdderOps({}), 0u);
}

} // namespace
} // namespace exma
