#include <gtest/gtest.h>

#include "baselines/cpu_model.hh"
#include "baselines/device_models.hh"

namespace exma {
namespace {

const u64 kFootprint = u64{1} << 28; // 256 MB scaled data image

TEST(ChainWorkload, CompletesAllIterations)
{
    ChainSpec spec = asicFm1Spec(kFootprint);
    spec.iterations = 2000;
    auto r = runChainWorkload(spec, DramConfig::ddr4_2400());
    EXPECT_EQ(r.symbols, 2000u);
    EXPECT_GT(r.elapsed, 0u);
}

TEST(ChainWorkload, MoreWorkersMoreThroughput)
{
    ChainSpec a = asicFm1Spec(kFootprint);
    a.iterations = 4000;
    ChainSpec b = a;
    b.workers = a.workers * 8;
    auto ra = runChainWorkload(a, DramConfig::ddr4_2400());
    auto rb = runChainWorkload(b, DramConfig::ddr4_2400());
    EXPECT_GT(rb.mbasesPerSecond(), ra.mbasesPerSecond() * 2);
}

TEST(ChainWorkload, MedalBeatsAsic)
{
    // Chip-level parallelism with hundreds of chips outruns a
    // whole-rank FM-1 ASIC despite the shared command bus.
    ChainSpec asic = asicFm1Spec(kFootprint);
    asic.iterations = 4000;
    ChainSpec medal = medalSpec(kFootprint);
    medal.iterations = 20000;
    auto ra = runChainWorkload(asic, DramConfig::ddr4_2400());
    auto rm = runChainWorkload(medal, DramConfig::ddr4_2400());
    EXPECT_GT(rm.mbasesPerSecond(), ra.mbasesPerSecond() * 1.5);
}

TEST(ChainWorkload, MedalIsCommandBusLimited)
{
    // MEDAL's chips could saturate the data lanes, but every access
    // spends two slots on the shared address bus (Fig. 7), capping
    // utilisation well below 100% yet far above the ASIC's.
    ChainSpec medal = medalSpec(kFootprint);
    medal.iterations = 20000;
    auto rm = runChainWorkload(medal, DramConfig::ddr4_2400());
    EXPECT_LT(rm.bw_util, 0.92);
    EXPECT_GT(rm.bw_util, 0.25);

    ChainSpec asic = asicFm1Spec(kFootprint);
    asic.iterations = 4000;
    auto ra = runChainWorkload(asic, DramConfig::ddr4_2400());
    EXPECT_GT(rm.bw_util, ra.bw_util);
}

TEST(ChainWorkload, FinderInternalHitsReduceDramTraffic)
{
    ChainSpec ext = finderSpec(kFootprint, 0);
    ext.iterations = 3000;
    ChainSpec mixed = finderSpec(kFootprint, kFootprint / 2);
    mixed.iterations = 3000;
    auto re = runChainWorkload(ext, DramConfig::ddr4_2400());
    auto rm = runChainWorkload(mixed, DramConfig::ddr4_2400());
    EXPECT_LT(rm.dram.reads, re.dram.reads);
}

TEST(ChainWorkload, DeviceOrderingMatchesPaper)
{
    // Table II shape on the shared DDR4 substrate: MEDAL > FPGA > ASIC
    // for search throughput; GPU (row-fetching LISA) above ASIC.
    const DramConfig mem = DramConfig::ddr4_2400();
    ChainSpec asic = asicFm1Spec(kFootprint);
    asic.iterations = 4000;
    ChainSpec fpga = fpgaFm2Spec(kFootprint);
    fpga.iterations = 6000;
    ChainSpec medal = medalSpec(kFootprint);
    medal.iterations = 20000;
    ChainSpec gpu = gpuLisaSpec(kFootprint, 21, 4.0);
    gpu.iterations = 4000;
    auto ra = runChainWorkload(asic, mem);
    auto rf = runChainWorkload(fpga, mem);
    auto rm = runChainWorkload(medal, mem);
    auto rg = runChainWorkload(gpu, mem);
    EXPECT_GT(rf.mbasesPerSecond(), ra.mbasesPerSecond());
    EXPECT_GT(rm.mbasesPerSecond(), rf.mbasesPerSecond());
    EXPECT_GT(rg.mbasesPerSecond(), ra.mbasesPerSecond());
}

TEST(ChainWorkload, MemPowerInPlausibleRange)
{
    ChainSpec spec = cpuFm1Spec(kFootprint);
    spec.iterations = 3000;
    auto r = runChainWorkload(spec, DramConfig::ddr4_2400());
    EXPECT_GT(r.mem_power_w, 40.0);
    EXPECT_LT(r.mem_power_w, 120.0);
}

TEST(CpuModel, AccessLatencyGrowsWithFootprint)
{
    EXPECT_LT(cpuAccessNs(3.4), cpuAccessNs(29.0));
    EXPECT_LT(cpuAccessNs(29.0), cpuAccessNs(374.0));
    EXPECT_DOUBLE_EQ(cpuAccessNs(2.0), 75.0);
}

TEST(CpuModel, PaperCalibrationPoints)
{
    // LISA-21 ≈ 2.15x over FM-1 (human: 29 GB, ~3K mean error).
    CpuScheme lisa{"LISA-21", 21, 29.0, 0.6, 3000.0, false, false};
    const double t = cpuNormalizedThroughput(lisa);
    EXPECT_GT(t, 1.6);
    EXPECT_LT(t, 3.2);

    // LISA-21P (perfect index) ≈ 5.1x.
    CpuScheme p = lisa;
    p.perfect_index = true;
    const double tp = cpuNormalizedThroughput(p);
    EXPECT_GT(tp, 3.5);
    EXPECT_LT(tp, 7.0);

    // LISA-21PC (perfect index + cache) ≈ 8.53x.
    CpuScheme pc = p;
    pc.perfect_cache = true;
    const double tpc = cpuNormalizedThroughput(pc);
    EXPECT_GT(tpc, 6.5);
    EXPECT_LT(tpc, 11.0);

    EXPECT_LT(t, tp);
    EXPECT_LT(tp, tpc);
}

TEST(CpuModel, KStepGainsAreModest)
{
    // Fig. 6d: FM-5's huge table caps its gain near 1.2x.
    CpuScheme fm5{"FM-5", 5, 105.0, 0.0, 0.0, false, false};
    const double t5 = cpuNormalizedThroughput(fm5);
    EXPECT_GT(t5, 0.8);
    EXPECT_LT(t5, 2.2);

    CpuScheme fm6{"FM-6", 6, 374.0, 0.0, 0.0, false, false};
    EXPECT_LT(cpuNormalizedThroughput(fm6) / t5, 1.25);
}

TEST(CpuModel, ExmaFifteenBeatsLisa)
{
    // Fig. 10b: EXMA-15M ≈ 1.75x LISA-21 on the CPU baseline.
    CpuScheme lisa{"LISA-21", 21, 29.0, 0.6, 3000.0, false, false};
    CpuScheme exma{"EXMA-15M", 15, 29.5, 0.3, 120.0, false, false};
    const double ratio = cpuNormalizedThroughput(exma) /
                         cpuNormalizedThroughput(lisa);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 2.4);
}

} // namespace
} // namespace exma
