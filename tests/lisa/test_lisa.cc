#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/suffix_array.hh"
#include "genome/reference.hh"
#include "lisa/lisa.hh"

namespace exma {
namespace {

std::vector<Base>
randomSeq(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> s(len);
    for (auto &b : s)
        b = static_cast<Base>(rng.below(4));
    return s;
}

TEST(IpBwt, EntriesAreSorted)
{
    auto ref = randomSeq(2000, 1);
    IpBwt ip(ref, 4);
    for (u64 i = 0; i + 1 < ip.rows(); ++i) {
        const bool lt = ip.kmer5(i) < ip.kmer5(i + 1) ||
                        (ip.kmer5(i) == ip.kmer5(i + 1) &&
                         ip.pairedRow(i) < ip.pairedRow(i + 1));
        ASSERT_TRUE(lt) << "at " << i;
    }
}

TEST(IpBwt, PaperExampleRowZero)
{
    // Fig. 5(a): for G = CATAGA and k = 2, the row 0 of the IP-BWT is
    // [$C, 3]: row 0 of the BW-matrix is $CATAGA; swapping the first 2
    // and last 5 symbols gives ATAGA$C = BW-matrix row 3.
    auto ref = encodeSeq("CATAGA");
    IpBwt ip(ref, 2);
    // $C in base-5 coding: $=0, C=2 -> 0*5+2 = 2.
    EXPECT_EQ(ip.kmer5(0), 2u);
    EXPECT_EQ(ip.pairedRow(0), 3u);
}

TEST(IpBwt, PairedRowsFormPermutation)
{
    auto ref = randomSeq(1500, 3);
    IpBwt ip(ref, 3);
    std::vector<bool> seen(ip.rows(), false);
    for (u64 i = 0; i < ip.rows(); ++i) {
        ASSERT_LT(ip.pairedRow(i), ip.rows());
        ASSERT_FALSE(seen[ip.pairedRow(i)]);
        seen[ip.pairedRow(i)] = true;
    }
}

class IpBwtSearchTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IpBwtSearchTest, SearchEqualsFmIndex)
{
    const int k = GetParam();
    auto ref = randomSeq(3000, 40 + static_cast<u64>(k));
    auto sa = buildSuffixArray(ref);
    FmIndex fm(ref, sa);
    IpBwt ip(ref, sa, k);
    Rng rng(50 + static_cast<u64>(k));
    for (int t = 0; t < 120; ++t) {
        const u64 len = 1 + rng.below(30);
        std::vector<Base> q;
        if (t % 2 == 0 && len <= ref.size()) {
            const u64 pos = rng.below(ref.size() - len + 1);
            q.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
        } else {
            q.resize(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
        }
        const Interval expect = fm.search(q);
        const Interval got = ip.search(q);
        if (expect.empty())
            EXPECT_TRUE(got.empty()) << "k=" << k << " t=" << t;
        else
            EXPECT_EQ(got, expect) << "k=" << k << " t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Steps, IpBwtSearchTest,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(IpBwt, IterationsPerSearch)
{
    auto ref = randomSeq(500, 5);
    IpBwt ip(ref, 4);
    EXPECT_EQ(ip.iterationsFor(16), 4u);
    EXPECT_EQ(ip.iterationsFor(17), 5u);
    EXPECT_EQ(ip.iterationsFor(3), 1u);
}

TEST(Lisa, LearnedSearchEqualsBinarySearch)
{
    auto ref = randomSeq(6000, 7);
    auto sa = buildSuffixArray(ref);
    FmIndex fm(ref, sa);
    IpBwt ip(ref, sa, 5);
    Lisa::Config cfg;
    cfg.group_symbols = 3;
    cfg.leaf_size = 64;
    Lisa lisa(ip, cfg);
    Rng rng(8);
    for (int t = 0; t < 100; ++t) {
        const u64 len = 1 + rng.below(25);
        std::vector<Base> q(len);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
        const Interval expect = fm.search(q);
        const Interval got = lisa.search(q);
        if (expect.empty())
            EXPECT_TRUE(got.empty()) << "t=" << t;
        else
            EXPECT_EQ(got, expect) << "t=" << t;
    }
}

TEST(Lisa, StatsAccumulatePerIteration)
{
    auto ref = randomSeq(4000, 9);
    IpBwt ip(ref, 4);
    Lisa lisa(ip, {});
    LisaStats stats;
    // 12 symbols = 3 chunks = 6 lower-bound queries (low+high each).
    auto q = randomSeq(12, 10);
    lisa.search(q, &stats);
    EXPECT_LE(stats.iterations, 6u);
    EXPECT_GE(stats.iterations, 2u); // may stop early on empty interval
    EXPECT_EQ(stats.error_samples.size(), stats.iterations);
}

TEST(Lisa, ParamCountGrowsWithFinerLeaves)
{
    auto ref = randomSeq(8000, 11);
    IpBwt ip(ref, 8);
    Lisa::Config coarse, fine;
    // Few radix groups so each group holds many entries and the leaf
    // granularity actually matters.
    coarse.group_symbols = 2;
    fine.group_symbols = 2;
    coarse.leaf_size = 4096;
    fine.leaf_size = 64;
    Lisa a(ip, coarse), b(ip, fine);
    EXPECT_GT(b.paramCount(), a.paramCount());
}

TEST(Lisa, PartialChunkOnlyQuery)
{
    // Query shorter than k exercises only the padded path.
    auto ref = randomSeq(2000, 13);
    auto sa = buildSuffixArray(ref);
    FmIndex fm(ref, sa);
    IpBwt ip(ref, sa, 8);
    Lisa lisa(ip, {});
    Rng rng(14);
    for (int t = 0; t < 50; ++t) {
        const u64 len = 1 + rng.below(7);
        std::vector<Base> q(len);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
        EXPECT_EQ(lisa.search(q).count(), fm.search(q).count());
    }
}

} // namespace
} // namespace exma
