#include <gtest/gtest.h>

#include <algorithm>

#include "batch/batch_searcher.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

const std::vector<Base> &
testRef()
{
    static const std::vector<Base> ref = [] {
        ReferenceSpec spec;
        spec.length = 1 << 16;
        spec.repeat_fraction = 0.5;
        spec.seed = 77;
        return generateReference(spec);
    }();
    return ref;
}

ExmaTable::Config
cfgFor(OccIndexMode mode, int k = 4)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = mode;
    cfg.mtl.epochs = 15;
    cfg.mtl.samples_per_class = 1024;
    cfg.naive.epochs = 8;
    return cfg;
}

const ExmaTable &
mtlTable()
{
    static const ExmaTable table(testRef(), cfgFor(OccIndexMode::Mtl));
    return table;
}

/**
 * A randomized query mix: mostly substrings of the reference (hits,
 * various lengths so the k-step/1-step split varies), plus pure-random
 * queries that mostly miss, plus a couple of degenerate lengths.
 */
std::vector<std::vector<Base>>
randomQueries(u64 count, u64 seed)
{
    const auto &ref = testRef();
    Rng rng(seed);
    std::vector<std::vector<Base>> qs;
    qs.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        const u64 len = 3 + rng.below(60);
        std::vector<Base> q;
        if (i % 4 != 3 && len <= ref.size()) {
            const u64 pos = rng.below(ref.size() - len + 1);
            q.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
        } else {
            q.resize(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
        }
        qs.push_back(std::move(q));
    }
    return qs;
}

/** Sequential ground truth straight through ExmaTable::search. */
std::pair<std::vector<Interval>, SearchStats>
sequentialReference(const ExmaTable &table,
                    const std::vector<std::vector<Base>> &qs)
{
    std::vector<Interval> ivs;
    ivs.reserve(qs.size());
    SearchStats stats;
    for (const auto &q : qs)
        ivs.push_back(table.search(q, &stats));
    return {ivs, stats};
}

TEST(BatchSearcher, EmptyBatch)
{
    BatchSearcher bs(mtlTable());
    const BatchResult r = bs.search({});
    EXPECT_TRUE(r.intervals.empty());
    EXPECT_EQ(r.queries, 0u);
    EXPECT_EQ(r.bases, 0u);
    EXPECT_EQ(r.stats, SearchStats{});
}

TEST(BatchSearcher, BitIdenticalToSequentialAcrossThreadCounts)
{
    const ExmaTable &table = mtlTable();
    const auto qs = randomQueries(300, 9);
    const auto [expect_ivs, expect_stats] = sequentialReference(table, qs);

    for (unsigned threads : {1u, 2u, 8u}) {
        BatchConfig cfg;
        cfg.threads = threads;
        cfg.grain = 7; // deliberately not a divisor of the batch size
        const BatchResult r = BatchSearcher(table, cfg).search(qs);
        EXPECT_EQ(r.intervals, expect_ivs) << "threads=" << threads;
        EXPECT_EQ(r.stats, expect_stats) << "threads=" << threads;
        EXPECT_EQ(r.queries, qs.size());
    }
}

TEST(BatchSearcher, AllOccModesMatchSequential)
{
    for (const OccIndexMode mode :
         {OccIndexMode::Exact, OccIndexMode::NaiveLearned,
          OccIndexMode::Mtl}) {
        const ExmaTable table(testRef(), cfgFor(mode));
        const auto qs = randomQueries(120, 31);
        const auto [expect_ivs, expect_stats] =
            sequentialReference(table, qs);
        BatchConfig cfg;
        cfg.threads = 8;
        cfg.grain = 5;
        const BatchResult r = BatchSearcher(table, cfg).search(qs);
        EXPECT_EQ(r.intervals, expect_ivs);
        EXPECT_EQ(r.stats, expect_stats);
    }
}

TEST(BatchSearcher, PerThreadStatsMergeToTotal)
{
    BatchConfig cfg;
    cfg.threads = 8;
    cfg.grain = 3;
    const auto qs = randomQueries(200, 13);
    const BatchResult r = BatchSearcher(mtlTable(), cfg).search(qs);
    SearchStats merged;
    for (const SearchStats &s : r.per_thread)
        merged += s;
    EXPECT_EQ(merged, r.stats);
    EXPECT_EQ(r.per_thread.size(), parallelForSlots(8));
}

TEST(BatchSearcher, PerQueryStatsSumToTotal)
{
    BatchConfig cfg;
    cfg.threads = 2;
    cfg.per_query_stats = true;
    const auto qs = randomQueries(150, 21);
    const ExmaTable &table = mtlTable();
    const BatchResult r = BatchSearcher(table, cfg).search(qs);
    ASSERT_EQ(r.per_query.size(), qs.size());
    SearchStats sum;
    for (const SearchStats &s : r.per_query)
        sum += s;
    EXPECT_EQ(sum, r.stats);
    // And each per-query record equals a lone sequential search.
    for (size_t i = 0; i < qs.size(); i += 37) {
        SearchStats lone;
        table.search(qs[i], &lone);
        EXPECT_EQ(r.per_query[i], lone) << "i=" << i;
    }
}

TEST(BatchSearcher, LocateResolvesIntervalsToSortedPositions)
{
    const ExmaTable &table = mtlTable();
    const auto qs = randomQueries(80, 17);
    BatchConfig cfg;
    cfg.threads = 4;
    cfg.locate = true;
    const BatchResult r = BatchSearcher(table, cfg).search(qs);
    ASSERT_EQ(r.positions.size(), qs.size());
    for (size_t i = 0; i < qs.size(); ++i) {
        auto expect = table.locateAll(r.intervals[i]);
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(r.positions[i], expect) << "i=" << i;
        EXPECT_EQ(r.positions[i].size(), r.intervals[i].count());
    }
    // Off by default: no positions vector is filled.
    const BatchResult plain = BatchSearcher(table).search(qs);
    EXPECT_TRUE(plain.positions.empty());
}

TEST(BatchSearcher, LocateLimitCapsPositions)
{
    const ExmaTable &table = mtlTable();
    const auto qs = randomQueries(60, 29);
    BatchConfig cfg;
    cfg.locate = true;
    cfg.locate_limit = 2;
    const BatchResult r = BatchSearcher(table, cfg).search(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_LE(r.positions[i].size(), 2u);
        // The capped set is a genuine subset of the full hit set
        // (SA-row-order truncation, sorted afterwards — see
        // BatchConfig::locate_limit).
        auto full = table.locateAll(r.intervals[i]);
        std::sort(full.begin(), full.end());
        EXPECT_TRUE(std::includes(full.begin(), full.end(),
                                  r.positions[i].begin(),
                                  r.positions[i].end()))
            << "i=" << i;
    }
}

TEST(BatchSearcher, CountsBases)
{
    const auto qs = randomQueries(50, 3);
    u64 bases = 0;
    for (const auto &q : qs)
        bases += q.size();
    const BatchResult r = BatchSearcher(mtlTable()).search(qs);
    EXPECT_EQ(r.bases, bases);
    EXPECT_GE(r.seconds, 0.0);
}

TEST(BatchSearcher, SubsetSearchAlignsResultsWithIds)
{
    // The routed fan-out path: a shard worker serves only its ids out
    // of a shared batch, results index-aligned with the id list.
    const auto qs = randomQueries(60, 9);
    BatchConfig cfg;
    cfg.locate = true;
    cfg.per_query_stats = true;
    const BatchSearcher searcher(mtlTable(), cfg);
    const BatchResult full = searcher.search(qs);

    // Scattered, unordered, with a duplicate.
    const std::vector<u32> ids = {57, 3, 3, 41, 0, 12, 59, 28};
    const BatchResult sub = searcher.search(qs, ids);
    ASSERT_EQ(sub.queries, ids.size());
    ASSERT_EQ(sub.intervals.size(), ids.size());
    ASSERT_EQ(sub.positions.size(), ids.size());
    u64 bases = 0;
    for (size_t j = 0; j < ids.size(); ++j) {
        EXPECT_EQ(sub.intervals[j], full.intervals[ids[j]]) << "j=" << j;
        EXPECT_EQ(sub.positions[j], full.positions[ids[j]]) << "j=" << j;
        EXPECT_EQ(sub.per_query[j], full.per_query[ids[j]]) << "j=" << j;
        bases += qs[ids[j]].size();
    }
    EXPECT_EQ(sub.bases, bases);

    // Per-id stats sum to the subset total.
    SearchStats merged;
    for (const SearchStats &s : sub.per_query)
        merged += s;
    EXPECT_EQ(merged, sub.stats);
}

TEST(BatchSearcher, SubsetSearchEmptyIds)
{
    const auto qs = randomQueries(10, 21);
    const BatchResult r = BatchSearcher(mtlTable()).search(qs, {});
    EXPECT_EQ(r.queries, 0u);
    EXPECT_TRUE(r.intervals.empty());
    EXPECT_EQ(r.stats, SearchStats{});
}

TEST(BatchSearcher, SegmentedTableLocatesGlobalPositions)
{
    // A two-segment sub-reference: BatchSearcher's locate path must
    // report translated global coordinates with junction artifacts
    // dropped (ExmaTable::locateAllGlobal), not local positions.
    const auto &ref = testRef();
    const std::vector<TextSegment> segs = {
        {100, 0, 400}, {5000, 400, 400}};
    const ExmaTable seg_table(ref, segs, cfgFor(OccIndexMode::Exact));
    ASSERT_TRUE(seg_table.segmented());
    const ExmaTable &whole = mtlTable();

    // Queries sampled inside each segment: every hit the segmented
    // table reports must be a genuine whole-reference hit, and the
    // planted position must be among them.
    Rng rng(4);
    for (int rep = 0; rep < 30; ++rep) {
        const u64 len = 8 + rng.below(12);
        const TextSegment &seg = segs[rep % 2];
        const u64 pos = seg.global_begin + rng.below(seg.length - len);
        const std::vector<Base> q(
            ref.begin() + static_cast<std::ptrdiff_t>(pos),
            ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
        BatchConfig cfg;
        cfg.locate = true;
        const BatchResult r = BatchSearcher(seg_table, cfg).search({q});
        auto expect = whole.locateAll(whole.search(q));
        std::sort(expect.begin(), expect.end());
        // Subset of the whole-reference hit set...
        EXPECT_TRUE(std::includes(expect.begin(), expect.end(),
                                  r.positions[0].begin(),
                                  r.positions[0].end()))
            << "rep " << rep;
        // ...containing the planted occurrence.
        EXPECT_TRUE(std::binary_search(r.positions[0].begin(),
                                       r.positions[0].end(), pos))
            << "rep " << rep;
    }
}

} // namespace
} // namespace exma
