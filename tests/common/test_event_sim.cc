#include <gtest/gtest.h>

#include <vector>

#include "common/event_sim.hh"

namespace exma {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesIdleTime)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(0, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingIntoPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}

} // namespace
} // namespace exma
