#include <gtest/gtest.h>

#include <sstream>

#include "common/search_stats.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace exma {
namespace {

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("g");
    auto &s = g.scalar("x", "a stat");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(g.value("x"), 3.5);
}

TEST(Stats, ScalarIsSharedByName)
{
    StatGroup g("g");
    g.scalar("x") += 1.0;
    g.scalar("x") += 1.0;
    EXPECT_DOUBLE_EQ(g.value("x"), 2.0);
}

TEST(Stats, MissingScalarReadsZero)
{
    StatGroup g("g");
    EXPECT_DOUBLE_EQ(g.value("nope"), 0.0);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("g");
    auto &d = g.distribution("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.variance(), 1.25, 1e-9);
}

TEST(Stats, ResetClearsEverything)
{
    StatGroup g("g");
    g.scalar("x") += 5.0;
    g.distribution("d").sample(1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value("x"), 0.0);
    EXPECT_EQ(g.distribution("d").count(), 0u);
}

TEST(Stats, DumpContainsNames)
{
    StatGroup g("dram");
    g.scalar("reads", "read count") += 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("dram.reads"), std::string::npos);
    EXPECT_NE(os.str().find("read count"), std::string::npos);
}

TEST(Stats, SummarizePercentiles)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    auto s = summarize(v);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_NEAR(s.p50, 50.5, 1e-9);
    EXPECT_NEAR(s.p25, 25.75, 1e-9);
    EXPECT_NEAR(s.p75, 75.25, 1e-9);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_EQ(s.count, 100u);
}

TEST(Stats, SummarizeEmpty)
{
    auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Table, PrintsAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumAndBytesFormat)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::bytes(1536.0), "1.54KB");
    EXPECT_EQ(TextTable::bytes(2.5e9), "2.50GB");
}

TEST(SearchStats, MergeSumsEveryCounter)
{
    SearchStats a{1, 2, 3, 4, 5};
    const SearchStats b{10, 20, 30, 40, 50};
    a += b;
    EXPECT_EQ(a, (SearchStats{11, 22, 33, 44, 55}));
    EXPECT_EQ(a + b, (SearchStats{21, 42, 63, 84, 105}));
}

TEST(SearchStats, ResetAndMeanError)
{
    SearchStats s{4, 0, 16, 0, 0};
    EXPECT_DOUBLE_EQ(s.meanError(), 2.0); // 16 error over 2*4 lookups
    s.reset();
    EXPECT_EQ(s, SearchStats{});
    EXPECT_DOUBLE_EQ(s.meanError(), 0.0);
}

} // namespace
} // namespace exma
