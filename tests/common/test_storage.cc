// Storage<T> (common/storage.hh): the owned-vs-borrowed seam every
// serialized structure's hot arrays sit behind. The subtle part is
// copy/move of *owned* storage — the view must re-anchor at the new
// vector's buffer, not follow the old one.

#include <gtest/gtest.h>

#include <vector>

#include "common/storage.hh"

namespace exma {
namespace {

TEST(StorageTest, DefaultIsEmptyOwned)
{
    const Storage<u32> s;
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.borrowed());
}

TEST(StorageTest, OwnedAdoptsVector)
{
    Storage<u32> s(std::vector<u32>{1, 2, 3});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], 1u);
    EXPECT_EQ(s[2], 3u);
    EXPECT_FALSE(s.borrowed());
    EXPECT_EQ(s.data(), s.mutableData());
}

TEST(StorageTest, BorrowedViewsCallerMemory)
{
    const std::vector<u32> backing{7, 8, 9};
    const Storage<u32> s = Storage<u32>::borrowed(backing);
    EXPECT_TRUE(s.borrowed());
    EXPECT_EQ(s.size(), 3u);
    // Zero-copy: the storage reads the caller's buffer directly.
    EXPECT_EQ(s.data(), backing.data());
}

TEST(StorageTest, CopyOfOwnedReanchorsView)
{
    Storage<u32> a(std::vector<u32>{1, 2, 3});
    const Storage<u32> b = a; // NOLINT(performance-unnecessary-copy-initialization)
    // The copy must view its own buffer, not a's.
    EXPECT_NE(b.data(), a.data());
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b[1], 2u);
}

TEST(StorageTest, MoveOfOwnedReanchorsView)
{
    Storage<u32> a(std::vector<u32>{4, 5, 6});
    const u32 *buf = a.data();
    const Storage<u32> b = std::move(a);
    // vector's buffer moves wholesale, and the view follows it.
    EXPECT_EQ(b.data(), buf);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b[2], 6u);
}

TEST(StorageTest, CopyOfBorrowedKeepsTheBorrow)
{
    const std::vector<u32> backing{1, 2};
    const Storage<u32> a = Storage<u32>::borrowed(backing);
    const Storage<u32> b = a; // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_TRUE(b.borrowed());
    EXPECT_EQ(b.data(), backing.data());
}

TEST(StorageTest, MoveAssignOverOwned)
{
    Storage<u32> a(std::vector<u32>{1});
    Storage<u32> b(std::vector<u32>{2, 3});
    a = std::move(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a[0], 2u);
    EXPECT_FALSE(a.borrowed());
}

TEST(StorageTest, SpanAndIterationAgree)
{
    const Storage<u32> s(std::vector<u32>{10, 20, 30});
    u64 sum = 0;
    for (const u32 v : s)
        sum += v;
    EXPECT_EQ(sum, 60u);
    EXPECT_EQ(s.span().size(), 3u);
    EXPECT_EQ(s.span().data(), s.data());
}

TEST(StorageDeathTest, MutatingBorrowedPanics)
{
    const std::vector<u32> backing{1};
    Storage<u32> s = Storage<u32>::borrowed(backing);
    EXPECT_DEATH(s.mutableData(), "borrowed");
}

} // namespace
} // namespace exma
