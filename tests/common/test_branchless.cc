#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/branchless.hh"
#include "common/rng.hh"

namespace exma {
namespace {

/** The helper must return the exact std::lower_bound position
 *  (leftmost >= key) for every key in and around the list. */
void
expectMatchesStd(const std::vector<u32> &v)
{
    std::vector<u32> keys{0, 1, ~u32{0}};
    for (u32 x : v) {
        keys.push_back(x);
        if (x > 0)
            keys.push_back(x - 1);
        keys.push_back(x + 1);
    }
    for (u32 key : keys) {
        const u32 *expect =
            std::lower_bound(v.data(), v.data() + v.size(), key);
        const u32 *got =
            branchlessLowerBound(v.data(), v.data() + v.size(), key);
        ASSERT_EQ(got, expect)
            << "n=" << v.size() << " key=" << key;
    }
}

TEST(BranchlessLowerBound, EmptyRange)
{
    const std::vector<u32> v;
    EXPECT_EQ(branchlessLowerBound(v.data(), v.data(), 42), v.data());
}

TEST(BranchlessLowerBound, SingleElement)
{
    expectMatchesStd({5});
}

TEST(BranchlessLowerBound, AllEqual)
{
    // Duplicates: must still return the *leftmost* >= key position.
    for (size_t n : {1u, 2u, 7u, 8u, 64u, 255u})
        expectMatchesStd(std::vector<u32>(n, 9));
}

TEST(BranchlessLowerBound, PowerOfTwoAndNeighbourSizes)
{
    Rng rng(3);
    for (size_t pow : {1u, 2u, 3u, 4u, 6u, 10u, 12u}) {
        const size_t mid = size_t{1} << pow;
        for (size_t n : {mid - 1, mid, mid + 1}) {
            std::vector<u32> v(n);
            u32 cur = 0;
            for (auto &x : v) {
                x = cur; // ~50% duplicates
                cur += static_cast<u32>(rng.below(2));
            }
            expectMatchesStd(v);
        }
    }
}

TEST(BranchlessLowerBound, RandomStrictlyIncreasing)
{
    Rng rng(5);
    for (int t = 0; t < 20; ++t) {
        std::vector<u32> v(1 + rng.below(600));
        u32 cur = 0;
        for (auto &x : v)
            x = (cur += 1 + static_cast<u32>(rng.below(50)));
        expectMatchesStd(v);
    }
}

TEST(ProbeCount, EqualsCeilLog2Formula)
{
    // probeCount must reproduce the historical floating-point probe
    // accounting bit for bit, so SearchStats stay comparable across
    // the rank-machinery change.
    auto old_formula = [](u64 n) {
        return n == 0 ? u64{0}
                      : static_cast<u64>(std::ceil(
                            std::log2(static_cast<double>(n) + 1)));
    };
    for (u64 n = 0; n < 70000; ++n)
        ASSERT_EQ(probeCount(n), old_formula(n)) << "n=" << n;
    for (u64 pow = 17; pow < 32; ++pow)
        for (u64 n : {(u64{1} << pow) - 1, u64{1} << pow,
                      (u64{1} << pow) + 1})
            ASSERT_EQ(probeCount(n), old_formula(n)) << "n=" << n;
}

TEST(LowerBoundRank, SpanConvenienceMatches)
{
    const std::vector<u32> v{2, 4, 4, 8, 100};
    const std::span<const u32> s(v);
    EXPECT_EQ(lowerBoundRank(s, 0), 0u);
    EXPECT_EQ(lowerBoundRank(s, 4), 1u);
    EXPECT_EQ(lowerBoundRank(s, 5), 3u);
    EXPECT_EQ(lowerBoundRank(s, 101), 5u);
}

} // namespace
} // namespace exma
