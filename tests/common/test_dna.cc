#include <gtest/gtest.h>

#include "common/dna.hh"

namespace exma {
namespace {

TEST(Dna, CharRoundTrip)
{
    for (Base b = 0; b < 4; ++b)
        EXPECT_EQ(charToBase(baseToChar(b)), b);
}

TEST(Dna, CharToBaseAcceptsLowercase)
{
    EXPECT_EQ(charToBase('a'), 0);
    EXPECT_EQ(charToBase('c'), 1);
    EXPECT_EQ(charToBase('g'), 2);
    EXPECT_EQ(charToBase('t'), 3);
}

TEST(Dna, UnknownCharMapsToA)
{
    EXPECT_EQ(charToBase('N'), 0);
    EXPECT_EQ(charToBase('x'), 0);
}

TEST(Dna, EncodeDecodeRoundTrip)
{
    const std::string s = "ACGTACGTTTGGCCAA";
    EXPECT_EQ(decodeSeq(encodeSeq(s)), s);
}

TEST(Dna, ComplementIsInvolution)
{
    for (Base b = 0; b < 4; ++b)
        EXPECT_EQ(complementBase(complementBase(b)), b);
}

TEST(Dna, ComplementPairsAreWatsonCrick)
{
    EXPECT_EQ(complementBase(charToBase('A')), charToBase('T'));
    EXPECT_EQ(complementBase(charToBase('C')), charToBase('G'));
}

TEST(Dna, ReverseComplement)
{
    auto seq = encodeSeq("ACGGT");
    EXPECT_EQ(decodeSeq(reverseComplement(seq)), "ACCGT");
}

TEST(Dna, ReverseComplementIsInvolution)
{
    auto seq = encodeSeq("ACGGTTTACG");
    EXPECT_EQ(reverseComplement(reverseComplement(seq)), seq);
}

TEST(Dna, PackKmerLexicographicOrder)
{
    // Integer order of packed k-mers must equal lexicographic order.
    auto aa = encodeSeq("AA");
    auto ac = encodeSeq("AC");
    auto ca = encodeSeq("CA");
    auto tt = encodeSeq("TT");
    EXPECT_LT(packKmer(aa.data(), 2), packKmer(ac.data(), 2));
    EXPECT_LT(packKmer(ac.data(), 2), packKmer(ca.data(), 2));
    EXPECT_LT(packKmer(ca.data(), 2), packKmer(tt.data(), 2));
}

TEST(Dna, PackUnpackRoundTrip)
{
    auto seq = encodeSeq("GATTACAGATTACAGATTACAGATTACAGAT"); // 31 bases
    Kmer m = packKmer(seq.data(), 31);
    Base out[31];
    unpackKmer(m, 31, out);
    for (int i = 0; i < 31; ++i)
        EXPECT_EQ(out[i], seq[static_cast<size_t>(i)]) << "base " << i;
}

TEST(Dna, KmerToString)
{
    auto seq = encodeSeq("TGCA");
    EXPECT_EQ(kmerToString(packKmer(seq.data(), 4), 4), "TGCA");
}

TEST(Dna, KmerSpace)
{
    EXPECT_EQ(kmerSpace(0), 1u);
    EXPECT_EQ(kmerSpace(2), 16u);
    EXPECT_EQ(kmerSpace(15), u64{1} << 30);
}

} // namespace
} // namespace exma
