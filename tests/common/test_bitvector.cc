#include <gtest/gtest.h>

#include <vector>

#include "common/bitvector.hh"
#include "common/rng.hh"

namespace exma {
namespace {

TEST(BitVector, EmptyRank)
{
    BitVector bv(0);
    bv.buildRank();
    EXPECT_EQ(bv.rank1(0), 0u);
    EXPECT_EQ(bv.ones(), 0u);
}

TEST(BitVector, SingleBit)
{
    BitVector bv(100);
    bv.set(42);
    bv.buildRank();
    EXPECT_EQ(bv.rank1(42), 0u);
    EXPECT_EQ(bv.rank1(43), 1u);
    EXPECT_EQ(bv.rank1(100), 1u);
    EXPECT_TRUE(bv.get(42));
    EXPECT_FALSE(bv.get(41));
}

TEST(BitVector, AllOnes)
{
    const u64 n = 1000;
    BitVector bv(n);
    for (u64 i = 0; i < n; ++i)
        bv.set(i);
    bv.buildRank();
    for (u64 i = 0; i <= n; i += 37)
        EXPECT_EQ(bv.rank1(i), i);
}

TEST(BitVector, RankMatchesNaiveOnRandomBits)
{
    const u64 n = 10000;
    Rng rng(7);
    BitVector bv(n);
    std::vector<bool> ref(n, false);
    for (int i = 0; i < 3000; ++i) {
        u64 pos = rng.below(n);
        if (!ref[pos]) {
            ref[pos] = true;
            bv.set(pos);
        }
    }
    bv.buildRank();
    u64 acc = 0;
    for (u64 i = 0; i < n; ++i) {
        EXPECT_EQ(bv.rank1(i), acc) << "at " << i;
        if (ref[i])
            ++acc;
    }
    EXPECT_EQ(bv.ones(), acc);
}

TEST(BitVector, RankAtBlockBoundaries)
{
    // Exercise the 512-bit superblock boundaries explicitly.
    const u64 n = 4096;
    BitVector bv(n);
    for (u64 i = 0; i < n; i += 2)
        bv.set(i);
    bv.buildRank();
    for (u64 i : {u64{511}, u64{512}, u64{513}, u64{1024}, u64{4095}})
        EXPECT_EQ(bv.rank1(i), (i + 1) / 2);
}

TEST(BitVector, SizeBytesIsPlausible)
{
    BitVector bv(1 << 20);
    bv.buildRank();
    // 1 Mib of bits = 128 KiB words plus ~2% overhead.
    EXPECT_GE(bv.sizeBytes(), u64{128 * 1024});
    EXPECT_LE(bv.sizeBytes(), u64{160 * 1024});
}

} // namespace
} // namespace exma
