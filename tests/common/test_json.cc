#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <sstream>

#include "common/json.hh"

namespace exma {
namespace {

std::string
render(const std::function<void(JsonWriter &)> &fn)
{
    std::ostringstream os;
    JsonWriter w(os);
    fn(w);
    return os.str();
}

TEST(JsonWriter, EmptyContainers)
{
    EXPECT_EQ(render([](JsonWriter &w) { w.beginObject().endObject(); }),
              "{}");
    EXPECT_EQ(render([](JsonWriter &w) { w.beginArray().endArray(); }),
              "[]");
}

TEST(JsonWriter, ObjectFieldsAreCommaSeparated)
{
    const std::string doc = render([](JsonWriter &w) {
        w.beginObject()
            .field("a", u64{1})
            .field("b", "two")
            .field("c", true)
            .field("d", 2.5)
            .endObject();
    });
    EXPECT_EQ(doc, "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":2.5}");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    const std::string doc = render([](JsonWriter &w) {
        w.beginObject().key("rows").beginArray();
        w.beginObject().field("x", 1).endObject();
        w.beginObject().field("x", 2).endObject();
        w.endArray().key("n").value(2).endObject();
    });
    EXPECT_EQ(doc, "{\"rows\":[{\"x\":1},{\"x\":2}],\"n\":2}");
}

TEST(JsonWriter, ArrayOfScalars)
{
    const std::string doc = render([](JsonWriter &w) {
        w.beginArray().value(1).value(2).value("three").nullValue()
            .endArray();
    });
    EXPECT_EQ(doc, "[1,2,\"three\",null]");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::quoted("plain"), "\"plain\"");
    EXPECT_EQ(JsonWriter::quoted("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(JsonWriter::quoted("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(JsonWriter::quoted("tab\tnl\n"), "\"tab\\tnl\\n\"");
    EXPECT_EQ(JsonWriter::quoted(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(JsonWriter::number(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::number(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(JsonWriter::number(1.5), "1.5");
}

TEST(JsonWriter, LargeIntegersStayExact)
{
    const u64 big = u64{1} << 60;
    const std::string doc =
        render([&](JsonWriter &w) { w.beginArray().value(big).endArray(); });
    EXPECT_EQ(doc, "[" + std::to_string(big) + "]");
}

} // namespace
} // namespace exma
