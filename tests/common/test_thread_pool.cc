#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

namespace exma {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(hardwareThreads(), 1u);
}

TEST(ThreadPool, SubmitRunsAllTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    EXPECT_EQ(pool.slotCount(), 5u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    for (const u64 n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
        for (const u64 grain : {1ull, 3ull, 16ull, 5000ull}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h = 0;
            pool.parallelFor(n, grain, [&](u64 b, u64 e, unsigned slot) {
                EXPECT_LT(slot, pool.slotCount());
                for (u64 i = b; i < e; ++i)
                    ++hits[i];
            });
            for (u64 i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, ParallelForUsesMultipleSlots)
{
    ThreadPool pool(4);
    std::mutex m;
    std::set<unsigned> slots;
    // Many tiny chunks so several participants get a chance to claim
    // work; the assertion is deliberately weak (>= 1 slot) because a
    // loaded or single-core machine may legitimately let the caller
    // drain everything.
    pool.parallelFor(256, 1, [&](u64, u64, unsigned slot) {
        std::lock_guard<std::mutex> lock(m);
        slots.insert(slot);
    });
    EXPECT_GE(slots.size(), 1u);
    for (unsigned s : slots)
        EXPECT_LT(s, pool.slotCount());
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(100, 4,
                         [](u64 b, u64, unsigned) {
                             if (b >= 48)
                                 throw std::runtime_error("chunk failed");
                         }),
        std::runtime_error);
    // The pool stays usable after a throwing loop.
    std::atomic<u64> sum{0};
    pool.parallelFor(10, 2, [&](u64 b, u64 e, unsigned) {
        for (u64 i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, FreeParallelForSequentialWidthRunsInline)
{
    // threads=1 must run on the caller: slot is always 0 and chunks
    // arrive in order.
    std::vector<u64> begins;
    parallelFor(
        20, 6,
        [&](u64 b, u64 e, unsigned slot) {
            EXPECT_EQ(slot, 0u);
            EXPECT_LE(e, 20u);
            begins.push_back(b);
        },
        1);
    EXPECT_EQ(begins, (std::vector<u64>{0, 6, 12, 18}));
}

TEST(ThreadPool, FreeParallelForMatchesSequentialSum)
{
    for (unsigned threads : {0u, 1u, 2u, 8u}) {
        std::atomic<u64> sum{0};
        parallelFor(
            10000, 64,
            [&](u64 b, u64 e, unsigned) {
                u64 local = 0;
                for (u64 i = b; i < e; ++i)
                    local += i;
                sum += local;
            },
            threads);
        EXPECT_EQ(sum.load(), 10000u * 9999u / 2) << "threads=" << threads;
    }
}

TEST(ThreadPool, ParallelForSlotsBounds)
{
    EXPECT_EQ(parallelForSlots(1), 1u);
    EXPECT_GE(parallelForSlots(0), 2u); // caller + >=1 worker
    EXPECT_LE(parallelForSlots(8), ThreadPool::global().slotCount());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    std::atomic<u64> total{0};
    parallelFor(8, 1, [&](u64 b, u64 e, unsigned) {
        for (u64 i = b; i < e; ++i) {
            parallelFor(32, 4, [&](u64 ib, u64 ie, unsigned) {
                total += ie - ib;
            });
        }
    });
    EXPECT_EQ(total.load(), 8u * 32u);
}

} // namespace
} // namespace exma
