#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace exma {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    std::vector<int> hist(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.below(8)];
    for (int c : hist) {
        EXPECT_GT(c, n / 8 - 800);
        EXPECT_LT(c, n / 8 + 800);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(19);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        u64 v = rng.range(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

} // namespace
} // namespace exma
