#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "genome/fasta.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

TEST(Reference, GeneratesRequestedLength)
{
    ReferenceSpec spec;
    spec.length = 10000;
    auto ref = generateReference(spec);
    EXPECT_EQ(ref.size(), 10000u);
}

TEST(Reference, Deterministic)
{
    ReferenceSpec spec;
    spec.length = 5000;
    spec.seed = 77;
    EXPECT_EQ(generateReference(spec), generateReference(spec));
}

TEST(Reference, DifferentSeedsDiffer)
{
    ReferenceSpec a, b;
    a.length = b.length = 5000;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(generateReference(a), generateReference(b));
}

TEST(Reference, GcContentIsRespected)
{
    ReferenceSpec spec;
    spec.length = 200000;
    spec.repeat_fraction = 0.0; // pure backbone for a clean measurement
    spec.gc_content = 0.41;
    auto ref = generateReference(spec);
    u64 gc = 0;
    for (Base b : ref)
        gc += (b == charToBase('G') || b == charToBase('C'));
    EXPECT_NEAR(static_cast<double>(gc) / static_cast<double>(ref.size()),
                0.41, 0.02);
}

TEST(Reference, RepeatsIncreaseKmerRepetition)
{
    // Count distinct 16-mers: a repetitive genome has fewer.
    auto count_distinct = [](const std::vector<Base> &ref) {
        std::vector<u64> kmers;
        for (size_t i = 0; i + 16 <= ref.size(); i += 4)
            kmers.push_back(packKmer(ref.data() + i, 16));
        std::sort(kmers.begin(), kmers.end());
        kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
        return kmers.size();
    };
    ReferenceSpec low, high;
    low.length = high.length = 300000;
    low.repeat_fraction = 0.05;
    high.repeat_fraction = 0.8;
    low.seed = high.seed = 5;
    EXPECT_GT(count_distinct(generateReference(low)),
              count_distinct(generateReference(high)));
}

TEST(Reference, AllBasesValid)
{
    ReferenceSpec spec;
    spec.length = 50000;
    for (Base b : generateReference(spec))
        ASSERT_LT(b, 4);
}

TEST(Reference, RepeatLengthClampsNegativeNormalTail)
{
    // Regression (UBSan): the repeat-length draw is normal(m, m/3), so
    // ~0.13% of samples land below zero; the old code cast that double
    // straight to u64 — undefined behaviour. Mirror the exact draw
    // sequence with a probe RNG to prove this seed really drives the
    // tail negative, then make the same draws through the clamped path
    // (which UBSan watches).
    Rng probe(4242);
    Rng subject(4242);
    u64 negatives = 0;
    for (int i = 0; i < 50000; ++i) {
        if (probe.normal(9.0, 3.0) < 0.0)
            ++negatives;
        const u64 len = sampleRepeatLength(subject, 9);
        ASSERT_GE(len, 16u);
    }
    EXPECT_GT(negatives, 0u) << "fixture no longer reaches the tail";
}

TEST(Reference, GenerateSurvivesNegativeTailSpec)
{
    // End-to-end: a tiny repeat_len_mean means sd = mean/3 keeps the
    // negative tail at its full 0.13% rate while thousands of repeat
    // segments are drawn, so generateReference itself crosses the
    // previously-UB path under UBSan.
    ReferenceSpec spec;
    spec.length = 400000;
    spec.repeat_fraction = 0.9;
    spec.repeat_len_mean = 24;
    spec.seed = 99;
    auto ref = generateReference(spec);
    EXPECT_EQ(ref.size(), spec.length);
    for (Base b : ref)
        ASSERT_LT(b, 4);
}

TEST(Dataset, ThreePaperDatasets)
{
    EXPECT_EQ(datasetNames().size(), 3u);
    auto ds = makeDataset("human", 0.01);
    EXPECT_EQ(ds.name, "human");
    EXPECT_GT(ds.ref.size(), 0u);
    EXPECT_EQ(ds.paper_length, 3000000000ULL);
}

TEST(Dataset, ScaledStepPreservesOperatingPoint)
{
    // At full scale k stays the paper's k.
    EXPECT_EQ(scaledStep(3000000000ULL, 3000000000ULL, 15), 15);
    // An 8 Mbp human (shrink 2^8.5) loses ~4 steps.
    const int k = scaledStep(8u << 20, 3000000000ULL, 15);
    EXPECT_GE(k, 10);
    EXPECT_LE(k, 12);
}

TEST(Dataset, SizesOrderedLikePaper)
{
    auto human = makeDataset("human", 0.01);
    auto picea = makeDataset("picea", 0.01);
    auto pinus = makeDataset("pinus", 0.01);
    EXPECT_LT(human.ref.size(), picea.ref.size());
    EXPECT_LT(picea.ref.size(), pinus.ref.size());
}

TEST(Dataset, FromSuppliedRefKeepsPaperBookkeeping)
{
    // The EXMA_REF_FASTA bench path: a real (here: generated) sequence
    // replaces the synthetic reference while the paper-side numbers and
    // the k rescaling still come from the named dataset.
    ReferenceSpec spec;
    spec.length = 8u << 20; // the DESIGN.md default human scale
    auto seq = generateReference(spec);
    const auto expect_k = scaledStep(seq.size(), 3000000000ULL, 15);
    const auto expect_lisa = scaledStep(seq.size(), 3000000000ULL, 21);
    auto copy = seq;
    auto ds = makeDatasetFromRef("human", std::move(copy));
    EXPECT_EQ(ds.name, "human");
    EXPECT_EQ(ds.ref, seq);
    EXPECT_EQ(ds.paper_length, 3000000000ULL);
    EXPECT_EQ(ds.exma_k, expect_k);
    EXPECT_EQ(ds.lisa_k, expect_lisa);
}

TEST(Dataset, FromFastaFileRecordsConcatenate)
{
    // End-to-end shape of the bench wiring: write a multi-record FASTA,
    // read it back, concatenate, and build the dataset around it.
    const std::string path = ::testing::TempDir() + "exma_ref_test.fa";
    std::vector<FastaRecord> recs;
    ReferenceSpec spec;
    spec.length = 4096;
    recs.push_back({"chr1", generateReference(spec)});
    spec.seed = 2;
    recs.push_back({"chr2", generateReference(spec)});
    writeFastaFile(path, recs);

    auto back = readFastaFile(path);
    ASSERT_EQ(back.size(), 2u);
    std::vector<Base> cat;
    for (const auto &rec : back)
        cat.insert(cat.end(), rec.seq.begin(), rec.seq.end());
    EXPECT_EQ(cat.size(), 8192u);
    auto ds = makeDatasetFromRef("picea", std::move(cat));
    EXPECT_EQ(ds.ref.size(), 8192u);
    EXPECT_EQ(ds.paper_length, 20000000000ULL);
    std::remove(path.c_str());
}

TEST(Dataset, FromRecordsKeepsSpans)
{
    std::vector<FastaRecord> recs;
    ReferenceSpec spec;
    spec.length = 4096;
    recs.push_back({"chr1", generateReference(spec)});
    spec.seed = 2;
    spec.length = 8192;
    recs.push_back({"chr2", generateReference(spec)});

    auto ds = makeDatasetFromRecords("human", recs);
    EXPECT_EQ(ds.ref.size(), 12288u);
    ASSERT_EQ(ds.records.size(), 2u);
    EXPECT_EQ(ds.records[0], (RecordSpan{"chr1", 0, 4096}));
    EXPECT_EQ(ds.records[1], (RecordSpan{"chr2", 4096, 8192}));
    // The concatenation really is chr1 then chr2.
    EXPECT_TRUE(std::equal(recs[0].seq.begin(), recs[0].seq.end(),
                           ds.ref.begin()));
    EXPECT_TRUE(std::equal(recs[1].seq.begin(), recs[1].seq.end(),
                           ds.ref.begin() + 4096));
}

TEST(Fasta, RoundTrip)
{
    std::vector<FastaRecord> recs;
    recs.push_back({"chr1", encodeSeq("ACGTACGTAAA")});
    recs.push_back({"chr2 extra-desc", encodeSeq("GGGTTT")});
    std::ostringstream os;
    writeFasta(os, recs, 4);
    std::istringstream is(os.str());
    auto back = readFasta(is);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "chr1");
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_EQ(back[1].seq, recs[1].seq);
}

TEST(Fasta, NameParsingStopsAtWhitespace)
{
    std::istringstream is(">read_1 length=5\nACGTA\n");
    auto recs = readFasta(is);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].name, "read_1");
    EXPECT_EQ(recs[0].seq.size(), 5u);
}

TEST(Fasta, EmptyInput)
{
    std::istringstream is("");
    EXPECT_TRUE(readFasta(is).empty());
}

} // namespace
} // namespace exma
