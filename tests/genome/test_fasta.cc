#include <gtest/gtest.h>

#include <sstream>

#include "genome/fasta.hh"

namespace exma {
namespace {

/**
 * Regression: CRLF line endings used to append one bogus 'A' per
 * sequence line ('\r' went through charToBase), silently corrupting
 * every reference ingested from a Windows-formatted FASTA.
 */
TEST(Fasta, CrlfLinesAddNoBases)
{
    std::istringstream is(">chr1 desc\r\nACGT\r\nTTGC\r\n");
    FastaParseStats st;
    auto recs = readFasta(is, &st);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].name, "chr1");
    EXPECT_EQ(recs[0].seq, encodeSeq("ACGTTTGC"));
    EXPECT_EQ(st.records, 1u);
    EXPECT_EQ(st.bases, 8u);
    EXPECT_EQ(st.ambiguous, 0u);
}

TEST(Fasta, CrlfLowercaseAndNRunFixture)
{
    // One fixture with all three historical hazards: CRLF endings,
    // lowercase (soft-masked) bases, and an ambiguous 'N' run.
    std::istringstream is(">scaffold_1\r\n"
                          "acgtACGT\r\n"
                          "NNNNNNNN\r\n"
                          "ttnnAC GT\r\n"); // embedded blank too
    FastaParseStats st;
    auto recs = readFasta(is, &st);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].name, "scaffold_1");
    // 8 + 8 + 8 kept bases ("ttnnACGT" after the space is stripped).
    ASSERT_EQ(recs[0].seq.size(), 24u);
    EXPECT_EQ(st.bases, 24u);
    // The 8-base N run plus the two embedded 'n's.
    EXPECT_EQ(st.ambiguous, 10u);
    // Lowercase encodes as the real base, not as 'A'.
    EXPECT_EQ(std::vector<Base>(recs[0].seq.begin(), recs[0].seq.begin() + 4),
              encodeSeq("ACGT"));
    // Ambiguous characters still encode as 'A' (documented fallback).
    EXPECT_EQ(recs[0].seq[8], charToBase('A'));
}

TEST(Fasta, InteriorWhitespaceIsStripped)
{
    std::istringstream is(">r\nAC GT\tAC\n");
    FastaParseStats st;
    auto recs = readFasta(is, &st);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].seq, encodeSeq("ACGTAC"));
    EXPECT_EQ(st.ambiguous, 0u);
}

TEST(Fasta, StatsCoverMultipleRecords)
{
    std::istringstream is(">a\nACGTN\n>b\nGG\n");
    FastaParseStats st;
    auto recs = readFasta(is, &st);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(st.records, 2u);
    EXPECT_EQ(st.bases, 7u);
    EXPECT_EQ(st.ambiguous, 1u);
}

TEST(Fasta, StatsParamIsOptional)
{
    std::istringstream is(">a\nACGT\n");
    auto recs = readFasta(is);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].seq.size(), 4u);
}

} // namespace
} // namespace exma
