#include <gtest/gtest.h>

#include <algorithm>

#include "genome/reads.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

std::vector<Base>
testRef()
{
    ReferenceSpec spec;
    spec.length = 100000;
    spec.seed = 9;
    return generateReference(spec);
}

TEST(Reads, PaperErrorProfiles)
{
    // The paper's (name, mismatch%, ins%, del%, total%) table.
    EXPECT_NEAR(illuminaProfile().total(), 0.002, 1e-9);
    EXPECT_NEAR(pacbioProfile().total(), 0.1501, 1e-9);
    EXPECT_NEAR(ontProfile().total(), 0.30, 1e-9);
    EXPECT_EQ(allProfiles().size(), 3u);
}

TEST(Reads, CoverageDeterminesReadCount)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.coverage = 5.0;
    auto reads = simulateReads(ref, illuminaProfile(), spec);
    const double bases = 101.0 * static_cast<double>(reads.size());
    EXPECT_NEAR(bases / static_cast<double>(ref.size()), 5.0, 0.1);
}

TEST(Reads, ShortReadsHaveNearExactLength)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.max_reads = 200;
    auto reads = simulateReads(ref, illuminaProfile(), spec);
    for (const auto &r : reads) {
        // Illumina indel rate is 0.01%+0.01%; lengths barely wander.
        EXPECT_NEAR(static_cast<double>(r.seq.size()), 101.0, 3.0);
    }
}

TEST(Reads, IlluminaReadsMostlyMatchReference)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.max_reads = 100;
    auto reads = simulateReads(ref, illuminaProfile(), spec);
    u64 matching = 0, total = 0;
    for (const auto &r : reads) {
        std::vector<Base> tmpl(
            ref.begin() + static_cast<std::ptrdiff_t>(r.true_pos),
            ref.begin() + static_cast<std::ptrdiff_t>(
                              std::min<u64>(r.true_pos + r.seq.size(),
                                            ref.size())));
        if (r.reverse)
            tmpl = reverseComplement(tmpl);
        const size_t n = std::min(tmpl.size(), r.seq.size());
        for (size_t i = 0; i < n; ++i)
            matching += (tmpl[i] == r.seq[i]);
        total += n;
    }
    // With 0.2% error nearly every base matches. The bar is 0.97 rather
    // than 0.998 because this positional comparison misaligns the whole
    // read tail after any indel.
    EXPECT_GT(static_cast<double>(matching) / static_cast<double>(total),
              0.97);
}

TEST(Reads, OntReadsAreNoisier)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.max_reads = 100;
    spec.seed = 3;
    auto clean = simulateReads(ref, illuminaProfile(), spec);
    auto noisy = simulateReads(ref, ontProfile(), spec);
    auto identity = [&](const std::vector<Read> &reads) {
        u64 matching = 0, total = 0;
        for (const auto &r : reads) {
            std::vector<Base> tmpl(
                ref.begin() + static_cast<std::ptrdiff_t>(r.true_pos),
                ref.begin() + static_cast<std::ptrdiff_t>(std::min<u64>(
                                  r.true_pos + r.seq.size(), ref.size())));
            if (r.reverse)
                tmpl = reverseComplement(tmpl);
            const size_t n = std::min(tmpl.size(), r.seq.size());
            for (size_t i = 0; i < n; ++i)
                matching += (tmpl[i] == r.seq[i]);
            total += n;
        }
        return static_cast<double>(matching) / static_cast<double>(total);
    };
    EXPECT_GT(identity(clean), identity(noisy) + 0.05);
}

TEST(Reads, LongReadsFollowLognormalSpread)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.read_len = 1000;
    spec.long_reads = true;
    spec.max_reads = 300;
    auto reads = simulateReads(ref, pacbioProfile(), spec);
    double sum = 0.0;
    u64 lo = ~u64{0}, hi = 0;
    for (const auto &r : reads) {
        sum += static_cast<double>(r.seq.size());
        lo = std::min<u64>(lo, r.seq.size());
        hi = std::max<u64>(hi, r.seq.size());
    }
    const double mean = sum / static_cast<double>(reads.size());
    EXPECT_GT(mean, 600.0);
    EXPECT_LT(mean, 1800.0);
    EXPECT_LT(lo, 700u);  // spread below the mean
    EXPECT_GT(hi, 1400u); // and above
}

TEST(Reads, BothStrandsSampled)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.max_reads = 200;
    auto reads = simulateReads(ref, illuminaProfile(), spec);
    u64 rc = 0;
    for (const auto &r : reads)
        rc += r.reverse;
    EXPECT_GT(rc, 50u);
    EXPECT_LT(rc, 150u);
}

TEST(Reads, Deterministic)
{
    auto ref = testRef();
    ReadSimSpec spec;
    spec.max_reads = 50;
    auto a = simulateReads(ref, pacbioProfile(), spec);
    auto b = simulateReads(ref, pacbioProfile(), spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].true_pos, b[i].true_pos);
    }
}

TEST(Reads, SamplePatternsAreSubstrings)
{
    auto ref = testRef();
    auto pats = samplePatterns(ref, 50, 32, 7);
    ASSERT_EQ(pats.size(), 50u);
    for (const auto &p : pats) {
        ASSERT_EQ(p.size(), 32u);
        auto it = std::search(ref.begin(), ref.end(), p.begin(), p.end());
        EXPECT_NE(it, ref.end());
    }
}

} // namespace
} // namespace exma
