#include <gtest/gtest.h>

#include "fmindex/size_model.hh"

namespace exma {
namespace {

constexpr u64 kHuman = 3000000000ULL;
constexpr u64 kPinus = 31000000000ULL;
constexpr double kGB = 1e9;

TEST(SizeModel, AddressBits)
{
    EXPECT_EQ(addressBits(2), 1u);
    EXPECT_EQ(addressBits(1024), 10u);
    EXPECT_EQ(addressBits(1025), 11u);
    EXPECT_EQ(addressBits(kHuman), 32u);
}

TEST(SizeModel, Fm5MatchesPaperQuote)
{
    // §III.A: "5-step FM-Index costs 105GB".
    const double gb = fmkSizeBytes(kHuman, 5) / kGB;
    EXPECT_GT(gb, 85.0);
    EXPECT_LT(gb, 120.0);
}

TEST(SizeModel, Fm6MatchesPaperQuote)
{
    // §III.A: "6-step FM-Index occupies 374GB".
    const double gb = fmkSizeBytes(kHuman, 6) / kGB;
    EXPECT_GT(gb, 330.0);
    EXPECT_LT(gb, 420.0);
}

TEST(SizeModel, FmSizeGrowsExponentially)
{
    const double r1 = fmkSizeBytes(kHuman, 4) / fmkSizeBytes(kHuman, 3);
    const double r2 = fmkSizeBytes(kHuman, 8) / fmkSizeBytes(kHuman, 7);
    EXPECT_GT(r1, 3.0);
    EXPECT_GT(r2, 3.5); // approaches 4x as the Occ term dominates
}

TEST(SizeModel, LisaGrowsLinearlyInK)
{
    const double s11 = lisaSizeBytes(kHuman, 11).total();
    const double s21 = lisaSizeBytes(kHuman, 21).total();
    const double s32 = lisaSizeBytes(kHuman, 32).total();
    // Increments of ~+10 steps add the same ~2.5 GB (2 bits/step/base).
    EXPECT_NEAR(s21 - s11, 2.0 * 10 * kHuman / 8, 1e9);
    EXPECT_GT(s32, s21);
}

TEST(SizeModel, LisaIndexIsAboutOnePointFiveGB)
{
    // §III.A: "The LISA learned index consumes ~1.5GB" (human).
    EXPECT_NEAR(lisaSizeBytes(kHuman, 21).index / kGB, 1.5, 0.2);
}

TEST(SizeModel, Exma15MatchesPaperQuote)
{
    // Fig. 10a: 15-step EXMA table costs 29.5GB on human.
    const double gb = exmaSizeBytes(kHuman, 15).total() / kGB;
    EXPECT_GT(gb, 26.0);
    EXPECT_LT(gb, 33.0);
}

TEST(SizeModel, Exma16AddsTwelveGB)
{
    // Fig. 10a: "Increasing k from 15 to 16 increases 12GB".
    const double delta = (exmaSizeBytes(kHuman, 16).total() -
                          exmaSizeBytes(kHuman, 15).total()) / kGB;
    EXPECT_NEAR(delta, 12.0, 2.0);
}

TEST(SizeModel, ExmaIncrementsMatchPaperTwelveGB)
{
    // §IV.A: "For a 3G-base human genome, the increments occupy 12GB".
    EXPECT_NEAR(exmaSizeBytes(kHuman, 15).increments / kGB, 12.0, 0.5);
}

TEST(SizeModel, LisaIsRoughlyTwiceExmaOnPinus)
{
    // Fig. 23: the LISA-21 footprint is ~2.2x EXMA-15 on pinus. The
    // figure compares the search data structures; the locate SA is
    // common to both pipelines and excluded there.
    const auto e = exmaSizeBytes(kPinus, 15);
    const double lisa = lisaSizeBytes(kPinus, 21).total();
    const double exma = e.total() - e.sa;
    EXPECT_GT(lisa / exma, 1.5);
    EXPECT_LT(lisa / exma, 2.7);
}

TEST(SizeModel, ExmaIndexIsHalfOfLisaIndex)
{
    // §IV.B: MTL index uses half the parameters of the LISA index.
    EXPECT_NEAR(exmaSizeBytes(kHuman, 15).index * 2.0,
                lisaSizeBytes(kHuman, 21).index, 1.0);
}

} // namespace
} // namespace exma
