#include <gtest/gtest.h>

#include <algorithm>

#include "common/dna.hh"
#include "common/rng.hh"
#include "fmindex/fmd_index.hh"

namespace exma {
namespace {

std::vector<Base>
randomSeq(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> s(len);
    for (auto &b : s)
        b = static_cast<Base>(rng.below(4));
    return s;
}

/** Occurrences of q on both strands of ref. */
u64
naiveBothStrands(const std::vector<Base> &ref, const std::vector<Base> &q)
{
    if (q.empty() || q.size() > ref.size())
        return 0;
    u64 hits = 0;
    auto rc = reverseComplement(q);
    for (u64 i = 0; i + q.size() <= ref.size(); ++i) {
        hits += std::equal(q.begin(), q.end(),
                           ref.begin() + static_cast<std::ptrdiff_t>(i));
        hits += std::equal(rc.begin(), rc.end(),
                           ref.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return hits;
}

TEST(FmdIndex, CountMatchesNaiveBothStrands)
{
    auto ref = randomSeq(1200, 3);
    FmdIndex fmd(ref);
    Rng rng(4);
    for (int t = 0; t < 150; ++t) {
        const u64 len = 1 + rng.below(10);
        std::vector<Base> q(len);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
        EXPECT_EQ(fmd.countOccurrences(q), naiveBothStrands(ref, q))
            << "t=" << t;
    }
}

TEST(FmdIndex, IntervalSizeIsStrandSymmetric)
{
    auto ref = randomSeq(900, 5);
    FmdIndex fmd(ref);
    Rng rng(6);
    for (int t = 0; t < 60; ++t) {
        const u64 len = 2 + rng.below(8);
        std::vector<Base> q(len);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
        EXPECT_EQ(fmd.countOccurrences(q),
                  fmd.countOccurrences(reverseComplement(q)));
    }
}

TEST(FmdIndex, ForwardExtEqualsBackwardSearchOfExtendedString)
{
    auto ref = randomSeq(700, 7);
    FmdIndex fmd(ref);
    Rng rng(8);
    for (int t = 0; t < 80; ++t) {
        const u64 len = 1 + rng.below(6);
        std::vector<Base> w(len);
        for (auto &b : w)
            b = static_cast<Base>(rng.below(4));
        // Build the bi-interval of w by forward extension only.
        BiInterval bi = fmd.initInterval(w[0]);
        for (size_t i = 1; i < w.size() && !bi.empty(); ++i)
            bi = fmd.forwardExt(bi, w[i]);
        EXPECT_EQ(bi.s, fmd.countOccurrences(w)) << "t=" << t;
    }
}

TEST(FmdIndex, MixedDirectionExtensionsConsistent)
{
    auto ref = randomSeq(800, 9);
    FmdIndex fmd(ref);
    // Build GATTA two ways: backward from A, and out from the middle T.
    auto w = encodeSeq("GATTA");
    BiInterval a = fmd.initInterval(w[4]);
    for (int i = 3; i >= 0; --i)
        a = fmd.backwardExt(a, w[static_cast<size_t>(i)]);
    BiInterval b = fmd.initInterval(w[2]);
    b = fmd.forwardExt(b, w[3]);
    b = fmd.forwardExt(b, w[4]);
    b = fmd.backwardExt(b, w[1]);
    b = fmd.backwardExt(b, w[0]);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.rx, b.rx);
}

TEST(FmdIndex, SmemsAreExactMatches)
{
    auto ref = randomSeq(3000, 11);
    FmdIndex fmd(ref);
    auto read = randomSeq(150, 12);
    auto smems = fmd.collectSmems(read, 8);
    for (const auto &m : smems) {
        std::vector<Base> sub(read.begin() + m.qb, read.begin() + m.qe);
        EXPECT_EQ(fmd.countOccurrences(sub), m.hits());
        EXPECT_GT(m.hits(), 0u);
    }
}

TEST(FmdIndex, SmemsAreMaximal)
{
    auto ref = randomSeq(3000, 13);
    FmdIndex fmd(ref);
    auto read = randomSeq(120, 14);
    auto smems = fmd.collectSmems(read, 5);
    const int len = static_cast<int>(read.size());
    for (const auto &m : smems) {
        if (m.qb > 0) {
            std::vector<Base> left(read.begin() + m.qb - 1,
                                   read.begin() + m.qe);
            EXPECT_EQ(fmd.countOccurrences(left), 0u)
                << "left-extensible at " << m.qb;
        }
        if (m.qe < len) {
            std::vector<Base> right(read.begin() + m.qb,
                                    read.begin() + m.qe + 1);
            EXPECT_EQ(fmd.countOccurrences(right), 0u)
                << "right-extensible at " << m.qb;
        }
    }
}

TEST(FmdIndex, SmemsHaveNoNesting)
{
    auto ref = randomSeq(2500, 15);
    FmdIndex fmd(ref);
    auto read = randomSeq(200, 16);
    auto smems = fmd.collectSmems(read, 4);
    for (size_t i = 0; i + 1 < smems.size(); ++i) {
        EXPECT_LT(smems[i].qb, smems[i + 1].qb);
        EXPECT_LT(smems[i].qe, smems[i + 1].qe);
    }
}

TEST(FmdIndex, PlantedReadYieldsFullLengthSmem)
{
    auto ref = randomSeq(5000, 17);
    // A read copied verbatim from the reference must produce one SMEM
    // covering the entire read.
    std::vector<Base> read(ref.begin() + 1000, ref.begin() + 1100);
    FmdIndex fmd(ref);
    auto smems = fmd.collectSmems(read, 20);
    ASSERT_EQ(smems.size(), 1u);
    EXPECT_EQ(smems[0].qb, 0);
    EXPECT_EQ(smems[0].qe, 100);
}

TEST(FmdIndex, LocateFindsPlantedPosition)
{
    auto ref = randomSeq(4000, 19);
    std::vector<Base> read(ref.begin() + 2345, ref.begin() + 2400);
    FmdIndex fmd(ref);
    auto smems = fmd.collectSmems(read, 20);
    ASSERT_FALSE(smems.empty());
    auto hits = fmd.locate(smems[0], 10);
    bool found = false;
    for (const auto &h : hits)
        found |= (!h.is_rc && h.pos == 2345 + static_cast<u64>(smems[0].qb));
    EXPECT_TRUE(found);
}

TEST(FmdIndex, LocateFindsReverseComplementHit)
{
    auto ref = randomSeq(4000, 23);
    // Take a reverse-complement read: its SMEM hits map to rc strand.
    std::vector<Base> fwd(ref.begin() + 500, ref.begin() + 560);
    auto read = reverseComplement(fwd);
    FmdIndex fmd(ref);
    auto smems = fmd.collectSmems(read, 20);
    ASSERT_FALSE(smems.empty());
    auto hits = fmd.locate(smems[0], 10);
    bool found = false;
    for (const auto &h : hits)
        found |= (h.is_rc && h.pos >= 500 && h.pos < 560);
    EXPECT_TRUE(found);
}

TEST(FmdIndex, LocateVerifiesAgainstNaiveScan)
{
    auto ref = randomSeq(1000, 29);
    FmdIndex fmd(ref);
    auto read = randomSeq(60, 30);
    auto smems = fmd.collectSmems(read, 4);
    for (const auto &m : smems) {
        std::vector<Base> sub(read.begin() + m.qb, read.begin() + m.qe);
        auto rc = reverseComplement(sub);
        auto hits = fmd.locate(m, 1000);
        EXPECT_EQ(hits.size(), m.hits());
        for (const auto &h : hits) {
            const auto &pat = h.is_rc ? rc : sub;
            ASSERT_LE(h.pos + pat.size(), ref.size());
            EXPECT_TRUE(std::equal(pat.begin(), pat.end(),
                                   ref.begin() +
                                       static_cast<std::ptrdiff_t>(h.pos)))
                << "pos=" << h.pos << " rc=" << h.is_rc;
        }
    }
}

TEST(FmdIndex, MinIntvFiltersRareMatches)
{
    auto ref = randomSeq(2000, 31);
    FmdIndex fmd(ref);
    auto read = randomSeq(80, 32);
    auto strict = fmd.collectSmems(read, 4, 4);
    for (const auto &m : strict)
        EXPECT_GE(m.hits(), 4u);
}

} // namespace
} // namespace exma
