#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "fmindex/packed_rank.hh"
#include "fmindex/suffix_array.hh"

namespace exma {
namespace {

/** A real BWT (exactly one sentinel) of a random reference. */
std::vector<u8>
randomBwt(u64 ref_len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> ref(ref_len);
    for (auto &b : ref)
        b = static_cast<Base>(rng.below(4));
    const std::vector<SaIndex> sa = buildSuffixArray(ref);
    std::vector<u8> bwt(sa.size());
    for (u64 i = 0; i < sa.size(); ++i)
        bwt[i] = sa[i] == 0 ? u8{0} : static_cast<u8>(ref[sa[i] - 1] + 1);
    return bwt;
}

/** occ and symAt vs the byte scan, every symbol at every position. */
void
expectMatchesScan(const std::vector<u8> &bwt)
{
    const PackedRank rank{std::span<const u8>(bwt)};
    ASSERT_EQ(rank.size(), bwt.size());
    for (u64 row = 0; row < bwt.size(); ++row)
        ASSERT_EQ(rank.symAt(row), bwt[row]) << "row " << row;
    for (u8 sym = 0; sym <= 4; ++sym) {
        u64 expect = 0; // incremental scan keeps the check O(n) per sym
        for (u64 i = 0; i <= bwt.size(); ++i) {
            ASSERT_EQ(rank.occ(sym, i), expect)
                << "sym " << int(sym) << " i " << i;
            if (i < bwt.size())
                expect += bwt[i] == sym;
        }
    }
}

TEST(PackedRank, MatchesByteScanOnRealBwts)
{
    // Lengths straddling the 64-symbol block geometry (the BWT of an
    // n-base reference has n + 1 rows).
    for (u64 ref_len : {1u, 62u, 63u, 64u, 65u, 127u, 128u, 500u, 1000u})
        expectMatchesScan(randomBwt(ref_len, 7 + ref_len));
}

TEST(PackedRank, MatchesByteScanOnArbitrarySymbolStreams)
{
    // Not a real BWT: random symbols with the sentinel at a chosen row
    // (front, block boundaries, back) — exercises the primary-row
    // correction at every alignment.
    Rng rng(41);
    for (u64 n : {5u, 64u, 65u, 192u, 321u}) {
        for (u64 sentinel_at : {u64{0}, n / 2, n - 1}) {
            std::vector<u8> bwt(n);
            for (auto &s : bwt)
                s = static_cast<u8>(1 + rng.below(4));
            bwt[sentinel_at] = 0;
            expectMatchesScan(bwt);
        }
    }
}

TEST(PackedRank, SentinelFreeStreamHasZeroSentinelOcc)
{
    Rng rng(43);
    std::vector<u8> bwt(130);
    for (auto &s : bwt)
        s = static_cast<u8>(1 + rng.below(4));
    const PackedRank rank{std::span<const u8>(bwt)};
    EXPECT_EQ(rank.occ(0, bwt.size()), 0u);
    expectMatchesScan(bwt);
}

TEST(PackedRank, EmptyStream)
{
    const PackedRank rank{std::span<const u8>()};
    EXPECT_EQ(rank.size(), 0u);
    for (u8 sym = 0; sym <= 4; ++sym)
        EXPECT_EQ(rank.occ(sym, 0), 0u);
}

TEST(PackedRank, OneOccResolutionTouchesOneBlock)
{
    // Layout guard for the cache-line claim: 32-byte blocks, two per
    // 64-byte line, geometry fixed at 64 symbols.
    EXPECT_EQ(PackedRank::kBlockSymbols, 64u);
    const auto bwt = randomBwt(4096, 11);
    const PackedRank rank{std::span<const u8>(bwt)};
    // ~0.5 byte/symbol (2-bit data + 16B checkpoints per 64 symbols).
    EXPECT_LE(rank.sizeBytes(), (bwt.size() / 64 + 1) * 32);
}

} // namespace
} // namespace exma
