#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/dna.hh"
#include "common/rng.hh"
#include "fmindex/suffix_array.hh"

namespace exma {
namespace {

std::vector<Base>
randomSeq(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> s(len);
    for (auto &b : s)
        b = static_cast<Base>(rng.below(4));
    return s;
}

TEST(SuffixArray, KnownExampleFromPaper)
{
    // Fig. 3(a): G = CATAGA, SA column = [6,5,3,1,0,4,2].
    auto ref = encodeSeq("CATAGA");
    auto sa = buildSuffixArray(ref);
    const std::vector<SaIndex> expect = {6, 5, 3, 1, 0, 4, 2};
    EXPECT_EQ(sa, expect);
}

TEST(SuffixArray, SingleBase)
{
    auto sa = buildSuffixArray(encodeSeq("A"));
    EXPECT_EQ(sa, (std::vector<SaIndex>{1, 0}));
}

TEST(SuffixArray, AllSameSymbol)
{
    auto ref = encodeSeq("AAAAAAAA");
    auto sa = buildSuffixArray(ref);
    // Suffixes sort by decreasing length... shortest (sentinel) first.
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(sa[i], ref.size() - i);
}

TEST(SuffixArray, PeriodicString)
{
    auto ref = encodeSeq("ACACACACAC");
    EXPECT_EQ(buildSuffixArray(ref), buildSuffixArrayNaive(ref));
}

TEST(SuffixArray, MatchesNaiveOnManyRandomStrings)
{
    for (u64 seed = 0; seed < 30; ++seed) {
        const u64 len = 1 + seed * 13 % 257;
        auto ref = randomSeq(len, seed + 1000);
        EXPECT_EQ(buildSuffixArray(ref), buildSuffixArrayNaive(ref))
            << "seed=" << seed << " len=" << len;
    }
}

TEST(SuffixArray, IsPermutation)
{
    auto ref = randomSeq(100000, 7);
    auto sa = buildSuffixArray(ref);
    ASSERT_EQ(sa.size(), ref.size() + 1);
    std::vector<SaIndex> sorted(sa);
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i)
        ASSERT_EQ(sorted[i], i);
}

TEST(SuffixArray, SuffixesAreSorted)
{
    auto ref = randomSeq(20000, 11);
    auto sa = buildSuffixArray(ref);
    // Spot-check adjacent pairs (full check is O(n^2)).
    auto suffix_leq = [&](SaIndex a, SaIndex b) {
        const u64 n = ref.size();
        while (a < n && b < n) {
            if (ref[a] != ref[b])
                return ref[a] < ref[b];
            ++a;
            ++b;
        }
        return a >= n;
    };
    for (size_t i = 0; i + 1 < sa.size(); i += 97)
        ASSERT_TRUE(suffix_leq(sa[i], sa[i + 1])) << "at " << i;
}

TEST(SuffixArray, SentinelFirst)
{
    auto ref = randomSeq(5000, 13);
    auto sa = buildSuffixArray(ref);
    EXPECT_EQ(sa[0], ref.size());
}

TEST(SuffixArray, GenericAlphabetSixSymbols)
{
    // Exercise the generic path used by the FMD index.
    Rng rng(17);
    std::vector<u8> text(3000);
    for (auto &c : text)
        c = static_cast<u8>(rng.below(6));
    auto sa = buildSuffixArrayGeneric(text, 6);
    ASSERT_EQ(sa.size(), text.size() + 1);
    auto suffix_leq = [&](SaIndex a, SaIndex b) {
        const u64 n = text.size();
        while (a < n && b < n) {
            if (text[a] != text[b])
                return text[a] < text[b];
            ++a;
            ++b;
        }
        return a >= n;
    };
    for (size_t i = 0; i + 1 < sa.size(); ++i)
        ASSERT_TRUE(suffix_leq(sa[i], sa[i + 1]));
}

class SuffixArrayLengthTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(SuffixArrayLengthTest, MatchesNaive)
{
    auto ref = randomSeq(GetParam(), GetParam() * 31 + 5);
    EXPECT_EQ(buildSuffixArray(ref), buildSuffixArrayNaive(ref));
}

INSTANTIATE_TEST_SUITE_P(Lengths, SuffixArrayLengthTest,
                         ::testing::Values(1, 2, 3, 4, 7, 15, 16, 17, 31,
                                           64, 100, 255, 256, 999, 2048));

} // namespace
} // namespace exma
