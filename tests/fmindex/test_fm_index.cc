#include <gtest/gtest.h>

#include <algorithm>

#include "common/dna.hh"
#include "common/rng.hh"
#include "fmindex/fm_index.hh"

namespace exma {
namespace {

std::vector<Base>
randomSeq(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> s(len);
    for (auto &b : s)
        b = static_cast<Base>(rng.below(4));
    return s;
}

/** Brute-force occurrence positions of q in ref. */
std::vector<u64>
naiveFind(const std::vector<Base> &ref, const std::vector<Base> &q)
{
    std::vector<u64> hits;
    if (q.empty() || q.size() > ref.size())
        return hits;
    for (u64 i = 0; i + q.size() <= ref.size(); ++i)
        if (std::equal(q.begin(), q.end(), ref.begin() +
                                               static_cast<std::ptrdiff_t>(i)))
            hits.push_back(i);
    return hits;
}

TEST(FmIndex, PaperExampleTag)
{
    // Fig. 3(e): query TAG over CATAGA ends with interval rows {6},
    // and SA[6] = 2.
    auto ref = encodeSeq("CATAGA");
    FmIndex fm(ref);
    auto iv = fm.search(encodeSeq("TAG"));
    EXPECT_EQ(iv.low, 6u);
    EXPECT_EQ(iv.high, 7u);
    EXPECT_EQ(fm.locate(6), 2u);
}

TEST(FmIndex, PaperExampleIntermediateIntervals)
{
    // Fig. 3(e): (0,7) -> G -> (5,6) -> A -> (2,3)?? The paper's trace
    // is (0,7)->(5,6)->(2,3)->(6,7); verify each step.
    auto ref = encodeSeq("CATAGA");
    FmIndex fm(ref);
    Interval iv = fm.fullInterval();
    EXPECT_EQ(iv, (Interval{0, 7}));
    iv = fm.extend(iv, charToBase('G'));
    EXPECT_EQ(iv, (Interval{5, 6}));
    iv = fm.extend(iv, charToBase('A'));
    EXPECT_EQ(iv, (Interval{2, 3}));
    iv = fm.extend(iv, charToBase('T'));
    EXPECT_EQ(iv, (Interval{6, 7}));
}

TEST(FmIndex, CountArrayMatchesPaper)
{
    // Fig. 3(c): Count = A:1, C:4, G:5, T:6 (with $ counted below A).
    auto ref = encodeSeq("CATAGA");
    FmIndex fm(ref);
    EXPECT_EQ(fm.count(1), 1u); // A
    EXPECT_EQ(fm.count(2), 4u); // C
    EXPECT_EQ(fm.count(3), 5u); // G
    EXPECT_EQ(fm.count(4), 6u); // T
}

TEST(FmIndex, OccMatchesPaperSample)
{
    // Fig. 3(b): Occ(C,5) = 1 over BWT = AGTC$AA.
    auto ref = encodeSeq("CATAGA");
    FmIndex fm(ref);
    EXPECT_EQ(fm.occ(2, 5), 1u);
}

TEST(FmIndex, SearchCountMatchesNaive)
{
    auto ref = randomSeq(5000, 3);
    FmIndex fm(ref);
    Rng rng(99);
    for (int t = 0; t < 200; ++t) {
        const u64 qlen = 1 + rng.below(12);
        std::vector<Base> q(qlen);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
        auto expect = naiveFind(ref, q);
        auto iv = fm.search(q);
        EXPECT_EQ(iv.count(), expect.size()) << "trial " << t;
    }
}

TEST(FmIndex, SearchOfPresentSubstringsAlwaysFound)
{
    auto ref = randomSeq(3000, 5);
    FmIndex fm(ref);
    Rng rng(7);
    for (int t = 0; t < 100; ++t) {
        const u64 len = 5 + rng.below(40);
        const u64 pos = rng.below(ref.size() - len);
        std::vector<Base> q(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        EXPECT_GE(fm.search(q).count(), 1u);
    }
}

TEST(FmIndex, LocateMatchesNaive)
{
    auto ref = randomSeq(2000, 21);
    FmIndex fm(ref);
    Rng rng(22);
    for (int t = 0; t < 60; ++t) {
        const u64 len = 4 + rng.below(10);
        const u64 pos = rng.below(ref.size() - len);
        std::vector<Base> q(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        auto iv = fm.search(q);
        auto got = fm.locateAll(iv);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, naiveFind(ref, q));
    }
}

TEST(FmIndex, EmptyQueryGivesFullInterval)
{
    auto ref = randomSeq(100, 1);
    FmIndex fm(ref);
    EXPECT_EQ(fm.search({}), fm.fullInterval());
}

TEST(FmIndex, AbsentQueryGivesEmptyInterval)
{
    // A query longer than the reference can never match.
    auto ref = encodeSeq("ACGT");
    FmIndex fm(ref);
    auto q = encodeSeq("ACGTACGTA");
    EXPECT_TRUE(fm.search(q).empty());
}

TEST(FmIndex, LfWalkReconstructsText)
{
    auto ref = randomSeq(500, 31);
    FmIndex fm(ref);
    // Walk LF from the row whose suffix is the full text (located at
    // the row with BWT symbol $): reading BWT symbols along the walk
    // yields the text reversed.
    u64 row = 0; // row 0 is the sentinel suffix; bwt[0] = last char
    std::vector<Base> rebuilt;
    for (u64 i = 0; i < ref.size(); ++i) {
        u8 sym = fm.bwtAt(row);
        ASSERT_NE(sym, 0u);
        rebuilt.push_back(static_cast<Base>(sym - 1));
        row = fm.lf(row);
    }
    std::reverse(rebuilt.begin(), rebuilt.end());
    EXPECT_EQ(rebuilt, ref);
}

TEST(FmIndex, OccIsConsistentWithBwt)
{
    auto ref = randomSeq(700, 41);
    FmIndex fm(ref);
    for (u8 sym = 0; sym < 5; ++sym) {
        u64 prev = 0;
        for (u64 i = 1; i <= fm.size(); ++i) {
            u64 cur = fm.occ(sym, i);
            EXPECT_EQ(cur - prev, fm.bwtAt(i - 1) == sym ? 1u : 0u);
            prev = cur;
        }
    }
}

TEST(FmIndex, TraceRecordsTwoRowsPerIteration)
{
    auto ref = randomSeq(4000, 51);
    FmIndex fm(ref);
    auto q = randomSeq(20, 52);
    SearchTrace trace;
    fm.search(q, &trace);
    EXPECT_LE(trace.occ_rows.size(), 2 * q.size());
    EXPECT_EQ(trace.occ_rows.size() % 2, 0u);
}

struct FmConfigCase
{
    u32 occ_sample;
    u32 sa_sample;
};

class FmIndexConfigTest : public ::testing::TestWithParam<FmConfigCase>
{
};

TEST_P(FmIndexConfigTest, SearchAndLocateUnaffectedBySampling)
{
    auto ref = randomSeq(1500, 61);
    FmIndex::Config cfg;
    cfg.occ_sample = GetParam().occ_sample;
    cfg.sa_sample = GetParam().sa_sample;
    FmIndex fm(ref, cfg);
    FmIndex fm_ref(ref); // default config as the oracle
    Rng rng(62);
    for (int t = 0; t < 40; ++t) {
        const u64 len = 3 + rng.below(15);
        const u64 pos = rng.below(ref.size() - len);
        std::vector<Base> q(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        auto a = fm.search(q);
        auto b = fm_ref.search(q);
        EXPECT_EQ(a, b);
        auto la = fm.locateAll(a);
        auto lb = fm_ref.locateAll(b);
        std::sort(la.begin(), la.end());
        std::sort(lb.begin(), lb.end());
        EXPECT_EQ(la, lb);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FmIndexConfigTest,
    ::testing::Values(FmConfigCase{1, 1}, FmConfigCase{3, 5},
                      FmConfigCase{16, 8}, FmConfigCase{64, 32},
                      FmConfigCase{192, 64}));

} // namespace
} // namespace exma
