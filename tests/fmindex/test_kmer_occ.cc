#include <gtest/gtest.h>

#include <algorithm>

#include "common/dna.hh"
#include "common/rng.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/kmer_occ.hh"
#include "fmindex/kstep_fm.hh"

namespace exma {
namespace {

std::vector<Base>
randomSeq(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> s(len);
    for (auto &b : s)
        b = static_cast<Base>(rng.below(4));
    return s;
}

/** Window of k symbols preceding row r, in 0..4 BWT coding over ref·$. */
std::vector<u8>
naiveWindow(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
            u64 r, int k)
{
    const u64 nn = ref.size() + 1;
    std::vector<u8> w(static_cast<size_t>(k));
    for (int j = 0; j < k; ++j) {
        u64 idx = (sa[r] + nn - static_cast<u64>(k - j)) % nn;
        w[static_cast<size_t>(j)] =
            idx == ref.size() ? 0 : static_cast<u8>(ref[idx] + 1);
    }
    return w;
}

TEST(KmerOccTable, FrequenciesSumToRowsMinusSentinelWindows)
{
    auto ref = randomSeq(2000, 1);
    for (int k : {1, 2, 3, 5}) {
        KmerOccTable tab(ref, k);
        u64 total = 0;
        for (Kmer m = 0; m < kmerSpace(k); ++m)
            total += tab.frequency(m);
        // Exactly k windows contain the sentinel.
        EXPECT_EQ(total + static_cast<u64>(k), tab.rows()) << "k=" << k;
    }
}

TEST(KmerOccTable, IncrementsAreSortedAndInRange)
{
    auto ref = randomSeq(3000, 2);
    KmerOccTable tab(ref, 3);
    for (Kmer m = 0; m < kmerSpace(3); ++m) {
        auto inc = tab.increments(m);
        for (size_t i = 0; i + 1 < inc.size(); ++i)
            ASSERT_LT(inc[i], inc[i + 1]);
        if (!inc.empty()) {
            ASSERT_LT(inc.back(), tab.rows());
        }
    }
}

TEST(KmerOccTable, OccMatchesNaiveWindowCounting)
{
    auto ref = randomSeq(500, 3);
    auto sa = buildSuffixArray(ref);
    for (int k : {1, 2, 4}) {
        KmerOccTable tab(ref, sa, k);
        Rng rng(4);
        for (int t = 0; t < 50; ++t) {
            std::vector<Base> q(static_cast<size_t>(k));
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            const Kmer code = packKmer(q.data(), k);
            const u64 row = rng.below(tab.rows() + 1);
            u64 expect = 0;
            for (u64 r = 0; r < row; ++r) {
                auto w = naiveWindow(ref, sa, r, k);
                bool eq = true;
                for (int j = 0; j < k; ++j)
                    eq &= w[static_cast<size_t>(j)] == q[static_cast<size_t>(j)] + 1;
                expect += eq;
            }
            EXPECT_EQ(tab.occ(code, row), expect)
                << "k=" << k << " t=" << t;
        }
    }
}

TEST(KmerOccTable, CountBeforeMatchesNaive)
{
    auto ref = randomSeq(400, 5);
    auto sa = buildSuffixArray(ref);
    for (int k : {1, 2, 3}) {
        KmerOccTable tab(ref, sa, k);
        Rng rng(6);
        for (int t = 0; t < 40; ++t) {
            std::vector<Base> q(static_cast<size_t>(k));
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            const Kmer code = packKmer(q.data(), k);
            // Count rows whose window (anywhere) sorts below q: use the
            // preceding-window multiset, which equals the first-k
            // multiset over all rotations.
            u64 expect = 0;
            for (u64 r = 0; r < tab.rows(); ++r) {
                auto w = naiveWindow(ref, sa, r, k);
                bool less = false;
                for (int j = 0; j < k; ++j) {
                    const u8 qs = static_cast<u8>(q[static_cast<size_t>(j)] + 1);
                    if (w[static_cast<size_t>(j)] != qs) {
                        less = w[static_cast<size_t>(j)] < qs;
                        break;
                    }
                }
                expect += less;
            }
            EXPECT_EQ(tab.countBefore(code), expect)
                << "k=" << k << " t=" << t;
        }
    }
}

TEST(KmerOccTable, BaseOfIsPrefixSumOfFrequencies)
{
    auto ref = randomSeq(1000, 7);
    KmerOccTable tab(ref, 2);
    u64 acc = 0;
    for (Kmer m = 0; m < kmerSpace(2); ++m) {
        EXPECT_EQ(tab.baseOf(m), acc);
        acc += tab.frequency(m);
    }
}

TEST(KmerOccTable, DistinctKmersCounted)
{
    // A reference of all A's has exactly one distinct 2-mer: AA.
    std::vector<Base> ref(64, 0);
    KmerOccTable tab(ref, 2);
    EXPECT_EQ(tab.distinctKmers(), 1u);
    EXPECT_GT(tab.frequency(0), 0u);
}

/**
 * The chunked pool-parallel construction must produce a table
 * bit-identical to the serial build at any width. (Named so the TSan
 * CI job's -R filter picks these suites up.)
 */
class KmerOccParallelBuildTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(KmerOccParallelBuildTest, MatchesSerialBuild)
{
    const unsigned threads = GetParam();
    auto ref = randomSeq(30000, 77);
    auto sa = buildSuffixArray(ref);
    for (int k : {2, 6}) {
        const KmerOccTable serial(ref, sa, k, 1);
        const KmerOccTable parallel(ref, sa, k, threads);
        EXPECT_TRUE(std::ranges::equal(parallel.baseArray(),
                                       serial.baseArray()))
            << "k=" << k << " threads=" << threads;
        EXPECT_TRUE(std::ranges::equal(parallel.allIncrements(),
                                       serial.allIncrements()))
            << "k=" << k << " threads=" << threads;
        EXPECT_EQ(parallel.distinctKmers(), serial.distinctKmers());
        Rng rng(78);
        for (int t = 0; t < 200; ++t) {
            std::vector<Base> q(static_cast<size_t>(k));
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            const Kmer code = packKmer(q.data(), k);
            const u64 row = rng.below(serial.rows() + 1);
            ASSERT_EQ(parallel.occ(code, row), serial.occ(code, row));
            ASSERT_EQ(parallel.countBefore(code),
                      serial.countBefore(code));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, KmerOccParallelBuildTest,
                         ::testing::Values(2u, 3u, 8u));

TEST(KmerOccParallelBuild, AutoPolicyMatchesSerialAboveThreshold)
{
    // 70000 rows crosses the automatic-parallelism threshold; the
    // default-built table must still equal the forced-serial one.
    auto ref = randomSeq(70000, 79);
    auto sa = buildSuffixArray(ref);
    const KmerOccTable serial(ref, sa, 5, 1);
    const KmerOccTable automatic(ref, sa, 5);
    EXPECT_TRUE(std::ranges::equal(automatic.baseArray(),
                                   serial.baseArray()));
    EXPECT_TRUE(std::ranges::equal(automatic.allIncrements(),
                                   serial.allIncrements()));
}

class KStepEquivalenceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KStepEquivalenceTest, SearchEqualsOneStepFmIndex)
{
    const int k = GetParam();
    auto ref = randomSeq(4000, 100 + static_cast<u64>(k));
    auto sa = buildSuffixArray(ref);
    FmIndex fm(ref, sa);
    KmerOccTable tab(ref, sa, k);
    KStepFmIndex kfm(fm, tab);

    Rng rng(200 + static_cast<u64>(k));
    for (int t = 0; t < 120; ++t) {
        // Mix of present substrings and random queries, lengths that
        // exercise remainders of every residue class mod k.
        const u64 len = 1 + rng.below(36);
        std::vector<Base> q;
        if (t % 2 == 0 && len <= ref.size()) {
            const u64 pos = rng.below(ref.size() - len + 1);
            q.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
        } else {
            q.resize(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
        }
        const Interval expect = fm.search(q);
        SearchStats stats;
        const Interval got = kfm.search(q, &stats);
        if (expect.empty()) {
            EXPECT_TRUE(got.empty()) << "k=" << k << " t=" << t;
        } else {
            EXPECT_EQ(got, expect) << "k=" << k << " t=" << t;
            EXPECT_EQ(stats.kstep_iterations, q.size() / static_cast<u64>(k));
            EXPECT_EQ(stats.onestep_iterations,
                      q.size() % static_cast<u64>(k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Steps, KStepEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(KStepFmIndex, StepKmerWithKOneEqualsExtend)
{
    auto ref = randomSeq(800, 9);
    auto sa = buildSuffixArray(ref);
    FmIndex fm(ref, sa);
    KmerOccTable tab(ref, sa, 1);
    KStepFmIndex kfm(fm, tab);
    Rng rng(10);
    Interval iv = fm.fullInterval();
    for (int t = 0; t < 30; ++t) {
        Base c = static_cast<Base>(rng.below(4));
        Interval a = fm.extend(iv, c);
        Interval b = kfm.stepKmer(iv, c);
        ASSERT_EQ(a, b);
        if (a.empty())
            iv = fm.fullInterval();
        else
            iv = a;
    }
}

} // namespace
} // namespace exma
