#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"
#include "shard/sharded_table.hh"

namespace exma {
namespace {

constexpr u64 kMaxQueryLen = 24;

ExmaTable::Config
tableCfg(int k, OccIndexMode mode = OccIndexMode::Exact)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = mode;
    cfg.mtl.epochs = 10;
    cfg.mtl.samples_per_class = 512;
    return cfg;
}

/** Ground truth: one monolithic table's located, sorted hit set. */
std::vector<u64>
singleTableHits(const ExmaTable &table, const std::vector<Base> &query,
                SearchStats *stats = nullptr)
{
    auto hits = table.locateAll(table.search(query, stats));
    std::sort(hits.begin(), hits.end());
    return hits;
}

/**
 * Query mix for one dataset/shard-count pair: random reference
 * substrings (hits), random misses, and — the point of the exercise —
 * substrings centred on every internal shard boundary, so matches that
 * span boundaries are exercised on purpose.
 */
std::vector<std::vector<Base>>
queryMix(const std::vector<Base> &ref, const ShardPlan &plan, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i < 40; ++i) {
        const u64 len = 6 + rng.below(kMaxQueryLen - 5);
        if (i % 5 == 4) { // pure-random, mostly a miss
            std::vector<Base> q(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            qs.push_back(std::move(q));
        } else {
            const u64 pos = rng.below(ref.size() - len + 1);
            qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        }
    }
    // One straddler per internal boundary: starts kMaxQueryLen/2 bases
    // before a later shard's begin, so it crosses that boundary.
    for (size_t s = 1; s < plan.size(); ++s) {
        const u64 boundary = plan.shards()[s].begin;
        const u64 start = boundary - std::min<u64>(boundary,
                                                   kMaxQueryLen / 2);
        const u64 len = std::min<u64>(kMaxQueryLen, ref.size() - start);
        qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(start),
                        ref.begin() +
                            static_cast<std::ptrdiff_t>(start + len));
    }
    return qs;
}

TEST(ShardedExmaTable, HitSetMatchesSingleTableOnAllDatasets)
{
    for (const std::string &name : datasetNames()) {
        const Dataset ds = makeDataset(name, 0.001);
        const auto cfg = tableCfg(ds.exma_k);
        const ExmaTable single(ds.ref, cfg);

        for (unsigned n_shards : {1u, 2u, 8u}) {
            const auto plan = ShardPlan::fixedWidth(
                ds.ref.size(), n_shards, kMaxQueryLen);
            ShardedExmaTable::Config scfg;
            scfg.table = cfg;
            const ShardedExmaTable sharded(ds.ref, plan, scfg);
            ASSERT_EQ(sharded.shardCount(), plan.size());

            const auto qs = queryMix(ds.ref, plan, 7 + n_shards);
            BatchConfig bc;
            bc.threads = 4;
            bc.grain = 3;
            const ShardedResult r = sharded.search(qs, bc);
            ASSERT_EQ(r.hits.size(), qs.size());

            for (size_t i = 0; i < qs.size(); ++i) {
                const auto expect = singleTableHits(single, qs[i]);
                EXPECT_EQ(r.hits[i], expect)
                    << name << " shards=" << n_shards << " query " << i;
                // Dedup really happened: strictly increasing positions.
                EXPECT_TRUE(std::adjacent_find(r.hits[i].begin(),
                                               r.hits[i].end()) ==
                            r.hits[i].end());
            }
        }
    }
}

TEST(ShardedExmaTable, BoundarySpanningMatchFoundExactlyOnce)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 8, kMaxQueryLen);
    ASSERT_GE(plan.size(), 2u);
    ShardedExmaTable::Config scfg;
    scfg.table = tableCfg(ds.exma_k);
    const ShardedExmaTable sharded(ds.ref, plan, scfg);

    for (size_t s = 1; s < plan.size(); ++s) {
        const u64 boundary = plan.shards()[s].begin;
        const u64 start = boundary - kMaxQueryLen / 2;
        const std::vector<Base> q(
            ds.ref.begin() + static_cast<std::ptrdiff_t>(start),
            ds.ref.begin() +
                static_cast<std::ptrdiff_t>(start + kMaxQueryLen));
        const auto hits = sharded.findAll(q);
        // The planted occurrence is reported once, despite straddling
        // the boundary (and possibly lying in two shards' overlap).
        EXPECT_EQ(std::count(hits.begin(), hits.end(), start), 1)
            << "boundary at " << boundary;
        EXPECT_FALSE(hits.empty());
    }
}

TEST(ShardedExmaTable, OneShardEqualsSingleTableStats)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 1, kMaxQueryLen);
    ShardedExmaTable::Config scfg;
    scfg.table = cfg;
    const ShardedExmaTable sharded(ds.ref, plan, scfg);

    const auto qs = queryMix(ds.ref, plan, 5);
    SearchStats expect;
    std::vector<std::vector<u64>> expect_hits;
    for (const auto &q : qs)
        expect_hits.push_back(singleTableHits(single, q, &expect));

    const ShardedResult r = sharded.search(qs);
    EXPECT_EQ(r.stats, expect); // one shard == the monolithic table
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(r.hits[i], expect_hits[i]);
    EXPECT_EQ(r.queries, qs.size());
}

TEST(ShardedExmaTable, PerShardStatsMergeToTotal)
{
    const Dataset ds = makeDataset("picea", 0.001);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 4, kMaxQueryLen);
    ShardedExmaTable::Config scfg;
    scfg.table = tableCfg(ds.exma_k);
    const ShardedExmaTable sharded(ds.ref, plan, scfg);

    const auto qs = queryMix(ds.ref, plan, 11);
    const ShardedResult r = sharded.search(qs);
    ASSERT_EQ(r.per_shard.size(), plan.size());
    SearchStats merged;
    for (const SearchStats &s : r.per_shard)
        merged += s;
    EXPECT_EQ(merged, r.stats);
    EXPECT_GT(r.stats.kstep_iterations, 0u);

    // findAll merges the same per-shard stats for a lone query.
    SearchStats lone;
    const auto hits = sharded.findAll(qs[0], &lone);
    EXPECT_GT(lone.kstep_iterations, 0u);
    EXPECT_EQ(hits, r.hits[0]);
}

TEST(ShardedExmaTable, LearnedModeMatchesExactMode)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 2, kMaxQueryLen);
    ShardedExmaTable::Config exact, mtl;
    exact.table = tableCfg(ds.exma_k, OccIndexMode::Exact);
    mtl.table = tableCfg(ds.exma_k, OccIndexMode::Mtl);
    const ShardedExmaTable a(ds.ref, plan, exact);
    const ShardedExmaTable b(ds.ref, plan, mtl);

    const auto qs = queryMix(ds.ref, plan, 23);
    const ShardedResult ra = a.search(qs);
    const ShardedResult rb = b.search(qs);
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(ra.hits[i], rb.hits[i]) << "query " << i;
}

TEST(ShardedExmaTable, PerRecordPlanFindsWithinRecordMatches)
{
    // Two-record dataset: per-record shards must find in-record matches
    // at their global coordinates.
    std::vector<FastaRecord> recs;
    ReferenceSpec spec;
    spec.length = 4096;
    spec.seed = 31;
    recs.push_back({"chrA", generateReference(spec)});
    spec.seed = 32;
    recs.push_back({"chrB", generateReference(spec)});
    const Dataset ds = makeDatasetFromRecords("human", recs);

    const auto plan = ShardPlan::perRecord(ds.records);
    ASSERT_EQ(plan.size(), 2u);
    ShardedExmaTable::Config scfg;
    scfg.table = tableCfg(5);
    const ShardedExmaTable sharded(ds.ref, plan, scfg);

    // A probe from the middle of chrB, located globally.
    const u64 start = 4096 + 1000;
    const std::vector<Base> q(
        ds.ref.begin() + start, ds.ref.begin() + start + 20);
    const auto hits = sharded.findAll(q);
    EXPECT_EQ(std::count(hits.begin(), hits.end(), start), 1);
    // Unbounded plans accept long queries.
    EXPECT_FALSE(plan.boundsQueries());
}

TEST(ShardedExmaTable, LocateLimitAppliesGloballyAfterMerge)
{
    // Regression: forwarding locate_limit per shard truncated each
    // shard's hits in SA order — an arbitrary, shard-count-dependent
    // subset. The cap must instead keep the lowest global positions.
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 8, kMaxQueryLen);
    ShardedExmaTable::Config scfg;
    scfg.table = cfg;
    const ShardedExmaTable sharded(ds.ref, plan, scfg);

    // Short queries so several have multiple occurrences.
    std::vector<std::vector<Base>> qs;
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        const u64 pos = rng.below(ds.ref.size() - 6);
        qs.emplace_back(ds.ref.begin() + static_cast<std::ptrdiff_t>(pos),
                        ds.ref.begin() + static_cast<std::ptrdiff_t>(pos + 6));
    }
    BatchConfig bc;
    bc.locate_limit = 3;
    const ShardedResult r = sharded.search(qs, bc);
    bool saw_capped = false;
    for (size_t i = 0; i < qs.size(); ++i) {
        const auto full = singleTableHits(single, qs[i]);
        const size_t expect = std::min<size_t>(full.size(), 3);
        ASSERT_EQ(r.hits[i].size(), expect) << "query " << i;
        // The survivors are exactly the lowest positions.
        EXPECT_TRUE(std::equal(r.hits[i].begin(), r.hits[i].end(),
                               full.begin()))
            << "query " << i;
        saw_capped |= full.size() > 3;
    }
    EXPECT_TRUE(saw_capped) << "fixture never exceeded the cap";
}

TEST(ShardedExmaTable, EmptyBatch)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto plan = ShardPlan::fixedWidth(ds.ref.size(), 2, kMaxQueryLen);
    ShardedExmaTable::Config scfg;
    scfg.table = tableCfg(ds.exma_k);
    const ShardedExmaTable sharded(ds.ref, plan, scfg);
    const ShardedResult r = sharded.search({});
    EXPECT_TRUE(r.hits.empty());
    EXPECT_EQ(r.queries, 0u);
    EXPECT_EQ(r.stats, SearchStats{});
    EXPECT_EQ(r.totalHits(), 0u);
}

} // namespace
} // namespace exma
