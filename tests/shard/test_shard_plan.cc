#include <gtest/gtest.h>

#include "common/rng.hh"
#include "shard/shard_plan.hh"

namespace exma {
namespace {

std::vector<Base>
randomRef(u64 len, u64 seed)
{
    Rng rng(seed);
    std::vector<Base> ref(len);
    for (auto &b : ref)
        b = static_cast<Base>(rng.below(4));
    return ref;
}

/** A-padded prefix code of position @p g, computed the slow way. */
Kmer
paddedCode(const std::vector<Base> &ref, u64 g, int p)
{
    Kmer c = 0;
    for (int i = 0; i < p; ++i) {
        const Base b =
            g + static_cast<u64>(i) < ref.size() ? ref[g + i] : Base{0};
        c = (c << 2) | b;
    }
    return c;
}

TEST(ShardPlan, FixedWidthCoversReference)
{
    const auto plan = ShardPlan::fixedWidth(10000, 4, 101);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.refLength(), 10000u);
    EXPECT_EQ(plan.overlap(), 100u);
    EXPECT_EQ(plan.maxQueryLen(), 101u);
    EXPECT_TRUE(plan.boundsQueries());

    // Strides tile [0, ref_len); each shard extends `overlap` past its
    // stride (clamped at the end).
    EXPECT_EQ(plan.shards()[0].begin, 0u);
    EXPECT_EQ(plan.shards()[0].length, 2500u + 100u);
    EXPECT_EQ(plan.shards()[1].begin, 2500u);
    EXPECT_EQ(plan.shards()[3].begin, 7500u);
    EXPECT_EQ(plan.shards()[3].end(), 10000u);

    // Union of shards covers every base exactly (no gaps).
    u64 covered_to = 0;
    for (const Shard &s : plan.shards()) {
        EXPECT_LE(s.begin, covered_to);
        covered_to = std::max(covered_to, s.end());
    }
    EXPECT_EQ(covered_to, plan.refLength());
}

TEST(ShardPlan, FixedWidthGuaranteesBoundarySpanningMatches)
{
    // Every possible match of length <= max_query_len must lie fully
    // inside at least one shard.
    const u64 len = 3137; // deliberately not a multiple of anything
    const u64 max_q = 24;
    for (unsigned n : {1u, 2u, 3u, 8u, 16u}) {
        const auto plan = ShardPlan::fixedWidth(len, n, max_q);
        for (u64 p = 0; p + max_q <= len; ++p) {
            bool contained = false;
            for (const Shard &s : plan.shards())
                contained |= s.begin <= p && p + max_q <= s.end();
            ASSERT_TRUE(contained)
                << "match [" << p << ", " << p + max_q << ") escapes all "
                << n << " shards";
        }
    }
}

TEST(ShardPlan, SingleShardIsWholeReference)
{
    const auto plan = ShardPlan::fixedWidth(5000, 1, 101);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.shards()[0].begin, 0u);
    EXPECT_EQ(plan.shards()[0].length, 5000u);
}

TEST(ShardPlan, TinyReferenceDropsExcessShards)
{
    // 100 bases across 64 requested shards: stride 2, all 50 usable.
    const auto plan = ShardPlan::fixedWidth(100, 64, 8);
    EXPECT_LE(plan.size(), 64u);
    EXPECT_GT(plan.size(), 0u);
    EXPECT_EQ(plan.shards().back().end(), 100u);
}

TEST(ShardPlan, FixedWidthRejectsOverlongQueryBound)
{
    // Regression: max_query_len > ref_len (kUnboundedQueryLen in
    // particular) made overlap_ wrap u64 and opened silent coverage
    // gaps at every boundary; it must be rejected outright.
    EXPECT_DEATH(ShardPlan::fixedWidth(1000, 4, 1001),
                 "exceeds the 1000-base reference");
    EXPECT_DEATH(
        ShardPlan::fixedWidth(1000000, 8, ShardPlan::kUnboundedQueryLen),
        "exceeds the");
    // At exactly ref_len the plan is one full-cover shard per stride.
    const auto plan = ShardPlan::fixedWidth(1000, 4, 1000);
    for (const Shard &s : plan.shards())
        EXPECT_EQ(s.end(), 1000u);
}

TEST(ShardPlan, PerRecordFollowsSpans)
{
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000}, {"chr2", 4000, 2500}, {"chr3", 6500, 1000}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.refLength(), 7500u);
    EXPECT_EQ(plan.overlap(), 0u);
    EXPECT_FALSE(plan.boundsQueries());
    EXPECT_EQ(plan.shards()[1],
              (Shard{"chr2", 4000, 2500}));
}

TEST(ShardPlan, PerRecordSkipsEmptyRecords)
{
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000}, {"empty", 4000, 0}, {"chr2", 4000, 96}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.refLength(), 4096u);
    EXPECT_EQ(plan.shards()[1].name, "chr2");
}

TEST(ShardPlan, PerRecordFoldsTinyRecordsIntoNeighbours)
{
    // Real assemblies carry sub-64-base scaffolds; they must merge
    // into a neighbouring shard instead of producing unbuildable
    // tables (or aborting the run).
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000},
        {"scaf1", 4000, 10},   // tiny: opens a pending shard...
        {"scaf2", 4010, 20},   // ...absorbed while still tiny...
        {"chr2", 4030, 1000},  // ...and topped up past the minimum
        {"tail", 5030, 5}};    // tiny at the end: folds backwards
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.shards()[0], (Shard{"chr1", 0, 4000}));
    EXPECT_EQ(plan.shards()[1],
              (Shard{"scaf1+scaf2+chr2+tail", 4000, 1035}));
    EXPECT_EQ(plan.refLength(), 5035u);
    // Every shard is indexable.
    for (const Shard &s : plan.shards())
        EXPECT_GE(s.length, ShardPlan::kMinShardBases);
    // Coverage still gapless and contiguous.
    u64 cursor = 0;
    for (const Shard &s : plan.shards()) {
        EXPECT_EQ(s.begin, cursor);
        cursor = s.end();
    }
    EXPECT_EQ(cursor, plan.refLength());
}

TEST(ShardPlan, PerRecordFoldsLoneLeadingTinyRecordForward)
{
    const std::vector<RecordSpan> spans = {
        {"scaf", 0, 8}, {"chr1", 8, 4088}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.shards()[0], (Shard{"scaf+chr1", 0, 4096}));
}

TEST(ShardPlan, KmerPrefixRangesPartitionCodeSpace)
{
    const auto ref = randomRef(2000, 11);
    for (unsigned n : {1u, 2u, 5u, 8u}) {
        const auto plan = ShardPlan::kmerPrefix(ref, n, 12, 3);
        ASSERT_EQ(plan.size(), n);
        ASSERT_EQ(plan.prefixRanges().size(), n);
        EXPECT_EQ(plan.kind(), ShardPlanKind::KmerPrefix);
        EXPECT_EQ(plan.prefixLen(), 3);
        EXPECT_TRUE(plan.boundsQueries());
        EXPECT_EQ(plan.maxQueryLen(), 12u);

        // Contiguous cover of [0, 4^3).
        EXPECT_EQ(plan.prefixRanges().front().lo, 0u);
        EXPECT_EQ(plan.prefixRanges().back().hi, kmerSpace(3));
        for (size_t s = 1; s < n; ++s)
            EXPECT_EQ(plan.prefixRanges()[s].lo,
                      plan.prefixRanges()[s - 1].hi);

        // ownerOf lands inside the containing range for every code.
        for (Kmer c = 0; c < kmerSpace(3); ++c) {
            const size_t s = plan.ownerOf(c);
            EXPECT_TRUE(plan.prefixRanges()[s].contains(c)) << "code " << c;
        }
    }
}

TEST(ShardPlan, KmerPrefixSegmentsCoverEveryOwnedWindow)
{
    const auto ref = randomRef(1500, 23);
    const u64 max_q = 9;
    const auto plan = ShardPlan::kmerPrefix(ref, 4, max_q, 3);

    for (size_t s = 0; s < plan.size(); ++s) {
        if (!plan.segmentsOf(s).empty())
            validateSegments(plan.segmentsOf(s), ref.size());
        EXPECT_EQ(plan.shards()[s].length,
                  segmentsLocalLength(plan.segmentsOf(s)));
    }

    // Routing invariant: every position's full context window lies
    // inside one segment of its owner's map, so any match starting
    // there (length <= max_q) is findable in the owner shard.
    for (u64 g = 0; g < ref.size(); ++g) {
        const size_t s = plan.ownerOf(paddedCode(ref, g, 3));
        const u64 wend = std::min<u64>(ref.size(), g + max_q);
        bool covered = false;
        for (const TextSegment &seg : plan.segmentsOf(s))
            covered |= seg.global_begin <= g && wend <= seg.global_end();
        ASSERT_TRUE(covered)
            << "window [" << g << ", " << wend << ") escapes shard " << s;
    }
}

TEST(ShardPlan, KmerPrefixQueryRangeCoversPaddedOwnership)
{
    const auto ref = randomRef(800, 31);
    const int p = 4;
    const auto plan = ShardPlan::kmerPrefix(ref, 4, 16, p);

    // Full-length prefix pins exactly one code.
    for (u64 g = 0; g + static_cast<u64>(p) <= ref.size(); g += 37) {
        const PrefixRange r = plan.queryPrefixRange(ref.data() + g, 16);
        EXPECT_EQ(r.hi, r.lo + 1);
        EXPECT_EQ(r.lo, packKmer(ref.data() + g, p));
    }
    // A short query's padded range contains the padded code of every
    // position it can match at — including tail positions.
    Rng rng(5);
    for (int rep = 0; rep < 200; ++rep) {
        const u64 len = 1 + rng.below(static_cast<u64>(p) - 1);
        const u64 g = rng.below(ref.size() - 1);
        const u64 take = std::min<u64>(len, ref.size() - g);
        const PrefixRange r = plan.queryPrefixRange(ref.data() + g, take);
        EXPECT_TRUE(r.contains(paddedCode(ref, g, p)))
            << "pos " << g << " len " << take;
    }
}

TEST(ShardPlan, KmerPrefixAutoPrefixScalesWithShardCount)
{
    const auto ref = randomRef(4000, 7);
    for (unsigned n : {1u, 4u, 64u}) {
        const auto plan = ShardPlan::kmerPrefix(ref, n, 8);
        EXPECT_GE(plan.prefixLen(), 2);
        EXPECT_LE(plan.prefixLen(), 8);
        EXPECT_TRUE(plan.prefixLen() == 8 ||
                    kmerSpace(plan.prefixLen()) >= u64{64} * n)
            << "shards " << n << " got p=" << plan.prefixLen();
    }
}

TEST(ShardPlan, KmerPrefixSkewedReferenceLeavesEmptyRanges)
{
    // All-A reference: one shard owns everything, the rest own code
    // ranges with no occurrences — legal, with empty segment maps.
    const std::vector<Base> ref(300, 0);
    const auto plan = ShardPlan::kmerPrefix(ref, 4, 8, 2);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.segmentsOf(0).size(), 1u);
    EXPECT_EQ(plan.segmentsOf(0)[0].length, 300u);
    for (size_t s = 1; s < plan.size(); ++s) {
        EXPECT_TRUE(plan.segmentsOf(s).empty()) << "shard " << s;
        EXPECT_EQ(plan.shards()[s].length, 0u);
    }
    // ownerOf still resolves every code despite the empty ranges.
    for (Kmer c = 0; c < kmerSpace(2); ++c)
        EXPECT_TRUE(plan.prefixRanges()[plan.ownerOf(c)].contains(c));
}

} // namespace
} // namespace exma
