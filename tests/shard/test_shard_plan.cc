#include <gtest/gtest.h>

#include "shard/shard_plan.hh"

namespace exma {
namespace {

TEST(ShardPlan, FixedWidthCoversReference)
{
    const auto plan = ShardPlan::fixedWidth(10000, 4, 101);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.refLength(), 10000u);
    EXPECT_EQ(plan.overlap(), 100u);
    EXPECT_EQ(plan.maxQueryLen(), 101u);
    EXPECT_TRUE(plan.boundsQueries());

    // Strides tile [0, ref_len); each shard extends `overlap` past its
    // stride (clamped at the end).
    EXPECT_EQ(plan.shards()[0].begin, 0u);
    EXPECT_EQ(plan.shards()[0].length, 2500u + 100u);
    EXPECT_EQ(plan.shards()[1].begin, 2500u);
    EXPECT_EQ(plan.shards()[3].begin, 7500u);
    EXPECT_EQ(plan.shards()[3].end(), 10000u);

    // Union of shards covers every base exactly (no gaps).
    u64 covered_to = 0;
    for (const Shard &s : plan.shards()) {
        EXPECT_LE(s.begin, covered_to);
        covered_to = std::max(covered_to, s.end());
    }
    EXPECT_EQ(covered_to, plan.refLength());
}

TEST(ShardPlan, FixedWidthGuaranteesBoundarySpanningMatches)
{
    // Every possible match of length <= max_query_len must lie fully
    // inside at least one shard.
    const u64 len = 3137; // deliberately not a multiple of anything
    const u64 max_q = 24;
    for (unsigned n : {1u, 2u, 3u, 8u, 16u}) {
        const auto plan = ShardPlan::fixedWidth(len, n, max_q);
        for (u64 p = 0; p + max_q <= len; ++p) {
            bool contained = false;
            for (const Shard &s : plan.shards())
                contained |= s.begin <= p && p + max_q <= s.end();
            ASSERT_TRUE(contained)
                << "match [" << p << ", " << p + max_q << ") escapes all "
                << n << " shards";
        }
    }
}

TEST(ShardPlan, SingleShardIsWholeReference)
{
    const auto plan = ShardPlan::fixedWidth(5000, 1, 101);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.shards()[0].begin, 0u);
    EXPECT_EQ(plan.shards()[0].length, 5000u);
}

TEST(ShardPlan, TinyReferenceDropsExcessShards)
{
    // 100 bases across 64 requested shards: stride 2, all 50 usable.
    const auto plan = ShardPlan::fixedWidth(100, 64, 8);
    EXPECT_LE(plan.size(), 64u);
    EXPECT_GT(plan.size(), 0u);
    EXPECT_EQ(plan.shards().back().end(), 100u);
}

TEST(ShardPlan, FixedWidthRejectsOverlongQueryBound)
{
    // Regression: max_query_len > ref_len (kUnboundedQueryLen in
    // particular) made overlap_ wrap u64 and opened silent coverage
    // gaps at every boundary; it must be rejected outright.
    EXPECT_DEATH(ShardPlan::fixedWidth(1000, 4, 1001),
                 "exceeds the 1000-base reference");
    EXPECT_DEATH(
        ShardPlan::fixedWidth(1000000, 8, ShardPlan::kUnboundedQueryLen),
        "exceeds the");
    // At exactly ref_len the plan is one full-cover shard per stride.
    const auto plan = ShardPlan::fixedWidth(1000, 4, 1000);
    for (const Shard &s : plan.shards())
        EXPECT_EQ(s.end(), 1000u);
}

TEST(ShardPlan, PerRecordFollowsSpans)
{
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000}, {"chr2", 4000, 2500}, {"chr3", 6500, 1000}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.refLength(), 7500u);
    EXPECT_EQ(plan.overlap(), 0u);
    EXPECT_FALSE(plan.boundsQueries());
    EXPECT_EQ(plan.shards()[1],
              (Shard{"chr2", 4000, 2500}));
}

TEST(ShardPlan, PerRecordSkipsEmptyRecords)
{
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000}, {"empty", 4000, 0}, {"chr2", 4000, 96}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.refLength(), 4096u);
    EXPECT_EQ(plan.shards()[1].name, "chr2");
}

TEST(ShardPlan, PerRecordFoldsTinyRecordsIntoNeighbours)
{
    // Real assemblies carry sub-64-base scaffolds; they must merge
    // into a neighbouring shard instead of producing unbuildable
    // tables (or aborting the run).
    const std::vector<RecordSpan> spans = {
        {"chr1", 0, 4000},
        {"scaf1", 4000, 10},   // tiny: opens a pending shard...
        {"scaf2", 4010, 20},   // ...absorbed while still tiny...
        {"chr2", 4030, 1000},  // ...and topped up past the minimum
        {"tail", 5030, 5}};    // tiny at the end: folds backwards
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.shards()[0], (Shard{"chr1", 0, 4000}));
    EXPECT_EQ(plan.shards()[1],
              (Shard{"scaf1+scaf2+chr2+tail", 4000, 1035}));
    EXPECT_EQ(plan.refLength(), 5035u);
    // Every shard is indexable.
    for (const Shard &s : plan.shards())
        EXPECT_GE(s.length, ShardPlan::kMinShardBases);
    // Coverage still gapless and contiguous.
    u64 cursor = 0;
    for (const Shard &s : plan.shards()) {
        EXPECT_EQ(s.begin, cursor);
        cursor = s.end();
    }
    EXPECT_EQ(cursor, plan.refLength());
}

TEST(ShardPlan, PerRecordFoldsLoneLeadingTinyRecordForward)
{
    const std::vector<RecordSpan> spans = {
        {"scaf", 0, 8}, {"chr1", 8, 4088}};
    const auto plan = ShardPlan::perRecord(spans);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan.shards()[0], (Shard{"scaf+chr1", 0, 4096}));
}

} // namespace
} // namespace exma
