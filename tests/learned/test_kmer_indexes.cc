#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "fmindex/kmer_occ.hh"
#include "genome/reference.hh"
#include "learned/mtl_index.hh"
#include "learned/naive_kmer_index.hh"

namespace exma {
namespace {

/** A small repetitive reference shared across these tests. */
const std::vector<Base> &
testRef()
{
    static const std::vector<Base> ref = [] {
        ReferenceSpec spec;
        spec.length = 1 << 17; // 128 Kbp
        spec.repeat_fraction = 0.6;
        spec.seed = 33;
        return generateReference(spec);
    }();
    return ref;
}

const KmerOccTable &
testTable()
{
    // k = 4 over 128 Kbp: 256 k-mers averaging ~512 increments, so a
    // healthy share sits above the paper's 256-increment threshold.
    static const KmerOccTable tab(testRef(), 4);
    return tab;
}

NaiveKmerIndex::Config
fastNaiveCfg()
{
    NaiveKmerIndex::Config cfg;
    cfg.epochs = 10;
    return cfg;
}

MtlIndex::Config
fastMtlCfg()
{
    MtlIndex::Config cfg;
    cfg.epochs = 200;
    cfg.samples_per_class = 2048;
    // The 128 Kbp test genome has k-mer frequencies of only a few
    // hundred; scale the leaf granularity down with it so the
    // MTL-vs-naive granularity ratio matches the full-scale setup.
    cfg.leaf_size = 64;
    return cfg;
}

TEST(NaiveKmerIndex, RanksAreExact)
{
    const auto &tab = testTable();
    NaiveKmerIndex idx(tab, fastNaiveCfg());
    Rng rng(1);
    for (int t = 0; t < 300; ++t) {
        const Kmer m = rng.below(kmerSpace(tab.k()));
        const u64 pos = rng.below(tab.rows() + 1);
        EXPECT_EQ(idx.occ(m, pos).rank, tab.occ(m, pos)) << "t=" << t;
    }
}

TEST(NaiveKmerIndex, ModelsOnlyAboveThreshold)
{
    const auto &tab = testTable();
    NaiveKmerIndex idx(tab, fastNaiveCfg());
    for (Kmer m = 0; m < kmerSpace(tab.k()); m += 7) {
        if (tab.frequency(m) <= 256)
            EXPECT_FALSE(idx.hasModel(m));
        else
            EXPECT_TRUE(idx.hasModel(m));
    }
    EXPECT_GT(idx.modelCount(), 0u);
}

TEST(NaiveKmerIndex, LookupReportsModelUsage)
{
    const auto &tab = testTable();
    NaiveKmerIndex idx(tab, fastNaiveCfg());
    // Find a heavy and a light k-mer.
    Kmer heavy = 0, light = 0;
    for (Kmer m = 0; m < kmerSpace(tab.k()); ++m) {
        if (tab.frequency(m) > 256)
            heavy = m;
        else if (tab.frequency(m) > 0)
            light = m;
    }
    EXPECT_TRUE(idx.occ(heavy, tab.rows() / 2).used_model);
    EXPECT_FALSE(idx.occ(light, tab.rows() / 2).used_model);
}

TEST(MtlIndex, RanksAreExact)
{
    const auto &tab = testTable();
    MtlIndex idx(tab, fastMtlCfg());
    Rng rng(2);
    for (int t = 0; t < 300; ++t) {
        const Kmer m = rng.below(kmerSpace(tab.k()));
        const u64 pos = rng.below(tab.rows() + 1);
        EXPECT_EQ(idx.occ(m, pos).rank, tab.occ(m, pos)) << "t=" << t;
    }
}

TEST(MtlIndex, ClassBucketsMatchFig12Axis)
{
    EXPECT_EQ(MtlIndex::classOf(0), 0);
    EXPECT_EQ(MtlIndex::classOf(1), 1);
    EXPECT_EQ(MtlIndex::classOf(2), 2);
    EXPECT_EQ(MtlIndex::classOf(256), 2);
    EXPECT_EQ(MtlIndex::classOf(257), 3);
    EXPECT_EQ(MtlIndex::classOf(1 << 20), 8);
    EXPECT_EQ(MtlIndex::classOf((1 << 20) + 1), 9);
    EXPECT_STREQ(MtlIndex::className(7), "64K-256K");
    EXPECT_STREQ(MtlIndex::className(9), ">1M");
}

TEST(MtlIndex, MoreAccurateThanNaive)
{
    // The paper's Fig. 13: the MTL index has markedly smaller
    // prediction errors than per-k-mer learned indexes.
    const auto &tab = testTable();
    NaiveKmerIndex naive(tab, fastNaiveCfg());
    MtlIndex mtl(tab, fastMtlCfg());
    Rng rng(3);
    double naive_err = 0.0, mtl_err = 0.0;
    u64 samples = 0;
    for (Kmer m = 0; m < kmerSpace(tab.k()); ++m) {
        if (tab.frequency(m) <= 256)
            continue;
        for (int t = 0; t < 8; ++t) {
            const u64 pos = rng.below(tab.rows() + 1);
            naive_err += static_cast<double>(naive.occ(m, pos).error);
            mtl_err += static_cast<double>(mtl.occ(m, pos).error);
            ++samples;
        }
    }
    ASSERT_GT(samples, 0u);
    EXPECT_LT(mtl_err, naive_err * 0.8)
        << "naive mean " << naive_err / static_cast<double>(samples)
        << " vs mtl mean " << mtl_err / static_cast<double>(samples);
}

TEST(MtlIndex, FewerParametersThanNaive)
{
    // §IV.B: the MTL index is smaller because k-mers share the non-leaf
    // parameters.
    const auto &tab = testTable();
    NaiveKmerIndex naive(tab, fastNaiveCfg());
    MtlIndex::Config mtl_cfg = fastMtlCfg();
    MtlIndex mtl(tab, mtl_cfg);
    EXPECT_GT(naive.paramCount(), 0u);
    EXPECT_GT(mtl.paramCount(), 0u);
    EXPECT_LT(mtl.paramCount(), naive.paramCount() * 2)
        << "naive=" << naive.paramCount() << " mtl=" << mtl.paramCount();
}

TEST(MtlIndex, BinarySearchFallbackForLightKmers)
{
    const auto &tab = testTable();
    MtlIndex idx(tab, fastMtlCfg());
    for (Kmer m = 0; m < kmerSpace(tab.k()); ++m) {
        if (tab.frequency(m) > 0 && tab.frequency(m) <= 256) {
            auto lk = idx.occ(m, tab.rows() / 3);
            EXPECT_FALSE(lk.used_model);
            EXPECT_EQ(lk.rank, tab.occ(m, tab.rows() / 3));
            break;
        }
    }
}

} // namespace
} // namespace exma
