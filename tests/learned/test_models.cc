#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "learned/linear_model.hh"
#include "learned/mlp.hh"
#include "learned/rmi.hh"

namespace exma {
namespace {

TEST(LinearModel, FitsExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i + 7.0);
    }
    auto m = LinearModel::fitXY(xs, ys);
    EXPECT_NEAR(m.w, 3.0, 1e-9);
    EXPECT_NEAR(m.b, 7.0, 1e-9);
}

TEST(LinearModel, FitRanksRecoversCdfSlope)
{
    // Keys 0, 2, 4, ... have rank i = key/2.
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(2.0 * i);
    auto m = LinearModel::fitRanks(xs, 0.0);
    EXPECT_NEAR(m.w, 0.5, 1e-9);
    EXPECT_NEAR(m.b, 0.0, 1e-9);
}

TEST(LinearModel, DegenerateConstantKeys)
{
    std::vector<double> xs(10, 5.0);
    auto m = LinearModel::fitRanks(xs, 3.0);
    EXPECT_DOUBLE_EQ(m.w, 0.0);
    EXPECT_NEAR(m.predict(5.0), 7.5, 1e-9); // mean rank
}

TEST(LinearModel, SingleAndEmpty)
{
    EXPECT_DOUBLE_EQ(LinearModel::fitRanks({}, 0.0).predict(1.0), 0.0);
    std::vector<double> one = {4.0};
    EXPECT_DOUBLE_EQ(LinearModel::fitRanks(one, 9.0).predict(4.0), 9.0);
}

TEST(Mlp, ParamCountMatchesPaperShape)
{
    // 1 input, 10 hidden sigmoid: 10 w1 + 10 b1 + 10 w2 + 1 b2 = 31.
    Mlp m1(1, 10, 1);
    EXPECT_EQ(m1.paramCount(), 31u);
    // The MTL non-leaf takes two inputs (k-mer, pos): 41 parameters.
    Mlp m2(2, 10, 1);
    EXPECT_EQ(m2.paramCount(), 41u);
}

TEST(Mlp, LearnsLinearFunction)
{
    Mlp mlp(1, 10, 42);
    std::vector<Mlp::Sample> samples;
    for (int i = 0; i <= 100; ++i) {
        double x = i / 100.0;
        samples.push_back({x, 0.0, 0.8 * x + 0.1});
    }
    mlp.train(samples, 400, 0.05);
    for (double x : {0.1, 0.5, 0.9})
        EXPECT_NEAR(mlp.predict(x), 0.8 * x + 0.1, 0.05) << "x=" << x;
}

TEST(Mlp, LearnsMildlyNonlinearCdf)
{
    Mlp mlp(1, 10, 7);
    std::vector<Mlp::Sample> samples;
    for (int i = 0; i <= 200; ++i) {
        double x = i / 200.0;
        samples.push_back({x, 0.0, x * x}); // convex CDF
    }
    mlp.train(samples, 600, 0.05);
    double worst = 0.0;
    for (int i = 0; i <= 20; ++i) {
        double x = i / 20.0;
        worst = std::max(worst, std::abs(mlp.predict(x) - x * x));
    }
    EXPECT_LT(worst, 0.08);
}

TEST(Mlp, TwoInputTaskSeparation)
{
    // y depends on both inputs; a 1-input model could not fit this.
    Mlp mlp(2, 10, 9);
    std::vector<Mlp::Sample> samples;
    for (int a = 0; a <= 10; ++a)
        for (int b = 0; b <= 10; ++b)
            samples.push_back(
                {a / 10.0, b / 10.0, 0.5 * (a / 10.0) + 0.4 * (b / 10.0)});
    mlp.train(samples, 500, 0.05);
    EXPECT_NEAR(mlp.predict(1.0, 0.0), 0.5, 0.07);
    EXPECT_NEAR(mlp.predict(0.0, 1.0), 0.4, 0.07);
}

TEST(Mlp, TrainingIsDeterministic)
{
    std::vector<Mlp::Sample> samples;
    for (int i = 0; i < 64; ++i)
        samples.push_back({i / 64.0, 0.0, i / 64.0});
    Mlp a(1, 10, 3), b(1, 10, 3);
    a.train(samples, 50);
    b.train(samples, 50);
    for (double x : {0.0, 0.3, 0.9})
        EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

std::vector<u32>
sortedRandomKeys(u64 n, u64 seed, u32 max_key)
{
    Rng rng(seed);
    std::vector<u32> keys(n);
    for (auto &k : keys)
        k = static_cast<u32>(rng.below(max_key));
    std::sort(keys.begin(), keys.end());
    return keys;
}

TEST(Rmi, LookupAlwaysReturnsLowerBound)
{
    auto keys = sortedRandomKeys(20000, 1, 1u << 24);
    Rmi<u32> rmi;
    Rmi<u32>::Config cfg;
    cfg.leaf_size = 256;
    rmi.build(keys, cfg);
    Rng rng(2);
    for (int t = 0; t < 500; ++t) {
        u32 q = static_cast<u32>(rng.below(1u << 24));
        auto res = rmi.lookup(q);
        auto expect = static_cast<u64>(
            std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
        ASSERT_EQ(res.rank, expect) << "q=" << q;
    }
}

TEST(Rmi, BoundaryKeys)
{
    auto keys = sortedRandomKeys(5000, 3, 1u << 20);
    Rmi<u32> rmi;
    rmi.build(keys, {});
    EXPECT_EQ(rmi.lookup(0).rank,
              static_cast<u64>(std::lower_bound(keys.begin(), keys.end(),
                                                0u) - keys.begin()));
    EXPECT_EQ(rmi.lookup(keys.back()).rank,
              static_cast<u64>(std::lower_bound(keys.begin(), keys.end(),
                                                keys.back()) -
                               keys.begin()));
    EXPECT_EQ(rmi.lookup(~u32{0}).rank, keys.size());
}

TEST(Rmi, SmallerLeavesGiveSmallerErrors)
{
    // Bursty keys (clusters) make linear leaves err; finer leaves help.
    Rng rng(5);
    std::vector<u32> keys;
    u32 v = 0;
    for (int c = 0; c < 200; ++c) {
        v += static_cast<u32>(rng.below(100000)); // big jump
        for (int i = 0; i < 100; ++i)
            keys.push_back(v += static_cast<u32>(rng.below(3)));
    }
    auto mean_error = [&](u64 leaf) {
        Rmi<u32> rmi;
        Rmi<u32>::Config cfg;
        cfg.leaf_size = leaf;
        rmi.build(keys, cfg);
        Rng qr(6);
        double sum = 0.0;
        for (int t = 0; t < 400; ++t)
            sum += static_cast<double>(
                rmi.lookup(static_cast<u32>(qr.below(v))).error);
        return sum / 400.0;
    };
    EXPECT_LT(mean_error(128), mean_error(4096));
}

TEST(Rmi, ParamCountScalesWithLeaves)
{
    auto keys = sortedRandomKeys(10000, 7, 1u << 22);
    Rmi<u32> coarse, fine;
    Rmi<u32>::Config c1, c2;
    c1.leaf_size = 4096;
    c2.leaf_size = 128;
    coarse.build(keys, c1);
    fine.build(keys, c2);
    EXPECT_GT(fine.paramCount(), coarse.paramCount());
    EXPECT_EQ(coarse.leafCount(), 3u); // ceil(10000/4096)
}

TEST(Rmi, MlpRootWorksToo)
{
    auto keys = sortedRandomKeys(8000, 9, 1u << 20);
    Rmi<u32> rmi;
    Rmi<u32>::Config cfg;
    cfg.mlp_root = true;
    cfg.epochs = 30;
    rmi.build(keys, cfg);
    Rng rng(10);
    for (int t = 0; t < 200; ++t) {
        u32 q = static_cast<u32>(rng.below(1u << 20));
        auto expect = static_cast<u64>(
            std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
        ASSERT_EQ(rmi.lookup(q).rank, expect);
    }
}

TEST(Rmi, EmptyAndSingle)
{
    Rmi<u32> rmi;
    rmi.build({}, {});
    EXPECT_EQ(rmi.lookup(5).rank, 0u);
    std::vector<u32> one = {42};
    rmi.build(one, {});
    EXPECT_EQ(rmi.lookup(10).rank, 0u);
    EXPECT_EQ(rmi.lookup(42).rank, 0u);
    EXPECT_EQ(rmi.lookup(43).rank, 1u);
}

TEST(Rmi, U64KeysExactAtHighMagnitude)
{
    // LISA composite keys reach ~2^48; ranks must stay exact.
    Rng rng(11);
    std::vector<u64> keys(5000);
    for (auto &k : keys)
        k = rng.below(u64{1} << 48);
    std::sort(keys.begin(), keys.end());
    Rmi<u64> rmi;
    rmi.build(keys, {});
    for (int t = 0; t < 300; ++t) {
        u64 q = rng.below(u64{1} << 48);
        auto expect = static_cast<u64>(
            std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
        ASSERT_EQ(rmi.lookup(q).rank, expect);
    }
}

} // namespace
} // namespace exma
