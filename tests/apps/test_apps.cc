#include <gtest/gtest.h>

#include "apps/aligner.hh"
#include "apps/annotator.hh"
#include "apps/assembler.hh"
#include "apps/compressor.hh"
#include "apps/smith_waterman.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

std::vector<Base>
appRef()
{
    ReferenceSpec spec;
    spec.length = 200000;
    spec.repeat_fraction = 0.3;
    spec.seed = 91;
    return generateReference(spec);
}

TEST(SmithWaterman, PerfectMatchScores)
{
    auto q = encodeSeq("ACGTACGTAC");
    SwResult r = smithWaterman(q, q);
    EXPECT_EQ(r.score, 20); // 10 matches x 2
    EXPECT_GT(r.cells, 0u);
}

TEST(SmithWaterman, MismatchLowersScore)
{
    auto q = encodeSeq("ACGTACGTAC");
    auto t = encodeSeq("ACGTTCGTAC");
    EXPECT_LT(smithWaterman(q, t).score, 20);
    EXPECT_GE(smithWaterman(q, t).score, 20 - 6);
}

TEST(SmithWaterman, GapHandling)
{
    auto q = encodeSeq("ACGTACGTACGT");
    auto t = encodeSeq("ACGTACACGT"); // 2-base deletion wrt q... still aligns
    SwResult r = smithWaterman(q, t);
    EXPECT_GT(r.score, 10);
}

TEST(SmithWaterman, LocalAlignmentIgnoresJunk)
{
    auto q = encodeSeq("TTTTTTACGTACGTACGTTTTTTT");
    auto t = encodeSeq("GGGGGGACGTACGTACGTGGGGGG");
    SwResult r = smithWaterman(q, t);
    EXPECT_GE(r.score, 2 * 12); // the common core
}

TEST(SmithWaterman, EmptyInputs)
{
    EXPECT_EQ(smithWaterman({}, encodeSeq("ACGT")).score, 0);
    EXPECT_EQ(smithWaterman(encodeSeq("ACGT"), {}).cells, 0u);
}

TEST(SmithWaterman, QueryMuchLongerThanTargetStaysInBounds)
{
    // Regression: when m > n + band the band slides entirely past the
    // target; the row setup used to write h_cur[lo - 1] with
    // lo - 1 > n, off the end of the rolling rows.
    auto t = encodeSeq("ACGTACGTAC");
    std::vector<Base> q = t;
    q.resize(100, Base{3});
    SwResult r = smithWaterman(q, t);
    EXPECT_EQ(r.score, 20); // the 10-base prefix match
    EXPECT_EQ(r.query_end, 10);
    EXPECT_EQ(r.ref_end, 10);

    SwParams narrow;
    narrow.band = 1;
    SwResult rn = smithWaterman(q, t, narrow);
    EXPECT_EQ(rn.score, 20);
}

TEST(Aligner, MapsCleanReadsCorrectly)
{
    auto ref = appRef();
    FmdIndex fmd(ref);
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.max_reads = 60;
    auto reads = simulateReads(ref, illuminaProfile(), spec);
    auto res = alignReads(ref, fmd, reads);
    EXPECT_GT(res.mapped, 50u);
    // Allow some multi-mapping in repeats; most must be correct.
    EXPECT_GT(static_cast<double>(res.correct) /
                  static_cast<double>(res.mapped),
              0.8);
    EXPECT_GT(res.counts.fm_symbols, 0u);
    EXPECT_GT(res.counts.dp_cells, 0u);
}

TEST(Aligner, NoisyReadsStillMostlyMap)
{
    auto ref = appRef();
    FmdIndex fmd(ref);
    ReadSimSpec spec;
    spec.read_len = 400;
    spec.long_reads = true;
    spec.max_reads = 25;
    auto reads = simulateReads(ref, pacbioProfile(), spec);
    AlignerParams params;
    params.min_seed_len = 13;
    auto res = alignReads(ref, fmd, reads, params);
    EXPECT_GT(res.mapped, 15u);
}

TEST(Aligner, IlluminaNeedsFewerDpCellsThanOnt)
{
    // The Fig. 1 premise: error-free reads seed long SMEMs, so Illumina
    // spends relatively more of its work in FM-Index search.
    auto ref = appRef();
    FmdIndex fmd(ref);
    ReadSimSpec spec;
    spec.read_len = 101;
    spec.max_reads = 40;
    auto clean = alignReads(ref, fmd,
                            simulateReads(ref, illuminaProfile(), spec));
    auto noisy =
        alignReads(ref, fmd, simulateReads(ref, ontProfile(), spec));
    const double clean_ratio =
        static_cast<double>(clean.counts.dp_cells) /
        static_cast<double>(clean.counts.fm_symbols);
    const double noisy_ratio =
        static_cast<double>(noisy.counts.dp_cells) /
        static_cast<double>(noisy.counts.fm_symbols);
    EXPECT_LT(clean_ratio, noisy_ratio);
}

TEST(Assembler, FindsPlantedOverlaps)
{
    // Construct reads with exact 40-base overlaps.
    auto ref = appRef();
    std::vector<Read> reads;
    for (u64 pos = 1000; pos + 100 <= 4000; pos += 60) {
        Read r;
        r.true_pos = pos;
        r.seq.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + 100));
        reads.push_back(std::move(r));
    }
    AssemblerParams params;
    params.min_overlap = 40;
    auto res = assembleOverlaps(reads, params);
    EXPECT_GT(res.overlaps.size(), reads.size() / 2);
    EXPECT_GT(res.counts.fm_symbols, 0u);
}

TEST(Assembler, ErrorCorrectionRepairsBases)
{
    auto ref = appRef();
    std::vector<Read> reads;
    for (u64 pos = 0; pos + 200 <= 20000; pos += 50) {
        Read r;
        r.seq.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + 200));
        reads.push_back(std::move(r));
    }
    // Corrupt one base of one read.
    reads[5].seq[30] = static_cast<Base>((reads[5].seq[30] + 1) & 3);
    AssemblerParams params;
    params.error_correct = true;
    auto res = assembleOverlaps(reads, params);
    EXPECT_GE(res.corrected_bases, 1u);
}

TEST(Annotator, CountsWords)
{
    auto ref = appRef();
    FmIndex fm(ref);
    // Queries copied from the reference must all match.
    auto queries = samplePatterns(ref, 10, 200, 3);
    auto res = annotate(fm, queries, 20);
    EXPECT_EQ(res.words, 100u);
    EXPECT_EQ(res.matched_words, 100u);
    EXPECT_GT(res.counts.fm_symbols, 0u);
}

TEST(Annotator, RandomWordsRarelyMatch)
{
    auto ref = appRef();
    FmIndex fm(ref);
    Rng rng(5);
    std::vector<std::vector<Base>> queries(5);
    for (auto &q : queries) {
        q.resize(200);
        for (auto &b : q)
            b = static_cast<Base>(rng.below(4));
    }
    auto res = annotate(fm, queries, 20);
    // A random 20-mer hits a 200 Kbp genome with prob ~2e-7.
    EXPECT_LT(res.matched_words, 3u);
}

TEST(Compressor, RoundTripsExactly)
{
    auto ref = appRef();
    FmIndex fm(ref);
    // A target stitched from reference fragments + some noise.
    std::vector<Base> target(ref.begin() + 500, ref.begin() + 3000);
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        target.push_back(static_cast<Base>(rng.below(4)));
    std::vector<u8> blob;
    auto res = compressWithBlob(fm, target, blob);
    EXPECT_EQ(decompressTokens(ref, blob), target);
    EXPECT_GT(res.copy_tokens, 0u);
}

TEST(Compressor, SimilarSequenceCompressesWell)
{
    auto ref = appRef();
    FmIndex fm(ref);
    // A "resequenced individual": the reference with sparse SNPs.
    std::vector<Base> target(ref.begin(), ref.begin() + 50000);
    Rng rng(9);
    for (int snp = 0; snp < 50; ++snp) {
        u64 pos = rng.below(target.size());
        target[pos] = static_cast<Base>((target[pos] + 1) & 3);
    }
    auto res = compressAgainstReference(fm, target);
    EXPECT_LT(res.ratio(), 0.10) << "50 SNPs over 50 kb should compress";
    EXPECT_GT(res.counts.fm_symbols, 0u);
}

TEST(Compressor, RandomSequenceDoesNot)
{
    auto ref = appRef();
    FmIndex fm(ref);
    Rng rng(11);
    std::vector<Base> target(5000);
    for (auto &b : target)
        b = static_cast<Base>(rng.below(4));
    auto res = compressAgainstReference(fm, target);
    EXPECT_GT(res.ratio(), 0.8);
}

TEST(AppModel, BreakdownAndSpeedup)
{
    AppCounts counts;
    counts.fm_symbols = 1000000;
    counts.dp_cells = 100000;
    counts.other_ops = 100000;
    auto b = cpuBreakdown("align", counts);
    EXPECT_GT(b.fmFraction(), 0.3);
    // Accelerating FM by 20x caps the speedup by Amdahl.
    const double sp = exmaAppSpeedup(b, 20.0);
    EXPECT_GT(sp, 1.5);
    EXPECT_LT(sp, 20.0);
}

TEST(AppModel, EnergyDropsWithExma)
{
    AppCounts counts;
    counts.fm_symbols = 2000000;
    counts.dp_cells = 50000;
    counts.other_ops = 50000;
    auto b = cpuBreakdown("annotate", counts);
    auto cpu_e = cpuAppEnergy(b);
    auto exma_e = exmaAppEnergy(b, 20.0, 0.9, 72.0);
    EXPECT_LT(exma_e.total(), cpu_e.total());
    // Fig. 20: EXMA itself consumes < 3% of total energy.
    EXPECT_LT((exma_e.exma_dyn_j + exma_e.exma_leak_j) / exma_e.total(),
              0.2);
}

} // namespace
} // namespace exma
