// The fault-injection harness itself (src/fault/): spec parsing,
// counter-based trigger semantics, wildcard sites, scoped install, the
// disabled fast path, cancellable sleeps, and the mmap-load hook
// ("io.load") failing closed with a path-bearing LoadError.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "genome/reference.hh"
#include "persist/index_io.hh"
#include "io/mapped_file.hh"

namespace exma {
namespace {

namespace fs = std::filesystem;

TEST(FaultSpec, ParsesKindsSitesAndOptions)
{
    const auto rules = FaultInjector::parseSpec(
        "kill@shard01/r0:nth=3,delay@*:ms=5:every=10,"
        "hang@io.load,throw@a*,corrupt@s:nth=2:every=2");
    ASSERT_EQ(rules.size(), 5u);

    EXPECT_EQ(rules[0].kind, FaultKind::KillWorker);
    EXPECT_EQ(rules[0].site, "shard01/r0");
    EXPECT_EQ(rules[0].nth, 3u);
    EXPECT_EQ(rules[0].every, 0u);

    EXPECT_EQ(rules[1].kind, FaultKind::DelayMs);
    EXPECT_EQ(rules[1].site, "*");
    EXPECT_EQ(rules[1].ms, 5u);
    EXPECT_EQ(rules[1].every, 10u);

    EXPECT_EQ(rules[2].kind, FaultKind::HangRequest);
    EXPECT_EQ(rules[2].ms, 600'000u) << "hang defaults to a long sleep";

    EXPECT_EQ(rules[3].kind, FaultKind::ThrowInProcess);
    EXPECT_EQ(rules[3].site, "a*");

    EXPECT_EQ(rules[4].kind, FaultKind::CorruptResponse);
    EXPECT_EQ(rules[4].nth, 2u);
    EXPECT_EQ(rules[4].every, 2u);
}

TEST(FaultSpec, EmptyAndBlankEntriesParseToNothing)
{
    EXPECT_TRUE(FaultInjector::parseSpec("").empty());
    EXPECT_TRUE(FaultInjector::parseSpec(",,").empty());
}

TEST(FaultSpec, DelayDefaultsToTwentyMs)
{
    const auto rules = FaultInjector::parseSpec("delay@x");
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].ms, 20u);
}

TEST(FaultRuleTest, SiteMatching)
{
    FaultRule rule;
    rule.site = "shard00*";
    EXPECT_TRUE(rule.matches("shard00/r0"));
    EXPECT_TRUE(rule.matches("shard00"));
    EXPECT_FALSE(rule.matches("shard01/r0"));
    rule.site = "*";
    EXPECT_TRUE(rule.matches("anything"));
    rule.site = "io.load";
    EXPECT_TRUE(rule.matches("io.load"));
    EXPECT_FALSE(rule.matches("io.load2"));
}

TEST(FaultInjectorTest, NthAndEveryCounterSemantics)
{
    FaultRule once;
    once.kind = FaultKind::KillWorker;
    once.site = "w";
    once.nth = 2;
    FaultRule periodic;
    periodic.kind = FaultKind::DelayMs;
    periodic.site = "w";
    periodic.nth = 3;
    periodic.every = 2;
    periodic.ms = 7;
    FaultInjector fi({once, periodic});

    std::vector<size_t> fired_counts;
    for (int hit = 1; hit <= 8; ++hit)
        fired_counts.push_back(fi.at("w").size());
    // hit:      1  2      3        4  5        6  7        8
    // once:        kill
    // periodic:           delay       delay       delay
    EXPECT_EQ(fired_counts,
              (std::vector<size_t>{0, 1, 1, 0, 1, 0, 1, 0}));
    EXPECT_EQ(fi.hits("w"), 8u);
    EXPECT_EQ(fi.hits("elsewhere"), 0u);
}

TEST(FaultInjectorTest, WildcardCountsPerConcreteSite)
{
    FaultRule rule;
    rule.kind = FaultKind::ThrowInProcess;
    rule.site = "shard*";
    rule.nth = 2;
    FaultInjector fi({rule});

    EXPECT_TRUE(fi.at("shard00/r0").empty()) << "first hit of r0";
    EXPECT_TRUE(fi.at("shard00/r1").empty()) << "first hit of r1";
    EXPECT_EQ(fi.at("shard00/r0").size(), 1u) << "second hit of r0";
    EXPECT_EQ(fi.at("shard00/r1").size(), 1u) << "second hit of r1";
    EXPECT_TRUE(fi.at("io.load").empty()) << "site not matched";
}

TEST(FaultInjectorTest, ActionCarriesKindAndMs)
{
    FaultRule rule;
    rule.kind = FaultKind::DelayMs;
    rule.site = "w";
    rule.ms = 42;
    FaultInjector fi({rule});
    const auto actions = fi.at("w");
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].kind, FaultKind::DelayMs);
    EXPECT_EQ(actions[0].ms, 42u);
}

TEST(FaultInjectorTest, ScopedInstallRestoresPrevious)
{
    ASSERT_EQ(faultInjector(), nullptr)
        << "tests must start with no global injector";
    auto inner = std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("kill@w"));
    {
        ScopedFaultInjector scope(inner);
        EXPECT_EQ(faultInjector(), inner.get());
        {
            ScopedFaultInjector nested(nullptr);
            EXPECT_EQ(faultInjector(), nullptr);
        }
        EXPECT_EQ(faultInjector(), inner.get());
    }
    EXPECT_EQ(faultInjector(), nullptr);
}

TEST(CancelTokenTest, FullSleepElapsesCancelCutsShort)
{
    CancelToken token;
    EXPECT_TRUE(token.sleepFor(1));
    EXPECT_FALSE(token.cancelled());

    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        token.cancel();
    });
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(token.sleepFor(60'000));
    const auto waited = std::chrono::steady_clock::now() - t0;
    canceller.join();
    EXPECT_LT(waited, std::chrono::seconds(30))
        << "cancel must cut the sleep short";
    EXPECT_TRUE(token.cancelled());
    EXPECT_FALSE(token.sleepFor(1)) << "cancelled tokens never sleep";
}

// --- the mmap load-path hook -------------------------------------------

std::string
tempDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

TEST(LoadFaultTest, ThrowAtIoLoadFailsClosedWithPathContext)
{
    ReferenceSpec spec;
    spec.length = 1 << 12;
    spec.seed = 21;
    const std::vector<Base> ref = generateReference(spec);
    ExmaTable::Config cfg;
    cfg.k = 3;
    const ExmaTable table(ref, cfg);
    const std::string dir = tempDir("fault_io_load");
    saveIndex(table, ref, dir);

    // First load fires the injected fault; the second (rule is
    // nth=1, once) succeeds — a flaky mount, not a corrupt index.
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("throw@io.load")));
    try {
        loadIndex(dir);
        FAIL() << "injected load fault did not throw";
    } catch (const LoadError &e) {
        EXPECT_NE(std::string(e.what()).find(dir), std::string::npos)
            << "LoadError must name the failing path: " << e.what();
    }
    const LoadedIndex idx = loadIndex(dir);
    EXPECT_NE(idx.table, nullptr);
}

TEST(LoadFaultTest, DelayAtIoLoadOnlySlowsTheLoad)
{
    ReferenceSpec spec;
    spec.length = 1 << 12;
    spec.seed = 22;
    const std::vector<Base> ref = generateReference(spec);
    ExmaTable::Config cfg;
    cfg.k = 3;
    const ExmaTable table(ref, cfg);
    const std::string dir = tempDir("fault_io_delay");
    saveIndex(table, ref, dir);

    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("delay@io.load:ms=10")));
    const LoadedIndex idx = loadIndex(dir);
    EXPECT_NE(idx.table, nullptr);
    EXPECT_GE(idx.load_seconds, 0.01);
}

} // namespace
} // namespace exma
