// The acceptance suite for replicated fault-tolerant serving: with
// R >= 2, any single injected fault (worker death, hang, throw, slow
// replica, corrupt response) must leave the routed hit set identical
// to a monolithic table — zero lost queries, zero duplicated hits,
// nothing flagged degraded. With every replica of a range down, the
// router must return deadline-bounded partial results with exactly the
// affected queries flagged in RoutedResult::degraded.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "genome/reference.hh"
#include "route/shard_router.hh"

namespace exma {
namespace {

constexpr u64 kMaxQueryLen = 24;

ExmaTable::Config
tableCfg(int k)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mtl.epochs = 10;
    cfg.mtl.samples_per_class = 512;
    return cfg;
}

/** Ground truth: one monolithic table's located, sorted hit set. */
std::vector<u64>
singleTableHits(const ExmaTable &table, const std::vector<Base> &query)
{
    auto hits = table.locateAll(table.search(query));
    std::sort(hits.begin(), hits.end());
    return hits;
}

/** Same mixed batch the router differential tests use. */
std::vector<std::vector<Base>>
queryMix(const std::vector<Base> &ref, int prefix_len, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i < 60; ++i) {
        u64 len;
        if (i % 4 == 3)
            len = 1 + rng.below(std::max<u64>(
                          1, static_cast<u64>(prefix_len) - 1));
        else
            len = static_cast<u64>(prefix_len) +
                  rng.below(kMaxQueryLen - static_cast<u64>(prefix_len));
        if (i % 5 == 4) {
            std::vector<Base> q(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            qs.push_back(std::move(q));
        } else {
            const u64 pos = rng.below(ref.size() - len + 1);
            qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        }
    }
    return qs;
}

/** The shared fixture: one dataset, one monolith, one plan. */
struct Fixture
{
    Dataset ds = makeDataset("human", 0.001);
    ExmaTable::Config cfg = tableCfg(ds.exma_k);
    ExmaTable single{ds.ref, cfg};
    ShardPlan plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen);
};

const Fixture &
fixture()
{
    static const Fixture fx;
    return fx;
}

/** Replicated router tuned for fast recovery in tests. */
RouterConfig
replicatedCfg(unsigned replicas = 2)
{
    const Fixture &fx = fixture();
    RouterConfig rcfg;
    rcfg.table = fx.cfg;
    rcfg.failover.replicas = replicas;
    rcfg.failover.max_retries = 3;
    rcfg.failover.retry_backoff_ms = 1;
    rcfg.failover.supervisor_interval_ms = 5;
    rcfg.failover.hang_timeout_ms = 250;
    return rcfg;
}

/** Every query's hits match the monolith and nothing is degraded. */
void
expectIdenticalToMonolith(const RoutedResult &r,
                          const std::vector<std::vector<Base>> &qs)
{
    const Fixture &fx = fixture();
    ASSERT_EQ(r.hits.size(), qs.size());
    EXPECT_EQ(r.degraded_queries, 0u);
    for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(r.degraded[i], 0) << "query " << i;
        EXPECT_EQ(r.hits[i], singleTableHits(fx.single, qs[i]))
            << "query " << i;
        EXPECT_TRUE(std::adjacent_find(r.hits[i].begin(),
                                       r.hits[i].end()) ==
                    r.hits[i].end())
            << "duplicated hits for query " << i;
    }
}

/** Shard indices serving @p q under the fixture plan (routed mode). */
std::pair<size_t, size_t>
ownersOf(const std::vector<Base> &q)
{
    const ShardPlan &plan = fixture().plan;
    const PrefixRange r = plan.queryPrefixRange(q.data(), q.size());
    return plan.ownersOfRange(r.lo, r.hi);
}

TEST(ReplicatedRouter, WorkerDeathFailsOverWithIdenticalHits)
{
    // Every replica dies on its first served request; retries land on
    // the respawned incarnations (same site names, hit counters carry
    // over, so the rule never re-fires).
    const Fixture &fx = fixture();
    const ShardRouter router(fx.ds.ref, fx.plan, replicatedCfg());
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 31);

    {
        ScopedFaultInjector scope(std::make_shared<FaultInjector>(
            FaultInjector::parseSpec("kill@*")));
        const RoutedResult r = router.search(qs);
        expectIdenticalToMonolith(r, qs);
        EXPECT_GT(r.failover.worker_down, 0u);
        EXPECT_GT(r.failover.retries, 0u);
        EXPECT_GT(r.failover.respawns, 0u);
    }
    // The respawned tier serves the next batch without any machinery.
    const RoutedResult again = router.search(qs);
    expectIdenticalToMonolith(again, qs);
    EXPECT_EQ(again.failover.retries, 0u);
}

TEST(ReplicatedRouter, HungReplicaIsKilledBySupervisorAndFailedOver)
{
    // Every replica hangs mid-request on its first serve; the
    // supervisor's heartbeat watchdog must declare it hung, kill it
    // (cancelling the injected sleep), and the router must fail over.
    const Fixture &fx = fixture();
    const ShardRouter router(fx.ds.ref, fx.plan, replicatedCfg());
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 32);

    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("hang@*")));
    const RoutedResult r = router.search(qs);
    expectIdenticalToMonolith(r, qs);
    EXPECT_GT(r.failover.worker_down, 0u);
    EXPECT_GT(r.failover.respawns, 0u);
}

TEST(ReplicatedRouter, ThrowingProcessRetriesWithoutDeadlock)
{
    const Fixture &fx = fixture();
    const ShardRouter router(fx.ds.ref, fx.plan, replicatedCfg());
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 33);

    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("throw@*")));
    const RoutedResult r = router.search(qs);
    expectIdenticalToMonolith(r, qs);
    EXPECT_GT(r.failover.failed, 0u);
    EXPECT_GT(r.failover.retries, 0u);
    EXPECT_EQ(r.failover.respawns, 0u)
        << "a thrown exception must not cost the worker its life";
}

TEST(ReplicatedRouter, SlowReplicaIsHedgedWithIdenticalHits)
{
    const Fixture &fx = fixture();
    RouterConfig rcfg = replicatedCfg();
    rcfg.failover.hedge_ms = 10;
    // The injected 150 ms delay must read as "slow", never "hung":
    // under TSan the delay plus instrumentation overhead can exceed
    // the default 250 ms hang timeout, and a supervisor kill would
    // turn this hedging test into a failover one.
    rcfg.failover.hang_timeout_ms = 10000;
    const ShardRouter router(fx.ds.ref, fx.plan, rcfg);
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 34);

    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("delay@*:ms=150")));
    const RoutedResult r = router.search(qs);
    expectIdenticalToMonolith(r, qs);
    EXPECT_GT(r.failover.hedges, 0u);
    EXPECT_EQ(r.failover.worker_down, 0u);
}

TEST(ReplicatedRouter, CorruptResponseIsRejectedByCanaryAndRetried)
{
    const Fixture &fx = fixture();
    const ShardRouter router(fx.ds.ref, fx.plan, replicatedCfg());
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 35);

    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("corrupt@*")));
    const RoutedResult r = router.search(qs);
    expectIdenticalToMonolith(r, qs);
    EXPECT_GT(r.failover.corrupt, 0u);
    EXPECT_GT(r.failover.retries, 0u);
}

TEST(ReplicatedRouter, RangeFullyDownDegradesExactlyItsQueries)
{
    // Both replicas of one shard die on every request, forever; its
    // queries must come back flagged degraded (partial for broadcast
    // straddlers, empty for solely-owned ones) while every other
    // query stays identical to the monolith.
    const Fixture &fx = fixture();
    RouterConfig rcfg = replicatedCfg();
    rcfg.failover.max_retries = 2;
    rcfg.failover.deadline_ms = 20'000; // generous; retries fail first
    const ShardRouter router(fx.ds.ref, fx.plan, rcfg);
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 36);

    const size_t target = ownersOf(qs[0]).first;
    FaultRule rule;
    rule.kind = FaultKind::KillWorker;
    rule.site = router.plan().shards()[target].name + "*";
    rule.every = 1; // every hit, so respawned replicas die too
    ScopedFaultInjector scope(
        std::make_shared<FaultInjector>(std::vector<FaultRule>{rule}));

    const RoutedResult r = router.search(qs);
    ASSERT_EQ(r.hits.size(), qs.size());
    EXPECT_GT(r.degraded_queries, 0u);
    EXPECT_LT(r.degraded_queries, qs.size())
        << "only the dead range's queries may degrade";
    u64 flagged = 0;
    for (size_t i = 0; i < qs.size(); ++i) {
        const auto [first, last] = ownersOf(qs[i]);
        const bool expect_degraded = first <= target && target <= last;
        EXPECT_EQ(r.degraded[i] != 0, expect_degraded) << "query " << i;
        flagged += r.degraded[i];
        const auto expect = singleTableHits(fx.single, qs[i]);
        if (expect_degraded) {
            // Partial: whatever the live owners produced, never more.
            EXPECT_TRUE(std::includes(expect.begin(), expect.end(),
                                      r.hits[i].begin(),
                                      r.hits[i].end()))
                << "degraded query " << i << " invented hits";
        } else {
            EXPECT_EQ(r.hits[i], expect) << "query " << i;
        }
    }
    EXPECT_EQ(r.degraded_queries, flagged);
    EXPECT_GT(r.failover.worker_down, 0u);

    // With the injector gone the respawned range recovers fully.
    installFaultInjector(nullptr);
    const RoutedResult healed = router.search(qs);
    expectIdenticalToMonolith(healed, qs);
}

TEST(ReplicatedRouter, DeadlineBoundsAnUnresponsiveRange)
{
    // Both replicas of one shard hang forever and no supervisor runs:
    // the per-request deadline is the only thing standing between the
    // caller and a ten-minute stall. The search must return within the
    // deadline (plus the reap's hang timeout), flag the stuck range's
    // queries, and tally the deadline miss.
    const Fixture &fx = fixture();
    RouterConfig rcfg = replicatedCfg();
    rcfg.failover.supervisor_interval_ms = 0; // no watchdog
    rcfg.failover.deadline_ms = 500;
    rcfg.failover.hang_timeout_ms = 200; // reap kills hung workers
    const ShardRouter router(fx.ds.ref, fx.plan, rcfg);
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 37);

    const size_t target = ownersOf(qs[0]).first;
    FaultRule rule;
    rule.kind = FaultKind::HangRequest;
    rule.site = router.plan().shards()[target].name + "*";
    rule.every = 1;
    rule.ms = 600'000;
    ScopedFaultInjector scope(
        std::make_shared<FaultInjector>(std::vector<FaultRule>{rule}));

    const auto t0 = std::chrono::steady_clock::now();
    const RoutedResult r = router.search(qs);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(30))
        << "deadline failed to bound an unresponsive range";
    EXPECT_GE(r.failover.deadline_misses, 1u);
    EXPECT_GT(r.degraded_queries, 0u);
    for (size_t i = 0; i < qs.size(); ++i) {
        const auto [first, last] = ownersOf(qs[i]);
        if (first <= target && target <= last)
            EXPECT_EQ(r.degraded[i], 1) << "query " << i;
        else
            EXPECT_EQ(r.hits[i], singleTableHits(fx.single, qs[i]))
                << "query " << i;
    }
}

TEST(ReplicatedRouter, ManualReplicaKillBetweenBatchesIsAbsorbed)
{
    // The soak-bench scenario without an injector: kill a replica from
    // outside while the tier is idle; the next batch must be served
    // cleanly (P2C avoids the corpse, the supervisor respawns it).
    const Fixture &fx = fixture();
    const ShardRouter router(fx.ds.ref, fx.plan, replicatedCfg());
    const auto qs = queryMix(fx.ds.ref, fx.plan.prefixLen(), 38);

    for (unsigned round = 0; round < 3; ++round) {
        router.replicaSet(round % router.shardCount())
            .killReplica(round % 2);
        const RoutedResult r = router.search(qs);
        expectIdenticalToMonolith(r, qs);
    }
}

} // namespace
} // namespace exma
