// ShardWorker's failure contract (the RPC seam under stress): futures
// always resolve with typed Responses — WorkerDown on destruction with
// a non-empty inbox (the std::future_error regression this file
// pins), Failed with the message when process() throws — plus kill(),
// inbox-depth accounting, and heartbeat liveness.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "transport/shard_worker.hh"

namespace exma {
namespace {

using Response = ShardWorker::Response;
using Status = ShardWorker::Status;

const std::vector<std::vector<Base>> &
batch()
{
    static const std::vector<std::vector<Base>> queries = {
        {0, 1, 2, 3}, {1, 1}, {2}};
    return queries;
}

ShardWorker::Request
requestFor(const std::vector<std::vector<Base>> &queries)
{
    ShardWorker::Request req;
    std::vector<u32> ids;
    for (u32 i = 0; i < queries.size(); ++i)
        ids.push_back(i);
    req.batch = QueryBatchView::borrow(queries, std::move(ids));
    return req;
}

/** A future must resolve within the suite's patience, not hang CI. */
Response
resolved(std::future<Response> &fut)
{
    const auto status = fut.wait_for(std::chrono::seconds(60));
    EXPECT_EQ(status, std::future_status::ready)
        << "worker future never resolved";
    return fut.get();
}

TEST(WorkerRobustness, DestructionWithPendingInboxYieldsWorkerDown)
{
    // The first request sleeps long via an injected delay, so the
    // second and third are still queued when the worker dies. All
    // three must come back as typed WorkerDown — never a broken
    // promise surfacing as std::future_error, never a hang on the
    // injected sleep.
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("delay@w:ms=60000")));
    std::vector<std::future<Response>> futs;
    {
        ShardWorker worker("w", nullptr, nullptr, nullptr);
        for (int i = 0; i < 3; ++i)
            futs.push_back(worker.submit(requestFor(batch())));
        // Destructor runs with one request mid-sleep and two queued.
    }
    for (auto &fut : futs) {
        const Response r = resolved(fut);
        EXPECT_EQ(r.status, Status::WorkerDown);
        EXPECT_NE(r.error.find("down"), std::string::npos);
        EXPECT_EQ(r.ids.size(), batch().size());
        EXPECT_TRUE(r.hits.empty()) << "down responses carry no hits";
    }
}

TEST(WorkerRobustness, ProcessThrowSurfacesAsFailedWithMessage)
{
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("throw@w:nth=1")));
    ShardWorker worker("w", nullptr, nullptr, nullptr);

    auto failing = worker.submit(requestFor(batch()));
    const Response failed = resolved(failing);
    EXPECT_EQ(failed.status, Status::Failed);
    EXPECT_NE(failed.error.find("injected fault"), std::string::npos);
    EXPECT_NE(failed.error.find("'w'"), std::string::npos);

    // The worker survives the throw: the next request is served.
    auto fine = worker.submit(requestFor(batch()));
    const Response ok = resolved(fine);
    EXPECT_EQ(ok.status, Status::Ok);
    EXPECT_EQ(ok.hits.size(), batch().size());
    EXPECT_EQ(ShardWorker::responseCanary(ok), ok.canary);
    EXPECT_EQ(worker.processed(), 2u)
        << "Failed requests still count as consumed";
}

TEST(WorkerRobustness, KillFailsQueuedAndRefusesNewSubmissions)
{
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("delay@w:ms=60000")));
    ShardWorker worker("w", nullptr, nullptr, nullptr);
    auto in_flight = worker.submit(requestFor(batch()));
    auto queued = worker.submit(requestFor(batch()));

    worker.kill();
    EXPECT_TRUE(worker.isDead());
    EXPECT_EQ(resolved(in_flight).status, Status::WorkerDown)
        << "kill must cancel the injected sleep";
    EXPECT_EQ(resolved(queued).status, Status::WorkerDown);

    auto refused = worker.submit(requestFor(batch()));
    EXPECT_EQ(resolved(refused).status, Status::WorkerDown)
        << "submitting to a dead worker resolves immediately";
    EXPECT_EQ(worker.inboxDepth(), 0u);
    EXPECT_EQ(worker.processed(), 0u);
}

TEST(WorkerRobustness, ServedRequestsAdvanceHeartbeatAndDrainDepth)
{
    ShardWorker worker("w", nullptr, nullptr, nullptr);
    EXPECT_EQ(worker.heartbeat(), 0u);
    auto fut = worker.submit(requestFor(batch()));
    const Response r = resolved(fut);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(worker.inboxDepth(), 0u);
    EXPECT_GE(worker.heartbeat(), 2u)
        << "dequeue and completion both tick";
    EXPECT_EQ(worker.processed(), 1u);
}

TEST(WorkerRobustness, CanaryDetectsCorruptedResponse)
{
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("corrupt@w:nth=1")));
    ShardWorker worker("w", nullptr, nullptr, nullptr);
    auto fut = worker.submit(requestFor(batch()));
    const Response r = resolved(fut);
    EXPECT_EQ(r.status, Status::Ok)
        << "corruption is silent at the transport layer";
    EXPECT_NE(ShardWorker::responseCanary(r), r.canary)
        << "recomputing the canary must expose the corruption";
}

} // namespace
} // namespace exma
