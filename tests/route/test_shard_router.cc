#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "genome/reference.hh"
#include "route/shard_router.hh"

namespace exma {
namespace {

constexpr u64 kMaxQueryLen = 24;

ExmaTable::Config
tableCfg(int k, OccIndexMode mode = OccIndexMode::Exact)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = mode;
    cfg.mtl.epochs = 10;
    cfg.mtl.samples_per_class = 512;
    return cfg;
}

/** Ground truth: one monolithic table's located, sorted hit set. */
std::vector<u64>
singleTableHits(const ExmaTable &table, const std::vector<Base> &query)
{
    auto hits = table.locateAll(table.search(query));
    std::sort(hits.begin(), hits.end());
    return hits;
}

/**
 * Query mix for the differential tests: reference substrings (hits),
 * random probes (mostly misses), and — the routing-specific edges —
 * queries shorter than the routing prefix (whose padded code ranges
 * can straddle partition boundaries) plus substrings taken within the
 * last prefix_len bases of the reference (A-padded ownership).
 */
std::vector<std::vector<Base>>
queryMix(const std::vector<Base> &ref, int prefix_len, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i < 60; ++i) {
        u64 len;
        if (i % 4 == 3) // shorter than the routing prefix
            len = 1 + rng.below(std::max<u64>(
                          1, static_cast<u64>(prefix_len) - 1));
        else
            len = static_cast<u64>(prefix_len) +
                  rng.below(kMaxQueryLen - static_cast<u64>(prefix_len));
        if (i % 5 == 4) { // pure-random, mostly a miss
            std::vector<Base> q(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            qs.push_back(std::move(q));
        } else {
            const u64 pos = rng.below(ref.size() - len + 1);
            qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        }
    }
    // Probes ending exactly at the reference end (padded-code owners).
    for (u64 len = 1; len <= 4; ++len)
        qs.emplace_back(ref.end() - static_cast<std::ptrdiff_t>(len),
                        ref.end());
    return qs;
}

TEST(ShardRouter, RoutedHitSetMatchesMonolithOnAllDatasets)
{
    for (const std::string &name : datasetNames()) {
        const Dataset ds = makeDataset(name, 0.001);
        const auto cfg = tableCfg(ds.exma_k);
        const ExmaTable single(ds.ref, cfg);

        for (unsigned n_shards : {2u, 4u, 8u}) {
            const auto plan = ShardPlan::kmerPrefix(ds.ref, n_shards,
                                                    kMaxQueryLen);
            RouterConfig rcfg;
            rcfg.table = cfg;
            const ShardRouter router(ds.ref, plan, rcfg);
            ASSERT_EQ(router.shardCount(), plan.size());

            const auto qs = queryMix(ds.ref, plan.prefixLen(),
                                     7 + n_shards);
            BatchConfig bc;
            bc.grain = 3;
            const RoutedResult r = router.search(qs, bc);
            ASSERT_EQ(r.hits.size(), qs.size());
            EXPECT_EQ(r.routed_queries + r.broadcast_queries, qs.size());
            EXPECT_GT(r.routed_queries, 0u);

            for (size_t i = 0; i < qs.size(); ++i) {
                const auto expect = singleTableHits(single, qs[i]);
                EXPECT_EQ(r.hits[i], expect)
                    << name << " shards=" << n_shards << " query " << i;
                EXPECT_TRUE(std::adjacent_find(r.hits[i].begin(),
                                               r.hits[i].end()) ==
                            r.hits[i].end());
            }
        }
    }
}

TEST(ShardRouter, ShortQueryStraddlingPartitionBoundaryBroadcasts)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen, 4);
    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter router(ds.ref, plan, rcfg);
    const int p = plan.prefixLen();

    // Hunt for a query shorter than p whose padded code range straddles
    // an internal partition boundary. Balanced cuts over real k-mer
    // histograms land on unaligned codes, so one exists for some
    // length unless every cut is 4^p-aligned at every level.
    std::vector<Base> straddler;
    for (size_t s = 1; s < plan.size() && straddler.empty(); ++s) {
        const Kmer boundary = plan.prefixRanges()[s].lo;
        for (int len = p - 1; len >= 1; --len) {
            const int pad = 2 * (p - len);
            if (boundary % (Kmer{1} << pad) == 0)
                continue; // this truncation aligns with the boundary
            straddler.resize(static_cast<size_t>(len));
            unpackKmer(boundary >> pad, len, straddler.data());
            break;
        }
    }
    ASSERT_FALSE(straddler.empty())
        << "every cut is aligned at every truncation level";
    const PrefixRange r =
        plan.queryPrefixRange(straddler.data(), straddler.size());
    const auto owners = plan.ownersOfRange(r.lo, r.hi);
    ASSERT_LT(owners.first, owners.second) << "range does not straddle";

    const RoutedResult res = router.search({straddler});
    EXPECT_EQ(res.broadcast_queries, 1u);
    EXPECT_EQ(res.routed_queries, 0u);
    EXPECT_EQ(res.hits[0], singleTableHits(single, straddler));
}

TEST(ShardRouter, BoundaryPrefixQueryRoutesToOwner)
{
    // A full-length query whose prefix code is exactly a partition
    // boundary (a range's lo) routes to that one shard.
    const Dataset ds = makeDataset("picea", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen, 4);
    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter router(ds.ref, plan, rcfg);
    const int p = plan.prefixLen();

    for (size_t s = 1; s < plan.size(); ++s) {
        if (plan.prefixRanges()[s].empty())
            continue;
        std::vector<Base> q(static_cast<size_t>(p) + 4);
        unpackKmer(plan.prefixRanges()[s].lo, p, q.data());
        Rng rng(s);
        for (size_t i = static_cast<size_t>(p); i < q.size(); ++i)
            q[i] = static_cast<Base>(rng.below(4));
        EXPECT_EQ(plan.ownerOf(plan.prefixRanges()[s].lo), s);
        const RoutedResult res = router.search({q});
        EXPECT_EQ(res.routed_queries, 1u);
        EXPECT_EQ(res.broadcast_queries, 0u);
        EXPECT_EQ(res.hits[0], singleTableHits(single, q));
    }
}

TEST(ShardRouter, EmptyPrefixRangesServeHitless)
{
    // An all-A reference puts every position in code 0's shard; the
    // remaining ranges own nothing and must answer with no hits —
    // matching the monolith, which cannot find those prefixes either.
    const std::vector<Base> ref(256, 0);
    const auto plan = ShardPlan::kmerPrefix(ref, 4, 8, 2);
    RouterConfig rcfg;
    rcfg.table = tableCfg(3);
    const ShardRouter router(ref, plan, rcfg);
    const ExmaTable single(ref, tableCfg(3));

    size_t empty_workers = 0;
    for (size_t s = 0; s < router.shardCount(); ++s)
        empty_workers += router.replicaSet(s).isEmpty();
    EXPECT_GE(empty_workers, 2u);

    const std::vector<std::vector<Base>> qs = {
        {0, 0, 0, 0},    // AAAA -> the one populated shard
        {1, 2},          // CG   -> an unpopulated range
        {3},             // T    -> short query, unpopulated range
        {0, 0, 1},       // AAC  -> miss inside the populated range
    };
    const RoutedResult r = router.search(qs);
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(r.hits[i], singleTableHits(single, qs[i]))
            << "query " << i;
    EXPECT_EQ(r.hits[0].size(), 256u - 3u);
    EXPECT_TRUE(r.hits[1].empty());
    EXPECT_TRUE(r.hits[2].empty());
}

TEST(ShardRouter, SingleShardDegeneratePlanEqualsMonolith)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 1, kMaxQueryLen);
    ASSERT_EQ(plan.size(), 1u);
    // One shard owns every code; its segment map is the whole
    // reference in one slice, so the table is the monolith.
    ASSERT_EQ(plan.segmentsOf(0).size(), 1u);
    EXPECT_EQ(plan.segmentsOf(0)[0].length, ds.ref.size());

    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter router(ds.ref, plan, rcfg);
    EXPECT_EQ(router.totalLocalBases(), ds.ref.size());

    const auto qs = queryMix(ds.ref, plan.prefixLen(), 13);
    const RoutedResult r = router.search(qs);
    EXPECT_EQ(r.routed_queries, qs.size());
    EXPECT_EQ(r.broadcast_queries, 0u);
    SearchStats expect;
    for (size_t i = 0; i < qs.size(); ++i) {
        SearchStats qstats;
        auto hits = single.locateAll(single.search(qs[i], &qstats));
        expect += qstats;
        std::sort(hits.begin(), hits.end());
        EXPECT_EQ(r.hits[i], hits) << "query " << i;
    }
    EXPECT_EQ(r.stats, expect);
}

TEST(ShardRouter, TinyShardsFallBackToScanWorkers)
{
    // Many shards over a small reference with short context windows
    // leave some shards under min_table_bases; those are served by
    // segment scanning and must stay hit-identical to the monolith.
    Rng rng(99);
    std::vector<Base> ref(400);
    for (auto &b : ref)
        b = static_cast<Base>(rng.below(4));
    const u64 max_q = 4;
    const auto plan = ShardPlan::kmerPrefix(ref, 32, max_q, 4);
    RouterConfig rcfg;
    rcfg.table = tableCfg(2);
    const ShardRouter router(ref, plan, rcfg);
    const ExmaTable single(ref, tableCfg(2));

    size_t scan_workers = 0;
    for (size_t s = 0; s < router.shardCount(); ++s)
        scan_workers += !router.replicaSet(s).hasTable() &&
                        !router.replicaSet(s).isEmpty();
    EXPECT_GT(scan_workers, 0u)
        << "fixture no longer produces sub-threshold shards";

    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i + max_q <= ref.size(); i += 3)
        qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(i),
                        ref.begin() + static_cast<std::ptrdiff_t>(i + max_q));
    for (u64 len = 1; len <= 3; ++len)
        qs.emplace_back(ref.begin(),
                        ref.begin() + static_cast<std::ptrdiff_t>(len));
    const RoutedResult r = router.search(qs);
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(r.hits[i], singleTableHits(single, qs[i]))
            << "query " << i;
}

TEST(ShardRouter, ForceBroadcastMatchesRoutedHitSet)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen);
    RouterConfig routed_cfg, bcast_cfg;
    routed_cfg.table = cfg;
    bcast_cfg.table = cfg;
    bcast_cfg.force_broadcast = true;
    const ShardRouter routed(ds.ref, plan, routed_cfg);
    const ShardRouter bcast(ds.ref, plan, bcast_cfg);

    const auto qs = queryMix(ds.ref, plan.prefixLen(), 42);
    const RoutedResult a = routed.search(qs);
    const RoutedResult b = bcast.search(qs);
    EXPECT_EQ(b.broadcast_queries, qs.size());
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(a.hits[i], b.hits[i]) << "query " << i;
}

TEST(ShardRouter, TextPlanServesBroadcastThroughWorkers)
{
    // Text-partitioned plans have no routing prefix; the router still
    // serves them (broadcast-only) through the same worker machinery.
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan =
        ShardPlan::fixedWidth(ds.ref.size(), 4, kMaxQueryLen);
    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter router(ds.ref, plan, rcfg);

    const auto qs = queryMix(ds.ref, 4, 17);
    const RoutedResult r = router.search(qs);
    EXPECT_EQ(r.broadcast_queries, qs.size());
    EXPECT_EQ(r.routed_queries, 0u);
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(r.hits[i], singleTableHits(single, qs[i]))
            << "query " << i;
}

TEST(ShardRouter, LocateLimitAppliesGloballyAfterMerge)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 8, kMaxQueryLen);
    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter router(ds.ref, plan, rcfg);

    std::vector<std::vector<Base>> qs;
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        const u64 pos = rng.below(ds.ref.size() - 6);
        qs.emplace_back(ds.ref.begin() + static_cast<std::ptrdiff_t>(pos),
                        ds.ref.begin() +
                            static_cast<std::ptrdiff_t>(pos + 6));
    }
    BatchConfig bc;
    bc.locate_limit = 3;
    const RoutedResult r = router.search(qs, bc);
    bool saw_capped = false;
    for (size_t i = 0; i < qs.size(); ++i) {
        const auto full = singleTableHits(single, qs[i]);
        const size_t expect = std::min<size_t>(full.size(), 3);
        ASSERT_EQ(r.hits[i].size(), expect) << "query " << i;
        EXPECT_TRUE(std::equal(r.hits[i].begin(), r.hits[i].end(),
                               full.begin()))
            << "query " << i;
        saw_capped |= full.size() > 3;
    }
    EXPECT_TRUE(saw_capped) << "fixture never exceeded the cap";
}

TEST(ShardRouter, WorkersDrainInboxAcrossRepeatedBatches)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen);
    RouterConfig rcfg;
    rcfg.table = tableCfg(ds.exma_k);
    const ShardRouter router(ds.ref, plan, rcfg);

    const auto qs = queryMix(ds.ref, plan.prefixLen(), 5);
    const RoutedResult first = router.search(qs);
    for (int rep = 0; rep < 3; ++rep) {
        const RoutedResult again = router.search(qs);
        EXPECT_EQ(again.hits, first.hits) << "rep " << rep;
        EXPECT_EQ(again.stats, first.stats) << "rep " << rep;
    }
    u64 processed = 0;
    for (size_t s = 0; s < router.shardCount(); ++s)
        processed += router.replicaSet(s).processedTotal();
    EXPECT_GT(processed, 0u);

    // Per-shard stats merge to the total.
    SearchStats merged;
    for (const SearchStats &s : first.per_shard)
        merged += s;
    EXPECT_EQ(merged, first.stats);

    // findAll agrees with the batch path.
    SearchStats lone;
    EXPECT_EQ(router.findAll(qs[0], &lone), first.hits[0]);
}

TEST(ShardRouter, EmptyBatch)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 2, kMaxQueryLen);
    RouterConfig rcfg;
    rcfg.table = tableCfg(ds.exma_k);
    const ShardRouter router(ds.ref, plan, rcfg);
    const RoutedResult r = router.search({});
    EXPECT_TRUE(r.hits.empty());
    EXPECT_EQ(r.queries, 0u);
    EXPECT_EQ(r.stats, SearchStats{});
}

} // namespace
} // namespace exma
