#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram_system.hh"
#include "dram/energy.hh"
#include "dram/protocol_checker.hh"

namespace exma {
namespace {

DramConfig
smallConfig(PagePolicy policy)
{
    DramConfig cfg = DramConfig::ddr4_2400();
    cfg.channels = 1;
    cfg.page_policy = policy;
    return cfg;
}

DramCoord
coord(int rank, int bg, int bank, u64 row, u64 col, int chip = -1)
{
    DramCoord c;
    c.channel = 0;
    c.rank = rank;
    c.bankgroup = bg;
    c.bank = bank;
    c.row = row;
    c.col = col;
    c.chip = chip;
    return c;
}

TEST(Dram, SingleReadLatencyIsActPlusCasPlusBurst)
{
    EventQueue eq;
    DramSystem mem(eq, smallConfig(PagePolicy::Close));
    Tick done = 0;
    DramRequest req;
    req.coord = coord(0, 0, 0, 10, 0);
    req.on_complete = [&](Tick t) { done = t; };
    mem.accessCoord(std::move(req));
    eq.run();
    // ACT + tRCD(16) + CL(16) + tBL(4) = 36 clocks of 833 ps.
    const Tick expect = 36 * 833;
    EXPECT_EQ(done, expect);
}

TEST(Dram, OpenPolicyRowHitSkipsActivation)
{
    EventQueue eq;
    DramSystem mem(eq, smallConfig(PagePolicy::Open));
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        DramRequest req;
        req.coord = coord(0, 0, 0, 7, static_cast<u64>(i));
        req.on_complete = [&](Tick t) { done.push_back(t); };
        mem.accessCoord(std::move(req));
    }
    eq.run();
    const DramStats s = mem.stats();
    EXPECT_EQ(s.activates, 1u);
    EXPECT_EQ(s.row_hits, 1u);
    EXPECT_EQ(s.row_misses, 1u);
    // Second burst follows after tCCD_L.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_LT(done[1] - done[0], Tick{16 * 833});
}

TEST(Dram, ClosePolicyAlwaysReactivates)
{
    EventQueue eq;
    DramSystem mem(eq, smallConfig(PagePolicy::Close));
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
        DramRequest req;
        req.coord = coord(0, 0, 0, 7, static_cast<u64>(i));
        req.on_complete = [&](Tick) { ++completed; };
        mem.accessCoord(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(mem.stats().activates, 3u);
    EXPECT_EQ(mem.stats().row_hits, 0u);
}

TEST(Dram, DynamicPolicyKeepsRowOpenForPairedRequest)
{
    // The EXMA pattern: Occ(k-mer, low) and Occ(k-mer, high) hit the
    // same row back-to-back; dynamic policy keeps it open for the
    // second and closes afterwards.
    EventQueue eq;
    DramSystem mem(eq, smallConfig(PagePolicy::Dynamic));
    int completed = 0;
    for (int i = 0; i < 2; ++i) {
        DramRequest req;
        req.coord = coord(0, 0, 0, 9, static_cast<u64>(i));
        req.on_complete = [&](Tick) { ++completed; };
        mem.accessCoord(std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(mem.stats().activates, 1u);
    EXPECT_EQ(mem.stats().row_hits, 1u);

    // A later lone request to the same row must re-activate: the row
    // was precharged once its pair drained.
    DramRequest req;
    req.coord = coord(0, 0, 0, 9, 5);
    req.on_complete = [&](Tick) { ++completed; };
    mem.accessCoord(std::move(req));
    eq.run();
    EXPECT_EQ(completed, 3);
    EXPECT_EQ(mem.stats().activates, 2u);
}

TEST(Dram, FrFcfsPrioritisesRowHits)
{
    // Open a row via request A; queue B (other row, same bank) then C
    // (same row as A). FR-FCFS should service C before B.
    EventQueue eq;
    DramSystem mem(eq, smallConfig(PagePolicy::Open));
    std::vector<int> order;
    auto add = [&](u64 row, u64 col, int id) {
        DramRequest req;
        req.coord = coord(0, 0, 0, row, col);
        req.on_complete = [&order, id](Tick) { order.push_back(id); };
        mem.accessCoord(std::move(req));
    };
    add(1, 0, 0);
    add(2, 0, 1); // conflicting row
    add(1, 1, 2); // hit under the already-open row
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 2); // the hit overtakes the older miss
    EXPECT_EQ(order[2], 1);
}

TEST(Dram, BankLevelParallelismOverlapsActivations)
{
    // N requests to different banks finish far sooner than N serial
    // close-page accesses to one bank.
    auto run_case = [&](bool same_bank) {
        EventQueue eq;
        DramSystem mem(eq, smallConfig(PagePolicy::Close));
        for (int i = 0; i < 8; ++i) {
            DramRequest req;
            req.coord = same_bank
                            ? coord(0, 0, 0, static_cast<u64>(i), 0)
                            : coord(i % 4, i / 4 % 2, i % 2,
                                    static_cast<u64>(i), 0);
            mem.accessCoord(std::move(req));
        }
        return eq.run();
    };
    EXPECT_LT(run_case(false), run_case(true));
}

class DramPolicyProtocolTest : public ::testing::TestWithParam<PagePolicy>
{
};

TEST_P(DramPolicyProtocolTest, RandomWorkloadObeysProtocol)
{
    EventQueue eq;
    DramConfig cfg = smallConfig(GetParam());
    DramSystem mem(eq, cfg);
    mem.channel(0).enableLog();
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        DramRequest req;
        req.coord = coord(static_cast<int>(rng.below(12)),
                          static_cast<int>(rng.below(2)),
                          static_cast<int>(rng.below(2)), rng.below(64),
                          rng.below(32));
        req.is_write = rng.bernoulli(0.2);
        mem.accessCoord(std::move(req));
        if (i % 7 == 0)
            eq.runUntil(eq.now() + 50 * 833);
    }
    eq.run();
    ProtocolChecker checker(cfg);
    auto violations = checker.check(mem.channel(0).log());
    for (const auto &v : violations)
        ADD_FAILURE() << v.rule << " at " << v.index << ": " << v.detail;
    EXPECT_EQ(mem.stats().completed, 400u);
}

INSTANTIATE_TEST_SUITE_P(Policies, DramPolicyProtocolTest,
                         ::testing::Values(PagePolicy::Open,
                                           PagePolicy::Close,
                                           PagePolicy::Dynamic));

TEST(Dram, ChipModeObeysProtocol)
{
    EventQueue eq;
    DramConfig cfg = smallConfig(PagePolicy::Close);
    cfg.chip_level_parallelism = true;
    DramSystem mem(eq, cfg);
    mem.channel(0).enableLog();
    Rng rng(8);
    for (int i = 0; i < 300; ++i) {
        DramRequest req;
        req.coord = coord(static_cast<int>(rng.below(12)),
                          static_cast<int>(rng.below(2)),
                          static_cast<int>(rng.below(2)), rng.below(64),
                          rng.below(32), static_cast<int>(rng.below(16)));
        mem.accessCoord(std::move(req));
    }
    eq.run();
    ProtocolChecker checker(cfg);
    auto violations = checker.check(mem.channel(0).log());
    for (const auto &v : violations)
        ADD_FAILURE() << v.rule << " at " << v.index << ": " << v.detail;
}

TEST(Dram, ChipModeMovesFullLineOverNarrowLanes)
{
    // A MEDAL chip serves the whole 64B bucket over its own lanes: the
    // burst takes 16x longer than a full-bus access but still delivers
    // line_bytes.
    EventQueue eq;
    DramConfig cfg = smallConfig(PagePolicy::Close);
    cfg.chip_level_parallelism = true;
    DramSystem mem(eq, cfg);
    Tick done = 0;
    DramRequest req;
    req.coord = coord(0, 0, 0, 3, 0, 5);
    req.on_complete = [&](Tick t) { done = t; };
    mem.accessCoord(std::move(req));
    eq.run();
    EXPECT_EQ(mem.stats().bytes_transferred, cfg.line_bytes);
    // ACT + tRCD + CL + 16*tBL = 16+16+64 clocks.
    EXPECT_EQ(done, Tick{(16 + 16 + 64) * 833});
}

TEST(Dram, ChipModeCommandBusLimitsThroughput)
{
    // 64 independent same-cycle requests across chips: the shared
    // command bus serialises their ACT/RD pairs (Fig. 7).
    EventQueue eq;
    DramConfig cfg = smallConfig(PagePolicy::Close);
    cfg.chip_level_parallelism = true;
    DramSystem mem(eq, cfg);
    Rng rng(9);
    const int n = 64;
    for (int i = 0; i < n; ++i) {
        DramRequest req;
        req.coord = coord(i % 12, i % 2, (i / 2) % 2, rng.below(1000),
                          rng.below(32), i % 16);
        mem.accessCoord(std::move(req));
    }
    const Tick end = eq.run();
    // 2 commands per access over a 1-cmd/clk bus is a hard floor.
    EXPECT_GE(end, Tick{2 * n} * 833 - 40 * 833);
    EXPECT_EQ(mem.stats().completed, static_cast<u64>(n));
}

TEST(Dram, ProtocolCheckerCatchesViolations)
{
    DramConfig cfg = smallConfig(PagePolicy::Close);
    ProtocolChecker checker(cfg);
    std::vector<CommandRecord> bad;
    DramCoord c = coord(0, 0, 0, 1, 0);
    bad.push_back({0, DramCmd::Act, c});
    // Column command 2 clocks after ACT: violates tRCD = 16.
    bad.push_back({2 * 833, DramCmd::Rd, c});
    auto violations = checker.check(bad);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, "tRCD");
}

TEST(Dram, ProtocolCheckerCatchesCmdBusConflict)
{
    DramConfig cfg = smallConfig(PagePolicy::Close);
    ProtocolChecker checker(cfg);
    std::vector<CommandRecord> bad;
    bad.push_back({0, DramCmd::Act, coord(0, 0, 0, 1, 0)});
    bad.push_back({100, DramCmd::Act, coord(1, 0, 0, 1, 0)}); // same clock
    auto violations = checker.check(bad);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, "cmd-bus");
}

TEST(Dram, DependentChainUnderutilisesBandwidth)
{
    // The paper's core observation: 1-step FM-Index search is pointer
    // chasing — each access waits for the previous one, so a close-page
    // random chain leaves the data bus mostly idle, while independent
    // traffic saturates it.
    auto chain_util = [&] {
        EventQueue eq;
        DramSystem mem(eq, smallConfig(PagePolicy::Close));
        Rng rng(10);
        int remaining = 300;
        std::function<void(Tick)> next = [&](Tick) {
            if (remaining-- <= 0)
                return;
            DramRequest req;
            req.coord = coord(static_cast<int>(rng.below(12)),
                              static_cast<int>(rng.below(2)),
                              static_cast<int>(rng.below(2)),
                              rng.below(4096), rng.below(32));
            req.on_complete = next;
            mem.accessCoord(std::move(req));
        };
        next(0);
        eq.run();
        return mem.bandwidthUtilization();
    };
    auto flood_util = [&] {
        EventQueue eq;
        DramSystem mem(eq, smallConfig(PagePolicy::Close));
        Rng rng(10);
        for (int i = 0; i < 300; ++i) {
            DramRequest req;
            req.coord = coord(static_cast<int>(rng.below(12)),
                              static_cast<int>(rng.below(2)),
                              static_cast<int>(rng.below(2)),
                              rng.below(4096), rng.below(32));
            mem.accessCoord(std::move(req));
        }
        eq.run();
        return mem.bandwidthUtilization();
    };
    const double chained = chain_util();
    const double flooded = flood_util();
    EXPECT_LT(chained, 0.2); // one 64B burst per full access latency
    EXPECT_GT(flooded, chained * 3.0);
}

TEST(Dram, EnergyScalesWithActivity)
{
    EventQueue eq;
    DramConfig cfg = smallConfig(PagePolicy::Close);
    DramSystem mem(eq, cfg);
    for (int i = 0; i < 100; ++i) {
        DramRequest req;
        req.coord = coord(i % 12, i % 2, (i / 2) % 2,
                          static_cast<u64>(i), 0);
        mem.accessCoord(std::move(req));
    }
    const Tick end = eq.run();
    DramEnergyParams params;
    auto r = dramEnergy(mem.stats(), end, cfg, params);
    EXPECT_GT(r.act_j, 0.0);
    EXPECT_GT(r.rw_j, 0.0);
    EXPECT_GT(r.background_j, 0.0);
    EXPECT_NEAR(r.act_j, 100 * params.act_nj * 1e-9, 1e-12);
}

TEST(Dram, FullSystemBackgroundPowerNearPaperSeventyTwoWatts)
{
    // Table II quotes 72 W for the 384 GB DDR4 system. Background
    // dominates at low activity; check the configured system lands in
    // that regime (±35%).
    DramConfig cfg = DramConfig::ddr4_2400();
    EXPECT_EQ(totalChips(cfg), 768);
    DramStats idle_stats;
    idle_stats.first_activity = 0;
    idle_stats.last_activity = 1000000000; // 1 ms
    auto r = dramEnergy(idle_stats, 1000000000, cfg, DramEnergyParams{});
    EXPECT_GT(r.avg_power_w, 47.0);
    EXPECT_LT(r.avg_power_w, 97.0);
}

TEST(Dram, DeterministicAcrossRuns)
{
    auto run_once = [&] {
        EventQueue eq;
        DramSystem mem(eq, smallConfig(PagePolicy::Dynamic));
        Rng rng(11);
        for (int i = 0; i < 200; ++i) {
            DramRequest req;
            req.coord = coord(static_cast<int>(rng.below(12)),
                              static_cast<int>(rng.below(2)),
                              static_cast<int>(rng.below(2)),
                              rng.below(256), rng.below(32));
            mem.accessCoord(std::move(req));
        }
        return eq.run();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Dram, AddressMapperRoundRobinsChannels)
{
    DramConfig cfg = DramConfig::ddr4_2400();
    AddressMapper mapper(cfg);
    // Lines within one row stay in one channel; the next row's lines
    // move to the next channel.
    auto a = mapper.decode(0);
    auto b = mapper.decode(64);
    auto c = mapper.decode(cfg.row_bytes);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(b.col, 1u);
    EXPECT_EQ(c.channel, (a.channel + 1) % cfg.channels);
}

} // namespace
} // namespace exma
