/**
 * @file
 * Deliberate thread-safety violations, used to prove the
 * -Wthread-safety gate actually fails the build.
 *
 * This file is never linked into any target. CTest compiles it two
 * ways (see tests/CMakeLists.txt):
 *  - static.thread_safety_fixture_is_valid_cpp: plain -fsyntax-only on
 *    every compiler must succeed — the violations below are valid C++,
 *    so a failure of the next test can only come from the analysis;
 *  - static.thread_safety_unguarded_access_fails (Clang only):
 *    -fsyntax-only -Wthread-safety -Werror must FAIL (the test is
 *    registered WILL_FAIL), demonstrating that an unguarded access to
 *    EXMA_GUARDED_BY state is a build break in the clang CI leg.
 *
 * Keep at least one violation of each class the serving tier relies
 * on: unguarded write, unguarded read, and lock-without-release.
 */

#include "common/thread_annotations.hh"

namespace {

class Counter
{
  public:
    // VIOLATION: writes value_ without holding mtx_.
    void bumpUnguarded() { ++value_; }

    // VIOLATION: reads value_ without holding mtx_.
    long readUnguarded() const { return value_; }

    // VIOLATION: acquires mtx_ and returns without releasing it.
    void
    lockLeak()
    {
        mtx_.lock();
        ++value_;
    }

    // Correct form, for contrast: this must not warn.
    void
    bumpGuarded()
    {
        exma::MutexLock lock(mtx_);
        ++value_;
    }

  private:
    mutable exma::Mutex mtx_;
    long value_ EXMA_GUARDED_BY(mtx_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.bumpUnguarded();
    c.lockLeak();
    c.bumpGuarded();
    return static_cast<int>(c.readUnguarded());
}
