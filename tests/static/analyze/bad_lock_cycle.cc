/**
 * @file
 * Deliberately-bad fixture for the lock-order analyzer: two mutexes
 * acquired in opposite orders on two code paths — the classic AB/BA
 * deadlock shape. Never compiled or linked; consumed by the
 * analyze.fixture.lock-order ctest gate, which runs
 *
 *   exma_analyze.py --pass lock-order tests/static/analyze/bad_lock_cycle.cc
 *
 * with WILL_FAIL set, proving the pass fires (and names both witness
 * paths) on exactly this pattern.
 */

#include "common/thread_annotations.hh"

namespace exma::fixture {

class Ledger
{
  public:
    void creditThenDebit()
    {
        MutexLock a(credit_mtx_);
        MutexLock b(debit_mtx_); // credit_mtx_ -> debit_mtx_
        ++balance_;
    }

    void debitThenCredit()
    {
        MutexLock a(debit_mtx_);
        MutexLock b(credit_mtx_); // debit_mtx_ -> credit_mtx_: cycle
        --balance_;
    }

  private:
    Mutex credit_mtx_;
    Mutex debit_mtx_;
    int balance_ EXMA_GUARDED_BY(credit_mtx_) = 0;
};

} // namespace exma::fixture
