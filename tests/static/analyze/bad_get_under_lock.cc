/**
 * @file
 * Deliberately-bad fixture for the blocked-under-lock analyzer: a
 * future .get() inside a critical section, so every other thread
 * contending on mtx_ stalls until the future resolves — the serving
 * tier's tail latency and the supervisor's hang detector both die on
 * this. Never compiled; consumed by the
 * analyze.fixture.blocked-under-lock ctest gate (WILL_FAIL), proving
 * the pass fires.
 */

#include <future>

#include "common/thread_annotations.hh"

namespace exma::fixture {

class ResultCache
{
  public:
    int waitForFill(std::future<int> fut)
    {
        MutexLock lock(mtx_);
        ++waiters_;
        return fut.get(); // blocks the whole cache on one fill
    }

  private:
    Mutex mtx_;
    int waiters_ EXMA_GUARDED_BY(mtx_) = 0;
};

} // namespace exma::fixture
