/**
 * @file
 * Fixture mini-root for the ondisk-abi analyzer: a toy on-disk format
 * whose LeafEntry fields were reordered after format_abi.lock was
 * committed, without bumping kFormatVersion. sizeof is unchanged (16
 * bytes either way) so the PR-7 static_asserts still pass — only the
 * offset-exact lock catches it. Consumed by the
 * analyze.fixture.ondisk-abi ctest gate (WILL_FAIL).
 */

#ifndef EXMA_FIXTURE_ABI_FORMAT_HH
#define EXMA_FIXTURE_ABI_FORMAT_HH

#include "common/types.hh"

namespace exma {

inline constexpr u32 kFormatVersion = 1;

struct FileHeader
{
    char magic[8];
    u32 version;
    u32 n_sections;
};

struct SectionEntry
{
    u32 tag;
    u32 elem_size;
    u64 count;
};

/** The reordered POD: the committed lock froze {key@0, flags@8}, but
 *  the fields now read flags-first — same sizeof, different offsets. */
struct LeafEntry
{
    u32 flags;
    u32 pad;
    u64 key;
};

} // namespace exma

#endif // EXMA_FIXTURE_ABI_FORMAT_HH
