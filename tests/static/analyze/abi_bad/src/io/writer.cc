/**
 * @file
 * Fixture serialization site: spells writeArray<LeafEntry> so the
 * ondisk-abi pass puts LeafEntry under lock. The paired static_asserts
 * (the PR-7 convention) are present and still TRUE after the field
 * reorder in format.hh — which is exactly the gap the offset-exact
 * lock file closes. Never compiled.
 */

#include <type_traits>

#include "io/format.hh"

namespace exma {

static_assert(sizeof(LeafEntry) == 16);
static_assert(std::is_trivially_copyable_v<LeafEntry>);

template <typename T> void writeArray(u32 tag, const T *data, u64 n);

void
writeLeaves(const LeafEntry *leaves, u64 n)
{
    writeArray<LeafEntry>(7, leaves, n);
}

} // namespace exma
