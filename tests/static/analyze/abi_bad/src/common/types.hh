/**
 * @file
 * Fixture mini-root for the ondisk-abi analyzer: fixed-width aliases,
 * mirroring the real src/common/types.hh surface the probe needs.
 */

#ifndef EXMA_FIXTURE_ABI_TYPES_HH
#define EXMA_FIXTURE_ABI_TYPES_HH

#include <cstdint>

namespace exma {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

} // namespace exma

#endif // EXMA_FIXTURE_ABI_TYPES_HH
