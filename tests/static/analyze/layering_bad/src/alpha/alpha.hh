/**
 * @file
 * Fixture module "alpha" for the layering analyzer. Declares DEPS on
 * beta (see CMakeLists.txt) and includes it — a declared edge.
 */

#ifndef EXMA_FIXTURE_ALPHA_HH
#define EXMA_FIXTURE_ALPHA_HH

#include "beta/beta.hh"

namespace exma::fixture {

inline int alphaValue() { return betaValue() + 1; }

} // namespace exma::fixture

#endif // EXMA_FIXTURE_ALPHA_HH
