/**
 * @file
 * Fixture module "beta" for the layering analyzer. The include below
 * is the violation: beta reaches into alpha without declaring
 * DEPS exma::alpha — and since alpha declares DEPS on beta, the
 * module graph is also cyclic. Never compiled; consumed by the
 * analyze.fixture.layering ctest gate (WILL_FAIL).
 */

#ifndef EXMA_FIXTURE_BETA_HH
#define EXMA_FIXTURE_BETA_HH

#include "alpha/alpha.hh"

namespace exma::fixture {

inline int betaValue() { return 41; }

} // namespace exma::fixture

#endif // EXMA_FIXTURE_BETA_HH
