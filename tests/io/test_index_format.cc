// The persistent `.exma.*` format (src/io/): container round trips,
// every corruption class failing closed with LoadError, and full-index
// differential proofs — a saved + mmap-loaded index must return
// bit-identical intervals, positions and SearchStats to the freshly
// built table it came from, in every occ-index mode and layout.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "genome/reference.hh"
#include "io/format.hh"
#include "persist/index_io.hh"

namespace exma {
namespace {

namespace fs = std::filesystem;

// On-disk element-layout contracts (lint: ondisk-pod-assert) for the
// array types this suite writes through FileBuilder.
static_assert(sizeof(u8) == 1);
static_assert(std::is_trivially_copyable_v<u8>);
static_assert(sizeof(u32) == 4);
static_assert(std::is_trivially_copyable_v<u32>);
static_assert(sizeof(u64) == 8);
static_assert(std::is_trivially_copyable_v<u64>);

std::string
tempDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

const std::vector<Base> &
testRef()
{
    static const std::vector<Base> ref = [] {
        ReferenceSpec spec;
        spec.length = 1 << 16;
        spec.repeat_fraction = 0.5;
        spec.seed = 77;
        return generateReference(spec);
    }();
    return ref;
}

ExmaTable::Config
cfgFor(OccIndexMode mode, int k = 4)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = mode;
    cfg.mtl.epochs = 15;
    cfg.mtl.samples_per_class = 1024;
    cfg.naive.epochs = 8;
    return cfg;
}

std::vector<std::vector<Base>>
refQueries(u64 count, u64 len, u64 seed = 3)
{
    const std::vector<Base> &ref = testRef();
    Rng rng(seed);
    std::vector<std::vector<Base>> queries(count);
    for (auto &q : queries) {
        const u64 pos = rng.below(ref.size() - len + 1);
        q.assign(ref.begin() + static_cast<long>(pos),
                 ref.begin() + static_cast<long>(pos + len));
    }
    return queries;
}

// --- container (FileBuilder / FileView) ---------------------------------

constexpr char kTestMagic[8] = {'E', 'X', 'M', 'A', 'T', 'S', 'T', '\0'};

std::string
writeTestFile(const std::string &dir)
{
    const std::string path = dir + "/file.bin";
    FileBuilder fb(kTestMagic);
    const std::vector<u32> words{1, 2, 3, 4, 5};
    fb.writeArray<u32>(1, words);
    BlobWriter w;
    w.putU64(42);
    w.putString("hello");
    fb.writeArray<u8>(2, w.bytes());
    fb.save(path);
    return path;
}

void
patchByte(const std::string &path, u64 offset, u8 value)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char *>(&value), 1); // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
}

// XOR-flip so the byte is guaranteed to change whatever it held.
void
flipByte(const std::string &path, u64 offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

bool
pointsIntoMapping(const std::vector<MappedFile> &files, const void *p)
{
    const u8 *b = static_cast<const u8 *>(p);
    for (const MappedFile &f : files)
        if (b >= f.data() && b < f.data() + f.size())
            return true;
    return false;
}

TEST(FileFormatTest, RoundTripsSectionsAndBlob)
{
    const std::string path = writeTestFile(tempDir("fmt_roundtrip"));
    const MappedFile file(path);
    const FileView view(file, kTestMagic);
    ASSERT_TRUE(view.has(1));
    ASSERT_TRUE(view.has(2));
    EXPECT_FALSE(view.has(3));

    const auto words = view.viewArray<u32>(1);
    ASSERT_EQ(words.size(), 5u);
    EXPECT_EQ(words[0], 1u);
    EXPECT_EQ(words[4], 5u);
    // Sections are 64-byte aligned into the mapping (zero-copy).
    EXPECT_EQ(reinterpret_cast<uintptr_t>(words.data()) % 64, 0u); // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)

    const std::vector<u8> blob = view.readBlob(2);
    BlobReader r(blob, "test blob");
    EXPECT_EQ(r.getU64(), 42u);
    EXPECT_EQ(r.getString(), "hello");
    r.finish();
}

TEST(FileFormatTest, MissingFileThrows)
{
    EXPECT_THROW(MappedFile("/nonexistent/exma/index.bin"), LoadError);
}

TEST(FileFormatTest, EmptyFileThrows)
{
    const std::string path = tempDir("fmt_empty") + "/empty.bin";
    { std::ofstream out(path); }
    EXPECT_THROW(MappedFile{path}, LoadError);
}

TEST(FileFormatTest, TruncatedFileThrows)
{
    const std::string path = writeTestFile(tempDir("fmt_trunc"));
    const u64 size = fs::file_size(path);
    fs::resize_file(path, size - 8);
    const MappedFile file(path);
    EXPECT_THROW(FileView(file, kTestMagic), LoadError);
}

TEST(FileFormatTest, BadMagicThrows)
{
    const std::string path = writeTestFile(tempDir("fmt_magic"));
    patchByte(path, 0, 'Z');
    const MappedFile file(path);
    EXPECT_THROW(FileView(file, kTestMagic), LoadError);
}

TEST(FileFormatTest, WrongMagicConstantThrows)
{
    // A valid file opened as the wrong companion kind must refuse too.
    const std::string path = writeTestFile(tempDir("fmt_kind"));
    const MappedFile file(path);
    EXPECT_THROW(FileView(file, kMagicOcc), LoadError);
}

TEST(FileFormatTest, WrongVersionThrows)
{
    const std::string path = writeTestFile(tempDir("fmt_version"));
    patchByte(path, 8, static_cast<u8>(kFormatVersion + 1)); // header.version
    const MappedFile file(path);
    try {
        const FileView view(file, kTestMagic);
        FAIL() << "version mismatch not detected";
    } catch (const LoadError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(FileFormatTest, FlippedPayloadByteFailsChecksum)
{
    const std::string path = writeTestFile(tempDir("fmt_checksum"));
    const u64 size = fs::file_size(path);
    flipByte(path, size - 1); // last payload byte
    const MappedFile file(path);
    try {
        const FileView view(file, kTestMagic);
        FAIL() << "corruption not detected";
    } catch (const LoadError &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(FileFormatTest, ElementSizeMismatchThrows)
{
    const std::string path = writeTestFile(tempDir("fmt_elem"));
    const MappedFile file(path);
    const FileView view(file, kTestMagic);
    EXPECT_THROW(view.viewArray<u64>(1), LoadError); // written as u32
    EXPECT_THROW(view.viewArray<u32>(9), LoadError); // no such section
}

TEST(FileFormatTest, BlobReaderOverrunThrows)
{
    BlobWriter w;
    w.putU32(7);
    BlobReader r(w.bytes(), "blob");
    EXPECT_EQ(r.getU32(), 7u);
    try {
        r.getU64(); // nothing left
        FAIL() << "overrun not detected";
    } catch (const LoadError &e) {
        // The message carries the reader's label (load sites pass the
        // companion-file path) and the byte offset of the bad field.
        EXPECT_NE(std::string(e.what()).find("blob @+4"),
                  std::string::npos)
            << e.what();
    }
    BlobReader unfinished(w.bytes(), "blob");
    try {
        unfinished.finish(); // unconsumed bytes
        FAIL() << "trailing garbage not detected";
    } catch (const LoadError &e) {
        EXPECT_NE(std::string(e.what()).find("blob @+0"),
                  std::string::npos)
            << e.what();
    }
}

// --- single-table round trips -------------------------------------------

void
expectIdenticalSearch(const ExmaTable &built, const ExmaTable &loaded)
{
    ASSERT_EQ(loaded.k(), built.k());
    ASSERT_EQ(loaded.rows(), built.rows());
    ASSERT_EQ(loaded.mode(), built.mode());
    for (const auto &q : refQueries(60, 24)) {
        SearchStats sb, sl;
        const Interval ib = built.search(q, &sb);
        const Interval il = loaded.search(q, &sl);
        EXPECT_EQ(ib, il);
        EXPECT_EQ(sb, sl); // identical models -> identical error/probes
        EXPECT_GT(ib.count(), 0u); // sampled off the reference
        EXPECT_EQ(built.locateAllGlobal(ib, q.size()),
                  loaded.locateAllGlobal(il, q.size()));
    }
}

class TableRoundTripTest
    : public ::testing::TestWithParam<OccIndexMode>
{
};

TEST_P(TableRoundTripTest, LoadedTableSearchesIdentically)
{
    const ExmaTable built(testRef(), cfgFor(GetParam()));
    const std::string stem = tempDir("table_rt") + "/table";
    saveTableFiles(built, stem, testRef());
    const LoadedExmaTable loaded = loadTableFiles(stem);
    expectIdenticalSearch(built, *loaded.table);
    // The hot arrays must be borrowed from the mappings, not copied.
    EXPECT_TRUE(pointsIntoMapping(
        loaded.files, loaded.table->occTable().baseArray().data()));
}

INSTANTIATE_TEST_SUITE_P(AllModes, TableRoundTripTest,
                         ::testing::Values(OccIndexMode::Exact,
                                           OccIndexMode::NaiveLearned,
                                           OccIndexMode::Mtl),
                         [](const auto &info) {
                             switch (info.param) {
                             case OccIndexMode::Exact:
                                 return "Exact";
                             case OccIndexMode::NaiveLearned:
                                 return "Naive";
                             case OccIndexMode::Mtl:
                                 return "Mtl";
                             }
                             return "?";
                         });

TEST(TableCorruptionTest, FlippedOccByteFailsClosed)
{
    const ExmaTable built(testRef(), cfgFor(OccIndexMode::Exact));
    const std::string stem = tempDir("table_corrupt") + "/table";
    saveTableFiles(built, stem);
    const std::string occ_path = stem + kExtOcc;
    flipByte(occ_path, fs::file_size(occ_path) / 2);
    try {
        loadTableFiles(stem);
        FAIL() << "corruption not detected";
    } catch (const LoadError &e) {
        // Every load-path LoadError names the failing file.
        EXPECT_NE(std::string(e.what()).find(occ_path),
                  std::string::npos)
            << e.what();
    }
}

TEST(TableCorruptionTest, MissingCompanionFileFailsClosed)
{
    const ExmaTable built(testRef(), cfgFor(OccIndexMode::Exact));
    const std::string stem = tempDir("table_missing") + "/table";
    saveTableFiles(built, stem);
    fs::remove(stem + kExtSa);
    EXPECT_THROW(loadTableFiles(stem), LoadError);
}

TEST(TableCorruptionTest, SwappedCompanionFilesFailClosed)
{
    const ExmaTable built(testRef(), cfgFor(OccIndexMode::Exact));
    const std::string stem = tempDir("table_swap") + "/table";
    saveTableFiles(built, stem);
    fs::rename(stem + kExtSa, stem + ".tmp");
    fs::rename(stem + kExtOcc, stem + kExtSa);
    fs::rename(stem + ".tmp", stem + kExtOcc);
    EXPECT_THROW(loadTableFiles(stem), LoadError);
}

// --- whole-index round trips --------------------------------------------

TEST(IndexRoundTripTest, MonoDirectory)
{
    const ExmaTable built(testRef(), cfgFor(OccIndexMode::Mtl));
    const std::string dir = tempDir("idx_mono");
    saveIndex(built, testRef(), dir);
    const LoadedIndex loaded = loadIndex(dir);
    ASSERT_EQ(loaded.kind, IndexKind::Mono);
    ASSERT_NE(loaded.table, nullptr);
    expectIdenticalSearch(built, *loaded.table);
    EXPECT_GE(loaded.load_seconds, 0.0);
}

TEST(IndexRoundTripTest, ShardedTextDirectory)
{
    const ShardPlan plan =
        ShardPlan::fixedWidth(testRef().size(), 3, 64);
    const ShardedExmaTable built(
        testRef(), plan,
        ShardedExmaTable::Config{cfgFor(OccIndexMode::Exact), 0});
    const std::string dir = tempDir("idx_sharded");
    saveIndex(built, dir);
    const LoadedIndex loaded = loadIndex(dir);
    ASSERT_EQ(loaded.kind, IndexKind::ShardedText);
    ASSERT_NE(loaded.sharded, nullptr);
    ASSERT_EQ(loaded.sharded->shardCount(), built.shardCount());

    const auto queries = refQueries(40, 32);
    const ShardedResult rb = built.search(queries);
    const ShardedResult rl = loaded.sharded->search(queries);
    EXPECT_EQ(rb.hits, rl.hits);
    EXPECT_EQ(rb.stats, rl.stats);
    for (const auto &h : rb.hits)
        EXPECT_FALSE(h.empty());
}

TEST(IndexRoundTripTest, RoutedDirectory)
{
    const ShardPlan plan = ShardPlan::kmerPrefix(testRef(), 4, 64);
    RouterConfig cfg;
    cfg.table = cfgFor(OccIndexMode::Exact);
    const ShardRouter built(testRef(), plan, cfg);
    const std::string dir = tempDir("idx_routed");
    saveIndex(built, dir);
    const LoadedIndex loaded = loadIndex(dir);
    ASSERT_EQ(loaded.kind, IndexKind::Routed);
    ASSERT_NE(loaded.router, nullptr);
    ASSERT_EQ(loaded.router->shardCount(), built.shardCount());

    const auto queries = refQueries(40, 32);
    const RoutedResult rb = built.search(queries);
    const RoutedResult rl = loaded.router->search(queries);
    EXPECT_EQ(rb.hits, rl.hits);
    EXPECT_EQ(rb.stats, rl.stats);
    EXPECT_EQ(rb.routed_queries, rl.routed_queries);
    for (const auto &h : rb.hits)
        EXPECT_FALSE(h.empty());
}

TEST(IndexRoundTripTest, RoutedWithScanShards)
{
    // Force every shard under min_table_bases so the saved index
    // exercises the scan-shard (.pac-only) path end to end.
    const ShardPlan plan = ShardPlan::kmerPrefix(testRef(), 3, 48);
    RouterConfig cfg;
    cfg.table = cfgFor(OccIndexMode::Exact);
    cfg.min_table_bases = ~u64{0};
    const ShardRouter built(testRef(), plan, cfg);
    const std::string dir = tempDir("idx_scan");
    saveIndex(built, dir);
    const LoadedIndex loaded = loadIndex(dir);
    ASSERT_NE(loaded.router, nullptr);

    const auto queries = refQueries(20, 32);
    EXPECT_EQ(built.search(queries).hits,
              loaded.router->search(queries).hits);
}

TEST(IndexRoundTripTest, CorruptManifestFailsClosed)
{
    const ExmaTable built(testRef(), cfgFor(OccIndexMode::Exact));
    const std::string dir = tempDir("idx_corrupt_manifest");
    saveIndex(built, testRef(), dir);
    const std::string manifest = dir + "/" + kManifestName;
    flipByte(manifest, fs::file_size(manifest) - 1);
    EXPECT_THROW(loadIndex(dir), LoadError);
}

} // namespace
} // namespace exma
