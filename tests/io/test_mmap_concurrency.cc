// Two independent loads of the same on-disk index map the same
// companion files (MAP_SHARED of a read-only fd) and must serve
// differential-identical results concurrently — the multi-worker
// serving model the persistent format exists for. Runs under TSan via
// the `concurrency` label: a write anywhere through the shared
// mappings, or unsynchronized mutable state in the restore path, is a
// reported race, not just a wrong answer.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "genome/reference.hh"
#include "persist/index_io.hh"

namespace exma {
namespace {

TEST(MmapConcurrencyTest, TwoLoadersServeIdenticalResults)
{
    ReferenceSpec spec;
    spec.length = 1 << 16;
    spec.repeat_fraction = 0.5;
    spec.seed = 91;
    const std::vector<Base> ref = generateReference(spec);

    ExmaTable::Config table_cfg;
    table_cfg.k = 4;
    table_cfg.mode = OccIndexMode::Exact;
    const ShardPlan plan = ShardPlan::kmerPrefix(ref, 4, 64);
    RouterConfig cfg;
    cfg.table = table_cfg;
    const ShardRouter built(ref, plan, cfg);

    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "mmap_concurrency";
    std::filesystem::remove_all(dir);
    saveIndex(built, dir.string());

    Rng rng(17);
    std::vector<std::vector<Base>> queries(64);
    for (auto &q : queries) {
        const u64 pos = rng.below(ref.size() - 32 + 1);
        q.assign(ref.begin() + static_cast<long>(pos),
                 ref.begin() + static_cast<long>(pos + 32));
    }
    const RoutedResult expect = built.search(queries);

    // Each loader maps the same files; the kernel shares the pages.
    const LoadedIndex a = loadIndex(dir.string());
    const LoadedIndex b = loadIndex(dir.string());
    ASSERT_NE(a.router, nullptr);
    ASSERT_NE(b.router, nullptr);

    RoutedResult ra, rb;
    std::thread ta([&] { ra = a.router->search(queries); });
    std::thread tb([&] { rb = b.router->search(queries); });
    ta.join();
    tb.join();

    EXPECT_EQ(ra.hits, expect.hits);
    EXPECT_EQ(rb.hits, expect.hits);
    EXPECT_EQ(ra.stats, expect.stats);
    EXPECT_EQ(rb.stats, expect.stats);
    for (const auto &h : expect.hits)
        EXPECT_FALSE(h.empty());
}

TEST(MmapConcurrencyTest, OneLoadedIndexSharedByTwoThreads)
{
    ReferenceSpec spec;
    spec.length = 1 << 15;
    spec.repeat_fraction = 0.4;
    spec.seed = 92;
    const std::vector<Base> ref = generateReference(spec);

    ExmaTable::Config table_cfg;
    table_cfg.k = 4;
    table_cfg.mode = OccIndexMode::Exact;
    const ExmaTable built(ref, table_cfg);

    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "mmap_shared";
    std::filesystem::remove_all(dir);
    saveIndex(built, ref, dir.string());
    const LoadedIndex loaded = loadIndex(dir.string());
    ASSERT_NE(loaded.table, nullptr);

    Rng rng(23);
    std::vector<std::vector<Base>> queries(48);
    for (auto &q : queries) {
        const u64 pos = rng.below(ref.size() - 24 + 1);
        q.assign(ref.begin() + static_cast<long>(pos),
                 ref.begin() + static_cast<long>(pos + 24));
    }

    // const searches over one borrowed-backing table from two threads.
    auto run = [&](std::vector<std::vector<u64>> &out) {
        out.resize(queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
            const Interval iv = loaded.table->search(queries[i]);
            out[i] = loaded.table->locateAllGlobal(iv, queries[i].size());
        }
    };
    std::vector<std::vector<u64>> ha, hb;
    std::thread ta([&] { run(ha); });
    std::thread tb([&] { run(hb); });
    ta.join();
    tb.join();

    for (size_t i = 0; i < queries.size(); ++i) {
        const Interval iv = built.search(queries[i]);
        const std::vector<u64> want =
            built.locateAllGlobal(iv, queries[i].size());
        EXPECT_FALSE(want.empty());
        EXPECT_EQ(ha[i], want);
        EXPECT_EQ(hb[i], want);
    }
}

} // namespace
} // namespace exma
