// The wire codec, fail-closed: encode/decode round trips must be
// lossless, and every malformed frame or body — truncation at any
// byte, corrupt counts/lengths, bad magic, version skew, flipped
// canary — must throw a typed TransportError without ever over-reading
// or over-allocating.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "transport/wire.hh"

namespace exma {
namespace {

WorkerRequest
sampleRequest()
{
    // Lengths straddle the 2-bit packing word size: 1, exactly 32,
    // 33 (one spill bit), and a multi-word 70.
    std::vector<std::vector<Base>> queries;
    std::vector<u32> ids = {5, 0, 7, 2};
    u64 seed = 1;
    for (const size_t len : {size_t{1}, size_t{32}, size_t{33}, size_t{70}}) {
        std::vector<Base> q(len);
        for (auto &b : q) {
            seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
            b = static_cast<Base>(seed >> 62);
        }
        queries.push_back(std::move(q));
    }
    WorkerRequest req;
    req.batch = QueryBatchView::own(std::move(queries), std::move(ids));
    req.cfg.grain = 11;
    return req;
}

WorkerResponse
sampleResponse()
{
    WorkerResponse resp;
    resp.status = WorkerStatus::Ok;
    resp.ids = {4, 9, 1};
    resp.hits = {{3, 17, 290}, {}, {u64{1} << 40}};
    resp.stats.kstep_iterations = 3;
    resp.stats.total_probes = 4;
    resp.seconds = 0.125;
    resp.canary = responseCanary(resp);
    return resp;
}

TEST(Wire, RequestRoundTripPreservesQueriesIdsAndGrain)
{
    const WorkerRequest req = sampleRequest();
    const std::vector<u8> body = encodeRequest(req);
    const WorkerRequest back = decodeRequest(body, -1);
    ASSERT_EQ(back.batch.size(), req.batch.size());
    EXPECT_EQ(back.batch.ids(), req.batch.ids());
    for (size_t j = 0; j < req.batch.size(); ++j)
        EXPECT_EQ(back.batch.query(j), req.batch.query(j))
            << "query " << j;
    EXPECT_EQ(back.cfg.grain, req.cfg.grain);
    EXPECT_EQ(back.batch.totalBases(), req.batch.totalBases());
}

TEST(Wire, EmptyRequestRoundTrip)
{
    WorkerRequest req;
    req.cfg.grain = 4;
    const std::vector<u8> body = encodeRequest(req);
    EXPECT_EQ(body.size(), sizeof(WireRequestHead));
    const WorkerRequest back = decodeRequest(body, -1);
    EXPECT_TRUE(back.batch.empty());
    EXPECT_EQ(back.cfg.grain, 4u);
}

TEST(Wire, BorrowedAndOwnedRequestsEncodeIdentically)
{
    const std::vector<std::vector<Base>> batch = {
        {0, 1, 2, 3}, {3, 3}, {1}};
    const WorkerRequest borrowed{
        QueryBatchView::borrow(batch, {2, 0}), {}};
    const WorkerRequest owned{
        QueryBatchView::own({batch[2], batch[0]}, {2, 0}), {}};
    EXPECT_EQ(encodeRequest(borrowed), encodeRequest(owned));
}

TEST(Wire, ResponseRoundTripPreservesEverything)
{
    const WorkerResponse resp = sampleResponse();
    const std::vector<u8> body = encodeResponse(resp);
    const WorkerResponse back = decodeResponse(body, -1);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.ids, resp.ids);
    EXPECT_EQ(back.hits, resp.hits);
    EXPECT_EQ(back.canary, resp.canary);
    EXPECT_EQ(back.stats, resp.stats);
    EXPECT_EQ(back.seconds, resp.seconds);
    // The application-level canary still verifies after the trip.
    EXPECT_EQ(responseCanary(back), back.canary);
}

TEST(Wire, FailedResponseCarriesItsMessage)
{
    WorkerResponse resp;
    resp.status = WorkerStatus::Failed;
    resp.error = "injected fault: process() threw in worker 'w'";
    resp.ids = {1, 2};
    const WorkerResponse back = decodeResponse(encodeResponse(resp), -1);
    EXPECT_EQ(back.status, WorkerStatus::Failed);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.ids, resp.ids);
}

TEST(Wire, OversizedErrorStringIsTruncatedAtTheCap)
{
    WorkerResponse resp;
    resp.status = WorkerStatus::Failed;
    resp.error.assign(kMaxErrorBytes + 100, 'x');
    const WorkerResponse back = decodeResponse(encodeResponse(resp), -1);
    EXPECT_EQ(back.error.size(), size_t{kMaxErrorBytes});
}

TEST(Wire, RequestDecodeFailsClosedOnTruncationAtEveryByte)
{
    const std::vector<u8> body = encodeRequest(sampleRequest());
    for (size_t len = 0; len < body.size(); ++len) {
        const std::span<const u8> cut(body.data(), len);
        EXPECT_THROW(decodeRequest(cut, -1), TransportError)
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, RequestDecodeRejectsCorruptCounts)
{
    const std::vector<u8> good = encodeRequest(sampleRequest());

    // A query count the frame cannot possibly hold: refused before
    // any allocation.
    std::vector<u8> huge = good;
    std::memset(huge.data(), 0xff, 4); // WireRequestHead::n_queries
    EXPECT_THROW(decodeRequest(huge, -1), TransportError);

    // The total_bases cross-check catches a flipped count.
    std::vector<u8> mismatch = good;
    mismatch[16] ^= 1; // WireRequestHead::total_bases
    EXPECT_THROW(decodeRequest(mismatch, -1), TransportError);

    // Trailing garbage is an error, not silently ignored.
    std::vector<u8> trailing = good;
    trailing.push_back(0);
    EXPECT_THROW(decodeRequest(trailing, -1), TransportError);
}

TEST(Wire, ResponseDecodeFailsClosedOnTruncationAtEveryByte)
{
    const std::vector<u8> body = encodeResponse(sampleResponse());
    for (size_t len = 0; len < body.size(); ++len) {
        const std::span<const u8> cut(body.data(), len);
        EXPECT_THROW(decodeResponse(cut, -1), TransportError)
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(Wire, ResponseDecodeRejectsCorruptLengthsAndStatus)
{
    // Fixture with a known layout: head (64) | err_len u32 (68) |
    // 1 id (72) | n_rows u32 (76) | row-0 n_hits u64 (84) | 2 hits.
    WorkerResponse resp;
    resp.ids = {3};
    resp.hits = {{10, 20}};
    resp.canary = responseCanary(resp);
    const std::vector<u8> good = encodeResponse(resp);
    ASSERT_EQ(good.size(), 100u);

    // An out-of-range status byte.
    std::vector<u8> status = good;
    status[0] = 0x7f;
    EXPECT_THROW(decodeResponse(status, -1), TransportError);

    // An error length past the cap must never over-read.
    std::vector<u8> err = good;
    std::memset(err.data() + 64, 0xff, 4);
    EXPECT_THROW(decodeResponse(err, -1), TransportError);

    // An id count the frame cannot hold.
    std::vector<u8> ids = good;
    std::memset(ids.data() + 4, 0xff, 4); // WireResponseHead::n_ids
    EXPECT_THROW(decodeResponse(ids, -1), TransportError);

    // A row count the frame cannot hold.
    std::vector<u8> rows = good;
    std::memset(rows.data() + 72, 0xff, 4);
    EXPECT_THROW(decodeResponse(rows, -1), TransportError);

    // A per-row hit count that overruns the frame.
    std::vector<u8> hits = good;
    std::memset(hits.data() + 76, 0xff, 8);
    EXPECT_THROW(decodeResponse(hits, -1), TransportError);
}

/** A connected socket pair whose fds close on destruction. */
struct Channel
{
    int a = -1;
    int b = -1;

    Channel()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }

    ~Channel()
    {
        closeA();
        if (b >= 0)
            ::close(b);
    }

    void closeA()
    {
        if (a >= 0)
            ::close(a);
        a = -1;
    }

    int fds[2] = {-1, -1};
};

TEST(Wire, FrameRoundTripOverSocketpair)
{
    Channel ch;
    const std::vector<u8> body = encodeResponse(sampleResponse());
    writeFrame(ch.a, kFrameResponse, 42, body);
    writeFrame(ch.a, kFrameHeartbeat, 42, {});

    WireFrame frame;
    ASSERT_TRUE(readFrame(ch.b, frame));
    EXPECT_EQ(frame.header.type, kFrameResponse);
    EXPECT_EQ(frame.header.seq, 42u);
    EXPECT_EQ(frame.body, body);

    ASSERT_TRUE(readFrame(ch.b, frame));
    EXPECT_EQ(frame.header.type, kFrameHeartbeat);
    EXPECT_TRUE(frame.body.empty());

    // A close between frames is a clean EOF, not an error.
    ch.closeA();
    EXPECT_FALSE(readFrame(ch.b, frame));
}

/** Write a hand-crafted header (+ optional body) and expect readFrame
 *  to refuse it. */
void
expectRefused(const FrameHeader &h, std::span<const u8> body)
{
    Channel ch;
    ASSERT_EQ(::write(ch.a, &h, sizeof h),
              static_cast<ssize_t>(sizeof h));
    if (!body.empty()) {
        ASSERT_EQ(::write(ch.a, body.data(), body.size()),
                  static_cast<ssize_t>(body.size()));
    }
    ch.closeA();
    WireFrame frame;
    EXPECT_THROW(readFrame(ch.b, frame), TransportError);
}

TEST(Wire, FrameRejectsBadMagicVersionSkewTypeAndCanary)
{
    const std::vector<u8> body = {1, 2, 3, 4};

    FrameHeader bad_magic;
    bad_magic.magic[0] = 'X';
    bad_magic.type = kFrameRequest;
    expectRefused(bad_magic, {});

    // Version skew: a router and a worker built from different format
    // generations must refuse each other outright.
    FrameHeader skew;
    skew.type = kFrameRequest;
    skew.version = kFormatVersion + 1;
    expectRefused(skew, {});

    FrameHeader bad_type;
    bad_type.type = 0;
    expectRefused(bad_type, {});
    bad_type.type = kFrameHeartbeat + 1;
    expectRefused(bad_type, {});

    // A corrupt body length fails closed at the cap — no allocation,
    // no read of a 2^60-byte "body".
    FrameHeader oversized;
    oversized.type = kFrameRequest;
    oversized.body_bytes = kMaxFrameBytes + 1;
    expectRefused(oversized, {});

    // A flipped canary bit is a detected transport error.
    FrameHeader flipped;
    flipped.type = kFrameRequest;
    flipped.body_bytes = body.size();
    flipped.canary = fnv1a(std::span<const u8>(body)) ^ 1;
    expectRefused(flipped, body);
}

TEST(Wire, TruncatedFrameBodyThrowsOnPeerClose)
{
    Channel ch;
    const std::vector<u8> part = {9, 9, 9};
    FrameHeader h;
    h.type = kFrameRequest;
    h.body_bytes = 100; // claims more than will ever arrive
    h.canary = 0;
    ASSERT_EQ(::write(ch.a, &h, sizeof h),
              static_cast<ssize_t>(sizeof h));
    ASSERT_EQ(::write(ch.a, part.data(), part.size()),
              static_cast<ssize_t>(part.size()));
    ch.closeA();
    WireFrame frame;
    EXPECT_THROW(readFrame(ch.b, frame), TransportError);
}

} // namespace
} // namespace exma
