// SocketTransport against real exma-worker child processes: a scan
// shard served over the wire must answer bit-identically to the
// in-process ShardWorker over the same shard state, and the PR-8
// fault kinds — now real signals and broken channels — must surface
// through the exact same typed-Response contract the failover tier
// already speaks.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "io/table_io.hh"
#include "transport/shard_worker.hh"
#include "transport/socket_transport.hh"

namespace exma {
namespace {

namespace fs = std::filesystem;

/** A persisted scan shard (text + segment map) in an owned temp dir. */
struct ScanFixture
{
    std::vector<Base> text;
    std::vector<TextSegment> segments;
    fs::path dir;
    std::string stem;

    ScanFixture()
    {
        u64 seed = 7;
        text.resize(512);
        for (auto &b : text) {
            seed = seed * 6364136223846793005ULL +
                   1442695040888963407ULL;
            b = static_cast<Base>(seed >> 62);
        }
        segments = {{100, 0, 300}, {500, 300, 212}};

        static int instance = 0;
        dir = fs::temp_directory_path() /
              ("exma-socket-test-" + std::to_string(::getpid()) + "-" +
               std::to_string(instance++));
        fs::create_directories(dir);
        stem = (dir / "shard0000").string();
        saveScanFiles(text, segments, stem);
    }

    ~ScanFixture()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    /** Queries cut from the text (guaranteed hits) plus one absent. */
    std::vector<std::vector<Base>> queries() const
    {
        std::vector<std::vector<Base>> qs;
        qs.emplace_back(text.begin() + 10, text.begin() + 18);
        qs.emplace_back(text.begin() + 300, text.begin() + 309);
        // 16 of the same base in a row is absent from LCG output at
        // this length with this seed; even if it were not, both
        // transports scan the same text, so the differential holds.
        qs.emplace_back(std::vector<Base>(16, 2));
        return qs;
    }
};

WorkerRequest
requestFor(const std::vector<std::vector<Base>> &queries)
{
    WorkerRequest req;
    std::vector<u32> ids;
    for (u32 i = 0; i < queries.size(); ++i)
        ids.push_back(i);
    req.batch = QueryBatchView::borrow(queries, std::move(ids));
    return req;
}

WorkerResponse
resolved(std::future<WorkerResponse> &fut)
{
    const auto status = fut.wait_for(std::chrono::seconds(120));
    EXPECT_EQ(status, std::future_status::ready)
        << "transport future never resolved";
    return fut.get();
}

std::shared_ptr<SocketTransport>
spawnScanWorker(const std::string &name, const ScanFixture &fx)
{
    SocketTransportConfig cfg;
    cfg.binary = discoverWorkerBinary("");
    cfg.stem = fx.stem;
    cfg.state = "scan";
    return std::make_shared<SocketTransport>(name, cfg, false, false);
}

TEST(SocketTransport, ScanShardMatchesInProcessWorkerBitForBit)
{
    const ScanFixture fx;
    const auto queries = fx.queries();

    ShardWorker oracle("oracle", nullptr, &fx.text, &fx.segments);
    auto oracle_fut = oracle.submit(requestFor(queries));
    const WorkerResponse expect = resolved(oracle_fut);
    ASSERT_EQ(expect.status, WorkerStatus::Ok);
    ASSERT_FALSE(expect.hits[0].empty()) << "fixture query must hit";

    auto sock = spawnScanWorker("s", fx);
    auto fut = sock->submit(requestFor(queries));
    const WorkerResponse got = resolved(fut);

    EXPECT_EQ(got.status, WorkerStatus::Ok);
    EXPECT_EQ(got.ids, expect.ids);
    EXPECT_EQ(got.hits, expect.hits);
    EXPECT_EQ(got.stats, expect.stats);
    // The child stamped the canary before encoding; it must verify by
    // recompute on the parent side after the wire trip.
    EXPECT_EQ(responseCanary(got), got.canary);
    EXPECT_EQ(sock->processed(), 1u);
    EXPECT_EQ(sock->inboxDepth(), 0u);
    EXPECT_FALSE(sock->isDead());
}

TEST(SocketTransport, EmptyShardServesHitlessRows)
{
    const ScanFixture fx;
    const auto queries = fx.queries();

    SocketTransportConfig cfg;
    cfg.binary = discoverWorkerBinary("");
    cfg.state = "empty"; // no stem: nothing to load
    SocketTransport sock("e", cfg, false, true);
    EXPECT_TRUE(sock.isEmpty());
    EXPECT_FALSE(sock.hasTable());

    auto fut = sock.submit(requestFor(queries));
    const WorkerResponse r = resolved(fut);
    ASSERT_EQ(r.status, WorkerStatus::Ok);
    EXPECT_EQ(r.ids.size(), queries.size());
    ASSERT_EQ(r.hits.size(), queries.size());
    for (const auto &row : r.hits)
        EXPECT_TRUE(row.empty());
    EXPECT_EQ(responseCanary(r), r.canary);
}

TEST(SocketTransport, KillFaultIsARealSignalAndResolvesWorkerDown)
{
    const ScanFixture fx;
    const auto queries = fx.queries(); // outlives the borrowed views
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("kill@s:nth=1")));
    auto sock = spawnScanWorker("s", fx);

    auto fut = sock->submit(requestFor(queries));
    const WorkerResponse r = resolved(fut);
    EXPECT_EQ(r.status, WorkerStatus::WorkerDown);
    EXPECT_NE(r.error.find("down"), std::string::npos);
    EXPECT_TRUE(sock->isDead());

    // A dead transport refuses new submissions immediately.
    auto refused = sock->submit(requestFor(queries));
    EXPECT_EQ(resolved(refused).status, WorkerStatus::WorkerDown);
    EXPECT_EQ(sock->processed(), 0u);
    EXPECT_EQ(sock->inboxDepth(), 0u);
}

TEST(SocketTransport, ThrowFaultMatchesTheInProcessContract)
{
    const ScanFixture fx;
    const auto queries = fx.queries(); // outlives the borrowed views
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("throw@s:nth=1")));
    auto sock = spawnScanWorker("s", fx);

    // Same message, same semantics as the in-process worker: the
    // fault models compute throwing, not the channel — the child
    // stays alive and nothing respawns.
    auto failing = sock->submit(requestFor(queries));
    const WorkerResponse failed = resolved(failing);
    EXPECT_EQ(failed.status, WorkerStatus::Failed);
    EXPECT_EQ(failed.error,
              "injected fault: process() threw in worker 's'");
    EXPECT_EQ(failed.ids.size(), queries.size());

    auto fine = sock->submit(requestFor(queries));
    const WorkerResponse ok = resolved(fine);
    EXPECT_EQ(ok.status, WorkerStatus::Ok);
    EXPECT_FALSE(ok.hits[0].empty());
    EXPECT_EQ(sock->processed(), 2u)
        << "Failed requests still count as consumed";
    EXPECT_FALSE(sock->isDead());
}

TEST(SocketTransport, CorruptResponseIsCaughtByCanaryRecompute)
{
    const ScanFixture fx;
    const auto queries = fx.queries(); // outlives the borrowed views
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("corrupt@s:nth=1")));
    auto sock = spawnScanWorker("s", fx);

    auto fut = sock->submit(requestFor(queries));
    const WorkerResponse r = resolved(fut);
    EXPECT_EQ(r.status, WorkerStatus::Ok)
        << "corruption is silent at the transport layer";
    EXPECT_NE(responseCanary(r), r.canary)
        << "recomputing the canary must expose the corruption";
}

TEST(SocketTransport, MissingBinaryResolvesWorkerDownGracefully)
{
    const ScanFixture fx;
    const auto queries = fx.queries(); // outlives the borrowed views
    SocketTransportConfig cfg;
    cfg.binary = "/nonexistent/exma-worker";
    cfg.stem = fx.stem;
    cfg.state = "scan";
    SocketTransport sock("b", cfg, false, false);

    // A replica that cannot come up is the same signal as one that
    // crashed at startup: WorkerDown, absorbed by the failover tier.
    auto fut = sock.submit(requestFor(queries));
    EXPECT_EQ(resolved(fut).status, WorkerStatus::WorkerDown);
    EXPECT_TRUE(sock.isDead());
}

TEST(SocketTransport, DestructionWithPendingInboxYieldsWorkerDown)
{
    const ScanFixture fx;
    const auto queries = fx.queries(); // outlives the borrowed views
    ScopedFaultInjector scope(std::make_shared<FaultInjector>(
        FaultInjector::parseSpec("delay@s:ms=60000")));
    std::vector<std::future<WorkerResponse>> futs;
    {
        auto sock = spawnScanWorker("s", fx);
        for (int i = 0; i < 3; ++i)
            futs.push_back(sock->submit(requestFor(queries)));
        // Destructor runs with one request mid-sleep and two queued.
    }
    for (auto &fut : futs) {
        const WorkerResponse r = resolved(fut);
        EXPECT_EQ(r.status, WorkerStatus::WorkerDown);
        EXPECT_EQ(r.ids.size(), queries.size());
        EXPECT_TRUE(r.hits.empty()) << "down responses carry no hits";
    }
}

} // namespace
} // namespace exma
