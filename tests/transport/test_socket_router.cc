// The routed serving tier over real worker processes: a ShardRouter
// with the socket transport must answer bit-identically — hits AND
// stats — to the in-process router and the monolithic table, across
// shard counts, shard states (table / scan / empty), and the
// loadIndex path where workers mmap the same persisted files the
// parent serves from.

#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "genome/reference.hh"
#include "persist/index_io.hh"
#include "route/shard_router.hh"

namespace exma {
namespace {

namespace fs = std::filesystem;

constexpr u64 kMaxQueryLen = 24;

ExmaTable::Config
tableCfg(int k)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = OccIndexMode::Exact;
    cfg.mtl.epochs = 10;
    cfg.mtl.samples_per_class = 512;
    return cfg;
}

std::vector<u64>
singleTableHits(const ExmaTable &table, const std::vector<Base> &query)
{
    auto hits = table.locateAll(table.search(query));
    std::sort(hits.begin(), hits.end());
    return hits;
}

/** Reference substrings (hits), random probes (mostly misses), and
 *  sub-prefix queries that exercise the broadcast path. */
std::vector<std::vector<Base>>
queryMix(const std::vector<Base> &ref, int prefix_len, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i < 40; ++i) {
        u64 len;
        if (i % 4 == 3)
            len = 1 + rng.below(std::max<u64>(
                          1, static_cast<u64>(prefix_len) - 1));
        else
            len = static_cast<u64>(prefix_len) +
                  rng.below(kMaxQueryLen - static_cast<u64>(prefix_len));
        if (i % 5 == 4) {
            std::vector<Base> q(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
            qs.push_back(std::move(q));
        } else {
            const u64 pos = rng.below(ref.size() - len + 1);
            qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        }
    }
    return qs;
}

TEST(SocketRouter, RoutedHitsAndStatsMatchInProcessAndMonolith)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const ExmaTable single(ds.ref, cfg);

    for (unsigned n_shards : {2u, 4u, 8u}) {
        const auto plan =
            ShardPlan::kmerPrefix(ds.ref, n_shards, kMaxQueryLen);

        RouterConfig inproc_cfg;
        inproc_cfg.table = cfg;
        const ShardRouter inproc(ds.ref, plan, inproc_cfg);
        ASSERT_EQ(inproc.transportKind(), TransportKind::InProcess);

        RouterConfig socket_cfg;
        socket_cfg.table = cfg;
        socket_cfg.transport.kind = TransportKind::Socket;
        const ShardRouter socket(ds.ref, plan, socket_cfg);
        ASSERT_EQ(socket.transportKind(), TransportKind::Socket);

        const auto qs = queryMix(ds.ref, plan.prefixLen(), 7 + n_shards);
        BatchConfig bc;
        bc.grain = 3;
        const RoutedResult expect = inproc.search(qs, bc);
        const RoutedResult got = socket.search(qs, bc);

        ASSERT_EQ(got.hits.size(), qs.size());
        EXPECT_EQ(got.degraded_queries, 0u)
            << "shards=" << n_shards << ": clean run must not degrade";
        EXPECT_EQ(got.stats, expect.stats) << "shards=" << n_shards;
        EXPECT_EQ(got.per_shard, expect.per_shard)
            << "shards=" << n_shards;
        EXPECT_EQ(got.routed_queries, expect.routed_queries);
        EXPECT_EQ(got.broadcast_queries, expect.broadcast_queries);
        for (size_t i = 0; i < qs.size(); ++i) {
            EXPECT_EQ(got.hits[i], expect.hits[i])
                << "shards=" << n_shards << " query " << i
                << " (vs in-process router)";
            EXPECT_EQ(got.hits[i], singleTableHits(single, qs[i]))
                << "shards=" << n_shards << " query " << i
                << " (vs monolith)";
        }
    }
}

TEST(SocketRouter, ScanAndEmptyShardsServeOverTheWire)
{
    // Many shards over a tiny two-letter reference: every shard falls
    // under min_table_bases (scan workers), and the skewed alphabet
    // leaves 4-mer codes containing C/G unowned, so the balanced cut
    // jumps past several targets at once and strands empty ranges
    // (empty workers). Both states must serve through exma-worker.
    Rng rng(99);
    std::vector<Base> ref(400);
    for (auto &b : ref)
        b = static_cast<Base>(rng.below(2));
    const u64 max_q = 4;
    const auto plan = ShardPlan::kmerPrefix(ref, 32, max_q, 4);
    RouterConfig rcfg;
    rcfg.table = tableCfg(2);
    rcfg.transport.kind = TransportKind::Socket;
    const ShardRouter router(ref, plan, rcfg);
    const ExmaTable single(ref, tableCfg(2));

    size_t scan_workers = 0, empty_workers = 0;
    for (size_t s = 0; s < router.shardCount(); ++s) {
        scan_workers += !router.replicaSet(s).hasTable() &&
                        !router.replicaSet(s).isEmpty();
        empty_workers += router.replicaSet(s).isEmpty();
    }
    EXPECT_GT(scan_workers, 0u)
        << "fixture no longer produces sub-threshold shards";
    EXPECT_GT(empty_workers, 0u);

    std::vector<std::vector<Base>> qs;
    for (u64 i = 0; i + max_q <= ref.size(); i += 3)
        qs.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(i),
                        ref.begin() +
                            static_cast<std::ptrdiff_t>(i + max_q));
    for (u64 len = 1; len <= 3; ++len)
        qs.emplace_back(ref.begin(),
                        ref.begin() + static_cast<std::ptrdiff_t>(len));
    const RoutedResult r = router.search(qs);
    EXPECT_EQ(r.degraded_queries, 0u);
    for (size_t i = 0; i < qs.size(); ++i)
        EXPECT_EQ(r.hits[i], singleTableHits(single, qs[i]))
            << "query " << i;
}

/** Scoped EXMA_TRANSPORT override (the env knob Auto resolves from). */
struct TransportEnvGuard
{
    explicit TransportEnvGuard(const char *value)
    {
        ::setenv("EXMA_TRANSPORT", value, 1);
    }
    ~TransportEnvGuard() { ::unsetenv("EXMA_TRANSPORT"); }
};

TEST(SocketRouter, LoadedIndexServesWorkersFromItsOwnDirectory)
{
    const Dataset ds = makeDataset("human", 0.001);
    const auto cfg = tableCfg(ds.exma_k);
    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, kMaxQueryLen);
    RouterConfig rcfg;
    rcfg.table = cfg;
    const ShardRouter built(ds.ref, plan, rcfg);

    const fs::path dir =
        fs::temp_directory_path() /
        ("exma-socket-router-" + std::to_string(::getpid()));
    saveIndex(built, dir.string());

    const auto qs = queryMix(ds.ref, plan.prefixLen(), 21);
    const RoutedResult expect = built.search(qs);

    {
        // A routed index loaded from a directory remembers it in its
        // RouterConfig: under EXMA_TRANSPORT=socket the workers
        // mmap-load the *same* persisted files, with no re-save.
        TransportEnvGuard env("socket");
        const LoadedIndex loaded = loadIndex(dir.string());
        ASSERT_EQ(loaded.kind, IndexKind::Routed);
        ASSERT_NE(loaded.router, nullptr);
        EXPECT_EQ(loaded.router->transportKind(), TransportKind::Socket);

        const RoutedResult got = loaded.router->search(qs);
        EXPECT_EQ(got.degraded_queries, 0u);
        EXPECT_EQ(got.stats, expect.stats);
        for (size_t i = 0; i < qs.size(); ++i)
            EXPECT_EQ(got.hits[i], expect.hits[i]) << "query " << i;
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
}

} // namespace
} // namespace exma
