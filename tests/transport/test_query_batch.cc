// QueryBatchView: the owned-or-borrowed query payload of a worker
// request. Both modes must present the same shape — query(j) is the
// j-th served query, ids()[j] its router-side id — and the
// storage()/storageIds() pair must feed BatchSearcher's routed
// overload identically in either mode.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "transport/query_batch.hh"

namespace exma {
namespace {

std::vector<std::vector<Base>>
sampleBatch()
{
    return {{0, 1, 2, 3}, {1, 1}, {2}, {3, 0}};
}

TEST(QueryBatch, DefaultConstructedIsEmpty)
{
    const QueryBatchView v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.ids().empty());
    EXPECT_TRUE(v.storage().empty());
    EXPECT_TRUE(v.storageIds().empty());
    EXPECT_EQ(v.totalBases(), 0u);
}

TEST(QueryBatch, BorrowServesSubsetThroughIds)
{
    const auto batch = sampleBatch();
    const QueryBatchView v = QueryBatchView::borrow(batch, {3, 1});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_FALSE(v.empty());
    // query(j) maps through ids: the worker serves batch[3], batch[1].
    EXPECT_EQ(v.query(0), batch[3]);
    EXPECT_EQ(v.query(1), batch[1]);
    EXPECT_EQ(v.ids(), (std::vector<u32>{3, 1}));
    // Zero-copy: storage IS the router's batch.
    EXPECT_EQ(&v.storage(), &batch);
    EXPECT_EQ(v.storageIds(), v.ids());
    EXPECT_EQ(v.totalBases(), batch[3].size() + batch[1].size());
}

TEST(QueryBatch, OwnHoldsQueriesAndEchoesIds)
{
    std::vector<std::vector<Base>> queries = {{2, 2, 2}, {0}};
    const QueryBatchView v =
        QueryBatchView::own(std::move(queries), {7, 42});
    ASSERT_EQ(v.size(), 2u);
    // Ids are an echo for the router-side scatter; they do NOT index
    // the owned storage.
    EXPECT_EQ(v.query(0), (std::vector<Base>{2, 2, 2}));
    EXPECT_EQ(v.query(1), (std::vector<Base>{0}));
    EXPECT_EQ(v.ids(), (std::vector<u32>{7, 42}));
    // The storage pair indexes the owned queries positionally.
    EXPECT_EQ(v.storage().size(), 2u);
    EXPECT_EQ(v.storageIds(), (std::vector<u32>{0, 1}));
    EXPECT_EQ(v.totalBases(), 4u);
}

TEST(QueryBatch, BorrowAndOwnPresentIdenticalViews)
{
    const auto batch = sampleBatch();
    const std::vector<u32> ids = {2, 0, 3};
    const QueryBatchView b = QueryBatchView::borrow(batch, ids);
    std::vector<std::vector<Base>> copies;
    for (const u32 id : ids)
        copies.push_back(batch[id]);
    const QueryBatchView o = QueryBatchView::own(std::move(copies), ids);

    ASSERT_EQ(b.size(), o.size());
    EXPECT_EQ(b.ids(), o.ids());
    EXPECT_EQ(b.totalBases(), o.totalBases());
    for (size_t j = 0; j < b.size(); ++j) {
        EXPECT_EQ(b.query(j), o.query(j)) << "query " << j;
        EXPECT_EQ(b.storage()[b.storageIds()[j]],
                  o.storage()[o.storageIds()[j]])
            << "storage view " << j;
    }
}

TEST(QueryBatch, ViewsSurviveCopyAndMove)
{
    const auto batch = sampleBatch();
    QueryBatchView v = QueryBatchView::borrow(batch, {1, 2});
    const QueryBatchView copy = v;
    const QueryBatchView moved = std::move(v);
    EXPECT_EQ(copy.query(0), batch[1]);
    EXPECT_EQ(moved.query(1), batch[2]);

    QueryBatchView o = QueryBatchView::own({{3, 3}}, {9});
    const QueryBatchView omoved = std::move(o);
    EXPECT_EQ(omoved.query(0), (std::vector<Base>{3, 3}));
    EXPECT_EQ(omoved.ids(), (std::vector<u32>{9}));
}

} // namespace
} // namespace exma
