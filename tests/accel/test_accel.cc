#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/cache.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

TEST(Cache, HitsAfterInsert)
{
    SetAssocCache cache(1024, 2);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(32)); // same 64B line
    EXPECT_FALSE(cache.access(4096));
}

TEST(Cache, LruEviction)
{
    // 2-way, 2 sets: lines 0 and 2 map to set 0 (line-granular sets).
    SetAssocCache cache(256, 2);
    cache.access(0);       // set 0, way 0
    cache.access(2 * 64);  // set 0, way 1
    cache.access(0);       // refresh line 0
    cache.access(4 * 64);  // evicts line 2*64 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(2 * 64));
    EXPECT_TRUE(cache.probe(4 * 64));
}

TEST(Cache, HitRateTracked)
{
    SetAssocCache cache(1 << 20, 8);
    for (int rep = 0; rep < 4; ++rep)
        for (u64 a = 0; a < 64 * 100; a += 64)
            cache.access(a);
    EXPECT_EQ(cache.misses(), 100u);
    EXPECT_EQ(cache.hits(), 300u);
    EXPECT_NEAR(cache.hitRate(), 0.75, 1e-9);
}

TEST(Cache, CapacityRoundedToPowerOfTwoSets)
{
    SetAssocCache cache(3000, 2);
    EXPECT_LE(cache.capacityBytes(), 3000u);
    EXPECT_GE(cache.capacityBytes(), 1500u);
}

class AccelFixture : public ::testing::Test
{
  protected:
    static const ExmaTable &
    table()
    {
        static const ExmaTable tab = [] {
            ReferenceSpec spec;
            spec.length = 1 << 16;
            spec.repeat_fraction = 0.5;
            spec.seed = 71;
            ExmaTable::Config cfg;
            // k = 7: the 64 KB base region overwhelms the shrunken test
            // caches, so scheduling locality actually matters.
            cfg.k = 7;
            cfg.mode = OccIndexMode::Mtl;
            cfg.mtl.epochs = 30;
            cfg.mtl.samples_per_class = 1024;
            cfg.mtl.leaf_size = 128;
            return ExmaTable(generateReference(spec), cfg);
        }();
        return tab;
    }

    static std::vector<std::vector<Base>>
    queries(u64 n)
    {
        ReferenceSpec spec;
        spec.length = 1 << 16;
        spec.repeat_fraction = 0.5;
        spec.seed = 71;
        auto ref = generateReference(spec);
        return samplePatterns(ref, n, 50, 5);
    }
};

TEST_F(AccelFixture, ProcessesAllQueries)
{
    AcceleratorConfig cfg;
    DramConfig dram = DramConfig::ddr4_2400();
    dram.page_policy = PagePolicy::Dynamic;
    ExmaAccelerator accel(table(), cfg, dram);
    auto result = accel.run(queries(100));
    EXPECT_EQ(result.queries, 100u);
    EXPECT_EQ(result.bases, 100u * 50u);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_GT(result.elapsed, 0u);
}

TEST_F(AccelFixture, ThroughputIsPositiveAndFinite)
{
    AcceleratorConfig cfg;
    DramConfig dram = DramConfig::ddr4_2400();
    ExmaAccelerator accel(table(), cfg, dram);
    auto r = accel.run(queries(50));
    EXPECT_GT(r.mbasesPerSecond(), 0.0);
    EXPECT_LT(r.mbasesPerSecond(), 1e6);
    EXPECT_GT(r.accelPowerW(), 0.0);
}

TEST_F(AccelFixture, TwoStageSchedulingImprovesCacheHitRates)
{
    DramConfig dram = DramConfig::ddr4_2400();
    AcceleratorConfig fifo_cfg;
    fifo_cfg.two_stage_scheduling = false;
    AcceleratorConfig ts_cfg;
    ts_cfg.two_stage_scheduling = true;
    // Small caches make the scheduling effect visible at test scale.
    fifo_cfg.base_cache_bytes = ts_cfg.base_cache_bytes = 4096;
    fifo_cfg.index_cache_bytes = ts_cfg.index_cache_bytes = 2048;

    ExmaAccelerator fifo(table(), fifo_cfg, dram);
    ExmaAccelerator ts(table(), ts_cfg, dram);
    auto q = queries(300);
    auto rf = fifo.run(q);
    auto rt = ts.run(q);
    EXPECT_GT(rt.base_hit_rate + rt.index_hit_rate,
              rf.base_hit_rate + rf.index_hit_rate)
        << "2-stage should raise combined cache hit rates";
}

TEST_F(AccelFixture, DynamicPagePolicyRaisesRowHits)
{
    AcceleratorConfig cfg;
    DramConfig close_cfg = DramConfig::ddr4_2400();
    close_cfg.page_policy = PagePolicy::Close;
    DramConfig dyn_cfg = DramConfig::ddr4_2400();
    dyn_cfg.page_policy = PagePolicy::Dynamic;

    ExmaAccelerator closed(table(), cfg, close_cfg);
    ExmaAccelerator dynamic(table(), cfg, dyn_cfg);
    auto q = queries(200);
    auto rc = closed.run(q);
    auto rd = dynamic.run(q);
    EXPECT_GT(rd.dram_row_hit_rate, rc.dram_row_hit_rate);
}

TEST_F(AccelFixture, FullExmaFasterThanNoOptimisations)
{
    auto q = queries(200);
    AcceleratorConfig base_cfg;
    base_cfg.two_stage_scheduling = false;
    DramConfig close_cfg = DramConfig::ddr4_2400();
    close_cfg.page_policy = PagePolicy::Close;
    ExmaAccelerator plain(table(), base_cfg, close_cfg);

    AcceleratorConfig full_cfg;
    DramConfig dyn_cfg = DramConfig::ddr4_2400();
    dyn_cfg.page_policy = PagePolicy::Dynamic;
    ExmaAccelerator full(table(), full_cfg, dyn_cfg);

    auto rp = plain.run(q);
    auto rf = full.run(q);
    EXPECT_GT(rf.mbasesPerSecond(), rp.mbasesPerSecond());
}

TEST_F(AccelFixture, EnergyAccountingIsConsistent)
{
    AcceleratorConfig cfg;
    DramConfig dram = DramConfig::ddr4_2400();
    ExmaAccelerator accel(table(), cfg, dram);
    auto r = accel.run(queries(50));
    EXPECT_GT(r.accel_dynamic_j, 0.0);
    EXPECT_GT(r.accel_leakage_j, 0.0);
    EXPECT_GT(r.dram_energy.totalJoules(), 0.0);
    // Leakage = 223.8 mW x elapsed.
    EXPECT_NEAR(r.accel_leakage_j,
                0.2238 * static_cast<double>(r.elapsed) * 1e-12, 1e-12);
}

TEST_F(AccelFixture, DeterministicAcrossRuns)
{
    AcceleratorConfig cfg;
    DramConfig dram = DramConfig::ddr4_2400();
    auto q = queries(60);
    ExmaAccelerator a(table(), cfg, dram);
    ExmaAccelerator b(table(), cfg, dram);
    EXPECT_EQ(a.run(q).elapsed, b.run(q).elapsed);
}

} // namespace
} // namespace exma
