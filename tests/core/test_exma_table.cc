#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/exma_table.hh"
#include "genome/reference.hh"

namespace exma {
namespace {

const std::vector<Base> &
testRef()
{
    static const std::vector<Base> ref = [] {
        ReferenceSpec spec;
        spec.length = 1 << 16;
        spec.repeat_fraction = 0.5;
        spec.seed = 55;
        return generateReference(spec);
    }();
    return ref;
}

ExmaTable::Config
cfgFor(OccIndexMode mode, int k = 4)
{
    ExmaTable::Config cfg;
    cfg.k = k;
    cfg.mode = mode;
    cfg.mtl.epochs = 15;
    cfg.mtl.samples_per_class = 1024;
    cfg.naive.epochs = 8;
    return cfg;
}

TEST(ExmaTable, PaperFig8Semantics)
{
    // Fig. 8 invariants: base pointers are prefix sums; f_i counts; the
    // MAX sentinel is |G|+1 (== rows()).
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact));
    EXPECT_EQ(tab.maxSentinel(), tab.rows());
    u64 acc = 0;
    for (Kmer m = 0; m < kmerSpace(tab.k()); m += 11) {
        EXPECT_EQ(tab.baseOf(m), acc == 0 ? tab.baseOf(m) : tab.baseOf(m));
        acc = tab.baseOf(m) + tab.frequency(m);
    }
}

TEST(ExmaTable, OccExampleLikePaper)
{
    // Fig. 8 walk-through: Occ(kmer, pos) = increments below pos.
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact));
    Rng rng(1);
    for (int t = 0; t < 100; ++t) {
        Kmer m = rng.below(kmerSpace(tab.k()));
        u64 pos = rng.below(tab.rows() + 1);
        auto inc = tab.occTable().increments(m);
        u64 expect = 0;
        for (u32 r : inc)
            expect += (r < pos);
        EXPECT_EQ(tab.occ(m, pos).rank, expect);
    }
}

class ExmaModeTest : public ::testing::TestWithParam<OccIndexMode>
{
};

TEST_P(ExmaModeTest, SearchEqualsFmIndexAcrossModes)
{
    ExmaTable tab(testRef(), cfgFor(GetParam()));
    const FmIndex &fm = tab.fmIndex();
    Rng rng(2);
    const auto &ref = testRef();
    for (int t = 0; t < 80; ++t) {
        const u64 len = 1 + rng.below(40);
        std::vector<Base> q;
        if (t % 2 == 0) {
            const u64 pos = rng.below(ref.size() - len);
            q.assign(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                     ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
        } else {
            q.resize(len);
            for (auto &b : q)
                b = static_cast<Base>(rng.below(4));
        }
        const Interval expect = fm.search(q);
        const Interval got = tab.search(q);
        if (expect.empty())
            EXPECT_TRUE(got.empty()) << "t=" << t;
        else
            EXPECT_EQ(got, expect) << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ExmaModeTest,
                         ::testing::Values(OccIndexMode::Exact,
                                           OccIndexMode::NaiveLearned,
                                           OccIndexMode::Mtl));

TEST(ExmaTable, StatsCountIterations)
{
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact, 6));
    SearchStats stats;
    std::vector<Base> query(testRef().begin(), testRef().begin() + 20);
    tab.search(query, &stats);
    EXPECT_EQ(stats.kstep_iterations, 20u / 6u);
    EXPECT_EQ(stats.onestep_iterations, 20u % 6u);
}

TEST(ExmaTable, AccuracyNeverAffectsResults)
{
    // §IV.B: "the accuracy of a MTL-based index decides search
    // throughput ... but has no impact on the quality of final DNA
    // mapping". Intervals from all modes are identical even when the
    // model mispredicts.
    ExmaTable exact(testRef(), cfgFor(OccIndexMode::Exact));
    ExmaTable mtl(testRef(), cfgFor(OccIndexMode::Mtl));
    Rng rng(4);
    const auto &ref = testRef();
    for (int t = 0; t < 40; ++t) {
        const u64 len = 6 + rng.below(30);
        const u64 pos = rng.below(ref.size() - len);
        std::vector<Base> q(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                            ref.begin() +
                                static_cast<std::ptrdiff_t>(pos + len));
        EXPECT_EQ(exact.search(q), mtl.search(q));
    }
}

TEST(ExmaTable, SizeReportComponentsPositive)
{
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Mtl));
    auto r = tab.sizeReport();
    EXPECT_GT(r.increments_raw, 0u);
    EXPECT_GT(r.bases_raw, 0u);
    EXPECT_GT(r.bwt_bytes, 0u);
    EXPECT_GT(r.index_bytes, 0u);
    EXPECT_LT(r.increments_chain, r.increments_raw);
    EXPECT_LE(r.totalChain(), r.totalRaw());
}

TEST(ExmaTable, ChainCompressesIncrementsWell)
{
    // Fig. 23: CHAIN reaches ~25% on EXMA data. Increment lists of a
    // repetitive genome compress strongly; assert < 60% here (the exact
    // ratio depends on k-mer density at this scale).
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact));
    auto r = tab.sizeReport();
    EXPECT_LT(static_cast<double>(r.increments_chain) /
                  static_cast<double>(r.increments_raw),
              0.6);
}

TEST(ExmaTable, IndexParamAccounting)
{
    ExmaTable exact(testRef(), cfgFor(OccIndexMode::Exact));
    ExmaTable mtl(testRef(), cfgFor(OccIndexMode::Mtl));
    ExmaTable naive(testRef(), cfgFor(OccIndexMode::NaiveLearned));
    EXPECT_EQ(exact.indexParamCount(), 0u);
    EXPECT_GT(mtl.indexParamCount(), 0u);
    EXPECT_GT(naive.indexParamCount(), 0u);
}

TEST(ExmaTable, DifferentStepsAgree)
{
    for (int k : {4, 5, 8}) {
        ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact, k));
        const auto &ref = testRef();
        std::vector<Base> q(ref.begin() + 100, ref.begin() + 131);
        EXPECT_EQ(tab.search(q).count(), tab.fmIndex().search(q).count())
            << "k=" << k;
    }
}

TEST(ExmaTable, SegmentedBuildDropsJunctionArtifacts)
{
    // ref = AAAA CCCC TTTT GGGG; segments extract AAAA + GGGG, whose
    // concatenation "AAAAGGGG" contains "AG" — a string that never
    // occurs in the reference. The local search interval sees it; the
    // global locate must not.
    const std::vector<Base> ref = {0, 0, 0, 0, 1, 1, 1, 1,
                                   3, 3, 3, 3, 2, 2, 2, 2};
    const std::vector<TextSegment> segs = {{0, 0, 4}, {12, 4, 4}};
    const ExmaTable tab(ref, segs, cfgFor(OccIndexMode::Exact));
    ASSERT_TRUE(tab.segmented());
    ASSERT_EQ(tab.segments(), segs);

    const std::vector<Base> junction = {0, 2}; // "AG"
    const Interval iv = tab.search(junction);
    EXPECT_EQ(iv.count(), 1u) << "local junction match should exist";
    EXPECT_TRUE(tab.locateAllGlobal(iv, junction.size()).empty());

    // Genuine matches translate to global coordinates.
    const std::vector<Base> aaa = {0, 0, 0}; // "AAA" at 0, 1
    EXPECT_EQ(tab.locateAllGlobal(tab.search(aaa), aaa.size()),
              (std::vector<u64>{0, 1}));
    const std::vector<Base> gg = {2, 2}; // "GG" at 12, 13, 14
    EXPECT_EQ(tab.locateAllGlobal(tab.search(gg), gg.size()),
              (std::vector<u64>{12, 13, 14}));
    // The cap keeps the lowest global positions, applied after the
    // junction filter.
    EXPECT_EQ(tab.locateAllGlobal(tab.search(gg), gg.size(), 2),
              (std::vector<u64>{12, 13}));
}

TEST(ExmaTable, ContiguousTableLocateAllGlobalIsSortedLocate)
{
    ExmaTable tab(testRef(), cfgFor(OccIndexMode::Exact));
    EXPECT_FALSE(tab.segmented());
    const auto &ref = testRef();
    const std::vector<Base> q(ref.begin() + 500, ref.begin() + 512);
    const Interval iv = tab.search(q);
    auto expect = tab.locateAll(iv);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(tab.locateAllGlobal(iv, q.size()), expect);
}

} // namespace
} // namespace exma
