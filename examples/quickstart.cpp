/**
 * @file
 * Quickstart: build an EXMA table over a synthetic reference, run
 * exact-match searches through the MTL-indexed k-step engine, and
 * locate the hits — the end-to-end flow of the paper's Fig. 3/8.
 *
 *   ./examples/quickstart [genome_length]
 */

#include <cstdlib>
#include <iostream>

#include "core/exma_table.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    const u64 len = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                             : (1u << 20);

    std::cout << "1. generating a " << len << " bp synthetic genome...\n";
    ReferenceSpec spec;
    spec.length = len;
    spec.repeat_fraction = 0.45;
    auto ref = generateReference(spec);

    std::cout << "2. building the EXMA table (k-step FM-Index with "
                 "MTL-indexed increment lists)...\n";
    ExmaTable::Config cfg;
    cfg.k = 8;
    cfg.mode = OccIndexMode::Mtl;
    ExmaTable table(ref, cfg);
    auto sizes = table.sizeReport();
    std::cout << "   rows=" << table.rows() << " k=" << table.k()
              << " increments=" << sizes.increments_raw / 1024 << "KB"
              << " (CHAIN: " << sizes.increments_chain / 1024 << "KB)"
              << " index params=" << table.indexParamCount() << "\n";

    std::cout << "3. searching 5 sampled patterns...\n";
    auto queries = samplePatterns(ref, 5, 48, 42);
    for (const auto &q : queries) {
        SearchStats stats;
        Interval iv = table.search(q, &stats);
        std::cout << "   " << decodeSeq(q).substr(0, 24) << "... -> "
                  << iv.count() << " hit(s), "
                  << stats.kstep_iterations << " k-step + "
                  << stats.onestep_iterations << " 1-step iterations, "
                  << "model error sum=" << stats.total_error << "\n";
        auto positions = table.fmIndex().locateAll(iv, 3);
        for (u64 pos : positions)
            std::cout << "       at reference position " << pos << "\n";
    }

    std::cout << "4. verifying against the plain FM-Index... ";
    bool ok = true;
    for (const auto &q : queries)
        ok &= (table.search(q) == table.fmIndex().search(q));
    std::cout << (ok ? "OK" : "MISMATCH") << "\n";
    return ok ? 0 : 1;
}
