/**
 * @file
 * Reference-based compression example (the paper's "compress"
 * workload): factor a resequenced individual against a reference via
 * FM-Index longest-match parsing, verify the round trip, and show the
 * CHAIN/B∆I codec ratios on the EXMA table itself.
 *
 *   ./examples/genome_compression [genome_length] [snp_rate_per_kb]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "apps/compressor.hh"
#include "common/rng.hh"
#include "compress/bdi.hh"
#include "compress/chain.hh"
#include "core/exma_table.hh"
#include "genome/reference.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    const u64 len = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                             : (1u << 20);
    const double snp_per_kb =
        argc > 2 ? std::atof(argv[2]) : 1.0; // ~0.1% human variation

    ReferenceSpec spec;
    spec.length = len;
    auto ref = generateReference(spec);
    FmIndex fm(ref);

    // A "resequenced individual": the reference plus point variants.
    std::vector<Base> target = ref;
    Rng rng(2024);
    const u64 n_snps = static_cast<u64>(
        snp_per_kb * static_cast<double>(len) / 1000.0);
    for (u64 s = 0; s < n_snps; ++s) {
        const u64 pos = rng.below(target.size());
        target[pos] = static_cast<Base>((target[pos] + 1) & 3);
    }

    std::cout << "compressing a " << len << " bp individual with "
              << n_snps << " SNPs against the reference...\n";
    std::vector<u8> blob;
    auto res = compressWithBlob(fm, target, blob);
    std::cout << "  copy tokens: " << res.copy_tokens
              << ", literals: " << res.literal_bases << "\n"
              << "  compressed: " << res.compressed_bytes << " bytes ("
              << 100.0 * res.ratio() << "% of input)\n";

    std::cout << "verifying round trip... ";
    const bool ok = decompressTokens(ref, blob) == target;
    std::cout << (ok ? "OK" : "MISMATCH") << "\n";

    // CHAIN vs B∆I on the EXMA table of this genome.
    ExmaTable::Config cfg;
    cfg.k = 8;
    cfg.mode = OccIndexMode::Exact;
    ExmaTable table(ref, cfg);
    auto sizes = table.sizeReport();
    const auto &inc = table.occTable().allIncrements();
    std::vector<u8> raw(inc.size() * 4);
    std::memcpy(raw.data(), inc.data(), raw.size());
    std::cout << "\nEXMA increments (" << raw.size() / 1024
              << " KB): CHAIN -> "
              << 100.0 * static_cast<double>(sizes.increments_chain) /
                     static_cast<double>(sizes.increments_raw)
              << "%, B∆I -> " << 100.0 * bdiCompressRatio(raw)
              << "%  (the paper's Fig. 17/23 point: sorted data favours "
                 "delta chains)\n";
    return ok ? 0 : 1;
}
