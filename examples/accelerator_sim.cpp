/**
 * @file
 * Accelerator simulation example: run the cycle-level EXMA accelerator
 * against the DDR4 model on a seeding workload and compare the three
 * design points (FR-FCFS/close-page, +2-stage scheduling, +dynamic
 * page policy) — a miniature of the paper's Fig. 18.
 *
 *   ./examples/accelerator_sim [genome_length] [n_queries]
 */

#include <cstdlib>
#include <iostream>

#include "accel/accelerator.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    const u64 len = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                             : (1u << 20);
    const u64 n_queries = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 400;

    ReferenceSpec spec;
    spec.length = len;
    spec.repeat_fraction = 0.5;
    auto ref = generateReference(spec);

    std::cout << "building EXMA table (MTL index) over " << len
              << " bp...\n";
    ExmaTable::Config tcfg;
    tcfg.k = 8;
    tcfg.mode = OccIndexMode::Mtl;
    ExmaTable table(ref, tcfg);
    auto queries = samplePatterns(ref, n_queries, 101, 1);

    struct Point
    {
        const char *name;
        bool two_stage;
        PagePolicy policy;
    };
    const Point points[] = {
        {"EX-acc    (FR-FCFS, close page)", false, PagePolicy::Close},
        {"EX-2stage (+2-stage scheduling)", true, PagePolicy::Close},
        {"EXMA      (+dynamic page)      ", true, PagePolicy::Dynamic},
    };

    double base = 0.0;
    for (const Point &pt : points) {
        AcceleratorConfig cfg;
        cfg.two_stage_scheduling = pt.two_stage;
        DramConfig dram = DramConfig::ddr4_2400();
        dram.page_policy = pt.policy;
        ExmaAccelerator accel(table, cfg, dram);
        auto r = accel.run(queries);
        if (base == 0.0)
            base = r.mbasesPerSecond();
        std::cout << pt.name << ": "
                  << r.mbasesPerSecond() << " Mbase/s ("
                  << r.mbasesPerSecond() / base << "x), base$ hit "
                  << static_cast<int>(100 * r.base_hit_rate)
                  << "%, index$ hit "
                  << static_cast<int>(100 * r.index_hit_rate)
                  << "%, DRAM row hit "
                  << static_cast<int>(100 * r.dram_row_hit_rate)
                  << "%, BW util "
                  << static_cast<int>(100 * r.bandwidth_utilization)
                  << "%, accel power " << r.accelPowerW() << " W\n";
    }
    return 0;
}
