/**
 * @file
 * Read-alignment pipeline example: simulate Illumina and Nanopore
 * reads, seed with FMD-index SMEMs, extend with banded Smith-Waterman,
 * and report accuracy plus the FM-vs-DP work split that motivates the
 * paper (Fig. 1).
 *
 *   ./examples/read_alignment [genome_length] [n_reads]
 */

#include <cstdlib>
#include <iostream>

#include "apps/aligner.hh"
#include "genome/reference.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    const u64 len = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                             : (1u << 20);
    const u64 n_reads = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 200;

    ReferenceSpec spec;
    spec.length = len;
    auto ref = generateReference(spec);
    std::cout << "reference: " << len << " bp; building FMD index...\n";
    FmdIndex fmd(ref);

    for (const auto &profile : allProfiles()) {
        ReadSimSpec rs;
        rs.read_len = profile.name == "Illumina" ? 101 : 800;
        rs.long_reads = profile.name != "Illumina";
        rs.max_reads = n_reads;
        auto reads = simulateReads(ref, profile, rs);

        AlignerParams params;
        params.min_seed_len = rs.long_reads ? 13 : 17;
        auto res = alignReads(ref, fmd, reads, params);

        auto b = cpuBreakdown(profile.name, res.counts);
        std::cout << "\n" << profile.name << " (err "
                  << 100 * profile.total() << "%):\n"
                  << "  mapped " << res.mapped << "/" << reads.size()
                  << ", correct " << res.correct << "\n"
                  << "  FM-Index symbols: " << res.counts.fm_symbols
                  << ", DP cells: " << res.counts.dp_cells << "\n"
                  << "  modelled CPU time split: FM "
                  << static_cast<int>(100 * b.fmFraction()) << "% / DP "
                  << static_cast<int>(100 * b.dpFraction()) << "% / other "
                  << static_cast<int>(100 * (1 - b.fmFraction() -
                                             b.dpFraction()))
                  << "%\n";
    }
    return 0;
}
