# Helper functions shared by every module CMakeLists.
#
# Every src/ module goes through exma_add_module() so that
#  - the C++20 requirement is attached to each target explicitly,
#  - the warning / sanitizer flags are applied uniformly, and
#  - every source file is recorded on the EXMA_CLAIMED_SOURCES global
#    property, which feeds the build.source_coverage CTest entry
#    (cmake/check_sources.cmake).

define_property(GLOBAL PROPERTY EXMA_CLAIMED_SOURCES
    BRIEF_DOCS "All .cc files claimed by some CMake target"
    FULL_DOCS "Absolute paths of every source file added via \
exma_add_module/exma_claim_sources; compared against a glob of \
src/**/*.cc by the build.source_coverage test.")

# Record absolute paths of the given sources on the global claim list.
function(exma_claim_sources)
    foreach(src IN LISTS ARGN)
        get_filename_component(abs "${src}" ABSOLUTE)
        set_property(GLOBAL APPEND PROPERTY EXMA_CLAIMED_SOURCES "${abs}")
    endforeach()
endfunction()

# exma_add_module(<name> SOURCES <files...> [DEPS <exma targets...>])
#
# Defines static library exma_<name> with alias exma::<name>, public
# include dir at the repo's src/, explicit C++20, and the shared
# warning/sanitizer flags.
function(exma_add_module name)
    cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
    if(NOT ARG_SOURCES)
        message(FATAL_ERROR "exma_add_module(${name}) needs SOURCES")
    endif()

    add_library(exma_${name} STATIC ${ARG_SOURCES})
    add_library(exma::${name} ALIAS exma_${name})
    target_include_directories(exma_${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
    target_compile_features(exma_${name} PUBLIC cxx_std_20)
    target_link_libraries(exma_${name}
        PUBLIC ${ARG_DEPS}
        PRIVATE exma::build_flags)
    exma_claim_sources(${ARG_SOURCES})
endfunction()

# exma_add_executable(<name> SOURCES <files...> [DEPS <exma targets...>])
#
# Same flag treatment for executables (tests, benches, examples).
function(exma_add_executable name)
    cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
    add_executable(${name} ${ARG_SOURCES})
    target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR}/src)
    target_compile_features(${name} PRIVATE cxx_std_20)
    target_link_libraries(${name} PRIVATE ${ARG_DEPS} exma::build_flags)
endfunction()
