# Test-time script behind the build.source_coverage CTest entry.
#
# Compares the list of sources claimed by CMake targets (MANIFEST,
# generated at configure time from the EXMA_CLAIMED_SOURCES global
# property) against a fresh glob of src/**/*.cc. A source file that
# exists on disk but is absent from the manifest would compile in
# nobody's target — fail loudly so new files can't silently drop out
# of the build.
#
# Usage:
#   cmake -DMANIFEST=<file> -DSRC_DIR=<repo src dir> -P check_sources.cmake

cmake_minimum_required(VERSION 3.20) # script mode: sets CMP0057 for IN_LIST

if(NOT MANIFEST OR NOT SRC_DIR)
    message(FATAL_ERROR "check_sources.cmake needs -DMANIFEST= and -DSRC_DIR=")
endif()
if(NOT EXISTS "${MANIFEST}")
    message(FATAL_ERROR "claimed-source manifest not found: ${MANIFEST}")
endif()

file(STRINGS "${MANIFEST}" claimed)
file(GLOB_RECURSE on_disk "${SRC_DIR}/*.cc")

set(orphans "")
foreach(src IN LISTS on_disk)
    if(NOT src IN_LIST claimed)
        list(APPEND orphans "${src}")
    endif()
endforeach()

if(orphans)
    list(JOIN orphans "\n  " pretty)
    message(FATAL_ERROR
        "source files not claimed by any CMake target "
        "(add them to their module's CMakeLists.txt and reconfigure):\n"
        "  ${pretty}")
endif()

list(LENGTH on_disk n)
message(STATUS "source coverage OK: all ${n} src/**/*.cc files are "
               "claimed by a CMake target")
