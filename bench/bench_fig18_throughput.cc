/**
 * @file
 * Fig. 18 — FM-Index search throughput of the EXMA design points,
 * normalised to the CPU baseline (software LISA-21), per dataset:
 *   EXMA-15  — the EXMA-15M algorithm still running on the CPU,
 *   EX-acc   — the accelerator, FR-FCFS order, close-page DRAM,
 *   EX-2stage— + 2-stage scheduling,
 *   EXMA     — + dynamic page policy.
 */

#include "bench_util.hh"

#include "baselines/cpu_model.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 18", "search throughput of EXMA design points "
                             "(normalised to the CPU LISA baseline)");

    TextTable t;
    t.header({"dataset", "EXMA-15(sw)", "EX-acc", "EX-2stage", "EXMA"});
    std::vector<double> g15, gacc, g2s, gfull;

    for (const std::string &name : datasetNames()) {
        const Dataset &ds = bench::dataset(name);
        const double cpu_mbases = bench::cpuSearchMbases(name);

        // EXMA-15 in software: same chain engine as the CPU baseline
        // but k_exma symbols per iteration and the MTL error profile.
        const ExmaTable &table = bench::exmaTable(name, OccIndexMode::Mtl);
        SearchStats stats;
        for (const auto &p : bench::patterns(ds, 100))
            table.search(p, &stats);
        const double mtl_err =
            stats.kstep_iterations
                ? static_cast<double>(stats.total_error) /
                      (2.0 * static_cast<double>(stats.kstep_iterations))
                : 0.0;
        ChainSpec sw = cpuLisaSpec(
            std::max<u64>(u64{1} << 22,
                          static_cast<u64>(ds.ref.size()) * 5),
            ds.exma_k, mtl_err * 4.0 / 64.0);
        sw.name = "EXMA-15-sw";
        // The MTL hierarchy is shallower and mostly cache-resident
        // (half of LISA's parameters): one fewer dependent hop and
        // less per-iteration software work.
        sw.dependent_accesses = 2;
        sw.compute_ps = 50000;
        sw.iterations = 30000;
        const double sw_mbases =
            runChainWorkload(sw, DramConfig::ddr4_2400())
                .mbasesPerSecond();

        const double acc =
            bench::exmaAccelRun(name, false, PagePolicy::Close)
                .mbasesPerSecond();
        const double twostage =
            bench::exmaAccelRun(name, true, PagePolicy::Close)
                .mbasesPerSecond();
        const double full =
            bench::exmaAccelRun(name, true, PagePolicy::Dynamic)
                .mbasesPerSecond();

        const double n15 = sw_mbases / cpu_mbases;
        const double nacc = acc / cpu_mbases;
        const double n2s = twostage / cpu_mbases;
        const double nfull = full / cpu_mbases;
        g15.push_back(n15);
        gacc.push_back(nacc);
        g2s.push_back(n2s);
        gfull.push_back(nfull);
        t.row({name, TextTable::num(n15, 2), TextTable::num(nacc, 2),
               TextTable::num(n2s, 2), TextTable::num(nfull, 2)});
    }
    t.row({"gmean", TextTable::num(bench::gmean(g15), 2),
           TextTable::num(bench::gmean(gacc), 2),
           TextTable::num(bench::gmean(g2s), 2),
           TextTable::num(bench::gmean(gfull), 2)});
    bench::printTable(t);
    std::cout << "\npaper (gmean): EXMA-15 = 1.8x, EX-acc = 7.25x, "
                 "EX-2stage = 15x, EXMA = 23.6x over the CPU.\n";
    return 0;
}
