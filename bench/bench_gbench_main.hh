/**
 * @file
 * Shared entry point for the google-benchmark harnesses
 * (bench_micro_kernels, bench_rank): BENCHMARK_MAIN() with the bench
 * suite's JSON convention layered on — `--json <path>` / EXMA_BENCH_JSON
 * map onto Google Benchmark's native JSON reporter (--benchmark_out),
 * so these harnesses record their figure data the same way the table
 * harnesses do. Header-only so each harness keeps its own benchmark
 * link and bench_util stays benchmark-free.
 */

#ifndef EXMA_BENCH_BENCH_GBENCH_MAIN_HH
#define EXMA_BENCH_BENCH_GBENCH_MAIN_HH

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"

namespace exma {
namespace bench {

inline int
googleBenchmarkMain(int argc, char **argv)
{
    const std::string json_path = jsonDestination(argc, argv);
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag, fmt_flag;
    if (!json_path.empty()) {
        out_flag = "--benchmark_out=" + json_path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace exma

#endif // EXMA_BENCH_BENCH_GBENCH_MAIN_HH
