/**
 * @file
 * Fig. 6 — inefficiency of prior FM-Index algorithms:
 *  (a) randomness of 1-step FM-Index Occ accesses,
 *  (b) DRAM footprint vs step number for k-step FM and LISA,
 *  (c) LISA-21 learned-index error distribution,
 *  (d) throughput of FM-k / LISA variants on the CPU baseline.
 */

#include "bench_util.hh"

#include "common/stats.hh"

#include <set>

#include "baselines/cpu_model.hh"
#include "fmindex/size_model.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 6", "prior FM-Index algorithm inefficiency");
    const Dataset &ds = bench::dataset("human");

    // (a) 200 consecutive 1-step iterations touch ~distinct Occ rows.
    {
        std::cout << "--- Fig. 6(a): 1-step FM-Index access randomness ---\n";
        FmIndex fm(ds.ref);
        SearchTrace trace;
        auto pats = bench::patterns(ds, 2, 101);
        for (const auto &p : pats)
            fm.search(p, &trace);
        trace.occ_rows.resize(std::min<size_t>(trace.occ_rows.size(), 200));
        std::set<u64> distinct(trace.occ_rows.begin(),
                               trace.occ_rows.end());
        std::cout << "iterations traced:   " << trace.occ_rows.size()
                  << "\ndistinct Occ rows:   " << distinct.size()
                  << "\nsample row ids:      ";
        for (size_t i = 0; i < trace.occ_rows.size(); i += 25)
            std::cout << trace.occ_rows[i] << " ";
        std::cout << "\npaper: 197 of 200 accesses hit different rows; "
                     "close-page policy is the right prior.\n\n";
    }

    // (b) Size vs step number at full paper scale (closed-form).
    {
        std::cout << "--- Fig. 6(b): DRAM overhead vs step # (3 Gbp) ---\n";
        TextTable t;
        t.header({"step", "FM-Index", "LISA"});
        for (int k : {1, 2, 3, 4, 5, 6, 11, 21, 32}) {
            t.row({std::to_string(k),
                   TextTable::bytes(fmkSizeBytes(3000000000ULL, k)),
                   TextTable::bytes(
                       lisaSizeBytes(3000000000ULL, k).total())});
        }
        bench::printTable(t, "6b_dram_overhead_vs_step");
        std::cout << "paper: FM-5 = 105GB, FM-6 = 374GB; LISA grows "
                     "linearly.\n\n";
    }

    // (c) LISA learned-index error distribution (measured, scaled).
    {
        std::cout << "--- Fig. 6(c): LISA-" << ds.lisa_k
                  << " prediction errors (scaled human) ---\n";
        const auto &m = bench::lisaMeasurement("human");
        auto s = summarize(m.error_samples);
        TextTable t;
        t.header({"min", "p25", "p50", "p75", "max", "mean"});
        t.row({TextTable::num(s.min, 0), TextTable::num(s.p25, 0),
               TextTable::num(s.p50, 0), TextTable::num(s.p75, 0),
               TextTable::num(s.max, 0), TextTable::num(s.mean, 1)});
        bench::printTable(t, "6c_lisa_error_distribution");
        const double paper_equiv =
            s.mean * 3000000000.0 / static_cast<double>(ds.ref.size());
        std::cout << "mean scaled to 3 Gbp (errors grow ~linearly with "
                     "|G| at fixed params/entry): "
                  << TextTable::num(paper_equiv, 0)
                  << "  (paper: ~3K extra IP-BWT entries/iteration)\n\n";
    }

    // (d) CPU-baseline throughput of the algorithm variants.
    {
        std::cout << "--- Fig. 6(d): normalized throughput on CPU ---\n";
        const auto &m = bench::lisaMeasurement("human");
        const double err_paper =
            m.mean_error * 3000000000.0 /
            static_cast<double>(ds.ref.size());
        auto lisa_fp = [&](int k) {
            return lisaSizeBytes(3000000000ULL, k).total() / 1e9;
        };
        std::vector<CpuScheme> schemes = {
            {"FM-4", 4, fmkSizeBytes(3000000000ULL, 4) / 1e9, 0, 0,
             false, false},
            {"FM-5", 5, fmkSizeBytes(3000000000ULL, 5) / 1e9, 0, 0,
             false, false},
            {"FM-6", 6, fmkSizeBytes(3000000000ULL, 6) / 1e9, 0, 0,
             false, false},
            {"LISA-11", 11, lisa_fp(11), 0.6, err_paper * 0.55, false,
             false},
            {"LISA-21", 21, lisa_fp(21), 0.6, err_paper, false, false},
            {"LISA-32", 32, lisa_fp(32), 0.6, err_paper * 6.7, false,
             false},
            {"LISA-21P", 21, lisa_fp(21), 0.6, err_paper, true, false},
            {"LISA-21PC", 21, lisa_fp(21), 0.6, err_paper, true, true},
        };
        TextTable t;
        t.header({"scheme", "norm. throughput (x FM-1)"});
        for (const auto &s : schemes)
            t.row({s.name,
                   TextTable::num(cpuNormalizedThroughput(s), 2)});
        bench::printTable(t, "6d_cpu_throughput");
        std::cout << "paper: FM-5 = 1.21x, LISA-21 = 2.15x, "
                     "LISA-21P = 5.1x, LISA-21PC = 8.53x.\n";
    }
    return 0;
}
