/**
 * @file
 * google-benchmark microkernels for the software layers: suffix-array
 * construction, FM-Index search, k-step/EXMA search, LISA search, and
 * the CHAIN/B∆I codecs. Complements the figure harnesses with
 * wall-clock numbers for the library itself.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_gbench_main.hh"
#include "common/rng.hh"
#include "compress/bdi.hh"
#include "compress/chain.hh"
#include "core/exma_table.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/suffix_array.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"
#include "lisa/lisa.hh"

namespace {

using namespace exma;

const std::vector<Base> &
microRef()
{
    static const std::vector<Base> ref = [] {
        ReferenceSpec spec;
        spec.length = 1 << 20;
        spec.seed = 3;
        return generateReference(spec);
    }();
    return ref;
}

void
BM_SuffixArray(benchmark::State &state)
{
    std::vector<Base> ref(microRef().begin(),
                          microRef().begin() + state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildSuffixArray(ref));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArray)->Arg(1 << 16)->Arg(1 << 18)->Arg(1 << 20);

void
BM_FmIndexSearch(benchmark::State &state)
{
    static const FmIndex fm(microRef());
    auto pats = samplePatterns(microRef(), 256,
                               static_cast<u64>(state.range(0)), 7);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fm.search(pats[i % pats.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FmIndexSearch)->Arg(32)->Arg(101);

void
BM_ExmaSearch(benchmark::State &state)
{
    static const ExmaTable table = [] {
        ExmaTable::Config cfg;
        cfg.k = 8;
        cfg.mode = OccIndexMode::Mtl;
        cfg.mtl.epochs = 30;
        return ExmaTable(microRef(), cfg);
    }();
    auto pats = samplePatterns(microRef(), 256, 101, 9);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.search(pats[i % pats.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 101);
}
BENCHMARK(BM_ExmaSearch);

void
BM_LisaSearch(benchmark::State &state)
{
    static const IpBwt ipbwt(microRef(), 10);
    static const Lisa lisa(ipbwt, Lisa::Config{});
    auto pats = samplePatterns(microRef(), 256, 101, 11);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lisa.search(pats[i % pats.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 101);
}
BENCHMARK(BM_LisaSearch);

void
BM_ChainCompress(benchmark::State &state)
{
    Rng rng(5);
    std::vector<u32> vals;
    u32 v = 0;
    for (int i = 0; i < 1 << 16; ++i)
        vals.push_back(v += static_cast<u32>(1 + rng.below(100)));
    for (auto _ : state)
        benchmark::DoNotOptimize(chainCompressedSize(vals));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<i64>(vals.size() * 4));
}
BENCHMARK(BM_ChainCompress);

void
BM_BdiCompress(benchmark::State &state)
{
    Rng rng(6);
    std::vector<u8> data(1 << 18);
    for (auto &b : data)
        b = static_cast<u8>(rng.below(4)); // compressible-ish
    for (auto _ : state)
        benchmark::DoNotOptimize(bdiCompressedSize(data));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<i64>(data.size()));
}
BENCHMARK(BM_BdiCompress);

} // namespace

int
main(int argc, char **argv)
{
    return exma::bench::googleBenchmarkMain(argc, argv);
}
