/**
 * @file
 * Fig. 12 — profiling EXMA with the naive learned index: (a) the share
 * of k-mers in each increment-count class is tiny for heavy classes,
 * yet (b) those classes consume a disproportionate share of search
 * time (misprediction-driven linear search).
 */

#include "bench_util.hh"

#include "learned/mtl_index.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 12", "per-increment-class population and search "
                             "time (naive learned index)");
    const Dataset &ds = bench::dataset("human");
    const ExmaTable &table =
        bench::exmaTable("human", OccIndexMode::NaiveLearned);
    const KmerOccTable &occ = table.occTable();

    // (a) population per class.
    u64 class_pop[MtlIndex::kNumClasses] = {};
    u64 total_kmers = 0;
    for (Kmer m = 0; m < kmerSpace(occ.k()); ++m) {
        ++class_pop[MtlIndex::classOf(occ.frequency(m))];
        ++total_kmers;
    }

    // (b) search-time share per class, using correction probes as the
    // time proxy (each probe is one memory touch).
    double class_time[MtlIndex::kNumClasses] = {};
    double total_time = 0.0;
    auto pats = bench::patterns(ds, 400);
    for (const auto &p : pats) {
        auto trace = table.traceSearch(p);
        for (const auto &it : trace) {
            const int cls = MtlIndex::classOf(occ.frequency(it.kmer));
            const double cost =
                static_cast<double>(2 + it.low.probes + it.high.probes);
            class_time[cls] += cost;
            total_time += cost;
        }
    }

    TextTable t;
    t.header({"increment #", "k-mer share %", "search time share %"});
    for (int c = 0; c < MtlIndex::kNumClasses; ++c) {
        if (class_pop[c] == 0)
            continue;
        t.row({MtlIndex::className(c),
               TextTable::num(100.0 * static_cast<double>(class_pop[c]) /
                                  static_cast<double>(total_kmers),
                              4),
               TextTable::num(total_time > 0
                                  ? 100.0 * class_time[c] / total_time
                                  : 0.0,
                              1)});
    }
    bench::printTable(t);
    std::cout << "\npaper: 2.5E-5% of 15-mers fall in 64K-256K yet eat "
                 "36% of search time; the heaviest classes dominate "
                 "cost, motivating the MTL index.\n";
    return 0;
}
