/**
 * @file
 * Fig. 13 — prediction errors of the naive per-k-mer learned index vs
 * the MTL index, for the two heaviest populated increment-count
 * classes (the paper's learn-256K / learn-1M vs MTL-256K / MTL-1M).
 */

#include "bench_util.hh"

#include "common/stats.hh"

#include "learned/mtl_index.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 13", "naive vs MTL index prediction errors");
    const Dataset &ds = bench::dataset("human");
    const ExmaTable &naive =
        bench::exmaTable("human", OccIndexMode::NaiveLearned);
    const ExmaTable &mtl = bench::exmaTable("human", OccIndexMode::Mtl);
    const KmerOccTable &occ = naive.occTable();

    // Find the two heaviest populated classes with models.
    const u64 threshold = std::max<u64>(
        32, static_cast<u64>(256.0 * bench::scale()));
    std::vector<int> classes;
    for (int c = MtlIndex::kNumClasses - 1; c >= 2 && classes.size() < 2;
         --c) {
        for (Kmer m = 0; m < kmerSpace(occ.k()); ++m) {
            if (MtlIndex::classOf(occ.frequency(m)) == c &&
                occ.frequency(m) > threshold) {
                classes.push_back(c);
                break;
            }
        }
    }

    Rng rng(17);
    TextTable t;
    t.header({"index/class", "min", "p25", "p50", "p75", "max", "mean"});
    for (int cls : classes) {
        std::vector<double> naive_err, mtl_err;
        for (Kmer m = 0; m < kmerSpace(occ.k()); ++m) {
            if (MtlIndex::classOf(occ.frequency(m)) != cls ||
                occ.frequency(m) <= threshold)
                continue;
            for (int s = 0; s < 64; ++s) {
                const u64 pos = rng.below(occ.rows() + 1);
                naive_err.push_back(
                    static_cast<double>(naive.occ(m, pos).error));
                mtl_err.push_back(
                    static_cast<double>(mtl.occ(m, pos).error));
            }
        }
        auto ns = summarize(naive_err);
        auto ms = summarize(mtl_err);
        const std::string label = MtlIndex::className(cls);
        t.row({"learn-" + label, TextTable::num(ns.min, 0),
               TextTable::num(ns.p25, 0), TextTable::num(ns.p50, 0),
               TextTable::num(ns.p75, 0), TextTable::num(ns.max, 0),
               TextTable::num(ns.mean, 1)});
        t.row({"MTL-" + label, TextTable::num(ms.min, 0),
               TextTable::num(ms.p25, 0), TextTable::num(ms.p50, 0),
               TextTable::num(ms.p75, 0), TextTable::num(ms.max, 0),
               TextTable::num(ms.mean, 1)});
    }
    bench::printTable(t);

    std::cout << "\nindex parameters: naive=" << naive.indexParamCount()
              << "  MTL=" << mtl.indexParamCount() << "\n";
    std::cout << "paper (3 Gbp): naive means 917 / 2133 vs MTL means "
                 "45 / 182 for the 64K-256K and >1M classes — MTL cuts "
                 "errors by an order of magnitude with fewer "
                 "parameters.\n";
    (void)ds;
    return 0;
}
