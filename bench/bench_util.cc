#include "bench_util.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"
#include "fmindex/suffix_array.hh"
#include "genome/fasta.hh"

namespace exma {
namespace bench {

// ---------------------------------------------------------------------------
// JSON report: one document per harness run, written at process exit to
// the --json / EXMA_BENCH_JSON destination. Figure sections are opened
// by banner(); printTable()/note() append to the most recent section.
// ---------------------------------------------------------------------------

namespace {

struct JsonTable
{
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

struct JsonFigure
{
    std::string figure;
    std::string what;
    std::vector<std::pair<std::string, double>> notes;
    std::vector<JsonTable> tables;
};

/** Full parse of @p s as a finite double ("1.23" yes, "1.23x" no). */
bool
asNumber(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

struct JsonReport
{
    std::string path;
    std::string harness;
    std::vector<JsonFigure> figures;

    ~JsonReport() { write(); }

    JsonFigure &
    current()
    {
        if (figures.empty())
            figures.emplace_back();
        return figures.back();
    }

    void
    write() const
    {
        if (path.empty())
            return;
        std::ofstream os(path);
        if (!os) {
            std::cerr << "bench: cannot write JSON report to " << path
                      << "\n";
            return;
        }
        JsonWriter w(os);
        w.beginObject()
            .field("harness", harness)
            .field("scale", scale());
        w.key("figures").beginArray();
        for (const JsonFigure &fig : figures) {
            w.beginObject()
                .field("figure", fig.figure)
                .field("what", fig.what);
            w.key("notes").beginObject();
            for (const auto &kv : fig.notes)
                w.field(kv.first, kv.second);
            w.endObject();
            w.key("tables").beginArray();
            for (const JsonTable &t : fig.tables) {
                w.beginObject().field("title", t.title);
                w.key("columns").beginArray();
                for (const std::string &c : t.columns)
                    w.value(c);
                w.endArray();
                w.key("rows").beginArray();
                for (const auto &row : t.rows) {
                    w.beginObject();
                    for (size_t i = 0; i < row.size(); ++i) {
                        const std::string col =
                            i < t.columns.size() && !t.columns[i].empty()
                                ? t.columns[i]
                                : "col" + std::to_string(i);
                        double num = 0.0;
                        if (asNumber(row[i], &num))
                            w.field(col, num);
                        else
                            w.field(col, row[i]);
                    }
                    w.endObject();
                }
                w.endArray().endObject();
            }
            w.endArray().endObject();
        }
        w.endArray().endObject();
        os << "\n";
    }
};

JsonReport &
report()
{
    static JsonReport r;
    return r;
}

} // namespace

std::string
jsonDestination(int &argc, char **argv)
{
    std::string path;
    int w = 0;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            path = argv[++i];
        else if (i > 0 && std::strncmp(argv[i], "--json=", 7) == 0)
            path = argv[i] + 7;
        else
            argv[w++] = argv[i];
    }
    argc = w;
    if (path.empty()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup,
        // before any worker thread exists; nothing writes the env.
        const char *env = std::getenv("EXMA_BENCH_JSON");
        if (env && *env)
            path = env;
    }
    return path;
}

void
init(int &argc, char **argv)
{
    JsonReport &r = report();
    if (argc > 0 && argv[0]) {
        const std::string exe = argv[0];
        const size_t slash = exe.find_last_of('/');
        r.harness = slash == std::string::npos ? exe : exe.substr(slash + 1);
    }
    r.path = jsonDestination(argc, argv);
}

void
printTable(const TextTable &t, const std::string &title)
{
    t.print(std::cout);
    JsonReport &r = report();
    if (r.path.empty())
        return;
    JsonTable jt;
    jt.title = title;
    jt.columns = t.headerCells();
    jt.rows = t.rowCells();
    r.current().tables.push_back(std::move(jt));
}

void
note(const std::string &key, double value)
{
    JsonReport &r = report();
    if (!r.path.empty())
        r.current().notes.emplace_back(key, value);
}

double
scale()
{
    static const double s = [] {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): once, inside a
        // static initializer; no concurrent env mutation.
        const char *env = std::getenv("EXMA_BENCH_SCALE");
        if (!env)
            return 0.25;
        const double v = std::atof(env);
        return v > 0.0 ? v : 0.25;
    }();
    return s;
}

namespace {

/**
 * Real-genome mode (ROADMAP "Real-genome FASTA workloads"): when
 * EXMA_REF_FASTA points at a FASTA file, every named dataset swaps the
 * synthetic reference for the file's records (concatenated, with
 * per-record spans kept for shard planning), the k values rescaled to
 * the file's actual size. The file is parsed exactly once per process
 * — the record list here is shared by every dataset-name construction
 * (the old code re-read and re-parsed the file on every cache miss).
 * Empty when the variable is unset, i.e. the synthetic fallback
 * applies.
 */
const std::vector<FastaRecord> &
fastaRecords()
{
    static const std::vector<FastaRecord> records = [] {
        std::vector<FastaRecord> out;
        // NOLINTNEXTLINE(concurrency-mt-unsafe): once, inside a
        // static initializer; no concurrent env mutation.
        const char *path = std::getenv("EXMA_REF_FASTA");
        if (!path || !*path)
            return out;
        FastaParseStats st;
        out = readFastaFile(path, &st);
        if (out.empty())
            exma_fatal("EXMA_REF_FASTA=%s holds no FASTA records", path);
        exma_inform("EXMA_REF_FASTA: %s (%llu records, %llu bases) "
                    "replaces the synthetic references",
                    path, (unsigned long long)st.records,
                    (unsigned long long)st.bases);
        return out;
    }();
    return records;
}

} // namespace

const Dataset &
dataset(const std::string &name)
{
    static std::map<std::string, Dataset> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const auto &records = fastaRecords();
        if (!records.empty())
            it = cache.emplace(name,
                               makeDatasetFromRecords(name, records))
                     .first;
        else
            it = cache.emplace(name, makeDataset(name, scale())).first;
    }
    return it->second;
}

void
banner(const std::string &fig, const std::string &what)
{
    std::cout << "\n=== " << fig << ": " << what << " ===\n"
              << "(scale=" << scale() << " of DESIGN.md defaults; "
              << "set EXMA_BENCH_SCALE to change)\n\n";
    JsonReport &r = report();
    if (!r.path.empty()) {
        JsonFigure f;
        f.figure = fig;
        f.what = what;
        r.figures.push_back(std::move(f));
    }
}

double
gmean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(std::max(x, 1e-12));
    return std::exp(acc / static_cast<double>(v.size()));
}

ExmaTable::Config
exmaConfig(const Dataset &ds, OccIndexMode mode)
{
    ExmaTable::Config cfg;
    cfg.k = ds.exma_k;
    cfg.mode = mode;
    // Leaf granularity and the modelling threshold scale with dataset
    // size so the model-vs-data ratio matches the paper's operating
    // point (256-increment threshold at 3 Gbp).
    cfg.mtl.leaf_size = std::max<u64>(
        32, static_cast<u64>(512.0 * scale()));
    cfg.mtl.min_increments = std::max<u64>(
        32, static_cast<u64>(256.0 * scale()));
    cfg.mtl.epochs = 120;
    cfg.mtl.samples_per_class = 4096;
    cfg.naive.leaf_size = std::max<u64>(
        256, static_cast<u64>(4096.0 * scale()));
    cfg.naive.min_increments = cfg.mtl.min_increments;
    cfg.naive.epochs = 20;
    return cfg;
}

namespace {

/** Wall-clock build seconds of each cached table, keyed like the cache. */
std::map<std::pair<std::string, int>, double> &
buildSecondsMap()
{
    static std::map<std::pair<std::string, int>, double> m;
    return m;
}

} // namespace

const ExmaTable &
exmaTable(const std::string &dataset_name, OccIndexMode mode)
{
    static std::map<std::pair<std::string, int>, std::unique_ptr<ExmaTable>>
        cache;
    const auto key = std::make_pair(dataset_name, static_cast<int>(mode));
    auto it = cache.find(key);
    if (it == cache.end()) {
        const Dataset &ds = dataset(dataset_name);
        const auto t0 = std::chrono::steady_clock::now();
        it = cache.emplace(key, std::make_unique<ExmaTable>(
                                     ds.ref, exmaConfig(ds, mode)))
                 .first;
        buildSecondsMap()[key] =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    }
    return *it->second;
}

double
exmaBuildSeconds(const std::string &dataset_name, OccIndexMode mode)
{
    exmaTable(dataset_name, mode); // ensure the build happened
    return buildSecondsMap()[std::make_pair(dataset_name,
                                            static_cast<int>(mode))];
}

std::vector<std::vector<Base>>
patterns(const Dataset &ds, u64 count, u64 len)
{
    return samplePatterns(ds.ref, count, len, 12345);
}

const LisaMeasurement &
lisaMeasurement(const std::string &dataset_name)
{
    static std::map<std::string, LisaMeasurement> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;

    const Dataset &ds = dataset(dataset_name);
    IpBwt ipbwt(ds.ref, ds.lisa_k);
    Lisa::Config cfg;
    cfg.group_symbols = std::min(8, ds.lisa_k / 2);
    cfg.leaf_size = std::max<u64>(
        64, static_cast<u64>(4096.0 * scale()));
    Lisa lisa(ipbwt, cfg);

    LisaStats stats;
    auto pats = patterns(ds, 400);
    for (const auto &p : pats)
        lisa.search(p, &stats);

    LisaMeasurement m;
    m.mean_error =
        stats.iterations
            ? static_cast<double>(stats.total_error) /
                  static_cast<double>(stats.iterations)
            : 0.0;
    m.extra_lines = m.mean_error * 12.0 / 64.0;
    m.error_samples = std::move(stats.error_samples);
    m.param_count = lisa.paramCount();
    it = cache.emplace(dataset_name, std::move(m)).first;
    return it->second;
}

double
cpuSearchMbases(const std::string &dataset_name)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;

    const Dataset &ds = dataset(dataset_name);
    const auto &lm = lisaMeasurement(dataset_name);
    // The CPU baseline runs LISA-21 (§V "Schemes"); its IP-BWT footprint
    // at this scale:
    const u64 footprint = std::max<u64>(
        u64{1} << 22, static_cast<u64>(ds.ref.size()) * 12);
    ChainSpec spec =
        cpuLisaSpec(footprint, ds.lisa_k, lm.extra_lines);
    spec.iterations = 30000;
    auto r = runChainWorkload(spec, DramConfig::ddr4_2400());
    const double mbases = r.mbasesPerSecond();
    cache.emplace(dataset_name, mbases);
    return mbases;
}

AcceleratorResult
exmaAccelRun(const std::string &dataset_name, bool two_stage,
             PagePolicy policy, u64 n_queries)
{
    const Dataset &ds = dataset(dataset_name);
    const ExmaTable &table = exmaTable(dataset_name, OccIndexMode::Mtl);
    if (n_queries == 0)
        n_queries = static_cast<u64>(600.0 * scale() * 4.0);
    AcceleratorConfig cfg;
    cfg.two_stage_scheduling = two_stage;
    // Keep the paper's cache-to-working-set pressure at reproduction
    // scale: the Table I 1MB/32KB caches face a 4.3GB base array and a
    // ~750MB index at 3 Gbp; shrink proportionally (floored so sets
    // stay sane). See EXPERIMENTS.md "scaling".
    const auto sizes = table.sizeReport();
    cfg.base_cache_bytes = std::clamp<u64>(sizes.bases_raw / 64,
                                           u64{8} << 10, u64{1} << 20);
    cfg.index_cache_bytes = std::clamp<u64>(sizes.index_bytes / 16,
                                            u64{2} << 10, u64{32} << 10);
    DramConfig dram = DramConfig::ddr4_2400();
    dram.page_policy = policy;
    ExmaAccelerator accel(table, cfg, dram);
    return accel.run(patterns(ds, n_queries));
}

double
fmSpeedup(const std::string &dataset_name)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;
    const double cpu = cpuSearchMbases(dataset_name);
    const auto accel =
        exmaAccelRun(dataset_name, true, PagePolicy::Dynamic);
    const double speedup =
        cpu > 0.0 ? accel.mbasesPerSecond() / cpu : 1.0;
    cache.emplace(dataset_name, speedup);
    return speedup;
}

} // namespace bench
} // namespace exma
