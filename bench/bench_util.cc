#include "bench_util.hh"

#include <cmath>
#include <cstdlib>
#include <map>

#include "fmindex/suffix_array.hh"

namespace exma {
namespace bench {

double
scale()
{
    static const double s = [] {
        const char *env = std::getenv("EXMA_BENCH_SCALE");
        if (!env)
            return 0.25;
        const double v = std::atof(env);
        return v > 0.0 ? v : 0.25;
    }();
    return s;
}

const Dataset &
dataset(const std::string &name)
{
    static std::map<std::string, Dataset> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, makeDataset(name, scale())).first;
    return it->second;
}

void
banner(const std::string &fig, const std::string &what)
{
    std::cout << "\n=== " << fig << ": " << what << " ===\n"
              << "(scale=" << scale() << " of DESIGN.md defaults; "
              << "set EXMA_BENCH_SCALE to change)\n\n";
}

double
gmean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(std::max(x, 1e-12));
    return std::exp(acc / static_cast<double>(v.size()));
}

ExmaTable::Config
exmaConfig(const Dataset &ds, OccIndexMode mode)
{
    ExmaTable::Config cfg;
    cfg.k = ds.exma_k;
    cfg.mode = mode;
    // Leaf granularity and the modelling threshold scale with dataset
    // size so the model-vs-data ratio matches the paper's operating
    // point (256-increment threshold at 3 Gbp).
    cfg.mtl.leaf_size = std::max<u64>(
        32, static_cast<u64>(512.0 * scale()));
    cfg.mtl.min_increments = std::max<u64>(
        32, static_cast<u64>(256.0 * scale()));
    cfg.mtl.epochs = 120;
    cfg.mtl.samples_per_class = 4096;
    cfg.naive.leaf_size = std::max<u64>(
        256, static_cast<u64>(4096.0 * scale()));
    cfg.naive.min_increments = cfg.mtl.min_increments;
    cfg.naive.epochs = 20;
    return cfg;
}

const ExmaTable &
exmaTable(const std::string &dataset_name, OccIndexMode mode)
{
    static std::map<std::pair<std::string, int>, std::unique_ptr<ExmaTable>>
        cache;
    const auto key = std::make_pair(dataset_name, static_cast<int>(mode));
    auto it = cache.find(key);
    if (it == cache.end()) {
        const Dataset &ds = dataset(dataset_name);
        it = cache.emplace(key, std::make_unique<ExmaTable>(
                                     ds.ref, exmaConfig(ds, mode)))
                 .first;
    }
    return *it->second;
}

std::vector<std::vector<Base>>
patterns(const Dataset &ds, u64 count, u64 len)
{
    return samplePatterns(ds.ref, count, len, 12345);
}

const LisaMeasurement &
lisaMeasurement(const std::string &dataset_name)
{
    static std::map<std::string, LisaMeasurement> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;

    const Dataset &ds = dataset(dataset_name);
    IpBwt ipbwt(ds.ref, ds.lisa_k);
    Lisa::Config cfg;
    cfg.group_symbols = std::min(8, ds.lisa_k / 2);
    cfg.leaf_size = std::max<u64>(
        64, static_cast<u64>(4096.0 * scale()));
    Lisa lisa(ipbwt, cfg);

    LisaStats stats;
    auto pats = patterns(ds, 400);
    for (const auto &p : pats)
        lisa.search(p, &stats);

    LisaMeasurement m;
    m.mean_error =
        stats.iterations
            ? static_cast<double>(stats.total_error) /
                  static_cast<double>(stats.iterations)
            : 0.0;
    m.extra_lines = m.mean_error * 12.0 / 64.0;
    m.error_samples = std::move(stats.error_samples);
    m.param_count = lisa.paramCount();
    it = cache.emplace(dataset_name, std::move(m)).first;
    return it->second;
}

double
cpuSearchMbases(const std::string &dataset_name)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;

    const Dataset &ds = dataset(dataset_name);
    const auto &lm = lisaMeasurement(dataset_name);
    // The CPU baseline runs LISA-21 (§V "Schemes"); its IP-BWT footprint
    // at this scale:
    const u64 footprint = std::max<u64>(
        u64{1} << 22, static_cast<u64>(ds.ref.size()) * 12);
    ChainSpec spec =
        cpuLisaSpec(footprint, ds.lisa_k, lm.extra_lines);
    spec.iterations = 30000;
    auto r = runChainWorkload(spec, DramConfig::ddr4_2400());
    const double mbases = r.mbasesPerSecond();
    cache.emplace(dataset_name, mbases);
    return mbases;
}

AcceleratorResult
exmaAccelRun(const std::string &dataset_name, bool two_stage,
             PagePolicy policy, u64 n_queries)
{
    const Dataset &ds = dataset(dataset_name);
    const ExmaTable &table = exmaTable(dataset_name, OccIndexMode::Mtl);
    if (n_queries == 0)
        n_queries = static_cast<u64>(600.0 * scale() * 4.0);
    AcceleratorConfig cfg;
    cfg.two_stage_scheduling = two_stage;
    // Keep the paper's cache-to-working-set pressure at reproduction
    // scale: the Table I 1MB/32KB caches face a 4.3GB base array and a
    // ~750MB index at 3 Gbp; shrink proportionally (floored so sets
    // stay sane). See EXPERIMENTS.md "scaling".
    const auto sizes = table.sizeReport();
    cfg.base_cache_bytes = std::clamp<u64>(sizes.bases_raw / 64,
                                           u64{8} << 10, u64{1} << 20);
    cfg.index_cache_bytes = std::clamp<u64>(sizes.index_bytes / 16,
                                            u64{2} << 10, u64{32} << 10);
    DramConfig dram = DramConfig::ddr4_2400();
    dram.page_policy = policy;
    ExmaAccelerator accel(table, cfg, dram);
    return accel.run(patterns(ds, n_queries));
}

double
fmSpeedup(const std::string &dataset_name)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(dataset_name);
    if (it != cache.end())
        return it->second;
    const double cpu = cpuSearchMbases(dataset_name);
    const auto accel =
        exmaAccelRun(dataset_name, true, PagePolicy::Dynamic);
    const double speedup =
        cpu > 0.0 ? accel.mbasesPerSecond() / cpu : 1.0;
    cache.emplace(dataset_name, speedup);
    return speedup;
}

} // namespace bench
} // namespace exma
