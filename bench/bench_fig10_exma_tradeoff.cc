/**
 * @file
 * Fig. 10 — the EXMA table's step-number trade-off:
 *  (a) component sizes vs k at paper scale (SA / index / incr / base),
 *  (b) CPU-baseline throughput of LISA-21 vs EXMA-14..17 and EXMA-15M
 *      (MTL index), using misprediction costs measured on the scaled
 *      tables.
 */

#include "bench_util.hh"

#include "baselines/cpu_model.hh"
#include "fmindex/size_model.hh"

using namespace exma;

namespace {

/** Mean Occ misprediction of a table, measured over random searches. */
double
measuredError(const ExmaTable &table, const Dataset &ds)
{
    auto pats = bench::patterns(ds, 200);
    SearchStats stats;
    for (const auto &p : pats)
        table.search(p, &stats);
    const u64 lookups = 2 * stats.kstep_iterations;
    return lookups ? static_cast<double>(stats.total_error) /
                         static_cast<double>(lookups)
                   : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 10", "EXMA table step-number trade-off");
    const Dataset &ds = bench::dataset("human");

    // (a) closed-form sizes at paper scale.
    {
        std::cout << "--- Fig. 10(a): EXMA table size vs step (3 Gbp) ---\n";
        TextTable t;
        t.header({"step", "SA", "index", "incr", "base", "total"});
        for (int k = 8; k <= 17; ++k) {
            auto s = exmaSizeBytes(3000000000ULL, k);
            t.row({std::to_string(k), TextTable::bytes(s.sa),
                   TextTable::bytes(s.index),
                   TextTable::bytes(s.increments),
                   TextTable::bytes(s.bases),
                   TextTable::bytes(s.total())});
        }
        bench::printTable(t, "10a_table_size_vs_step");
        std::cout << "paper: 15-step = 29.5GB, 16-step = 41.5GB "
                     "(+12GB).\n\n";
    }

    // (b) throughput on the CPU baseline.
    {
        std::cout << "--- Fig. 10(b): CPU-baseline throughput ---\n";
        const auto &lm = bench::lisaMeasurement("human");
        const double scale_up =
            3000000000.0 / static_cast<double>(ds.ref.size());
        const double lisa_err = lm.mean_error * scale_up;

        const ExmaTable &naive =
            bench::exmaTable("human", OccIndexMode::NaiveLearned);
        const ExmaTable &mtl = bench::exmaTable("human", OccIndexMode::Mtl);
        const double naive_err = measuredError(naive, ds) * scale_up;
        const double mtl_err = measuredError(mtl, ds) * scale_up;

        auto exma_fp = [&](int k) {
            return exmaSizeBytes(3000000000ULL, k).total() / 1e9;
        };
        std::vector<CpuScheme> schemes = {
            {"LISA-21", 21,
             lisaSizeBytes(3000000000ULL, 21).total() / 1e9, 0.6,
             lisa_err, false, false},
            {"EXMA-14", 14, exma_fp(14), 0.6, naive_err, false, false},
            {"EXMA-15", 15, exma_fp(15), 0.6, naive_err, false, false},
            {"EXMA-16", 16, exma_fp(16), 0.6, naive_err, false, false},
            {"EXMA-17", 17, exma_fp(17), 0.6, naive_err, false, false},
            {"EXMA-15M", 15, exma_fp(15), 0.3, mtl_err, false, false},
        };
        TextTable t;
        t.header({"scheme", "norm. throughput (x FM-1)", "vs LISA-21"});
        const double lisa_thr = cpuNormalizedThroughput(schemes[0]);
        for (const auto &s : schemes) {
            const double thr = cpuNormalizedThroughput(s);
            t.row({s.name, TextTable::num(thr, 2),
                   TextTable::num(thr / lisa_thr, 2)});
        }
        bench::printTable(t, "10b_cpu_throughput");
        std::cout << "measured mean Occ errors (scaled -> 3 Gbp): naive="
                  << TextTable::num(naive_err, 0)
                  << " mtl=" << TextTable::num(mtl_err, 0) << "\n";
        std::cout << "paper: EXMA-15 trails LISA-21 by 7.3%; EXMA-15M "
                     "(MTL) beats LISA-21 by 75% with half the "
                     "parameters.\n";
        std::cout << "index parameters: naive="
                  << naive.indexParamCount()
                  << " mtl=" << mtl.indexParamCount() << " lisa="
                  << lm.param_count << "\n";
    }
    return 0;
}
