/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: dataset
 * construction at reproduction scale, EXMA table building, CPU-baseline
 * and accelerator runs, and paper-style table printing.
 *
 * Scale: every harness runs at `EXMA_BENCH_SCALE` x the DESIGN.md
 * default dataset sizes (human 8 Mbp / picea 20 Mbp / pinus 31 Mbp).
 * The default bench scale is 0.25 so the full suite finishes in
 * minutes; set EXMA_BENCH_SCALE=1 for the full reproduction scale.
 */

#ifndef EXMA_BENCH_BENCH_UTIL_HH
#define EXMA_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "baselines/device_models.hh"
#include "common/table.hh"
#include "core/exma_table.hh"
#include "genome/reads.hh"
#include "genome/reference.hh"
#include "lisa/lisa.hh"

namespace exma {
namespace bench {

/** EXMA_BENCH_SCALE (default 0.25). */
double scale();

/**
 * Harness entry hook: consumes `--json <path>` from argv (falling back
 * to the EXMA_BENCH_JSON environment variable; argc/argv are compacted
 * in place so later argument parsing never re-sees the flag) and
 * remembers the harness name for the JSON report. Every harness calls
 * this first; with no JSON destination configured it is a no-op. The
 * report is written when the process exits normally.
 */
void init(int &argc, char **argv);

/**
 * The one implementation of the JSON-destination convention: consume
 * `--json <path>` / `--json=<path>` from argv (compacting it and
 * updating @p argc), falling back to EXMA_BENCH_JSON. Returns "" when
 * no destination is configured. init() uses this; harnesses with
 * their own argument parsing (bench_micro_kernels) call it directly.
 */
std::string jsonDestination(int &argc, char **argv);

/**
 * Scaled dataset (cached per process). When EXMA_REF_FASTA names a
 * FASTA file, its concatenated records replace the synthetic reference
 * for every dataset name (k values rescaled to the real size);
 * otherwise the synthetic generator runs at scale().
 */
const Dataset &dataset(const std::string &name);

/** Print a figure banner (and open a figure section in the report). */
void banner(const std::string &fig, const std::string &what);

/**
 * Print @p t to stdout and, when a JSON destination is configured,
 * record it under the current banner's figure section. Cells that
 * parse fully as numbers are emitted as JSON numbers.
 */
void printTable(const TextTable &t, const std::string &title = "");

/** Record a free-standing key/number pair in the current section. */
void note(const std::string &key, double value);

/** Geometric mean. */
double gmean(const std::vector<double> &v);

/** EXMA table config tuned for the scaled dataset. */
ExmaTable::Config exmaConfig(const Dataset &ds, OccIndexMode mode);

/** Build (and cache per dataset+mode) an EXMA table. */
const ExmaTable &exmaTable(const std::string &dataset_name,
                           OccIndexMode mode);

/** Wall-clock seconds exmaTable()'s build took (builds if needed) —
 *  the denominator of the persistent-index load-vs-build ratio. */
double exmaBuildSeconds(const std::string &dataset_name, OccIndexMode mode);

/** Error-free search patterns for throughput runs (101 bp seeds). */
std::vector<std::vector<Base>> patterns(const Dataset &ds, u64 count,
                                        u64 len = 101);

/** Measured LISA learned-index stats on a dataset (cached). */
struct LisaMeasurement
{
    double mean_error = 0.0;
    double extra_lines = 0.0; ///< 12-byte entries -> 64B lines
    std::vector<double> error_samples;
    u64 param_count = 0;
};
const LisaMeasurement &lisaMeasurement(const std::string &dataset_name);

/** CPU-baseline (software LISA-21) search throughput via the chain
 *  engine, in Mbase/s. */
double cpuSearchMbases(const std::string &dataset_name);

/** Full-EXMA accelerator throughput on a dataset, in Mbase/s. */
AcceleratorResult exmaAccelRun(const std::string &dataset_name,
                               bool two_stage, PagePolicy policy,
                               u64 n_queries = 0);

/** FM-search speedup of full EXMA over the CPU baseline (cached). */
double fmSpeedup(const std::string &dataset_name);

} // namespace bench
} // namespace exma

#endif // EXMA_BENCH_BENCH_UTIL_HH
