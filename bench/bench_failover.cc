/**
 * @file
 * Kill-loop soak for the replicated serving tier: a killer thread
 * murders one random replica every EXMA_KILL_EVERY_S seconds (default
 * 2) while the main thread serves batch after batch for EXMA_SOAK_S
 * seconds (default 6; the nightly job runs 60). With R=2 replicas the
 * contract is zero degradation: every batch's hit set must stay
 * identical to the monolithic table's, with nothing flagged degraded —
 * failover machinery firing is expected and tallied, wrong answers are
 * fatal.
 */

#include "bench_util.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/rng.hh"
#include "route/shard_router.hh"

using namespace exma;

namespace {

double
envSeconds(const char *name, double fallback)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup,
    // before any worker thread exists; nothing writes the env.
    const char *env = std::getenv(name);
    const double v = env && *env ? std::atof(env) : fallback;
    return v > 0.0 ? v : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const double soak_s = envSeconds("EXMA_SOAK_S", 6.0);
    const double kill_every_s = envSeconds("EXMA_KILL_EVERY_S", 2.0);
    bench::banner("Failover soak",
                  "replica killed every " +
                      TextTable::num(kill_every_s, 1) + " s for " +
                      TextTable::num(soak_s, 0) +
                      " s of continuous serving (human dataset)");

    const Dataset &ds = bench::dataset("human");
    const ExmaTable &table = bench::exmaTable("human", OccIndexMode::Mtl);
    const u64 n_queries =
        std::max<u64>(128, static_cast<u64>(1000.0 * bench::scale()));
    const auto queries = bench::patterns(ds, n_queries);
    const u64 query_len = queries.empty() ? 101 : queries[0].size();

    std::vector<std::vector<u64>> expect_hits;
    expect_hits.reserve(queries.size());
    for (const auto &q : queries) {
        auto hits = table.locateAll(table.search(q));
        std::sort(hits.begin(), hits.end());
        expect_hits.push_back(std::move(hits));
    }

    const auto plan = ShardPlan::kmerPrefix(ds.ref, 4, query_len);
    RouterConfig rcfg;
    rcfg.table = bench::exmaConfig(ds, OccIndexMode::Mtl);
    rcfg.failover.replicas = 2;
    rcfg.failover.supervisor_interval_ms = 5;
    rcfg.failover.retry_backoff_ms = 1;
    const ShardRouter router(ds.ref, plan, rcfg);

    std::atomic<bool> stop{false};
    std::atomic<u64> kills{0};
    std::thread killer([&] {
        Rng rng(20260808);
        while (!stop.load(std::memory_order_relaxed)) {
            const auto slept_until =
                std::chrono::steady_clock::now() +
                std::chrono::duration<double>(kill_every_s);
            while (!stop.load(std::memory_order_relaxed) &&
                   std::chrono::steady_clock::now() < slept_until)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            if (stop.load(std::memory_order_relaxed))
                break;
            ReplicaSet &set =
                router.replicaSet(rng.below(router.shardCount()));
            set.killReplica(static_cast<unsigned>(rng.below(set.size())));
            kills.fetch_add(1, std::memory_order_relaxed);
        }
    });

    u64 batches = 0;
    u64 bases = 0;
    double serve_s = 0.0;
    FailoverStats fired;
    bool match = true;
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() < soak_s) {
        const RoutedResult r = router.search(queries);
        ++batches;
        bases += r.bases;
        serve_s += r.seconds;
        fired += r.failover;
        if (r.hits != expect_hits || r.degraded_queries != 0) {
            match = false;
            break;
        }
    }
    stop.store(true, std::memory_order_relaxed);
    killer.join();

    const double mbases =
        serve_s > 0.0 ? static_cast<double>(bases) / serve_s / 1e6 : 0.0;
    bench::note("soak_s", soak_s);
    bench::note("soak_batches", static_cast<double>(batches));
    bench::note("soak_kills", static_cast<double>(kills.load()));
    bench::note("soak_respawns", static_cast<double>(fired.respawns));
    bench::note("soak_retries", static_cast<double>(fired.retries));
    bench::note("soak_worker_down", static_cast<double>(fired.worker_down));
    bench::note("mbases_per_s_soak", mbases);

    TextTable t;
    t.header({"batches", "kills", "respawns", "retries", "worker_down",
              "Mbases/s", "match"});
    t.row({std::to_string(batches), std::to_string(kills.load()),
           std::to_string(fired.respawns), std::to_string(fired.retries),
           std::to_string(fired.worker_down), TextTable::num(mbases, 2),
           match ? "yes" : "NO"});
    bench::printTable(t, "failover soak");
    std::cout << "\n(" << n_queries << "-query batches served "
              << "back-to-back through 4 shards x 2 replicas while the "
                 "killer thread works; any lost, duplicated or degraded "
                 "query fails the run. Set EXMA_SOAK_S / "
                 "EXMA_KILL_EVERY_S to stretch the soak.)\n";
    if (!match) {
        std::cerr << "FATAL: soak batch " << batches
                  << " diverged from the single-table reference (or "
                     "came back degraded) despite R=2 replicas\n";
        return 1;
    }
    return 0;
}
