/**
 * @file
 * Fig. 1 — execution-time breakdown (FM-Index / DynPro / Other) of
 * genome analysis applications: read alignment and assembly for
 * Illumina / PacBio / ONT reads, annotation, and reference-based
 * compression. The operation counts come from real runs of the kernels
 * in src/apps; the CPU cost model converts them to time fractions.
 */

#include "bench_util.hh"

#include "apps/aligner.hh"
#include "apps/annotator.hh"
#include "apps/assembler.hh"
#include "apps/compressor.hh"

using namespace exma;

namespace {

AppCounts
alignmentCounts(const std::vector<Base> &ref, const FmdIndex &fmd,
                const ErrorProfile &profile, bool long_reads)
{
    ReadSimSpec spec;
    spec.read_len = long_reads ? 600 : 101;
    spec.long_reads = long_reads;
    spec.max_reads =
        std::max<u64>(20, static_cast<u64>(60.0 * bench::scale() * 4));
    spec.seed = 7;
    auto reads = simulateReads(ref, profile, spec);
    AlignerParams params;
    params.min_seed_len = long_reads ? 13 : 17;
    return alignReads(ref, fmd, reads, params).counts;
}

AppCounts
assemblyCounts(const std::vector<Base> &ref, const ErrorProfile &profile,
               bool long_reads)
{
    ReadSimSpec spec;
    spec.read_len = long_reads ? 600 : 101;
    spec.long_reads = long_reads;
    spec.max_reads =
        std::max<u64>(16, static_cast<u64>(40.0 * bench::scale() * 4));
    spec.seed = 9;
    auto reads = simulateReads(ref, profile, spec);
    AssemblerParams params;
    params.min_overlap = long_reads ? 45 : 31;
    params.error_correct = long_reads; // FM-Index error correction [33]
    return assembleOverlaps(reads, params).counts;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 1",
                  "execution-time breakdown of genome analysis "
                  "(FM-Index vs DynPro vs Other)");

    const Dataset &ds = bench::dataset("human");
    FmdIndex fmd(ds.ref);
    FmIndex fm(ds.ref);

    TextTable t;
    t.header({"app", "FM-Index%", "DynPro%", "Other%"});
    auto emit = [&](const std::string &name, const AppCounts &counts) {
        auto b = cpuBreakdown(name, counts);
        t.row({name, TextTable::num(100 * b.fmFraction(), 1),
               TextTable::num(100 * b.dpFraction(), 1),
               TextTable::num(100 * (1 - b.fmFraction() - b.dpFraction()),
                              1)});
    };

    emit("Illumina-alignment",
         alignmentCounts(ds.ref, fmd, illuminaProfile(), false));
    emit("Illumina-assembly",
         assemblyCounts(ds.ref, illuminaProfile(), false));
    emit("PacBio-alignment",
         alignmentCounts(ds.ref, fmd, pacbioProfile(), true));
    emit("PacBio-assembly", assemblyCounts(ds.ref, pacbioProfile(), true));
    emit("Nanopore-alignment",
         alignmentCounts(ds.ref, fmd, ontProfile(), true));
    emit("Nanopore-assembly", assemblyCounts(ds.ref, ontProfile(), true));

    {
        auto queries = bench::patterns(ds, 40, 2000);
        emit("annotate", annotate(fm, queries, 20).counts);
    }
    {
        // Compress a mutated copy of a reference slice.
        std::vector<Base> target(ds.ref.begin(),
                                 ds.ref.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         std::min<u64>(ds.ref.size(),
                                                       200000)));
        Rng rng(5);
        for (size_t i = 0; i < target.size() / 500; ++i) {
            u64 pos = rng.below(target.size());
            target[pos] = static_cast<Base>((target[pos] + 1) & 3);
        }
        emit("compress", compressAgainstReference(fm, target).counts);
    }

    bench::printTable(t);
    std::cout << "\npaper: FM-Index searches cost 31%~81% of execution "
                 "time across these applications.\n";
    return 0;
}
