/**
 * @file
 * Fig. 20 — energy of genome analysis with EXMA, normalised to the
 * CPU-only run, split into DRAM-chip / DRAM-IO / EXMA-dynamic /
 * EXMA-leakage / CPU components.
 */

#include "bench_util.hh"

#include "apps/aligner.hh"
#include "apps/annotator.hh"
#include "apps/assembler.hh"
#include "apps/compressor.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 20", "energy reduction of EXMA in genome "
                             "analysis (normalised to CPU)");

    TextTable t;
    t.header({"app/dataset", "DRAM-chip", "DRAM-IO", "EXMA-dyn",
              "EXMA-leak", "CPU", "total"});
    std::vector<double> totals;

    for (const std::string &dsname : datasetNames()) {
        const Dataset &ds = bench::dataset(dsname);
        const double fm_sp = bench::fmSpeedup(dsname);
        const auto accel =
            bench::exmaAccelRun(dsname, true, PagePolicy::Dynamic);
        const double exma_w = accel.accelPowerW();
        const double dram_w = accel.dram_energy.avg_power_w;

        FmdIndex fmd(ds.ref);
        ReadSimSpec spec;
        spec.read_len = 101;
        spec.max_reads = 32;
        auto reads = simulateReads(ds.ref, illuminaProfile(), spec);
        auto counts = alignReads(ds.ref, fmd, reads).counts;

        auto b = cpuBreakdown("align", counts);
        auto cpu_e = cpuAppEnergy(b);
        auto ex_e = exmaAppEnergy(b, fm_sp, exma_w, dram_w);
        const double denom = cpu_e.total();
        t.row({"Illumina-align/" + dsname,
               TextTable::num(ex_e.dram_chip_j / denom, 3),
               TextTable::num(ex_e.dram_io_j / denom, 3),
               TextTable::num(ex_e.exma_dyn_j / denom, 3),
               TextTable::num(ex_e.exma_leak_j / denom, 3),
               TextTable::num(ex_e.cpu_j / denom, 3),
               TextTable::num(ex_e.total() / denom, 3)});
        totals.push_back(ex_e.total() / denom);

        FmIndex fm(ds.ref);
        auto queries = bench::patterns(ds, 30, 2000);
        auto ann = annotate(fm, queries, 20);
        auto ab = cpuBreakdown("annotate", ann.counts);
        auto cpu_a = cpuAppEnergy(ab);
        auto ex_a = exmaAppEnergy(ab, fm_sp, exma_w, dram_w);
        t.row({"annotate/" + dsname,
               TextTable::num(ex_a.dram_chip_j / cpu_a.total(), 3),
               TextTable::num(ex_a.dram_io_j / cpu_a.total(), 3),
               TextTable::num(ex_a.exma_dyn_j / cpu_a.total(), 3),
               TextTable::num(ex_a.exma_leak_j / cpu_a.total(), 3),
               TextTable::num(ex_a.cpu_j / cpu_a.total(), 3),
               TextTable::num(ex_a.total() / cpu_a.total(), 3)});
        totals.push_back(ex_a.total() / cpu_a.total());
    }
    bench::printTable(t);
    std::cout << "\ngmean normalised energy: "
              << TextTable::num(bench::gmean(totals), 3)
              << "  (paper: EXMA cuts total energy by 61%~70%, i.e. "
                 "normalised 0.30~0.39, with the accelerator itself "
                 "under 3% of the total).\n";
    return 0;
}
