/**
 * @file
 * Fig. 19 — end-to-end application speedup of EXMA over the CPU for
 * alignment/assembly (Illumina, PacBio, Nanopore), annotation and
 * compression across the three datasets: Amdahl over the measured
 * FM-Index share of each app, with the FM phase accelerated by the
 * dataset's measured search-throughput gain.
 */

#include "bench_util.hh"

#include "apps/aligner.hh"
#include "apps/annotator.hh"
#include "apps/assembler.hh"
#include "apps/compressor.hh"

using namespace exma;

namespace {

struct AppRun
{
    std::string name;
    AppCounts counts;
};

std::vector<AppRun>
runApps(const Dataset &ds)
{
    std::vector<AppRun> runs;
    FmdIndex fmd(ds.ref);
    FmIndex fm(ds.ref);

    auto align_counts = [&](const ErrorProfile &p, bool long_reads) {
        ReadSimSpec spec;
        spec.read_len = long_reads ? 600 : 101;
        spec.long_reads = long_reads;
        spec.max_reads = 32;
        auto reads = simulateReads(ds.ref, p, spec);
        AlignerParams params;
        params.min_seed_len = long_reads ? 13 : 17;
        return alignReads(ds.ref, fmd, reads, params).counts;
    };
    auto assemble_counts = [&](const ErrorProfile &p, bool long_reads) {
        ReadSimSpec spec;
        spec.read_len = long_reads ? 600 : 101;
        spec.long_reads = long_reads;
        spec.max_reads = 24;
        auto reads = simulateReads(ds.ref, p, spec);
        AssemblerParams params;
        params.min_overlap = long_reads ? 45 : 31;
        params.error_correct = long_reads;
        return assembleOverlaps(reads, params).counts;
    };

    runs.push_back({"Illumina-align", align_counts(illuminaProfile(),
                                                   false)});
    runs.push_back({"Illumina-assem", assemble_counts(illuminaProfile(),
                                                      false)});
    runs.push_back({"Nanopore-align", align_counts(ontProfile(), true)});
    runs.push_back({"Nanopore-assem", assemble_counts(ontProfile(),
                                                      true)});
    runs.push_back({"PacBio-align", align_counts(pacbioProfile(), true)});
    runs.push_back({"PacBio-assem", assemble_counts(pacbioProfile(),
                                                    true)});
    {
        auto queries = bench::patterns(ds, 30, 2000);
        runs.push_back({"annotate", annotate(fm, queries, 20).counts});
    }
    {
        std::vector<Base> target(
            ds.ref.begin(),
            ds.ref.begin() + static_cast<std::ptrdiff_t>(
                                 std::min<u64>(ds.ref.size(), 150000)));
        Rng rng(5);
        for (size_t i = 0; i < target.size() / 500; ++i) {
            u64 pos = rng.below(target.size());
            target[pos] = static_cast<Base>((target[pos] + 1) & 3);
        }
        runs.push_back(
            {"compress", compressAgainstReference(fm, target).counts});
    }
    return runs;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 19", "application speedup with EXMA "
                             "(normalised to CPU)");
    TextTable t;
    t.header({"app", "human", "picea", "pinus"});

    std::map<std::string, std::map<std::string, double>> speedups;
    for (const std::string &dsname : datasetNames()) {
        const Dataset &ds = bench::dataset(dsname);
        const double fm_sp = bench::fmSpeedup(dsname);
        for (const auto &run : runApps(ds)) {
            auto b = cpuBreakdown(run.name, run.counts);
            speedups[run.name][dsname] = exmaAppSpeedup(b, fm_sp);
        }
    }

    std::vector<double> all;
    for (const auto &[app, per_ds] : speedups) {
        std::vector<std::string> row = {app};
        for (const std::string &dsname : datasetNames()) {
            const double s = per_ds.at(dsname);
            row.push_back(TextTable::num(s, 2));
            all.push_back(s);
        }
        t.row(row);
    }
    t.row({"gmean", "", "",
           TextTable::num(bench::gmean(all), 2)});
    bench::printTable(t);
    std::cout << "\npaper: EXMA improves genome-analysis performance by "
                 "2.5x~3.2x across datasets (FM share caps the Amdahl "
                 "gain).\n";
    return 0;
}
