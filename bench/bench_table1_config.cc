/**
 * @file
 * Table I — the EXMA accelerator's hardware configuration: component
 * inventory with area/energy, plus a sanity run proving the modelled
 * energies are the ones the simulator charges.
 */

#include "bench_util.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table I", "hardware configuration of EXMA");

    AcceleratorConfig cfg;
    TextTable t;
    t.header({"component", "description", "area (mm2)", "energy/op (pJ)"});
    t.row({"Infer. engine", "4 8x8 PE arrays", "0.512",
           TextTable::num(cfg.infer_pj, 2)});
    t.row({"Sch. queue", "SRAM CAM, 128-bit x 512", "0.023",
           TextTable::num(cfg.cam_pj, 2)});
    t.row({"Index cache", "SRAM, 32KB, 16-way", "0.084",
           TextTable::num(cfg.index_cache_pj, 2)});
    t.row({"Base cache", "eDRAM, 1MB, 8-way", "0.667",
           TextTable::num(cfg.base_cache_pj, 2)});
    t.row({"De/compress", "32 64-bit adders", "0.091",
           TextTable::num(cfg.decompress_pj, 2)});
    t.row({"Sch. & row", "2-stage sch. & dyn. page", "0.035",
           TextTable::num(cfg.sched_pj, 2)});
    t.row({"DMA ctrl", "adopted from [52]", "0.21",
           TextTable::num(cfg.dma_pj, 2)});
    bench::printTable(t);
    std::cout << "\naccelerator total: area 1.62 mm2, leakage "
              << TextTable::num(cfg.leakage_mw, 1) << " mW @ "
              << TextTable::num(cfg.clock_mhz, 0) << " MHz\n";

    DramConfig mem = DramConfig::ddr4_2400();
    std::cout << "\nDRAM main memory: DDR4-2400, " << mem.channels
              << " channels, " << mem.dimms_per_channel
              << " DIMMs/channel, " << mem.ranks_per_dimm
              << " ranks/DIMM, " << mem.bankgroups_per_rank
              << " bank groups/rank, " << mem.banks_per_bankgroup
              << " banks/bank group, " << mem.chips_per_rank
              << " chips/rank, row " << mem.row_bytes << "B, tRCD-tCAS-tRP "
              << mem.tRCD << "-" << mem.tCL << "-" << mem.tRP << "\n";
    std::cout << "peak bandwidth: "
              << TextTable::num(mem.peakBw() / 1e9, 1) << " GB/s\n";

    // Sanity: a tiny accelerator run charges exactly these energies.
    const ExmaTable &table = bench::exmaTable("human", OccIndexMode::Mtl);
    const Dataset &ds = bench::dataset("human");
    ExmaAccelerator accel(table, cfg, mem);
    auto r = accel.run(bench::patterns(ds, 50));
    std::cout << "\nsanity run: " << r.queries << " queries, "
              << TextTable::num(r.mbasesPerSecond(), 1)
              << " Mbase/s, accelerator power "
              << TextTable::num(r.accelPowerW(), 3) << " W (paper: ~0.89 W "
              << "when active)\n";
    return 0;
}
