/**
 * @file
 * Fig. 21 — DRAM bandwidth utilization of ASIC (FM-1, close page),
 * GPU (LISA-21, row fetches), MEDAL (chip-level parallelism throttled
 * by the address bus) and EXMA (dynamic page policy).
 */

#include "bench_util.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 21", "bandwidth utilization (pinus)");
    const Dataset &ds = bench::dataset("pinus");
    const u64 footprint = std::max<u64>(u64{1} << 22,
                                        static_cast<u64>(ds.ref.size()) *
                                            5);
    const DramConfig mem = DramConfig::ddr4_2400();

    TextTable t;
    t.header({"device", "bandwidth util %", "row-hit rate %"});

    {
        ChainSpec asic = asicFm1Spec(footprint);
        asic.iterations = 6000;
        auto r = runChainWorkload(asic, mem);
        t.row({"ASIC (FM-1)", TextTable::num(100 * r.bw_util, 1),
               TextTable::num(100 * r.row_hit_rate, 1)});
    }
    {
        const auto &lm = bench::lisaMeasurement("pinus");
        ChainSpec gpu = gpuLisaSpec(footprint, ds.lisa_k, lm.extra_lines);
        gpu.iterations = 6000;
        auto r = runChainWorkload(gpu, mem);
        t.row({"GPU (LISA)", TextTable::num(100 * r.bw_util, 1),
               TextTable::num(100 * r.row_hit_rate, 1)});
    }
    {
        ChainSpec medal = medalSpec(footprint);
        medal.iterations = 30000;
        auto r = runChainWorkload(medal, mem);
        t.row({"MEDAL", TextTable::num(100 * r.bw_util, 1),
               TextTable::num(100 * r.row_hit_rate, 1)});
    }
    {
        auto r = bench::exmaAccelRun("pinus", true, PagePolicy::Dynamic);
        t.row({"EXMA", TextTable::num(100 * r.bandwidth_utilization, 1),
               TextTable::num(100 * r.dram_row_hit_rate, 1)});
    }
    bench::printTable(t);
    std::cout << "\npaper: ASIC 26%, GPU higher, MEDAL 67% (address-bus "
                 "bound), EXMA 91% (dynamic page policy).\n";
    return 0;
}
