/**
 * @file
 * Fig. 23 — CHAIN compression on pinus: LISA-21 original vs B∆I, and
 * EXMA-15 original vs CHAIN, by component (BWT / increments / bases /
 * index). Measured on the real scaled arrays plus the closed-form
 * paper-scale projection.
 */

#include "bench_util.hh"

#include <cstring>

#include "compress/bdi.hh"
#include "compress/chain.hh"
#include "fmindex/size_model.hh"
#include "lisa/ip_bwt.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 23", "CHAIN vs B∆I on pinus");
    const Dataset &ds = bench::dataset("pinus");

    // Measured at reproduction scale.
    const ExmaTable &table = bench::exmaTable("pinus", OccIndexMode::Mtl);
    const auto sz = table.sizeReport();

    // LISA-21 data image: serialise IP-BWT entries to bytes for B∆I.
    IpBwt ipbwt(ds.ref, ds.lisa_k);
    std::vector<u8> lisa_bytes;
    lisa_bytes.reserve(ipbwt.rows() * 12);
    for (u64 i = 0; i < ipbwt.rows(); ++i) {
        const u64 km = ipbwt.kmer5(i);
        const u32 n = static_cast<u32>(ipbwt.pairedRow(i));
        for (int b = 0; b < 8; ++b)
            lisa_bytes.push_back(static_cast<u8>(km >> (8 * b)));
        for (int b = 0; b < 4; ++b)
            lisa_bytes.push_back(static_cast<u8>(n >> (8 * b)));
    }
    const double lisa_raw = static_cast<double>(lisa_bytes.size());
    const double lisa_bdi = bdiCompressRatio(lisa_bytes) * lisa_raw;

    TextTable t;
    t.header({"structure", "component", "original", "compressed",
              "ratio"});
    t.row({"LISA-" + std::to_string(ds.lisa_k), "IP-BWT",
           TextTable::bytes(lisa_raw), TextTable::bytes(lisa_bdi),
           TextTable::num(lisa_bdi / lisa_raw, 2)});
    t.row({"EXMA-" + std::to_string(ds.exma_k), "increments",
           TextTable::bytes(static_cast<double>(sz.increments_raw)),
           TextTable::bytes(static_cast<double>(sz.increments_chain)),
           TextTable::num(static_cast<double>(sz.increments_chain) /
                              static_cast<double>(sz.increments_raw),
                          2)});
    t.row({"EXMA-" + std::to_string(ds.exma_k), "bases",
           TextTable::bytes(static_cast<double>(sz.bases_raw)),
           TextTable::bytes(static_cast<double>(sz.bases_chain)),
           TextTable::num(static_cast<double>(sz.bases_chain) /
                              static_cast<double>(
                                  std::max<u64>(1, sz.bases_raw)),
                          2)});
    t.row({"EXMA-" + std::to_string(ds.exma_k), "BWT+index",
           TextTable::bytes(static_cast<double>(sz.bwt_bytes +
                                                sz.index_bytes)),
           TextTable::bytes(static_cast<double>(sz.bwt_bytes +
                                                sz.index_bytes)),
           "1.00"});
    t.row({"EXMA-" + std::to_string(ds.exma_k), "total",
           TextTable::bytes(static_cast<double>(sz.totalRaw())),
           TextTable::bytes(static_cast<double>(sz.totalChain())),
           TextTable::num(static_cast<double>(sz.totalChain()) /
                              static_cast<double>(sz.totalRaw()),
                          2)});
    bench::printTable(t);

    // Paper-scale projection (31 Gbp) using the measured ratios.
    const double chain_ratio =
        static_cast<double>(sz.increments_chain) /
        static_cast<double>(sz.increments_raw);
    auto full = exmaSizeBytes(31000000000ULL, 15);
    auto full_lisa = lisaSizeBytes(31000000000ULL, 21);
    std::cout << "\nprojected to 31 Gbp pinus:\n"
              << "  LISA-21 original "
              << TextTable::bytes(full_lisa.total()) << " -> B∆I "
              << TextTable::bytes(full_lisa.total() * lisa_bdi /
                                  lisa_raw)
              << "\n  EXMA-15 original "
              << TextTable::bytes(full.total() - full.sa) << " -> CHAIN "
              << TextTable::bytes((full.increments + full.bases) *
                                      chain_ratio +
                                  full.index + full.bwt)
              << "\n";
    std::cout << "paper: B∆I halves LISA (304->152GB); CHAIN compresses "
                 "EXMA-15 to ~25% (160->40GB).\n";
    return 0;
}
