/**
 * @file
 * google-benchmark microkernels for the PR 3 rank machinery: the old
 * byte-per-symbol checkpoint+scan Occ versus the packed interleaved
 * PackedRank, and branchy std::lower_bound versus the shared branchless
 * helper on increment-list-shaped inputs. Emits JSON via the bench
 * suite's `--json` convention (see bench_gbench_main.hh).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "bench_gbench_main.hh"
#include "common/branchless.hh"
#include "common/rng.hh"
#include "core/exma_table.hh"
#include "fmindex/packed_rank.hh"
#include "fmindex/suffix_array.hh"
#include "genome/reference.hh"
#include "io/format.hh"
#include "persist/index_io.hh"

namespace {

using namespace exma;

/** BWT (0..4 coding) of a 1 Mbp synthetic reference. */
const std::vector<u8> &
microBwt()
{
    static const std::vector<u8> bwt = [] {
        ReferenceSpec spec;
        spec.length = 1 << 20;
        spec.seed = 3;
        const std::vector<Base> ref = generateReference(spec);
        const std::vector<SaIndex> sa = buildSuffixArray(ref);
        std::vector<u8> out(sa.size());
        for (u64 i = 0; i < sa.size(); ++i)
            out[i] = sa[i] == 0 ? u8{0}
                                : static_cast<u8>(ref[sa[i] - 1] + 1);
        return out;
    }();
    return bwt;
}

/**
 * The pre-PR 3 FmIndex rank layout: byte-per-symbol BWT plus a separate
 * checkpoint array every 64 positions, scanned to the queried offset.
 */
struct ScalarRank
{
    static constexpr u32 kSample = 64;

    explicit ScalarRank(const std::vector<u8> &bwt)
        : bwt_(bwt)
    {
        const u64 n_buckets = (bwt.size() + kSample - 1) / kSample;
        ckpt_.assign((n_buckets + 1) * 4, 0);
        u32 running[4] = {};
        for (u64 i = 0; i < bwt.size(); ++i) {
            if (i % kSample == 0)
                for (int c = 0; c < 4; ++c)
                    ckpt_[(i / kSample) * 4 + static_cast<u64>(c)] =
                        running[c];
            if (bwt[i] != 0)
                ++running[bwt[i] - 1];
        }
        for (int c = 0; c < 4; ++c)
            ckpt_[n_buckets * 4 + static_cast<u64>(c)] = running[c];
    }

    u64
    occ(u8 sym, u64 i) const
    {
        const u64 bucket = i / kSample;
        u64 r = ckpt_[bucket * 4 + (sym - 1)];
        for (u64 j = bucket * kSample; j < i; ++j)
            r += (bwt_[j] == sym);
        return r;
    }

    const std::vector<u8> &bwt_;
    std::vector<u32> ckpt_;
};

std::vector<std::pair<u8, u64>>
rankQueries(u64 n_rows, u64 count)
{
    Rng rng(17);
    std::vector<std::pair<u8, u64>> q(count);
    for (auto &p : q) {
        p.first = static_cast<u8>(1 + rng.below(4));
        p.second = rng.below(n_rows + 1);
    }
    return q;
}

void
BM_ScalarRankOcc(benchmark::State &state)
{
    const ScalarRank rank(microBwt());
    const auto queries = rankQueries(microBwt().size(), 4096);
    size_t i = 0;
    for (auto _ : state) {
        const auto &[sym, pos] = queries[i++ % queries.size()];
        benchmark::DoNotOptimize(rank.occ(sym, pos));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarRankOcc);

void
BM_PackedRankOcc(benchmark::State &state)
{
    const PackedRank rank{std::span<const u8>(microBwt())};
    const auto queries = rankQueries(rank.size(), 4096);
    size_t i = 0;
    for (auto _ : state) {
        const auto &[sym, pos] = queries[i++ % queries.size()];
        benchmark::DoNotOptimize(rank.occ(sym, pos));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedRankOcc);

/** Sorted u32 lists shaped like k-mer increment lists. */
std::vector<u32>
sortedList(u64 size, u64 seed)
{
    Rng rng(seed);
    std::vector<u32> v(size);
    u32 cur = 0;
    for (auto &x : v)
        x = (cur += 1 + static_cast<u32>(rng.below(97)));
    return v;
}

void
BM_BranchyLowerBound(benchmark::State &state)
{
    const auto list = sortedList(static_cast<u64>(state.range(0)), 23);
    const u32 top = list.empty() ? 1 : list.back() + 1;
    Rng rng(29);
    std::vector<u32> keys(4096);
    for (auto &k : keys)
        k = static_cast<u32>(rng.below(top));
    size_t i = 0;
    for (auto _ : state) {
        const u32 key = keys[i++ % keys.size()];
        benchmark::DoNotOptimize(
            std::lower_bound(list.begin(), list.end(), key) -
            list.begin());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchyLowerBound)->Arg(4)->Arg(64)->Arg(4096)->Arg(1 << 16);

void
BM_BranchlessLowerBound(benchmark::State &state)
{
    const auto list = sortedList(static_cast<u64>(state.range(0)), 23);
    const u32 top = list.empty() ? 1 : list.back() + 1;
    Rng rng(29);
    std::vector<u32> keys(4096);
    for (auto &k : keys)
        k = static_cast<u32>(rng.below(top));
    size_t i = 0;
    for (auto _ : state) {
        const u32 key = keys[i++ % keys.size()];
        benchmark::DoNotOptimize(
            branchlessLowerBound(list.data(), list.data() + list.size(),
                                 key) -
            list.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchlessLowerBound)
    ->Arg(4)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(1 << 16);

// ---------------------------------------------------------------------------
// Persistent-index IO: serialize / mmap-load a 1 Mbp ExmaTable's
// companion files (.exma.occ/.sa/.pac). The load number is the per-
// restart cost the persistent format reduces table rebuilds to; the
// save number is the one-time build-step cost.
// ---------------------------------------------------------------------------

/** A small table worth saving (Exact mode: IO cost, not training). */
const ExmaTable &
microTable()
{
    static const ExmaTable table = [] {
        ReferenceSpec spec;
        spec.length = 1 << 20;
        spec.seed = 3;
        ExmaTable::Config cfg;
        cfg.k = 6;
        cfg.mode = OccIndexMode::Exact;
        return ExmaTable(generateReference(spec), cfg);
    }();
    return table;
}

std::string
microStem()
{
    static const std::string stem = [] {
        const std::filesystem::path dir =
            std::filesystem::temp_directory_path() / "exma_bench_rank";
        std::filesystem::create_directories(dir);
        return (dir / "table").string();
    }();
    return stem;
}

void
BM_TableFilesSave(benchmark::State &state)
{
    const ExmaTable &table = microTable();
    for (auto _ : state)
        saveTableFiles(table, microStem());
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(
            std::filesystem::file_size(microStem() + kExtOcc) +
            std::filesystem::file_size(microStem() + kExtSa) +
            std::filesystem::file_size(microStem() + kExtPac)));
}
BENCHMARK(BM_TableFilesSave);

void
BM_TableFilesLoad(benchmark::State &state)
{
    saveTableFiles(microTable(), microStem());
    const int64_t bytes = static_cast<int64_t>(
        std::filesystem::file_size(microStem() + kExtOcc) +
        std::filesystem::file_size(microStem() + kExtSa) +
        std::filesystem::file_size(microStem() + kExtPac));
    for (auto _ : state) {
        const LoadedExmaTable loaded = loadTableFiles(microStem());
        benchmark::DoNotOptimize(loaded.table->rows());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            bytes);
}
BENCHMARK(BM_TableFilesLoad);

} // namespace

int
main(int argc, char **argv)
{
    return exma::bench::googleBenchmarkMain(argc, argv);
}
