#!/usr/bin/env python3
"""Gate bench JSON reports against a committed baseline.

Compares the throughput metrics of a freshly produced bench report
(e.g. the bench-smoke job's BENCH_bench_scaling.json) against a
baseline committed under bench/results/, and exits non-zero when any
metric regresses by more than the tolerance. Metrics are the
`notes` entries whose key starts with --metric-prefix (default
`mbases_per_s`, i.e. throughput — higher is better); build times and
other lower-is-better notes are deliberately not gated, since they are
far noisier on shared runners.

Exit codes:
  0  no regression
  1  at least one metric regressed, or a baseline metric disappeared
  2  bad invocation / unreadable report / scale mismatch

Refreshing the baseline is documented in bench/results/README.md.
"""

import argparse
import json
import sys


def load_report(path):
    """Load one bench JSON report; returns (scale, {metric: value})."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bench report {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    metrics = {}
    for fig in doc.get("figures", []):
        for key, value in fig.get("notes", {}).items():
            if isinstance(value, (int, float)):
                metrics[key] = float(value)
    return doc.get("scale"), metrics


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when bench throughput regresses vs a baseline.")
    parser.add_argument("--current", required=True,
                        help="bench JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop before failing "
                             "(default 0.25 = -25%%, absorbs runner noise)")
    parser.add_argument("--metric-prefix", default="mbases_per_s",
                        help="gate notes whose key starts with this "
                             "(default: mbases_per_s)")
    parser.add_argument("--allow-scale-mismatch", action="store_true",
                        help="compare reports taken at different "
                             "EXMA_BENCH_SCALE values (normally an error: "
                             "throughput at different scales is not "
                             "comparable)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    cur_scale, current = load_report(args.current)
    base_scale, baseline = load_report(args.baseline)
    if cur_scale != base_scale and not args.allow_scale_mismatch:
        print(f"error: scale mismatch: current ran at {cur_scale}, "
              f"baseline at {base_scale}; refresh the baseline or pass "
              f"--allow-scale-mismatch", file=sys.stderr)
        return 2

    gated = {k: v for k, v in baseline.items()
             if k.startswith(args.metric_prefix)}
    if not gated:
        print(f"error: baseline {args.baseline} holds no "
              f"'{args.metric_prefix}*' metrics", file=sys.stderr)
        return 2

    failures = []
    print(f"{'metric':<28} {'baseline':>10} {'current':>10} {'delta':>8}")
    for key in sorted(gated):
        base = gated[key]
        if key not in current:
            # A vanished metric means the sweep silently shrank — the
            # gate must not reward deleting the benchmark.
            print(f"{key:<28} {base:>10.2f} {'MISSING':>10} {'':>8}")
            failures.append(f"{key}: present in baseline but missing "
                            f"from current report")
            continue
        cur = current[key]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if base > 0 and delta < -args.tolerance:
            flag = "  << REGRESSION"
            failures.append(f"{key}: {base:.2f} -> {cur:.2f} "
                            f"({delta * 100:+.1f}%, tolerance "
                            f"-{args.tolerance * 100:.0f}%)")
        print(f"{key:<28} {base:>10.2f} {cur:>10.2f} "
              f"{delta * 100:>+7.1f}%{flag}")

    new_keys = sorted(k for k in current
                      if k.startswith(args.metric_prefix) and k not in gated)
    if new_keys:
        print(f"note: {len(new_keys)} metric(s) not in baseline yet: "
              f"{', '.join(new_keys)}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"-{args.tolerance * 100:.0f}%:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("If expected (e.g. a deliberate trade-off), refresh the "
              "baseline per bench/results/README.md.", file=sys.stderr)
        return 1
    print(f"\nOK: {len(gated)} metric(s) within "
          f"-{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
