#!/usr/bin/env python3
"""Gate bench JSON reports against a committed baseline.

Compares the throughput metrics of a freshly produced bench report
(e.g. the bench-smoke job's BENCH_bench_scaling.json) against a
baseline committed under bench/results/, and exits non-zero when any
metric regresses by more than the tolerance. Metrics are the
`notes` entries whose key starts with --metric-prefix (default
`mbases_per_s`, i.e. throughput — higher is better).

Lower-is-better metrics (times: `index_load_s`, `table_build_s`, ...)
are gated only when named via --lower-metric-prefix, with their own
--lower-tolerance (default 0.5 = +50%: wall-clock timings are far
noisier on shared runners than throughput). Unnamed timing notes stay
ungated, as before.

Absolute bounds (--bound KEY=MAX, repeatable) fail when the current
report's KEY exceeds MAX or is missing — the index-format CI tier uses
`--bound index_load_ratio=0.10` to hold mmap-load cost under 10% of
the table build it replaces, a runner-speed-independent ratio. With at
least one --bound, --baseline may be omitted entirely (bound-only
mode): the nightly failover soak gates `failover_recovery_ms` this
way, since an absolute latency promise needs no history.

Exit codes:
  0  no regression
  1  at least one metric regressed, exceeded a bound, or disappeared
  2  bad invocation / unreadable report / scale mismatch

Refreshing the baseline is documented in bench/results/README.md.
"""

import argparse
import json
import sys


def load_report(path):
    """Load one bench JSON report; returns (scale, {metric: value})."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bench report {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    metrics = {}
    for fig in doc.get("figures", []):
        for key, value in fig.get("notes", {}).items():
            if isinstance(value, (int, float)):
                metrics[key] = float(value)
    return doc.get("scale"), metrics


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when bench throughput regresses vs a baseline.")
    parser.add_argument("--current", required=True,
                        help="bench JSON produced by this run")
    parser.add_argument("--baseline",
                        help="committed baseline bench JSON; may be "
                             "omitted in bound-only mode (at least one "
                             "--bound given), where the gate needs no "
                             "history — the nightly failover soak bounds "
                             "failover_recovery_ms this way")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop before failing "
                             "(default 0.25 = -25%%, absorbs runner noise)")
    parser.add_argument("--metric-prefix", default="mbases_per_s",
                        help="gate notes whose key starts with this "
                             "(default: mbases_per_s)")
    parser.add_argument("--lower-metric-prefix", action="append",
                        default=[], metavar="PREFIX",
                        help="also gate notes with this prefix as "
                             "lower-is-better (repeatable; e.g. "
                             "index_load_s, table_build_s)")
    parser.add_argument("--lower-tolerance", type=float, default=0.5,
                        help="allowed fractional increase of a "
                             "lower-is-better metric before failing "
                             "(default 0.5 = +50%%; timings are noisy)")
    parser.add_argument("--bound", action="append", default=[],
                        metavar="KEY=MAX",
                        help="absolute bound: fail when the current "
                             "report's KEY exceeds MAX or is missing "
                             "(repeatable; e.g. index_load_ratio=0.10)")
    parser.add_argument("--allow-scale-mismatch", action="store_true",
                        help="compare reports taken at different "
                             "EXMA_BENCH_SCALE values (normally an error: "
                             "throughput at different scales is not "
                             "comparable)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.lower_tolerance < 0.0:
        parser.error("--lower-tolerance must be >= 0")
    bounds = []
    for spec in args.bound:
        key, sep, limit = spec.partition("=")
        try:
            bounds.append((key, float(limit)))
        except ValueError:
            sep = ""
        if not sep or not key:
            parser.error(f"--bound expects KEY=MAX, got '{spec}'")
    if args.baseline is None and not bounds:
        parser.error("--baseline is required unless at least one "
                     "--bound is given (bound-only mode)")

    cur_scale, current = load_report(args.current)
    baseline = {}
    gated = {}
    if args.baseline is not None:
        base_scale, baseline = load_report(args.baseline)
        if cur_scale != base_scale and not args.allow_scale_mismatch:
            print(f"error: scale mismatch: current ran at {cur_scale}, "
                  f"baseline at {base_scale}; refresh the baseline or "
                  f"pass --allow-scale-mismatch", file=sys.stderr)
            return 2

        gated = {k: v for k, v in baseline.items()
                 if k.startswith(args.metric_prefix)}
        if not gated:
            print(f"error: baseline {args.baseline} holds no "
                  f"'{args.metric_prefix}*' metrics", file=sys.stderr)
            return 2

    failures = []
    print(f"{'metric':<28} {'baseline':>10} {'current':>10} {'delta':>8}")
    for key in sorted(gated):
        base = gated[key]
        if key not in current:
            # A vanished metric means the sweep silently shrank — the
            # gate must not reward deleting the benchmark.
            print(f"{key:<28} {base:>10.2f} {'MISSING':>10} {'':>8}")
            failures.append(f"{key}: present in baseline but missing "
                            f"from current report")
            continue
        cur = current[key]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if base > 0 and delta < -args.tolerance:
            flag = "  << REGRESSION"
            failures.append(f"{key}: {base:.2f} -> {cur:.2f} "
                            f"({delta * 100:+.1f}%, tolerance "
                            f"-{args.tolerance * 100:.0f}%)")
        print(f"{key:<28} {base:>10.2f} {cur:>10.2f} "
              f"{delta * 100:>+7.1f}%{flag}")

    new_keys = sorted(k for k in current
                      if k.startswith(args.metric_prefix) and k not in gated)
    if new_keys:
        print(f"note: {len(new_keys)} metric(s) not in baseline yet: "
              f"{', '.join(new_keys)}")

    lower_gated = {k: v for k, v in baseline.items()
                   if any(k.startswith(p)
                          for p in args.lower_metric_prefix)}
    for key in sorted(lower_gated):
        base = lower_gated[key]
        if key not in current:
            print(f"{key:<28} {base:>10.2f} {'MISSING':>10} {'':>8}")
            failures.append(f"{key}: present in baseline but missing "
                            f"from current report")
            continue
        cur = current[key]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if base > 0 and delta > args.lower_tolerance:
            flag = "  << REGRESSION (lower is better)"
            failures.append(f"{key}: {base:.4f} -> {cur:.4f} "
                            f"({delta * 100:+.1f}%, tolerance "
                            f"+{args.lower_tolerance * 100:.0f}%)")
        print(f"{key:<28} {base:>10.2f} {cur:>10.2f} "
              f"{delta * 100:>+7.1f}%{flag}")

    for key, limit in bounds:
        if key not in current:
            failures.append(f"{key}: bounded at {limit} but missing "
                            f"from current report")
            print(f"{key:<28} {'<= ' + str(limit):>10} {'MISSING':>10}")
            continue
        cur = current[key]
        flag = ""
        if cur > limit:
            flag = "  << BOUND EXCEEDED"
            failures.append(f"{key}: {cur:.4f} exceeds bound {limit}")
        print(f"{key:<28} {'<= ' + str(limit):>10} {cur:>10.4f}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"-{args.tolerance * 100:.0f}%:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("If expected (e.g. a deliberate trade-off), refresh the "
              "baseline per bench/results/README.md.", file=sys.stderr)
        return 1
    if args.baseline is None:
        print(f"\nOK: {len(bounds)} bound(s) satisfied (no baseline)")
    else:
        print(f"\nOK: {len(gated)} metric(s) within "
              f"-{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
