#!/usr/bin/env python3
"""Unit tests for check_regression.py, including the synthetic -50%
fixture the CI bench-smoke job runs to prove the gate actually fails.

Run directly (no pytest dependency): python3 bench/test_check_regression.py -v
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
CHECKER = os.path.join(HERE, "check_regression.py")


def report(scale=0.05, notes=None, extra_figures=None):
    """A minimal bench JSON document in the bench_util writer's shape."""
    figures = [{"figure": "Scaling", "what": "test fixture",
                "notes": notes or {}, "tables": []}]
    if extra_figures:
        figures += extra_figures
    return {"harness": "bench_scaling", "scale": scale, "figures": figures}


BASELINE_NOTES = {
    "mbases_per_s_t1": 100.0,
    "mbases_per_s_shards4": 40.0,
    "mbases_per_s_routed4": 60.0,
    "build_s_shards4": 1.0,  # lower-is-better: must never be gated
}


class CheckRegressionTest(unittest.TestCase):

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_checker(self, current, baseline, *extra):
        return subprocess.run(
            [sys.executable, CHECKER, "--current", current,
             "--baseline", baseline, *extra],
            capture_output=True, text=True)

    def test_identical_reports_pass(self):
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=BASELINE_NOTES))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_drop_within_default_tolerance_passes(self):
        notes = {k: v * 0.80 for k, v in BASELINE_NOTES.items()}
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_synthetic_fifty_percent_regression_fails(self):
        # The demonstrable failure case: every throughput metric halved
        # must trip the default -25% gate.
        notes = {k: v * 0.50 for k, v in BASELINE_NOTES.items()}
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("mbases_per_s_routed4", proc.stderr)

    def test_single_metric_regression_is_enough(self):
        notes = dict(BASELINE_NOTES)
        notes["mbases_per_s_routed4"] = 60.0 * 0.4
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 1)

    def test_wider_tolerance_is_configurable(self):
        notes = {k: v * 0.50 for k, v in BASELINE_NOTES.items()}
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base, "--tolerance", "0.6")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_build_times_are_not_gated(self):
        # A 10x build-time blow-up alone must not fail the gate: only
        # metric-prefix (throughput) notes are compared.
        notes = dict(BASELINE_NOTES)
        notes["build_s_shards4"] = 10.0
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_baseline_metric_fails(self):
        # Deleting a benchmark must not read as "no regression".
        notes = dict(BASELINE_NOTES)
        del notes["mbases_per_s_routed4"]
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing", proc.stderr)

    def test_new_metrics_in_current_are_fine(self):
        notes = dict(BASELINE_NOTES)
        notes["mbases_per_s_routed8"] = 70.0
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("not in baseline yet", proc.stdout)

    def test_scale_mismatch_is_an_error(self):
        base = self.write("base.json",
                          report(scale=0.05, notes=BASELINE_NOTES))
        cur = self.write("cur.json",
                         report(scale=0.25, notes=BASELINE_NOTES))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("scale mismatch", proc.stderr)
        proc = self.run_checker(cur, base, "--allow-scale-mismatch")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_metrics_collected_across_figures(self):
        extra = [{"figure": "Routed", "what": "x",
                  "notes": {"mbases_per_s_routed4": 60.0}, "tables": []}]
        base_doc = report(notes={"mbases_per_s_t1": 100.0},
                          extra_figures=copy.deepcopy(extra))
        cur_doc = report(notes={"mbases_per_s_t1": 100.0},
                         extra_figures=extra)
        cur_doc["figures"][1]["notes"]["mbases_per_s_routed4"] = 20.0
        base = self.write("base.json", base_doc)
        cur = self.write("cur.json", cur_doc)
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 1)

    def test_unreadable_report_is_usage_error(self):
        # Exit 2 (usage/infrastructure), never 1 (regression): a broken
        # artifact must not page as a performance regression.
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        proc = self.run_checker(bad, base)
        self.assertEqual(proc.returncode, 2, proc.stderr)
        proc = self.run_checker(os.path.join(self.tmp.name, "absent.json"),
                                base)
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_lower_is_better_gating(self):
        # index_load_s doubling+ must fail once the prefix is named...
        base_notes = dict(BASELINE_NOTES, index_load_s=0.10,
                          table_build_s=2.0)
        cur_notes = dict(base_notes, index_load_s=0.30)
        base = self.write("base.json", report(notes=base_notes))
        cur = self.write("cur.json", report(notes=cur_notes))
        proc = self.run_checker(cur, base,
                                "--lower-metric-prefix", "index_load_s",
                                "--lower-metric-prefix", "table_build_s")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("lower is better", proc.stdout)
        self.assertIn("index_load_s", proc.stderr)
        # ...an increase within +50% passes...
        cur_notes["index_load_s"] = 0.14
        cur = self.write("cur2.json", report(notes=cur_notes))
        proc = self.run_checker(cur, base,
                                "--lower-metric-prefix", "index_load_s",
                                "--lower-metric-prefix", "table_build_s")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        # ...a large *decrease* is an improvement, never a failure...
        cur_notes["index_load_s"] = 0.01
        cur = self.write("cur3.json", report(notes=cur_notes))
        proc = self.run_checker(cur, base,
                                "--lower-metric-prefix", "index_load_s")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        # ...and without the flag the blow-up stays ungated (old
        # behaviour preserved).
        cur_notes["index_load_s"] = 5.0
        cur = self.write("cur4.json", report(notes=cur_notes))
        proc = self.run_checker(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_lower_metric_missing_from_current_fails(self):
        base_notes = dict(BASELINE_NOTES, index_load_s=0.10)
        cur_notes = dict(BASELINE_NOTES)
        base = self.write("base.json", report(notes=base_notes))
        cur = self.write("cur.json", report(notes=cur_notes))
        proc = self.run_checker(cur, base,
                                "--lower-metric-prefix", "index_load_s")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing", proc.stderr)

    def test_absolute_bound(self):
        # The index-format tier's ratio gate: load <= 10% of build.
        notes = dict(BASELINE_NOTES, index_load_ratio=0.04)
        base = self.write("base.json", report(notes=notes))
        cur = self.write("cur.json", report(notes=notes))
        proc = self.run_checker(cur, base,
                                "--bound", "index_load_ratio=0.10")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        bad = dict(BASELINE_NOTES, index_load_ratio=0.25)
        cur = self.write("cur2.json", report(notes=bad))
        proc = self.run_checker(cur, base,
                                "--bound", "index_load_ratio=0.10")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BOUND EXCEEDED", proc.stdout)
        # A missing bounded metric is a failure, not a silent pass.
        cur = self.write("cur3.json", report(notes=BASELINE_NOTES))
        proc = self.run_checker(cur, base,
                                "--bound", "index_load_ratio=0.10")
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_bound_only_mode_needs_no_baseline(self):
        # The nightly failover soak gates an absolute recovery-time
        # bound with no history to compare against.
        notes = dict(BASELINE_NOTES, failover_recovery_ms=40.0)
        cur = self.write("cur.json", report(notes=notes))
        proc = subprocess.run(
            [sys.executable, CHECKER, "--current", cur,
             "--bound", "failover_recovery_ms=500"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no baseline", proc.stdout)
        proc = subprocess.run(
            [sys.executable, CHECKER, "--current", cur,
             "--bound", "failover_recovery_ms=10"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BOUND EXCEEDED", proc.stdout)
        # Without any bound, omitting the baseline is a usage error.
        proc = subprocess.run(
            [sys.executable, CHECKER, "--current", cur],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_malformed_bound_is_usage_error(self):
        base = self.write("base.json", report(notes=BASELINE_NOTES))
        cur = self.write("cur.json", report(notes=BASELINE_NOTES))
        proc = self.run_checker(cur, base, "--bound", "index_load_ratio")
        self.assertEqual(proc.returncode, 2, proc.stdout)
        proc = self.run_checker(cur, base, "--bound", "=0.1")
        self.assertEqual(proc.returncode, 2, proc.stdout)
        proc = self.run_checker(cur, base, "--bound", "key=notanumber")
        self.assertEqual(proc.returncode, 2, proc.stdout)

    def test_real_committed_baseline_parses(self):
        # The baseline the CI job actually gates on must stay loadable
        # and hold routed metrics.
        baseline = os.path.join(HERE, "results",
                                "BENCH_bench_scaling_ci_baseline.json")
        proc = self.run_checker(baseline, baseline)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("mbases_per_s_routed4", proc.stdout)


if __name__ == "__main__":
    unittest.main()
