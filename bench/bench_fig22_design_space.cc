/**
 * @file
 * Fig. 22 — design-space exploration: DIMMs per channel (EXMA vs
 * MEDAL), PE-array count, CAM scheduling-queue entries, and base-cache
 * capacity; throughput normalised to the baseline EXMA configuration
 * (3 DIMMs, 4 arrays, 512 entries, 1 MB).
 */

#include "bench_util.hh"

using namespace exma;

namespace {

double
runExma(const ExmaTable &table,
        const std::vector<std::vector<Base>> &queries,
        int dimms, int pe_arrays, u64 cam, u64 base_cache)
{
    AcceleratorConfig cfg;
    cfg.pe_arrays = pe_arrays;
    cfg.cam_entries = cam;
    cfg.base_cache_bytes = base_cache;
    DramConfig dram = DramConfig::ddr4_2400();
    dram.dimms_per_channel = dimms;
    dram.page_policy = PagePolicy::Dynamic;
    ExmaAccelerator accel(table, cfg, dram);
    return accel.run(queries).mbasesPerSecond();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 22", "design space exploration (norm. to EXMA "
                             "baseline config)");
    const Dataset &ds = bench::dataset("pinus");
    const ExmaTable &table = bench::exmaTable("pinus", OccIndexMode::Mtl);
    auto queries = bench::patterns(
        ds, static_cast<u64>(400.0 * bench::scale() * 4.0));

    const double baseline =
        runExma(table, queries, 3, 4, 512, 1 << 20);
    TextTable t;
    t.header({"knob", "value", "norm. throughput"});

    // DIMM count: EXMA scales with channel capacity; MEDAL is
    // address-bus limited and gains little.
    const u64 medal_fp = std::max<u64>(
        u64{1} << 22, static_cast<u64>(ds.ref.size()) * 5);
    double medal_base = 0.0;
    for (int dimms : {2, 3, 4}) {
        const double v =
            runExma(table, queries, dimms, 4, 512, 1 << 20);
        t.row({"DIMMs (EXMA)", std::to_string(dimms) + "D",
               TextTable::num(v / baseline, 2)});
        ChainSpec medal = medalSpec(medal_fp);
        medal.iterations = 15000;
        DramConfig mem = DramConfig::ddr4_2400();
        mem.dimms_per_channel = dimms;
        const double mv = runChainWorkload(medal, mem).mbasesPerSecond();
        if (dimms == 3)
            medal_base = mv;
        t.row({"DIMMs (MEDAL)", std::to_string(dimms) + "D",
               TextTable::num(mv / baseline, 2)});
    }
    (void)medal_base;

    for (int arrays : {2, 4, 8})
        t.row({"PE arrays", std::to_string(arrays) + "A",
               TextTable::num(runExma(table, queries, 3, arrays, 512,
                                      1 << 20) /
                                  baseline,
                              2)});

    for (u64 cam : {u64{256}, u64{512}, u64{1024}})
        t.row({"CAM entries", std::to_string(cam) + "E",
               TextTable::num(runExma(table, queries, 3, 4, cam,
                                      1 << 20) /
                                  baseline,
                              2)});

    for (u64 cache : {u64{512} << 10, u64{1} << 20, u64{2} << 20})
        t.row({"base cache", TextTable::bytes(static_cast<double>(cache)),
               TextTable::num(runExma(table, queries, 3, 4, 512, cache) /
                                  baseline,
                              2)});

    bench::printTable(t);
    std::cout << "\npaper: 2 DIMMs = EXMA +29% over MEDAL; 3 DIMMs "
                 "+40% for EXMA vs +14.5% for MEDAL; 2 PE arrays reach "
                 "89% of 4; 256-entry CAM reaches 77% of 512; 1MB base "
                 "cache saturates throughput.\n";
    return 0;
}
