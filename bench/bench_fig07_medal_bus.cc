/**
 * @file
 * Fig. 7 — the MEDAL address-bus bottleneck: chips in a rank activate
 * partial rows independently, but every ACT and every column command
 * serialises over the single 17-bit DDR4 address bus, so a 4th chip's
 * activation is pushed out and bubbles appear on the data lanes.
 */

#include "bench_util.hh"

#include "dram/protocol_checker.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 7", "MEDAL's shared address bus serialises "
                            "chip-level parallelism");

    DramConfig cfg = DramConfig::ddr4_2400();
    cfg.channels = 1;
    cfg.chip_level_parallelism = true;
    cfg.page_policy = PagePolicy::Close;

    EventQueue eq;
    DramSystem mem(eq, cfg);
    mem.channel(0).enableLog();

    // Four chips of one rank request simultaneously (the Fig. 7 setup).
    for (int chip = 0; chip < 4; ++chip) {
        DramRequest req;
        req.coord.channel = 0;
        req.coord.rank = 0;
        req.coord.bankgroup = 0;
        req.coord.bank = 0;
        req.coord.row = 100 + static_cast<u64>(chip);
        req.coord.col = 0;
        req.coord.chip = chip;
        mem.accessCoord(std::move(req));
    }
    eq.run();

    TextTable t;
    t.header({"clk", "command", "chip", "row"});
    for (const auto &rec : mem.channel(0).log()) {
        const char *name = rec.cmd == DramCmd::Act ? "RAS(ACT)"
                           : rec.cmd == DramCmd::RdA ? "CAS(RD+A)"
                           : rec.cmd == DramCmd::Rd  ? "CAS(RD)"
                                                     : "other";
        t.row({std::to_string(rec.tick / cfg.tck_ps), name,
               std::to_string(rec.coord.chip),
               std::to_string(rec.coord.row)});
    }
    bench::printTable(t);

    // Scale up: many chips, measure how far the command bus is from
    // keeping every lane busy.
    {
        EventQueue eq2;
        DramSystem mem2(eq2, cfg);
        Rng rng(3);
        const int n = 2000;
        for (int i = 0; i < n; ++i) {
            DramRequest req;
            req.coord.channel = 0;
            req.coord.rank = static_cast<int>(rng.below(12));
            req.coord.bankgroup = static_cast<int>(rng.below(2));
            req.coord.bank = static_cast<int>(rng.below(2));
            req.coord.row = rng.below(1u << 16);
            req.coord.col = rng.below(32);
            req.coord.chip = static_cast<int>(rng.below(16));
            mem2.accessCoord(std::move(req));
        }
        const Tick end = eq2.run();
        const auto s = mem2.stats();
        std::cout << "\nsaturated chip-mode channel: "
                  << "cmd-bus busy "
                  << TextTable::num(100.0 *
                                        static_cast<double>(s.cmd_busy) /
                                        static_cast<double>(end),
                                    1)
                  << "% of cycles; every access costs 2 commands -> "
                  << "the bus caps chip-parallel throughput.\n";
        std::cout << "paper: because of these conflicts MEDAL delivers "
                     "11x over CPU, not its claimed 68x.\n";
    }
    return 0;
}
