/**
 * @file
 * Fig. 11 — increment distributions of different heavy k-mers are
 * similar (the Stein's-paradox motivation for multi-task learning):
 * print decile CDFs of the three most frequent k-mers and their
 * pairwise Kolmogorov-Smirnov distances.
 */

#include "bench_util.hh"

#include <algorithm>

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Fig. 11", "increment distributions of heavy k-mers");
    const ExmaTable &table = bench::exmaTable("human", OccIndexMode::Exact);
    const KmerOccTable &occ = table.occTable();

    // The three most frequent k-mers (the paper shows poly-A and
    // AC/AT-repeat 15-mers; in a synthetic genome the heavy hitters are
    // its repeat seeds).
    std::vector<std::pair<u64, Kmer>> heavy;
    for (Kmer m = 0; m < kmerSpace(occ.k()); ++m)
        if (occ.frequency(m) > 0)
            heavy.emplace_back(occ.frequency(m), m);
    std::sort(heavy.rbegin(), heavy.rend());
    const size_t n_show = std::min<size_t>(3, heavy.size());

    TextTable t;
    std::vector<std::string> hdr = {"quantile"};
    for (size_t i = 0; i < n_show; ++i)
        hdr.push_back(kmerToString(heavy[i].second, occ.k()) + " (f=" +
                      std::to_string(heavy[i].first) + ")");
    t.header(hdr);
    for (int q = 0; q <= 10; ++q) {
        std::vector<std::string> row = {TextTable::num(q / 10.0, 1)};
        for (size_t i = 0; i < n_show; ++i) {
            auto inc = occ.increments(heavy[i].second);
            const size_t idx = std::min<size_t>(
                inc.size() - 1, static_cast<size_t>(
                                    q / 10.0 *
                                    static_cast<double>(inc.size() - 1)));
            row.push_back(TextTable::num(
                static_cast<double>(inc[idx]) /
                    static_cast<double>(occ.rows()),
                3));
        }
        t.row(row);
    }
    bench::printTable(t);

    // Pairwise KS distance between normalised CDFs.
    auto ks = [&](Kmer a, Kmer b) {
        auto ia = occ.increments(a);
        auto ib = occ.increments(b);
        double worst = 0.0;
        for (int s = 0; s <= 100; ++s) {
            const u32 x = static_cast<u32>(
                s / 100.0 * static_cast<double>(occ.rows()));
            const double fa =
                static_cast<double>(occ.occ(a, x)) /
                static_cast<double>(ia.size());
            const double fb =
                static_cast<double>(occ.occ(b, x)) /
                static_cast<double>(ib.size());
            worst = std::max(worst, std::abs(fa - fb));
        }
        return worst;
    };
    std::cout << "\npairwise KS distance of normalised CDFs:\n";
    for (size_t i = 0; i < n_show; ++i)
        for (size_t j = i + 1; j < n_show; ++j)
            std::cout << "  " << kmerToString(heavy[i].second, occ.k())
                      << " vs " << kmerToString(heavy[j].second, occ.k())
                      << ": " << TextTable::num(
                             ks(heavy[i].second, heavy[j].second), 3)
                      << "\n";
    std::cout << "paper: distributions of different k-mers look alike, "
                 "so training across them (MTL) is statistically "
                 "favourable (Stein's paradox).\n";
    return 0;
}
