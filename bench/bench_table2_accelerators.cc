/**
 * @file
 * Table II — comparison of FM-Index accelerators processing pinus:
 * algorithm, memory, accelerator power, memory power, Mbase/s and
 * Mbase/s/W for GPU, FPGA, ASIC, MEDAL, FindeR and EXMA.
 */

#include "bench_util.hh"

#include "fmindex/size_model.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table II", "accelerator comparison on pinus");
    const Dataset &ds = bench::dataset("pinus");
    const auto &lm = bench::lisaMeasurement("pinus");
    const u64 footprint = std::max<u64>(
        u64{1} << 22, static_cast<u64>(ds.ref.size()) * 5);
    const DramConfig mem = DramConfig::ddr4_2400();

    struct Row
    {
        std::string name;
        std::string algo;
        DeviceResult r;
    };
    std::vector<Row> rows;

    {
        ChainSpec gpu = gpuLisaSpec(footprint, ds.lisa_k, lm.extra_lines);
        gpu.iterations = 20000;
        rows.push_back({"GPU", "LISA-" + std::to_string(ds.lisa_k),
                        runChainWorkload(gpu, mem)});
    }
    {
        ChainSpec fpga = fpgaFm2Spec(footprint);
        fpga.iterations = 20000;
        rows.push_back({"FPGA [30]", "FM-2", runChainWorkload(fpga, mem)});
    }
    {
        ChainSpec asic = asicFm1Spec(footprint);
        asic.iterations = 10000;
        rows.push_back({"ASIC [37]", "FM-1", runChainWorkload(asic, mem)});
    }
    {
        ChainSpec medal = medalSpec(footprint);
        medal.iterations = 60000;
        rows.push_back({"MEDAL [15]", "FM-1",
                        runChainWorkload(medal, mem)});
    }
    {
        // FindeR: 2.6 GB ReRAM of a 31 GB dataset (paper ratio).
        const u64 internal = static_cast<u64>(
            static_cast<double>(footprint) * 2.6 / 31.0);
        ChainSpec finder = finderSpec(footprint, internal);
        finder.iterations = 20000;
        rows.push_back({"FindeR [14]", "FM-1",
                        runChainWorkload(finder, mem)});
    }

    // EXMA: the real accelerator simulation.
    auto exma = bench::exmaAccelRun("pinus", true, PagePolicy::Dynamic);

    TextTable t;
    t.header({"device", "algorithm", "acc W", "mem W", "Mbase/s",
              "Mbase/s/W", "BW util %"});
    double medal_mb = 1.0, medal_mbw = 1.0;
    for (const auto &row : rows) {
        if (row.name.rfind("MEDAL", 0) == 0) {
            medal_mb = row.r.mbasesPerSecond();
            medal_mbw = row.r.mbasesPerWatt();
        }
        t.row({row.name, row.algo,
               TextTable::num(row.r.acc_power_w, 3),
               TextTable::num(row.r.mem_power_w, 1),
               TextTable::num(row.r.mbasesPerSecond(), 1),
               TextTable::num(row.r.mbasesPerWatt(), 2),
               TextTable::num(100 * row.r.bw_util, 1)});
    }
    const double exma_w = exma.accelPowerW();
    const double exma_mem_w = exma.dram_energy.avg_power_w;
    const double exma_mb = exma.mbasesPerSecond();
    const double exma_mbw = exma_mb / (exma_w + exma_mem_w);
    t.row({"EXMA", "EXMA-" + std::to_string(ds.exma_k),
           TextTable::num(exma_w, 3), TextTable::num(exma_mem_w, 1),
           TextTable::num(exma_mb, 1), TextTable::num(exma_mbw, 2),
           TextTable::num(100 * exma.bandwidth_utilization, 1)});
    bench::printTable(t);

    std::cout << "\nEXMA vs MEDAL: throughput "
              << TextTable::num(exma_mb / medal_mb, 2)
              << "x (paper: 4.9x), throughput/W "
              << TextTable::num(exma_mbw / medal_mbw, 2)
              << "x (paper: 4.8x)\n";
    std::cout << "memory capacity modelled (paper scale): "
              << TextTable::bytes(exmaSizeBytes(31000000000ULL, 15).total())
              << " EXMA table in a 384GB system.\n";
    return 0;
}
