/**
 * @file
 * Scaling of the batched search front end, two axes:
 *
 *  - threads (the serving-side analogue of Fig. 18's query-level
 *    parallelism): Mbases/s of BatchSearcher over the human dataset at
 *    1, 2, 4, ..., hardware_concurrency threads, against the
 *    sequential ExmaTable::search loop as the 1-thread reference,
 *    verified bit-identical at every width;
 *
 *  - shards (the software analogue of the paper's multi-channel
 *    scale-out): ShardedExmaTable over the same dataset at the shard
 *    counts in EXMA_SHARDS (default 1,2,4,8), with pool-parallel shard
 *    builds timed, per-shard JSON records emitted, and every sharded
 *    hit set verified identical to the single-table hit set;
 *
 *  - routing (the paper's truly parallel channels): the same batch
 *    served through a ShardRouter over a kmerPrefix plan at the same
 *    shard counts, so every query runs on the one shard owning its
 *    prefix instead of fanning across all of them — routed vs
 *    broadcast Mbases/s side by side, hit sets verified against the
 *    monolithic table.
 */

#include "bench_util.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "batch/batch_searcher.hh"
#include "common/thread_pool.hh"
#include "io/format.hh"
#include "persist/index_io.hh"
#include "route/shard_router.hh"
#include "shard/sharded_table.hh"

using namespace exma;

namespace {

/** EXMA_SHARDS: comma-separated shard counts to sweep (default 1,2,4,8). */
std::vector<unsigned>
shardSweep()
{
    std::vector<unsigned> counts;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup,
    // before any worker thread exists; nothing writes the env.
    const char *env = std::getenv("EXMA_SHARDS");
    std::string spec = env && *env ? env : "1,2,4,8";
    size_t pos = 0;
    while (pos < spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const long v = std::atol(tok.c_str());
        if (v > 0)
            counts.push_back(static_cast<unsigned>(v));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (counts.empty())
        counts = {1, 2, 4, 8};
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Scaling", "batched search throughput vs thread count "
                             "(human dataset)");

    const Dataset &ds = bench::dataset("human");
    const ExmaTable &table = bench::exmaTable("human", OccIndexMode::Mtl);
    const u64 n_queries =
        std::max<u64>(256, static_cast<u64>(4000.0 * bench::scale()));
    const auto queries = bench::patterns(ds, n_queries);

    // Sequential reference (and correctness baseline).
    BatchConfig seq_cfg;
    seq_cfg.threads = 1;
    const BatchResult seq = BatchSearcher(table, seq_cfg).search(queries);

    const unsigned hw = hardwareThreads();
    std::vector<unsigned> widths{1};
    for (unsigned w = 2; w < hw; w *= 2)
        widths.push_back(w);
    if (hw > 1)
        widths.push_back(hw);

    TextTable t;
    t.header({"threads", "Mbases/s", "speedup", "kstep_iters", "match"});
    double base_mbases = 0.0;
    for (unsigned w : widths) {
        BatchConfig cfg;
        cfg.threads = w;
        // Best-of-3 to de-noise the wall-clock measurement.
        BatchResult best;
        for (int rep = 0; rep < 3; ++rep) {
            BatchResult r = BatchSearcher(table, cfg).search(queries);
            if (rep == 0 || r.seconds < best.seconds)
                best = std::move(r);
        }
        const bool match = best.intervals == seq.intervals &&
                           best.stats == seq.stats;
        const double mbases = best.mbasesPerSecond();
        if (w == 1)
            base_mbases = mbases;
        const double speedup = base_mbases > 0.0 ? mbases / base_mbases
                                                 : 0.0;
        bench::note("mbases_per_s_t" + std::to_string(w), mbases);
        t.row({std::to_string(w), TextTable::num(mbases, 2),
               TextTable::num(speedup, 2),
               std::to_string(best.stats.kstep_iterations),
               match ? "yes" : "NO"});
        if (!match) {
            std::cerr << "FATAL: batched results diverge from the "
                         "sequential reference at "
                      << w << " threads\n";
            return 1;
        }
    }
    bench::printTable(t);
    std::cout << "\n(" << n_queries << " queries of "
              << (queries.empty() ? 0 : queries[0].size())
              << " bp; hardware_concurrency=" << hw
              << ". The paper's accelerator gets its throughput from "
                 "query-level parallelism — this is the CPU analogue.)\n";

    // ------------------------------------------------------------------
    // Shard-count sweep: partition the reference, serve the same batch
    // through a ShardedExmaTable, and check the merged global hit set
    // against the monolithic table.
    // ------------------------------------------------------------------
    bench::banner("Shard scaling",
                  "sharded multi-table serving vs shard count "
                  "(human dataset)");

    const u64 query_len = queries.empty() ? 101 : queries[0].size();

    // Single-table ground truth: located, sorted hit set per query.
    std::vector<std::vector<u64>> expect_hits;
    expect_hits.reserve(queries.size());
    for (const auto &q : queries) {
        auto hits = table.locateAll(table.search(q));
        std::sort(hits.begin(), hits.end());
        expect_hits.push_back(std::move(hits));
    }

    TextTable st;
    st.header({"shards", "build_s", "Mbases/s", "speedup", "rows_total",
               "hits", "match"});
    double shard_base_mbases = 0.0;
    std::map<unsigned, double> broadcast_mbases;
    for (unsigned n_shards : shardSweep()) {
        const auto plan =
            ShardPlan::fixedWidth(ds.ref.size(), n_shards, query_len);
        ShardedExmaTable::Config scfg;
        scfg.table = bench::exmaConfig(ds, OccIndexMode::Mtl);
        const ShardedExmaTable sharded(ds.ref, plan, scfg);

        // Best-of-3, as in the thread sweep.
        ShardedResult best;
        for (int rep = 0; rep < 3; ++rep) {
            ShardedResult r = sharded.search(queries);
            if (rep == 0 || r.seconds < best.seconds)
                best = std::move(r);
        }
        const bool match = best.hits == expect_hits;
        const double mbases = best.mbasesPerSecond();
        broadcast_mbases[n_shards] = mbases;
        if (shard_base_mbases == 0.0)
            shard_base_mbases = mbases;
        const double speedup =
            shard_base_mbases > 0.0 ? mbases / shard_base_mbases : 0.0;
        bench::note("mbases_per_s_shards" + std::to_string(n_shards),
                    mbases);
        bench::note("build_s_shards" + std::to_string(n_shards),
                    sharded.buildSeconds());
        st.row({std::to_string(plan.size()),
                TextTable::num(sharded.buildSeconds(), 2),
                TextTable::num(mbases, 2), TextTable::num(speedup, 2),
                std::to_string(sharded.totalRows()),
                std::to_string(best.totalHits()),
                match ? "yes" : "NO"});

        // Per-shard JSON records: geometry plus that shard's share of
        // the search work.
        TextTable pt;
        pt.header({"shard", "begin", "bases", "rows", "kstep_iters",
                   "onestep_iters"});
        for (size_t s = 0; s < sharded.shardCount(); ++s) {
            const Shard &sh = plan.shards()[s];
            pt.row({sh.name, std::to_string(sh.begin),
                    std::to_string(sh.length),
                    std::to_string(sharded.table(s).rows()),
                    std::to_string(best.per_shard[s].kstep_iterations),
                    std::to_string(best.per_shard[s].onestep_iterations)});
        }
        bench::printTable(pt, "per-shard (" + std::to_string(plan.size()) +
                                  " shards)");

        if (!match) {
            std::cerr << "FATAL: sharded hit set diverges from the "
                         "single-table reference at "
                      << n_shards << " shards\n";
            return 1;
        }
    }
    bench::printTable(st, "shard sweep");
    std::cout << "\n(Same " << n_queries << "-query batch served through "
              << "one ExmaTable per shard — fixed-width partitions "
                 "overlapping by max_query_len-1 = "
              << query_len - 1
              << " bases, merged into deduplicated global positions. "
                 "Set EXMA_SHARDS=a,b,... to change the sweep. The "
                 "paper scales the same way across memory "
                 "channels/DIMMs.)\n";

    // ------------------------------------------------------------------
    // Routed sweep: the same batch through a ShardRouter over a
    // kmerPrefix plan. Every query executes on the single shard owning
    // its prefix (its worker's dedicated thread), so per-query work
    // stays constant as shards grow — routed vs broadcast side by side.
    // ------------------------------------------------------------------
    bench::banner("Routed shard scaling",
                  "k-mer-prefix routing vs broadcast fan-out "
                  "(human dataset)");

    TextTable rt;
    rt.header({"shards", "p", "build_s", "repl", "routed_MB/s",
               "bcast_MB/s", "ratio", "hits", "match"});
    std::map<unsigned, double> routed_mbases;
    for (unsigned n_shards : shardSweep()) {
        const auto plan =
            ShardPlan::kmerPrefix(ds.ref, n_shards, query_len);
        RouterConfig rcfg;
        rcfg.table = bench::exmaConfig(ds, OccIndexMode::Mtl);
        const ShardRouter router(ds.ref, plan, rcfg);

        RoutedResult best;
        for (int rep = 0; rep < 3; ++rep) {
            RoutedResult r = router.search(queries);
            if (rep == 0 || r.seconds < best.seconds)
                best = std::move(r);
        }
        const bool match = best.hits == expect_hits;
        const double mbases = best.mbasesPerSecond();
        routed_mbases[n_shards] = mbases;
        const double bcast = broadcast_mbases.count(n_shards)
                                 ? broadcast_mbases[n_shards]
                                 : 0.0;
        // Replication factor: prefix shards store their owned
        // positions' context windows, which overlap across shards.
        const double repl = static_cast<double>(router.totalLocalBases()) /
                            static_cast<double>(ds.ref.size());
        bench::note("mbases_per_s_routed" + std::to_string(n_shards),
                    mbases);
        bench::note("build_s_routed" + std::to_string(n_shards),
                    router.buildSeconds());
        bench::note("replication_routed" + std::to_string(n_shards),
                    repl);
        rt.row({std::to_string(plan.size()),
                std::to_string(plan.prefixLen()),
                TextTable::num(router.buildSeconds(), 2),
                TextTable::num(repl, 2), TextTable::num(mbases, 2),
                TextTable::num(bcast, 2),
                TextTable::num(bcast > 0.0 ? mbases / bcast : 0.0, 2),
                std::to_string(best.totalHits()),
                match ? "yes" : "NO"});
        if (!match) {
            std::cerr << "FATAL: routed hit set diverges from the "
                         "single-table reference at "
                      << n_shards << " shards\n";
            return 1;
        }
    }
    bench::printTable(rt, "routed sweep");
    std::cout << "\n(All " << n_queries << " queries are >= the routing "
              << "prefix, so each runs on exactly one shard worker; "
                 "`repl` is total per-shard searchable bases over the "
                 "reference length — the price of term-partitioned "
                 "placement. Broadcast numbers repeat the shard sweep "
                 "above for side-by-side reading.)\n";

    // ------------------------------------------------------------------
    // Multi-process sweep: the same routed plans, but every shard is a
    // real exma-worker child process reached over the socket transport
    // — the paper's independently-addressed channels with actual
    // OS-level isolation. Hit sets must stay identical to the
    // monolith; the MB/s ratio against the in-process router is the
    // price of serialization + process hops.
    // ------------------------------------------------------------------
    bench::banner("Multi-process serving",
                  "routed serving via exma-worker child processes "
                  "(human dataset)");

    TextTable mt;
    mt.header({"workers", "p", "inproc_MB/s", "multiproc_MB/s", "ratio",
               "hits", "match"});
    double multiproc_peak = 0.0;
    for (unsigned n_shards : shardSweep()) {
        const auto plan =
            ShardPlan::kmerPrefix(ds.ref, n_shards, query_len);
        RouterConfig mcfg;
        mcfg.table = bench::exmaConfig(ds, OccIndexMode::Mtl);
        mcfg.transport.kind = TransportKind::Socket;
        const ShardRouter router(ds.ref, plan, mcfg);

        RoutedResult best;
        for (int rep = 0; rep < 3; ++rep) {
            RoutedResult r = router.search(queries);
            if (rep == 0 || r.seconds < best.seconds)
                best = std::move(r);
        }
        const bool match =
            best.hits == expect_hits && best.degraded_queries == 0;
        const double mbases = best.mbasesPerSecond();
        multiproc_peak = std::max(multiproc_peak, mbases);
        const double inproc = routed_mbases.count(n_shards)
                                  ? routed_mbases[n_shards]
                                  : 0.0;
        bench::note("mbases_per_s_multiproc" + std::to_string(n_shards),
                    mbases);
        mt.row({std::to_string(plan.size()),
                std::to_string(plan.prefixLen()),
                TextTable::num(inproc, 2), TextTable::num(mbases, 2),
                TextTable::num(inproc > 0.0 ? mbases / inproc : 0.0, 2),
                std::to_string(best.totalHits()),
                match ? "yes" : "NO"});
        if (!match) {
            std::cerr << "FATAL: multi-process hit set diverges from "
                         "the single-table reference at "
                      << n_shards << " workers\n";
            return 1;
        }
    }
    bench::note("mbases_per_s_multiproc", multiproc_peak);
    bench::printTable(mt, "multi-process sweep");
    std::cout << "\n(Each shard's replica is a separate exma-worker "
                 "process mmap-loading its persisted shard files; "
                 "queries travel as 2-bit-packed, canary-stamped "
                 "frames over Unix sockets. `ratio` is multi-process "
                 "over in-process routed throughput at the same shard "
                 "count.)\n";

    // ------------------------------------------------------------------
    // Replicated serving: the routed tier with R=2 replicas per shard
    // and the supervisor running. Throughput must hold up (same
    // differential check), and killing a replica must be absorbed:
    // failover_recovery_ms is the worst observed time from a kill to
    // the supervisor respawning the corpse plus a clean probe serve.
    // ------------------------------------------------------------------
    bench::banner("Replicated serving",
                  "R=2 replica tier: throughput and kill-to-recovery "
                  "(human dataset)");

    const unsigned repl_shards = std::min<unsigned>(shardSweep().back(), 4);
    const auto repl_plan =
        ShardPlan::kmerPrefix(ds.ref, repl_shards, query_len);
    RouterConfig repl_cfg;
    repl_cfg.table = bench::exmaConfig(ds, OccIndexMode::Mtl);
    repl_cfg.failover.replicas = 2;
    repl_cfg.failover.supervisor_interval_ms = 5;
    repl_cfg.failover.retry_backoff_ms = 1;
    const ShardRouter replicated(ds.ref, repl_plan, repl_cfg);

    RoutedResult repl_best;
    for (int rep = 0; rep < 3; ++rep) {
        RoutedResult r = replicated.search(queries);
        if (rep == 0 || r.seconds < repl_best.seconds)
            repl_best = std::move(r);
    }
    const bool repl_match = repl_best.hits == expect_hits &&
                            repl_best.degraded_queries == 0;
    const double repl_mbases = repl_best.mbasesPerSecond();
    bench::note("mbases_per_s_replicated", repl_mbases);
    if (!repl_match) {
        std::cerr << "FATAL: replicated hit set diverges from the "
                     "single-table reference\n";
        return 1;
    }

    // Kill-to-recovery: a few rounds, worst case reported. Each round
    // kills one replica, waits for the supervisor to respawn it, then
    // requires one clean probe serve (no degraded queries, no failover
    // machinery fired).
    const std::vector<std::vector<Base>> probe(
        queries.begin(),
        queries.begin() +
            static_cast<std::ptrdiff_t>(std::min<size_t>(queries.size(), 8)));
    double recovery_ms = 0.0;
    for (unsigned round = 0; round < 3; ++round) {
        ReplicaSet &set =
            replicated.replicaSet(round % replicated.shardCount());
        const u64 respawns0 = set.respawns();
        const auto k0 = std::chrono::steady_clock::now();
        set.killReplica(round % 2);
        while (set.respawns() == respawns0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        for (;;) {
            const RoutedResult r = replicated.search(probe);
            if (r.degraded_queries == 0 && r.failover == FailoverStats{})
                break;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - k0)
                .count();
        recovery_ms = std::max(recovery_ms, ms);
    }
    bench::note("failover_recovery_ms", recovery_ms);

    TextTable ft;
    ft.header({"shards", "replicas", "repl_MB/s", "recovery_ms", "match"});
    ft.row({std::to_string(repl_plan.size()), "2",
            TextTable::num(repl_mbases, 2), TextTable::num(recovery_ms, 1),
            repl_match ? "yes" : "NO"});
    bench::printTable(ft, "replicated serving");
    std::cout << "\n(Each shard served by 2 workers behind "
                 "power-of-two-choices; `recovery_ms` is the worst of 3 "
                 "kill rounds — supervisor respawn plus one clean probe "
                 "batch. The soak variant lives in bench_failover.)\n";

    // ------------------------------------------------------------------
    // Index persistence: save the monolithic table's .exma.* companion
    // files once, mmap-load them back, and record load-vs-build cost.
    // With EXMA_INDEX_DIR naming an already-populated directory (CI
    // restores one from cache), the save is skipped and the bench
    // measures the load path alone — starting a worker from files
    // instead of rebuilding.
    // ------------------------------------------------------------------
    bench::banner("Index persistence",
                  "persistent .exma.* save + mmap load (human dataset)");

    const double table_build_s =
        bench::exmaBuildSeconds("human", OccIndexMode::Mtl);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once; nothing writes.
    const char *index_env = std::getenv("EXMA_INDEX_DIR");
    const std::string index_dir =
        index_env && *index_env ? index_env : "bench_scaling_index";
    double index_save_s = 0.0;
    if (!std::filesystem::exists(std::filesystem::path(index_dir) /
                                 kManifestName)) {
        const auto t0 = std::chrono::steady_clock::now();
        saveIndex(table, ds.ref, index_dir);
        index_save_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    }
    const LoadedIndex loaded = loadIndex(index_dir);
    const double index_load_s = loaded.load_seconds;
    const double load_ratio =
        table_build_s > 0.0 ? index_load_s / table_build_s : 0.0;

    // Differential: the loaded index (whatever its layout) must serve
    // the ground-truth hit set of the freshly built table.
    std::vector<std::vector<u64>> loaded_hits;
    if (loaded.kind == IndexKind::Mono) {
        loaded_hits.reserve(queries.size());
        for (const auto &q : queries)
            loaded_hits.push_back(loaded.table->locateAllGlobal(
                loaded.table->search(q), q.size()));
    } else if (loaded.kind == IndexKind::ShardedText) {
        loaded_hits = loaded.sharded->search(queries).hits;
    } else {
        loaded_hits = loaded.router->search(queries).hits;
    }
    const bool load_match = loaded_hits == expect_hits;

    bench::note("table_build_s", table_build_s);
    bench::note("index_save_s", index_save_s);
    bench::note("index_load_s", index_load_s);
    bench::note("index_load_ratio", load_ratio);
    TextTable it;
    it.header({"table_build_s", "index_save_s", "index_load_s", "ratio",
               "match"});
    it.row({TextTable::num(table_build_s, 3),
            TextTable::num(index_save_s, 3),
            TextTable::num(index_load_s, 4),
            TextTable::num(load_ratio, 4), load_match ? "yes" : "NO"});
    bench::printTable(it, "index persistence");
    std::cout << "\n(Index at " << index_dir
              << (index_save_s > 0.0 ? " — written by this run"
                                     : " — pre-existing, save skipped")
              << "; `ratio` is mmap-load over in-memory build, the "
                 "restart-cost saving the persistent format buys.)\n";
    if (!load_match) {
        std::cerr << "FATAL: the mmap-loaded index diverges from the "
                     "freshly built table\n";
        return 1;
    }
    return 0;
}
