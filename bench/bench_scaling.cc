/**
 * @file
 * Thread-scaling of the batched search front end (the serving-side
 * analogue of Fig. 18's query-level parallelism): Mbases/s of
 * BatchSearcher over the human dataset at 1, 2, 4, ...,
 * hardware_concurrency threads, against the sequential
 * ExmaTable::search loop as the 1-thread reference. Results are
 * verified bit-identical to the sequential run at every width.
 */

#include "bench_util.hh"

#include <algorithm>

#include "batch/batch_searcher.hh"
#include "common/thread_pool.hh"

using namespace exma;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Scaling", "batched search throughput vs thread count "
                             "(human dataset)");

    const Dataset &ds = bench::dataset("human");
    const ExmaTable &table = bench::exmaTable("human", OccIndexMode::Mtl);
    const u64 n_queries =
        std::max<u64>(256, static_cast<u64>(4000.0 * bench::scale()));
    const auto queries = bench::patterns(ds, n_queries);

    // Sequential reference (and correctness baseline).
    BatchConfig seq_cfg;
    seq_cfg.threads = 1;
    const BatchResult seq = BatchSearcher(table, seq_cfg).search(queries);

    const unsigned hw = hardwareThreads();
    std::vector<unsigned> widths{1};
    for (unsigned w = 2; w < hw; w *= 2)
        widths.push_back(w);
    if (hw > 1)
        widths.push_back(hw);

    TextTable t;
    t.header({"threads", "Mbases/s", "speedup", "kstep_iters", "match"});
    double base_mbases = 0.0;
    for (unsigned w : widths) {
        BatchConfig cfg;
        cfg.threads = w;
        // Best-of-3 to de-noise the wall-clock measurement.
        BatchResult best;
        for (int rep = 0; rep < 3; ++rep) {
            BatchResult r = BatchSearcher(table, cfg).search(queries);
            if (rep == 0 || r.seconds < best.seconds)
                best = std::move(r);
        }
        const bool match = best.intervals == seq.intervals &&
                           best.stats == seq.stats;
        const double mbases = best.mbasesPerSecond();
        if (w == 1)
            base_mbases = mbases;
        const double speedup = base_mbases > 0.0 ? mbases / base_mbases
                                                 : 0.0;
        bench::note("mbases_per_s_t" + std::to_string(w), mbases);
        t.row({std::to_string(w), TextTable::num(mbases, 2),
               TextTable::num(speedup, 2),
               std::to_string(best.stats.kstep_iterations),
               match ? "yes" : "NO"});
        if (!match) {
            std::cerr << "FATAL: batched results diverge from the "
                         "sequential reference at "
                      << w << " threads\n";
            return 1;
        }
    }
    bench::printTable(t);
    std::cout << "\n(" << n_queries << " queries of "
              << (queries.empty() ? 0 : queries[0].size())
              << " bp; hardware_concurrency=" << hw
              << ". The paper's accelerator gets its throughput from "
                 "query-level parallelism — this is the CPU analogue.)\n";
    return 0;
}
