/**
 * @file
 * Prefix-routed sharded serving: the front end that makes shard count
 * buy throughput instead of costing it — and survives the workers it
 * buys it from.
 *
 * PR 4's ShardedExmaTable fans every query across every shard, so one
 * core does shard-count times the work per query. The ShardRouter
 * instead serves a kmerPrefix ShardPlan: a query's first prefixLen()
 * bases name the one shard owning every position its matches can start
 * at, so the router classifies a batch by prefix, hands each shard's
 * ReplicaSet only the queries it owns, and merges the responses with
 * the same dedup/global-cap machinery ShardedExmaTable uses. Queries
 * shorter than the routing prefix whose padded code range straddles a
 * partition boundary fall back to a broadcast across the straddled
 * shards (their matches' owners all lie in that range).
 *
 * Transports (RouterConfig::transport): each replica is either an
 * in-process ShardWorker sharing the router's address space (the
 * default, and the differential oracle) or a SocketTransport speaking
 * the length-prefixed wire protocol to an out-of-process exma-worker
 * that mmap-loads the same shard files — the paper's per-channel
 * parallelism with real OS-level isolation. The two are
 * bit-identical: same hits, same stats, same canary.
 *
 * Fault tolerance (RouterConfig::failover): each prefix range is
 * served by an R-way ReplicaSet with power-of-two-choices routing, a
 * WorkerSupervisor respawns dead/hung replicas in the background, and
 * search() itself retries failed shard calls on a different replica
 * with backoff, hedges stragglers, and — when a range stays down past
 * the per-request deadline — returns partial results with the
 * affected queries flagged in RoutedResult::degraded instead of
 * blocking. What fired is tallied in RoutedResult::failover.
 *
 * Text-partitioned plans are also accepted and served broadcast-only
 * through the same workers, so routed-vs-broadcast comparisons run on
 * identical execution machinery.
 *
 * Thread-safety analysis: search() is const and keeps all cross-thread
 * traffic inside annotated machinery — requests ride the workers'
 * annotated inbox queues, responses come back through futures, replica
 * swaps stay behind ReplicaSet's annotated mutex, and the merge writes
 * out.hits on the calling thread only (the dedup/cap parallelFor
 * touches disjoint queries per chunk). The router itself therefore has
 * no EXMA_GUARDED_BY state; new mutable members (e.g. a hot-k-mer
 * result cache) must bring an exma::Mutex and annotations.
 */

#ifndef EXMA_ROUTE_SHARD_ROUTER_HH
#define EXMA_ROUTE_SHARD_ROUTER_HH

#include <memory>
#include <string>
#include <vector>

#include "fault/failover_stats.hh"
#include "route/replica_set.hh"
#include "route/worker_supervisor.hh"
#include "shard/shard_plan.hh"

namespace exma {

/**
 * Replication and failover policy for the serving tier. Defaults are
 * the pre-replication behaviour: one replica, no deadline, but retries
 * enabled — even an R=1 router recovers from a killed worker by
 * reviving it and resubmitting.
 */
struct FailoverConfig
{
    /** Workers per shard. 1 = no redundancy (still self-healing). */
    unsigned replicas = 1;
    /**
     * Per-search wall-clock budget in ms; 0 = none. When it expires,
     * unresolved shard calls are abandoned and their queries come back
     * flagged degraded rather than blocking the caller.
     */
    u64 deadline_ms = 0;
    /** Resubmissions per shard call after a failed attempt. */
    unsigned max_retries = 2;
    /** First retry backoff in ms (doubles per retry; 0 = immediate). */
    u64 retry_backoff_ms = 2;
    /**
     * Hedge threshold in ms; 0 = off. A shard call still unresolved
     * this long after submission is duplicated on a second replica and
     * the first Ok response wins (classic tail-at-scale hedging).
     */
    u64 hedge_ms = 0;
    /** Supervisor sweep period in ms; 0 = no supervisor thread. */
    u64 supervisor_interval_ms = 20;
    /**
     * A replica with queued work whose heartbeat stalls this long is
     * declared hung, killed, and respawned (by the supervisor, or by
     * the router's reap path when no supervisor runs).
     */
    u64 hang_timeout_ms = 1000;
};

/** How replicas execute shard requests. */
enum class TransportKind : u8
{
    /** EXMA_TRANSPORT env: "socket" → Socket, else InProcess. */
    Auto = 0,
    InProcess = 1, ///< ShardWorker threads in the router's process
    Socket = 2,    ///< exma-worker child processes over Unix sockets
};

/** Out-of-process serving knobs (all ignored for InProcess). */
struct TransportConfig
{
    TransportKind kind = TransportKind::Auto;
    /**
     * Directory already holding per-shard `shardNNNN.exma.*` files for
     * workers to mmap-load (set by loadIndex on routed directories).
     * Empty = the router saves its shards into a temp directory it
     * owns for the workers' lifetime.
     */
    std::string worker_dir;
    /**
     * exma-worker binary; empty = $EXMA_WORKER_BIN, then the build
     * tree next to the running binary, then $PATH.
     */
    std::string worker_binary;
};

struct RouterConfig
{
    /** Per-shard table configuration (same k for every shard). */
    ExmaTable::Config table;
    /** Shard-build parallelism: 0 = pool width, 1 = serial. */
    unsigned build_threads = 0;
    /**
     * Serve every query via every shard (measurement baseline; also
     * the only mode text-partitioned plans support).
     */
    bool force_broadcast = false;
    /**
     * Shards whose searchable text is shorter than this are served by
     * direct segment scanning instead of an ExmaTable of their own.
     */
    u64 min_table_bases = ShardPlan::kMinShardBases;
    /** Replication / failover policy (see FailoverConfig). */
    FailoverConfig failover;
    /** Replica execution: in-process threads or worker processes. */
    TransportConfig transport;
};

/** Outcome of one routed batch: index-aligned with the input queries. */
struct RoutedResult
{
    /** Per query: sorted, deduplicated global match positions. */
    std::vector<std::vector<u64>> hits;
    /**
     * Per query: 1 when at least one owner shard never produced a
     * verified response (all replicas down past the deadline/retry
     * budget), so hits[i] may be incomplete. Always all-zero when the
     * batch completed cleanly.
     */
    std::vector<u8> degraded;
    u64 degraded_queries = 0; ///< number of 1s in degraded
    SearchStats stats;                  ///< merged across all shards
    std::vector<SearchStats> per_shard; ///< one per shard, in plan order
    FailoverStats failover; ///< recovery machinery fired for this batch
    u64 queries = 0;
    u64 bases = 0;             ///< total query symbols searched
    u64 routed_queries = 0;    ///< served by exactly one shard
    u64 broadcast_queries = 0; ///< served by two or more shards
    double seconds = 0.0;

    u64
    totalHits() const
    {
        u64 n = 0;
        for (const auto &h : hits)
            n += h.size();
        return n;
    }

    double
    mbasesPerSecond() const
    {
        return seconds > 0.0
                   ? static_cast<double>(bases) / seconds / 1e6
                   : 0.0;
    }
};

class ShardRouter
{
  public:
    /**
     * Build one replica set per shard of @p plan over @p ref:
     * segment-mapped ExmaTables built pool-parallel for indexable
     * shards, scan workers for tiny ones, hitless workers for empty
     * prefix ranges. Replicas share the shard state; only workers are
     * duplicated.
     */
    ShardRouter(const std::vector<Base> &ref, const ShardPlan &plan,
                const RouterConfig &cfg);

    /**
     * Adopt pre-restored per-shard state (src/persist/index_io.cc)
     * instead of building: @p segments / @p tables / @p scan_refs are
     * index-parallel with @p plan's shards (a shard has a table, a
     * scan ref, or neither — matching what the building constructor
     * would have produced). Workers are spawned over the adopted
     * state; @p load_seconds is reported as buildSeconds().
     */
    ShardRouter(ShardPlan plan, RouterConfig cfg,
                std::vector<std::vector<TextSegment>> segments,
                std::vector<std::unique_ptr<ExmaTable>> tables,
                std::vector<std::vector<Base>> scan_refs,
                double load_seconds);

    /** Joins/reaps all replicas, then removes the owned temp shard
     *  directory if socket workers needed one. */
    ~ShardRouter();

    size_t shardCount() const { return sets_.size(); }
    const ShardPlan &plan() const { return plan_; }
    const RouterConfig &config() const { return cfg_; }

    /** The transport kind replicas actually use (Auto resolved). */
    TransportKind transportKind() const { return transport_kind_; }

    /**
     * Shard @p i's replica set. Non-const ref from a const router:
     * ReplicaSet is internally synchronized, and callers (tests,
     * benches, the kill-loop soak) use it to kill/inspect replicas
     * while searches run.
     */
    ReplicaSet &replicaSet(size_t i) const { return *sets_[i]; }

    /** Shard @p i's table, or null for scan/empty shards (serialization). */
    const ExmaTable *shardTable(size_t i) const { return tables_[i].get(); }

    /** Shard @p i's extracted scan text (empty unless a scan shard). */
    const std::vector<Base> &shardScanRef(size_t i) const
    {
        return scan_refs_[i];
    }

    /** Shard @p i's segment map (serialization). */
    const std::vector<TextSegment> &shardSegments(size_t i) const
    {
        return segments_[i];
    }

    /** Wall-clock seconds the (parallel) shard builds took. */
    double buildSeconds() const { return build_seconds_; }

    /**
     * Sum of per-shard searchable bases. Prefix shards replicate
     * context windows, so this exceeds the reference length; the ratio
     * is the plan's replication factor.
     */
    u64 totalLocalBases() const;

    /** Sum of per-shard BW-matrix row counts (indexed shards only). */
    u64 totalRows() const;

    /**
     * Classify @p queries by prefix, run each on its owner shard(s)
     * through the replica tier, and merge into global positions.
     * Queries must be non-empty and no longer than
     * plan().maxQueryLen(). cfg.locate_limit applies globally after
     * the merge, as in ShardedExmaTable::search.
     *
     * Failover contract: a shard call that fails (worker down, thrown
     * exception, corrupt canary) is retried on a different replica up
     * to failover.max_retries times with doubling backoff; calls still
     * unresolved failover.hedge_ms after submission are hedged. When a
     * call exhausts its budget — or failover.deadline_ms expires — its
     * queries are flagged in RoutedResult::degraded and whatever the
     * other shards produced is returned. Queries are never lost and
     * never double-merged: exactly one verified response per shard
     * call is accepted.
     */
    RoutedResult search(const std::vector<std::vector<Base>> &queries,
                        const BatchConfig &cfg = {}) const;

    /** One query: sorted global match positions; stats merged if given. */
    std::vector<u64> findAll(const std::vector<Base> &query,
                             SearchStats *stats = nullptr) const;

  private:
    /** Spawn the replica sets over segments_/tables_/scan_refs_, plus
     *  the supervisor when configured. */
    void spawnReplicas();
    /** Factory for shard @p s's replicas under transport_kind_. */
    TransportFactory shardFactory(size_t s);
    /** Ensure shard files exist on disk for socket workers; sets
     *  worker_dir_ (and temp_dir_ when the router saves them itself). */
    void prepareWorkerFiles();

    ShardPlan plan_;
    RouterConfig cfg_;
    /** Per-shard segment maps (single whole-shard segment for text
     *  plans), referenced by tables, scan workers and translation. */
    std::vector<std::vector<TextSegment>> segments_;
    std::vector<std::unique_ptr<ExmaTable>> tables_;
    std::vector<std::vector<Base>> scan_refs_;
    TransportKind transport_kind_ = TransportKind::InProcess;
    /** Directory socket workers load their shard files from. */
    std::string worker_dir_;
    /** Resolved exma-worker path (socket transport only). */
    std::string worker_binary_;
    /** Non-empty iff the router saved worker_dir_ itself and must
     *  remove it on destruction. */
    std::string temp_dir_;
    std::vector<std::unique_ptr<ReplicaSet>> sets_;
    /** Declared after sets_ so it stops sweeping before they die. */
    std::unique_ptr<WorkerSupervisor> supervisor_;
    double build_seconds_ = 0.0;
};

} // namespace exma

#endif // EXMA_ROUTE_SHARD_ROUTER_HH
