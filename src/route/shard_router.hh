/**
 * @file
 * Prefix-routed sharded serving: the front end that makes shard count
 * buy throughput instead of costing it.
 *
 * PR 4's ShardedExmaTable fans every query across every shard, so one
 * core does shard-count times the work per query. The ShardRouter
 * instead serves a kmerPrefix ShardPlan: a query's first prefixLen()
 * bases name the one shard owning every position its matches can start
 * at, so the router classifies a batch by prefix, hands each
 * ShardWorker only the queries it owns, and merges the responses with
 * the same dedup/global-cap machinery ShardedExmaTable uses. Queries
 * shorter than the routing prefix whose padded code range straddles a
 * partition boundary fall back to a broadcast across the straddled
 * shards (their matches' owners all lie in that range).
 *
 * Text-partitioned plans are also accepted and served broadcast-only
 * through the same workers, so routed-vs-broadcast comparisons run on
 * identical execution machinery.
 *
 * Thread-safety analysis: search() is const and keeps all cross-thread
 * traffic inside annotated machinery — requests ride the workers'
 * annotated inbox queues, responses come back through futures, and the
 * merge writes out.hits on the calling thread only (the dedup/cap
 * parallelFor touches disjoint queries per chunk). The router itself
 * therefore has no EXMA_GUARDED_BY state; new mutable members (e.g. a
 * hot-k-mer result cache) must bring an exma::Mutex and annotations.
 */

#ifndef EXMA_ROUTE_SHARD_ROUTER_HH
#define EXMA_ROUTE_SHARD_ROUTER_HH

#include <memory>
#include <vector>

#include "route/shard_worker.hh"
#include "shard/shard_plan.hh"

namespace exma {

struct RouterConfig
{
    /** Per-shard table configuration (same k for every shard). */
    ExmaTable::Config table;
    /** Shard-build parallelism: 0 = pool width, 1 = serial. */
    unsigned build_threads = 0;
    /**
     * Serve every query via every shard (measurement baseline; also
     * the only mode text-partitioned plans support).
     */
    bool force_broadcast = false;
    /**
     * Shards whose searchable text is shorter than this are served by
     * direct segment scanning instead of an ExmaTable of their own.
     */
    u64 min_table_bases = ShardPlan::kMinShardBases;
};

/** Outcome of one routed batch: index-aligned with the input queries. */
struct RoutedResult
{
    /** Per query: sorted, deduplicated global match positions. */
    std::vector<std::vector<u64>> hits;
    SearchStats stats;                  ///< merged across all shards
    std::vector<SearchStats> per_shard; ///< one per shard, in plan order
    u64 queries = 0;
    u64 bases = 0;             ///< total query symbols searched
    u64 routed_queries = 0;    ///< served by exactly one shard
    u64 broadcast_queries = 0; ///< served by two or more shards
    double seconds = 0.0;

    u64
    totalHits() const
    {
        u64 n = 0;
        for (const auto &h : hits)
            n += h.size();
        return n;
    }

    double
    mbasesPerSecond() const
    {
        return seconds > 0.0
                   ? static_cast<double>(bases) / seconds / 1e6
                   : 0.0;
    }
};

class ShardRouter
{
  public:
    /**
     * Build one worker per shard of @p plan over @p ref: segment-mapped
     * ExmaTables built pool-parallel for indexable shards, scan workers
     * for tiny ones, hitless workers for empty prefix ranges.
     */
    ShardRouter(const std::vector<Base> &ref, const ShardPlan &plan,
                const RouterConfig &cfg);

    /**
     * Adopt pre-restored per-shard state (src/io/index_io.cc) instead
     * of building: @p segments / @p tables / @p scan_refs are
     * index-parallel with @p plan's shards (a shard has a table, a
     * scan ref, or neither — matching what the building constructor
     * would have produced). Workers are spawned over the adopted
     * state; @p load_seconds is reported as buildSeconds().
     */
    ShardRouter(ShardPlan plan, RouterConfig cfg,
                std::vector<std::vector<TextSegment>> segments,
                std::vector<std::unique_ptr<ExmaTable>> tables,
                std::vector<std::vector<Base>> scan_refs,
                double load_seconds);

    size_t shardCount() const { return workers_.size(); }
    const ShardPlan &plan() const { return plan_; }
    const RouterConfig &config() const { return cfg_; }
    const ShardWorker &worker(size_t i) const { return *workers_[i]; }

    /** Shard @p i's table, or null for scan/empty shards (serialization). */
    const ExmaTable *shardTable(size_t i) const { return tables_[i].get(); }

    /** Shard @p i's extracted scan text (empty unless a scan shard). */
    const std::vector<Base> &shardScanRef(size_t i) const
    {
        return scan_refs_[i];
    }

    /** Shard @p i's segment map (serialization). */
    const std::vector<TextSegment> &shardSegments(size_t i) const
    {
        return segments_[i];
    }

    /** Wall-clock seconds the (parallel) shard builds took. */
    double buildSeconds() const { return build_seconds_; }

    /**
     * Sum of per-shard searchable bases. Prefix shards replicate
     * context windows, so this exceeds the reference length; the ratio
     * is the plan's replication factor.
     */
    u64 totalLocalBases() const;

    /** Sum of per-shard BW-matrix row counts (indexed shards only). */
    u64 totalRows() const;

    /**
     * Classify @p queries by prefix, run each on its owner shard(s)
     * through the workers, and merge into global positions. Queries
     * must be non-empty and no longer than plan().maxQueryLen().
     * cfg.locate_limit applies globally after the merge, as in
     * ShardedExmaTable::search.
     */
    RoutedResult search(const std::vector<std::vector<Base>> &queries,
                        const BatchConfig &cfg = {}) const;

    /** One query: sorted global match positions; stats merged if given. */
    std::vector<u64> findAll(const std::vector<Base> &query,
                             SearchStats *stats = nullptr) const;

  private:
    /** Spawn one worker per shard over segments_/tables_/scan_refs_. */
    void spawnWorkers();

    ShardPlan plan_;
    RouterConfig cfg_;
    /** Per-shard segment maps (single whole-shard segment for text
     *  plans), referenced by tables, scan workers and translation. */
    std::vector<std::vector<TextSegment>> segments_;
    std::vector<std::unique_ptr<ExmaTable>> tables_;
    std::vector<std::vector<Base>> scan_refs_;
    std::vector<std::unique_ptr<ShardWorker>> workers_;
    double build_seconds_ = 0.0;
};

} // namespace exma

#endif // EXMA_ROUTE_SHARD_ROUTER_HH
