/**
 * @file
 * Background health-checker for a router's replica tier: one thread
 * sweeps every ReplicaSet on a fixed interval, respawning dead
 * replicas and putting down hung ones (ReplicaSet::superviseOnce).
 * A hang becomes a kill, a kill resolves the victim's queued futures
 * as WorkerDown, and the router's retry path re-routes those requests
 * to a live replica — so in-flight work survives a frozen worker even
 * when the submitting thread is blocked waiting on it.
 *
 * The supervisor only ever talks to workers through ReplicaSet's
 * public surface, the same surface an out-of-process transport would
 * expose (liveness + respawn), so moving workers out of process later
 * leaves this layer unchanged.
 */

#ifndef EXMA_ROUTE_WORKER_SUPERVISOR_HH
#define EXMA_ROUTE_WORKER_SUPERVISOR_HH

#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "route/replica_set.hh"

namespace exma {

class WorkerSupervisor
{
  public:
    struct Config
    {
        u64 interval_ms = 20;      ///< sweep period
        u64 hang_timeout_ms = 1000; ///< frozen-heartbeat threshold
    };

    /** Starts the sweep thread. @p sets must outlive the supervisor. */
    WorkerSupervisor(std::vector<ReplicaSet *> sets, Config cfg);

    /** Stops and joins the sweep thread. */
    ~WorkerSupervisor();

    WorkerSupervisor(const WorkerSupervisor &) = delete;
    WorkerSupervisor &operator=(const WorkerSupervisor &) = delete;

  private:
    void loop();

    const std::vector<ReplicaSet *> sets_;
    const Config cfg_;
    Mutex mtx_;
    CondVar cv_;
    bool stop_ EXMA_GUARDED_BY(mtx_) = false;
    std::thread thread_;
};

} // namespace exma

#endif // EXMA_ROUTE_WORKER_SUPERVISOR_HH
