#include "route/shard_worker.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/logging.hh"

namespace exma {

ShardWorker::ShardWorker(std::string name, const ExmaTable *table,
                         const std::vector<Base> *scan_ref,
                         const std::vector<TextSegment> *segments)
    : name_(std::move(name)), table_(table), scan_ref_(scan_ref),
      segments_(segments)
{
    exma_assert(!(table_ && scan_ref_),
                "worker '%s' got both a table and a scan reference",
                name_.c_str());
    if (table_)
        exma_assert(table_->segmented(),
                    "worker '%s' needs a segment-mapped table to "
                    "translate hits into global coordinates",
                    name_.c_str());
    if (scan_ref_) {
        exma_assert(segments_ && !segments_->empty(),
                    "worker '%s' scans but has no segment map",
                    name_.c_str());
        exma_assert(scan_ref_->size() == segmentsLocalLength(*segments_),
                    "worker '%s': scan reference holds %zu bases but "
                    "the segment map covers %llu",
                    name_.c_str(), scan_ref_->size(),
                    (unsigned long long)segmentsLocalLength(*segments_));
    }
}

std::future<ShardWorker::Response>
ShardWorker::submit(Request req)
{
    exma_assert(req.queries != nullptr, "request without a query batch");
    // Promise and request ride the inbox in shared_ptrs because
    // ThreadPool tasks are std::functions (copyable).
    auto promise = std::make_shared<std::promise<Response>>();
    auto future = promise->get_future();
    auto shared_req = std::make_shared<Request>(std::move(req));
    inbox_.submit([this, promise, shared_req] {
        try {
            promise->set_value(process(*shared_req));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    });
    return future;
}

ShardWorker::Response
ShardWorker::process(const Request &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    Response out;
    out.ids = req.ids;

    if (table_) {
        BatchConfig cfg = req.cfg;
        cfg.threads = 1; // the worker thread IS the execution lane
        cfg.locate = true;
        cfg.per_query_stats = false;
        // Caps are the router's job, applied after the cross-shard
        // merge; a per-shard cap would keep a shard-dependent subset.
        cfg.locate_limit = 0;
        BatchResult br =
            BatchSearcher(*table_, cfg).search(*req.queries, req.ids);
        out.hits = std::move(br.positions);
        out.stats = br.stats;
    } else {
        out.hits.resize(req.ids.size());
        if (scan_ref_) {
            for (size_t j = 0; j < req.ids.size(); ++j)
                scanQuery((*req.queries)[req.ids[j]], out.hits[j]);
        }
        // Empty shard: its prefix range has no occurrences, so no
        // query routed here can match — every response is hitless.
    }

    processed_.fetch_add(1, std::memory_order_relaxed);
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

void
ShardWorker::scanQuery(const std::vector<Base> &query,
                       std::vector<u64> &hits) const
{
    // Tiny shards are not worth an ExmaTable: scan each segment
    // directly. A match must fit inside one segment, which the
    // per-segment search range enforces by construction; segments
    // ascend in both coordinate spaces, so hits come out sorted.
    for (const TextSegment &seg : *segments_) {
        if (seg.length < query.size())
            continue;
        const auto begin =
            scan_ref_->begin() + static_cast<std::ptrdiff_t>(seg.local_begin);
        const auto end = begin + static_cast<std::ptrdiff_t>(seg.length);
        for (auto it = std::search(begin, end, query.begin(), query.end());
             it != end;
             it = std::search(it + 1, end, query.begin(), query.end()))
            hits.push_back(seg.global_begin + static_cast<u64>(it - begin));
    }
}

} // namespace exma
