#include "route/shard_worker.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/logging.hh"

namespace exma {

ShardWorker::ShardWorker(std::string name, const ExmaTable *table,
                         const std::vector<Base> *scan_ref,
                         const std::vector<TextSegment> *segments)
    : name_(std::move(name)), table_(table), scan_ref_(scan_ref),
      segments_(segments)
{
    exma_assert(!(table_ && scan_ref_),
                "worker '%s' got both a table and a scan reference",
                name_.c_str());
    if (table_)
        exma_assert(table_->segmented(),
                    "worker '%s' needs a segment-mapped table to "
                    "translate hits into global coordinates",
                    name_.c_str());
    if (scan_ref_) {
        exma_assert(segments_ && !segments_->empty(),
                    "worker '%s' scans but has no segment map",
                    name_.c_str());
        exma_assert(scan_ref_->size() == segmentsLocalLength(*segments_),
                    "worker '%s': scan reference holds %zu bases but "
                    "the segment map covers %llu",
                    name_.c_str(), scan_ref_->size(),
                    (unsigned long long)segmentsLocalLength(*segments_));
    }
    thread_ = std::thread([this] { run(); });
}

ShardWorker::~ShardWorker()
{
    {
        MutexLock lock(mtx_);
        stop_ = true;
    }
    cancel_.cancel();
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Anything still queued resolves with a typed WorkerDown response —
    // never a broken promise surfacing as std::future_error.
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    for (Pending &p : doomed)
        resolveDown(p);
}

u64
ShardWorker::responseCanary(const Response &r)
{
    u64 h = 14695981039346656037ULL; // FNV-1a offset basis
    const auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(r.ids.size());
    for (const u32 id : r.ids)
        mix(id);
    for (const auto &hits : r.hits) {
        mix(hits.size());
        for (const u64 pos : hits)
            mix(pos);
    }
    return h;
}

std::future<ShardWorker::Response>
ShardWorker::submit(Request req)
{
    exma_assert(req.queries != nullptr, "request without a query batch");
    Pending p;
    p.req = std::move(req);
    std::future<Response> future = p.promise.get_future();
    inbox_depth_.fetch_add(1, std::memory_order_relaxed);

    bool down = false;
    {
        MutexLock lock(mtx_);
        // The dead_ check lives under the inbox lock: kill() stores
        // dead_ before draining under this lock, so either we observe
        // dead_ here, or our entry is in the inbox before the drain
        // sweeps it. No request can slip between the two and dangle.
        if (dead_.load(std::memory_order_acquire) || stop_)
            down = true;
        else
            inbox_.push_back(std::move(p));
    }
    if (down)
        resolveDown(p);
    else
        cv_.notify_one();
    return future;
}

void
ShardWorker::kill()
{
    markDead();
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    cv_.notify_all();
    for (Pending &p : doomed)
        resolveDown(p);
}

void
ShardWorker::markDead()
{
    dead_.store(true, std::memory_order_release);
    cancel_.cancel(); // wake any injected hang/delay immediately
}

void
ShardWorker::resolveDown(Pending &p)
{
    Response r;
    r.status = Status::WorkerDown;
    r.error = "worker '" + name_ + "' down";
    r.ids = p.req.ids;
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(r));
}

void
ShardWorker::run()
{
    for (;;) {
        Pending p;
        {
            MutexLock lock(mtx_);
            while (!stop_ && !dead_.load(std::memory_order_relaxed) &&
                   inbox_.empty())
                cv_.wait(lock);
            if (stop_ || dead_.load(std::memory_order_relaxed))
                return; // queued entries are drained by kill()/dtor
            p = std::move(inbox_.front());
            inbox_.pop_front();
        }
        serve(std::move(p));
        if (isDead())
            return;
    }
}

void
ShardWorker::serve(Pending p)
{
    heartbeat_.fetch_add(1, std::memory_order_relaxed);

    bool inject_throw = false;
    bool inject_corrupt = false;
    if (FaultInjector *fi = faultInjector()) {
        for (const FaultAction &a : fi->at(name_)) {
            switch (a.kind) {
            case FaultKind::KillWorker:
                markDead();
                resolveDown(p);
                kill(); // drain whatever queued behind this request
                return;
            case FaultKind::HangRequest:
                // Stuck replica: no heartbeat until the supervisor (or
                // a kill) cancels the sleep; then the worker is gone.
                cancel_.sleepFor(a.ms);
                markDead();
                resolveDown(p);
                kill();
                return;
            case FaultKind::DelayMs:
                // Slow replica: serve late — unless the worker died
                // (or is being destroyed) mid-sleep.
                if (!cancel_.sleepFor(a.ms)) {
                    resolveDown(p);
                    return;
                }
                break;
            case FaultKind::ThrowInProcess:
                inject_throw = true;
                break;
            case FaultKind::CorruptResponse:
                inject_corrupt = true;
                break;
            }
        }
    }

    Response out;
    try {
        if (inject_throw)
            throw std::runtime_error("injected fault: process() threw in "
                                     "worker '" +
                                     name_ + "'");
        out = process(p.req);
    } catch (const std::exception &e) {
        out = Response{};
        out.status = Status::Failed;
        out.error = e.what();
        out.ids = p.req.ids;
    }

    if (isDead()) {
        // Killed while computing: a dead worker never answers Ok, so
        // the router's failover path sees one consistent signal.
        resolveDown(p);
        return;
    }

    if (out.ok()) {
        out.canary = responseCanary(out);
        if (inject_corrupt) {
            // Flip payload *after* the canary stamp — the router must
            // catch this via recompute, like a wire checksum would.
            bool flipped = false;
            for (auto &hits : out.hits) {
                if (!hits.empty()) {
                    hits.front() ^= 1;
                    flipped = true;
                    break;
                }
            }
            if (!flipped)
                out.ids.push_back(~u32{0});
        }
    }
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    processed_.fetch_add(1, std::memory_order_relaxed);
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(out));
}

ShardWorker::Response
ShardWorker::process(const Request &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    Response out;
    out.ids = req.ids;

    if (table_) {
        BatchConfig cfg = req.cfg;
        cfg.threads = 1; // the worker thread IS the execution lane
        cfg.locate = true;
        cfg.per_query_stats = false;
        // Caps are the router's job, applied after the cross-shard
        // merge; a per-shard cap would keep a shard-dependent subset.
        cfg.locate_limit = 0;
        // Chunk-granular liveness: the supervisor reads this to tell
        // "slow batch" from "hung worker".
        cfg.progress = [this] {
            heartbeat_.fetch_add(1, std::memory_order_relaxed);
        };
        BatchResult br =
            BatchSearcher(*table_, cfg).search(*req.queries, req.ids);
        out.hits = std::move(br.positions);
        out.stats = br.stats;
    } else {
        out.hits.resize(req.ids.size());
        if (scan_ref_) {
            for (size_t j = 0; j < req.ids.size(); ++j) {
                scanQuery((*req.queries)[req.ids[j]], out.hits[j]);
                heartbeat_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        // Empty shard: its prefix range has no occurrences, so no
        // query routed here can match — every response is hitless.
    }

    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

void
ShardWorker::scanQuery(const std::vector<Base> &query,
                       std::vector<u64> &hits) const
{
    // Tiny shards are not worth an ExmaTable: scan each segment
    // directly. A match must fit inside one segment, which the
    // per-segment search range enforces by construction; segments
    // ascend in both coordinate spaces, so hits come out sorted.
    for (const TextSegment &seg : *segments_) {
        if (seg.length < query.size())
            continue;
        const auto begin =
            scan_ref_->begin() + static_cast<std::ptrdiff_t>(seg.local_begin);
        const auto end = begin + static_cast<std::ptrdiff_t>(seg.length);
        for (auto it = std::search(begin, end, query.begin(), query.end());
             it != end;
             it = std::search(it + 1, end, query.begin(), query.end()))
            hits.push_back(seg.global_begin + static_cast<u64>(it - begin));
    }
}

} // namespace exma
