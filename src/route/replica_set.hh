/**
 * @file
 * R-way replication of one shard: a ReplicaSet owns R transports
 * serving the same prefix range off the same immutable shard state
 * (table / scan reference / segment map — mmap-backed when the index
 * was loaded, so a respawn is pointer reuse, not a rebuild; the
 * software analogue of the paper's per-channel redundancy the hardware
 * never needed).
 *
 * The set is transport-agnostic: it spawns replicas through a
 * TransportFactory, so the same routing/supervision machinery drives
 * in-process ShardWorkers and out-of-process SocketTransports — a
 * respawn of the latter is a real fork/exec of a fresh worker process.
 *
 * Routing is power-of-two-choices by inbox depth: pick() samples two
 * live replicas and returns the shallower one, which keeps hot-prefix
 * load spread without global coordination. Replica names are stable
 * across respawns ("<shard>/r<i>"), so fault-injection sites and their
 * hit counters survive a respawn — kill-every-Nth keeps firing on the
 * replacement, which is exactly what the kill-loop soak wants.
 *
 * Health: superviseOnce() replaces dead replicas and puts down hung
 * ones (inbox non-empty but heartbeat frozen past the timeout) before
 * replacing them too. The router additionally calls reviveDead()
 * inline on failover so a request never waits for the supervisor tick
 * to find a live replica.
 */

#ifndef EXMA_ROUTE_REPLICA_SET_HH
#define EXMA_ROUTE_REPLICA_SET_HH

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "transport/transport.hh"

namespace exma {

/**
 * Spawns one replica transport given its stable name
 * ("<shard>/r<i>"). Called under the set's lock, so it must not
 * block on the set itself; spawning a child process is fine.
 */
using TransportFactory =
    std::function<std::shared_ptr<Transport>(const std::string &name)>;

class ReplicaSet
{
  public:
    /**
     * Spawns @p replicas transports named "<shard_name>/r<i>" via
     * @p factory over shared shard state the factory closes over.
     */
    ReplicaSet(std::string shard_name, TransportFactory factory,
               unsigned replicas);

    ReplicaSet(const ReplicaSet &) = delete;
    ReplicaSet &operator=(const ReplicaSet &) = delete;

    const std::string &shardName() const { return shard_name_; }
    unsigned size() const { return replica_count_; }

    /**
     * Power-of-two-choices: sample two live replicas, return the one
     * with the shallower inbox. Falls back to reviving a dead replica
     * inline when none is live — pick() always returns a transport
     * that was live at selection time.
     */
    std::shared_ptr<Transport> pick();

    /** pick(), but avoiding @p not_this (for retries and hedges) when
     *  any other live replica exists. */
    std::shared_ptr<Transport> pickOther(const Transport *not_this);

    /** Snapshot of replica @p i (present even when dead). */
    std::shared_ptr<Transport> replica(unsigned i) const;

    /** Crash switch for tests, benches, and the kill-loop soak. */
    void killReplica(unsigned i);

    /** Respawn every dead replica now; returns how many. */
    u64 reviveDead();

    /**
     * One supervisor pass: respawn dead replicas, and kill-then-respawn
     * any replica whose inbox is non-empty but whose heartbeat has not
     * moved for @p hang_timeout_ms. Returns respawn count.
     */
    u64 superviseOnce(u64 hang_timeout_ms);

    /** Replicas respawned over the set's lifetime (monotonic). */
    u64 respawns() const
    {
        return respawns_.load(std::memory_order_relaxed);
    }

    /** @{ Shard-state views, uniform across replicas. */
    bool hasTable() const { return has_table_; }
    bool isEmpty() const { return is_empty_; }
    /** @} */

    /** Requests served across all replicas, dead incarnations
     *  included (monotonic). */
    u64 processedTotal() const;

  private:
    std::shared_ptr<Transport> spawnLocked(unsigned i)
        EXMA_REQUIRES(mtx_);
    /**
     * Respawn every dead replica, moving the dead incarnations into
     * @p retired instead of destroying them: a transport's destructor
     * joins its serving thread (and reaps its child process), and a
     * join must never run under mtx_ (the blocked-under-lock
     * analyzer's rule). Callers declare `retired` *before* their
     * MutexLock so the retirees destruct after the lock releases.
     */
    u64 reviveDeadLocked(std::vector<std::shared_ptr<Transport>> &retired)
        EXMA_REQUIRES(mtx_);
    /** Uniform index in [0, n) off the lock-free pick sequence. */
    u64 draw(u64 n);

    const std::string shard_name_;
    const TransportFactory factory_;
    const unsigned replica_count_;
    /** Shard-state flags, captured from the first spawn (uniform). */
    bool has_table_ = false;
    bool is_empty_ = false;

    /** Per-replica heartbeat watermark for hang detection. */
    struct Health
    {
        u64 heartbeat = 0;
        std::chrono::steady_clock::time_point changed;
    };

    mutable Mutex mtx_;
    std::vector<std::shared_ptr<Transport>> replicas_
        EXMA_GUARDED_BY(mtx_);
    std::vector<Health> health_ EXMA_GUARDED_BY(mtx_);
    std::atomic<u64> respawns_{0};
    std::atomic<u64> retired_processed_{0};
    std::atomic<u64> pick_seq_{0};
};

} // namespace exma

#endif // EXMA_ROUTE_REPLICA_SET_HH
