#include "route/replica_set.hh"

#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"

namespace exma {

ReplicaSet::ReplicaSet(std::string shard_name, TransportFactory factory,
                       unsigned replicas)
    : shard_name_(std::move(shard_name)), factory_(std::move(factory)),
      replica_count_(replicas == 0 ? 1 : replicas)
{
    exma_assert(factory_ != nullptr,
                "replica set '%s' needs a transport factory",
                shard_name_.c_str());
    MutexLock lock(mtx_);
    replicas_.reserve(replica_count_);
    health_.resize(replica_count_);
    const auto now = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < replica_count_; ++i) {
        replicas_.push_back(spawnLocked(i));
        health_[i] = {0, now};
    }
    // Shard-state flags are a property of the shared shard state, not
    // of any one incarnation, so the first spawn's answer stands.
    has_table_ = replicas_[0]->hasTable();
    is_empty_ = replicas_[0]->isEmpty();
}

std::shared_ptr<Transport>
ReplicaSet::spawnLocked(unsigned i)
{
    // Stable name: respawns keep the fault-injection site (and its hit
    // counters) of the incarnation they replace.
    return factory_(shard_name_ + "/r" + std::to_string(i));
}

u64
ReplicaSet::draw(u64 n)
{
    // A stateless hash of the pick sequence: deterministic enough for
    // reproducibility, uncorrelated enough for load spreading, and no
    // shared Rng state to guard.
    return SplitMix64(pick_seq_.fetch_add(1, std::memory_order_relaxed))
               .next() %
           n;
}

std::shared_ptr<Transport>
ReplicaSet::pick()
{
    // Declared before the lock: dead incarnations retired by the
    // revive below destruct (and join their threads) only after the
    // lock releases at return.
    std::vector<std::shared_ptr<Transport>> retired;
    MutexLock lock(mtx_);
    std::vector<unsigned> live;
    live.reserve(replica_count_);
    for (unsigned i = 0; i < replica_count_; ++i) {
        if (!replicas_[i]->isDead())
            live.push_back(i);
    }
    if (live.empty()) {
        reviveDeadLocked(retired);
        for (unsigned i = 0; i < replica_count_; ++i)
            live.push_back(i);
    }
    if (live.size() == 1)
        return replicas_[live[0]];
    // Two choices, distinct, least-loaded wins.
    const u64 a = draw(live.size());
    u64 b = draw(live.size() - 1);
    if (b >= a)
        ++b;
    const auto &wa = replicas_[live[a]];
    const auto &wb = replicas_[live[b]];
    return wa->inboxDepth() <= wb->inboxDepth() ? wa : wb;
}

std::shared_ptr<Transport>
ReplicaSet::pickOther(const Transport *not_this)
{
    {
        MutexLock lock(mtx_);
        std::vector<unsigned> live;
        live.reserve(replica_count_);
        for (unsigned i = 0; i < replica_count_; ++i) {
            if (!replicas_[i]->isDead() && replicas_[i].get() != not_this)
                live.push_back(i);
        }
        if (!live.empty())
            return replicas_[live[draw(live.size())]];
    }
    // No live alternative: fall back to pick(), which revives.
    return pick();
}

std::shared_ptr<Transport>
ReplicaSet::replica(unsigned i) const
{
    MutexLock lock(mtx_);
    exma_assert(i < replicas_.size(), "replica %u of %zu", i,
                replicas_.size());
    return replicas_[i];
}

void
ReplicaSet::killReplica(unsigned i)
{
    // Snapshot under the lock, kill outside it: kill() resolves queued
    // promises, and promise continuations must not run under mtx_.
    std::shared_ptr<Transport> w = replica(i);
    w->kill();
}

u64
ReplicaSet::reviveDeadLocked(
    std::vector<std::shared_ptr<Transport>> &retired)
{
    u64 revived = 0;
    for (unsigned i = 0; i < replica_count_; ++i) {
        if (!replicas_[i]->isDead())
            continue;
        retired_processed_.fetch_add(replicas_[i]->processed(),
                                     std::memory_order_relaxed);
        // Move the dead incarnation out instead of dropping it here:
        // the last shared_ptr runs the transport's destructor, which
        // joins the serving thread, and that join must happen after
        // the caller releases mtx_.
        retired.push_back(std::move(replicas_[i]));
        replicas_[i] = spawnLocked(i);
        health_[i] = {0, std::chrono::steady_clock::now()};
        respawns_.fetch_add(1, std::memory_order_relaxed);
        ++revived;
    }
    return revived;
}

u64
ReplicaSet::reviveDead()
{
    std::vector<std::shared_ptr<Transport>> retired;
    MutexLock lock(mtx_);
    return reviveDeadLocked(retired);
}

u64
ReplicaSet::superviseOnce(u64 hang_timeout_ms)
{
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Transport>> hung;
    {
        MutexLock lock(mtx_);
        for (unsigned i = 0; i < replica_count_; ++i) {
            const auto &w = replicas_[i];
            if (w->isDead())
                continue;
            const u64 hb = w->heartbeat();
            if (w->inboxDepth() == 0 || hb != health_[i].heartbeat) {
                health_[i] = {hb, now};
                continue;
            }
            if (now - health_[i].changed >=
                std::chrono::milliseconds(hang_timeout_ms))
                hung.push_back(w);
        }
    }
    // Kill outside the lock (resolves promises), then respawn.
    for (const auto &w : hung) {
        exma_warn("supervisor: replica '%s' hung (inbox %llu, no "
                  "heartbeat for %llu ms) — killing",
                  w->name().c_str(),
                  static_cast<unsigned long long>(w->inboxDepth()),
                  static_cast<unsigned long long>(hang_timeout_ms));
        w->kill();
    }
    std::vector<std::shared_ptr<Transport>> retired;
    MutexLock lock(mtx_);
    return reviveDeadLocked(retired);
}

u64
ReplicaSet::processedTotal() const
{
    u64 total = retired_processed_.load(std::memory_order_relaxed);
    MutexLock lock(mtx_);
    for (const auto &w : replicas_)
        total += w->processed();
    return total;
}

} // namespace exma
