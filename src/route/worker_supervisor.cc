#include "route/worker_supervisor.hh"

#include <chrono>
#include <utility>

namespace exma {

WorkerSupervisor::WorkerSupervisor(std::vector<ReplicaSet *> sets,
                                   Config cfg)
    : sets_(std::move(sets)), cfg_(cfg)
{
    thread_ = std::thread([this] { loop(); });
}

WorkerSupervisor::~WorkerSupervisor()
{
    {
        MutexLock lock(mtx_);
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
WorkerSupervisor::loop()
{
    for (;;) {
        {
            MutexLock lock(mtx_);
            // Bounded wait, not sleep: destruction must not stall a
            // full interval behind a long sweep period.
            cv_.wait_for(lock,
                         std::chrono::milliseconds(cfg_.interval_ms));
            if (stop_)
                return;
        }
        for (ReplicaSet *set : sets_)
            set->superviseOnce(cfg_.hang_timeout_ms);
    }
}

} // namespace exma
