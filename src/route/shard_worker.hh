/**
 * @file
 * One shard's execution engine behind a message-passing seam: a
 * ShardWorker owns a dedicated thread whose work queue is the worker's
 * inbox. Callers submit a Request (a view of a shared query batch plus
 * the ids this shard should serve) and get a completion future; the
 * worker thread drains its inbox in order and fulfils each future with
 * translated global hit positions.
 *
 * The shape is deliberately that of an RPC endpoint — request in,
 * response out, no shared mutable state beyond the inbox — so a later
 * PR can move workers out-of-process (the EXMA paper's channels are
 * physically separate DIMMs; FindeR's banks are independent rank
 * engines) by serialising Request/Response instead of passing
 * pointers. To that end failures are *data, not exceptions*: every
 * submitted future resolves with a typed Response whose status says
 * Ok, Failed (process() threw; the message rides along), or WorkerDown
 * (the worker died or was destroyed before serving it). A future
 * obtained from submit() never throws and is never abandoned to
 * std::future_error — exactly the contract a socket transport would
 * give.
 *
 * Fault injection (src/fault/) probes the worker's stable name as its
 * site on every dequeue, so a FaultInjector can kill this worker on
 * its Nth request, hang it, delay it, make process() throw, or corrupt
 * the response payload after the integrity canary is stamped. The
 * heartbeat counter ticks on every dequeue and every processed batch
 * chunk (BatchConfig::progress), letting a WorkerSupervisor tell a
 * slow worker from a hung one.
 *
 * Thread-safety analysis: the inbox deque and stop flag are
 * EXMA_GUARDED_BY the worker mutex; depth/heartbeat/processed/dead are
 * lock-free atomics. Everything else the worker touches (table_,
 * scan_ref_, segments_) is immutable after construction. Route new
 * mutable state through the mutex or an atomic; the analysis gate is
 * on the clang CI leg.
 */

#ifndef EXMA_ROUTE_SHARD_WORKER_HH
#define EXMA_ROUTE_SHARD_WORKER_HH

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch_searcher.hh"
#include "common/thread_annotations.hh"
#include "core/exma_table.hh"
#include "fault/fault_injector.hh"

namespace exma {

class ShardWorker
{
  public:
    /** One unit of inbox work: serve @p ids out of a shared batch. */
    struct Request
    {
        /** Shared query batch; must outlive the completion future. */
        const std::vector<std::vector<Base>> *queries = nullptr;
        /** Indices into *queries this shard serves. */
        std::vector<u32> ids;
        /** Per-request search knobs (threads are forced to 1: the
         *  worker's parallelism is the worker, cross-shard). */
        BatchConfig cfg;
    };

    enum class Status : u8 {
        Ok,         ///< hits are valid (canary-checkable)
        Failed,     ///< process() threw; error holds the message
        WorkerDown, ///< worker died/destroyed before serving this
    };

    /** Outcome, index-aligned with Request::ids. */
    struct Response
    {
        Status status = Status::Ok;
        std::string error; ///< diagnostic for Failed / WorkerDown
        std::vector<u32> ids;
        /** Global match positions per id, sorted ascending. Within one
         *  shard a global position occurs at most once (segment maps
         *  never overlap themselves), so no per-shard dedup is run. */
        std::vector<std::vector<u64>> hits;
        /** Integrity stamp over ids+hits (responseCanary); the router
         *  recomputes it and discards mismatching responses the way it
         *  would a failed checksum on a wire transport. */
        u64 canary = 0;
        SearchStats stats;
        double seconds = 0.0; ///< worker-side wall clock for the batch

        bool ok() const { return status == Status::Ok; }
    };

    /** The integrity stamp Response::canary carries (FNV-1a). */
    static u64 responseCanary(const Response &r);

    /**
     * @param name      stable worker name; also the fault-injection
     *                  site ("<shard>/r<i>" in a ReplicaSet).
     * @param table     the shard's segment-mapped ExmaTable, or null
     *                  when the shard is too small to index.
     * @param scan_ref  extracted local reference for table-less shards
     *                  (served by direct scanning), or null.
     * @param segments  the shard's segment map; may be empty/null only
     *                  with both @p table and @p scan_ref null — an
     *                  empty shard, which answers every query with no
     *                  hits.
     */
    ShardWorker(std::string name, const ExmaTable *table,
                const std::vector<Base> *scan_ref,
                const std::vector<TextSegment> *segments);

    /**
     * Stops the worker thread. Pending inbox entries resolve with
     * WorkerDown (never a broken promise); an in-flight request is
     * allowed to finish, with injected sleeps cancelled.
     */
    ~ShardWorker();

    ShardWorker(const ShardWorker &) = delete;
    ShardWorker &operator=(const ShardWorker &) = delete;

    /**
     * Enqueue a request on the inbox; resolves when the worker thread
     * has served it. Requests are served in submission order. Never
     * blocks; submitting to a dead worker resolves immediately with
     * WorkerDown.
     */
    std::future<Response> submit(Request req);

    /**
     * Simulate worker death: mark dead, cancel any injected sleep, and
     * resolve every queued request with WorkerDown. The supervisor
     * uses this to put down hung workers; tests and the kill-loop soak
     * use it as the crash switch.
     */
    void kill();

    bool isDead() const { return dead_.load(std::memory_order_acquire); }

    /** Queued + in-flight requests — the power-of-two-choices load
     *  signal. */
    u64 inboxDepth() const
    {
        return inbox_depth_.load(std::memory_order_relaxed);
    }

    /** Liveness counter: ticks on dequeue and per processed chunk. A
     *  worker with inboxDepth() > 0 and a frozen heartbeat is hung. */
    u64 heartbeat() const
    {
        return heartbeat_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    bool hasTable() const { return table_ != nullptr; }
    bool isEmpty() const { return table_ == nullptr && scan_ref_ == nullptr; }

    /** Requests served to completion (Ok or Failed; monotonic). */
    u64 processed() const { return processed_.load(std::memory_order_relaxed); }

  private:
    struct Pending
    {
        Request req;
        std::promise<Response> promise;
    };

    void run();
    void serve(Pending p);
    /** Resolve @p p with WorkerDown and release its inbox-depth slot. */
    void resolveDown(Pending &p);
    void markDead();
    Response process(const Request &req);
    void scanQuery(const std::vector<Base> &query,
                   std::vector<u64> &hits) const;

    std::string name_;
    const ExmaTable *table_;
    const std::vector<Base> *scan_ref_;
    const std::vector<TextSegment> *segments_;

    std::atomic<u64> processed_{0};
    std::atomic<u64> heartbeat_{0};
    std::atomic<u64> inbox_depth_{0};
    std::atomic<bool> dead_{false};
    CancelToken cancel_;

    Mutex mtx_;
    CondVar cv_;
    std::deque<Pending> inbox_ EXMA_GUARDED_BY(mtx_);
    bool stop_ EXMA_GUARDED_BY(mtx_) = false;
    std::thread thread_; ///< last member: joins before the rest dies
};

} // namespace exma

#endif // EXMA_ROUTE_SHARD_WORKER_HH
