/**
 * @file
 * One shard's execution engine behind a message-passing seam: a
 * ShardWorker owns a dedicated ThreadPool thread whose task queue is
 * the worker's inbox. Callers submit a Request (a view of a shared
 * query batch plus the ids this shard should serve) and get a
 * completion future; the worker thread drains its inbox in order and
 * fulfils each future with translated global hit positions.
 *
 * The shape is deliberately that of an RPC endpoint — request in,
 * response out, no shared mutable state beyond the immutable shard
 * data — so a later PR can move workers out-of-process (the EXMA
 * paper's channels are physically separate DIMMs; FindeR's banks are
 * independent rank engines) by serialising Request/Response instead of
 * passing pointers.
 *
 * Thread-safety analysis: the worker's only mutable shared state is
 * the inbox queue — the annotated deque inside ThreadPool (see
 * common/thread_annotations.hh) — and the lock-free processed_
 * counter. Everything else the worker touches (table_, scan_ref_,
 * segments_) is immutable after construction, so there is nothing
 * here for EXMA_GUARDED_BY to guard; keep it that way when extending
 * the worker, or route new mutable state through an exma::Mutex.
 */

#ifndef EXMA_ROUTE_SHARD_WORKER_HH
#define EXMA_ROUTE_SHARD_WORKER_HH

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "batch/batch_searcher.hh"
#include "common/thread_pool.hh"
#include "core/exma_table.hh"

namespace exma {

class ShardWorker
{
  public:
    /** One unit of inbox work: serve @p ids out of a shared batch. */
    struct Request
    {
        /** Shared query batch; must outlive the completion future. */
        const std::vector<std::vector<Base>> *queries = nullptr;
        /** Indices into *queries this shard serves. */
        std::vector<u32> ids;
        /** Per-request search knobs (threads are forced to 1: the
         *  worker's parallelism is the worker, cross-shard). */
        BatchConfig cfg;
    };

    /** Outcome, index-aligned with Request::ids. */
    struct Response
    {
        std::vector<u32> ids;
        /** Global match positions per id, sorted ascending. Within one
         *  shard a global position occurs at most once (segment maps
         *  never overlap themselves), so no per-shard dedup is run. */
        std::vector<std::vector<u64>> hits;
        SearchStats stats;
        double seconds = 0.0; ///< worker-side wall clock for the batch
    };

    /**
     * @param name      shard name (diagnostics).
     * @param table     the shard's segment-mapped ExmaTable, or null
     *                  when the shard is too small to index.
     * @param scan_ref  extracted local reference for table-less shards
     *                  (served by direct scanning), or null.
     * @param segments  the shard's segment map; may be empty/null only
     *                  with both @p table and @p scan_ref null — an
     *                  empty shard, which answers every query with no
     *                  hits.
     */
    ShardWorker(std::string name, const ExmaTable *table,
                const std::vector<Base> *scan_ref,
                const std::vector<TextSegment> *segments);

    ShardWorker(const ShardWorker &) = delete;
    ShardWorker &operator=(const ShardWorker &) = delete;

    /** Enqueue a request on the inbox; resolves when the worker thread
     *  has served it. Requests are served in submission order. */
    std::future<Response> submit(Request req);

    const std::string &name() const { return name_; }
    bool hasTable() const { return table_ != nullptr; }
    bool isEmpty() const { return table_ == nullptr && scan_ref_ == nullptr; }

    /** Requests served so far (monotonic). */
    u64 processed() const { return processed_.load(std::memory_order_relaxed); }

  private:
    Response process(const Request &req);
    void scanQuery(const std::vector<Base> &query,
                   std::vector<u64> &hits) const;

    std::string name_;
    const ExmaTable *table_;
    const std::vector<Base> *scan_ref_;
    const std::vector<TextSegment> *segments_;
    std::atomic<u64> processed_{0};
    /** The dedicated thread; its task deque is the inbox queue. */
    ThreadPool inbox_{1};
};

} // namespace exma

#endif // EXMA_ROUTE_SHARD_WORKER_HH
