#include "route/shard_router.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <string_view>
#include <thread>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "fault/fault_injector.hh"
#include "io/table_io.hh"
#include "transport/shard_worker.hh"
#include "transport/socket_transport.hh"

namespace exma {

namespace {

using Clock = std::chrono::steady_clock;

void
checkQueries(const ShardPlan &plan,
             const std::vector<std::vector<Base>> &queries)
{
    exma_assert(queries.size() <= ~u32{0},
                "batch of %zu queries exceeds the u32 routing id space",
                queries.size());
    for (const auto &q : queries) {
        exma_assert(!q.empty(), "routed search: empty query");
        if (plan.boundsQueries())
            exma_assert(q.size() <= plan.maxQueryLen(),
                        "routed search: %zu-base query exceeds the "
                        "plan's max_query_len of %llu — matches could "
                        "run past a shard's context windows; re-plan "
                        "with a larger max_query_len",
                        q.size(),
                        (unsigned long long)plan.maxQueryLen());
    }
}

TransportKind
resolveTransportKind(TransportKind kind)
{
    if (kind != TransportKind::Auto)
        return kind;
    const char *env = std::getenv("EXMA_TRANSPORT");
    if (env == nullptr || *env == '\0')
        return TransportKind::InProcess;
    const std::string_view v(env);
    if (v == "socket")
        return TransportKind::Socket;
    if (v != "inproc")
        exma_warn("EXMA_TRANSPORT='%s' is not 'socket' or 'inproc' — "
                  "serving in-process",
                  env);
    return TransportKind::InProcess;
}

/** One submission of a shard call to a specific replica. */
struct Attempt
{
    std::shared_ptr<Transport> worker;
    std::future<WorkerResponse> fut;
};

/** One shard's slice of the batch, across however many attempts its
 *  resolution takes. */
struct ShardCall
{
    size_t shard = 0;
    std::vector<u32> ids; ///< kept for resubmission
    std::vector<Attempt> attempts;
    unsigned retries = 0;
    bool hedged = false;
    bool done = false;
    bool failed = false; ///< done without a verified response
    WorkerResponse resp; ///< the accepted response iff !failed
    Clock::time_point last_submit;
};

bool
anyAttemptInFlight(const ShardCall &c)
{
    for (const Attempt &a : c.attempts)
        if (a.fut.valid())
            return true;
    return false;
}

} // namespace

ShardRouter::ShardRouter(const std::vector<Base> &ref, const ShardPlan &plan,
                         const RouterConfig &cfg)
    : plan_(plan), cfg_(cfg)
{
    installFaultInjectorFromEnvOnce();
    exma_assert(plan_.size() > 0, "shard plan holds no shards");
    exma_assert(plan_.refLength() == ref.size(),
                "shard plan covers %llu bases but the reference holds "
                "%zu",
                (unsigned long long)plan_.refLength(), ref.size());

    const size_t n_shards = plan_.size();
    segments_.resize(n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
        if (plan_.kind() == ShardPlanKind::KmerPrefix) {
            segments_[s] = plan_.segmentsOf(s);
        } else {
            const Shard &sh = plan_.shards()[s];
            exma_assert(sh.end() <= ref.size(),
                        "shard '%s' [%llu, %llu) runs past the reference",
                        sh.name.c_str(), (unsigned long long)sh.begin,
                        (unsigned long long)sh.end());
            segments_[s] = {TextSegment{sh.begin, 0, sh.length}};
        }
    }

    tables_.resize(n_shards);
    scan_refs_.resize(n_shards);
    const auto t0 = Clock::now();
    parallelFor(
        n_shards, 1,
        [&](u64 begin, u64 end, unsigned) {
            for (u64 s = begin; s < end; ++s) {
                const u64 local = segmentsLocalLength(segments_[s]);
                if (local == 0)
                    continue; // empty prefix range: hitless worker
                if (local < cfg_.min_table_bases)
                    scan_refs_[s] = extractSegments(ref, segments_[s]);
                else
                    tables_[s] = std::make_unique<ExmaTable>(
                        ref, segments_[s], cfg_.table);
            }
        },
        cfg_.build_threads);
    const auto t1 = Clock::now();
    build_seconds_ = std::chrono::duration<double>(t1 - t0).count();

    spawnReplicas();
}

ShardRouter::ShardRouter(ShardPlan plan, RouterConfig cfg,
                         std::vector<std::vector<TextSegment>> segments,
                         std::vector<std::unique_ptr<ExmaTable>> tables,
                         std::vector<std::vector<Base>> scan_refs,
                         double load_seconds)
    : plan_(std::move(plan)), cfg_(std::move(cfg)),
      segments_(std::move(segments)), tables_(std::move(tables)),
      scan_refs_(std::move(scan_refs)), build_seconds_(load_seconds)
{
    installFaultInjectorFromEnvOnce();
    const size_t n_shards = plan_.size();
    exma_assert(n_shards > 0, "shard plan holds no shards");
    exma_assert(segments_.size() == n_shards &&
                    tables_.size() == n_shards &&
                    scan_refs_.size() == n_shards,
                "adopted per-shard arrays disagree with the %zu-shard "
                "plan",
                n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
        const u64 local = segmentsLocalLength(segments_[s]);
        if (tables_[s]) {
            exma_assert(scan_refs_[s].empty(),
                        "shard %zu adopted both a table and a scan ref",
                        s);
            exma_assert(tables_[s]->rows() == local + 1,
                        "adopted table for shard %zu covers %llu rows, "
                        "its segment map holds %llu bases",
                        s, (unsigned long long)tables_[s]->rows(),
                        (unsigned long long)local);
        } else {
            exma_assert(scan_refs_[s].size() == local,
                        "adopted scan ref for shard %zu holds %zu "
                        "bases, its segment map %llu",
                        s, scan_refs_[s].size(),
                        (unsigned long long)local);
        }
    }
    spawnReplicas();
}

ShardRouter::~ShardRouter()
{
    // Workers go first: socket children serve off mmaps of the shard
    // files, so the directory outlives every child reap. (POSIX would
    // keep removed-but-mapped files readable anyway; this just keeps
    // the teardown order honest.)
    supervisor_.reset();
    sets_.clear();
    if (!temp_dir_.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(temp_dir_, ec);
        if (ec)
            exma_warn("router: failed to remove temp shard dir '%s': "
                      "%s",
                      temp_dir_.c_str(), ec.message().c_str());
    }
}

void
ShardRouter::prepareWorkerFiles()
{
    worker_binary_ = discoverWorkerBinary(cfg_.transport.worker_binary);
    if (!cfg_.transport.worker_dir.empty()) {
        // Shard files already on disk (a loaded index): the children
        // mmap the very same files the router loaded from.
        worker_dir_ = cfg_.transport.worker_dir;
        return;
    }
    // Built in memory: save the shards once into an owned temp
    // directory so children can mmap them; removed in the destructor.
    static std::atomic<u64> dir_seq{0};
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("exma-shards-" +
          std::to_string(static_cast<long long>(::getpid())) + "-" +
          std::to_string(dir_seq.fetch_add(1))))
            .string();
    std::filesystem::create_directories(dir);
    for (size_t s = 0; s < plan_.size(); ++s) {
        if (tables_[s])
            saveTableFiles(*tables_[s], io_detail::shardStem(dir, s));
        else if (!scan_refs_[s].empty())
            saveScanFiles(scan_refs_[s], segments_[s],
                          io_detail::shardStem(dir, s));
    }
    worker_dir_ = dir;
    temp_dir_ = dir;
}

TransportFactory
ShardRouter::shardFactory(size_t s)
{
    if (transport_kind_ == TransportKind::InProcess) {
        const ExmaTable *table = tables_[s].get();
        const std::vector<Base> *scan =
            scan_refs_[s].empty() ? nullptr : &scan_refs_[s];
        const std::vector<TextSegment> *segs = &segments_[s];
        return [table, scan,
                segs](const std::string &name) -> std::shared_ptr<Transport> {
            return std::make_shared<ShardWorker>(name, table, scan, segs);
        };
    }
    const bool has_table = tables_[s] != nullptr;
    const bool is_empty = !has_table && scan_refs_[s].empty();
    SocketTransportConfig scfg;
    scfg.binary = worker_binary_;
    scfg.state = has_table ? "table" : is_empty ? "empty" : "scan";
    if (!is_empty)
        scfg.stem = io_detail::shardStem(worker_dir_, s);
    return [scfg, has_table,
            is_empty](const std::string &name) -> std::shared_ptr<Transport> {
        return std::make_shared<SocketTransport>(name, scfg, has_table,
                                                 is_empty);
    };
}

void
ShardRouter::spawnReplicas()
{
    transport_kind_ = resolveTransportKind(cfg_.transport.kind);
    if (transport_kind_ == TransportKind::Socket)
        prepareWorkerFiles();
    for (size_t s = 0; s < plan_.size(); ++s)
        sets_.push_back(std::make_unique<ReplicaSet>(
            plan_.shards()[s].name, shardFactory(s),
            cfg_.failover.replicas));
    if (cfg_.failover.supervisor_interval_ms > 0) {
        std::vector<ReplicaSet *> raw;
        raw.reserve(sets_.size());
        for (const auto &set : sets_)
            raw.push_back(set.get());
        supervisor_ = std::make_unique<WorkerSupervisor>(
            std::move(raw),
            WorkerSupervisor::Config{cfg_.failover.supervisor_interval_ms,
                                     cfg_.failover.hang_timeout_ms});
    }
}

u64
ShardRouter::totalLocalBases() const
{
    u64 n = 0;
    for (const auto &segs : segments_)
        n += segmentsLocalLength(segs);
    return n;
}

u64
ShardRouter::totalRows() const
{
    u64 rows = 0;
    for (const auto &t : tables_)
        if (t)
            rows += t->rows();
    return rows;
}

RoutedResult
ShardRouter::search(const std::vector<std::vector<Base>> &queries,
                    const BatchConfig &cfg) const
{
    checkQueries(plan_, queries);

    const FailoverConfig &fo = cfg_.failover;
    RoutedResult out;
    out.queries = queries.size();
    out.hits.resize(queries.size());
    out.degraded.assign(queries.size(), 0);
    out.per_shard.assign(sets_.size(), SearchStats{});
    for (const auto &q : queries)
        out.bases += q.size();

    const bool broadcast_only =
        cfg_.force_broadcast || plan_.kind() != ShardPlanKind::KmerPrefix;

    const auto t0 = Clock::now();

    // Classify: one id list per shard, and per query the number of
    // shards serving it (hits from fan-out > 1 need deduplication).
    std::vector<std::vector<u32>> ids(sets_.size());
    std::vector<u8> fanout(queries.size(), 0);
    for (size_t i = 0; i < queries.size(); ++i) {
        size_t first = 0;
        size_t last = sets_.size() - 1;
        if (!broadcast_only) {
            const PrefixRange r = plan_.queryPrefixRange(
                queries[i].data(), queries[i].size());
            std::tie(first, last) = plan_.ownersOfRange(r.lo, r.hi);
        }
        for (size_t s = first; s <= last; ++s)
            ids[s].push_back(static_cast<u32>(i));
        const size_t n_owners = last - first + 1;
        fanout[i] = static_cast<u8>(std::min<size_t>(n_owners, 255));
        if (n_owners == 1)
            ++out.routed_queries;
        else
            ++out.broadcast_queries;
    }

    u64 respawns_before = 0;
    for (const auto &set : sets_)
        respawns_before += set->respawns();

    // Fan out: every shard with work becomes one ShardCall submitted
    // to a P2C-picked replica; the replicas' dedicated threads (or
    // worker processes) run concurrently.
    std::vector<ShardCall> calls;
    calls.reserve(sets_.size());
    for (size_t s = 0; s < sets_.size(); ++s) {
        if (ids[s].empty())
            continue;
        ShardCall c;
        c.shard = s;
        c.ids = std::move(ids[s]);
        calls.push_back(std::move(c));
    }
    const auto submitTo = [&queries, &cfg](ShardCall &c,
                                           std::shared_ptr<Transport> w) {
        Attempt at;
        at.fut =
            w->submit({QueryBatchView::borrow(queries, c.ids), cfg});
        at.worker = std::move(w);
        c.attempts.push_back(std::move(at));
        c.last_submit = Clock::now();
    };
    for (ShardCall &c : calls)
        submitTo(c, sets_[c.shard]->pick());

    // Gather with failover. Every future wait is bounded (wait_for);
    // a .get() only ever follows an observed ready state.
    const bool bounded = fo.deadline_ms > 0;
    const auto deadline = t0 + std::chrono::milliseconds(fo.deadline_ms);
    size_t open = calls.size();
    while (open > 0) {
        if (bounded && Clock::now() >= deadline) {
            for (ShardCall &c : calls) {
                if (c.done)
                    continue;
                c.done = true;
                c.failed = true;
                --open;
                ++out.failover.deadline_misses;
            }
            break;
        }

        bool progressed = false;
        for (ShardCall &c : calls) {
            if (c.done)
                continue;
            // Poll every in-flight attempt; first verified Ok wins.
            for (Attempt &at : c.attempts) {
                if (!at.fut.valid())
                    continue;
                if (at.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                    continue;
                WorkerResponse r = at.fut.get();
                progressed = true;
                if (r.ok() && responseCanary(r) == r.canary) {
                    c.resp = std::move(r);
                    c.done = true;
                    --open;
                    break;
                }
                switch (r.status) {
                case WorkerStatus::WorkerDown:
                    ++out.failover.worker_down;
                    break;
                case WorkerStatus::Failed:
                    ++out.failover.failed;
                    break;
                case WorkerStatus::Ok: // canary mismatch
                    ++out.failover.corrupt;
                    break;
                }
            }
            if (c.done)
                continue;

            if (!anyAttemptInFlight(c)) {
                // Every attempt came back bad: retry on another
                // replica, or give up and degrade.
                if (c.retries >= fo.max_retries) {
                    c.done = true;
                    c.failed = true;
                    --open;
                    continue;
                }
                const u64 backoff = fo.retry_backoff_ms
                                        ? fo.retry_backoff_ms
                                              << c.retries
                                        : 0;
                ++c.retries;
                ++out.failover.retries;
                if (backoff)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(backoff));
                sets_[c.shard]->reviveDead();
                const Transport *last =
                    c.attempts.back().worker.get();
                submitTo(c, sets_[c.shard]->pickOther(last));
                progressed = true;
            } else if (fo.hedge_ms > 0 && !c.hedged &&
                       sets_[c.shard]->size() > 1 &&
                       Clock::now() - c.last_submit >=
                           std::chrono::milliseconds(fo.hedge_ms)) {
                // Straggler: duplicate on a second replica.
                c.hedged = true;
                ++out.failover.hedges;
                const Transport *primary =
                    c.attempts.back().worker.get();
                submitTo(c, sets_[c.shard]->pickOther(primary));
                progressed = true;
            }
        }

        if (open > 0 && !progressed) {
            // Nothing resolved this sweep: block briefly on one
            // in-flight future instead of spinning. The slice keeps
            // deadline/hedge checks responsive.
            for (ShardCall &c : calls) {
                if (c.done)
                    continue;
                bool waited = false;
                for (Attempt &at : c.attempts) {
                    if (!at.fut.valid())
                        continue;
                    at.fut.wait_for(std::chrono::milliseconds(2));
                    waited = true;
                    break;
                }
                if (waited)
                    break;
            }
        }
    }

    // Reap: every still-outstanding attempt (hedge losers, abandoned
    // deadline-missed calls) must resolve before we return — its
    // worker may still be reading the caller's query batch. A worker
    // that stays unresponsive past the hang timeout is killed, which
    // cancels injected sleeps and resolves its inbox as WorkerDown.
    for (ShardCall &c : calls) {
        for (Attempt &at : c.attempts) {
            if (!at.fut.valid())
                continue;
            u64 waited_ms = 0;
            while (at.fut.wait_for(std::chrono::milliseconds(10)) !=
                   std::future_status::ready) {
                waited_ms += 10;
                if (waited_ms >= fo.hang_timeout_ms)
                    at.worker->kill(); // idempotent
            }
            at.fut.get(); // discard the duplicate/late response
        }
        if (c.failed) {
            for (const u32 id : c.ids)
                out.degraded[id] = 1;
        }
    }
    for (const u8 d : out.degraded)
        out.degraded_queries += d;

    // Merge: single-owner hits move straight in (already sorted and
    // duplicate-free within one shard); fanned-out queries collect all
    // owners' hits and dedup below.
    for (ShardCall &c : calls) {
        if (c.failed)
            continue;
        WorkerResponse &resp = c.resp;
        out.per_shard[c.shard] = resp.stats;
        for (size_t j = 0; j < resp.ids.size(); ++j) {
            auto &dst = out.hits[resp.ids[j]];
            if (dst.empty())
                dst = std::move(resp.hits[j]);
            else
                dst.insert(dst.end(), resp.hits[j].begin(),
                           resp.hits[j].end());
        }
    }
    // Dedup/cap pass — skipped entirely when every query ran on one
    // shard and no cap applies (single-shard hits are already sorted
    // and duplicate-free), which is the routed fast path.
    if (out.broadcast_queries > 0 || cfg.locate_limit > 0) {
        const u64 grain = std::max<u64>(cfg.grain, 1);
        parallelFor(
            queries.size(), grain,
            [&](u64 begin, u64 end, unsigned) {
                for (u64 i = begin; i < end; ++i) {
                    auto &h = out.hits[i];
                    if (fanout[i] > 1) {
                        std::sort(h.begin(), h.end());
                        h.erase(std::unique(h.begin(), h.end()),
                                h.end());
                    }
                    if (cfg.locate_limit && h.size() > cfg.locate_limit)
                        h.resize(cfg.locate_limit);
                }
            },
            cfg.threads);
    }
    const auto t1 = Clock::now();

    u64 respawns_after = 0;
    for (const auto &set : sets_)
        respawns_after += set->respawns();
    out.failover.respawns = respawns_after - respawns_before;

    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const SearchStats &s : out.per_shard)
        out.stats += s;
    return out;
}

std::vector<u64>
ShardRouter::findAll(const std::vector<Base> &query,
                     SearchStats *stats) const
{
    const RoutedResult r = search({query});
    if (stats)
        *stats += r.stats;
    return r.hits.empty() ? std::vector<u64>{} : r.hits[0];
}

} // namespace exma
