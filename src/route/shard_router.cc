#include "route/shard_router.hh"

#include <algorithm>
#include <chrono>
#include <future>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace exma {

namespace {

void
checkQueries(const ShardPlan &plan,
             const std::vector<std::vector<Base>> &queries)
{
    exma_assert(queries.size() <= ~u32{0},
                "batch of %zu queries exceeds the u32 routing id space",
                queries.size());
    for (const auto &q : queries) {
        exma_assert(!q.empty(), "routed search: empty query");
        if (plan.boundsQueries())
            exma_assert(q.size() <= plan.maxQueryLen(),
                        "routed search: %zu-base query exceeds the "
                        "plan's max_query_len of %llu — matches could "
                        "run past a shard's context windows; re-plan "
                        "with a larger max_query_len",
                        q.size(),
                        (unsigned long long)plan.maxQueryLen());
    }
}

} // namespace

ShardRouter::ShardRouter(const std::vector<Base> &ref, const ShardPlan &plan,
                         const RouterConfig &cfg)
    : plan_(plan), cfg_(cfg)
{
    exma_assert(plan_.size() > 0, "shard plan holds no shards");
    exma_assert(plan_.refLength() == ref.size(),
                "shard plan covers %llu bases but the reference holds "
                "%zu",
                (unsigned long long)plan_.refLength(), ref.size());

    const size_t n_shards = plan_.size();
    segments_.resize(n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
        if (plan_.kind() == ShardPlanKind::KmerPrefix) {
            segments_[s] = plan_.segmentsOf(s);
        } else {
            const Shard &sh = plan_.shards()[s];
            exma_assert(sh.end() <= ref.size(),
                        "shard '%s' [%llu, %llu) runs past the reference",
                        sh.name.c_str(), (unsigned long long)sh.begin,
                        (unsigned long long)sh.end());
            segments_[s] = {TextSegment{sh.begin, 0, sh.length}};
        }
    }

    tables_.resize(n_shards);
    scan_refs_.resize(n_shards);
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(
        n_shards, 1,
        [&](u64 begin, u64 end, unsigned) {
            for (u64 s = begin; s < end; ++s) {
                const u64 local = segmentsLocalLength(segments_[s]);
                if (local == 0)
                    continue; // empty prefix range: hitless worker
                if (local < cfg_.min_table_bases)
                    scan_refs_[s] = extractSegments(ref, segments_[s]);
                else
                    tables_[s] = std::make_unique<ExmaTable>(
                        ref, segments_[s], cfg_.table);
            }
        },
        cfg_.build_threads);
    const auto t1 = std::chrono::steady_clock::now();
    build_seconds_ = std::chrono::duration<double>(t1 - t0).count();

    spawnWorkers();
}

ShardRouter::ShardRouter(ShardPlan plan, RouterConfig cfg,
                         std::vector<std::vector<TextSegment>> segments,
                         std::vector<std::unique_ptr<ExmaTable>> tables,
                         std::vector<std::vector<Base>> scan_refs,
                         double load_seconds)
    : plan_(std::move(plan)), cfg_(std::move(cfg)),
      segments_(std::move(segments)), tables_(std::move(tables)),
      scan_refs_(std::move(scan_refs)), build_seconds_(load_seconds)
{
    const size_t n_shards = plan_.size();
    exma_assert(n_shards > 0, "shard plan holds no shards");
    exma_assert(segments_.size() == n_shards &&
                    tables_.size() == n_shards &&
                    scan_refs_.size() == n_shards,
                "adopted per-shard arrays disagree with the %zu-shard "
                "plan",
                n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
        const u64 local = segmentsLocalLength(segments_[s]);
        if (tables_[s]) {
            exma_assert(scan_refs_[s].empty(),
                        "shard %zu adopted both a table and a scan ref",
                        s);
            exma_assert(tables_[s]->rows() == local + 1,
                        "adopted table for shard %zu covers %llu rows, "
                        "its segment map holds %llu bases",
                        s, (unsigned long long)tables_[s]->rows(),
                        (unsigned long long)local);
        } else {
            exma_assert(scan_refs_[s].size() == local,
                        "adopted scan ref for shard %zu holds %zu "
                        "bases, its segment map %llu",
                        s, scan_refs_[s].size(),
                        (unsigned long long)local);
        }
    }
    spawnWorkers();
}

void
ShardRouter::spawnWorkers()
{
    for (size_t s = 0; s < plan_.size(); ++s)
        workers_.push_back(std::make_unique<ShardWorker>(
            plan_.shards()[s].name, tables_[s].get(),
            scan_refs_[s].empty() ? nullptr : &scan_refs_[s],
            &segments_[s]));
}

u64
ShardRouter::totalLocalBases() const
{
    u64 n = 0;
    for (const auto &segs : segments_)
        n += segmentsLocalLength(segs);
    return n;
}

u64
ShardRouter::totalRows() const
{
    u64 rows = 0;
    for (const auto &t : tables_)
        if (t)
            rows += t->rows();
    return rows;
}

RoutedResult
ShardRouter::search(const std::vector<std::vector<Base>> &queries,
                    const BatchConfig &cfg) const
{
    checkQueries(plan_, queries);

    RoutedResult out;
    out.queries = queries.size();
    out.hits.resize(queries.size());
    out.per_shard.assign(workers_.size(), SearchStats{});
    for (const auto &q : queries)
        out.bases += q.size();

    const bool broadcast_only =
        cfg_.force_broadcast || plan_.kind() != ShardPlanKind::KmerPrefix;

    const auto t0 = std::chrono::steady_clock::now();

    // Classify: one id list per shard, and per query the number of
    // shards serving it (hits from fan-out > 1 need deduplication).
    std::vector<std::vector<u32>> ids(workers_.size());
    std::vector<u8> fanout(queries.size(), 0);
    for (size_t i = 0; i < queries.size(); ++i) {
        size_t first = 0;
        size_t last = workers_.size() - 1;
        if (!broadcast_only) {
            const PrefixRange r = plan_.queryPrefixRange(
                queries[i].data(), queries[i].size());
            std::tie(first, last) = plan_.ownersOfRange(r.lo, r.hi);
        }
        for (size_t s = first; s <= last; ++s)
            ids[s].push_back(static_cast<u32>(i));
        const size_t n_owners = last - first + 1;
        fanout[i] = static_cast<u8>(std::min<size_t>(n_owners, 255));
        if (n_owners == 1)
            ++out.routed_queries;
        else
            ++out.broadcast_queries;
    }

    // Fan out: every worker with work gets one request on its inbox;
    // the workers' dedicated threads run concurrently.
    std::vector<std::future<ShardWorker::Response>> futures(
        workers_.size());
    for (size_t s = 0; s < workers_.size(); ++s) {
        if (ids[s].empty())
            continue;
        futures[s] = workers_[s]->submit(
            {&queries, std::move(ids[s]), cfg});
    }

    // Merge: single-owner hits move straight in (already sorted and
    // duplicate-free within one shard); fanned-out queries collect all
    // owners' hits and dedup below.
    for (size_t s = 0; s < workers_.size(); ++s) {
        if (!futures[s].valid())
            continue;
        ShardWorker::Response resp = futures[s].get();
        out.per_shard[s] = resp.stats;
        for (size_t j = 0; j < resp.ids.size(); ++j) {
            auto &dst = out.hits[resp.ids[j]];
            if (dst.empty())
                dst = std::move(resp.hits[j]);
            else
                dst.insert(dst.end(), resp.hits[j].begin(),
                           resp.hits[j].end());
        }
    }
    // Dedup/cap pass — skipped entirely when every query ran on one
    // shard and no cap applies (single-shard hits are already sorted
    // and duplicate-free), which is the routed fast path.
    if (out.broadcast_queries > 0 || cfg.locate_limit > 0) {
        const u64 grain = std::max<u64>(cfg.grain, 1);
        parallelFor(
            queries.size(), grain,
            [&](u64 begin, u64 end, unsigned) {
                for (u64 i = begin; i < end; ++i) {
                    auto &h = out.hits[i];
                    if (fanout[i] > 1) {
                        std::sort(h.begin(), h.end());
                        h.erase(std::unique(h.begin(), h.end()),
                                h.end());
                    }
                    if (cfg.locate_limit && h.size() > cfg.locate_limit)
                        h.resize(cfg.locate_limit);
                }
            },
            cfg.threads);
    }
    const auto t1 = std::chrono::steady_clock::now();

    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const SearchStats &s : out.per_shard)
        out.stats += s;
    return out;
}

std::vector<u64>
ShardRouter::findAll(const std::vector<Base> &query,
                     SearchStats *stats) const
{
    const RoutedResult r = search({query});
    if (stats)
        *stats += r.stats;
    return r.hits.empty() ? std::vector<u64>{} : r.hits[0];
}

} // namespace exma
