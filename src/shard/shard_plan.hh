/**
 * @file
 * Reference partitioning for sharded multi-table serving — the software
 * analogue of the paper's multi-channel scale-out (§V: EXMA spreads the
 * k-step FM-index across parallel memory channels/DIMMs; FindeR makes
 * the same move for FM-index rank hardware).
 *
 * A ShardPlan cuts the concatenated reference into contiguous shards,
 * each of which gets its own ExmaTable. Two partitioning policies:
 *
 *  - fixedWidth: N equal-stride shards, adjacent shards overlapping by
 *    max_query_len - 1 bases. Any match of length <= max_query_len
 *    starting inside shard i's stride lies entirely within shard i, so
 *    no match spanning a shard boundary is ever lost; matches falling
 *    fully inside an overlap zone are found by both neighbours and
 *    deduplicated at merge time.
 *
 *  - perRecord: one shard per source record (FASTA record /
 *    chromosome), no overlap. Matches never span record boundaries in
 *    real genomes — a "match" across the concatenation seam of two
 *    chromosomes is an artifact — so this policy is the biologically
 *    correct one, but it is deliberately NOT hit-set-equivalent to one
 *    monolithic table over the concatenation (which reports seam
 *    artifacts).
 */

#ifndef EXMA_SHARD_SHARD_PLAN_HH
#define EXMA_SHARD_SHARD_PLAN_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "genome/reference.hh"

namespace exma {

/** One contiguous slice of the global reference. */
struct Shard
{
    std::string name;
    u64 begin = 0;  ///< global offset of the shard's first base
    u64 length = 0; ///< shard length in bases

    u64 end() const { return begin + length; }
    bool operator==(const Shard &) const = default;
};

class ShardPlan
{
  public:
    /** maxQueryLen() value meaning "no per-query length bound". */
    static constexpr u64 kUnboundedQueryLen = ~u64{0};

    /** Smallest reference slice worth an ExmaTable of its own. */
    static constexpr u64 kMinShardBases = 64;

    /**
     * Partition [0, ref_len) into @p n_shards equal-stride shards with
     * an overlap of @p max_query_len - 1 bases between neighbours.
     * Shards that would start past the end of a small reference are
     * dropped, so the resulting plan may hold fewer than @p n_shards.
     */
    static ShardPlan fixedWidth(u64 ref_len, unsigned n_shards,
                                u64 max_query_len);

    /**
     * One shard per record span (spans must be contiguous from 0, as
     * produced by makeDatasetFromRecords). No overlap, no query-length
     * bound. Records shorter than kMinShardBases — real assemblies
     * carry tiny scaffolds — are folded into a neighbouring shard
     * (with one summary warning) rather than given unbuildable tables
     * of their own; only those folded seams can report concatenation
     * artifacts.
     */
    static ShardPlan perRecord(const std::vector<RecordSpan> &records);

    const std::vector<Shard> &shards() const { return shards_; }
    size_t size() const { return shards_.size(); }

    /** Length of the global reference the plan covers. */
    u64 refLength() const { return ref_len_; }

    /** Overlap between neighbouring shards (0 for per-record plans). */
    u64 overlap() const { return overlap_; }

    /**
     * Longest query the boundary-overlap guarantee covers;
     * kUnboundedQueryLen for per-record plans.
     */
    u64 maxQueryLen() const { return max_query_len_; }
    bool boundsQueries() const
    {
        return max_query_len_ != kUnboundedQueryLen;
    }

  private:
    std::vector<Shard> shards_;
    u64 ref_len_ = 0;
    u64 overlap_ = 0;
    u64 max_query_len_ = kUnboundedQueryLen;
};

} // namespace exma

#endif // EXMA_SHARD_SHARD_PLAN_HH
