/**
 * @file
 * Reference partitioning for sharded multi-table serving — the software
 * analogue of the paper's multi-channel scale-out (§V: EXMA spreads the
 * k-step FM-index across parallel memory channels/DIMMs; FindeR makes
 * the same move for FM-index rank hardware).
 *
 * A ShardPlan cuts the concatenated reference into contiguous shards,
 * each of which gets its own ExmaTable. Two partitioning policies:
 *
 *  - fixedWidth: N equal-stride shards, adjacent shards overlapping by
 *    max_query_len - 1 bases. Any match of length <= max_query_len
 *    starting inside shard i's stride lies entirely within shard i, so
 *    no match spanning a shard boundary is ever lost; matches falling
 *    fully inside an overlap zone are found by both neighbours and
 *    deduplicated at merge time.
 *
 *  - perRecord: one shard per source record (FASTA record /
 *    chromosome), no overlap. Matches never span record boundaries in
 *    real genomes — a "match" across the concatenation seam of two
 *    chromosomes is an artifact — so this policy is the biologically
 *    correct one, but it is deliberately NOT hit-set-equivalent to one
 *    monolithic table over the concatenation (which reports seam
 *    artifacts).
 *
 *  - kmerPrefix: shards own *k-mer-prefix ranges* instead of text
 *    slices. Every text position belongs to the shard whose code range
 *    [lo, hi) contains the packed code of its first prefix_len bases
 *    (A-padded near the reference end), so all matches of a query
 *    start at positions owned by the shard of the query's own prefix —
 *    the routing invariant the ShardRouter exploits to send most
 *    queries to a single shard. Each shard's searchable text is the
 *    union of max_query_len windows after its owned positions, merged
 *    into maximal runs and described as a TextSegment map (see
 *    core/text_segments.hh). Nearby positions usually land in
 *    different shards, so windows overlap across shards: prefix
 *    partitioning trades replicated text (factor ≈ min(shards,
 *    max_query_len) on low-repeat references) for single-shard query
 *    execution — the classic term-partitioned-index trade.
 */

#ifndef EXMA_SHARD_SHARD_PLAN_HH
#define EXMA_SHARD_SHARD_PLAN_HH

#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/types.hh"
#include "core/text_segments.hh"
#include "genome/reference.hh"

namespace exma {

/** One contiguous slice of the global reference. */
struct Shard
{
    std::string name;
    u64 begin = 0;  ///< global offset of the shard's first base
    u64 length = 0; ///< shard length in bases

    u64 end() const { return begin + length; }
    bool operator==(const Shard &) const = default;
};

/** How a plan's shards partition the reference. */
enum class ShardPlanKind
{
    Text,       ///< contiguous text slices (fixedWidth / perRecord)
    KmerPrefix, ///< k-mer-prefix code ranges (kmerPrefix)
};

/** A half-open range [lo, hi) of packed prefix_len-mer codes. */
struct PrefixRange
{
    Kmer lo = 0;
    Kmer hi = 0;

    bool contains(Kmer code) const { return code >= lo && code < hi; }
    bool empty() const { return lo == hi; }
    bool operator==(const PrefixRange &) const = default;
};

class ShardPlan
{
  public:
    /** maxQueryLen() value meaning "no per-query length bound". */
    static constexpr u64 kUnboundedQueryLen = ~u64{0};

    /** Smallest reference slice worth an ExmaTable of its own. */
    static constexpr u64 kMinShardBases = 64;

    /**
     * Partition [0, ref_len) into @p n_shards equal-stride shards with
     * an overlap of @p max_query_len - 1 bases between neighbours.
     * Shards that would start past the end of a small reference are
     * dropped, so the resulting plan may hold fewer than @p n_shards.
     */
    static ShardPlan fixedWidth(u64 ref_len, unsigned n_shards,
                                u64 max_query_len);

    /**
     * One shard per record span (spans must be contiguous from 0, as
     * produced by makeDatasetFromRecords). No overlap, no query-length
     * bound. Records shorter than kMinShardBases — real assemblies
     * carry tiny scaffolds — are folded into a neighbouring shard
     * (with one summary warning) rather than given unbuildable tables
     * of their own; only those folded seams can report concatenation
     * artifacts.
     */
    static ShardPlan perRecord(const std::vector<RecordSpan> &records);

    /** Largest prefix_len kmerPrefix accepts (histogram is 4^p u64s). */
    static constexpr int kMaxPrefixLen = 10;

    /**
     * Prefix-partitioned plan: split the packed prefix_len-mer code
     * space [0, 4^prefix_len) into @p n_shards contiguous ranges of
     * roughly equal owned-position weight (measured on @p ref), and
     * record per shard the TextSegment map covering every owned
     * position's [pos, pos + max_query_len) context window. Ranges
     * with no occurrences produce shards with an empty segment map —
     * legal, and served as trivially hitless by the router.
     *
     * @param prefix_len routing prefix p in bases; 0 picks an
     *        automatic value (smallest p with 4^p >= 64 * n_shards,
     *        clamped to [2, 8]). Queries shorter than p can only be
     *        routed when their padded code range stays inside one
     *        shard; otherwise the router broadcasts them.
     */
    static ShardPlan kmerPrefix(const std::vector<Base> &ref,
                                unsigned n_shards, u64 max_query_len,
                                int prefix_len = 0);

    /**
     * Reassemble a plan from its serialized members (src/io/
     * index_io.cc) without re-deriving anything from the reference.
     * Validates the cross-member invariants the factories guarantee.
     */
    static ShardPlan restore(std::vector<Shard> shards, ShardPlanKind kind,
                             u64 ref_len, u64 overlap, u64 max_query_len,
                             int prefix_len,
                             std::vector<PrefixRange> prefix_ranges,
                             std::vector<std::vector<TextSegment>> segments);

    const std::vector<Shard> &shards() const { return shards_; }
    size_t size() const { return shards_.size(); }

    ShardPlanKind kind() const { return kind_; }

    /** Routing prefix length in bases (0 for text-partitioned plans). */
    int prefixLen() const { return prefix_len_; }

    /**
     * Per-shard prefix code ranges, index-parallel with shards();
     * contiguous and covering [0, 4^prefixLen()). Empty for
     * text-partitioned plans.
     */
    const std::vector<PrefixRange> &prefixRanges() const
    {
        return prefix_ranges_;
    }

    /** Segment map of shard @p i (kmerPrefix plans only). */
    const std::vector<TextSegment> &segmentsOf(size_t i) const
    {
        return segments_[i];
    }

    /** Shard owning padded prefix code @p code (kmerPrefix plans). */
    size_t ownerOf(Kmer code) const;

    /**
     * Inclusive [first, last] shard indices whose prefix ranges
     * intersect the non-empty code range [lo, hi) — the owner set of a
     * query whose prefix pads to that range. first == last means the
     * query routes to a single shard.
     */
    std::pair<size_t, size_t> ownersOfRange(Kmer lo, Kmer hi) const;

    /**
     * Padded code range of a query prefix: a query of at least
     * prefixLen() bases pins a single code (width-1 range); a shorter
     * query A-pads to the range of every code starting with it.
     */
    PrefixRange queryPrefixRange(const Base *query, size_t len) const;

    /** Length of the global reference the plan covers. */
    u64 refLength() const { return ref_len_; }

    /** Overlap between neighbouring shards (0 for per-record plans). */
    u64 overlap() const { return overlap_; }

    /**
     * Longest query the boundary-overlap guarantee covers;
     * kUnboundedQueryLen for per-record plans.
     */
    u64 maxQueryLen() const { return max_query_len_; }
    bool boundsQueries() const
    {
        return max_query_len_ != kUnboundedQueryLen;
    }

  private:
    std::vector<Shard> shards_;
    ShardPlanKind kind_ = ShardPlanKind::Text;
    u64 ref_len_ = 0;
    u64 overlap_ = 0;
    u64 max_query_len_ = kUnboundedQueryLen;
    int prefix_len_ = 0;
    std::vector<PrefixRange> prefix_ranges_;      ///< kmerPrefix only
    std::vector<std::vector<TextSegment>> segments_; ///< kmerPrefix only
};

} // namespace exma

#endif // EXMA_SHARD_SHARD_PLAN_HH
