#include "shard/sharded_table.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace exma {

namespace {

void
checkQueries(const ShardPlan &plan,
             const std::vector<std::vector<Base>> &queries)
{
    for (const auto &q : queries) {
        exma_assert(!q.empty(), "sharded search: empty query");
        if (plan.boundsQueries())
            exma_assert(q.size() <= plan.maxQueryLen(),
                        "sharded search: %zu-base query exceeds the "
                        "plan's max_query_len of %llu — matches spanning "
                        "a shard boundary could be lost; re-plan with a "
                        "larger max_query_len",
                        q.size(),
                        (unsigned long long)plan.maxQueryLen());
    }
}

/** Sort and deduplicate one query's merged cross-shard positions. */
void
dedup(std::vector<u64> &hits)
{
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
}

} // namespace

ShardedExmaTable::ShardedExmaTable(const std::vector<Base> &ref,
                                   const ShardPlan &plan, const Config &cfg)
    : plan_(plan), cfg_(cfg)
{
    exma_assert(plan_.size() > 0, "shard plan holds no shards");
    exma_assert(plan_.kind() == ShardPlanKind::Text,
                "ShardedExmaTable serves text-partitioned plans; "
                "k-mer-prefix plans are served by ShardRouter "
                "(src/route/)");
    exma_assert(plan_.refLength() == ref.size(),
                "shard plan covers %llu bases but the reference holds "
                "%zu",
                (unsigned long long)plan_.refLength(), ref.size());
    for (const Shard &s : plan_.shards()) {
        exma_assert(s.end() <= ref.size(),
                    "shard '%s' [%llu, %llu) runs past the reference",
                    s.name.c_str(), (unsigned long long)s.begin,
                    (unsigned long long)s.end());
        if (s.length < ShardPlan::kMinShardBases)
            exma_fatal("shard '%s' holds only %llu bases (need >= "
                       "%llu); lower the shard count",
                       s.name.c_str(), (unsigned long long)s.length,
                       (unsigned long long)ShardPlan::kMinShardBases);
    }

    tables_.resize(plan_.size());
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(
        plan_.size(), 1,
        [&](u64 begin, u64 end, unsigned) {
            for (u64 i = begin; i < end; ++i) {
                const Shard &s = plan_.shards()[i];
                const std::vector<Base> sub(
                    ref.begin() + static_cast<std::ptrdiff_t>(s.begin),
                    ref.begin() + static_cast<std::ptrdiff_t>(s.end()));
                tables_[i] = std::make_unique<ExmaTable>(sub, cfg_.table);
            }
        },
        cfg_.build_threads);
    const auto t1 = std::chrono::steady_clock::now();
    build_seconds_ = std::chrono::duration<double>(t1 - t0).count();
}

ShardedExmaTable::ShardedExmaTable(
    ShardPlan plan, Config cfg,
    std::vector<std::unique_ptr<ExmaTable>> tables, double load_seconds)
    : plan_(std::move(plan)), cfg_(std::move(cfg)),
      tables_(std::move(tables)), build_seconds_(load_seconds)
{
    exma_assert(plan_.kind() == ShardPlanKind::Text,
                "ShardedExmaTable serves text-partitioned plans; "
                "k-mer-prefix plans are served by ShardRouter "
                "(src/route/)");
    exma_assert(tables_.size() == plan_.size(),
                "adopted %zu tables for a %zu-shard plan",
                tables_.size(), plan_.size());
    for (size_t i = 0; i < tables_.size(); ++i) {
        exma_assert(tables_[i] != nullptr,
                    "adopted table for shard %zu is null", i);
        exma_assert(tables_[i]->rows() ==
                        plan_.shards()[i].length + 1,
                    "adopted table for shard '%s' covers %llu rows, "
                    "the shard holds %llu bases",
                    plan_.shards()[i].name.c_str(),
                    (unsigned long long)tables_[i]->rows(),
                    (unsigned long long)plan_.shards()[i].length);
    }
}

u64
ShardedExmaTable::totalRows() const
{
    u64 rows = 0;
    for (const auto &t : tables_)
        rows += t->rows();
    return rows;
}

std::vector<u64>
ShardedExmaTable::findAll(const std::vector<Base> &query,
                          SearchStats *stats) const
{
    checkQueries(plan_, {query});
    std::vector<u64> hits;
    for (size_t s = 0; s < tables_.size(); ++s) {
        SearchStats shard_stats;
        const Interval iv = tables_[s]->search(query, &shard_stats);
        if (stats)
            *stats += shard_stats;
        for (u64 pos : tables_[s]->locateAll(iv))
            hits.push_back(pos + plan_.shards()[s].begin);
    }
    dedup(hits);
    return hits;
}

ShardedResult
ShardedExmaTable::search(const std::vector<std::vector<Base>> &queries,
                         const BatchConfig &cfg) const
{
    checkQueries(plan_, queries);

    ShardedResult out;
    out.queries = queries.size();
    out.hits.resize(queries.size());
    out.per_shard.assign(tables_.size(), SearchStats{});
    for (const auto &q : queries)
        out.bases += q.size();

    BatchConfig shard_cfg = cfg;
    shard_cfg.locate = true;
    // ShardedResult has no per-query stats field; don't make every
    // shard compute a vector nobody reads.
    shard_cfg.per_query_stats = false;
    // A per-shard locate_limit would truncate each shard's hits in SA
    // order — an arbitrary, shard-count-dependent subset. Locate
    // everything per shard and apply the caller's cap globally, after
    // the merge, as "first locate_limit positions in ascending order".
    shard_cfg.locate_limit = 0;
    const u64 grain = std::max<u64>(cfg.grain, 1);

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t s = 0; s < tables_.size(); ++s) {
        // Each shard's batch fans out over the pool inside
        // BatchSearcher; shards run back-to-back so the pool stays
        // saturated without nested result races.
        const BatchResult br =
            BatchSearcher(*tables_[s], shard_cfg).search(queries);
        out.per_shard[s] = br.stats;
        const u64 offset = plan_.shards()[s].begin;
        parallelFor(
            queries.size(), grain,
            [&](u64 begin, u64 end, unsigned) {
                for (u64 i = begin; i < end; ++i)
                    for (u64 pos : br.positions[i])
                        out.hits[i].push_back(pos + offset);
            },
            cfg.threads);
    }
    // Merge pass: overlap-zone matches were found by both neighbouring
    // shards; sort + unique leaves exactly one global position each,
    // then the caller's cap (if any) keeps the lowest positions.
    parallelFor(
        queries.size(), grain,
        [&](u64 begin, u64 end, unsigned) {
            for (u64 i = begin; i < end; ++i) {
                dedup(out.hits[i]);
                if (cfg.locate_limit &&
                    out.hits[i].size() > cfg.locate_limit)
                    out.hits[i].resize(cfg.locate_limit);
            }
        },
        cfg.threads);
    const auto t1 = std::chrono::steady_clock::now();

    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const SearchStats &s : out.per_shard)
        out.stats += s;
    return out;
}

} // namespace exma
