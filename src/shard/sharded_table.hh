/**
 * @file
 * Sharded multi-table serving: one ExmaTable per ShardPlan shard, built
 * pool-parallel, queried by fanning each BatchSearcher batch out across
 * the shards and merging per-shard results into global reference
 * coordinates.
 *
 * This is the software analogue of the paper's multi-channel scale-out
 * (§V spreads the k-step FM-index across memory channels/DIMMs) and the
 * prerequisite for references too big for one table build: per-shard
 * tables are smaller (suffix array, Occ table and learned index each
 * scale with shard length, and 4^k row ids stay within u32 range for
 * larger total references).
 *
 * Result semantics: because row intervals of different shard tables are
 * not comparable, the sharded result is the set of *global match
 * positions* per query — each shard's intervals are resolved through
 * its FM-index SA samples, translated by the shard's global offset,
 * and deduplicated across overlap zones. For a fixed-width plan this
 * hit set is identical to locating a single monolithic table's search
 * interval, for every query no longer than plan.maxQueryLen() —
 * including matches spanning shard boundaries, found exactly once.
 */

#ifndef EXMA_SHARD_SHARDED_TABLE_HH
#define EXMA_SHARD_SHARDED_TABLE_HH

#include <memory>
#include <vector>

#include "batch/batch_searcher.hh"
#include "common/dna.hh"
#include "common/search_stats.hh"
#include "core/exma_table.hh"
#include "shard/shard_plan.hh"

namespace exma {

/** Outcome of one sharded batch: index-aligned with the input queries. */
struct ShardedResult
{
    /** Per query: sorted, deduplicated global match positions. */
    std::vector<std::vector<u64>> hits;
    SearchStats stats;                   ///< merged across all shards
    std::vector<SearchStats> per_shard;  ///< one per shard, in plan order
    u64 queries = 0;
    u64 bases = 0;     ///< total query symbols searched
    double seconds = 0.0;

    u64
    totalHits() const
    {
        u64 n = 0;
        for (const auto &h : hits)
            n += h.size();
        return n;
    }

    double
    mbasesPerSecond() const
    {
        return seconds > 0.0
                   ? static_cast<double>(bases) / seconds / 1e6
                   : 0.0;
    }
};

class ShardedExmaTable
{
  public:
    struct Config
    {
        /** Per-shard table configuration (same k for every shard). */
        ExmaTable::Config table;
        /** Shard-build parallelism: 0 = pool width, 1 = serial. */
        unsigned build_threads = 0;
    };

    /**
     * Build one ExmaTable per shard of @p plan over @p ref. Builds run
     * pool-parallel across shards (ThreadPool/parallelFor; the nested
     * KmerOccTable build parallelism composes safely with this).
     */
    ShardedExmaTable(const std::vector<Base> &ref, const ShardPlan &plan,
                     const Config &cfg);

    /**
     * Adopt pre-restored per-shard tables (src/io/index_io.cc) instead
     * of building: @p tables must be index-parallel with @p plan's
     * shards. @p load_seconds (the mmap-load wall clock) is reported
     * as buildSeconds() so bench plumbing reads one field either way.
     */
    ShardedExmaTable(ShardPlan plan, Config cfg,
                     std::vector<std::unique_ptr<ExmaTable>> tables,
                     double load_seconds);

    size_t shardCount() const { return tables_.size(); }
    const ShardPlan &plan() const { return plan_; }
    const ExmaTable &table(size_t i) const { return *tables_[i]; }
    const Config &config() const { return cfg_; }

    /** Wall-clock seconds the (parallel) shard builds took. */
    double buildSeconds() const { return build_seconds_; }

    /** Sum of per-shard BW-matrix row counts (build-size accounting). */
    u64 totalRows() const;

    /**
     * One query: sorted, deduplicated global match positions across
     * all shards; per-shard stats merge into @p stats if given.
     */
    std::vector<u64> findAll(const std::vector<Base> &query,
                             SearchStats *stats = nullptr) const;

    /**
     * Fan a query batch out across every shard via BatchSearcher
     * (cfg.locate is forced on; intervals stay shard-local and are not
     * returned), translate and merge into global positions. Queries
     * must be non-empty and, for fixed-width plans, no longer than
     * plan().maxQueryLen(). cfg.locate_limit applies globally after
     * the merge — the lowest positions survive — never per shard
     * (which would keep a shard-count-dependent subset).
     */
    ShardedResult search(const std::vector<std::vector<Base>> &queries,
                         const BatchConfig &cfg = {}) const;

  private:
    ShardPlan plan_;
    Config cfg_;
    std::vector<std::unique_ptr<ExmaTable>> tables_;
    double build_seconds_ = 0.0;
};

} // namespace exma

#endif // EXMA_SHARD_SHARDED_TABLE_HH
