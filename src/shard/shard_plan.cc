#include "shard/shard_plan.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace exma {

ShardPlan
ShardPlan::fixedWidth(u64 ref_len, unsigned n_shards, u64 max_query_len)
{
    exma_assert(ref_len > 0, "cannot shard an empty reference");
    exma_assert(n_shards > 0, "need at least one shard");
    exma_assert(max_query_len > 0, "max_query_len must be positive");
    // A bound past the reference length is meaningless (no longer query
    // can match at all) and its overlap arithmetic would wrap u64 —
    // kUnboundedQueryLen in particular is a perRecord-only value.
    exma_assert(max_query_len <= ref_len,
                "max_query_len %llu exceeds the %llu-base reference",
                (unsigned long long)max_query_len,
                (unsigned long long)ref_len);

    ShardPlan plan;
    plan.ref_len_ = ref_len;
    plan.max_query_len_ = max_query_len;
    plan.overlap_ = max_query_len - 1;

    const u64 stride = (ref_len + n_shards - 1) / n_shards; // ceil
    for (unsigned i = 0; i < n_shards; ++i) {
        const u64 begin = stride * i;
        if (begin >= ref_len)
            break; // reference too small for the requested shard count
        const u64 end = std::min(ref_len, begin + stride + plan.overlap_);
        plan.shards_.push_back(
            {"shard" + std::to_string(i), begin, end - begin});
    }
    return plan;
}

ShardPlan
ShardPlan::kmerPrefix(const std::vector<Base> &ref, unsigned n_shards,
                      u64 max_query_len, int prefix_len)
{
    const u64 n = ref.size();
    exma_assert(n > 0, "cannot shard an empty reference");
    exma_assert(n_shards > 0, "need at least one shard");
    exma_assert(max_query_len > 0, "max_query_len must be positive");
    exma_assert(max_query_len <= n,
                "max_query_len %llu exceeds the %llu-base reference",
                (unsigned long long)max_query_len, (unsigned long long)n);
    if (prefix_len == 0) {
        // Enough codes that a balanced cut stays balanced: >= 64 per
        // shard, within the histogram budget.
        prefix_len = 2;
        while (prefix_len < 8 &&
               kmerSpace(prefix_len) < u64{64} * n_shards)
            ++prefix_len;
    }
    exma_assert(prefix_len >= 1 && prefix_len <= kMaxPrefixLen,
                "routing prefix of %d bases is outside [1, %d]",
                prefix_len, kMaxPrefixLen);

    ShardPlan plan;
    plan.kind_ = ShardPlanKind::KmerPrefix;
    plan.ref_len_ = n;
    plan.max_query_len_ = max_query_len;
    plan.overlap_ = 0;
    plan.prefix_len_ = prefix_len;

    // A-padded rolling prefix code of every position, back to front:
    // code(g) = ref[g..g+p) packed, missing tail bases reading as 'A'
    // (code 0) so every position — including the last p-1 — has a
    // well-defined owner that any query starting there still reaches.
    const int p = prefix_len;
    const u64 codes = kmerSpace(p);
    std::vector<u32> code_of(n);
    Kmer rolling = 0;
    for (u64 g = n; g-- > 0;) {
        rolling = (static_cast<Kmer>(ref[g] & 3) << (2 * (p - 1))) |
                  (rolling >> 2);
        code_of[g] = static_cast<u32>(rolling);
    }

    // Owned-position histogram -> contiguous cuts of ~equal weight.
    // Heavily skewed references can jump past several targets at one
    // code; the ranges left behind are empty, which is legal.
    std::vector<u64> hist(codes, 0);
    for (u64 g = 0; g < n; ++g)
        ++hist[code_of[g]];
    std::vector<Kmer> cut(n_shards + 1, codes);
    cut[0] = 0;
    u64 acc = 0;
    unsigned next = 1;
    for (u64 c = 0; c < codes && next < n_shards; ++c) {
        acc += hist[c];
        while (next < n_shards &&
               acc * n_shards >= static_cast<u64>(next) * n)
            cut[next++] = c + 1;
    }
    for (unsigned s = 0; s < n_shards; ++s)
        plan.prefix_ranges_.push_back({cut[s], cut[s + 1]});

    std::vector<u32> shard_of(codes);
    for (unsigned s = 0; s < n_shards; ++s)
        for (Kmer c = cut[s]; c < cut[s + 1]; ++c)
            shard_of[c] = s;

    // Each owned position contributes its [g, g + max_query_len)
    // context window; windows merge into maximal runs per shard, so a
    // global position appears at most once in any one shard's map.
    plan.segments_.assign(n_shards, {});
    const u64 W = max_query_len;
    for (u64 g = 0; g < n; ++g) {
        auto &segs = plan.segments_[shard_of[code_of[g]]];
        const u64 wend = std::min(n, g + W);
        if (!segs.empty() && g <= segs.back().global_end())
            segs.back().length =
                std::max(segs.back().global_end(), wend) -
                segs.back().global_begin;
        else
            segs.push_back({g, 0, wend - g});
    }
    for (unsigned s = 0; s < n_shards; ++s) {
        u64 local = 0;
        for (TextSegment &seg : plan.segments_[s]) {
            seg.local_begin = local;
            local += seg.length;
        }
        plan.shards_.push_back({"prefix" + std::to_string(s), 0, local});
    }
    return plan;
}

size_t
ShardPlan::ownerOf(Kmer code) const
{
    exma_assert(kind_ == ShardPlanKind::KmerPrefix,
                "ownerOf needs a kmerPrefix plan");
    exma_assert(code < kmerSpace(prefix_len_),
                "code %llu is not a packed %d-mer",
                (unsigned long long)code, prefix_len_);
    // Last range with lo <= code: empty ranges share their lo with the
    // non-empty successor that actually contains the code, so taking
    // the last skips them.
    const auto it = std::upper_bound(
        prefix_ranges_.begin(), prefix_ranges_.end(), code,
        [](Kmer c, const PrefixRange &r) { return c < r.lo; });
    const size_t s = static_cast<size_t>(it - prefix_ranges_.begin()) - 1;
    exma_dassert(prefix_ranges_[s].contains(code),
                 "owner search failed for code %llu",
                 (unsigned long long)code);
    return s;
}

std::pair<size_t, size_t>
ShardPlan::ownersOfRange(Kmer lo, Kmer hi) const
{
    exma_assert(lo < hi, "empty code range");
    return {ownerOf(lo), ownerOf(hi - 1)};
}

PrefixRange
ShardPlan::queryPrefixRange(const Base *query, size_t len) const
{
    exma_assert(kind_ == ShardPlanKind::KmerPrefix,
                "queryPrefixRange needs a kmerPrefix plan");
    exma_assert(len > 0, "empty query has no prefix");
    const size_t p = static_cast<size_t>(prefix_len_);
    if (len >= p) {
        const Kmer c = packKmer(query, prefix_len_);
        return {c, c + 1};
    }
    // A short query A-pads to the range of every code starting with it
    // — the same padding rule position ownership uses, so every match
    // (even one within p bases of the reference end) lies in the range.
    const int pad = 2 * static_cast<int>(p - len);
    const Kmer lo = packKmer(query, static_cast<int>(len)) << pad;
    return {lo, lo + (Kmer{1} << pad)};
}

ShardPlan
ShardPlan::perRecord(const std::vector<RecordSpan> &records)
{
    exma_assert(!records.empty(), "per-record plan needs records");

    ShardPlan plan;
    plan.overlap_ = 0;
    plan.max_query_len_ = kUnboundedQueryLen;

    u64 cursor = 0;
    u64 folded = 0;
    for (const RecordSpan &rec : records) {
        exma_assert(rec.begin == cursor,
                    "record spans must be contiguous from 0 (record "
                    "'%s' begins at %llu, expected %llu)",
                    rec.name.c_str(), (unsigned long long)rec.begin,
                    (unsigned long long)cursor);
        cursor += rec.length;
        if (rec.length == 0) {
            exma_warn("shard plan: skipping empty record '%s'",
                      rec.name.c_str());
            continue;
        }
        // A preceding shard still below the indexable minimum absorbs
        // this record (spans are contiguous, so the slice stays one
        // contiguous run).
        if (!plan.shards_.empty() &&
            plan.shards_.back().length < kMinShardBases) {
            plan.shards_.back().length += rec.length;
            plan.shards_.back().name += "+" + rec.name;
            ++folded;
            continue;
        }
        plan.shards_.push_back({rec.name, rec.begin, rec.length});
    }
    // A tiny trailing shard folds backwards instead.
    if (plan.shards_.size() >= 2 &&
        plan.shards_.back().length < kMinShardBases) {
        Shard tail = std::move(plan.shards_.back());
        plan.shards_.pop_back();
        plan.shards_.back().length += tail.length;
        plan.shards_.back().name += "+" + tail.name;
        ++folded;
    }
    if (folded > 0)
        exma_warn("shard plan: folded %llu record(s) shorter than "
                  "%llu bases into neighbouring shards (only those "
                  "seams can report concatenation artifacts)",
                  (unsigned long long)folded,
                  (unsigned long long)kMinShardBases);
    plan.ref_len_ = cursor;
    exma_assert(!plan.shards_.empty(),
                "per-record plan: every record is empty");
    return plan;
}

ShardPlan
ShardPlan::restore(std::vector<Shard> shards, ShardPlanKind kind,
                   u64 ref_len, u64 overlap, u64 max_query_len,
                   int prefix_len, std::vector<PrefixRange> prefix_ranges,
                   std::vector<std::vector<TextSegment>> segments)
{
    ShardPlan plan;
    plan.shards_ = std::move(shards);
    plan.kind_ = kind;
    plan.ref_len_ = ref_len;
    plan.overlap_ = overlap;
    plan.max_query_len_ = max_query_len;
    plan.prefix_len_ = prefix_len;
    plan.prefix_ranges_ = std::move(prefix_ranges);
    plan.segments_ = std::move(segments);

    exma_assert(!plan.shards_.empty(), "plan restore: no shards");
    exma_assert(plan.ref_len_ > 0, "plan restore: empty reference");
    if (plan.kind_ == ShardPlanKind::KmerPrefix) {
        exma_assert(plan.prefix_len_ >= 1 &&
                        plan.prefix_len_ <= kMaxPrefixLen,
                    "plan restore: prefix_len %d out of range",
                    plan.prefix_len_);
        exma_assert(plan.prefix_ranges_.size() == plan.shards_.size() &&
                        plan.segments_.size() == plan.shards_.size(),
                    "plan restore: per-shard arrays disagree with the "
                    "shard count");
        // Ranges must be contiguous and cover the whole code space —
        // the invariant ownerOf()'s binary search relies on.
        Kmer expect = 0;
        for (const PrefixRange &r : plan.prefix_ranges_) {
            exma_assert(r.lo == expect && r.hi >= r.lo,
                        "plan restore: prefix ranges not contiguous");
            expect = r.hi;
        }
        exma_assert(expect == kmerSpace(plan.prefix_len_),
                    "plan restore: prefix ranges do not cover the code "
                    "space");
        for (const auto &segs : plan.segments_)
            validateSegments(segs, plan.ref_len_);
    } else {
        exma_assert(plan.prefix_ranges_.empty() &&
                        plan.segments_.empty() && plan.prefix_len_ == 0,
                    "plan restore: text plan carries prefix state");
        for (const Shard &sh : plan.shards_)
            exma_assert(sh.end() <= plan.ref_len_,
                        "plan restore: shard '%s' runs past the "
                        "reference",
                        sh.name.c_str());
    }
    return plan;
}

} // namespace exma
