#include "shard/shard_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

ShardPlan
ShardPlan::fixedWidth(u64 ref_len, unsigned n_shards, u64 max_query_len)
{
    exma_assert(ref_len > 0, "cannot shard an empty reference");
    exma_assert(n_shards > 0, "need at least one shard");
    exma_assert(max_query_len > 0, "max_query_len must be positive");
    // A bound past the reference length is meaningless (no longer query
    // can match at all) and its overlap arithmetic would wrap u64 —
    // kUnboundedQueryLen in particular is a perRecord-only value.
    exma_assert(max_query_len <= ref_len,
                "max_query_len %llu exceeds the %llu-base reference",
                (unsigned long long)max_query_len,
                (unsigned long long)ref_len);

    ShardPlan plan;
    plan.ref_len_ = ref_len;
    plan.max_query_len_ = max_query_len;
    plan.overlap_ = max_query_len - 1;

    const u64 stride = (ref_len + n_shards - 1) / n_shards; // ceil
    for (unsigned i = 0; i < n_shards; ++i) {
        const u64 begin = stride * i;
        if (begin >= ref_len)
            break; // reference too small for the requested shard count
        const u64 end = std::min(ref_len, begin + stride + plan.overlap_);
        plan.shards_.push_back(
            {"shard" + std::to_string(i), begin, end - begin});
    }
    return plan;
}

ShardPlan
ShardPlan::perRecord(const std::vector<RecordSpan> &records)
{
    exma_assert(!records.empty(), "per-record plan needs records");

    ShardPlan plan;
    plan.overlap_ = 0;
    plan.max_query_len_ = kUnboundedQueryLen;

    u64 cursor = 0;
    u64 folded = 0;
    for (const RecordSpan &rec : records) {
        exma_assert(rec.begin == cursor,
                    "record spans must be contiguous from 0 (record "
                    "'%s' begins at %llu, expected %llu)",
                    rec.name.c_str(), (unsigned long long)rec.begin,
                    (unsigned long long)cursor);
        cursor += rec.length;
        if (rec.length == 0) {
            exma_warn("shard plan: skipping empty record '%s'",
                      rec.name.c_str());
            continue;
        }
        // A preceding shard still below the indexable minimum absorbs
        // this record (spans are contiguous, so the slice stays one
        // contiguous run).
        if (!plan.shards_.empty() &&
            plan.shards_.back().length < kMinShardBases) {
            plan.shards_.back().length += rec.length;
            plan.shards_.back().name += "+" + rec.name;
            ++folded;
            continue;
        }
        plan.shards_.push_back({rec.name, rec.begin, rec.length});
    }
    // A tiny trailing shard folds backwards instead.
    if (plan.shards_.size() >= 2 &&
        plan.shards_.back().length < kMinShardBases) {
        Shard tail = plan.shards_.back();
        plan.shards_.pop_back();
        plan.shards_.back().length += tail.length;
        plan.shards_.back().name += "+" + tail.name;
        ++folded;
    }
    if (folded > 0)
        exma_warn("shard plan: folded %llu record(s) shorter than "
                  "%llu bases into neighbouring shards (only those "
                  "seams can report concatenation artifacts)",
                  (unsigned long long)folded,
                  (unsigned long long)kMinShardBases);
    plan.ref_len_ = cursor;
    exma_assert(!plan.shards_.empty(),
                "per-record plan: every record is empty");
    return plan;
}

} // namespace exma
