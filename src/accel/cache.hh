/**
 * @file
 * Set-associative LRU cache model used for the accelerator's base
 * cache (1 MB, 8-way eDRAM) and index cache (32 KB, 16-way SRAM) —
 * Table I.
 *
 * Thread-safety analysis audit (PR 6): SetAssocCache is a cycle-level
 * model owned by a single Accelerator and advanced by the
 * single-threaded EventQueue, so it deliberately has no guarded state
 * — even probe() mutates nothing but access() is not safe to share.
 * If a future serving-tier result cache reuses this class across
 * threads, wrap the mutable members (lines_/tick_/hits_/misses_) in an
 * exma::Mutex with EXMA_GUARDED_BY (common/thread_annotations.hh);
 * tools/lint/exma_lint.py rejects a bare std::mutex here.
 */

#ifndef EXMA_ACCEL_CACHE_HH
#define EXMA_ACCEL_CACHE_HH

#include <vector>

#include "common/types.hh"

namespace exma {

class SetAssocCache
{
  public:
    /**
     * @param capacity_bytes total capacity.
     * @param ways associativity.
     * @param line_bytes line size (64 B everywhere in this repo).
     */
    SetAssocCache(u64 capacity_bytes, int ways, u64 line_bytes = 64);

    /** Look up @p addr; inserts (with LRU eviction) on miss.
     *  @return true on hit. */
    bool access(u64 addr);

    /** Look up without modifying state. */
    bool probe(u64 addr) const;

    void reset();

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    double
    hitRate() const
    {
        const u64 total = hits_ + misses_;
        return total ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
    }

    u64 capacityBytes() const { return sets_ * static_cast<u64>(ways_) * line_bytes_; }

  private:
    struct Line
    {
        u64 tag = ~u64{0};
        u64 lru = 0;
        bool valid = false;
    };

    u64 sets_;
    int ways_;
    u64 line_bytes_;
    u64 tick_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    std::vector<Line> lines_;
};

} // namespace exma

#endif // EXMA_ACCEL_CACHE_HH
