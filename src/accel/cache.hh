/**
 * @file
 * Set-associative LRU cache model used for the accelerator's base
 * cache (1 MB, 8-way eDRAM) and index cache (32 KB, 16-way SRAM) —
 * Table I.
 */

#ifndef EXMA_ACCEL_CACHE_HH
#define EXMA_ACCEL_CACHE_HH

#include <vector>

#include "common/types.hh"

namespace exma {

class SetAssocCache
{
  public:
    /**
     * @param capacity_bytes total capacity.
     * @param ways associativity.
     * @param line_bytes line size (64 B everywhere in this repo).
     */
    SetAssocCache(u64 capacity_bytes, int ways, u64 line_bytes = 64);

    /** Look up @p addr; inserts (with LRU eviction) on miss.
     *  @return true on hit. */
    bool access(u64 addr);

    /** Look up without modifying state. */
    bool probe(u64 addr) const;

    void reset();

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    double
    hitRate() const
    {
        const u64 total = hits_ + misses_;
        return total ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
    }

    u64 capacityBytes() const { return sets_ * static_cast<u64>(ways_) * line_bytes_; }

  private:
    struct Line
    {
        u64 tag = ~u64{0};
        u64 lru = 0;
        bool valid = false;
    };

    u64 sets_;
    int ways_;
    u64 line_bytes_;
    u64 tick_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    std::vector<Line> lines_;
};

} // namespace exma

#endif // EXMA_ACCEL_CACHE_HH
