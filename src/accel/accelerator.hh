/**
 * @file
 * Trace-driven cycle-level model of the EXMA accelerator (§IV.C,
 * Fig. 14): CAM scheduling queue with 2-stage scheduling, base/index
 * caches, Tangram-style PE-array inference engine, CHAIN de/compression
 * unit, DMA to the shared DDR4 system, and the dynamic page policy in
 * the memory controller.
 *
 * The functional layer (ExmaTable::traceSearch) decides *what* every
 * search iteration touches — base pointer, MTL nodes, predicted
 * position, misprediction distance; this model decides *when*, by
 * replaying those traces against shared hardware resources.
 */

#ifndef EXMA_ACCEL_ACCELERATOR_HH
#define EXMA_ACCEL_ACCELERATOR_HH

#include <deque>
#include <map>
#include <vector>

#include "accel/cache.hh"
#include "core/exma_table.hh"
#include "dram/dram_system.hh"
#include "dram/energy.hh"

namespace exma {

/** Table I configuration of the accelerator. */
struct AcceleratorConfig
{
    double clock_mhz = 800.0;
    int pe_arrays = 4;           ///< 8x8 PEs each
    u64 cam_entries = 512;       ///< scheduling queue (128-bit entries)
    u64 max_inflight = 64;       ///< DMA tags: requests past dispatch
    u64 index_cache_bytes = 32 * 1024;
    int index_cache_ways = 16;
    u64 base_cache_bytes = 1 << 20;
    int base_cache_ways = 8;
    bool two_stage_scheduling = true;
    bool chain_compression = true;

    // Energy per operation in pJ (Table I) and leakage in mW.
    double infer_pj = 0.25;
    double cam_pj = 1.9;
    double index_cache_pj = 2.62;
    double base_cache_pj = 17.2;
    double decompress_pj = 0.21;
    double sched_pj = 1.02;
    double dma_pj = 3.42;
    double leakage_mw = 223.8;

    Tick cyclePs() const { return static_cast<Tick>(1e6 / clock_mhz); }
};

/** Outcome of one accelerator simulation. */
struct AcceleratorResult
{
    Tick elapsed = 0;
    u64 queries = 0;
    u64 bases = 0;
    u64 iterations = 0;
    double base_hit_rate = 0.0;
    double index_hit_rate = 0.0;
    double dram_row_hit_rate = 0.0;
    double bandwidth_utilization = 0.0;
    double accel_dynamic_j = 0.0;
    double accel_leakage_j = 0.0;
    DramStats dram;
    DramEnergyReport dram_energy;

    double
    mbasesPerSecond() const
    {
        const double s = static_cast<double>(elapsed) * 1e-12;
        return s > 0.0 ? static_cast<double>(bases) / s / 1e6 : 0.0;
    }

    double accelPowerW() const
    {
        const double s = static_cast<double>(elapsed) * 1e-12;
        return s > 0.0 ? (accel_dynamic_j + accel_leakage_j) / s : 0.0;
    }
};

class ExmaAccelerator
{
  public:
    /**
     * @param table MTL-indexed EXMA table (functional layer).
     * @param cfg accelerator configuration.
     * @param dram_cfg DDR4 configuration; its page policy is the
     *        policy under test (Dynamic for full EXMA).
     */
    ExmaAccelerator(const ExmaTable &table, const AcceleratorConfig &cfg,
                    const DramConfig &dram_cfg);

    /** Simulate searching all @p queries; returns timing/energy. */
    AcceleratorResult run(const std::vector<std::vector<Base>> &queries);

  private:
    struct QueryState
    {
        std::vector<ExmaTable::IterTrace> trace;
        size_t iter = 0;
        int outstanding = 0; ///< low/high requests in flight
        u64 bases = 0;
    };

    struct Request
    {
        QueryState *query = nullptr;
        const ExmaTable::IterTrace *it = nullptr;
        bool is_high = false;
    };

    // Pipeline stages (continuation-passing on the event queue).
    void admitQueries();
    void pumpDispatch();
    void dispatch(Request req);
    void stageIndex(Request req);
    void stageInfer(Request req);
    void stageIncrements(Request req);
    void finishRequest(Request req);

    const IndexLookup &lookupOf(const Request &r) const
    {
        return r.is_high ? r.it->high : r.it->low;
    }

    Tick cycles(int n) const { return static_cast<Tick>(n) * cfg_.cyclePs(); }

    const ExmaTable &table_;
    AcceleratorConfig cfg_;
    DramConfig dram_cfg_;

    EventQueue eq_;
    std::unique_ptr<DramSystem> dram_;
    SetAssocCache base_cache_;
    SetAssocCache index_cache_;

    // Memory-layout regions (byte offsets into the EXMA data image).
    u64 incr_region_ = 0;
    u64 index_region_ = 0;
    u64 leaf_region_ = 0;
    double bytes_per_value_ = 4.0; ///< < 4 when CHAIN is on

    // Scheduling queue: ordered by (k-mer, pos) when 2-stage is on.
    // Dispatch drains sorted snapshots (batches) so no query starves.
    std::multimap<std::pair<Kmer, u64>, Request> sorted_ready_;
    std::deque<Request> batch_;
    std::deque<Request> fifo_ready_;
    u64 in_queue_ = 0;
    u64 inflight_ = 0; ///< dispatched but unfinished requests
    bool dispatch_pending_ = false;

    std::deque<QueryState *> waiting_;
    std::vector<QueryState> queries_;
    u64 active_queries_ = 0;

    std::vector<Tick> engine_free_;

    // Op counters for dynamic energy.
    u64 n_cam_ = 0, n_infer_ = 0, n_base_acc_ = 0, n_index_acc_ = 0,
        n_decomp_ = 0, n_dma_ = 0;

    AcceleratorResult result_;
};

} // namespace exma

#endif // EXMA_ACCEL_ACCELERATOR_HH
