#include "accel/cache.hh"

#include "common/logging.hh"

namespace exma {

SetAssocCache::SetAssocCache(u64 capacity_bytes, int ways, u64 line_bytes)
    : ways_(ways), line_bytes_(line_bytes)
{
    exma_assert(ways >= 1, "associativity must be >= 1");
    exma_assert(capacity_bytes >= line_bytes * static_cast<u64>(ways),
                "cache smaller than one set");
    sets_ = capacity_bytes / (line_bytes * static_cast<u64>(ways));
    // Round down to a power of two for clean indexing.
    while (sets_ & (sets_ - 1))
        sets_ &= sets_ - 1;
    lines_.resize(sets_ * static_cast<u64>(ways));
}

bool
SetAssocCache::access(u64 addr)
{
    const u64 line = addr / line_bytes_;
    const u64 set = line % sets_;
    const u64 tag = line / sets_;
    Line *base = &lines_[set * static_cast<u64>(ways_)];
    ++tick_;
    int victim = 0;
    u64 oldest = ~u64{0};
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick_;
            ++hits_;
            return true;
        }
        const u64 age = base[w].valid ? base[w].lru : 0;
        if (age < oldest) {
            oldest = age;
            victim = w;
        }
    }
    ++misses_;
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lru = tick_;
    return false;
}

bool
SetAssocCache::probe(u64 addr) const
{
    const u64 line = addr / line_bytes_;
    const u64 set = line % sets_;
    const u64 tag = line / sets_;
    const Line *base = &lines_[set * static_cast<u64>(ways_)];
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
SetAssocCache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    tick_ = hits_ = misses_ = 0;
}

} // namespace exma
