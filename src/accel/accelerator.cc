#include "accel/accelerator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/chain.hh"

namespace exma {

ExmaAccelerator::ExmaAccelerator(const ExmaTable &table,
                                 const AcceleratorConfig &cfg,
                                 const DramConfig &dram_cfg)
    : table_(table), cfg_(cfg), dram_cfg_(dram_cfg),
      base_cache_(cfg.base_cache_bytes, cfg.base_cache_ways),
      index_cache_(cfg.index_cache_bytes, cfg.index_cache_ways)
{
    dram_ = std::make_unique<DramSystem>(eq_, dram_cfg_);
    engine_free_.assign(static_cast<size_t>(cfg.pe_arrays), 0);

    // Memory image layout: bases | increments | MTL roots | MTL leaves.
    const auto sizes = table.sizeReport();
    incr_region_ = sizes.bases_raw;
    if (cfg.chain_compression) {
        bytes_per_value_ =
            4.0 * static_cast<double>(sizes.increments_chain) /
            std::max<double>(1.0, static_cast<double>(sizes.increments_raw));
        index_region_ = incr_region_ + sizes.increments_chain;
    } else {
        bytes_per_value_ = 4.0;
        index_region_ = incr_region_ + sizes.increments_raw;
    }
    leaf_region_ = index_region_ + 64 * MtlIndex::kNumClasses;
}

void
ExmaAccelerator::admitQueries()
{
    // Each active query holds at most two CAM entries (the low/high
    // requests of its current iteration).
    const u64 max_active = std::max<u64>(1, cfg_.cam_entries / 2);
    while (!waiting_.empty() && active_queries_ < max_active) {
        QueryState *q = waiting_.front();
        waiting_.pop_front();
        ++active_queries_;
        if (q->trace.empty()) {
            // Degenerate query (shorter than k): counts as processed.
            result_.bases += q->bases;
            ++result_.queries;
            --active_queries_;
            continue;
        }
        const ExmaTable::IterTrace &it = q->trace[q->iter];
        q->outstanding = 2;
        for (bool high : {false, true}) {
            Request r{q, &it, high};
            ++n_cam_;
            ++in_queue_;
            if (cfg_.two_stage_scheduling) {
                const u64 pos = high ? it.pos_high : it.pos_low;
                sorted_ready_.emplace(std::make_pair(it.kmer, pos), r);
            } else {
                fifo_ready_.push_back(r);
            }
        }
    }
    pumpDispatch();
}

void
ExmaAccelerator::pumpDispatch()
{
    // The DMA engine bounds how many requests are past dispatch at
    // once; the CAM therefore holds a backlog the 2-stage scheduler
    // can actually reorder (its whole point, §IV.C.2).
    if (dispatch_pending_ || in_queue_ == 0 ||
        inflight_ >= cfg_.max_inflight)
        return;
    dispatch_pending_ = true;
    // One CAM dispatch per accelerator cycle.
    eq_.scheduleAfter(cycles(1), [this] {
        dispatch_pending_ = false;
        if (in_queue_ == 0 || inflight_ >= cfg_.max_inflight)
            return;
        Request r;
        if (cfg_.two_stage_scheduling) {
            if (batch_.empty()) {
                // Snapshot the CAM contents in (k-mer, pos) order —
                // the 2-stage sort — and drain it as one batch.
                for (auto &[key, req] : sorted_ready_)
                    batch_.push_back(req);
                sorted_ready_.clear();
            }
            r = batch_.front();
            batch_.pop_front();
        } else {
            r = fifo_ready_.front();
            fifo_ready_.pop_front();
        }
        --in_queue_;
        ++inflight_;
        dispatch(r);
        pumpDispatch();
    });
}

void
ExmaAccelerator::dispatch(Request req)
{
    // Stage ❷/❸: base lookup through the base cache.
    ++n_base_acc_;
    const u64 base_addr = req.it->kmer * 4;
    if (base_cache_.access(base_addr)) {
        eq_.scheduleAfter(cycles(2),
                          [this, req] { stageIndex(req); });
    } else {
        ++n_dma_;
        dram_->access(base_addr, false,
                      [this, req](Tick) { stageIndex(req); });
    }
}

void
ExmaAccelerator::stageIndex(Request req)
{
    // Stage ❹/❺: fetch the MTL nodes (shared class root + leaf line).
    const IndexLookup &lk = lookupOf(req);
    if (!lk.used_model) {
        // Below-threshold k-mer: no model; binary search happens in the
        // increments stage directly.
        stageIncrements(req);
        return;
    }
    const u64 root_addr =
        index_region_ + static_cast<u64>(std::max(lk.cls, 0)) * 64;
    const u64 leaf_addr = leaf_region_ + lk.leaf_id * 2; // 8-bit params
    n_index_acc_ += 2;
    const bool root_hit = index_cache_.access(root_addr);
    const bool leaf_hit = index_cache_.access(leaf_addr);
    if (root_hit && leaf_hit) {
        eq_.scheduleAfter(cycles(1), [this, req] { stageInfer(req); });
        return;
    }
    // Fetch misses from DRAM (sequentially dependent on one DMA queue).
    const int missing = (root_hit ? 0 : 1) + (leaf_hit ? 0 : 1);
    auto remaining = std::make_shared<int>(missing);
    auto proceed = [this, req, remaining](Tick) {
        if (--*remaining == 0)
            stageInfer(req);
    };
    if (!root_hit) {
        ++n_dma_;
        dram_->access(root_addr, false, proceed);
    }
    if (!leaf_hit) {
        ++n_dma_;
        dram_->access(leaf_addr, false, proceed);
    }
}

void
ExmaAccelerator::stageInfer(Request req)
{
    // Stage ❺→❻: run the MTL inference on the PE arrays.
    ++n_infer_;
    auto it = std::min_element(engine_free_.begin(), engine_free_.end());
    const Tick start = std::max(*it, eq_.now());
    // A 2-input, 10-neuron node plus a linear leaf is ~31 MACs; an 8x8
    // array retires them in well under two cycles.
    const Tick done = start + cycles(2);
    *it = done;
    eq_.schedule(done, [this, req] { stageIncrements(req); });
}

void
ExmaAccelerator::stageIncrements(Request req)
{
    // Stage ❻: read the increment at the predicted position; on a
    // misprediction, linearly fetch neighbouring lines until corrected.
    const IndexLookup &lk = lookupOf(req);
    const double values_per_line = 64.0 / bytes_per_value_;

    u64 lines = 1;
    if (lk.used_model) {
        lines += static_cast<u64>(static_cast<double>(lk.error) /
                                  values_per_line);
    } else {
        // Binary search over a short list: touches at most two lines of
        // a (<=256-entry) increment run.
        lines = std::min<u64>(
            2, 1 + static_cast<u64>(static_cast<double>(lk.probes) /
                                    values_per_line));
    }

    const u64 rank = lk.rank;
    const u64 first_addr =
        incr_region_ +
        static_cast<u64>(static_cast<double>(req.it->base + rank) *
                         bytes_per_value_);
    auto remaining = std::make_shared<u64>(lines);
    auto proceed = [this, req, remaining, lines](Tick) {
        if (--*remaining == 0) {
            // CHAIN decompression: one accumulate pass per line.
            if (cfg_.chain_compression) {
                n_decomp_ += lines;
                eq_.scheduleAfter(cycles(static_cast<int>(lines)),
                                  [this, req] { finishRequest(req); });
            } else {
                finishRequest(req);
            }
        }
    };
    for (u64 l = 0; l < lines; ++l) {
        ++n_dma_;
        dram_->access(first_addr + l * 64, false, proceed);
    }
}

void
ExmaAccelerator::finishRequest(Request req)
{
    --inflight_;
    QueryState *q = req.query;
    if (--q->outstanding > 0) {
        pumpDispatch();
        return;
    }

    ++result_.iterations;
    ++q->iter;
    if (q->iter >= q->trace.size()) {
        // Query done.
        result_.bases += q->bases;
        ++result_.queries;
        --active_queries_;
        admitQueries();
        return;
    }
    const ExmaTable::IterTrace &it = q->trace[q->iter];
    q->outstanding = 2;
    for (bool high : {false, true}) {
        Request r{q, &it, high};
        ++n_cam_;
        ++in_queue_;
        if (cfg_.two_stage_scheduling) {
            const u64 pos = high ? it.pos_high : it.pos_low;
            sorted_ready_.emplace(std::make_pair(it.kmer, pos), r);
        } else {
            fifo_ready_.push_back(r);
        }
    }
    pumpDispatch();
}

AcceleratorResult
ExmaAccelerator::run(const std::vector<std::vector<Base>> &queries)
{
    result_ = AcceleratorResult{};
    queries_.clear();
    queries_.reserve(queries.size());
    for (const auto &q : queries) {
        QueryState qs;
        qs.trace = table_.traceSearch(q);
        qs.bases = q.size();
        queries_.push_back(std::move(qs));
    }
    for (auto &qs : queries_)
        waiting_.push_back(&qs);

    admitQueries();
    result_.elapsed = eq_.run();

    result_.base_hit_rate = base_cache_.hitRate();
    result_.index_hit_rate = index_cache_.hitRate();
    result_.dram = dram_->stats();
    result_.dram_row_hit_rate = dram_->rowHitRate();
    result_.bandwidth_utilization = dram_->bandwidthUtilization();
    result_.dram_energy = dramEnergy(result_.dram, result_.elapsed,
                                     dram_cfg_, DramEnergyParams{});

    result_.accel_dynamic_j =
        (static_cast<double>(n_cam_) * (cfg_.cam_pj + cfg_.sched_pj) +
         static_cast<double>(n_infer_) * cfg_.infer_pj * 31.0 +
         static_cast<double>(n_base_acc_) * cfg_.base_cache_pj +
         static_cast<double>(n_index_acc_) * cfg_.index_cache_pj +
         static_cast<double>(n_decomp_) * cfg_.decompress_pj * 15.0 +
         static_cast<double>(n_dma_) * cfg_.dma_pj) *
        1e-12;
    result_.accel_leakage_j = cfg_.leakage_mw * 1e-3 *
                              static_cast<double>(result_.elapsed) * 1e-12;
    return result_;
}

} // namespace exma
