#include "baselines/device_models.hh"

#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"

namespace exma {
namespace {

/** Event-driven runner for one ChainSpec. */
class ChainRunner
{
  public:
    ChainRunner(const ChainSpec &spec, const DramConfig &base)
        : spec_(spec), rng_(spec.seed)
    {
        cfg_ = base;
        cfg_.page_policy = spec.policy;
        cfg_.chip_level_parallelism = spec.chip_mode;
        dram_ = std::make_unique<DramSystem>(eq_, cfg_);
        remaining_ = spec.iterations;
    }

    DeviceResult
    run()
    {
        for (int w = 0; w < spec_.workers; ++w)
            startIteration();
        const Tick end = eq_.run();

        DeviceResult r;
        r.name = spec_.name;
        r.elapsed = end;
        r.symbols = done_iterations_ *
                    static_cast<u64>(spec_.symbols_per_iteration);
        r.bw_util = dram_->bandwidthUtilization();
        r.row_hit_rate = dram_->rowHitRate();
        r.avg_latency_ns = dram_->avgLatencyNs();
        r.dram = dram_->stats();
        r.acc_power_w = spec_.acc_power_w;
        r.mem_power_w =
            dramEnergy(r.dram, end, cfg_, DramEnergyParams{},
                       spec_.chip_mode)
                .avg_power_w;
        return r;
    }

  private:
    void
    startIteration()
    {
        if (remaining_ == 0)
            return;
        --remaining_;

        // FindeR: a fraction of accesses is served by internal ReRAM.
        if (spec_.internal_hit > 0.0 &&
            rng_.uniform() < spec_.internal_hit) {
            eq_.scheduleAfter(spec_.internal_latency_ps +
                                  spec_.compute_ps,
                              [this] { completeIteration(); });
            return;
        }

        const int chip =
            spec_.chip_mode
                ? static_cast<int>(rng_.below(
                      static_cast<u64>(cfg_.chips_per_rank)))
                : -1;
        chainAccess(chip, spec_.dependent_accesses);
    }

    /**
     * Serial random accesses (pointer chasing through the index
     * hierarchy); the last one anchors the follow-on line fetches.
     */
    void
    chainAccess(int chip, int remaining_deps)
    {
        const u64 addr = rng_.below(spec_.footprint_bytes / 64) * 64;
        const int extra = spec_.lines_per_iteration - 1;
        auto self = this;
        if (remaining_deps > 1) {
            dram_->access(addr, false,
                          [self, chip, remaining_deps](Tick) {
                              self->chainAccess(chip, remaining_deps - 1);
                          },
                          chip);
        } else {
            dram_->access(addr, false,
                          [self, addr, chip, extra](Tick) {
                              self->fetchExtra(addr, chip, extra);
                          },
                          chip);
        }
    }

    void
    fetchExtra(u64 addr, int chip, int extra)
    {
        if (extra <= 0) {
            finishCompute();
            return;
        }
        // Follow-on lines: sequential (same row) or random re-chases.
        auto remaining = std::make_shared<int>(extra);
        auto self = this;
        auto done = [self, remaining](Tick) {
            if (--*remaining == 0)
                self->finishCompute();
        };
        for (int l = 1; l <= extra; ++l) {
            const u64 a = spec_.extra_lines_sequential
                              ? addr + static_cast<u64>(l) * 64
                              : rng_.below(spec_.footprint_bytes / 64) * 64;
            dram_->access(a % spec_.footprint_bytes, false, done, chip);
        }
    }

    void
    finishCompute()
    {
        if (spec_.compute_ps > 0)
            eq_.scheduleAfter(spec_.compute_ps,
                              [this] { completeIteration(); });
        else
            completeIteration();
    }

    void
    completeIteration()
    {
        ++done_iterations_;
        startIteration();
    }

    ChainSpec spec_;
    DramConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<DramSystem> dram_;
    Rng rng_;
    u64 remaining_ = 0;
    u64 done_iterations_ = 0;
};

} // namespace

DeviceResult
runChainWorkload(const ChainSpec &spec, const DramConfig &base)
{
    exma_assert(spec.workers > 0 && spec.iterations > 0,
                "degenerate chain spec");
    ChainRunner runner(spec, base);
    return runner.run();
}

ChainSpec
cpuFm1Spec(u64 footprint_bytes)
{
    ChainSpec s;
    s.name = "CPU-FM1";
    // 16 cores, roughly one in-flight software search per core plus a
    // little memory-level parallelism within each.
    s.workers = 24;
    s.symbols_per_iteration = 1;
    s.dependent_accesses = 1;
    s.lines_per_iteration = 1;
    s.policy = PagePolicy::Open; // commodity controllers
    s.compute_ps = 40000; // software Occ reconstruction per step
    s.acc_power_w = 95.0; // 16-core Xeon-class (McPAT regime)
    s.footprint_bytes = footprint_bytes;
    return s;
}

ChainSpec
cpuLisaSpec(u64 footprint_bytes, int k, double extra_lines)
{
    ChainSpec s = cpuFm1Spec(footprint_bytes);
    s.name = "CPU-LISA";
    s.symbols_per_iteration = k;
    // Every lower-bound query walks the learned-index hierarchy
    // (pointer chasing, §III.A) before touching the IP-BWT entry.
    s.dependent_accesses = 3;
    s.lines_per_iteration = 1 + static_cast<int>(extra_lines + 0.5);
    s.extra_lines_sequential = true;
    s.compute_ps = 80000; // model evaluation + comparisons in software
    return s;
}

ChainSpec
gpuLisaSpec(u64 footprint_bytes, int k, double extra_lines)
{
    ChainSpec s;
    s.name = "GPU";
    // Thousands of threads but LISA's binary/linear searches serialise
    // warps; effective concurrent chains are a few hundred.
    s.workers = 224;
    s.symbols_per_iteration = k;
    // Fetches whole rows around the predicted position (§VI).
    s.lines_per_iteration = 8 + static_cast<int>(extra_lines + 0.5);
    s.extra_lines_sequential = true;
    s.policy = PagePolicy::Open;
    s.compute_ps = 8000;
    s.acc_power_w = 182.0; // Tesla P100 board power (Table II)
    s.footprint_bytes = footprint_bytes;
    return s;
}

ChainSpec
fpgaFm2Spec(u64 footprint_bytes)
{
    ChainSpec s;
    s.name = "FPGA";
    s.workers = 12; // pipeline slots of the Stratix-V design [30]
    s.symbols_per_iteration = 2;
    s.lines_per_iteration = 1;
    s.policy = PagePolicy::Close;
    s.compute_ps = 10000; // ~200 MHz fabric, a few cycles per step
    s.acc_power_w = 11.0;
    s.footprint_bytes = footprint_bytes;
    return s;
}

ChainSpec
asicFm1Spec(u64 footprint_bytes)
{
    ChainSpec s;
    s.name = "ASIC";
    s.workers = 8; // the 28nm design [37] keeps few searches in flight
    s.symbols_per_iteration = 1;
    s.lines_per_iteration = 1;
    s.policy = PagePolicy::Close;
    s.compute_ps = 2000;
    s.acc_power_w = 9.4;
    s.footprint_bytes = footprint_bytes;
    return s;
}

ChainSpec
medalSpec(u64 footprint_bytes)
{
    ChainSpec s;
    s.name = "MEDAL";
    // Chip-level parallelism: every chip runs its own search, but all
    // ACT/RD commands share the 17-bit DDR4 address bus (Fig. 7).
    s.workers = 768; // one search per chip across 48 ranks
    s.symbols_per_iteration = 1;
    s.lines_per_iteration = 1;
    s.policy = PagePolicy::Close;
    s.chip_mode = true;
    s.compute_ps = 3000; // near-bank logic
    s.acc_power_w = 0.011;
    s.footprint_bytes = footprint_bytes;
    return s;
}

ChainSpec
finderSpec(u64 footprint_bytes, u64 internal_bytes)
{
    ChainSpec s;
    s.name = "FindeR";
    s.workers = 64;
    s.symbols_per_iteration = 1;
    s.lines_per_iteration = 1;
    s.policy = PagePolicy::Close;
    s.internal_hit =
        std::min(1.0, static_cast<double>(internal_bytes) /
                          static_cast<double>(footprint_bytes));
    s.internal_latency_ps = 60000; // ReRAM array search
    s.compute_ps = 2000;
    s.acc_power_w = 0.28;
    s.footprint_bytes = footprint_bytes;
    return s;
}

} // namespace exma
