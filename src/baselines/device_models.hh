/**
 * @file
 * Mechanistic models of the prior FM-Index accelerators the paper
 * compares against (Table II): CPU, GPU (LISA-21), FPGA (FM-2),
 * ASIC (FM-1), MEDAL (FM-1 with chip-level parallelism) and FindeR
 * (ReRAM PIM with capacity-limited internal arrays).
 *
 * Every device is expressed as a set of concurrent *dependent access
 * chains* — the defining property of FM-Index search is that iteration
 * i+1's address depends on iteration i's data — running against the
 * same cycle-level DDR4 system the EXMA accelerator uses. What differs
 * per device is its concurrency (how many chains it can keep in
 * flight), the symbols resolved and lines fetched per iteration, its
 * page policy, chip-level parallelism, and any internal memory.
 */

#ifndef EXMA_BASELINES_DEVICE_MODELS_HH
#define EXMA_BASELINES_DEVICE_MODELS_HH

#include <string>

#include "dram/dram_system.hh"
#include "dram/energy.hh"

namespace exma {

/** A device expressed as concurrent dependent DRAM-access chains. */
struct ChainSpec
{
    std::string name;
    int workers = 16;              ///< concurrent dependent chains
    u64 iterations = 20000;        ///< total iterations across workers
    int symbols_per_iteration = 1; ///< DNA symbols resolved per iter
    int dependent_accesses = 1;    ///< serial random accesses per iter
                                   ///< (index-hierarchy traversal)
    int lines_per_iteration = 1;   ///< 64B lines fetched per iter
    bool extra_lines_sequential = true; ///< follow-on lines share a row
    PagePolicy policy = PagePolicy::Close;
    bool chip_mode = false;        ///< MEDAL chip-level parallelism
    double internal_hit = 0.0;     ///< FindeR: fraction served on-die
    Tick internal_latency_ps = 50000;
    Tick compute_ps = 0;           ///< device compute per iteration
    double acc_power_w = 0.0;      ///< device (non-DRAM) power
    u64 footprint_bytes = u64{1} << 34; ///< randomised address range
    u64 seed = 1;
};

struct DeviceResult
{
    std::string name;
    Tick elapsed = 0;
    u64 symbols = 0;
    double bw_util = 0.0;
    double row_hit_rate = 0.0;
    double avg_latency_ns = 0.0;
    double acc_power_w = 0.0;
    double mem_power_w = 0.0;
    DramStats dram;

    double
    mbasesPerSecond() const
    {
        const double s = static_cast<double>(elapsed) * 1e-12;
        return s > 0.0 ? static_cast<double>(symbols) / s / 1e6 : 0.0;
    }

    double
    mbasesPerWatt() const
    {
        const double p = acc_power_w + mem_power_w;
        return p > 0.0 ? mbasesPerSecond() / p : 0.0;
    }
};

/** Simulate @p spec against a DDR4 system derived from @p base. */
DeviceResult runChainWorkload(const ChainSpec &spec,
                              const DramConfig &base);

/**
 * Preset specs for the paper's comparison devices processing a genome
 * of @p footprint_bytes. @p lisa_extra_lines is the measured average
 * misprediction overhead of the LISA learned index in 64 B lines.
 */
ChainSpec cpuFm1Spec(u64 footprint_bytes);
ChainSpec cpuLisaSpec(u64 footprint_bytes, int k, double extra_lines);
ChainSpec gpuLisaSpec(u64 footprint_bytes, int k, double extra_lines);
ChainSpec fpgaFm2Spec(u64 footprint_bytes);
ChainSpec asicFm1Spec(u64 footprint_bytes);
ChainSpec medalSpec(u64 footprint_bytes);
ChainSpec finderSpec(u64 footprint_bytes, u64 internal_bytes);

} // namespace exma

#endif // EXMA_BASELINES_DEVICE_MODELS_HH
