/**
 * @file
 * Analytic CPU iteration-cost model for the algorithm-comparison
 * figures (Fig. 6d, Fig. 10b). Each scheme's per-iteration cost on the
 * paper's 16-core CPU is a random DRAM access whose latency grows with
 * the data structure's footprint (TLB pressure), plus learned-index
 * node traversal, plus misprediction correction. Calibrated against
 * the paper's quoted points: FM-5 ≈ 1.21x, LISA-21 ≈ 2.15x,
 * LISA-21P ≈ 5.1x, LISA-21PC ≈ 8.53x over FM-1.
 */

#ifndef EXMA_BASELINES_CPU_MODEL_HH
#define EXMA_BASELINES_CPU_MODEL_HH

#include <string>

#include "common/types.hh"

namespace exma {

struct CpuScheme
{
    std::string name;
    int symbols_per_iteration = 1;
    double footprint_gb = 3.4;      ///< data-structure size at CPU scale
    double index_node_factor = 0.0; ///< learned-index traversal cost,
                                    ///< as a fraction of a main access
    double mean_error_entries = 0.0; ///< misprediction linear search
    bool perfect_index = false;      ///< the paper's "-P" variants
    bool perfect_cache = false;      ///< the paper's "-PC" variants
};

/** Effective random-access latency at a given footprint (ns). */
double cpuAccessNs(double footprint_gb);

/** Cost of one search iteration of @p s (ns). */
double cpuIterationCostNs(const CpuScheme &s);

/** Throughput in symbols/ns (relative units). */
double cpuThroughput(const CpuScheme &s);

/** Throughput normalised to a 1-step FM-Index at @p fm1_footprint_gb. */
double cpuNormalizedThroughput(const CpuScheme &s,
                               double fm1_footprint_gb = 3.4);

} // namespace exma

#endif // EXMA_BASELINES_CPU_MODEL_HH
