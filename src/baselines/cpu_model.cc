#include "baselines/cpu_model.hh"

#include <algorithm>
#include <cmath>

namespace exma {

double
cpuAccessNs(double footprint_gb)
{
    // 75 ns raw random access; TLB/page-walk pressure grows with the
    // footprint beyond the ~4 GB hugepage reach.
    const double base = 75.0;
    const double factor = std::max(1.0, footprint_gb / 4.0);
    return base + 60.0 * std::log(factor);
}

double
cpuIterationCostNs(const CpuScheme &s)
{
    const double t_req = cpuAccessNs(s.footprint_gb);
    double cost = t_req;
    if (!s.perfect_cache)
        cost += s.index_node_factor * t_req;
    if (!s.perfect_index) {
        // Linear correction search: mostly cache-resident scanning at
        // ~0.1 ns per entry.
        cost += 0.1 * s.mean_error_entries;
    }
    return cost;
}

double
cpuThroughput(const CpuScheme &s)
{
    return static_cast<double>(s.symbols_per_iteration) /
           cpuIterationCostNs(s);
}

double
cpuNormalizedThroughput(const CpuScheme &s, double fm1_footprint_gb)
{
    CpuScheme fm1;
    fm1.name = "FM-1";
    fm1.symbols_per_iteration = 1;
    fm1.footprint_gb = fm1_footprint_gb;
    return cpuThroughput(s) / cpuThroughput(fm1);
}

} // namespace exma
