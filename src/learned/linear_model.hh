/**
 * @file
 * Closed-form least-squares linear regression — the leaf-node model of
 * every learned index in the paper ("we deploy simple linear regression
 * models as leaf nodes ... a linear regression model contains only one
 * weight and one bias", §IV.B).
 */

#ifndef EXMA_LEARNED_LINEAR_MODEL_HH
#define EXMA_LEARNED_LINEAR_MODEL_HH

#include <cmath>
#include <span>

#include "common/types.hh"

namespace exma {

struct LinearModel
{
    double w = 0.0;
    double b = 0.0;

    double predict(double x) const { return w * x + b; }

    /** Number of trainable parameters (always 2). */
    static constexpr u64 paramCount() { return 2; }

    /**
     * Least-squares fit of y = w·x + b over (xs[i], y0 + i).
     * Ranks are implicit consecutive integers, matching CDF learning
     * over a sorted key segment.
     */
    static LinearModel
    fitRanks(std::span<const double> xs, double y0)
    {
        LinearModel m;
        const size_t n = xs.size();
        if (n == 0)
            return m;
        if (n == 1) {
            m.w = 0.0;
            m.b = y0;
            return m;
        }
        double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double x = xs[i];
            const double y = y0 + static_cast<double>(i);
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        const double dn = static_cast<double>(n);
        const double den = dn * sxx - sx * sx;
        if (std::abs(den) < 1e-12) {
            m.w = 0.0;
            m.b = sy / dn;
        } else {
            m.w = (dn * sxy - sx * sy) / den;
            m.b = (sy - m.w * sx) / dn;
        }
        return m;
    }

    /** Least-squares fit over explicit (xs[i], ys[i]) pairs. */
    static LinearModel
    fitXY(std::span<const double> xs, std::span<const double> ys)
    {
        LinearModel m;
        const size_t n = xs.size();
        if (n == 0)
            return m;
        double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
        for (size_t i = 0; i < n; ++i) {
            sx += xs[i];
            sy += ys[i];
            sxx += xs[i] * xs[i];
            sxy += xs[i] * ys[i];
        }
        const double dn = static_cast<double>(n);
        const double den = dn * sxx - sx * sx;
        if (std::abs(den) < 1e-12) {
            m.w = 0.0;
            m.b = sy / dn;
        } else {
            m.w = (dn * sxy - sx * sy) / den;
            m.b = (sy - m.w * sx) / dn;
        }
        return m;
    }
};

} // namespace exma

#endif // EXMA_LEARNED_LINEAR_MODEL_HH
