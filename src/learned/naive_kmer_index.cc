#include "learned/naive_kmer_index.hh"

#include <algorithm>

namespace exma {

NaiveKmerIndex::NaiveKmerIndex(const KmerOccTable &tab, const Config &cfg)
    : tab_(tab), cfg_(cfg)
{
    const u64 space = kmerSpace(tab.k());
    for (Kmer m = 0; m < space; ++m) {
        const u64 f = tab.frequency(m);
        if (f <= cfg.min_increments)
            continue;
        Rmi<u32>::Config rc;
        rc.leaf_size = cfg.leaf_size;
        rc.mlp_root = true;
        rc.hidden = cfg.hidden;
        rc.epochs = cfg.epochs;
        rc.train_cap = cfg.train_cap;
        rc.seed = cfg.seed + m;
        auto &rmi = models_[m];
        rmi.build(tab.increments(m), rc);
        params_ += rmi.paramCount();
    }
}

IndexLookup
NaiveKmerIndex::occ(Kmer code, u64 pos) const
{
    IndexLookup out;
    auto it = models_.find(code);
    if (it != models_.end()) {
        RmiResult r = it->second.lookup(static_cast<u32>(pos));
        out.rank = r.rank;
        out.error = r.error;
        out.probes = r.probes;
        out.used_model = true;
        return out;
    }
    // Binary search over the (short) increment list.
    auto inc = tab_.increments(code);
    const u64 rank = static_cast<u64>(
        std::lower_bound(inc.begin(), inc.end(), static_cast<u32>(pos)) -
        inc.begin());
    out.rank = rank;
    out.probes = inc.empty() ? 0
                             : static_cast<u64>(std::ceil(std::log2(
                                   static_cast<double>(inc.size()) + 1)));
    return out;
}

} // namespace exma
