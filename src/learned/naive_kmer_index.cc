#include "learned/naive_kmer_index.hh"

#include "common/branchless.hh"
#include "common/logging.hh"

namespace exma {

NaiveKmerIndex::NaiveKmerIndex(const KmerOccTable &tab, const Config &cfg)
    : tab_(tab), cfg_(cfg)
{
    const u64 space = kmerSpace(tab.k());
    for (Kmer m = 0; m < space; ++m) {
        const u64 f = tab.frequency(m);
        if (f <= cfg.min_increments)
            continue;
        Rmi<u32>::Config rc;
        rc.leaf_size = cfg.leaf_size;
        rc.mlp_root = true;
        rc.hidden = cfg.hidden;
        rc.epochs = cfg.epochs;
        rc.train_cap = cfg.train_cap;
        rc.seed = cfg.seed + m;
        auto &rmi = models_[m];
        rmi.build(tab.increments(m), rc);
        params_ += rmi.paramCount();
    }
}

NaiveKmerIndex::NaiveKmerIndex(
    const KmerOccTable &tab, const Config &cfg,
    std::vector<std::pair<Kmer, Rmi<u32>::Parts>> models)
    : tab_(tab), cfg_(cfg)
{
    models_.reserve(models.size());
    for (auto &[code, parts] : models) {
        const auto inc = tab_.increments(code);
        exma_assert(inc.size() > cfg_.min_increments,
                    "naive restore: model for k-mer below the modelling "
                    "threshold");
        auto &rmi = models_[code];
        rmi.restore(inc, std::move(parts));
        params_ += rmi.paramCount();
    }
}

IndexLookup
NaiveKmerIndex::occ(Kmer code, u64 pos) const
{
    IndexLookup out;
    // Modelled iff f > min_increments (constructor), so the short-list
    // majority skips the hash lookup and binary-searches branchlessly.
    auto inc = tab_.increments(code);
    if (inc.size() <= cfg_.min_increments) {
        out.rank = lowerBoundRank(inc, static_cast<u32>(pos));
        out.probes = probeCount(inc.size());
        return out;
    }
    RmiResult r = models_.at(code).lookup(static_cast<u32>(pos));
    out.rank = r.rank;
    out.error = r.error;
    out.probes = r.probes;
    out.used_model = true;
    return out;
}

} // namespace exma
