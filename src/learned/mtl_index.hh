/**
 * @file
 * The multi-task-learning index of §IV.B / Fig. 9(b): k-mers are grouped
 * into increment-count classes; each class shares one non-leaf MLP
 * (hard parameter sharing) that takes both the k-mer and the position as
 * inputs and routes to per-k-mer linear-regression leaves. Sharing the
 * non-leaf nodes frees parameter budget, which buys finer leaf
 * granularity than the naive index — the mechanism behind the paper's
 * "higher accuracy with fewer parameters" claim (Stein's paradox
 * argument, Fig. 13).
 */

#ifndef EXMA_LEARNED_MTL_INDEX_HH
#define EXMA_LEARNED_MTL_INDEX_HH

#include <array>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dna.hh"
#include "common/storage.hh"
#include "fmindex/kmer_occ.hh"
#include "learned/mlp.hh"
#include "learned/naive_kmer_index.hh" // IndexLookup
#include "learned/rmi.hh"              // ClampedLeaf

namespace exma {

class MtlIndex
{
  public:
    /** Increment-count classes, mirroring Fig. 12's x-axis. */
    static constexpr int kNumClasses = 10;

    struct Config
    {
        u64 min_increments = 256; ///< below this: binary search
        u64 leaf_size = 512;      ///< finer than naive (shared budget)
        int hidden = 10;
        int epochs = 80;
        u64 samples_per_class = 8192;
        double lr = 0.05;
        u64 seed = 9;
    };

    /** Leaf range + class of one modelled k-mer. */
    struct KmerLeaves
    {
        u32 first_leaf = 0;
        u32 n_leaves = 0;
        int cls = 0;
    };

    MtlIndex(const KmerOccTable &tab, const Config &cfg);

    /**
     * Serialized parts of a trained index (src/io/index_io.cc). The
     * leaf array is typically borrowed straight from the mmap'd
     * `.exma.occ` file; no training runs on restore.
     */
    struct Restored
    {
        Config cfg;
        std::array<int, kNumClasses> class_model;
        std::vector<Mlp> mlps;
        Storage<ClampedLeaf> leaves;
        std::vector<std::pair<Kmer, KmerLeaves>> kmers;
    };

    /** Restore against the (already restored) occurrence table. */
    MtlIndex(const KmerOccTable &tab, Restored parts);

    /** Occ(k-mer, pos) via the shared-class model (or binary search). */
    IndexLookup occ(Kmer code, u64 pos) const;

    /** Shared-MLP + leaf parameters across all classes/k-mers. */
    u64 paramCount() const { return params_; }

    /** Class id of a k-mer with @p f increments (Fig. 12 buckets). */
    static int classOf(u64 f);

    /** Human-readable class label, e.g.\ "64K-256K". */
    static const char *className(int cls);

    bool hasModel(Kmer code) const { return kmers_.count(code) > 0; }

    /** Serialization accessors (src/io/index_io.cc). */
    const Config &config() const { return cfg_; }
    const std::array<int, kNumClasses> &classModel() const
    {
        return class_model_;
    }
    const std::vector<Mlp> &sharedMlps() const { return mlps_; }
    std::span<const ClampedLeaf> leafArray() const { return leaves_.span(); }
    const std::unordered_map<Kmer, KmerLeaves> &kmerMap() const
    {
        return kmers_;
    }

  private:
    /** Shared-root leaf routing, identical at build and query time. */
    u64 routeLeaf(const KmerLeaves &kl, double x0, double x1) const;

    const KmerOccTable &tab_;
    Config cfg_;
    std::array<int, kNumClasses> class_model_; ///< index into mlps_, -1
    std::vector<Mlp> mlps_;                    ///< one per populated class
    Storage<ClampedLeaf> leaves_;              ///< all k-mers, contiguous
    std::unordered_map<Kmer, KmerLeaves> kmers_;
    u64 params_ = 0;
    double inv_kmer_space_ = 0.0;
    double inv_rows_ = 0.0;
};

} // namespace exma

#endif // EXMA_LEARNED_MTL_INDEX_HH
