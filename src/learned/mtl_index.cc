#include "learned/mtl_index.hh"

#include <algorithm>

#include "common/branchless.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "learned/rmi.hh" // LeafMoments

namespace exma {

int
MtlIndex::classOf(u64 f)
{
    if (f == 0)
        return 0;
    if (f == 1)
        return 1;
    if (f <= 256)
        return 2;
    if (f <= 1024)
        return 3;
    if (f <= 4096)
        return 4;
    if (f <= 16384)
        return 5;
    if (f <= 65536)
        return 6;
    if (f <= 262144)
        return 7;
    if (f <= 1048576)
        return 8;
    return 9;
}

const char *
MtlIndex::className(int cls)
{
    static const char *names[kNumClasses] = {
        "0", "1", "2-256", "256-1K", "1K-4K", "4K-16K", "16K-64K",
        "64K-256K", "256K-1M", ">1M"};
    exma_assert(cls >= 0 && cls < kNumClasses, "bad class %d", cls);
    return names[cls];
}

MtlIndex::MtlIndex(const KmerOccTable &tab, const Config &cfg)
    : tab_(tab), cfg_(cfg)
{
    class_model_.fill(-1);
    inv_kmer_space_ = 1.0 / static_cast<double>(kmerSpace(tab.k()));
    inv_rows_ = 1.0 / static_cast<double>(tab.rows());

    // Pass 1: collect the modelled k-mers per class.
    const u64 space = kmerSpace(tab.k());
    std::array<std::vector<Kmer>, kNumClasses> members;
    for (Kmer m = 0; m < space; ++m) {
        const u64 f = tab.frequency(m);
        if (f > cfg.min_increments)
            members[static_cast<size_t>(classOf(f))].push_back(m);
    }

    // Pass 2: train one shared MLP per populated class across its
    // members (hard parameter sharing). Target: within-k-mer quantile,
    // so differently sized k-mers share the same output scale.
    Rng rng(cfg.seed);
    for (int cls = 0; cls < kNumClasses; ++cls) {
        auto &mem = members[static_cast<size_t>(cls)];
        if (mem.empty())
            continue;
        std::vector<Mlp::Sample> samples;
        samples.reserve(cfg.samples_per_class);
        for (u64 s = 0; s < cfg.samples_per_class; ++s) {
            const Kmer m = mem[rng.below(mem.size())];
            auto inc = tab_.increments(m);
            const u64 i = rng.below(inc.size());
            Mlp::Sample smp;
            smp.x0 = static_cast<double>(m) * inv_kmer_space_;
            smp.x1 = static_cast<double>(inc[i]) * inv_rows_;
            smp.y = static_cast<double>(i) /
                    static_cast<double>(inc.size());
            samples.push_back(smp);
        }
        Mlp mlp(2, cfg.hidden, cfg.seed + static_cast<u64>(cls));
        mlp.train(samples, cfg.epochs, cfg.lr);
        class_model_[static_cast<size_t>(cls)] =
            static_cast<int>(mlps_.size());
        mlps_.push_back(std::move(mlp));
    }

    // Pass 3: per-k-mer linear leaves, each increment assigned by the
    // shared root's own routing (so queries evaluate the leaf fitted on
    // their neighbourhood).
    std::vector<ClampedLeaf> leaves;
    std::vector<LeafMoments> acc;
    for (int cls = 0; cls < kNumClasses; ++cls) {
        for (const Kmer m : members[static_cast<size_t>(cls)]) {
            auto inc = tab_.increments(m);
            const u64 f = inc.size();
            const u64 n_leaves = (f + cfg.leaf_size - 1) / cfg.leaf_size;
            KmerLeaves kl;
            kl.first_leaf = static_cast<u32>(leaves.size());
            kl.n_leaves = static_cast<u32>(n_leaves);
            kl.cls = cls;

            acc.assign(n_leaves, LeafMoments());
            const double x0 = static_cast<double>(m) * inv_kmer_space_;
            for (u64 i = 0; i < f; ++i) {
                const double x1 =
                    static_cast<double>(inc[i]) * inv_rows_;
                acc[routeLeaf(kl, x0, x1)].add(x1,
                                               static_cast<double>(i));
            }
            ClampedLeaf last;
            bool have_last = false;
            std::vector<ClampedLeaf> solved(n_leaves);
            for (u64 j = 0; j < n_leaves; ++j) {
                if (acc[j].n >= 0.5) {
                    solved[j] = ClampedLeaf::from(acc[j]);
                    last = solved[j];
                    have_last = true;
                } else if (have_last) {
                    solved[j] = last;
                }
            }
            for (u64 j = n_leaves; j-- > 0;) {
                if (acc[j].n >= 0.5)
                    last = solved[j];
                else
                    solved[j] = last;
            }
            for (auto &mdl : solved)
                leaves.push_back(mdl);
            kmers_.emplace(m, kl);
        }
    }
    leaves_ = Storage<ClampedLeaf>(std::move(leaves));

    params_ = leaves_.size() * LinearModel::paramCount();
    for (const auto &mlp : mlps_)
        params_ += mlp.paramCount();
}

MtlIndex::MtlIndex(const KmerOccTable &tab, Restored parts)
    : tab_(tab), cfg_(parts.cfg), class_model_(parts.class_model),
      mlps_(std::move(parts.mlps)), leaves_(std::move(parts.leaves))
{
    inv_kmer_space_ = 1.0 / static_cast<double>(kmerSpace(tab.k()));
    inv_rows_ = 1.0 / static_cast<double>(tab.rows());
    kmers_.reserve(parts.kmers.size());
    for (const auto &[code, kl] : parts.kmers) {
        exma_assert(static_cast<u64>(kl.first_leaf) + kl.n_leaves <=
                        leaves_.size(),
                    "mtl restore: k-mer leaf range exceeds the leaf "
                    "array (%llu leaves)",
                    (unsigned long long)leaves_.size());
        exma_assert(kl.cls >= 0 && kl.cls < kNumClasses &&
                        class_model_[static_cast<size_t>(kl.cls)] >= 0 &&
                        class_model_[static_cast<size_t>(kl.cls)] <
                            static_cast<int>(mlps_.size()),
                    "mtl restore: k-mer class %d has no shared model",
                    kl.cls);
        kmers_.emplace(code, kl);
    }
    params_ = leaves_.size() * LinearModel::paramCount();
    for (const auto &mlp : mlps_)
        params_ += mlp.paramCount();
}

u64
MtlIndex::routeLeaf(const KmerLeaves &kl, double x0, double x1) const
{
    const Mlp &mlp = mlps_[static_cast<size_t>(
        class_model_[static_cast<size_t>(kl.cls)])];
    const double q = mlp.predict(x0, x1);
    if (q <= 0.0)
        return 0;
    const u64 j = static_cast<u64>(q * static_cast<double>(kl.n_leaves));
    return std::min<u64>(j, kl.n_leaves - 1);
}

IndexLookup
MtlIndex::occ(Kmer code, u64 pos) const
{
    IndexLookup out;
    auto inc = tab_.increments(code);
    // Only k-mers with more than min_increments occurrences were
    // modelled (constructor pass 1), so the common small-list case —
    // the vast majority of lookups on a genomic k-mer distribution —
    // resolves without ever touching the model hash map.
    if (inc.size() <= cfg_.min_increments) {
        out.rank = lowerBoundRank(inc, static_cast<u32>(pos));
        out.probes = probeCount(inc.size());
        return out;
    }
    const auto it = kmers_.find(code);
    exma_dassert(it != kmers_.end(),
                 "k-mer above the modelling threshold has no model");

    const KmerLeaves &kl = it->second;
    const double x0 = static_cast<double>(code) * inv_kmer_space_;
    const double x1 = static_cast<double>(pos) * inv_rows_;
    const u64 f = inc.size();

    const u64 leaf = routeLeaf(kl, x0, x1);
    const double p = leaves_[kl.first_leaf + leaf].predict(x1);
    u64 pred = 0;
    if (p > 0.0)
        pred = std::min<u64>(static_cast<u64>(p), f);

    // Galloping correction around the prediction.
    u64 probes = 0;
    u64 lo = 0, hi = f;
    const u32 key = static_cast<u32>(pos);
    if (pred < f && (++probes, inc[pred] < key)) {
        u64 step = 1;
        lo = pred + 1;
        while (lo + step < f && (++probes, inc[lo + step] < key)) {
            lo += step + 1;
            step <<= 1;
        }
        hi = std::min(f, lo + step + 1);
    } else {
        u64 step = 1;
        hi = pred;
        while (hi > step && (++probes, inc[hi - step] >= key)) {
            hi -= step;
            step <<= 1;
        }
        lo = hi > step ? hi - step : 0;
    }
    while (lo < hi) {
        const u64 mid = lo + (hi - lo) / 2;
        ++probes;
        if (inc[mid] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    out.rank = lo;
    out.error = lo > pred ? lo - pred : pred - lo;
    out.probes = probes;
    out.used_model = true;
    out.leaf_id = kl.first_leaf + leaf;
    out.cls = kl.cls;
    return out;
}

} // namespace exma
