/**
 * @file
 * The "naive adoption of learned index" from §IV.A / Fig. 9(a): one
 * independent learned-index hierarchy per k-mer that has more than 256
 * increments, with a parameter budget that grows with the k-mer's
 * increment count (more leaves for more increments). K-mers at or below
 * the threshold fall back to binary search over their increments.
 */

#ifndef EXMA_LEARNED_NAIVE_KMER_INDEX_HH
#define EXMA_LEARNED_NAIVE_KMER_INDEX_HH

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dna.hh"
#include "fmindex/kmer_occ.hh"
#include "learned/rmi.hh"

namespace exma {

/** Result of an instrumented Occ lookup through a learned index. */
struct IndexLookup
{
    u64 rank = 0;       ///< exact Occ(k-mer, pos)
    u64 error = 0;      ///< model misprediction in entries
    u64 probes = 0;     ///< comparisons to correct the prediction
    bool used_model = false;
    u64 leaf_id = 0;    ///< global leaf index (cache addressing)
    int cls = -1;       ///< increment-count class (MTL only)
};

class NaiveKmerIndex
{
  public:
    struct Config
    {
        u64 min_increments = 256; ///< paper: model only if f > 256
        u64 leaf_size = 4096;
        int hidden = 10;
        int epochs = 30;
        u64 train_cap = 512;
        u64 seed = 7;
    };

    NaiveKmerIndex(const KmerOccTable &tab, const Config &cfg);

    /**
     * Restore from serialized per-k-mer model parts
     * (src/io/index_io.cc); each Rmi's key span is re-pointed at
     * @p tab's increments and no training runs.
     */
    NaiveKmerIndex(const KmerOccTable &tab, const Config &cfg,
                   std::vector<std::pair<Kmer, Rmi<u32>::Parts>> models);

    /** Occ(k-mer, pos) via the per-k-mer model (or binary search). */
    IndexLookup occ(Kmer code, u64 pos) const;

    /** The trained per-k-mer models (serialization). */
    const std::unordered_map<Kmer, Rmi<u32>> &models() const
    {
        return models_;
    }

    /** Whether @p code has its own model hierarchy. */
    bool hasModel(Kmer code) const { return models_.count(code) > 0; }

    /** Total trainable parameters across all per-k-mer models. */
    u64 paramCount() const { return params_; }

    u64 modelCount() const { return models_.size(); }

  private:
    const KmerOccTable &tab_;
    Config cfg_;
    std::unordered_map<Kmer, Rmi<u32>> models_;
    u64 params_ = 0;
};

} // namespace exma

#endif // EXMA_LEARNED_NAIVE_KMER_INDEX_HH
