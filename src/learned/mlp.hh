/**
 * @file
 * A tiny multi-layer perceptron used as the non-leaf node of learned
 * indexes: one fully-connected hidden layer of sigmoid neurons and a
 * linear output ("each non-leaf node is a neural network having a
 * fully-connected layer, each of which contains 10 neurons with sigmoid
 * activation", §IV.B). Trained with Adam, as in the paper.
 */

#ifndef EXMA_LEARNED_MLP_HH
#define EXMA_LEARNED_MLP_HH

#include <vector>

#include "common/types.hh"

namespace exma {

class Mlp
{
  public:
    /** One training sample: up to two inputs and a scalar target. */
    struct Sample
    {
        double x0 = 0.0;
        double x1 = 0.0;
        double y = 0.0;
    };

    /**
     * @param in_dim 1 or 2 inputs.
     * @param hidden hidden-layer width (paper: 10).
     * @param seed   weight-initialisation seed.
     */
    Mlp(int in_dim, int hidden, u64 seed);

    /**
     * Restore trained weights (src/io/index_io.cc) — no training runs,
     * the network predicts exactly as the one that was saved.
     */
    Mlp(int in_dim, int hidden, std::vector<double> w1,
        std::vector<double> b1, std::vector<double> w2, double b2);

    /** Forward pass; @p x1 ignored when in_dim == 1. */
    double predict(double x0, double x1 = 0.0) const;

    /**
     * Minimise MSE over @p samples with the Adam optimiser.
     * @return final training loss.
     */
    double train(const std::vector<Sample> &samples, int epochs,
                 double lr = 0.01);

    /** Weights + biases of both layers. */
    u64 paramCount() const;

    int inputDim() const { return in_dim_; }
    int hiddenWidth() const { return hidden_; }

    /** Trained weights (serialization). */
    const std::vector<double> &hiddenWeights() const { return w1_; }
    const std::vector<double> &hiddenBiases() const { return b1_; }
    const std::vector<double> &outputWeights() const { return w2_; }
    double outputBias() const { return b2_; }

  private:
    int in_dim_;
    int hidden_;
    std::vector<double> w1_; ///< hidden x in_dim
    std::vector<double> b1_; ///< hidden
    std::vector<double> w2_; ///< hidden
    double b2_ = 0.0;
};

} // namespace exma

#endif // EXMA_LEARNED_MLP_HH
