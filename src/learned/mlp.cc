#include "learned/mlp.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace exma {
namespace {

inline double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

/** Adam state for one parameter vector. */
struct AdamState
{
    std::vector<double> m;
    std::vector<double> v;

    explicit AdamState(size_t n) : m(n, 0.0), v(n, 0.0) {}

    void
    step(std::vector<double> &theta, const std::vector<double> &grad,
         double lr, int t)
    {
        constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
        const double bc1 = 1.0 - std::pow(beta1, t);
        const double bc2 = 1.0 - std::pow(beta2, t);
        for (size_t i = 0; i < theta.size(); ++i) {
            m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
            v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
            theta[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
        }
    }
};

} // namespace

Mlp::Mlp(int in_dim, int hidden, u64 seed)
    : in_dim_(in_dim), hidden_(hidden),
      w1_(static_cast<size_t>(hidden * in_dim)),
      b1_(static_cast<size_t>(hidden), 0.0),
      w2_(static_cast<size_t>(hidden))
{
    exma_assert(in_dim == 1 || in_dim == 2, "in_dim must be 1 or 2");
    exma_assert(hidden >= 1, "hidden width must be positive");
    Rng rng(seed);
    for (auto &w : w1_)
        w = rng.normal(0.0, 1.0);
    for (auto &w : w2_)
        w = rng.normal(0.0, 0.5);
}

Mlp::Mlp(int in_dim, int hidden, std::vector<double> w1,
         std::vector<double> b1, std::vector<double> w2, double b2)
    : in_dim_(in_dim), hidden_(hidden), w1_(std::move(w1)),
      b1_(std::move(b1)), w2_(std::move(w2)), b2_(b2)
{
    exma_assert(in_dim == 1 || in_dim == 2, "in_dim must be 1 or 2");
    exma_assert(hidden >= 1, "hidden width must be positive");
    exma_assert(w1_.size() == static_cast<size_t>(hidden * in_dim) &&
                    b1_.size() == static_cast<size_t>(hidden) &&
                    w2_.size() == static_cast<size_t>(hidden),
                "mlp restore: weight shapes disagree with %dx%d", in_dim,
                hidden);
}

double
Mlp::predict(double x0, double x1) const
{
    double out = b2_;
    for (int h = 0; h < hidden_; ++h) {
        double z = b1_[static_cast<size_t>(h)] +
                   w1_[static_cast<size_t>(h * in_dim_)] * x0;
        if (in_dim_ == 2)
            z += w1_[static_cast<size_t>(h * in_dim_ + 1)] * x1;
        out += w2_[static_cast<size_t>(h)] * sigmoid(z);
    }
    return out;
}

double
Mlp::train(const std::vector<Sample> &samples, int epochs, double lr)
{
    if (samples.empty())
        return 0.0;

    // Flatten parameters into one vector for a single Adam instance.
    const size_t nw1 = w1_.size(), nb1 = b1_.size(), nw2 = w2_.size();
    const size_t total = nw1 + nb1 + nw2 + 1;
    std::vector<double> theta(total);
    auto pack = [&] {
        size_t o = 0;
        for (double w : w1_) theta[o++] = w;
        for (double b : b1_) theta[o++] = b;
        for (double w : w2_) theta[o++] = w;
        theta[o] = b2_;
    };
    auto unpack = [&] {
        size_t o = 0;
        for (double &w : w1_) w = theta[o++];
        for (double &b : b1_) b = theta[o++];
        for (double &w : w2_) w = theta[o++];
        b2_ = theta[o];
    };
    pack();

    AdamState adam(total);
    std::vector<double> grad(total);
    std::vector<double> act(static_cast<size_t>(hidden_));
    double loss = 0.0;
    int t = 0;

    for (int e = 0; e < epochs; ++e) {
        unpack();
        std::fill(grad.begin(), grad.end(), 0.0);
        loss = 0.0;
        for (const Sample &s : samples) {
            // Forward.
            double out = b2_;
            for (int h = 0; h < hidden_; ++h) {
                double z = b1_[static_cast<size_t>(h)] +
                           w1_[static_cast<size_t>(h * in_dim_)] * s.x0;
                if (in_dim_ == 2)
                    z += w1_[static_cast<size_t>(h * in_dim_ + 1)] * s.x1;
                act[static_cast<size_t>(h)] = sigmoid(z);
                out += w2_[static_cast<size_t>(h)] *
                       act[static_cast<size_t>(h)];
            }
            // Backward (MSE).
            const double err = out - s.y;
            loss += err * err;
            size_t o = 0;
            for (int h = 0; h < hidden_; ++h) {
                const double a = act[static_cast<size_t>(h)];
                const double da =
                    err * w2_[static_cast<size_t>(h)] * a * (1.0 - a);
                grad[o + static_cast<size_t>(h * in_dim_)] += da * s.x0;
                if (in_dim_ == 2)
                    grad[o + static_cast<size_t>(h * in_dim_ + 1)] +=
                        da * s.x1;
            }
            o += nw1;
            for (int h = 0; h < hidden_; ++h) {
                const double a = act[static_cast<size_t>(h)];
                grad[o + static_cast<size_t>(h)] +=
                    err * w2_[static_cast<size_t>(h)] * a * (1.0 - a);
            }
            o += nb1;
            for (int h = 0; h < hidden_; ++h)
                grad[o + static_cast<size_t>(h)] +=
                    err * act[static_cast<size_t>(h)];
            o += nw2;
            grad[o] += err;
        }
        const double scale = 2.0 / static_cast<double>(samples.size());
        for (double &g : grad)
            g *= scale;
        adam.step(theta, grad, lr, ++t);
    }
    unpack();
    return loss / static_cast<double>(samples.size());
}

u64
Mlp::paramCount() const
{
    return w1_.size() + b1_.size() + w2_.size() + 1;
}

} // namespace exma
