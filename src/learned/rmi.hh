/**
 * @file
 * A two-level recursive-model index (Kraska et al.) over a sorted key
 * span: a root model (linear or MLP) routes a key to one of many
 * linear-regression leaves; the leaf predicts the key's rank; an
 * instrumented galloping search recovers the exact lower bound and
 * reports the prediction error and probe count (the quantities plotted
 * in the paper's Fig. 6c and Fig. 13).
 *
 * Leaves are assigned by the *root's* prediction (not by true rank), so
 * a query key always evaluates the leaf that was fitted on its own
 * neighbourhood — the property that makes finer leaves monotonically
 * more accurate. Leaf fits use accumulated least-squares moments, so
 * construction is a single O(n) pass with O(#leaves) memory.
 */

#ifndef EXMA_LEARNED_RMI_HH
#define EXMA_LEARNED_RMI_HH

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hh"
#include "learned/linear_model.hh"
#include "learned/mlp.hh"

namespace exma {

/** Result of an instrumented learned-index lookup. */
struct RmiResult
{
    u64 rank = 0;   ///< exact lower-bound rank
    u64 error = 0;  ///< |predicted - exact| ("extra entries searched")
    u64 probes = 0; ///< key comparisons in the correction search
};

/**
 * Least-squares moment accumulator for one leaf. Moments are anchored
 * at the first sample's x (and y) to avoid catastrophic cancellation
 * when a leaf covers a very narrow slice of the normalised key range.
 */
struct LeafMoments
{
    double n = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    double x0 = 0.0, y0 = 0.0;
    double ymin = 0.0, ymax = 0.0;

    void
    add(double x, double y)
    {
        if (n < 0.5) {
            x0 = x;
            y0 = y;
            ymin = ymax = y;
        } else {
            ymin = std::min(ymin, y);
            ymax = std::max(ymax, y);
        }
        const double u = x - x0;
        const double v = y - y0;
        n += 1.0;
        sx += u;
        sy += v;
        sxx += u * u;
        sxy += u * v;
    }

    LinearModel
    solve() const
    {
        LinearModel m;
        if (n < 0.5)
            return m;
        const double den = n * sxx - sx * sx;
        double w, b_local;
        if (std::abs(den) < 1e-30) {
            w = 0.0;
            b_local = sy / n;
        } else {
            w = (n * sxy - sx * sy) / den;
            b_local = (sy - w * sx) / n;
        }
        // Undo the anchoring: y = w·(x - x0) + b_local + y0.
        m.w = w;
        m.b = b_local + y0 - w * x0;
        return m;
    }
};

/**
 * A linear leaf whose prediction is clamped to the rank range the leaf
 * observed at build time. With (near-)monotone root routing, the true
 * rank of any key routed here lies within one position of that range,
 * so clamping bounds the error by the leaf's occupancy — the property
 * that makes finer leaves monotonically more accurate.
 */
struct ClampedLeaf
{
    LinearModel model;
    double ymin = 0.0;
    double ymax = 0.0;

    double
    predict(double x) const
    {
        return std::clamp(model.predict(x), ymin, ymax);
    }

    static ClampedLeaf
    from(const LeafMoments &acc)
    {
        return ClampedLeaf{acc.solve(), acc.ymin, acc.ymax};
    }
};

template <typename K>
class Rmi
{
  public:
    struct Config
    {
        u64 leaf_size = 4096; ///< average entries per linear leaf
        bool mlp_root = false; ///< MLP root instead of a linear root
        int hidden = 10;       ///< MLP hidden width (paper: 10)
        int epochs = 40;
        u64 train_cap = 512;   ///< root training subsample size
        double lr = 0.05;
        u64 seed = 1;
    };

    Rmi() = default;

    /**
     * Serialized parts of a built Rmi (src/io/index_io.cc). Restoring
     * re-attaches the key span (not owned, so the caller re-points it
     * at the loaded table) and adopts the trained models unchanged.
     */
    struct Parts
    {
        Config cfg;
        double lo = 0.0;
        double scale = 0.0;
        LinearModel root_lin;
        std::optional<Mlp> root_mlp;
        std::vector<ClampedLeaf> leaves;
    };

    /** Restore from serialized parts; no training runs. */
    void
    restore(std::span<const K> keys, Parts parts)
    {
        keys_ = keys;
        cfg_ = parts.cfg;
        lo_ = parts.lo;
        scale_ = parts.scale;
        root_lin_ = parts.root_lin;
        root_mlp_ = std::move(parts.root_mlp);
        leaves_ = std::move(parts.leaves);
    }

    const Config &config() const { return cfg_; }
    double lowKey() const { return lo_; }
    double normScale() const { return scale_; }
    const LinearModel &rootLinear() const { return root_lin_; }
    const std::optional<Mlp> &rootMlp() const { return root_mlp_; }
    std::span<const ClampedLeaf> leafArray() const { return leaves_; }

    /** Build over @p keys (sorted ascending; not owned). */
    void
    build(std::span<const K> keys, const Config &cfg)
    {
        keys_ = keys;
        cfg_ = cfg;
        const u64 n = keys_.size();
        leaves_.clear();
        root_mlp_.reset();
        if (n == 0)
            return;

        lo_ = static_cast<double>(keys_.front());
        const double hi = static_cast<double>(keys_.back());
        scale_ = hi > lo_ ? 1.0 / (hi - lo_) : 0.0;

        // Root: predict rank/n from the normalised key.
        const u64 stride =
            std::max<u64>(1, n / std::max<u64>(1, cfg.train_cap));
        std::vector<double> rx, ry;
        for (u64 i = 0; i < n; i += stride) {
            rx.push_back(norm(keys_[i]));
            ry.push_back(static_cast<double>(i) / static_cast<double>(n));
        }
        if (cfg.mlp_root) {
            root_mlp_.emplace(1, cfg.hidden, cfg.seed);
            std::vector<Mlp::Sample> samples(rx.size());
            for (size_t i = 0; i < rx.size(); ++i)
                samples[i] = {rx[i], 0.0, ry[i]};
            root_mlp_->train(samples, cfg.epochs, cfg.lr);
        } else {
            root_lin_ = LinearModel::fitXY(rx, ry);
        }

        // Leaves: every key is assigned by the root's own routing, so
        // queries always hit the leaf trained on their neighbourhood.
        const u64 n_leaves = (n + cfg.leaf_size - 1) / cfg.leaf_size;
        std::vector<LeafMoments> acc(n_leaves);
        for (u64 i = 0; i < n; ++i) {
            const double x = norm(keys_[i]);
            acc[route(x, n_leaves)].add(x, static_cast<double>(i));
        }
        leaves_.resize(n_leaves);
        ClampedLeaf last; // inherit neighbours for empty leaves
        bool have_last = false;
        for (u64 j = 0; j < n_leaves; ++j) {
            if (acc[j].n >= 0.5) {
                leaves_[j] = ClampedLeaf::from(acc[j]);
                last = leaves_[j];
                have_last = true;
            } else if (have_last) {
                leaves_[j] = last;
            }
        }
        // Leading empty leaves inherit from the first non-empty one.
        for (u64 j = n_leaves; j-- > 0;) {
            if (acc[j].n >= 0.5)
                last = leaves_[j];
            else
                leaves_[j] = last;
        }
    }

    /** Model-predicted rank of @p key (no correction). */
    u64
    predict(K key) const
    {
        const u64 n = keys_.size();
        if (n == 0 || leaves_.empty())
            return 0;
        const double x = norm(key);
        const double p = leaves_[route(x, leaves_.size())].predict(x);
        if (p <= 0.0)
            return 0;
        return std::min<u64>(static_cast<u64>(p), n);
    }

    /** Exact lower-bound rank with error/probe instrumentation. */
    RmiResult
    lookup(K key) const
    {
        RmiResult res;
        const u64 n = keys_.size();
        if (n == 0)
            return res;
        const u64 p = predict(key);
        res.rank = gallop(key, p, res.probes);
        res.error = res.rank > p ? res.rank - p : p - res.rank;
        return res;
    }

    u64
    paramCount() const
    {
        u64 params = leaves_.size() * LinearModel::paramCount();
        params += root_mlp_ ? root_mlp_->paramCount()
                            : LinearModel::paramCount();
        return params;
    }

    u64 leafCount() const { return leaves_.size(); }
    u64 size() const { return keys_.size(); }

  private:
    double
    norm(K key) const
    {
        return (static_cast<double>(key) - lo_) * scale_;
    }

    /** Root routing shared by build and query. */
    u64
    route(double x, u64 n_leaves) const
    {
        const double q = root_mlp_ ? root_mlp_->predict(x)
                                   : root_lin_.predict(x);
        if (q <= 0.0)
            return 0;
        const u64 j = static_cast<u64>(q * static_cast<double>(n_leaves));
        return std::min(j, n_leaves - 1);
    }

    /**
     * Galloping lower-bound search from estimate @p start, counting key
     * comparisons (this is the "linear search over the increments" cost
     * the paper charges against index mispredictions).
     */
    u64
    gallop(K key, u64 start, u64 &probes) const
    {
        const u64 n = keys_.size();
        u64 lo = 0, hi = n;
        if (start > n)
            start = n;
        if (start < n && (++probes, keys_[start] < key)) {
            u64 step = 1;
            lo = start + 1;
            while (lo + step < n && (++probes, keys_[lo + step] < key)) {
                lo += step + 1;
                step <<= 1;
            }
            hi = std::min(n, lo + step + 1);
        } else {
            u64 step = 1;
            hi = start;
            while (hi > step && (++probes, keys_[hi - step] >= key)) {
                hi -= step;
                step <<= 1;
            }
            lo = hi > step ? hi - step : 0;
        }
        while (lo < hi) {
            const u64 mid = lo + (hi - lo) / 2;
            ++probes;
            if (keys_[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::span<const K> keys_;
    Config cfg_;
    double lo_ = 0.0;
    double scale_ = 0.0;
    LinearModel root_lin_;
    std::optional<Mlp> root_mlp_;
    std::vector<ClampedLeaf> leaves_;
};

} // namespace exma

#endif // EXMA_LEARNED_RMI_HH
