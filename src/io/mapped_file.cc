#include "io/mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace exma {
namespace {

[[noreturn]] void
throwErrno(const std::string &path, const char *what)
{
    throw LoadError(path + ": " + what + ": " + std::strerror(errno));
}

} // namespace

MappedFile::MappedFile(const std::string &path)
    : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY); // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd < 0)
        throwErrno(path, "open");
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno(path, "fstat");
    }
    size_ = static_cast<u64>(st.st_size);
    if (size_ == 0) {
        // mmap(0) is EINVAL; an empty index file is corrupt anyway.
        ::close(fd);
        throw LoadError(path + ": empty file");
    }
    void *p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping pins the file's pages; the descriptor is not needed
    // after mmap succeeds (POSIX keeps the mapping valid).
    const int saved = errno;
    ::close(fd);
    if (p == MAP_FAILED) { // NOLINT(performance-no-int-to-ptr)
        errno = saved;
        throwErrno(path, "mmap");
    }
    data_ = static_cast<const u8 *>(p);
}

MappedFile::~MappedFile()
{
    reset();
}

MappedFile::MappedFile(MappedFile &&o) noexcept
    : path_(std::move(o.path_)), data_(o.data_), size_(o.size_)
{
    o.data_ = nullptr;
    o.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&o) noexcept
{
    if (this != &o) {
        reset();
        path_ = std::move(o.path_);
        data_ = o.data_;
        size_ = o.size_;
        o.data_ = nullptr;
        o.size_ = 0;
    }
    return *this;
}

void
MappedFile::reset() noexcept
{
    if (data_ != nullptr)
        ::munmap(const_cast<u8 *>(data_), size_); // NOLINT(cppcoreguidelines-pro-type-const-cast)
    data_ = nullptr;
    size_ = 0;
}

} // namespace exma
