/**
 * @file
 * Save / load of whole indexes through the `.exma.*` companion-file
 * format (io/format.hh).
 *
 * One table is three files at a stem:
 *
 *   stem.exma.pac   table config echo, segment map, optional 2-bit text
 *   stem.exma.occ   EXMA table: base pointers, increments, sentinels,
 *                   and the trained learned-index model (MTL or naive)
 *   stem.exma.sa    FM-index: packed-rank blocks, SA samples, sampled-
 *                   row bit vector
 *
 * A whole index is a directory holding an `index.exma.manifest` (kind,
 * configs, serialized ShardPlan, per-shard state) plus `table.exma.*`
 * for a monolithic index or `shardNNNN.exma.*` per shard for sharded /
 * routed ones (scan shards carry only the `.pac`).
 *
 * Loading mmaps the files read-only and points the restored structures'
 * hot arrays straight into the mappings (common/storage.hh), so the
 * Loaded* wrappers hold the MappedFiles alongside the structures and
 * must stay alive as long as the index serves. Models are restored
 * from their trained weights — nothing is retrained, so a loaded index
 * answers bit-identically to the one that was saved.
 */

#ifndef EXMA_IO_INDEX_IO_HH
#define EXMA_IO_INDEX_IO_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/exma_table.hh"
#include "io/mapped_file.hh"
#include "route/shard_router.hh"
#include "shard/sharded_table.hh"

namespace exma {

/** Index kinds a directory manifest can describe. */
enum class IndexKind : u32
{
    Mono = 0,        ///< one ExmaTable
    ShardedText = 1, ///< ShardedExmaTable (broadcast serving)
    Routed = 2,      ///< ShardRouter (prefix-routed serving)
};

/**
 * Write @p table as stem.exma.{pac,occ,sa}. @p local_text is the text
 * the table was built over (the segment extraction for segment-mapped
 * tables, the whole reference otherwise); pass empty to omit the text
 * echo — every table load works without it, it exists for tooling.
 */
void saveTableFiles(const ExmaTable &table, const std::string &stem,
                    std::span<const Base> local_text = {});

/**
 * Write a table-less scan shard as stem.exma.pac only: its segment map
 * plus the extracted local text the worker scans.
 */
void saveScanFiles(std::span<const Base> local_text,
                   const std::vector<TextSegment> &segments,
                   const std::string &stem);

/** A loaded table plus the mappings its hot arrays are borrowed from. */
struct LoadedExmaTable
{
    /** Declared before the table so the table is destroyed first. */
    std::vector<MappedFile> files;
    std::unique_ptr<ExmaTable> table;
};

/** Load stem.exma.{pac,occ,sa}; throws LoadError on any defect. */
LoadedExmaTable loadTableFiles(const std::string &stem);

/** Load a scan shard's stem.exma.pac: segment map + unpacked text. */
struct LoadedScanShard
{
    std::vector<TextSegment> segments;
    std::vector<Base> text;
};
LoadedScanShard loadScanFiles(const std::string &stem);

/**
 * Save a whole index into directory @p dir (created if absent):
 * manifest + per-table companion files. The ExmaTable overload also
 * takes the text it was built over for the `.pac` text echo (may be
 * empty). The ShardedExmaTable / ShardRouter overloads read everything
 * they need from the structures themselves.
 */
void saveIndex(const ExmaTable &table, std::span<const Base> local_text,
               const std::string &dir);
void saveIndex(const ShardedExmaTable &sharded, const std::string &dir);
void saveIndex(const ShardRouter &router, const std::string &dir);

/**
 * A loaded index of any kind. Exactly one of table / sharded / router
 * is set, matching kind. files backs every borrowed hot array and is
 * declared first so the structures are destroyed before the mappings.
 */
struct LoadedIndex
{
    std::vector<MappedFile> files;
    IndexKind kind = IndexKind::Mono;
    std::unique_ptr<ExmaTable> table;
    std::unique_ptr<ShardedExmaTable> sharded;
    std::unique_ptr<ShardRouter> router;
    /** Wall-clock seconds of the whole load (mmap + restore). */
    double load_seconds = 0.0;
};

/**
 * Load whatever index directory @p dir holds; throws LoadError on any
 * defect (missing/truncated/corrupt/version-mismatched files). The
 * sharded/routed structures report load_seconds as buildSeconds().
 */
LoadedIndex loadIndex(const std::string &dir);

} // namespace exma

#endif // EXMA_IO_INDEX_IO_HH
