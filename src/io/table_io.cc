#include "io/table_io.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "fmindex/packed_rank.hh"
#include "learned/rmi.hh"

namespace exma {

namespace io_detail {

/**
 * Fault hook for the mmap load path (site "io.load"): a throw rule
 * becomes a LoadError naming @p path, a delay rule a bounded sleep —
 * so tests and the soak can exercise load failure/slowness during
 * respawn without corrupting real files. Kill/hang/corrupt rules have
 * no process to kill here and are ignored.
 */
void
probeLoadFaults(const std::string &path)
{
    FaultInjector *fi = faultInjector();
    if (fi == nullptr)
        return;
    for (const FaultAction &a : fi->at("io.load")) {
        switch (a.kind) {
        case FaultKind::ThrowInProcess:
            throw LoadError(path + ": injected load fault");
        case FaultKind::DelayMs: {
            CancelToken token; // uncancellable here: plain bounded sleep
            token.sleepFor(a.ms);
            break;
        }
        case FaultKind::KillWorker:
        case FaultKind::HangRequest:
        case FaultKind::CorruptResponse:
            break;
        }
    }
}

void
writeBlob(FileBuilder &fb, u32 tag, const BlobWriter &w)
{
    fb.writeArray<u8>(tag, w.bytes());
}

void
putTableConfig(BlobWriter &w, const ExmaTable::Config &cfg)
{
    w.putI32(cfg.k);
    w.putU32(static_cast<u32>(cfg.mode));
    w.putU64(cfg.mtl.min_increments);
    w.putU64(cfg.mtl.leaf_size);
    w.putI32(cfg.mtl.hidden);
    w.putI32(cfg.mtl.epochs);
    w.putU64(cfg.mtl.samples_per_class);
    w.putF64(cfg.mtl.lr);
    w.putU64(cfg.mtl.seed);
    w.putU64(cfg.naive.min_increments);
    w.putU64(cfg.naive.leaf_size);
    w.putI32(cfg.naive.hidden);
    w.putI32(cfg.naive.epochs);
    w.putU64(cfg.naive.train_cap);
    w.putU64(cfg.naive.seed);
    w.putU32(cfg.fm.occ_sample);
    w.putU32(cfg.fm.sa_sample);
}

ExmaTable::Config
getTableConfig(BlobReader &r)
{
    ExmaTable::Config cfg;
    cfg.k = r.getI32();
    const u32 mode = r.getU32();
    if (mode > static_cast<u32>(OccIndexMode::Mtl))
        throw LoadError(r.context() + ": config echo: unknown "
                                      "occ-index mode " +
                        std::to_string(mode));
    cfg.mode = static_cast<OccIndexMode>(mode);
    cfg.mtl.min_increments = r.getU64();
    cfg.mtl.leaf_size = r.getU64();
    cfg.mtl.hidden = r.getI32();
    cfg.mtl.epochs = r.getI32();
    cfg.mtl.samples_per_class = r.getU64();
    cfg.mtl.lr = r.getF64();
    cfg.mtl.seed = r.getU64();
    cfg.naive.min_increments = r.getU64();
    cfg.naive.leaf_size = r.getU64();
    cfg.naive.hidden = r.getI32();
    cfg.naive.epochs = r.getI32();
    cfg.naive.train_cap = r.getU64();
    cfg.naive.seed = r.getU64();
    cfg.fm.occ_sample = r.getU32();
    cfg.fm.sa_sample = r.getU32();
    return cfg;
}

std::string
shardStem(const std::string &dir, size_t i)
{
    std::string n = std::to_string(i);
    if (n.size() < 4)
        n.insert(0, 4 - n.size(), '0');
    return dir + "/shard" + n;
}

} // namespace io_detail

namespace {

using io_detail::probeLoadFaults;
using io_detail::writeBlob;

// On-disk element-layout contracts (lint: ondisk-pod-assert). Any
// change to one of these sizes is a format change: bump kFormatVersion.
static_assert(sizeof(u8) == 1);
static_assert(std::is_trivially_copyable_v<u8>);
static_assert(sizeof(u32) == 4);
static_assert(std::is_trivially_copyable_v<u32>);
static_assert(sizeof(u64) == 8);
static_assert(std::is_trivially_copyable_v<u64>);
static_assert(sizeof(TextSegment) == 24);
static_assert(std::is_trivially_copyable_v<TextSegment>);
static_assert(sizeof(PackedRank::Block) == 32);
static_assert(std::is_trivially_copyable_v<PackedRank::Block>);
static_assert(sizeof(ClampedLeaf) == 32);
static_assert(std::is_trivially_copyable_v<ClampedLeaf>);

// Section tags. Per-file namespaces; a tag's meaning never changes
// within a format version.
constexpr u32 kPacMeta = 1;     ///< config echo + text geometry blob
constexpr u32 kPacSegments = 2; ///< TextSegment[]
constexpr u32 kPacText = 3;     ///< 2-bit packed local text, u64[]

constexpr u32 kOccMeta = 1;      ///< k/rows/sentinels blob
constexpr u32 kOccBases = 2;     ///< base pointers, u32[4^k + 1]
constexpr u32 kOccRows = 3;      ///< concatenated increments, u32[]
constexpr u32 kOccModelMeta = 4; ///< learned-model blob (mode != Exact)
constexpr u32 kOccMtlLeaves = 5; ///< ClampedLeaf[] (MTL only)

constexpr u32 kSaMeta = 1;       ///< FM geometry blob
constexpr u32 kSaRankBlocks = 2; ///< PackedRank::Block[]
constexpr u32 kSaValues = 3;     ///< sampled SA values, u32[]
constexpr u32 kSaBvWords = 4;    ///< sampled-row bit vector words, u64[]
constexpr u32 kSaBvSuper = 5;    ///< bit vector rank checkpoints, u64[]

// --- learned models -----------------------------------------------------

void
putMlp(BlobWriter &w, const Mlp &m)
{
    w.putI32(m.inputDim());
    w.putI32(m.hiddenWidth());
    w.putF64Array(m.hiddenWeights());
    w.putF64Array(m.hiddenBiases());
    w.putF64Array(m.outputWeights());
    w.putF64(m.outputBias());
}

Mlp
getMlp(BlobReader &r)
{
    const int in_dim = r.getI32();
    const int hidden = r.getI32();
    std::vector<double> w1 = r.getF64Array();
    std::vector<double> b1 = r.getF64Array();
    std::vector<double> w2 = r.getF64Array();
    const double b2 = r.getF64();
    if (in_dim < 1 || in_dim > 2 || hidden < 1 ||
        w1.size() != static_cast<size_t>(hidden) * in_dim ||
        b1.size() != static_cast<size_t>(hidden) ||
        w2.size() != static_cast<size_t>(hidden))
        throw LoadError(r.context() + ": malformed MLP weights");
    return {in_dim, hidden, std::move(w1), std::move(b1), std::move(w2),
            b2};
}

void
putMtlModel(FileBuilder &fb, const MtlIndex &mtl)
{
    BlobWriter w;
    for (const int m : mtl.classModel())
        w.putI32(m);
    w.putU32(static_cast<u32>(mtl.sharedMlps().size()));
    for (const Mlp &m : mtl.sharedMlps())
        putMlp(w, m);
    // The k-mer -> leaf-range map lives in an unordered_map; serialize
    // sorted by code so identical tables save byte-identical files.
    std::vector<std::pair<Kmer, MtlIndex::KmerLeaves>> kmers(
        mtl.kmerMap().begin(), mtl.kmerMap().end());
    std::sort(kmers.begin(), kmers.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.putU64(kmers.size());
    for (const auto &[code, kl] : kmers) {
        w.putU64(code);
        w.putU32(kl.first_leaf);
        w.putU32(kl.n_leaves);
        w.putI32(kl.cls);
    }
    writeBlob(fb, kOccModelMeta, w);
    fb.writeArray<ClampedLeaf>(kOccMtlLeaves, mtl.leafArray());
}

MtlIndex::Restored
getMtlModel(const FileView &view, const MtlIndex::Config &cfg,
            const std::string &what)
{
    MtlIndex::Restored parts;
    parts.cfg = cfg;
    const std::vector<u8> blob = view.readBlob(kOccModelMeta);
    BlobReader r(blob, what + " (MTL model)");
    for (int &m : parts.class_model)
        m = r.getI32();
    const u32 n_mlps = r.getU32();
    parts.mlps.reserve(n_mlps);
    for (u32 i = 0; i < n_mlps; ++i)
        parts.mlps.push_back(getMlp(r));
    const u64 n_kmers = r.getU64();
    parts.kmers.reserve(n_kmers);
    for (u64 i = 0; i < n_kmers; ++i) {
        const Kmer code = r.getU64();
        MtlIndex::KmerLeaves kl;
        kl.first_leaf = r.getU32();
        kl.n_leaves = r.getU32();
        kl.cls = r.getI32();
        parts.kmers.emplace_back(code, kl);
    }
    r.finish();
    parts.leaves = Storage<ClampedLeaf>::borrowed(
        view.viewArray<ClampedLeaf>(kOccMtlLeaves));
    return parts;
}

void
putLeaves(BlobWriter &w, std::span<const ClampedLeaf> leaves)
{
    w.putU64(leaves.size());
    for (const ClampedLeaf &l : leaves) {
        w.putF64(l.model.w);
        w.putF64(l.model.b);
        w.putF64(l.ymin);
        w.putF64(l.ymax);
    }
}

std::vector<ClampedLeaf>
getLeaves(BlobReader &r)
{
    const u64 n = r.getU64();
    std::vector<ClampedLeaf> leaves(n);
    for (u64 i = 0; i < n; ++i) {
        leaves[i].model.w = r.getF64();
        leaves[i].model.b = r.getF64();
        leaves[i].ymin = r.getF64();
        leaves[i].ymax = r.getF64();
    }
    return leaves;
}

void
putNaiveModel(FileBuilder &fb, const NaiveKmerIndex &naive)
{
    std::vector<std::pair<Kmer, const Rmi<u32> *>> models;
    models.reserve(naive.models().size());
    for (const auto &[code, rmi] : naive.models())
        models.emplace_back(code, &rmi);
    std::sort(models.begin(), models.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    BlobWriter w;
    w.putU64(models.size());
    for (const auto &[code, rmi] : models) {
        w.putU64(code);
        const Rmi<u32>::Config &cfg = rmi->config();
        w.putU64(cfg.leaf_size);
        w.putU32(cfg.mlp_root ? 1 : 0);
        w.putI32(cfg.hidden);
        w.putI32(cfg.epochs);
        w.putU64(cfg.train_cap);
        w.putF64(cfg.lr);
        w.putU64(cfg.seed);
        w.putF64(rmi->lowKey());
        w.putF64(rmi->normScale());
        w.putF64(rmi->rootLinear().w);
        w.putF64(rmi->rootLinear().b);
        w.putU32(rmi->rootMlp() ? 1 : 0);
        if (rmi->rootMlp())
            putMlp(w, *rmi->rootMlp());
        putLeaves(w, rmi->leafArray());
    }
    writeBlob(fb, kOccModelMeta, w);
}

std::vector<std::pair<Kmer, Rmi<u32>::Parts>>
getNaiveModel(const FileView &view, const std::string &what)
{
    const std::vector<u8> blob = view.readBlob(kOccModelMeta);
    BlobReader r(blob, what + " (naive model)");
    const u64 n = r.getU64();
    std::vector<std::pair<Kmer, Rmi<u32>::Parts>> models;
    models.reserve(n);
    for (u64 i = 0; i < n; ++i) {
        const Kmer code = r.getU64();
        Rmi<u32>::Parts parts;
        parts.cfg.leaf_size = r.getU64();
        parts.cfg.mlp_root = r.getU32() != 0;
        parts.cfg.hidden = r.getI32();
        parts.cfg.epochs = r.getI32();
        parts.cfg.train_cap = r.getU64();
        parts.cfg.lr = r.getF64();
        parts.cfg.seed = r.getU64();
        parts.lo = r.getF64();
        parts.scale = r.getF64();
        parts.root_lin.w = r.getF64();
        parts.root_lin.b = r.getF64();
        if (r.getU32() != 0)
            parts.root_mlp = getMlp(r);
        parts.leaves = getLeaves(r);
        models.emplace_back(code, std::move(parts));
    }
    r.finish();
    return models;
}

// --- 2-bit text packing -------------------------------------------------

std::vector<u64>
packText(std::span<const Base> text)
{
    std::vector<u64> words((text.size() + 31) / 32, 0);
    for (size_t i = 0; i < text.size(); ++i)
        words[i >> 5] |= u64{text[i] & 3u} << ((i & 31) * 2);
    return words;
}

std::vector<Base>
unpackText(std::span<const u64> words, u64 n, const std::string &what)
{
    if (words.size() != (n + 31) / 32)
        throw LoadError(what + ": packed text holds " +
                        std::to_string(words.size()) + " words for " +
                        std::to_string(n) + " bases");
    std::vector<Base> text(n);
    for (u64 i = 0; i < n; ++i)
        text[i] = static_cast<Base>((words[i >> 5] >> ((i & 31) * 2)) & 3);
    return text;
}

} // namespace

// --- single-table companion files ---------------------------------------

void
saveTableFiles(const ExmaTable &table, const std::string &stem,
               std::span<const Base> local_text)
{
    const u64 local_len = table.rows() - 1;
    exma_assert(local_text.empty() || local_text.size() == local_len,
                "text echo holds %zu bases, the table covers %llu",
                local_text.size(), (unsigned long long)local_len);

    { // .exma.pac
        FileBuilder fb(kMagicPac);
        BlobWriter w;
        io_detail::putTableConfig(w, table.config());
        w.putU64(local_len);
        w.putU32(local_text.empty() ? 0 : 1);
        writeBlob(fb, kPacMeta, w);
        fb.writeArray<TextSegment>(kPacSegments, table.segments());
        if (!local_text.empty()) {
            const std::vector<u64> words = packText(local_text);
            fb.writeArray<u64>(kPacText, words);
        }
        fb.save(stem + kExtPac);
    }

    { // .exma.occ
        const KmerOccTable &occ = table.occTable();
        FileBuilder fb(kMagicOcc);
        BlobWriter w;
        w.putI32(occ.k());
        w.putU64(occ.rows());
        w.putU64(occ.distinctKmers());
        w.putU64(occ.sentinelWindows().size());
        for (const auto &[code, row] : occ.sentinelWindows()) {
            w.putU64(code);
            w.putU32(row);
        }
        w.putU64(occ.sentinelThresholds().size());
        for (const u64 t : occ.sentinelThresholds())
            w.putU64(t);
        w.putU32(static_cast<u32>(table.mode()));
        writeBlob(fb, kOccMeta, w);
        fb.writeArray<u32>(kOccBases, occ.baseArray());
        fb.writeArray<u32>(kOccRows, occ.allIncrements());
        if (table.mtlIndex() != nullptr)
            putMtlModel(fb, *table.mtlIndex());
        else if (table.naiveIndex() != nullptr)
            putNaiveModel(fb, *table.naiveIndex());
        fb.save(stem + kExtOcc);
    }

    { // .exma.sa
        const FmIndex &fm = table.fmIndex();
        FileBuilder fb(kMagicSa);
        BlobWriter w;
        w.putU32(fm.config().occ_sample);
        w.putU32(fm.config().sa_sample);
        w.putU64(fm.size());
        for (const u64 c : fm.countArray())
            w.putU64(c);
        w.putU64(fm.packedRank().size());
        w.putU64(fm.packedRank().primary());
        w.putU64(fm.saSampled().size());
        w.putU64(fm.saSampled().ones());
        writeBlob(fb, kSaMeta, w);
        fb.writeArray<PackedRank::Block>(kSaRankBlocks,
                                         fm.packedRank().blocks());
        fb.writeArray<u32>(kSaValues, fm.saValues());
        fb.writeArray<u64>(kSaBvWords, fm.saSampled().words());
        fb.writeArray<u64>(kSaBvSuper, fm.saSampled().superWords());
        fb.save(stem + kExtSa);
    }
}

void
saveScanFiles(std::span<const Base> local_text,
              const std::vector<TextSegment> &segments,
              const std::string &stem)
{
    exma_assert(local_text.size() == segmentsLocalLength(segments),
                "scan text holds %zu bases, its segment map %llu",
                local_text.size(),
                (unsigned long long)segmentsLocalLength(segments));
    FileBuilder fb(kMagicPac);
    BlobWriter w;
    io_detail::putTableConfig(w, ExmaTable::Config{}); // no table here
    w.putU64(local_text.size());
    w.putU32(1);
    writeBlob(fb, kPacMeta, w);
    fb.writeArray<TextSegment>(kPacSegments, segments);
    const std::vector<u64> words = packText(local_text);
    fb.writeArray<u64>(kPacText, words);
    fb.save(stem + kExtPac);
}

LoadedExmaTable
loadTableFiles(const std::string &stem)
{
    probeLoadFaults(stem);
    LoadedExmaTable out;
    out.files.reserve(3);
    out.files.emplace_back(stem + kExtPac);
    out.files.emplace_back(stem + kExtOcc);
    out.files.emplace_back(stem + kExtSa);
    const FileView pac(out.files[0], kMagicPac);
    const FileView occ(out.files[1], kMagicOcc);
    const FileView sa(out.files[2], kMagicSa);

    ExmaTable::Parts parts;

    { // .exma.pac: config echo + segment map
        const std::vector<u8> blob = pac.readBlob(kPacMeta);
        BlobReader r(blob, stem + kExtPac);
        parts.cfg = io_detail::getTableConfig(r);
        r.getU64(); // local text length (tooling)
        r.getU32(); // has-text flag
        r.finish();
        const auto segs = pac.viewArray<TextSegment>(kPacSegments);
        parts.segments.assign(segs.begin(), segs.end());
    }

    { // .exma.occ: the EXMA table
        const std::vector<u8> blob = occ.readBlob(kOccMeta);
        BlobReader r(blob, stem + kExtOcc);
        KmerOccTable::Restored ro;
        ro.k = r.getI32();
        ro.n_rows = r.getU64();
        ro.distinct = r.getU64();
        ro.sentinel_windows.resize(r.getU64());
        for (auto &[code, row] : ro.sentinel_windows) {
            code = r.getU64();
            row = r.getU32();
        }
        ro.sentinel_thresholds.resize(r.getU64());
        for (u64 &t : ro.sentinel_thresholds)
            t = r.getU64();
        const u32 mode = r.getU32();
        r.finish();
        if (mode != static_cast<u32>(parts.cfg.mode))
            throw LoadError(stem + kExtOcc +
                            ": occ-index mode disagrees with the "
                            "config echo in " +
                            stem + kExtPac);
        ro.bases = Storage<u32>::borrowed(occ.viewArray<u32>(kOccBases));
        ro.rows = Storage<u32>::borrowed(occ.viewArray<u32>(kOccRows));
        parts.occ = std::move(ro);
    }

    { // .exma.sa: the FM-index
        const std::vector<u8> blob = sa.readBlob(kSaMeta);
        BlobReader r(blob, stem + kExtSa);
        FmIndex::Restored rf;
        rf.cfg.occ_sample = r.getU32();
        rf.cfg.sa_sample = r.getU32();
        rf.n_rows = r.getU64();
        for (u64 &c : rf.count)
            c = r.getU64();
        const u64 rank_n = r.getU64();
        const u64 rank_primary = r.getU64();
        const u64 bv_bits = r.getU64();
        const u64 bv_ones = r.getU64();
        r.finish();
        rf.rank = PackedRank(
            rank_n, rank_primary,
            Storage<PackedRank::Block>::borrowed(
                sa.viewArray<PackedRank::Block>(kSaRankBlocks)));
        rf.sa_sampled = BitVector(
            bv_bits, bv_ones,
            Storage<u64>::borrowed(sa.viewArray<u64>(kSaBvWords)),
            Storage<u64>::borrowed(sa.viewArray<u64>(kSaBvSuper)));
        rf.sa_values =
            Storage<u32>::borrowed(sa.viewArray<u32>(kSaValues));
        parts.fm = std::move(rf);
    }

    switch (parts.cfg.mode) {
    case OccIndexMode::Exact:
        break;
    case OccIndexMode::Mtl:
        parts.mtl = getMtlModel(occ, parts.cfg.mtl, stem + kExtOcc);
        break;
    case OccIndexMode::NaiveLearned:
        parts.naive = getNaiveModel(occ, stem + kExtOcc);
        break;
    }

    out.table = std::make_unique<ExmaTable>(std::move(parts));
    return out;
}

LoadedScanShard
loadScanFiles(const std::string &stem)
{
    const MappedFile file(stem + kExtPac);
    const FileView pac(file, kMagicPac);
    const std::vector<u8> blob = pac.readBlob(kPacMeta);
    BlobReader r(blob, stem + kExtPac);
    io_detail::getTableConfig(r); // config echo, unused for scan shards
    const u64 local_len = r.getU64();
    const u32 has_text = r.getU32();
    r.finish();
    if (has_text == 0)
        throw LoadError(stem + kExtPac +
                        ": scan shard carries no text echo");

    LoadedScanShard out;
    const auto segs = pac.viewArray<TextSegment>(kPacSegments);
    out.segments.assign(segs.begin(), segs.end());
    // Scan text is copied out (unpacking is a format change anyway),
    // so the mapping can be dropped right here.
    out.text = unpackText(pac.viewArray<u64>(kPacText), local_len,
                          stem + kExtPac);
    if (out.text.size() != segmentsLocalLength(out.segments))
        throw LoadError(stem + kExtPac +
                        ": text echo disagrees with the segment map");
    return out;
}

} // namespace exma
