/**
 * @file
 * Save / load of single tables through the `.exma.*` companion-file
 * format (io/format.hh).
 *
 * One table is three files at a stem:
 *
 *   stem.exma.pac   table config echo, segment map, optional 2-bit text
 *   stem.exma.occ   EXMA table: base pointers, increments, sentinels,
 *                   and the trained learned-index model (MTL or naive)
 *   stem.exma.sa    FM-index: packed-rank blocks, SA samples, sampled-
 *                   row bit vector
 *
 * Loading mmaps the files read-only and points the restored
 * structures' hot arrays straight into the mappings
 * (common/storage.hh), so the Loaded* wrappers hold the MappedFiles
 * alongside the structures and must stay alive as long as the table
 * serves. Models are restored from their trained weights — nothing is
 * retrained, so a loaded table answers bit-identically to the one
 * that was saved.
 *
 * Whole-index directories (manifest + per-shard files) are one layer
 * up, in persist/index_io.hh — that layer knows about shard plans and
 * routers; this one stops at a single table so the io module stays
 * below route/shard in the layering DAG (the exma-worker child loads
 * its shard through exactly this seam).
 */

#ifndef EXMA_IO_TABLE_IO_HH
#define EXMA_IO_TABLE_IO_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/exma_table.hh"
#include "io/format.hh"
#include "io/mapped_file.hh"

namespace exma {

/**
 * Write @p table as stem.exma.{pac,occ,sa}. @p local_text is the text
 * the table was built over (the segment extraction for segment-mapped
 * tables, the whole reference otherwise); pass empty to omit the text
 * echo — every table load works without it, it exists for tooling.
 */
void saveTableFiles(const ExmaTable &table, const std::string &stem,
                    std::span<const Base> local_text = {});

/**
 * Write a table-less scan shard as stem.exma.pac only: its segment map
 * plus the extracted local text the worker scans.
 */
void saveScanFiles(std::span<const Base> local_text,
                   const std::vector<TextSegment> &segments,
                   const std::string &stem);

/** A loaded table plus the mappings its hot arrays are borrowed from. */
struct LoadedExmaTable
{
    /** Declared before the table so the table is destroyed first. */
    std::vector<MappedFile> files;
    std::unique_ptr<ExmaTable> table;
};

/** Load stem.exma.{pac,occ,sa}; throws LoadError on any defect. */
LoadedExmaTable loadTableFiles(const std::string &stem);

/** Load a scan shard's stem.exma.pac: segment map + unpacked text. */
struct LoadedScanShard
{
    std::vector<TextSegment> segments;
    std::vector<Base> text;
};
LoadedScanShard loadScanFiles(const std::string &stem);

/**
 * Shared plumbing between this layer and persist/index_io.cc — not a
 * public API. The manifest layer reuses the same config echo, blob
 * framing, shard-stem naming and load-fault hook so one format
 * version covers every file in an index directory.
 */
namespace io_detail {

/** Fault hook for the mmap load path (site "io.load"). */
void probeLoadFaults(const std::string &path);

/** Write @p w's bytes as section @p tag. */
void writeBlob(FileBuilder &fb, u32 tag, const BlobWriter &w);

/** Serialize / restore an ExmaTable::Config echo. */
void putTableConfig(BlobWriter &w, const ExmaTable::Config &cfg);
ExmaTable::Config getTableConfig(BlobReader &r);

/** dir + "/shardNNNN" (4-digit, zero-padded). */
std::string shardStem(const std::string &dir, size_t i);

} // namespace io_detail

} // namespace exma

#endif // EXMA_IO_TABLE_IO_HH
