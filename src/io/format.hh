/**
 * @file
 * The on-disk layout of the persistent index: TMAP-style companion
 * files (`.exma.occ` / `.exma.sa` / `.exma.pac` / `.exma.manifest`),
 * each carrying a magic string, the format version, an endianness tag
 * and a checksum, followed by a table of 64-byte-aligned typed
 * sections.
 *
 * Every file is:
 *
 *   FileHeader (64 B)            magic, version, endian, checksum
 *   SectionEntry[n_sections]     tag, element size, count, offset
 *   ...payload sections...       each offset 64-byte aligned
 *
 * All integers are little-endian; big-endian hosts are refused at both
 * save and load (no byte-swapping deserializer exists — the whole
 * point of the format is that hot arrays are used in place via mmap).
 * The checksum is FNV-1a-64 over every byte after the header, so a
 * truncated or bit-flipped file fails closed with a LoadError before
 * any structure touches it.
 *
 * Version-bump policy: any change to FileHeader, SectionEntry, a
 * section's element layout, or the meaning of an existing tag bumps
 * kFormatVersion; loaders refuse other versions outright (no
 * migration). Adding a new tag to a file is also a bump — older
 * readers would silently ignore data the writer considered part of
 * the index.
 */

#ifndef EXMA_IO_FORMAT_HH
#define EXMA_IO_FORMAT_HH

#include <bit>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "io/mapped_file.hh"

namespace exma {

/** Bumped on any on-disk layout change (see the policy above). */
constexpr u32 kFormatVersion = 1;

/** Value of FileHeader::endian on a little-endian writer. */
constexpr u32 kEndianTag = 0x01020304;

/** Companion-file magics, 8 bytes each (NUL-padded). */
constexpr char kMagicOcc[8] = {'E', 'X', 'M', 'A', 'O', 'C', 'C', '\0'};
constexpr char kMagicSa[8] = {'E', 'X', 'M', 'A', 'S', 'A', '\0', '\0'};
constexpr char kMagicPac[8] = {'E', 'X', 'M', 'A', 'P', 'A', 'C', '\0'};
constexpr char kMagicManifest[8] = {'E', 'X', 'M', 'A', 'I', 'D', 'X', '\0'};

/** Companion-file extensions (appended to an index stem). */
constexpr const char *kExtOcc = ".exma.occ";
constexpr const char *kExtSa = ".exma.sa";
constexpr const char *kExtPac = ".exma.pac";
constexpr const char *kManifestName = "index.exma.manifest";

/** Section payload alignment: one cache line, so mmap'd arrays keep
 *  the alignment their in-memory builders guarantee (PackedRank's
 *  alignas(32) blocks in particular). */
constexpr u64 kSectionAlign = 64;

struct FileHeader
{
    char magic[8] = {};
    u32 version = 0;
    u32 endian = 0;
    u64 file_bytes = 0; ///< total file size, for truncation detection
    u64 checksum = 0;   ///< FNV-1a-64 over bytes [64, file_bytes)
    u32 n_sections = 0;
    u32 flags = 0;      ///< reserved, written 0
    u8 pad[24] = {};    ///< reserved, written 0
};
static_assert(sizeof(FileHeader) == 64, "header must stay one line");
static_assert(std::is_trivially_copyable_v<FileHeader>);

struct SectionEntry
{
    u32 tag = 0;       ///< section id, unique within the file
    u32 elem_size = 0; ///< sizeof one element
    u64 count = 0;     ///< number of elements
    u64 offset = 0;    ///< byte offset from file start, 64-aligned
    u64 reserved = 0;  ///< written 0
};
static_assert(sizeof(SectionEntry) == 32, "section entry is 32 bytes");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/** FNV-1a-64 over @p bytes, continuing from @p seed. */
constexpr u64
fnv1a(std::span<const u8> bytes, u64 seed = 0xcbf29ce484222325ULL)
{
    u64 h = seed;
    for (const u8 b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** The format is little-endian only; see the file comment. */
inline void
requireLittleEndian(const char *verb)
{
    exma_assert(std::endian::native == std::endian::little,
                "cannot %s .exma files on a big-endian host (the "
                "format is little-endian mmap-in-place)",
                verb);
}

/**
 * In-memory builder for one companion file: append typed sections,
 * then save() writes header + section table + 64-byte-aligned payload
 * and stamps the checksum.
 *
 * Call sites must name the element type explicitly and static_assert
 * its size and trivial copyability right at the write site (enforced
 * by tools/lint/exma_lint.py rule `ondisk-pod-assert`), so a silent
 * struct-layout change cannot silently change the format.
 */
class FileBuilder
{
  public:
    explicit FileBuilder(const char (&magic)[8])
    {
        requireLittleEndian("save");
        std::memcpy(magic_, magic, sizeof(magic_));
    }

    template <typename T>
    void
    writeArray(u32 tag, std::span<const T> data)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "only trivially copyable elements are mmap-safe");
        Section s;
        s.tag = tag;
        s.elem_size = static_cast<u32>(sizeof(T));
        s.count = data.size();
        s.bytes.resize(data.size_bytes());
        if (!data.empty())
            std::memcpy(s.bytes.data(), data.data(), data.size_bytes());
        for (const Section &prev : sections_)
            exma_assert(prev.tag != tag, "duplicate section tag %u", tag);
        sections_.push_back(std::move(s));
    }

    /** Write @p path atomically (tmp file + rename); panics on IO
     *  failure — saving is a build step, not a serving path. */
    void save(const std::string &path) const;

  private:
    struct Section
    {
        u32 tag = 0;
        u32 elem_size = 0;
        u64 count = 0;
        std::vector<u8> bytes;
    };

    char magic_[8] = {};
    std::vector<Section> sections_;
};

/**
 * Validated view of a mapped companion file: checks magic, version,
 * endianness, size, section geometry and checksum up front (throwing
 * LoadError), then hands out zero-copy typed spans into the mapping.
 */
class FileView
{
  public:
    FileView(const MappedFile &file, const char (&magic)[8]);

    bool has(u32 tag) const { return find(tag) != nullptr; }

    /**
     * Zero-copy span over section @p tag. The element type must match
     * the writer's (size-checked); call sites carry the same
     * static_asserts as writeArray sites.
     */
    template <typename T>
    std::span<const T>
    viewArray(u32 tag) const
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "only trivially copyable elements are mmap-safe");
        const SectionEntry *e = find(tag);
        if (e == nullptr)
            throw LoadError(file_->path() + ": missing section " +
                            std::to_string(tag));
        if (e->elem_size != sizeof(T))
            throw LoadError(file_->path() + ": section " +
                            std::to_string(tag) + " holds " +
                            std::to_string(e->elem_size) +
                            "-byte elements, reader expects " +
                            std::to_string(sizeof(T)));
        // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast):
        // the pointer is kSectionAlign-aligned (validated) and T is
        // trivially copyable — this cast is the zero-copy load.
        return {reinterpret_cast<const T *>(file_->data() + e->offset),
                e->count};
    }

    /** Section @p tag copied out as owned bytes (small metadata). */
    std::vector<u8> readBlob(u32 tag) const;

  private:
    const SectionEntry *find(u32 tag) const;

    const MappedFile *file_ = nullptr;
    std::span<const SectionEntry> entries_;
};

/**
 * Growable little-endian metadata blob (configs, model weights —
 * everything that is not a hot array). Paired with BlobReader.
 */
class BlobWriter
{
  public:
    void
    putU32(u32 v)
    {
        putRaw(&v, sizeof(v));
    }
    void
    putU64(u64 v)
    {
        putRaw(&v, sizeof(v));
    }
    void
    putI32(i32 v)
    {
        putRaw(&v, sizeof(v));
    }
    void
    putF64(double v)
    {
        putRaw(&v, sizeof(v));
    }
    void
    putString(const std::string &s)
    {
        putU64(s.size());
        putRaw(s.data(), s.size());
    }
    void
    putF64Array(std::span<const double> v)
    {
        putU64(v.size());
        putRaw(v.data(), v.size_bytes());
    }

    std::span<const u8> bytes() const { return buf_; }

  private:
    void
    putRaw(const void *p, size_t n)
    {
        const auto *b = static_cast<const u8 *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<u8> buf_;
};

/** Bounds-checked reader over a metadata blob; overruns throw. */
class BlobReader
{
  public:
    BlobReader(std::span<const u8> bytes, std::string what)
        : bytes_(bytes), what_(std::move(what))
    {
    }

    u32
    getU32()
    {
        u32 v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }
    u64
    getU64()
    {
        u64 v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }
    i32
    getI32()
    {
        i32 v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }
    double
    getF64()
    {
        double v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }
    std::string
    getString()
    {
        const u64 n = getU64();
        checkRemaining(n);
        std::string s(reinterpret_cast<const char *>(bytes_.data()) + // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
                          pos_,
                      n);
        pos_ += n;
        return s;
    }
    std::vector<double>
    getF64Array()
    {
        const u64 n = getU64();
        checkRemaining(n * sizeof(double));
        std::vector<double> v(n);
        if (n > 0)
            std::memcpy(v.data(), bytes_.data() + pos_,
                        n * sizeof(double));
        pos_ += n * sizeof(double);
        return v;
    }

    /** Every byte must be consumed — trailing garbage is corruption. */
    void
    finish() const
    {
        if (pos_ != bytes_.size())
            throw LoadError(context() + ": " +
                            std::to_string(bytes_.size() - pos_) +
                            " unconsumed metadata bytes");
    }

    /**
     * Source label plus current byte offset ("file (blob) @+N") —
     * decoding code folds this into its LoadErrors so a corrupt field
     * names the companion file and where inside the blob it sat.
     */
    std::string
    context() const
    {
        return what_ + " @+" + std::to_string(pos_);
    }

  private:
    void
    checkRemaining(u64 n) const
    {
        if (n > bytes_.size() - pos_)
            throw LoadError(context() + ": truncated metadata blob (" +
                            std::to_string(n) + " bytes wanted, " +
                            std::to_string(bytes_.size() - pos_) +
                            " left)");
    }
    void
    getRaw(void *p, size_t n)
    {
        checkRemaining(n);
        std::memcpy(p, bytes_.data() + pos_, n);
        pos_ += n;
    }

    std::span<const u8> bytes_;
    size_t pos_ = 0;
    std::string what_;
};

} // namespace exma

#endif // EXMA_IO_FORMAT_HH
