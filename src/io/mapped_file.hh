/**
 * @file
 * Read-only memory mapping of an index companion file, plus the error
 * type every load-path failure funnels through.
 *
 * A loaded index keeps its hot arrays borrowed (common/storage.hh)
 * from these mappings, so the MappedFile must outlive the structures
 * viewing it — the Loaded* wrappers in io/table_io.hh hold both. The
 * mapping is MAP_SHARED of a read-only fd: N processes loading the
 * same index share one physical page-cache copy of the arrays, the
 * paper's "table resident in memory" serving model without per-process
 * duplication.
 */

#ifndef EXMA_IO_MAPPED_FILE_HH
#define EXMA_IO_MAPPED_FILE_HH

#include <span>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace exma {

/**
 * Any defect found while loading an `.exma.*` file — missing file,
 * short read, bad magic, version or endianness mismatch, checksum
 * failure, malformed section geometry. Always thrown before any
 * structure is built over the data, so corruption can never reach a
 * query path.
 */
class LoadError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class MappedFile
{
  public:
    MappedFile() = default;

    /** Map @p path read-only; throws LoadError on any failure. */
    explicit MappedFile(const std::string &path);

    ~MappedFile();

    MappedFile(MappedFile &&o) noexcept;
    MappedFile &operator=(MappedFile &&o) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::string &path() const { return path_; }
    const u8 *data() const { return data_; }
    u64 size() const { return size_; }
    std::span<const u8> bytes() const { return {data_, size_}; }

  private:
    void reset() noexcept;

    std::string path_;
    const u8 *data_ = nullptr;
    u64 size_ = 0;
};

} // namespace exma

#endif // EXMA_IO_MAPPED_FILE_HH
