#include "io/format.hh"

#include <cstdio>
#include <fstream>

namespace exma {

namespace {

constexpr u64
alignUp(u64 v, u64 a)
{
    return (v + a - 1) / a * a;
}

} // namespace

void
FileBuilder::save(const std::string &path) const
{
    // Lay the file out: header, section table, then each payload at
    // the next 64-byte boundary.
    std::vector<SectionEntry> entries(sections_.size());
    u64 offset = sizeof(FileHeader) +
                 sections_.size() * sizeof(SectionEntry);
    for (size_t i = 0; i < sections_.size(); ++i) {
        offset = alignUp(offset, kSectionAlign);
        entries[i].tag = sections_[i].tag;
        entries[i].elem_size = sections_[i].elem_size;
        entries[i].count = sections_[i].count;
        entries[i].offset = offset;
        offset += sections_[i].bytes.size();
    }
    const u64 file_bytes = offset;

    // Assemble the whole post-header image in memory so the checksum
    // is one pass; index files are modest next to the live tables.
    std::vector<u8> body(file_bytes - sizeof(FileHeader), 0);
    std::memcpy(body.data(), entries.data(),
                entries.size() * sizeof(SectionEntry));
    for (size_t i = 0; i < sections_.size(); ++i)
        if (!sections_[i].bytes.empty())
            std::memcpy(body.data() +
                            (entries[i].offset - sizeof(FileHeader)),
                        sections_[i].bytes.data(),
                        sections_[i].bytes.size());

    FileHeader hdr;
    std::memcpy(hdr.magic, magic_, sizeof(hdr.magic));
    hdr.version = kFormatVersion;
    hdr.endian = kEndianTag;
    hdr.file_bytes = file_bytes;
    hdr.checksum = fnv1a(body);
    hdr.n_sections = static_cast<u32>(sections_.size());

    // Write tmp + rename so a crashed save never leaves a readable
    // half-file under the real name.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        exma_assert(out.good(), "cannot open '%s' for writing",
                    tmp.c_str());
        out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr)); // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
        out.write(reinterpret_cast<const char *>(body.data()), // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
                  static_cast<std::streamsize>(body.size()));
        out.flush();
        exma_assert(out.good(), "short write to '%s'", tmp.c_str());
    }
    exma_assert(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename '%s' into place", tmp.c_str());
}

FileView::FileView(const MappedFile &file, const char (&magic)[8])
    : file_(&file)
{
    requireLittleEndian("load");
    if (file.size() < sizeof(FileHeader))
        throw LoadError(file.path() + ": shorter than a file header");

    FileHeader hdr;
    std::memcpy(&hdr, file.data(), sizeof(hdr));
    if (std::memcmp(hdr.magic, magic, sizeof(hdr.magic)) != 0)
        throw LoadError(file.path() + ": bad magic (expected '" +
                        std::string(magic, strnlen(magic, 8)) + "')");
    if (hdr.endian != kEndianTag)
        throw LoadError(file.path() +
                        ": endianness mismatch (file written on a "
                        "different-endian host)");
    if (hdr.version != kFormatVersion)
        throw LoadError(file.path() + ": format version " +
                        std::to_string(hdr.version) +
                        ", this build reads only version " +
                        std::to_string(kFormatVersion) +
                        " — rebuild the index with exma-index");
    if (hdr.file_bytes != file.size())
        throw LoadError(file.path() + ": header says " +
                        std::to_string(hdr.file_bytes) +
                        " bytes, file holds " +
                        std::to_string(file.size()) + " (truncated?)");

    const u64 table_end =
        sizeof(FileHeader) + u64{hdr.n_sections} * sizeof(SectionEntry);
    if (table_end > file.size())
        throw LoadError(file.path() + ": section table runs past EOF");

    const u64 sum = fnv1a(file.bytes().subspan(sizeof(FileHeader)));
    if (sum != hdr.checksum)
        throw LoadError(file.path() + ": checksum mismatch (file is "
                                      "corrupt)");

    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast):
    // SectionEntry is trivially copyable and the table sits right
    // after the 64-byte header, so it is sufficiently aligned.
    entries_ = {reinterpret_cast<const SectionEntry *>(
                    file.data() + sizeof(FileHeader)),
                hdr.n_sections};

    for (const SectionEntry &e : entries_) {
        if (e.offset % kSectionAlign != 0)
            throw LoadError(file.path() + ": section " +
                            std::to_string(e.tag) + " is misaligned");
        const u64 bytes = e.count * e.elem_size;
        if (e.offset > file.size() || bytes > file.size() - e.offset)
            throw LoadError(file.path() + ": section " +
                            std::to_string(e.tag) + " runs past EOF");
    }
}

const SectionEntry *
FileView::find(u32 tag) const
{
    for (const SectionEntry &e : entries_)
        if (e.tag == tag)
            return &e;
    return nullptr;
}

std::vector<u8>
FileView::readBlob(u32 tag) const
{
    const auto bytes = viewArray<u8>(tag);
    static_assert(sizeof(u8) == 1);
    static_assert(std::is_trivially_copyable_v<u8>);
    return {bytes.begin(), bytes.end()};
}

} // namespace exma
