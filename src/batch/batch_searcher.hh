/**
 * @file
 * Batched, thread-pooled front end over ExmaTable::search — the
 * serving-scale counterpart of the paper's query-level parallelism
 * (EXMA's CAM scheduler keeps hundreds of searches in flight; Fig. 18
 * judges the design on Mbases/s over large query batches).
 *
 * The searcher fans a query batch out across a ThreadPool with chunked
 * dynamic scheduling. Results land at their query's index, so output
 * ordering is deterministic and bit-identical to a sequential loop
 * regardless of thread count or scheduling order; instrumentation is
 * accumulated per worker slot and merged afterwards (counter sums are
 * order-independent), so the hot path takes no locks.
 */

#ifndef EXMA_BATCH_BATCH_SEARCHER_HH
#define EXMA_BATCH_BATCH_SEARCHER_HH

#include <functional>
#include <vector>

#include "common/dna.hh"
#include "common/search_stats.hh"
#include "core/exma_table.hh"

namespace exma {

struct BatchConfig
{
    /** Worker width: 0 = all hardware threads, 1 = sequential. */
    unsigned threads = 0;
    /** Queries per dynamically claimed chunk. */
    u64 grain = 16;
    /**
     * Liveness hook: called once per completed chunk, from whichever
     * thread ran it. ShardWorker points this at its heartbeat counter
     * so the WorkerSupervisor can tell a legitimately slow batch
     * (heartbeat advancing) from a hung one (heartbeat frozen). Must
     * be cheap and thread-safe; null = no calls.
     */
    std::function<void()> progress;
    /** Record per-query SearchStats too (costs one vector of stats). */
    bool per_query_stats = false;
    /**
     * Also resolve each query's interval to text positions
     * (BatchResult::positions, sorted ascending). This is what sharded
     * serving needs: row intervals of different shard tables are not
     * comparable, text positions are. Segment-mapped tables
     * (ExmaTable::segmented()) locate through locateAllGlobal, so the
     * reported positions are global coordinates with junction
     * artifacts already dropped.
     */
    bool locate = false;
    /**
     * Cap on located positions per query; 0 = unlimited. The cap
     * keeps the first `locate_limit` occurrences in suffix-array row
     * order — the usual FM-index "report up to N" idiom — then sorts
     * the survivors, so which subset is kept is index-dependent.
     * Callers needing the lowest N text positions should use
     * ShardedExmaTable::search, whose cap applies globally after the
     * cross-shard merge.
     */
    u64 locate_limit = 0;
};

/** Outcome of one batch: index-aligned with the input queries. */
struct BatchResult
{
    std::vector<Interval> intervals;
    std::vector<std::vector<u64>> positions; ///< iff cfg.locate (sorted)
    SearchStats stats;                     ///< merged across all workers
    std::vector<SearchStats> per_thread;   ///< one per participant slot
    std::vector<SearchStats> per_query;    ///< iff cfg.per_query_stats
    u64 queries = 0;
    u64 bases = 0;     ///< total query symbols searched
    double seconds = 0.0;

    double
    mbasesPerSecond() const
    {
        return seconds > 0.0
                   ? static_cast<double>(bases) / seconds / 1e6
                   : 0.0;
    }
};

class BatchSearcher
{
  public:
    explicit BatchSearcher(const ExmaTable &table, BatchConfig cfg = {});

    const BatchConfig &config() const { return cfg_; }

    /** Search every query; wall-clock timed (result.seconds). */
    BatchResult search(const std::vector<std::vector<Base>> &queries) const;

    /**
     * Routed fan-out path: search only the queries selected by @p ids
     * (indices into @p queries, any order, duplicates allowed).
     * Results are index-aligned with @p ids — result.intervals[j]
     * belongs to queries[ids[j]] — so a ShardRouter can hand each
     * shard worker its own id list over one shared batch and scatter
     * the responses back without copying query storage.
     */
    BatchResult search(const std::vector<std::vector<Base>> &queries,
                       const std::vector<u32> &ids) const;

  private:
    BatchResult run(const std::vector<std::vector<Base>> &queries,
                    const std::vector<u32> *ids) const;

    const ExmaTable &table_;
    BatchConfig cfg_;
};

} // namespace exma

#endif // EXMA_BATCH_BATCH_SEARCHER_HH
