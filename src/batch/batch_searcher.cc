#include "batch/batch_searcher.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace exma {

BatchSearcher::BatchSearcher(const ExmaTable &table, BatchConfig cfg)
    : table_(table), cfg_(cfg)
{
}

BatchResult
BatchSearcher::search(const std::vector<std::vector<Base>> &queries) const
{
    return run(queries, nullptr);
}

BatchResult
BatchSearcher::search(const std::vector<std::vector<Base>> &queries,
                      const std::vector<u32> &ids) const
{
    for (u32 id : ids)
        exma_assert(id < queries.size(),
                    "subset id %u exceeds the %zu-query batch", id,
                    queries.size());
    return run(queries, &ids);
}

BatchResult
BatchSearcher::run(const std::vector<std::vector<Base>> &queries,
                   const std::vector<u32> *ids) const
{
    const u64 n = ids ? ids->size() : queries.size();
    BatchResult out;
    out.queries = n;
    out.intervals.resize(n);
    out.per_thread.assign(parallelForSlots(cfg_.threads), SearchStats{});
    if (cfg_.per_query_stats)
        out.per_query.assign(n, SearchStats{});
    if (cfg_.locate)
        out.positions.resize(n);
    const u64 locate_limit = cfg_.locate_limit ? cfg_.locate_limit
                                               : ~u64{0};

    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(
        n, cfg_.grain,
        [&](u64 begin, u64 end, unsigned slot) {
            SearchStats &acc = out.per_thread[slot];
            for (u64 i = begin; i < end; ++i) {
                const std::vector<Base> &q =
                    queries[ids ? (*ids)[i] : i];
                SearchStats qs;
                out.intervals[i] = table_.search(q, &qs);
                acc += qs;
                if (cfg_.per_query_stats)
                    out.per_query[i] = qs;
                if (cfg_.locate) {
                    if (table_.segmented()) {
                        // Global coordinates, junction artifacts
                        // dropped before the cap is applied.
                        out.positions[i] = table_.locateAllGlobal(
                            out.intervals[i], q.size(), locate_limit);
                    } else {
                        auto pos = table_.locateAll(out.intervals[i],
                                                    locate_limit);
                        std::sort(pos.begin(), pos.end());
                        out.positions[i] = std::move(pos);
                    }
                }
            }
            if (cfg_.progress)
                cfg_.progress();
        },
        cfg_.threads);
    const auto t1 = std::chrono::steady_clock::now();

    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (u64 i = 0; i < n; ++i)
        out.bases += queries[ids ? (*ids)[i] : i].size();
    for (const SearchStats &s : out.per_thread)
        out.stats += s;
    return out;
}

} // namespace exma
