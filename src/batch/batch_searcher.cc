#include "batch/batch_searcher.hh"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.hh"

namespace exma {

BatchSearcher::BatchSearcher(const ExmaTable &table, BatchConfig cfg)
    : table_(table), cfg_(cfg)
{
}

BatchResult
BatchSearcher::search(const std::vector<std::vector<Base>> &queries) const
{
    BatchResult out;
    out.queries = queries.size();
    out.intervals.resize(queries.size());
    out.per_thread.assign(parallelForSlots(cfg_.threads), SearchStats{});
    if (cfg_.per_query_stats)
        out.per_query.assign(queries.size(), SearchStats{});
    if (cfg_.locate)
        out.positions.resize(queries.size());
    const u64 locate_limit = cfg_.locate_limit ? cfg_.locate_limit
                                               : ~u64{0};

    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(
        queries.size(), cfg_.grain,
        [&](u64 begin, u64 end, unsigned slot) {
            SearchStats &acc = out.per_thread[slot];
            for (u64 i = begin; i < end; ++i) {
                SearchStats qs;
                out.intervals[i] = table_.search(queries[i], &qs);
                acc += qs;
                if (cfg_.per_query_stats)
                    out.per_query[i] = qs;
                if (cfg_.locate) {
                    auto pos = table_.locateAll(out.intervals[i],
                                                locate_limit);
                    std::sort(pos.begin(), pos.end());
                    out.positions[i] = std::move(pos);
                }
            }
        },
        cfg_.threads);
    const auto t1 = std::chrono::steady_clock::now();

    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const auto &q : queries)
        out.bases += q.size();
    for (const SearchStats &s : out.per_thread)
        out.stats += s;
    return out;
}

} // namespace exma
