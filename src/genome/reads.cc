#include "genome/reads.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace exma {

const ErrorProfile &
illuminaProfile()
{
    static const ErrorProfile p{"Illumina", 0.0018, 0.0001, 0.0001};
    return p;
}

const ErrorProfile &
pacbioProfile()
{
    static const ErrorProfile p{"PacBio", 0.0150, 0.0902, 0.0449};
    return p;
}

const ErrorProfile &
ontProfile()
{
    static const ErrorProfile p{"ONT", 0.1650, 0.0510, 0.0840};
    return p;
}

const std::vector<ErrorProfile> &
allProfiles()
{
    static const std::vector<ErrorProfile> all = {
        illuminaProfile(), pacbioProfile(), ontProfile()};
    return all;
}

std::vector<Read>
simulateReads(const std::vector<Base> &ref, const ErrorProfile &profile,
              const ReadSimSpec &spec)
{
    exma_assert(!ref.empty(), "empty reference");
    exma_assert(spec.read_len >= 8, "read length too small");
    Rng rng(spec.seed);

    u64 n_reads = spec.max_reads;
    if (n_reads == 0) {
        n_reads = static_cast<u64>(
            spec.coverage * static_cast<double>(ref.size()) /
            static_cast<double>(spec.read_len));
        n_reads = std::max<u64>(n_reads, 1);
    }

    std::vector<Read> reads;
    reads.reserve(n_reads);
    for (u64 r = 0; r < n_reads; ++r) {
        u64 len = spec.read_len;
        if (spec.long_reads) {
            // PBSIM-style lognormal around the mean length.
            double mu = std::log(static_cast<double>(spec.read_len)) - 0.125;
            len = static_cast<u64>(std::exp(rng.normal(mu, 0.5)));
            len = std::clamp<u64>(len, 64, ref.size());
        }
        if (len > ref.size())
            len = ref.size();

        Read read;
        read.true_pos = rng.below(ref.size() - len + 1);
        read.reverse = rng.bernoulli(0.5);

        // Copy the template strand.
        std::vector<Base> tmpl(ref.begin() +
                                   static_cast<std::ptrdiff_t>(read.true_pos),
                               ref.begin() + static_cast<std::ptrdiff_t>(
                                                 read.true_pos + len));
        if (read.reverse)
            tmpl = reverseComplement(tmpl);

        // Apply the per-base error channel.
        read.seq.reserve(len + len / 8);
        for (Base b : tmpl) {
            double u = rng.uniform();
            if (u < profile.deletion)
                continue; // base dropped
            if (u < profile.deletion + profile.insertion) {
                read.seq.push_back(static_cast<Base>(rng.below(4)));
                read.seq.push_back(b);
                continue;
            }
            if (u < profile.deletion + profile.insertion +
                    profile.mismatch) {
                read.seq.push_back(
                    static_cast<Base>((b + 1 + rng.below(3)) & 3));
                continue;
            }
            read.seq.push_back(b);
        }
        if (read.seq.empty())
            read.seq.push_back(0);
        reads.push_back(std::move(read));
    }
    return reads;
}

std::vector<std::vector<Base>>
samplePatterns(const std::vector<Base> &ref, u64 count, u64 len, u64 seed)
{
    exma_assert(ref.size() >= len && len > 0,
                "pattern length %llu exceeds reference %llu",
                (unsigned long long)len, (unsigned long long)ref.size());
    Rng rng(seed);
    std::vector<std::vector<Base>> out;
    out.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        u64 pos = rng.below(ref.size() - len + 1);
        out.emplace_back(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                         ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
    }
    return out;
}

} // namespace exma
