#include "genome/fasta.hh"

#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace exma {

void
writeFasta(std::ostream &os, const std::vector<FastaRecord> &records,
           int width)
{
    exma_assert(width > 0, "line width must be positive");
    for (const auto &rec : records) {
        os << '>' << rec.name << '\n';
        for (size_t i = 0; i < rec.seq.size();
             i += static_cast<size_t>(width)) {
            const size_t end =
                std::min(rec.seq.size(), i + static_cast<size_t>(width));
            for (size_t j = i; j < end; ++j)
                os << baseToChar(rec.seq[j]);
            os << '\n';
        }
    }
}

std::vector<FastaRecord>
readFasta(std::istream &is)
{
    std::vector<FastaRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '>') {
            FastaRecord rec;
            size_t end = line.find_first_of(" \t", 1);
            rec.name = line.substr(1, end == std::string::npos
                                          ? std::string::npos : end - 1);
            records.push_back(std::move(rec));
        } else if (!records.empty()) {
            for (char c : line)
                records.back().seq.push_back(charToBase(c));
        }
    }
    return records;
}

void
writeFastaFile(const std::string &path,
               const std::vector<FastaRecord> &records, int width)
{
    std::ofstream os(path);
    if (!os)
        exma_fatal("cannot open '%s' for writing", path.c_str());
    writeFasta(os, records, width);
}

std::vector<FastaRecord>
readFastaFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        exma_fatal("cannot open '%s' for reading", path.c_str());
    return readFasta(is);
}

} // namespace exma
