#include "genome/fasta.hh"

#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace exma {

void
writeFasta(std::ostream &os, const std::vector<FastaRecord> &records,
           int width)
{
    exma_assert(width > 0, "line width must be positive");
    for (const auto &rec : records) {
        os << '>' << rec.name << '\n';
        for (size_t i = 0; i < rec.seq.size();
             i += static_cast<size_t>(width)) {
            const size_t end =
                std::min(rec.seq.size(), i + static_cast<size_t>(width));
            for (size_t j = i; j < end; ++j)
                os << baseToChar(rec.seq[j]);
            os << '\n';
        }
    }
}

namespace {

/** Strictly A/C/G/T (either case) — everything else is ambiguous. */
bool
isUnambiguousBase(char c)
{
    switch (c) {
        case 'A': case 'a':
        case 'C': case 'c':
        case 'G': case 'g':
        case 'T': case 't':
            return true;
        default:
            return false;
    }
}

/** ' ', '\t', '\r', ... — bytes that are layout, not sequence. */
bool
isFastaWhitespace(char c)
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
           c == '\v' || c == '\f';
}

} // namespace

std::vector<FastaRecord>
readFasta(std::istream &is, FastaParseStats *stats)
{
    std::vector<FastaRecord> records;
    FastaParseStats st;
    std::string line;
    while (std::getline(is, line)) {
        // CRLF files leave a trailing '\r' on every getline result;
        // strip it here so even header names stay clean.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            FastaRecord rec;
            size_t end = line.find_first_of(" \t", 1);
            rec.name = line.substr(1, end == std::string::npos
                                          ? std::string::npos : end - 1);
            records.push_back(std::move(rec));
            ++st.records;
        } else if (!records.empty()) {
            for (char c : line) {
                if (isFastaWhitespace(c))
                    continue; // layout bytes must not become bases
                if (!isUnambiguousBase(c))
                    ++st.ambiguous; // still encoded (as 'A'), but tallied
                records.back().seq.push_back(charToBase(c));
                ++st.bases;
            }
        }
    }
    if (st.ambiguous > 0)
        exma_warn("readFasta: %llu of %llu sequence characters are "
                  "ambiguous (non-ACGT, e.g. 'N' runs) and were encoded "
                  "as 'A'; repeat statistics over these regions are not "
                  "meaningful",
                  (unsigned long long)st.ambiguous,
                  (unsigned long long)st.bases);
    if (stats)
        *stats = st;
    return records;
}

void
writeFastaFile(const std::string &path,
               const std::vector<FastaRecord> &records, int width)
{
    std::ofstream os(path);
    if (!os)
        exma_fatal("cannot open '%s' for writing", path.c_str());
    writeFasta(os, records, width);
}

std::vector<FastaRecord>
readFastaFile(const std::string &path, FastaParseStats *stats)
{
    std::ifstream is(path);
    if (!is)
        exma_fatal("cannot open '%s' for reading", path.c_str());
    return readFasta(is, stats);
}

} // namespace exma
