/**
 * @file
 * Minimal FASTA reader/writer so examples can exchange sequences with
 * standard bioinformatics tooling.
 */

#ifndef EXMA_GENOME_FASTA_HH
#define EXMA_GENOME_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/dna.hh"

namespace exma {

/** One FASTA record. */
struct FastaRecord
{
    std::string name;
    std::vector<Base> seq;
};

/** Write records to a stream, wrapping sequence lines at @p width. */
void writeFasta(std::ostream &os, const std::vector<FastaRecord> &records,
                int width = 70);

/** Parse all records from a stream. Ambiguous bases map to 'A'. */
std::vector<FastaRecord> readFasta(std::istream &is);

/** Convenience file-path wrappers. */
void writeFastaFile(const std::string &path,
                    const std::vector<FastaRecord> &records, int width = 70);
std::vector<FastaRecord> readFastaFile(const std::string &path);

} // namespace exma

#endif // EXMA_GENOME_FASTA_HH
