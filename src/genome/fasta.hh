/**
 * @file
 * Minimal FASTA reader/writer so examples can exchange sequences with
 * standard bioinformatics tooling.
 */

#ifndef EXMA_GENOME_FASTA_HH
#define EXMA_GENOME_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/dna.hh"

namespace exma {

/** One FASTA record. */
struct FastaRecord
{
    std::string name;
    std::vector<Base> seq;
};

/** What readFasta saw while parsing (CRLF handling, ambiguity tally). */
struct FastaParseStats
{
    u64 records = 0;   ///< number of '>' headers
    u64 bases = 0;     ///< sequence characters kept (after whitespace strip)
    u64 ambiguous = 0; ///< non-ACGT sequence characters (N, IUPAC codes, ...)
};

/** Write records to a stream, wrapping sequence lines at @p width. */
void writeFasta(std::ostream &os, const std::vector<FastaRecord> &records,
                int width = 70);

/**
 * Parse all records from a stream. Whitespace inside sequence lines —
 * including the '\r' of CRLF files — is stripped, never encoded.
 * Ambiguous (non-ACGT) bases map to 'A'; they are tallied in @p stats
 * and a single warning reports the total when any were seen.
 */
std::vector<FastaRecord> readFasta(std::istream &is,
                                   FastaParseStats *stats = nullptr);

/** Convenience file-path wrappers. */
void writeFastaFile(const std::string &path,
                    const std::vector<FastaRecord> &records, int width = 70);
std::vector<FastaRecord> readFastaFile(const std::string &path,
                                       FastaParseStats *stats = nullptr);

} // namespace exma

#endif // EXMA_GENOME_FASTA_HH
