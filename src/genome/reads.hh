/**
 * @file
 * Read simulators standing in for DWGSim (short reads) and PBSIM (long
 * reads), with the error profiles the paper quotes:
 *   (Illumina, 0.18% mismatch, 0.01% ins, 0.01% del)
 *   (PacBio,   1.50% mismatch, 9.02% ins, 4.49% del)
 *   (ONT 2D,  16.50% mismatch, 5.10% ins, 8.40% del)
 */

#ifndef EXMA_GENOME_READS_HH
#define EXMA_GENOME_READS_HH

#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace exma {

/** Per-base error rates of a sequencing platform (fractions, not %). */
struct ErrorProfile
{
    std::string name;
    double mismatch = 0.0;
    double insertion = 0.0;
    double deletion = 0.0;

    double total() const { return mismatch + insertion + deletion; }
};

/** The three platforms evaluated in the paper. */
const ErrorProfile &illuminaProfile();
const ErrorProfile &pacbioProfile();
const ErrorProfile &ontProfile();
const std::vector<ErrorProfile> &allProfiles();

/** A simulated read with its ground truth. */
struct Read
{
    std::vector<Base> seq;
    u64 true_pos = 0;      ///< 0-based position on the forward reference
    bool reverse = false;  ///< sampled from the reverse-complement strand
};

/** Configuration for read simulation. */
struct ReadSimSpec
{
    u64 read_len = 101;     ///< mean length (exact for short reads)
    bool long_reads = false; ///< lognormal length distribution if true
    double coverage = 1.0;  ///< total bases ≈ coverage × |ref|
    u64 max_reads = 0;      ///< hard cap (0 = derive from coverage)
    u64 seed = 42;
};

/**
 * Simulate reads from @p ref with platform profile @p profile.
 * Short reads: fixed length (paper: 101 bp, 50× coverage, DWGSim-like).
 * Long reads: lognormal length around read_len (paper: 1 kbp, PBSIM-like).
 */
std::vector<Read> simulateReads(const std::vector<Base> &ref,
                                const ErrorProfile &profile,
                                const ReadSimSpec &spec);

/**
 * Extract error-free patterns for raw exact-match throughput runs
 * (used for the search-throughput figures where the metric is bases/s).
 */
std::vector<std::vector<Base>> samplePatterns(const std::vector<Base> &ref,
                                              u64 count, u64 len, u64 seed);

} // namespace exma

#endif // EXMA_GENOME_READS_HH
