/**
 * @file
 * Synthetic reference-genome generation.
 *
 * The paper evaluates on human (3 Gbp), picea glauca (20 Gbp) and pinus
 * lambertiana (31 Gbp). Real assemblies are not available offline, so we
 * generate synthetic references that preserve the properties the EXMA
 * data structures care about: alphabet, length ratios, and a tunable
 * amount of repeat content (conifer genomes like picea/pinus are highly
 * repetitive, which shapes k-mer increment distributions).
 *
 * Scaled sizes default to human = 8 Mbp, picea = 20 Mbp, pinus = 31 Mbp
 * (see DESIGN.md §5); `EXMA_BENCH_SCALE` multiplies these.
 */

#ifndef EXMA_GENOME_REFERENCE_HH
#define EXMA_GENOME_REFERENCE_HH

#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "genome/fasta.hh"

namespace exma {

/** Parameters for synthetic reference generation. */
struct ReferenceSpec
{
    u64 length = 1 << 20;        ///< number of bases
    double repeat_fraction = 0.4; ///< fraction of bases from copied repeats
    u64 repeat_len_mean = 3000;   ///< mean repeat segment length
    double repeat_mutation = 0.02; ///< per-base divergence between copies
    /** Fraction of bases in short tandem repeats (microsatellites,
     *  homopolymer runs) — the source of the extremely hot k-mers in
     *  the paper's Fig. 11/12. */
    double str_fraction = 0.06;
    double gc_content = 0.41;     ///< genome-wide GC fraction
    u64 seed = 1;                 ///< RNG seed
};

/** Generate a synthetic reference according to @p spec. */
std::vector<Base> generateReference(const ReferenceSpec &spec);

/**
 * One repeat-segment length draw: normal(mean, mean/3), clamped at 0
 * *before* the double→u64 conversion (the negative tail of the normal
 * would make that cast undefined behaviour), floored at 16 bases.
 * Exposed so the clamp is directly exercisable under UBSan.
 */
u64 sampleRepeatLength(Rng &rng, u64 mean);

/**
 * A contiguous span of a concatenated reference that came from one
 * source record (FASTA record / chromosome / synthetic block). Shard
 * planning uses these to cut per-record shards whose boundaries are
 * real sequence ends rather than arbitrary offsets.
 */
struct RecordSpan
{
    std::string name;
    u64 begin = 0;  ///< offset in the concatenated reference
    u64 length = 0; ///< span length in bases

    bool operator==(const RecordSpan &) const = default;
};

/** A named evaluation dataset: reference plus scaling bookkeeping. */
struct Dataset
{
    std::string name;       ///< human / picea / pinus
    std::vector<Base> ref;  ///< scaled synthetic reference
    u64 paper_length = 0;   ///< the paper's full-scale |G| in bases
    int exma_k = 0;         ///< scaled k equivalent to the paper's k=15
    int lisa_k = 0;         ///< scaled k equivalent to LISA-21
    /** Source-record spans covering ref (one span when synthetic). */
    std::vector<RecordSpan> records;
};

/**
 * Build one of the paper's three datasets at reproduction scale.
 *
 * @param name   "human", "picea" or "pinus".
 * @param scale  multiplies the default scaled length (1.0 = DESIGN.md
 *               defaults; tests pass smaller values for speed).
 */
Dataset makeDataset(const std::string &name, double scale = 1.0);

/**
 * Build a dataset around an externally supplied reference (e.g. parsed
 * from a real FASTA file) instead of the synthetic generator, keeping
 * the named dataset's paper bookkeeping: paper_length, and k values
 * scaled to the supplied reference's actual size.
 *
 * @param name  "human", "picea" or "pinus" (for the paper-side numbers).
 * @param ref   the reference sequence; must hold at least 64 bases.
 */
Dataset makeDatasetFromRef(const std::string &name, std::vector<Base> ref);

/**
 * Record-aware variant of makeDatasetFromRef: concatenates the parsed
 * FASTA records into the dataset reference and keeps one RecordSpan per
 * record, so shard planning can partition along real record boundaries
 * (ShardPlan::perRecord) instead of treating the concatenation as one
 * opaque sequence.
 */
Dataset makeDatasetFromRecords(const std::string &name,
                               const std::vector<FastaRecord> &records);

/** All three dataset names in paper order. */
const std::vector<std::string> &datasetNames();

/**
 * Pick the k for a k-step structure at reproduction scale so that
 * |G| / 4^k matches the paper's operating point of |G_paper| / 4^k_paper.
 */
int scaledStep(u64 scaled_len, u64 paper_len, int paper_k);

} // namespace exma

#endif // EXMA_GENOME_REFERENCE_HH
