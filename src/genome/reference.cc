#include "genome/reference.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace exma {

u64
sampleRepeatLength(Rng &rng, u64 mean)
{
    const double m = static_cast<double>(mean);
    // The normal tail goes negative (≈0.13% of draws at sd = mean/3);
    // casting a negative double to u64 is UB, so clamp first.
    const double sampled = std::max(rng.normal(m, m / 3), 0.0);
    return std::max<u64>(16, static_cast<u64>(sampled));
}

std::vector<Base>
generateReference(const ReferenceSpec &spec)
{
    exma_assert(spec.length >= 64, "reference too short: %llu",
                (unsigned long long)spec.length);
    Rng rng(spec.seed);
    std::vector<Base> ref;
    ref.reserve(spec.length);

    // Base composition honouring the GC target: P(G)=P(C)=gc/2.
    const double p_gc = spec.gc_content;
    auto random_base = [&]() -> Base {
        double u = rng.uniform();
        if (u < p_gc / 2)
            return charToBase('G');
        if (u < p_gc)
            return charToBase('C');
        return rng.bernoulli(0.5) ? charToBase('A') : charToBase('T');
    };

    // Seed backbone so early repeats have something to copy from.
    const u64 backbone = std::max<u64>(spec.length / 50, 64);
    for (u64 i = 0; i < backbone && ref.size() < spec.length; ++i)
        ref.push_back(random_base());

    while (ref.size() < spec.length) {
        // Short tandem repeats first: a random 1-6 bp motif copied
        // 10-60 times. These create the heavy k-mers of Fig. 11/12.
        if (rng.uniform() < spec.str_fraction) {
            const u64 motif_len = 1 + rng.below(6);
            Base motif[6];
            for (u64 j = 0; j < motif_len; ++j)
                motif[j] = static_cast<Base>(rng.below(4));
            u64 copies = 10 + rng.below(50);
            for (u64 cpy = 0; cpy < copies && ref.size() < spec.length;
                 ++cpy)
                for (u64 j = 0; j < motif_len &&
                                ref.size() < spec.length;
                     ++j)
                    ref.push_back(motif[j]);
            continue;
        }
        const bool make_repeat =
            rng.uniform() < spec.repeat_fraction && ref.size() > 256;
        if (make_repeat) {
            // Copy an existing segment with point mutations: models
            // transposable elements / segmental duplications.
            u64 seg_len = sampleRepeatLength(rng, spec.repeat_len_mean);
            seg_len = std::min<u64>(seg_len, ref.size());
            seg_len = std::min<u64>(seg_len, spec.length - ref.size());
            if (seg_len == 0)
                break;
            const u64 src = rng.below(ref.size() - seg_len + 1);
            const bool rc = rng.bernoulli(0.3);
            for (u64 i = 0; i < seg_len; ++i) {
                Base b = rc ? complementBase(ref[src + seg_len - 1 - i])
                            : ref[src + i];
                if (rng.bernoulli(spec.repeat_mutation))
                    b = static_cast<Base>((b + 1 + rng.below(3)) & 3);
                ref.push_back(b);
            }
        } else {
            u64 seg_len = std::min<u64>(1024, spec.length - ref.size());
            for (u64 i = 0; i < seg_len; ++i)
                ref.push_back(random_base());
        }
    }
    ref.resize(spec.length);
    return ref;
}

namespace {

struct DatasetInfo
{
    const char *name;
    u64 scaled_len;   // DESIGN.md default scaled size
    u64 paper_len;    // paper full-scale size
    double repeat_fraction;
    u64 seed;
};

// Conifer genomes (picea/pinus) are notoriously repetitive; reflect that
// in the repeat fraction so their k-mer increment distributions differ
// from human the way the paper's Fig 18 discussion implies.
const DatasetInfo kDatasets[] = {
    {"human", 8u << 20, 3000000000ULL, 0.45, 101},
    {"picea", 20u << 20, 20000000000ULL, 0.70, 202},
    {"pinus", 31u << 20, 31000000000ULL, 0.72, 303},
};

const DatasetInfo *
findDataset(const std::string &name)
{
    for (const auto &d : kDatasets)
        if (name == d.name)
            return &d;
    return nullptr;
}

} // namespace

int
scaledStep(u64 scaled_len, u64 paper_len, int paper_k)
{
    // Preserve |G| / 4^k: k_scaled = k_paper - log4(paper_len/scaled_len).
    double shrink = std::log2(static_cast<double>(paper_len) /
                              static_cast<double>(scaled_len)) / 2.0;
    int k = paper_k - static_cast<int>(std::lround(shrink));
    return std::max(k, 2);
}

Dataset
makeDataset(const std::string &name, double scale)
{
    const DatasetInfo *info = findDataset(name);
    if (!info)
        exma_fatal("unknown dataset '%s'", name.c_str());

    ReferenceSpec spec;
    spec.length = std::max<u64>(static_cast<u64>(
        static_cast<double>(info->scaled_len) * scale), 4096);
    spec.repeat_fraction = info->repeat_fraction;
    spec.seed = info->seed;

    Dataset ds;
    ds.name = name;
    ds.ref = generateReference(spec);
    ds.paper_length = info->paper_len;
    ds.exma_k = scaledStep(spec.length, info->paper_len, 15);
    ds.lisa_k = scaledStep(spec.length, info->paper_len, 21);
    ds.records = {{name + "_synthetic", 0, ds.ref.size()}};
    return ds;
}

Dataset
makeDatasetFromRef(const std::string &name, std::vector<Base> ref)
{
    const DatasetInfo *info = findDataset(name);
    if (!info)
        exma_fatal("unknown dataset '%s'", name.c_str());
    if (ref.size() < 64)
        exma_fatal("supplied reference too short (%zu bases, need >= 64)",
                   ref.size());

    Dataset ds;
    ds.name = name;
    ds.paper_length = info->paper_len;
    ds.exma_k = scaledStep(ref.size(), info->paper_len, 15);
    ds.lisa_k = scaledStep(ref.size(), info->paper_len, 21);
    ds.ref = std::move(ref);
    ds.records = {{name + "_ref", 0, ds.ref.size()}};
    return ds;
}

Dataset
makeDatasetFromRecords(const std::string &name,
                       const std::vector<FastaRecord> &records)
{
    std::vector<Base> cat;
    std::vector<RecordSpan> spans;
    spans.reserve(records.size());
    size_t total = 0;
    for (const auto &rec : records)
        total += rec.seq.size();
    cat.reserve(total);
    for (const auto &rec : records) {
        spans.push_back({rec.name, cat.size(), rec.seq.size()});
        cat.insert(cat.end(), rec.seq.begin(), rec.seq.end());
    }
    Dataset ds = makeDatasetFromRef(name, std::move(cat));
    ds.records = std::move(spans);
    return ds;
}

const std::vector<std::string> &
datasetNames()
{
    static const std::vector<std::string> names = {"human", "picea", "pinus"};
    return names;
}

} // namespace exma
