#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

namespace exma {

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx_);
        stop_ = true;
    }
    task_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mtx_);
        tasks_.push_back(std::move(task));
        ++unfinished_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    // Explicit wait loops (rather than the predicate-lambda overload)
    // keep the guarded reads inside the annotated function body, where
    // -Wthread-safety analyses them against the held MutexLock.
    MutexLock lock(mtx_);
    while (unfinished_ != 0)
        idle_.wait(lock);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mtx_);
            while (!stop_ && tasks_.empty())
                task_ready_.wait(lock);
            if (tasks_.empty())
                return; // stop_ and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            MutexLock lock(mtx_);
            --unfinished_;
        }
        idle_.notify_all();
    }
}

namespace {

/**
 * Shared state of one parallelFor invocation. Completion is defined on
 * the chunks, not the spawned tasks: the chunk count is known exactly
 * up front, every sub-n cursor claim maps to exactly one chunk, and
 * the loop is done when the completed-chunk count reaches the total —
 * there is no window between claiming a chunk and being visible to the
 * completion predicate. Spawned helper tasks that only get scheduled
 * after that point see an exhausted cursor and exit immediately —
 * nobody has to wait for them, which keeps nested parallelFor calls on
 * a shared pool deadlock-free.
 */
struct LoopState
{
    u64 n = 0;
    u64 grain = 1;
    u64 total_chunks = 0;
    const std::function<void(u64, u64, unsigned)> *fn = nullptr;

    std::atomic<u64> next{0};
    Mutex mtx;
    CondVar done_cv;
    u64 completed_chunks EXMA_GUARDED_BY(mtx) = 0;
    std::exception_ptr first_error EXMA_GUARDED_BY(mtx);

    /** Claim and run chunks until the cursor is exhausted. */
    void
    participate(unsigned slot)
    {
        for (;;) {
            const u64 begin = next.fetch_add(grain);
            if (begin >= n)
                return;
            const u64 end = std::min(begin + grain, n);
            try {
                (*fn)(begin, end, slot);
            } catch (...) {
                MutexLock lock(mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
            bool last = false;
            {
                MutexLock lock(mtx);
                last = ++completed_chunks == total_chunks;
            }
            if (last)
                done_cv.notify_all();
        }
    }

    void
    waitDone()
    {
        MutexLock lock(mtx);
        while (completed_chunks != total_chunks)
            done_cv.wait(lock);
    }

    /** First chunk error, read under the lock once the loop is done. */
    std::exception_ptr
    takeError() EXMA_EXCLUDES(mtx)
    {
        MutexLock lock(mtx);
        return first_error;
    }
};

/**
 * Run [0, n) on @p pool with @p width participant slots total (the
 * caller is slot 0, helpers take 1..width-1), then rethrow the first
 * chunk error.
 */
void
runLoop(ThreadPool &pool, u64 n, u64 grain,
        const std::function<void(u64, u64, unsigned)> &fn, unsigned width)
{
    auto state = std::make_shared<LoopState>();
    state->n = n;
    state->grain = grain;
    state->total_chunks = (n + grain - 1) / grain;
    state->fn = &fn;

    const unsigned helpers = static_cast<unsigned>(
        std::min<u64>(width > 0 ? width - 1 : 0, state->total_chunks));
    for (unsigned h = 0; h < helpers; ++h)
        pool.submit([state, slot = h + 1] { state->participate(slot); });

    state->participate(0);
    state->waitDone();
    if (auto err = state->takeError())
        std::rethrow_exception(err);
}

} // namespace

void
ThreadPool::parallelFor(u64 n, u64 grain,
                        const std::function<void(u64, u64, unsigned)> &fn)
{
    if (n == 0)
        return;
    runLoop(*this, n, std::max<u64>(grain, 1), fn, slotCount());
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

unsigned
parallelForSlots(unsigned threads)
{
    if (threads == 1)
        return 1;
    const unsigned width = ThreadPool::global().slotCount();
    return threads == 0 ? width : std::min(threads, width);
}

void
parallelFor(u64 n, u64 grain,
            const std::function<void(u64, u64, unsigned)> &fn,
            unsigned threads)
{
    if (n == 0)
        return;
    grain = std::max<u64>(grain, 1);
    const unsigned width = parallelForSlots(threads);
    if (width == 1) {
        for (u64 begin = 0; begin < n; begin += grain)
            fn(begin, std::min(begin + grain, n), 0);
        return;
    }
    runLoop(ThreadPool::global(), n, grain, fn, width);
}

} // namespace exma
