/**
 * @file
 * The owned-vs-borrowed array seam behind the persistent index format.
 *
 * Every hot array of the serialized structures (PackedRank blocks,
 * KmerOccTable increments, FM-index SA samples, ...) is held through a
 * Storage<T>: a freshly built structure owns a std::vector<T>, while a
 * structure restored from an `.exma.*` file *borrows* a span that
 * points straight into a read-only mmap of the file — zero-copy, zero
 * deserialization, and N processes loading the same index share one
 * physical page-cache copy of the arrays.
 *
 * Borrowed storage never outlives its mapping: the io::Loaded* wrappers
 * (src/persist/index_io.hh) keep the MappedFile alive next to the structures
 * viewing it. Structures themselves do not know (or care) which backing
 * they run on — reads go through the same span either way.
 */

#ifndef EXMA_COMMON_STORAGE_HH
#define EXMA_COMMON_STORAGE_HH

#include <span>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace exma {

template <typename T>
class Storage
{
  public:
    Storage() = default;

    /** Owned backing: adopt @p v (the common, freshly-built case). */
    // NOLINTNEXTLINE(google-explicit-constructor): a vector *is* the
    // owned storage; implicit adoption keeps build paths unchanged.
    Storage(std::vector<T> v)
        : owned_(std::move(v)), view_(owned_)
    {
    }

    /** Borrowed backing: view @p s (an mmap held by the caller). */
    static Storage
    borrowed(std::span<const T> s)
    {
        Storage st;
        st.view_ = s;
        st.is_borrowed_ = true;
        return st;
    }

    // An owned Storage's view points into its own vector, so moves must
    // re-anchor the view instead of copying the moved-from span.
    Storage(const Storage &o)
        : owned_(o.owned_), is_borrowed_(o.is_borrowed_)
    {
        view_ = is_borrowed_ ? o.view_ : std::span<const T>(owned_);
    }
    Storage(Storage &&o) noexcept
        : owned_(std::move(o.owned_)), is_borrowed_(o.is_borrowed_)
    {
        view_ = is_borrowed_ ? o.view_ : std::span<const T>(owned_);
        o.view_ = {};
        o.is_borrowed_ = false;
    }
    Storage &
    operator=(const Storage &o)
    {
        if (this != &o) {
            owned_ = o.owned_;
            is_borrowed_ = o.is_borrowed_;
            view_ = is_borrowed_ ? o.view_ : std::span<const T>(owned_);
        }
        return *this;
    }
    Storage &
    operator=(Storage &&o) noexcept
    {
        if (this != &o) {
            owned_ = std::move(o.owned_);
            is_borrowed_ = o.is_borrowed_;
            view_ = is_borrowed_ ? o.view_ : std::span<const T>(owned_);
            o.view_ = {};
            o.is_borrowed_ = false;
        }
        return *this;
    }

    u64 size() const { return view_.size(); }
    bool empty() const { return view_.empty(); }
    const T *data() const { return view_.data(); }
    const T &operator[](u64 i) const { return view_[i]; }
    const T *begin() const { return view_.data(); }
    const T *end() const { return view_.data() + view_.size(); }
    std::span<const T> span() const { return view_; }

    /** Whether reads resolve into a borrowed mapping. */
    bool borrowed() const { return is_borrowed_; }

    /**
     * Mutable element access for build paths. Only owned storage can be
     * written — a borrowed span views a read-only mapping.
     */
    T *
    mutableData()
    {
        exma_assert(!is_borrowed_,
                    "cannot mutate borrowed (mmap-backed) storage");
        return owned_.data();
    }

  private:
    std::vector<T> owned_;
    std::span<const T> view_;
    bool is_borrowed_ = false;
};

} // namespace exma

#endif // EXMA_COMMON_STORAGE_HH
