/**
 * @file
 * A minimal header-only JSON writer for the bench harnesses: streaming
 * begin/end object-array nesting with automatic comma placement, RFC
 * 8259 string escaping, and locale-independent number formatting. No
 * parsing, no DOM — the harnesses only ever *emit* figure records.
 */

#ifndef EXMA_COMMON_JSON_HH
#define EXMA_COMMON_JSON_HH

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace exma {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject() { openContainer('{'); return *this; }
    JsonWriter &endObject() { closeContainer('}'); return *this; }
    JsonWriter &beginArray() { openContainer('['); return *this; }
    JsonWriter &endArray() { closeContainer(']'); return *this; }

    /** Emit an object key; the next emitted value belongs to it. */
    JsonWriter &
    key(const std::string &k)
    {
        separate();
        os_ << quoted(k) << ':';
        have_key_ = true;
        return *this;
    }

    JsonWriter &value(const std::string &v) { return raw(quoted(v)); }
    JsonWriter &value(const char *v) { return raw(quoted(v)); }
    JsonWriter &value(bool v) { return raw(v ? "true" : "false"); }
    JsonWriter &value(double v) { return raw(number(v)); }
    JsonWriter &
    value(u64 v)
    {
        return raw(std::to_string(v));
    }
    JsonWriter &
    value(i64 v)
    {
        return raw(std::to_string(v));
    }
    JsonWriter &value(int v) { return value(static_cast<i64>(v)); }
    JsonWriter &value(unsigned v) { return value(static_cast<u64>(v)); }
    JsonWriter &nullValue() { return raw("null"); }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** RFC 8259 string escaping (quotes included). */
    static std::string
    quoted(const std::string &s)
    {
        std::string out;
        out.reserve(s.size() + 2);
        out += '"';
        for (const char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\b': out += "\\b"; break;
                case '\f': out += "\\f"; break;
                case '\n': out += "\\n"; break;
                case '\r': out += "\\r"; break;
                case '\t': out += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x",
                                      static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
                        out += buf;
                    } else {
                        out += c;
                    }
            }
        }
        out += '"';
        return out;
    }

    /** Locale-independent double (JSON has no NaN/Inf — emit null). */
    static std::string
    number(double v)
    {
        if (!std::isfinite(v))
            return "null";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return buf;
    }

  private:
    void
    separate()
    {
        if (have_key_)
            have_key_ = false;
        else if (!needs_comma_.empty() && needs_comma_.back())
            os_ << ',';
        if (!needs_comma_.empty())
            needs_comma_.back() = true;
    }

    void
    openContainer(char c)
    {
        separate();
        os_ << c;
        needs_comma_.push_back(false);
    }

    void
    closeContainer(char c)
    {
        needs_comma_.pop_back();
        os_ << c;
    }

    JsonWriter &
    raw(const std::string &text)
    {
        separate();
        os_ << text;
        return *this;
    }

    std::ostream &os_;
    std::vector<bool> needs_comma_;
    bool have_key_ = false;
};

} // namespace exma

#endif // EXMA_COMMON_JSON_HH
