#include "common/event_sim.hh"

#include "common/logging.hh"

namespace exma {

void
EventQueue::schedule(Tick when, Callback fn)
{
    exma_assert(when >= now_, "scheduling into the past: %llu < %llu",
                (unsigned long long)when, (unsigned long long)now_);
    pq_.push(Event{when, next_seq_++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (pq_.empty())
        return false;
    // priority_queue::top() returns a const ref; move out via const_cast
    // is UB, so copy the callback handle (cheap: std::function).
    Event ev = pq_.top();
    pq_.pop();
    now_ = ev.when;
    ev.fn();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!pq_.empty() && pq_.top().when <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace exma
