#include "common/event_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

void
EventQueue::schedule(Tick when, Callback fn)
{
    exma_assert(when >= now_, "scheduling into the past: %llu < %llu",
                (unsigned long long)when, (unsigned long long)now_);
    heap_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // pop_heap parks the earliest event in back(); moving from there
    // is safe and skips the per-event std::function copy that
    // priority_queue::top()'s const ref used to force.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    ev.fn();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace exma
