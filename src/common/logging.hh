/**
 * @file
 * gem5-style status/error reporting: panic/fatal for errors, warn/inform
 * for user-visible status. printf-style formatting.
 */

#ifndef EXMA_COMMON_LOGGING_HH
#define EXMA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace exma {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrformat(const char *fmt, va_list ap);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &m);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &m);
void warnImpl(const std::string &m);
void informImpl(const std::string &m);

} // namespace detail

/**
 * panic: a condition that indicates a bug in this simulator itself
 * occurred. Aborts so a debugger/core dump can inspect the state.
 */
#define exma_panic(...) \
    ::exma::detail::panicImpl(__FILE__, __LINE__, \
                              ::exma::strformat(__VA_ARGS__))

/**
 * fatal: the simulation cannot continue due to a user-caused condition
 * (bad configuration, invalid arguments). Exits with an error code.
 */
#define exma_fatal(...) \
    ::exma::detail::fatalImpl(__FILE__, __LINE__, \
                              ::exma::strformat(__VA_ARGS__))

/** warn: something may be modelled imperfectly; simulation continues. */
#define exma_warn(...) \
    ::exma::detail::warnImpl(::exma::strformat(__VA_ARGS__))

/** inform: neutral status message for the user. */
#define exma_inform(...) \
    ::exma::detail::informImpl(::exma::strformat(__VA_ARGS__))

/** assert-like check that is kept in release builds. */
#define exma_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::exma::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: " #cond " — ") + \
                ::exma::strformat(__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Debug-only assert for per-symbol/per-lookup hot paths (Occ
 * resolution, BWT access, bit-vector reads): identical to exma_assert
 * in Debug builds (including the ASan/TSan CI jobs), compiled out —
 * condition unevaluated — under NDEBUG. Construction-time and
 * user-input checks must keep using exma_assert / exma_fatal.
 */
#ifdef NDEBUG
#define exma_dassert(cond, ...) \
    do { \
    } while (0)
#else
#define exma_dassert(cond, ...) exma_assert(cond, __VA_ARGS__)
#endif

} // namespace exma

#endif // EXMA_COMMON_LOGGING_HH
