/**
 * @file
 * Minimal deterministic discrete-event simulation core.
 *
 * Every cycle-level model in this repository (DRAM channels, the EXMA
 * accelerator pipeline, baseline device models) advances time through a
 * single EventQueue. Ticks are picoseconds (see common/types.hh), which
 * lets an 800 MHz accelerator clock (1250 ps) and a DDR4-2400 command
 * clock (833 ps) coexist without fractional cycles.
 */

#ifndef EXMA_COMMON_EVENT_SIM_HH
#define EXMA_COMMON_EVENT_SIM_HH

#include <functional>
#include <vector>

#include "common/types.hh"

namespace exma {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * fire in scheduling order (a monotone sequence number breaks ties), so
 * simulations are bit-for-bit deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Run until the queue drains. Returns the final time. */
    Tick run();

    /** Run events with time <= @p limit. Returns the current time. */
    Tick runUntil(Tick limit);

    /** Pop and execute exactly one event. Returns false if empty. */
    bool step();

  private:
    struct Event
    {
        Tick when;
        u64 seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    u64 next_seq_ = 0;
    /**
     * Min-heap on (when, seq) maintained with std::push_heap/pop_heap
     * rather than std::priority_queue: top() of a priority_queue is
     * const, so extracting an event meant either copying its
     * std::function (a heap allocation per event) or a const_cast
     * move-out (UB). pop_heap parks the minimum in back(), where it is
     * legitimately mutable and can be moved from.
     */
    std::vector<Event> heap_;
};

} // namespace exma

#endif // EXMA_COMMON_EVENT_SIM_HH
