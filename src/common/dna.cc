#include "common/dna.hh"

namespace exma {

std::vector<Base>
encodeSeq(std::string_view s)
{
    std::vector<Base> out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(charToBase(c));
    return out;
}

std::string
decodeSeq(const std::vector<Base> &seq)
{
    std::string out;
    out.reserve(seq.size());
    for (Base b : seq)
        out.push_back(baseToChar(b));
    return out;
}

std::vector<Base>
reverseComplement(const std::vector<Base> &seq)
{
    std::vector<Base> out;
    out.reserve(seq.size());
    for (auto it = seq.rbegin(); it != seq.rend(); ++it)
        out.push_back(complementBase(*it));
    return out;
}

std::string
kmerToString(Kmer m, int k)
{
    std::string s(static_cast<size_t>(k), 'A');
    for (int i = k - 1; i >= 0; --i) {
        s[static_cast<size_t>(i)] = baseToChar(static_cast<Base>(m & 3));
        m >>= 2;
    }
    return s;
}

} // namespace exma
