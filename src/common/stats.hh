/**
 * @file
 * Lightweight statistics collection, in the spirit of gem5's Stats
 * package: named scalar counters and histograms grouped into a
 * StatGroup, with a formatted dump.
 */

#ifndef EXMA_COMMON_STATS_HH
#define EXMA_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace exma {

/** A named scalar statistic (double-valued accumulator). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A simple moment-tracking distribution statistic. */
class Distribution
{
  public:
    void sample(double v);
    u64 count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    void reset();

  private:
    u64 count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A bag of named statistics. Modules own a StatGroup and register their
 * counters; harnesses read them back by name or dump the whole group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register (or fetch) a scalar statistic. */
    Scalar &scalar(const std::string &name, const std::string &desc = "");

    /** Register (or fetch) a distribution statistic. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Value of a scalar by name; 0 if absent. */
    double value(const std::string &name) const;

    /** Dump all statistics, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Reset every statistic to zero. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry { Scalar stat; std::string desc; };
    struct DistEntry { Distribution stat; std::string desc; };

    std::string name_;
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, DistEntry> dists_;
};

/**
 * Percentile summary of a sample set (used for the error-box figures).
 */
struct PercentileSummary
{
    double min = 0.0;
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    u64 count = 0;
};

/** Compute min/25/50/75/max/mean of @p samples (copied and sorted). */
PercentileSummary summarize(std::vector<double> samples);

} // namespace exma

#endif // EXMA_COMMON_STATS_HH
