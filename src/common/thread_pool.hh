/**
 * @file
 * A small fixed-size worker pool with a chunked, dynamically scheduled
 * parallelFor — the serving-side counterpart of the paper's query-level
 * parallelism (EXMA keeps hundreds of searches in flight; on the CPU we
 * fan a query batch out across hardware threads).
 *
 * Scheduling is "work-stealing-ish": parallelFor publishes one shared
 * atomic cursor over [0, n) and every participant (each worker plus the
 * calling thread) repeatedly claims the next `grain`-sized chunk, so a
 * straggler chunk never serialises the tail the way static striping
 * would. Each participant is handed a stable slot index, which callers
 * use for mutex-free per-thread accumulation (e.g. SearchStats).
 */

#ifndef EXMA_COMMON_THREAD_POOL_HH
#define EXMA_COMMON_THREAD_POOL_HH

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace exma {

/** std::thread::hardware_concurrency with a sane floor of 1. */
unsigned hardwareThreads();

class ThreadPool
{
  public:
    /**
     * @param threads number of worker threads; 0 picks
     *        hardwareThreads(). A pool of 1 still spawns one worker so
     *        pool semantics (asynchrony, slot indices) stay uniform.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Number of participant slots parallelFor may hand out: one per
     * worker plus one for the calling thread.
     */
    unsigned slotCount() const { return threadCount() + 1; }

    /** Enqueue a fire-and-forget task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Run `fn(begin, end, slot)` over disjoint chunks covering [0, n),
     * `grain` indices at a time, on the workers plus the calling
     * thread. `slot` < slotCount() is stable per participant for the
     * duration of the call. Chunks are claimed dynamically; the call
     * returns once all of [0, n) is processed. The first exception
     * thrown by any chunk is rethrown here (remaining chunks are
     * drained, not cancelled mid-chunk).
     */
    void parallelFor(u64 n, u64 grain,
                     const std::function<void(u64, u64, unsigned)> &fn);

    /** Process-wide shared pool (created on first use). */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    Mutex mtx_;
    CondVar task_ready_;
    CondVar idle_;
    std::deque<std::function<void()>> tasks_ EXMA_GUARDED_BY(mtx_);
    u64 unfinished_ EXMA_GUARDED_BY(mtx_) = 0; ///< queued + running tasks
    bool stop_ EXMA_GUARDED_BY(mtx_) = false;
};

/**
 * Convenience wrapper over ThreadPool::global(): chunked parallel loop
 * over [0, n) with `fn(begin, end, slot)`. `threads` == 1 runs inline
 * on the caller (slot 0) with no synchronisation at all; `threads` == 0
 * uses the global pool at full width. When `threads` is smaller than
 * the global pool only that many slots participate, so per-slot
 * accumulators sized with parallelForSlots() see the reduced width.
 */
void parallelFor(u64 n, u64 grain,
                 const std::function<void(u64, u64, unsigned)> &fn,
                 unsigned threads = 0);

/** Slot-array size needed by parallelFor() for a given thread request. */
unsigned parallelForSlots(unsigned threads = 0);

} // namespace exma

#endif // EXMA_COMMON_THREAD_POOL_HH
