/**
 * @file
 * Per-search instrumentation counters shared by every search engine
 * (ExmaTable, KStepFmIndex) and their timing models. A SearchStats is a
 * plain per-call value object — callers own one per search (or one per
 * worker thread in a batched run) and merge with operator+=, so the
 * search engines themselves stay const and freely shareable across
 * threads.
 */

#ifndef EXMA_COMMON_SEARCH_STATS_HH
#define EXMA_COMMON_SEARCH_STATS_HH

#include "common/types.hh"

namespace exma {

struct SearchStats
{
    u64 kstep_iterations = 0;   ///< k-symbol Occ-pair iterations
    u64 onestep_iterations = 0; ///< remainder 1-symbol iterations
    u64 total_error = 0;        ///< summed index misprediction distance
    u64 total_probes = 0;       ///< summed local-search probes
    u64 model_lookups = 0;      ///< Occ lookups resolved by a model

    SearchStats &
    operator+=(const SearchStats &o)
    {
        kstep_iterations += o.kstep_iterations;
        onestep_iterations += o.onestep_iterations;
        total_error += o.total_error;
        total_probes += o.total_probes;
        model_lookups += o.model_lookups;
        return *this;
    }

    friend SearchStats
    operator+(SearchStats a, const SearchStats &b)
    {
        a += b;
        return a;
    }

    bool operator==(const SearchStats &) const = default;

    void reset() { *this = SearchStats{}; }

    /** Mean misprediction distance per Occ lookup (2 per k-step). */
    double
    meanError() const
    {
        const u64 lookups = 2 * kstep_iterations;
        return lookups ? static_cast<double>(total_error) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

} // namespace exma

#endif // EXMA_COMMON_SEARCH_STATS_HH
