/**
 * @file
 * DNA alphabet utilities.
 *
 * Two codings are used throughout the code base:
 *  - base coding: A,C,G,T -> 0..3 (used for reads, k-mers, references);
 *  - BWT coding:  $,A,C,G,T -> 0..4 (used when a sentinel is required).
 *
 * k-mers are packed 2 bits per base with the FIRST base in the most
 * significant position, so unsigned integer order equals lexicographic
 * order for a fixed k.
 */

#ifndef EXMA_COMMON_DNA_HH
#define EXMA_COMMON_DNA_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace exma {

/** A single DNA base coded 0..3 (A,C,G,T). */
using Base = u8;

/** A packed k-mer, 2 bits per base, first base most significant. */
using Kmer = u64;

/** Number of plain DNA symbols. */
constexpr int kDnaAlphabet = 4;

/** Number of BWT symbols ($,A,C,G,T). */
constexpr int kBwtAlphabet = 5;

/** Character for each base code. */
constexpr char kBaseChars[kDnaAlphabet] = {'A', 'C', 'G', 'T'};

/**
 * Map an ASCII base character to its 0..3 code.
 * Unknown/ambiguous characters (e.g.\ 'N') map to 0 ('A').
 */
inline Base
charToBase(char c)
{
    switch (c) {
        case 'A': case 'a': return 0;
        case 'C': case 'c': return 1;
        case 'G': case 'g': return 2;
        case 'T': case 't': return 3;
        default: return 0;
    }
}

/** Map a 0..3 base code back to its ASCII character. */
inline char
baseToChar(Base b)
{
    return kBaseChars[b & 3];
}

/** Watson-Crick complement of a 0..3 base code. */
inline Base
complementBase(Base b)
{
    return static_cast<Base>(3 - b);
}

/** Encode an ASCII DNA string into 0..3 base codes. */
std::vector<Base> encodeSeq(std::string_view s);

/** Decode 0..3 base codes into an ASCII DNA string. */
std::string decodeSeq(const std::vector<Base> &seq);

/** Reverse complement of a base-coded sequence. */
std::vector<Base> reverseComplement(const std::vector<Base> &seq);

/** Pack k bases (first base most significant) into an integer k-mer. */
inline Kmer
packKmer(const Base *bases, int k)
{
    Kmer m = 0;
    for (int i = 0; i < k; ++i)
        m = (m << 2) | (bases[i] & 3);
    return m;
}

/** Unpack an integer k-mer into k base codes. */
inline void
unpackKmer(Kmer m, int k, Base *out)
{
    for (int i = k - 1; i >= 0; --i) {
        out[i] = static_cast<Base>(m & 3);
        m >>= 2;
    }
}

/** Human-readable form of a packed k-mer. */
std::string kmerToString(Kmer m, int k);

/** Number of distinct k-mers for a given k (4^k). */
inline u64
kmerSpace(int k)
{
    return u64{1} << (2 * k);
}

} // namespace exma

#endif // EXMA_COMMON_DNA_HH
