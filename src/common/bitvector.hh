/**
 * @file
 * Succinct bit vector with O(1) rank queries.
 *
 * Used by the FM-Index locate machinery (sampled suffix-array rows) and
 * anywhere a compact marked-set with rank is needed. Layout: raw 64-bit
 * words plus a cumulative popcount checkpoint every 8 words (512 bits).
 * Both arrays sit behind Storage<u64> so a restored index can point
 * them straight into an mmap'd `.exma.sa` section.
 */

#ifndef EXMA_COMMON_BITVECTOR_HH
#define EXMA_COMMON_BITVECTOR_HH

#include <span>
#include <vector>

#include "common/logging.hh"
#include "common/storage.hh"
#include "common/types.hh"

namespace exma {

class BitVector
{
  public:
    BitVector() = default;

    /** Create an all-zero bit vector of @p n bits. */
    explicit BitVector(u64 n);

    /**
     * Restore from serialized parts (src/io/index_io.cc): @p words and
     * @p super are typically borrowed from an mmap'd section and must
     * already satisfy the buildRank() invariants.
     */
    BitVector(u64 n_bits, u64 ones, Storage<u64> words, Storage<u64> super);

    /** Number of bits. */
    u64 size() const { return n_bits_; }

    /** Set bit @p i to 1. Invalidates rank checkpoints until build(). */
    void set(u64 i);

    /** Read bit @p i. Bounds-checked in Debug builds only (hot path). */
    bool
    get(u64 i) const
    {
        exma_dassert(i < n_bits_, "bit index %llu out of range %llu",
                     (unsigned long long)i, (unsigned long long)n_bits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Build rank checkpoints; must be called after the last set(). */
    void buildRank();

    /** Number of 1-bits in [0, i). Requires buildRank() first. */
    u64 rank1(u64 i) const;

    /** Total number of 1-bits. */
    u64 ones() const { return ones_; }

    /** Raw word array (serialization). */
    std::span<const u64> words() const { return words_.span(); }

    /** Rank checkpoint array (serialization). */
    std::span<const u64> superWords() const { return super_.span(); }

    /** Approximate heap footprint in bytes. */
    u64 sizeBytes() const;

  private:
    u64 n_bits_ = 0;
    u64 ones_ = 0;
    Storage<u64> words_;
    Storage<u64> super_; ///< cumulative popcount before each 8-word block
};

} // namespace exma

#endif // EXMA_COMMON_BITVECTOR_HH
