/**
 * @file
 * Succinct bit vector with O(1) rank queries.
 *
 * Used by the FM-Index locate machinery (sampled suffix-array rows) and
 * anywhere a compact marked-set with rank is needed. Layout: raw 64-bit
 * words plus a cumulative popcount checkpoint every 8 words (512 bits).
 */

#ifndef EXMA_COMMON_BITVECTOR_HH
#define EXMA_COMMON_BITVECTOR_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace exma {

class BitVector
{
  public:
    BitVector() = default;

    /** Create an all-zero bit vector of @p n bits. */
    explicit BitVector(u64 n);

    /** Number of bits. */
    u64 size() const { return n_bits_; }

    /** Set bit @p i to 1. Invalidates rank checkpoints until build(). */
    void set(u64 i);

    /** Read bit @p i. Bounds-checked in Debug builds only (hot path). */
    bool
    get(u64 i) const
    {
        exma_dassert(i < n_bits_, "bit index %llu out of range %llu",
                     (unsigned long long)i, (unsigned long long)n_bits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Build rank checkpoints; must be called after the last set(). */
    void buildRank();

    /** Number of 1-bits in [0, i). Requires buildRank() first. */
    u64 rank1(u64 i) const;

    /** Total number of 1-bits. */
    u64 ones() const { return ones_; }

    /** Approximate heap footprint in bytes. */
    u64 sizeBytes() const;

  private:
    u64 n_bits_ = 0;
    u64 ones_ = 0;
    std::vector<u64> words_;
    std::vector<u64> super_; ///< cumulative popcount before each 8-word block
};

} // namespace exma

#endif // EXMA_COMMON_BITVECTOR_HH
