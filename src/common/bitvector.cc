#include "common/bitvector.hh"

#include <bit>

#include "common/logging.hh"

namespace exma {

BitVector::BitVector(u64 n)
    : n_bits_(n), words_(std::vector<u64>((n + 63) / 64, 0))
{
}

BitVector::BitVector(u64 n_bits, u64 ones, Storage<u64> words,
                     Storage<u64> super)
    : n_bits_(n_bits), ones_(ones), words_(std::move(words)),
      super_(std::move(super))
{
    exma_assert(words_.size() == (n_bits_ + 63) / 64,
                "bitvector restore: %llu words cannot cover %llu bits",
                (unsigned long long)words_.size(),
                (unsigned long long)n_bits_);
    exma_assert(super_.size() == (words_.size() + 7) / 8 + 1,
                "bitvector restore: rank checkpoint array truncated");
    exma_assert(super_[super_.size() - 1] == ones_,
                "bitvector restore: checkpoint total disagrees with ones");
}

void
BitVector::set(u64 i)
{
    exma_assert(i < n_bits_, "bit index %llu out of range %llu",
                (unsigned long long)i, (unsigned long long)n_bits_);
    words_.mutableData()[i >> 6] |= (u64{1} << (i & 63));
}

void
BitVector::buildRank()
{
    const u64 n_blocks = (words_.size() + 7) / 8;
    std::vector<u64> super(n_blocks + 1, 0);
    u64 acc = 0;
    for (u64 b = 0; b < n_blocks; ++b) {
        super[b] = acc;
        const u64 lo = b * 8;
        const u64 hi = std::min<u64>(lo + 8, words_.size());
        for (u64 w = lo; w < hi; ++w)
            acc += static_cast<u64>(std::popcount(words_[w]));
    }
    super[n_blocks] = acc;
    ones_ = acc;
    super_ = Storage<u64>(std::move(super));
}

u64
BitVector::rank1(u64 i) const
{
    // Hot path (every locate step resolves through here): Debug-only,
    // like get() — construction-time checks in set()/buildRank() keep
    // exma_assert.
    exma_dassert(i <= n_bits_, "rank index %llu out of range %llu",
                 (unsigned long long)i, (unsigned long long)n_bits_);
    const u64 word = i >> 6;
    const u64 block = word >> 3;
    u64 r = super_[block];
    for (u64 w = block * 8; w < word; ++w)
        r += static_cast<u64>(std::popcount(words_[w]));
    const u64 bit = i & 63;
    if (bit)
        r += static_cast<u64>(std::popcount(words_[word] &
                                            ((u64{1} << bit) - 1)));
    return r;
}

u64
BitVector::sizeBytes() const
{
    return words_.size() * 8 + super_.size() * 8 + sizeof(*this);
}

} // namespace exma
