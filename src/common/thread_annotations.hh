/**
 * @file
 * Clang thread-safety analysis support: the EXMA_* capability macro set
 * and an annotated mutex/lock pair used by every class with shared
 * mutable state (ThreadPool, parallelFor's LoopState, ...).
 *
 * With Clang and -Wthread-safety the compiler proves, per translation
 * unit, that every read/write of an EXMA_GUARDED_BY member happens with
 * its mutex held — an unguarded access is a build break in the clang CI
 * leg (which adds -Werror), before a single test interleaving runs.
 * Under GCC and other compilers every macro expands to nothing, so the
 * annotations are zero-cost everywhere and never gate portability.
 *
 * Conventions:
 *  - shared mutable members are declared with EXMA_GUARDED_BY(mtx_);
 *  - locking is via exma::Mutex + scoped exma::MutexLock, never a bare
 *    std::mutex (tools/lint/exma_lint.py enforces this tree-wide);
 *  - condition variables wait on MutexLock::native() with an explicit
 *    `while (!predicate) cv.wait(...)` loop, so the predicate reads are
 *    analysed in the annotated function body itself;
 *  - helper functions that assume a held lock are annotated
 *    EXMA_REQUIRES(mtx_) instead of re-locking.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef EXMA_COMMON_THREAD_ANNOTATIONS_HH
#define EXMA_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define EXMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EXMA_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a class as a lockable capability (mutexes). */
#define EXMA_CAPABILITY(x) EXMA_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define EXMA_SCOPED_CAPABILITY EXMA_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be accessed while holding the given capability. */
#define EXMA_GUARDED_BY(x) EXMA_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding the given capability. */
#define EXMA_PT_GUARDED_BY(x) EXMA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability (and must not already hold it). */
#define EXMA_ACQUIRE(...) \
    EXMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability (and must hold it on entry). */
#define EXMA_RELEASE(...) \
    EXMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function tries to acquire; first argument is the success value. */
#define EXMA_TRY_ACQUIRE(...) \
    EXMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must hold the capability for the duration of the call. */
#define EXMA_REQUIRES(...) \
    EXMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock prevention). */
#define EXMA_EXCLUDES(...) EXMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (no acquire). */
#define EXMA_ASSERT_CAPABILITY(x) EXMA_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given capability. */
#define EXMA_RETURN_CAPABILITY(x) EXMA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis for one function (rationale required). */
#define EXMA_NO_THREAD_SAFETY_ANALYSIS \
    EXMA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace exma {

/**
 * std::mutex with the capability annotation the analysis needs. Same
 * size and cost as std::mutex; the class exists only so EXMA_GUARDED_BY
 * members have a named capability to reference.
 */
class EXMA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() EXMA_ACQUIRE() { mtx_.lock(); }
    void unlock() EXMA_RELEASE() { mtx_.unlock(); }
    bool try_lock() EXMA_TRY_ACQUIRE(true) { return mtx_.try_lock(); }

    /**
     * The wrapped std::mutex, for std::condition_variable plumbing via
     * MutexLock::native(). Lock/unlock through the wrapper, never
     * through this reference, or the analysis loses track.
     */
    std::mutex &native() { return mtx_; }

  private:
    std::mutex mtx_;
};

/**
 * Scoped lock over an exma::Mutex (the std::lock_guard/unique_lock of
 * this codebase). Exposes the underlying std::unique_lock so condition
 * variables can wait while the analysis still tracks the capability as
 * held across the wait — which matches the invariant the wait loop
 * re-establishes before touching guarded state.
 */
class EXMA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) EXMA_ACQUIRE(m) : lock_(m.native()) {}
    ~MutexLock() EXMA_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** For std::condition_variable::wait only. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable that waits on a MutexLock directly, so no call
 * site ever touches the raw std::condition_variable / unique_lock
 * seam (exma_lint's mutex-annotations rule bans the raw type outside
 * this header, like it bans bare std::mutex). Waiting with the lock
 * is the one blocking operation that is legitimate inside a critical
 * section — the blocked-under-lock analyzer exempts exactly this
 * shape (the waited lock spelled in the argument list) and still
 * flags a wait that holds any *other* mutex.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(MutexLock &lock) { cv_.wait(lock.native()); }

    template <typename Pred> void wait(MutexLock &lock, Pred pred)
    {
        cv_.wait(lock.native(), std::move(pred));
    }

    template <typename Rep, typename Period>
    std::cv_status wait_for(MutexLock &lock,
                            const std::chrono::duration<Rep, Period> &d)
    {
        return cv_.wait_for(lock.native(), d);
    }

    template <typename Rep, typename Period, typename Pred>
    bool wait_for(MutexLock &lock,
                  const std::chrono::duration<Rep, Period> &d, Pred pred)
    {
        return cv_.wait_for(lock.native(), d, std::move(pred));
    }

    template <typename Clock, typename Duration>
    std::cv_status
    wait_until(MutexLock &lock,
               const std::chrono::time_point<Clock, Duration> &tp)
    {
        return cv_.wait_until(lock.native(), tp);
    }

    template <typename Clock, typename Duration, typename Pred>
    bool wait_until(MutexLock &lock,
                    const std::chrono::time_point<Clock, Duration> &tp,
                    Pred pred)
    {
        return cv_.wait_until(lock.native(), tp, std::move(pred));
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace exma

#endif // EXMA_COMMON_THREAD_ANNOTATIONS_HH
