/**
 * @file
 * Fundamental integer typedefs shared across the EXMA code base.
 */

#ifndef EXMA_COMMON_TYPES_HH
#define EXMA_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace exma {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Index into a genome reference / BW-matrix row number. */
using TextIndex = u64;

/** Simulated time in picoseconds. */
using Tick = u64;

/** One picosecond-denominated tick per nanosecond. */
constexpr Tick kTicksPerNs = 1000;

/** Convert a frequency in MHz to the clock period in ticks (ps). */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz);
}

} // namespace exma

#endif // EXMA_COMMON_TYPES_HH
