#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

namespace exma {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    double m = mean();
    return sum_sq_ / count_ - m * m;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = sum_sq_ = min_ = max_ = 0.0;
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    auto &e = scalars_[name];
    if (e.desc.empty() && !desc.empty())
        e.desc = desc;
    return e.stat;
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    auto &e = dists_[name];
    if (e.desc.empty() && !desc.empty())
        e.desc = desc;
    return e.stat;
}

double
StatGroup::value(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second.stat.value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, e] : scalars_) {
        os << std::left << std::setw(44) << (name_ + "." + name)
           << std::right << std::setw(16) << e.stat.value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &[name, e] : dists_) {
        os << std::left << std::setw(44) << (name_ + "." + name)
           << " count=" << e.stat.count()
           << " mean=" << e.stat.mean()
           << " min=" << e.stat.min()
           << " max=" << e.stat.max();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, e] : scalars_)
        e.stat.reset();
    for (auto &[name, e] : dists_)
        e.stat.reset();
}

PercentileSummary
summarize(std::vector<double> samples)
{
    PercentileSummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    auto at = [&](double q) {
        double idx = q * static_cast<double>(samples.size() - 1);
        size_t lo = static_cast<size_t>(idx);
        size_t hi = std::min(lo + 1, samples.size() - 1);
        double frac = idx - static_cast<double>(lo);
        return samples[lo] * (1.0 - frac) + samples[hi] * frac;
    };
    s.min = samples.front();
    s.max = samples.back();
    s.p25 = at(0.25);
    s.p50 = at(0.50);
    s.p75 = at(0.75);
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / static_cast<double>(samples.size());
    s.count = samples.size();
    return s;
}

} // namespace exma
