/**
 * @file
 * Fixed-width text table printer used by the benchmark harnesses to
 * emit paper-style rows.
 */

#ifndef EXMA_COMMON_TABLE_HH
#define EXMA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace exma {

class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Format a double with @p prec digits after the point. */
    static std::string num(double v, int prec = 2);

    /** Format a byte count as B/KB/MB/GB with two decimals. */
    static std::string bytes(double v);

    /** Raw cells, for machine-readable re-emission (bench JSON). */
    const std::vector<std::string> &headerCells() const { return header_; }
    const std::vector<std::vector<std::string>> &rowCells() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace exma

#endif // EXMA_COMMON_TABLE_HH
