/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the code base flows through these
 * generators so that every test, example and benchmark is reproducible
 * from a seed. SplitMix64 is used for seeding; Xoshiro256** is the
 * workhorse generator.
 */

#ifndef EXMA_COMMON_RNG_HH
#define EXMA_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/types.hh"

namespace exma {

/** SplitMix64: tiny generator used to expand a seed. */
class SplitMix64
{
  public:
    explicit SplitMix64(u64 seed) : state_(seed) {}

    u64
    next()
    {
        u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    u64 state_;
};

/** Xoshiro256**: fast, high-quality 64-bit PRNG. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL)
    {
        SplitMix64 sm(seed);
        for (auto &w : s_)
            w = sm.next();
    }

    /** Uniform 64-bit word. */
    u64
    next()
    {
        u64 result = rotl(s_[1] * 5, 7) * 9;
        u64 t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    u64
    below(u64 n)
    {
        // Lemire-style rejection-free-ish reduction; bias is negligible
        // for n << 2^64 and acceptable for simulation workloads.
        return static_cast<u64>((static_cast<unsigned __int128>(next()) *
                                 static_cast<unsigned __int128>(n)) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller. */
    double
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 6.28318530717958647692 * u2;
        spare_ = r * std::sin(theta);
        have_spare_ = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean/stddev. */
    double
    normal(double mean, double sd)
    {
        return mean + sd * normal();
    }

    /** Geometric-ish integer >= 1 with success probability p. */
    u64
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        double u = uniform();
        if (u < 1e-300)
            u = 1e-300;
        return 1 + static_cast<u64>(std::log(u) / std::log(1.0 - p));
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace exma

#endif // EXMA_COMMON_RNG_HH
