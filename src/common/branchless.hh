/**
 * @file
 * Branchless search primitives for the rank/Occ hot paths.
 *
 * Every k-step iteration of an EXMA search resolves two Occ lookups by
 * rank-searching a sorted increment list. `std::lower_bound` spends one
 * hard-to-predict branch per probe (the comparison outcome is
 * essentially a coin flip on random queries), so each lookup eats
 * several mispredicts on top of its cache misses. The helpers here are
 * the shared replacement for every increment-list search site:
 *
 *  - branchlessLowerBound(): the classic monotone-bound binary search
 *    expressed so the comparison compiles to a conditional move, with
 *    software prefetch of both possible next probes;
 *  - probeCount(): integer probe accounting, bit-exact with the old
 *    per-lookup `ceil(log2(n + 1))` floating-point formula.
 */

#ifndef EXMA_COMMON_BRANCHLESS_HH
#define EXMA_COMMON_BRANCHLESS_HH

#include <bit>
#include <cstddef>
#include <span>

#include "common/types.hh"

namespace exma {

/**
 * First position in the sorted range [first, last) whose value is >= @p
 * key — identical result (leftmost match) to std::lower_bound, but the
 * halving step is a conditional move rather than a branch, and the two
 * candidate next probes are prefetched while the current one resolves.
 */
inline const u32 *
branchlessLowerBound(const u32 *first, const u32 *last, u32 key)
{
    size_t n = static_cast<size_t>(last - first);
    if (n == 0)
        return first;
    const u32 *base = first;
    while (n > 1) {
        const size_t half = n / 2;
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(base + half / 2);
        __builtin_prefetch(base + half + half / 2);
#endif
        base = base[half] < key ? base + half : base; // cmov
        n -= half;
    }
    return base + (*base < key);
}

/** Rank of @p key in a sorted list: lower-bound position as a count. */
inline u64
lowerBoundRank(std::span<const u32> sorted, u32 key)
{
    return static_cast<u64>(
        branchlessLowerBound(sorted.data(), sorted.data() + sorted.size(),
                             key) -
        sorted.data());
}

/**
 * Worst-case probe count of a binary search over @p n entries:
 * bit_width(n) == ceil(log2(n + 1)), computed without touching the FPU.
 * (Equality: for 2^(b-1) <= n < 2^b both sides are b; for n == 0 both
 * are 0.) This is the instrumented `probes` figure charged to every
 * non-modelled Occ lookup.
 */
inline u64
probeCount(u64 n)
{
    return static_cast<u64>(std::bit_width(n));
}

} // namespace exma

#endif // EXMA_COMMON_BRANCHLESS_HH
