#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace exma {

std::string
vstrformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrformat(fmt, ap);
    va_end(ap);
    return s;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", m.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", m.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &m)
{
    std::fprintf(stderr, "warn: %s\n", m.c_str());
}

void
informImpl(const std::string &m)
{
    std::fprintf(stdout, "info: %s\n", m.c_str());
}

} // namespace detail
} // namespace exma
