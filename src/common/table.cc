#include "common/table.hh"

#include <algorithm>
#include <cstdio>

namespace exma {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string c = i < cells.size() ? cells[i] : "";
            os << c << std::string(widths[i] - c.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::bytes(double v)
{
    const char *unit = "B";
    if (v >= 1e9) { v /= 1e9; unit = "GB"; }
    else if (v >= 1e6) { v /= 1e6; unit = "MB"; }
    else if (v >= 1e3) { v /= 1e3; unit = "KB"; }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, unit);
    return buf;
}

} // namespace exma
