/**
 * @file
 * Save / load of whole indexes: a directory holding an
 * `index.exma.manifest` (kind, configs, serialized ShardPlan,
 * per-shard state) plus `table.exma.*` for a monolithic index or
 * `shardNNNN.exma.*` per shard for sharded / routed ones (scan shards
 * carry only the `.pac`). Single-table companion files are the layer
 * below, io/table_io.hh — this layer adds the manifest and the
 * shard-plan/router wiring, which is why it lives *above* route/shard
 * in the module DAG (src/persist) while the table layer stays below.
 *
 * Loading mmaps the files read-only and points the restored
 * structures' hot arrays straight into the mappings, so LoadedIndex
 * holds the MappedFiles alongside the structures and must stay alive
 * as long as the index serves. A routed index loaded from a directory
 * remembers that directory in its RouterConfig, so switching the
 * router to the socket transport serves the *same* files to
 * out-of-process workers with no re-save.
 */

#ifndef EXMA_PERSIST_INDEX_IO_HH
#define EXMA_PERSIST_INDEX_IO_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/table_io.hh"
#include "route/shard_router.hh"
#include "shard/sharded_table.hh"

namespace exma {

/** Index kinds a directory manifest can describe. */
enum class IndexKind : u32
{
    Mono = 0,        ///< one ExmaTable
    ShardedText = 1, ///< ShardedExmaTable (broadcast serving)
    Routed = 2,      ///< ShardRouter (prefix-routed serving)
};

/**
 * Save a whole index into directory @p dir (created if absent):
 * manifest + per-table companion files. The ExmaTable overload also
 * takes the text it was built over for the `.pac` text echo (may be
 * empty). The ShardedExmaTable / ShardRouter overloads read everything
 * they need from the structures themselves.
 */
void saveIndex(const ExmaTable &table, std::span<const Base> local_text,
               const std::string &dir);
void saveIndex(const ShardedExmaTable &sharded, const std::string &dir);
void saveIndex(const ShardRouter &router, const std::string &dir);

/**
 * A loaded index of any kind. Exactly one of table / sharded / router
 * is set, matching kind. files backs every borrowed hot array and is
 * declared first so the structures are destroyed before the mappings.
 */
struct LoadedIndex
{
    std::vector<MappedFile> files;
    IndexKind kind = IndexKind::Mono;
    std::unique_ptr<ExmaTable> table;
    std::unique_ptr<ShardedExmaTable> sharded;
    std::unique_ptr<ShardRouter> router;
    /** Wall-clock seconds of the whole load (mmap + restore). */
    double load_seconds = 0.0;
};

/**
 * Load whatever index directory @p dir holds; throws LoadError on any
 * defect (missing/truncated/corrupt/version-mismatched files). The
 * sharded/routed structures report load_seconds as buildSeconds().
 */
LoadedIndex loadIndex(const std::string &dir);

} // namespace exma

#endif // EXMA_PERSIST_INDEX_IO_HH
