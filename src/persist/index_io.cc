#include "persist/index_io.hh"

#include <chrono>
#include <filesystem>
#include <utility>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "io/format.hh"

namespace exma {

namespace {

using io_detail::getTableConfig;
using io_detail::probeLoadFaults;
using io_detail::putTableConfig;
using io_detail::shardStem;
using io_detail::writeBlob;

constexpr u32 kManifestMeta = 1; ///< whole-index description blob

// --- shard plan ---------------------------------------------------------

void
putPlan(BlobWriter &w, const ShardPlan &plan)
{
    w.putU64(plan.size());
    for (const Shard &s : plan.shards()) {
        w.putString(s.name);
        w.putU64(s.begin);
        w.putU64(s.length);
    }
    w.putU32(static_cast<u32>(plan.kind()));
    w.putU64(plan.refLength());
    w.putU64(plan.overlap());
    w.putU64(plan.maxQueryLen());
    w.putI32(plan.prefixLen());
    w.putU64(plan.prefixRanges().size());
    for (const PrefixRange &r : plan.prefixRanges()) {
        w.putU64(r.lo);
        w.putU64(r.hi);
    }
    if (plan.kind() == ShardPlanKind::KmerPrefix) {
        for (size_t s = 0; s < plan.size(); ++s) {
            const auto &segs = plan.segmentsOf(s);
            w.putU64(segs.size());
            for (const TextSegment &seg : segs) {
                w.putU64(seg.global_begin);
                w.putU64(seg.local_begin);
                w.putU64(seg.length);
            }
        }
    }
}

ShardPlan
getPlan(BlobReader &r)
{
    const u64 n_shards = r.getU64();
    std::vector<Shard> shards(n_shards);
    for (Shard &s : shards) {
        s.name = r.getString();
        s.begin = r.getU64();
        s.length = r.getU64();
    }
    const u32 kind_raw = r.getU32();
    if (kind_raw > static_cast<u32>(ShardPlanKind::KmerPrefix))
        throw LoadError(r.context() + ": unknown shard-plan kind " +
                        std::to_string(kind_raw));
    const auto kind = static_cast<ShardPlanKind>(kind_raw);
    const u64 ref_len = r.getU64();
    const u64 overlap = r.getU64();
    const u64 max_query_len = r.getU64();
    const int prefix_len = r.getI32();
    const u64 n_ranges = r.getU64();
    std::vector<PrefixRange> ranges(n_ranges);
    for (PrefixRange &pr : ranges) {
        pr.lo = r.getU64();
        pr.hi = r.getU64();
    }
    std::vector<std::vector<TextSegment>> segments;
    if (kind == ShardPlanKind::KmerPrefix) {
        segments.resize(n_shards);
        for (auto &segs : segments) {
            segs.resize(r.getU64());
            for (TextSegment &seg : segs) {
                seg.global_begin = r.getU64();
                seg.local_begin = r.getU64();
                seg.length = r.getU64();
            }
        }
    }
    return ShardPlan::restore(std::move(shards), kind, ref_len, overlap,
                              max_query_len, prefix_len,
                              std::move(ranges), std::move(segments));
}

// --- helpers ------------------------------------------------------------

void
saveManifest(const std::string &dir, const BlobWriter &w)
{
    std::filesystem::create_directories(dir);
    FileBuilder fb(kMagicManifest);
    writeBlob(fb, kManifestMeta, w);
    fb.save(dir + "/" + kManifestName);
}

/** Per-shard worker state bytes in a routed manifest. */
constexpr u32 kShardEmpty = 0;
constexpr u32 kShardScan = 1;
constexpr u32 kShardTable = 2;

/** The per-shard segment maps the building ShardRouter derives. */
std::vector<std::vector<TextSegment>>
routerSegments(const ShardPlan &plan)
{
    std::vector<std::vector<TextSegment>> segments(plan.size());
    for (size_t s = 0; s < plan.size(); ++s) {
        if (plan.kind() == ShardPlanKind::KmerPrefix) {
            segments[s] = plan.segmentsOf(s);
        } else {
            const Shard &sh = plan.shards()[s];
            segments[s] = {TextSegment{sh.begin, 0, sh.length}};
        }
    }
    return segments;
}

} // namespace

// --- whole-index directories --------------------------------------------

void
saveIndex(const ExmaTable &table, std::span<const Base> local_text,
          const std::string &dir)
{
    BlobWriter w;
    w.putU32(static_cast<u32>(IndexKind::Mono));
    saveManifest(dir, w);
    saveTableFiles(table, dir + "/table", local_text);
}

void
saveIndex(const ShardedExmaTable &sharded, const std::string &dir)
{
    BlobWriter w;
    w.putU32(static_cast<u32>(IndexKind::ShardedText));
    putTableConfig(w, sharded.config().table);
    w.putU32(sharded.config().build_threads);
    putPlan(w, sharded.plan());
    saveManifest(dir, w);
    for (size_t s = 0; s < sharded.shardCount(); ++s)
        saveTableFiles(sharded.table(s), shardStem(dir, s));
}

void
saveIndex(const ShardRouter &router, const std::string &dir)
{
    const ShardPlan &plan = router.plan();
    BlobWriter w;
    w.putU32(static_cast<u32>(IndexKind::Routed));
    putTableConfig(w, router.config().table);
    w.putU32(router.config().build_threads);
    w.putU32(router.config().force_broadcast ? 1 : 0);
    w.putU64(router.config().min_table_bases);
    putPlan(w, plan);
    w.putU64(plan.size());
    for (size_t s = 0; s < plan.size(); ++s) {
        const u32 state = router.shardTable(s) != nullptr ? kShardTable
                          : !router.shardScanRef(s).empty() ? kShardScan
                                                            : kShardEmpty;
        w.putU32(state);
    }
    saveManifest(dir, w);
    for (size_t s = 0; s < plan.size(); ++s) {
        if (router.shardTable(s) != nullptr)
            saveTableFiles(*router.shardTable(s), shardStem(dir, s));
        else if (!router.shardScanRef(s).empty())
            saveScanFiles(router.shardScanRef(s),
                          router.shardSegments(s), shardStem(dir, s));
    }
}

LoadedIndex
loadIndex(const std::string &dir)
{
    installFaultInjectorFromEnvOnce();
    const auto t0 = std::chrono::steady_clock::now();
    LoadedIndex out;

    const std::string manifest_path = dir + "/" + kManifestName;
    probeLoadFaults(manifest_path);
    const MappedFile manifest(manifest_path);
    const FileView view(manifest, kMagicManifest);
    const std::vector<u8> blob = view.readBlob(kManifestMeta);
    BlobReader r(blob, manifest_path);

    const u32 kind_raw = r.getU32();
    if (kind_raw > static_cast<u32>(IndexKind::Routed))
        throw LoadError(manifest_path + ": unknown index kind " +
                        std::to_string(kind_raw));
    out.kind = static_cast<IndexKind>(kind_raw);

    switch (out.kind) {
    case IndexKind::Mono: {
        r.finish();
        LoadedExmaTable t = loadTableFiles(dir + "/table");
        out.files = std::move(t.files);
        out.table = std::move(t.table);
        break;
    }
    case IndexKind::ShardedText: {
        ShardedExmaTable::Config cfg;
        cfg.table = getTableConfig(r);
        cfg.build_threads = r.getU32();
        ShardPlan plan = getPlan(r);
        r.finish();
        std::vector<std::unique_ptr<ExmaTable>> tables;
        tables.reserve(plan.size());
        for (size_t s = 0; s < plan.size(); ++s) {
            LoadedExmaTable t = loadTableFiles(shardStem(dir, s));
            for (MappedFile &f : t.files)
                out.files.push_back(std::move(f));
            tables.push_back(std::move(t.table));
        }
        // load_seconds is stamped below; buildSeconds() reports the
        // pre-adoption wall clock, which is what the benches record.
        const auto t1 = std::chrono::steady_clock::now();
        out.sharded = std::make_unique<ShardedExmaTable>(
            std::move(plan), cfg, std::move(tables),
            std::chrono::duration<double>(t1 - t0).count());
        break;
    }
    case IndexKind::Routed: {
        RouterConfig cfg;
        cfg.table = getTableConfig(r);
        cfg.build_threads = r.getU32();
        cfg.force_broadcast = r.getU32() != 0;
        cfg.min_table_bases = r.getU64();
        ShardPlan plan = getPlan(r);
        const u64 n_states = r.getU64();
        if (n_states != plan.size())
            throw LoadError(manifest_path + ": " +
                            std::to_string(n_states) +
                            " shard states for a " +
                            std::to_string(plan.size()) + "-shard plan");
        std::vector<u32> states(n_states);
        for (u32 &s : states)
            s = r.getU32();
        r.finish();

        // The shard files are right here: if this router is flipped
        // to the socket transport, its workers mmap-load from this
        // directory instead of re-saving into a temp dir.
        cfg.transport.worker_dir = dir;

        std::vector<std::vector<TextSegment>> segments =
            routerSegments(plan);
        std::vector<std::unique_ptr<ExmaTable>> tables(plan.size());
        std::vector<std::vector<Base>> scan_refs(plan.size());
        for (size_t s = 0; s < plan.size(); ++s) {
            switch (states[s]) {
            case kShardEmpty:
                break;
            case kShardScan: {
                LoadedScanShard scan = loadScanFiles(shardStem(dir, s));
                if (scan.segments != segments[s])
                    throw LoadError(shardStem(dir, s) + kExtPac +
                                    ": segment map disagrees with the "
                                    "manifest's plan");
                scan_refs[s] = std::move(scan.text);
                break;
            }
            case kShardTable: {
                LoadedExmaTable t = loadTableFiles(shardStem(dir, s));
                for (MappedFile &f : t.files)
                    out.files.push_back(std::move(f));
                tables[s] = std::move(t.table);
                break;
            }
            default:
                throw LoadError(manifest_path + ": unknown shard state " +
                                std::to_string(states[s]));
            }
        }
        const auto t1 = std::chrono::steady_clock::now();
        out.router = std::make_unique<ShardRouter>(
            std::move(plan), cfg, std::move(segments), std::move(tables),
            std::move(scan_refs),
            std::chrono::duration<double>(t1 - t0).count());
        break;
    }
    }

    const auto t_end = std::chrono::steady_clock::now();
    out.load_seconds =
        std::chrono::duration<double>(t_end - t0).count();
    return out;
}

} // namespace exma
