#include "fmindex/kstep_fm.hh"

#include "common/logging.hh"

namespace exma {

KStepFmIndex::KStepFmIndex(const FmIndex &fm, const KmerOccTable &occ)
    : fm_(fm), occ_(occ)
{
    exma_assert(fm.size() == occ.rows(),
                "1-step index and k-mer table cover different references");
}

Interval
KStepFmIndex::stepKmer(const Interval &iv, Kmer code) const
{
    const u64 c = occ_.countBefore(code);
    return Interval{c + occ_.occ(code, iv.low), c + occ_.occ(code, iv.high)};
}

Interval
KStepFmIndex::search(const std::vector<Base> &query, KStepStats *stats) const
{
    const int k = occ_.k();
    Interval iv = fm_.fullInterval();
    size_t i = query.size();
    const size_t rem = query.size() % static_cast<size_t>(k);
    while (i >= rem + static_cast<size_t>(k)) {
        i -= static_cast<size_t>(k);
        const Kmer code = packKmer(query.data() + i, k);
        iv = stepKmer(iv, code);
        if (stats)
            ++stats->kstep_iterations;
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    while (i-- > 0) {
        iv = fm_.extend(iv, query[i]);
        if (stats)
            ++stats->onestep_iterations;
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

} // namespace exma
