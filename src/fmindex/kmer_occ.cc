#include "fmindex/kmer_occ.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {
namespace {

/**
 * Base-5 encoding of a window that may contain the sentinel:
 * $ = 0, A..T = 1..4, first symbol most significant. Preserves
 * lexicographic order across mixed windows.
 */
u64
encode5(const u8 *syms, int k)
{
    u64 code = 0;
    for (int i = 0; i < k; ++i)
        code = code * 5 + syms[i];
    return code;
}

/** Base-5 code of a pure-DNA k-mer given its 2-bit packed code. */
u64
pureCodeTo5(Kmer code, int k)
{
    u64 out = 0;
    u64 mul = 1;
    for (int i = 0; i < k; ++i) {
        out += ((code & 3) + 1) * mul;
        mul *= 5;
        code >>= 2;
    }
    return out;
}

} // namespace

KmerOccTable::KmerOccTable(const std::vector<Base> &ref,
                           const std::vector<SaIndex> &sa, int k)
    : k_(k)
{
    build(ref, sa);
}

KmerOccTable::KmerOccTable(const std::vector<Base> &ref, int k)
    : k_(k)
{
    build(ref, buildSuffixArray(ref));
}

void
KmerOccTable::build(const std::vector<Base> &ref,
                    const std::vector<SaIndex> &sa)
{
    exma_assert(k_ >= 1 && k_ <= 27, "k=%d out of supported range", k_);
    const u64 n = ref.size();
    n_rows_ = n + 1;
    exma_assert(sa.size() == n_rows_, "suffix array size mismatch");
    exma_assert(n >= static_cast<u64>(k_), "reference shorter than k");

    const u64 space = kmerSpace(k_);
    bases_.assign(space + 1, 0);
    sentinel_windows_.clear();

    // The window preceding row r: symbols of ref·$ at positions
    // SA[r]-k .. SA[r]-1 (circular). Sentinel sits at position n.
    std::vector<u8> window(static_cast<size_t>(k_));
    auto window_of = [&](u64 r, bool &has_sentinel) {
        const u64 pos = sa[r];
        has_sentinel = false;
        for (int j = 0; j < k_; ++j) {
            const u64 idx =
                (pos + n_rows_ - static_cast<u64>(k_ - j)) % n_rows_;
            if (idx == n) {
                window[static_cast<size_t>(j)] = 0;
                has_sentinel = true;
            } else {
                window[static_cast<size_t>(j)] =
                    static_cast<u8>(ref[idx] + 1);
            }
        }
    };

    // Pass 1: count occurrences per pure k-mer; collect sentinel windows.
    for (u64 r = 0; r < n_rows_; ++r) {
        bool has_sentinel = false;
        window_of(r, has_sentinel);
        if (has_sentinel) {
            sentinel_windows_.emplace_back(encode5(window.data(), k_),
                                           static_cast<u32>(r));
        } else {
            Base pure[32];
            for (int j = 0; j < k_; ++j)
                pure[j] = static_cast<Base>(window[static_cast<size_t>(j)] -
                                            1);
            ++bases_[packKmer(pure, k_) + 1];
        }
    }
    exma_assert(sentinel_windows_.size() == static_cast<size_t>(k_),
                "expected exactly k sentinel windows, got %zu",
                sentinel_windows_.size());
    std::sort(sentinel_windows_.begin(), sentinel_windows_.end());

    // Prefix-sum the counts into base offsets; count distinct k-mers.
    distinct_ = 0;
    for (u64 m = 0; m < space; ++m) {
        if (bases_[m + 1] != 0)
            ++distinct_;
        bases_[m + 1] += bases_[m];
    }

    // Pass 2: place rows. Iterating r ascending keeps each list sorted.
    rows_.resize(bases_[space]);
    std::vector<u32> cursor(bases_.begin(), bases_.end() - 1);
    for (u64 r = 0; r < n_rows_; ++r) {
        bool has_sentinel = false;
        window_of(r, has_sentinel);
        if (has_sentinel)
            continue;
        Base pure[32];
        for (int j = 0; j < k_; ++j)
            pure[j] = static_cast<Base>(window[static_cast<size_t>(j)] - 1);
        rows_[cursor[packKmer(pure, k_)]++] = static_cast<u32>(r);
    }
}

u64
KmerOccTable::countBefore(Kmer code) const
{
    // Pure-DNA windows below `code` ...
    u64 cnt = bases_[code];
    // ... plus sentinel-containing windows that sort below it.
    const u64 code5 = pureCodeTo5(code, k_);
    for (const auto &[wcode, row] : sentinel_windows_) {
        if (wcode < code5)
            ++cnt;
        else
            break;
    }
    return cnt;
}

u64
KmerOccTable::occ(Kmer code, u64 row) const
{
    const u32 *begin = rows_.data() + bases_[code];
    const u32 *end = rows_.data() + bases_[code + 1];
    return static_cast<u64>(
        std::lower_bound(begin, end, static_cast<u32>(row)) - begin);
}

u64
KmerOccTable::sizeBytes() const
{
    return bases_.size() * 4 + rows_.size() * 4 +
           sentinel_windows_.size() * 12;
}

} // namespace exma
