#include "fmindex/kmer_occ.hh"

#include <algorithm>

#include "common/branchless.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace exma {
namespace {

/** Base-5 code of a pure-DNA k-mer given its 2-bit packed code. */
u64
pureCodeTo5(Kmer code, int k)
{
    u64 out = 0;
    u64 mul = 1;
    for (int i = 0; i < k; ++i) {
        out += ((code & 3) + 1) * mul;
        mul *= 5;
        code >>= 2;
    }
    return out;
}

/** Smallest pure k-mer code whose base-5 form exceeds @p code5 (4^k if
 *  none). Build-time only; query-time countBefore() compares packed
 *  codes against these thresholds directly. */
u64
pureCodeAbove(u64 code5, int k)
{
    u64 lo = 0, hi = kmerSpace(k); // first candidate in [lo, hi]
    while (lo < hi) {
        const u64 mid = lo + (hi - lo) / 2;
        if (pureCodeTo5(mid, k) > code5)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/**
 * The automatic build policy goes parallel only when the reference is
 * big enough to amortise the fork/join, and the chunk count is capped
 * so the per-chunk k-mer histograms ((chunks-1) * 4^k u32 extra over
 * the serial build) stay inside a fixed byte budget.
 */
constexpr u64 kAutoParallelMinRows = u64{1} << 16;
constexpr u64 kHistogramByteBudget = u64{256} << 20;
constexpr unsigned kMaxBuildChunks = 8;

} // namespace

KmerOccTable::KmerOccTable(const std::vector<Base> &ref,
                           const std::vector<SaIndex> &sa, int k,
                           unsigned build_threads)
    : k_(k)
{
    build(ref, sa, build_threads);
}

KmerOccTable::KmerOccTable(const std::vector<Base> &ref, int k,
                           unsigned build_threads)
    : k_(k)
{
    build(ref, buildSuffixArray(ref), build_threads);
}

KmerOccTable::KmerOccTable(Restored parts)
    : k_(parts.k), n_rows_(parts.n_rows), distinct_(parts.distinct),
      bases_(std::move(parts.bases)), rows_(std::move(parts.rows)),
      sentinel_windows_(std::move(parts.sentinel_windows)),
      sentinel_thresholds_(std::move(parts.sentinel_thresholds))
{
    exma_assert(k_ >= 1 && k_ <= 27, "k=%d out of supported range", k_);
    exma_assert(bases_.size() == kmerSpace(k_) + 1,
                "occ restore: base array has %llu entries for k=%d",
                (unsigned long long)bases_.size(), k_);
    exma_assert(bases_[bases_.size() - 1] == rows_.size(),
                "occ restore: %llu increments, base array claims %u",
                (unsigned long long)rows_.size(),
                bases_[bases_.size() - 1]);
    exma_assert(sentinel_windows_.size() == static_cast<u64>(k_) &&
                    sentinel_thresholds_.size() == static_cast<u64>(k_),
                "occ restore: expected k=%d sentinel windows", k_);
}

void
KmerOccTable::build(const std::vector<Base> &ref,
                    const std::vector<SaIndex> &sa, unsigned build_threads)
{
    exma_assert(k_ >= 1 && k_ <= 27, "k=%d out of supported range", k_);
    const u64 n = ref.size();
    const u64 k = static_cast<u64>(k_);
    n_rows_ = n + 1;
    exma_assert(sa.size() == n_rows_, "suffix array size mismatch");
    exma_assert(n >= k, "reference shorter than k");

    const u64 space = kmerSpace(k_);
    // Built into plain vectors, moved into the Storage members at the
    // end (borrowed Storage is immutable, so build paths stay local).
    std::vector<u32> bases(space + 1, 0);
    std::vector<u32> rows;
    sentinel_windows_.clear();

    // The window preceding row r covers positions SA[r]-k .. SA[r]-1 of
    // ref·$, circularly. It wraps through the sentinel exactly when
    // SA[r] < k, so the hot path is a plain packKmer over ref with no
    // per-symbol modulo; only the k sentinel rows take the generic
    // circular walk below.
    auto sentinelCode5 = [&](u64 r) {
        u64 code = 0;
        for (u64 j = 0; j < k; ++j) {
            const u64 idx = (sa[r] + n_rows_ - (k - j)) % n_rows_;
            code = code * 5 +
                   (idx == n ? u64{0} : static_cast<u64>(ref[idx]) + 1);
        }
        return code;
    };

    // Chunked two-pass build: per-chunk k-mer histograms feed both the
    // global prefix sum and the per-chunk placement cursors, so the
    // second pass writes each k-mer's rows in global row order with no
    // synchronisation — the result is bit-identical at any width.
    unsigned chunks = 1;
    if (build_threads == 0) {
        if (n_rows_ >= kAutoParallelMinRows)
            chunks = std::min(parallelForSlots(0), kMaxBuildChunks);
    } else {
        chunks =
            std::min(parallelForSlots(build_threads), kMaxBuildChunks);
    }
    const unsigned requested = chunks;
    chunks = static_cast<unsigned>(std::max<u64>(
        1, std::min<u64>(chunks, kHistogramByteBudget / (space * 4))));
    if (chunks < requested && build_threads >= 2)
        exma_warn("k=%d histograms (%llu MiB per chunk) exceed the "
                  "parallel-build budget; building with %u chunk(s) "
                  "instead of %u",
                  k_, (unsigned long long)(space * 4 >> 20), chunks,
                  requested);
    const unsigned loop_threads = chunks == 1 ? 1 : build_threads;
    const u64 rows_per_chunk = (n_rows_ + chunks - 1) / chunks;

    // Pass 1: count occurrences per pure k-mer; collect sentinel rows.
    // The serial build counts straight into bases[m + 1] (no extra
    // allocation, matching the pre-chunking memory profile); the
    // parallel build counts into per-chunk histograms instead.
    std::vector<std::vector<u32>> hist(chunks > 1 ? chunks : 0);
    if (chunks == 1) {
        for (u64 r = 0; r < n_rows_; ++r) {
            const u64 pos = sa[r];
            if (pos >= k)
                ++bases[packKmer(ref.data() + (pos - k), k_) + 1];
            else
                sentinel_windows_.emplace_back(sentinelCode5(r),
                                               static_cast<u32>(r));
        }
    } else {
        std::vector<std::vector<std::pair<u64, u32>>> sent(chunks);
        parallelFor(
            chunks, 1,
            [&](u64 cb, u64 ce, unsigned) {
                for (u64 t = cb; t < ce; ++t) {
                    auto &h = hist[t];
                    h.assign(space, 0);
                    const u64 lo = t * rows_per_chunk;
                    const u64 hi = std::min(lo + rows_per_chunk, n_rows_);
                    for (u64 r = lo; r < hi; ++r) {
                        const u64 pos = sa[r];
                        if (pos >= k)
                            ++h[packKmer(ref.data() + (pos - k), k_)];
                        else
                            sent[t].emplace_back(sentinelCode5(r),
                                                 static_cast<u32>(r));
                    }
                }
            },
            loop_threads);
        for (unsigned t = 0; t < chunks; ++t)
            sentinel_windows_.insert(sentinel_windows_.end(),
                                     sent[t].begin(), sent[t].end());
    }
    exma_assert(sentinel_windows_.size() == k,
                "expected exactly k sentinel windows, got %zu",
                sentinel_windows_.size());
    std::sort(sentinel_windows_.begin(), sentinel_windows_.end());
    sentinel_thresholds_.resize(sentinel_windows_.size());
    for (size_t w = 0; w < sentinel_windows_.size(); ++w)
        sentinel_thresholds_[w] =
            pureCodeAbove(sentinel_windows_[w].first, k_);

    // Merge the chunk histograms into bases[m + 1].
    const u64 merge_grain = std::max<u64>(space / (chunks * 8u), 4096);
    if (chunks > 1) {
        parallelFor(
            space, merge_grain,
            [&](u64 mb, u64 me, unsigned) {
                for (u64 m = mb; m < me; ++m) {
                    u32 s = 0;
                    for (unsigned t = 0; t < chunks; ++t)
                        s += hist[t][m];
                    bases[m + 1] = s;
                }
            },
            loop_threads);
    }

    // Prefix-sum the counts into base offsets; count distinct k-mers.
    distinct_ = 0;
    for (u64 m = 0; m < space; ++m) {
        if (bases[m + 1] != 0)
            ++distinct_;
        bases[m + 1] += bases[m];
    }

    // Pass 2: place rows. Ascending r within a chunk plus cursors
    // staggered by the earlier chunks' counts keeps every increment
    // list globally sorted. Serial uses one cursor copy of bases.
    rows.resize(bases[space]);
    if (chunks == 1) {
        std::vector<u32> cursor(bases.begin(), bases.end() - 1);
        for (u64 r = 0; r < n_rows_; ++r) {
            const u64 pos = sa[r];
            if (pos >= k)
                rows[cursor[packKmer(ref.data() + (pos - k), k_)]++] =
                    static_cast<u32>(r);
        }
    } else {
        parallelFor(
            space, merge_grain,
            [&](u64 mb, u64 me, unsigned) {
                for (u64 m = mb; m < me; ++m) {
                    u32 cur = bases[m];
                    for (unsigned t = 0; t < chunks; ++t) {
                        const u32 cnt = hist[t][m];
                        hist[t][m] = cur;
                        cur += cnt;
                    }
                }
            },
            loop_threads);
        parallelFor(
            chunks, 1,
            [&](u64 cb, u64 ce, unsigned) {
                for (u64 t = cb; t < ce; ++t) {
                    auto &cursor = hist[t];
                    const u64 lo = t * rows_per_chunk;
                    const u64 hi = std::min(lo + rows_per_chunk, n_rows_);
                    for (u64 r = lo; r < hi; ++r) {
                        const u64 pos = sa[r];
                        if (pos >= k)
                            rows[cursor[packKmer(ref.data() + (pos - k),
                                                 k_)]++] =
                                static_cast<u32>(r);
                    }
                }
            },
            loop_threads);
    }
    bases_ = Storage<u32>(std::move(bases));
    rows_ = Storage<u32>(std::move(rows));
}

u64
KmerOccTable::countBefore(Kmer code) const
{
    // Pure-DNA windows below `code` ...
    u64 cnt = bases_[code];
    // ... plus sentinel-containing windows that sort below it.
    for (const u64 t : sentinel_thresholds_) {
        if (t <= code)
            ++cnt;
        else
            break;
    }
    return cnt;
}

u64
KmerOccTable::occ(Kmer code, u64 row) const
{
    const u32 *begin = rows_.data() + bases_[code];
    const u32 *end = rows_.data() + bases_[code + 1];
    return static_cast<u64>(
        branchlessLowerBound(begin, end, static_cast<u32>(row)) - begin);
}

u64
KmerOccTable::sizeBytes() const
{
    return bases_.size() * 4 + rows_.size() * 4 +
           sentinel_windows_.size() * 12 + sentinel_thresholds_.size() * 8;
}

} // namespace exma
