#include "fmindex/fm_index.hh"

#include "common/logging.hh"

namespace exma {

FmIndex::FmIndex(const std::vector<Base> &ref)
    : FmIndex(ref, Config())
{
}

FmIndex::FmIndex(const std::vector<Base> &ref, Config cfg)
    : cfg_(cfg)
{
    build(ref, buildSuffixArray(ref));
}

FmIndex::FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa)
    : FmIndex(ref, sa, Config())
{
}

FmIndex::FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
                 Config cfg)
    : cfg_(cfg)
{
    build(ref, sa);
}

void
FmIndex::build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa)
{
    const u64 n = ref.size();
    n_rows_ = n + 1;
    exma_assert(sa.size() == n_rows_, "suffix array size mismatch");
    exma_assert(cfg_.occ_sample > 0 && cfg_.sa_sample > 0,
                "sampling strides must be positive");

    // BWT: symbol preceding each suffix; the sentinel precedes suffix 0.
    bwt_.resize(n_rows_);
    for (u64 i = 0; i < n_rows_; ++i) {
        const u64 pos = sa[i];
        if (pos == 0) {
            bwt_[i] = 0;
            primary_ = i;
        } else {
            bwt_[i] = static_cast<u8>(ref[pos - 1] + 1);
        }
    }

    // Symbol totals -> Count array (cumulative over $,A,C,G,T).
    u64 totals[kBwtAlphabet] = {};
    for (u8 sym : bwt_)
        ++totals[sym];
    count_[0] = 0;
    for (int c = 1; c <= kBwtAlphabet; ++c)
        count_[c] = count_[c - 1] + totals[c - 1];

    // Occ checkpoints, one u32 per DNA symbol per bucket.
    const u64 n_buckets = (n_rows_ + cfg_.occ_sample - 1) / cfg_.occ_sample;
    occ_ckpt_.assign((n_buckets + 1) * 4, 0);
    u32 running[4] = {};
    for (u64 i = 0; i < n_rows_; ++i) {
        if (i % cfg_.occ_sample == 0) {
            const u64 b = i / cfg_.occ_sample;
            for (int c = 0; c < 4; ++c)
                occ_ckpt_[b * 4 + static_cast<u64>(c)] = running[c];
        }
        if (bwt_[i] != 0)
            ++running[bwt_[i] - 1];
    }
    for (int c = 0; c < 4; ++c)
        occ_ckpt_[n_buckets * 4 + static_cast<u64>(c)] = running[c];

    // Text-position-sampled SA: mark rows whose SA value is a multiple
    // of sa_sample so every LF-walk terminates within sa_sample steps.
    sa_sampled_ = BitVector(n_rows_);
    std::vector<std::pair<u64, u32>> marks;
    for (u64 i = 0; i < n_rows_; ++i)
        if (sa[i] % cfg_.sa_sample == 0)
            marks.emplace_back(i, sa[i]);
    for (const auto &[row, val] : marks)
        sa_sampled_.set(row);
    sa_sampled_.buildRank();
    sa_values_.resize(marks.size());
    for (const auto &[row, val] : marks)
        sa_values_[sa_sampled_.rank1(row)] = val;
}

u64
FmIndex::occ(u8 sym, u64 i) const
{
    exma_assert(i <= n_rows_, "occ position out of range");
    if (sym == 0)
        return i > primary_ ? 1 : 0;
    const u64 bucket = i / cfg_.occ_sample;
    u64 r = occ_ckpt_[bucket * 4 + (sym - 1)];
    for (u64 j = bucket * cfg_.occ_sample; j < i; ++j)
        r += (bwt_[j] == sym);
    return r;
}

Interval
FmIndex::extend(const Interval &iv, Base c) const
{
    const u8 sym = static_cast<u8>(c + 1);
    return Interval{count_[sym] + occ(sym, iv.low),
                    count_[sym] + occ(sym, iv.high)};
}

Interval
FmIndex::search(const std::vector<Base> &query, SearchTrace *trace) const
{
    Interval iv = fullInterval();
    for (size_t i = query.size(); i-- > 0;) {
        if (trace) {
            trace->occ_rows.push_back(iv.low / cfg_.occ_sample);
            trace->occ_rows.push_back(iv.high / cfg_.occ_sample);
        }
        iv = extend(iv, query[i]);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

u8
FmIndex::bwtAt(u64 row) const
{
    exma_assert(row < n_rows_, "row out of range");
    return bwt_[row];
}

u64
FmIndex::lf(u64 row) const
{
    const u8 sym = bwt_[row];
    return count_[sym] + occ(sym, row);
}

u64
FmIndex::locate(u64 row) const
{
    u64 steps = 0;
    while (!sa_sampled_.get(row)) {
        row = lf(row);
        ++steps;
    }
    return sa_values_[sa_sampled_.rank1(row)] + steps;
}

std::vector<u64>
FmIndex::locateAll(const Interval &iv, u64 limit) const
{
    std::vector<u64> out;
    for (u64 row = iv.low; row < iv.high && out.size() < limit; ++row)
        out.push_back(locate(row));
    return out;
}

u64
FmIndex::sizeBytes() const
{
    return bwt_.size() + occ_ckpt_.size() * 4 + sizeof(count_) +
           sa_sampled_.sizeBytes() + sa_values_.size() * 4;
}

} // namespace exma
