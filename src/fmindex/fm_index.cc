#include "fmindex/fm_index.hh"

#include "common/logging.hh"

namespace exma {

FmIndex::FmIndex(const std::vector<Base> &ref)
    : FmIndex(ref, Config())
{
}

FmIndex::FmIndex(const std::vector<Base> &ref, Config cfg)
    : cfg_(cfg)
{
    build(ref, buildSuffixArray(ref));
}

FmIndex::FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa)
    : FmIndex(ref, sa, Config())
{
}

FmIndex::FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
                 Config cfg)
    : cfg_(cfg)
{
    build(ref, sa);
}

FmIndex::FmIndex(Restored parts)
    : cfg_(parts.cfg), n_rows_(parts.n_rows),
      rank_(std::move(parts.rank)),
      sa_sampled_(std::move(parts.sa_sampled)),
      sa_values_(std::move(parts.sa_values))
{
    exma_assert(rank_.size() == n_rows_,
                "fm restore: rank covers %llu rows, header says %llu",
                (unsigned long long)rank_.size(),
                (unsigned long long)n_rows_);
    exma_assert(sa_sampled_.size() == n_rows_,
                "fm restore: SA-sample bitvector size mismatch");
    exma_assert(sa_values_.size() == sa_sampled_.ones(),
                "fm restore: %llu SA values for %llu sampled rows",
                (unsigned long long)sa_values_.size(),
                (unsigned long long)sa_sampled_.ones());
    for (int c = 0; c <= kBwtAlphabet; ++c)
        count_[c] = parts.count[c];
    exma_assert(count_[kBwtAlphabet] == n_rows_,
                "fm restore: Count array does not sum to the row count");
}

void
FmIndex::build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa)
{
    const u64 n = ref.size();
    n_rows_ = n + 1;
    exma_assert(sa.size() == n_rows_, "suffix array size mismatch");
    exma_assert(cfg_.occ_sample > 0 && cfg_.sa_sample > 0,
                "sampling strides must be positive");

    // BWT: symbol preceding each suffix; the sentinel precedes suffix 0.
    // Materialised briefly in byte form, then packed into the 2-bit
    // interleaved-checkpoint rank blocks (the byte copy is dropped).
    std::vector<u8> bwt(n_rows_);
    for (u64 i = 0; i < n_rows_; ++i) {
        const u64 pos = sa[i];
        bwt[i] = pos == 0 ? u8{0} : static_cast<u8>(ref[pos - 1] + 1);
    }
    rank_ = PackedRank(bwt);

    // Symbol totals -> Count array (cumulative over $,A,C,G,T).
    count_[0] = 0;
    for (int c = 1; c <= kBwtAlphabet; ++c)
        count_[c] = count_[c - 1] + rank_.occ(static_cast<u8>(c - 1),
                                              n_rows_);

    // Text-position-sampled SA: mark rows whose SA value is a multiple
    // of sa_sample so every LF-walk terminates within sa_sample steps.
    sa_sampled_ = BitVector(n_rows_);
    std::vector<std::pair<u64, u32>> marks;
    for (u64 i = 0; i < n_rows_; ++i)
        if (sa[i] % cfg_.sa_sample == 0)
            marks.emplace_back(i, sa[i]);
    for (const auto &[row, val] : marks)
        sa_sampled_.set(row);
    sa_sampled_.buildRank();
    std::vector<u32> sa_values(marks.size());
    for (const auto &[row, val] : marks)
        sa_values[sa_sampled_.rank1(row)] = val;
    sa_values_ = Storage<u32>(std::move(sa_values));
}

Interval
FmIndex::extend(const Interval &iv, Base c) const
{
    const u8 sym = static_cast<u8>(c + 1);
    return Interval{count_[sym] + occ(sym, iv.low),
                    count_[sym] + occ(sym, iv.high)};
}

Interval
FmIndex::search(const std::vector<Base> &query, SearchTrace *trace) const
{
    Interval iv = fullInterval();
    for (size_t i = query.size(); i-- > 0;) {
        if (trace) {
            trace->occ_rows.push_back(iv.low / cfg_.occ_sample);
            trace->occ_rows.push_back(iv.high / cfg_.occ_sample);
        }
        iv = extend(iv, query[i]);
        if (iv.empty())
            return Interval{iv.low, iv.low};
    }
    return iv;
}

u64
FmIndex::lf(u64 row) const
{
    const u8 sym = rank_.symAt(row);
    return count_[sym] + occ(sym, row);
}

u64
FmIndex::locate(u64 row) const
{
    u64 steps = 0;
    while (!sa_sampled_.get(row)) {
        row = lf(row);
        ++steps;
    }
    return sa_values_[sa_sampled_.rank1(row)] + steps;
}

std::vector<u64>
FmIndex::locateAll(const Interval &iv, u64 limit) const
{
    std::vector<u64> out;
    for (u64 row = iv.low; row < iv.high && out.size() < limit; ++row)
        out.push_back(locate(row));
    return out;
}

u64
FmIndex::sizeBytes() const
{
    return rank_.sizeBytes() + sizeof(count_) + sa_sampled_.sizeBytes() +
           sa_values_.size() * 4;
}

} // namespace exma
