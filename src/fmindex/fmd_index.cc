#include "fmindex/fmd_index.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fmindex/suffix_array.hh"

namespace exma {
namespace {

/** Complement in BWT coding: $ and # are self-complementary. */
inline u8
compSym(u8 sym)
{
    return sym >= 2 ? static_cast<u8>(7 - sym) : sym;
}

} // namespace

FmdIndex::FmdIndex(const std::vector<Base> &ref)
    : FmdIndex(ref, Config())
{
}

FmdIndex::FmdIndex(const std::vector<Base> &ref, Config cfg)
    : cfg_(cfg), n_(ref.size())
{
    exma_assert(!ref.empty(), "empty reference");

    // T'' = T # revcomp(T); generic SA builder appends the $ sentinel.
    // Symbol values before the builder's +1 shift: # = 0, A..T = 1..4.
    std::vector<u8> text;
    text.reserve(2 * n_ + 1);
    for (Base b : ref)
        text.push_back(static_cast<u8>(b + 1));
    text.push_back(0); // separator '#'
    for (u64 i = n_; i-- > 0;)
        text.push_back(static_cast<u8>(complementBase(ref[i]) + 1));

    std::vector<SaIndex> sa = buildSuffixArrayGeneric(text, 5);
    n_rows_ = sa.size(); // 2n + 2

    // BWT over the 6-symbol alphabet ($=0, #=1, A..T=2..5).
    bwt_.resize(n_rows_);
    for (u64 i = 0; i < n_rows_; ++i) {
        const u64 pos = sa[i];
        const u64 prev = pos == 0 ? n_rows_ - 1 : pos - 1;
        bwt_[i] = prev == n_rows_ - 1
                      ? 0
                      : static_cast<u8>(text[prev] + 1);
    }

    u64 totals[kSigma] = {};
    for (u8 sym : bwt_)
        ++totals[sym];
    count_[0] = 0;
    for (int c = 1; c <= kSigma; ++c)
        count_[c] = count_[c - 1] + totals[c - 1];

    const u64 n_buckets = (n_rows_ + cfg_.occ_sample - 1) / cfg_.occ_sample;
    occ_ckpt_.assign((n_buckets + 1) * kSigma, 0);
    u32 running[kSigma] = {};
    for (u64 i = 0; i < n_rows_; ++i) {
        if (i % cfg_.occ_sample == 0) {
            const u64 b = i / cfg_.occ_sample;
            for (int c = 0; c < kSigma; ++c)
                occ_ckpt_[b * kSigma + static_cast<u64>(c)] = running[c];
        }
        ++running[bwt_[i]];
    }
    for (int c = 0; c < kSigma; ++c)
        occ_ckpt_[n_buckets * kSigma + static_cast<u64>(c)] = running[c];

    sa_sampled_ = BitVector(n_rows_);
    std::vector<std::pair<u64, u32>> marks;
    for (u64 i = 0; i < n_rows_; ++i)
        if (sa[i] % cfg_.sa_sample == 0)
            marks.emplace_back(i, sa[i]);
    for (const auto &[row, val] : marks)
        sa_sampled_.set(row);
    sa_sampled_.buildRank();
    sa_values_.resize(marks.size());
    for (const auto &[row, val] : marks)
        sa_values_[sa_sampled_.rank1(row)] = val;
}

void
FmdIndex::occ6(u64 i, u64 out[kSigma]) const
{
    const u64 bucket = i / cfg_.occ_sample;
    for (int c = 0; c < kSigma; ++c)
        out[c] = occ_ckpt_[bucket * kSigma + static_cast<u64>(c)];
    for (u64 j = bucket * cfg_.occ_sample; j < i; ++j)
        ++out[bwt_[j]];
}

u64
FmdIndex::occ1(u8 sym, u64 i) const
{
    const u64 bucket = i / cfg_.occ_sample;
    u64 r = occ_ckpt_[bucket * kSigma + sym];
    for (u64 j = bucket * cfg_.occ_sample; j < i; ++j)
        r += (bwt_[j] == sym);
    return r;
}

u64
FmdIndex::lf(u64 row) const
{
    const u8 sym = bwt_[row];
    return count_[sym] + occ1(sym, row);
}

BiInterval
FmdIndex::initInterval(Base c) const
{
    const u8 sym = static_cast<u8>(c + 2);
    const u8 csym = compSym(sym);
    return BiInterval{count_[sym], count_[csym],
                      count_[sym + 1] - count_[sym]};
}

BiInterval
FmdIndex::backwardExt(const BiInterval &bi, Base c) const
{
    const u8 sym = static_cast<u8>(c + 2);
    u64 lo[kSigma], hi[kSigma];
    occ6(bi.x, lo);
    occ6(bi.x + bi.s, hi);

    u64 t[kSigma];
    for (int b = 0; b < kSigma; ++b)
        t[b] = hi[b] - lo[b];

    BiInterval out;
    out.x = count_[sym] + lo[sym];
    out.s = t[sym];
    // Reverse interval: rows [rx, rx+s) share the prefix revcomp(W) and
    // are grouped by the symbol y that follows it, in alphabet order;
    // the group for y has size t[comp(y)] (strand symmetry). Prepending
    // c selects the group y = comp(c).
    const u8 target = compSym(sym);
    u64 acc = 0;
    for (u8 y = 0; y < target; ++y)
        acc += t[compSym(y)];
    out.rx = bi.rx + acc;
    return out;
}

BiInterval
FmdIndex::forwardExt(const BiInterval &bi, Base c) const
{
    BiInterval swapped{bi.rx, bi.x, bi.s};
    BiInterval ext = backwardExt(swapped, complementBase(c));
    return BiInterval{ext.rx, ext.x, ext.s};
}

u64
FmdIndex::countOccurrences(const std::vector<Base> &w) const
{
    if (w.empty())
        return 0;
    BiInterval bi = initInterval(w.back());
    for (size_t i = w.size() - 1; i-- > 0;) {
        bi = backwardExt(bi, w[i]);
        if (bi.empty())
            return 0;
    }
    return bi.s;
}

int
FmdIndex::smem1(const std::vector<Base> &q, int x0, u64 min_intv,
                std::vector<Smem> &out) const
{
    const int len = static_cast<int>(q.size());
    struct Cand
    {
        BiInterval bi;
        int qe;
    };

    // Forward sweep: grow [x0, i) as far as possible, recording the
    // interval each time the occurrence count drops.
    std::vector<Cand> curr, prev;
    BiInterval ik = initInterval(q[static_cast<size_t>(x0)]);
    int ik_end = x0 + 1;
    for (int i = x0 + 1; i < len; ++i) {
        BiInterval ok = forwardExt(ik, q[static_cast<size_t>(i)]);
        if (ok.s != ik.s) {
            curr.push_back({ik, i});
            if (ok.s < min_intv)
                break;
        }
        ik = ok;
        ik_end = i + 1;
        if (i == len - 1)
            curr.push_back({ik, len});
    }
    if (x0 == len - 1)
        curr.push_back({ik, len});
    if (curr.empty())
        curr.push_back({ik, ik_end});
    std::reverse(curr.begin(), curr.end()); // longest (largest qe) first
    const int ret = curr.front().qe;
    prev.swap(curr);

    // Backward sweep: repeatedly prepend q[i]; report an interval when
    // it cannot be extended left and no longer match survived.
    for (int i = x0 - 1; i >= -1; --i) {
        curr.clear();
        for (const Cand &p : prev) {
            BiInterval ok;
            if (i >= 0)
                ok = backwardExt(p.bi, q[static_cast<size_t>(i)]);
            if (i < 0 || ok.s < min_intv) {
                if (curr.empty() &&
                    (out.empty() || i + 1 < out.back().qb)) {
                    out.push_back(Smem{i + 1, p.qe, p.bi});
                }
            } else if (curr.empty() || ok.s != curr.back().bi.s) {
                curr.push_back({ok, p.qe});
            }
        }
        if (curr.empty())
            break;
        prev.swap(curr);
    }
    return ret;
}

std::vector<Smem>
FmdIndex::collectSmems(const std::vector<Base> &query, int min_len,
                       u64 min_intv) const
{
    std::vector<Smem> all;
    const int len = static_cast<int>(query.size());
    int x = 0;
    std::vector<Smem> batch;
    while (x < len) {
        batch.clear();
        const int next = smem1(query, x, std::max<u64>(min_intv, 1), batch);
        for (const Smem &m : batch)
            if (m.length() >= min_len)
                all.push_back(m);
        x = std::max(next, x + 1);
    }

    // Enforce SMEM semantics across pivots: sort by begin and drop any
    // interval nested inside another.
    std::sort(all.begin(), all.end(), [](const Smem &a, const Smem &b) {
        if (a.qb != b.qb)
            return a.qb < b.qb;
        return a.qe > b.qe;
    });
    std::vector<Smem> result;
    int max_end = -1;
    for (const Smem &m : all) {
        if (m.qe > max_end) {
            result.push_back(m);
            max_end = m.qe;
        }
    }
    return result;
}

std::vector<FmdIndex::HitPos>
FmdIndex::locate(const Smem &m, u64 limit) const
{
    std::vector<HitPos> out;
    const u64 match_len = static_cast<u64>(m.length());
    for (u64 row = m.bi.x; row < m.bi.x + m.bi.s && out.size() < limit;
         ++row) {
        u64 r = row, steps = 0;
        while (!sa_sampled_.get(r)) {
            r = lf(r);
            ++steps;
        }
        const u64 pos = sa_values_[sa_sampled_.rank1(r)] + steps;
        HitPos hp;
        if (pos < n_) {
            hp.pos = pos;
            hp.is_rc = false;
        } else {
            // Occurrence inside revcomp(T): map back to forward strand.
            const u64 rc_off = pos - (n_ + 1);
            hp.pos = n_ - rc_off - match_len;
            hp.is_rc = true;
        }
        out.push_back(hp);
    }
    return out;
}

u64
FmdIndex::sizeBytes() const
{
    return bwt_.size() + occ_ckpt_.size() * 4 + sizeof(count_) +
           sa_sampled_.sizeBytes() + sa_values_.size() * 4;
}

} // namespace exma
