/**
 * @file
 * Closed-form DRAM-footprint models for the data structures compared in
 * the paper (Fig. 6b, Fig. 10a, Fig. 23, Table II "Mem"). These are
 * evaluated both at reproduction scale and at the paper's full genome
 * sizes, since they are analytic.
 *
 * Conventions (calibrated against the paper's quoted numbers):
 *  - k-step FM-Index (Eq. 2 with d = 128):
 *      ceil(log2 G)·G·4^k / (8d)  +  G·ceil(log2(4^k+1)) / 8
 *  - LISA: IP-BWT entries of (2k + ceil(log2 G)) bits plus a learned
 *    index of G/2 bytes (≈1.5 GB for the 3 Gbp human genome).
 *  - EXMA: increments G·ceil(log2 G)/8, bases 4 B · 4^k, sampled SA
 *    4 B · G, MTL index G/4 bytes (half of LISA's parameters).
 */

#ifndef EXMA_FMINDEX_SIZE_MODEL_HH
#define EXMA_FMINDEX_SIZE_MODEL_HH

#include "common/types.hh"

namespace exma {

/** Bits needed to address a G-base genome. */
u32 addressBits(u64 genome_len);

/** k-step FM-Index size in bytes (paper Eq. 2, d = 128). */
double fmkSizeBytes(u64 genome_len, int k);

/** Component breakdown of LISA's footprint. */
struct LisaSizes
{
    double ipbwt = 0.0;
    double index = 0.0;
    double total() const { return ipbwt + index; }
};
LisaSizes lisaSizeBytes(u64 genome_len, int k);

/** Component breakdown of an EXMA table's footprint (Fig. 10a). */
struct ExmaSizes
{
    double increments = 0.0;
    double bases = 0.0;
    double sa = 0.0;
    double index = 0.0;
    double bwt = 0.0; ///< the residual 1-step BWT kept for remainders
    double total() const { return increments + bases + sa + index + bwt; }
};
ExmaSizes exmaSizeBytes(u64 genome_len, int k);

} // namespace exma

#endif // EXMA_FMINDEX_SIZE_MODEL_HH
