#include "fmindex/packed_rank.hh"

namespace exma {

PackedRank::PackedRank(std::span<const u8> bwt)
    : n_(bwt.size())
{
    // One trailing block so occ(sym, n_) resolves like any other
    // position; its padding lanes are never covered by a lane mask.
    std::vector<Block> blocks((n_ >> 6) + 1, Block{});
    u32 running[4] = {};
    for (u64 i = 0; i < n_; ++i) {
        Block &b = blocks[i >> 6];
        const unsigned j = i & 63;
        if (j == 0)
            for (int c = 0; c < 4; ++c)
                b.ckpt[c] = running[c];
        const u8 sym = bwt[i];
        exma_assert(sym <= 4, "BWT symbol %u at row %llu out of range",
                    sym, (unsigned long long)i);
        u64 code;
        if (sym == 0) {
            exma_assert(primary_ == ~u64{0},
                        "more than one sentinel in BWT (rows %llu, %llu)",
                        (unsigned long long)primary_,
                        (unsigned long long)i);
            primary_ = i;
            code = 0; // phantom 'A'; occ() subtracts it back out
        } else {
            code = sym - 1u;
        }
        b.data[j >> 5] |= code << (2 * (j & 31));
        ++running[code];
    }
    // When n_ is a block multiple the trailing block saw no j == 0
    // store above; its checkpoints serve occ(sym, n_).
    if ((n_ & 63) == 0)
        for (int c = 0; c < 4; ++c)
            blocks[n_ >> 6].ckpt[c] = running[c];
    blocks_ = Storage<Block>(std::move(blocks));
}

} // namespace exma
