/**
 * @file
 * Classic 1-step FM-Index over a DNA reference: BWT + sampled Occ
 * buckets + Count array + sampled suffix array for locate.
 *
 * BWT symbol coding: $ = 0, A..T = 1..4. The BW-matrix has |ref|+1 rows
 * (the sentinel suffix is row 0). Backward search maintains a half-open
 * interval [low, high) of rows whose suffixes start with the current
 * query suffix — exactly the algorithm in Fig. 3(d) of the paper.
 */

#ifndef EXMA_FMINDEX_FM_INDEX_HH
#define EXMA_FMINDEX_FM_INDEX_HH

#include <span>
#include <vector>

#include "common/bitvector.hh"
#include "common/dna.hh"
#include "common/storage.hh"
#include "common/types.hh"
#include "fmindex/packed_rank.hh"
#include "fmindex/suffix_array.hh"

namespace exma {

/** A half-open row interval of the BW-matrix. */
struct Interval
{
    u64 low = 0;
    u64 high = 0;

    bool empty() const { return high <= low; }
    u64 count() const { return empty() ? 0 : high - low; }
    bool operator==(const Interval &o) const = default;
};

/**
 * Optional per-iteration trace of a backward search, used to reproduce
 * Fig. 6(a) (the random Occ-access pattern of 1-step FM-Index).
 */
struct SearchTrace
{
    /** Occ-table rows (bucket granularity) touched, two per iteration. */
    std::vector<u64> occ_rows;
};

class FmIndex
{
  public:
    struct Config
    {
        /**
         * Occ-bucket granularity of the SearchTrace rows (Fig. 6a).
         * Rank itself now always resolves in PackedRank's fixed
         * 64-symbol blocks regardless of this value.
         */
        u32 occ_sample = 64;
        u32 sa_sample = 32; ///< text-position stride of SA samples
    };

    /** Build from a DNA reference (0..3 codes). */
    explicit FmIndex(const std::vector<Base> &ref);
    FmIndex(const std::vector<Base> &ref, Config cfg);

    /** Build reusing an already-computed suffix array of ref·$. */
    FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa);
    FmIndex(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
            Config cfg);

    /**
     * Serialized parts of an index (src/io/index_io.cc). On a load the
     * array-backed members are borrowed straight from the mmap'd
     * `.exma.sa` file; nothing is recomputed.
     */
    struct Restored
    {
        Config cfg;
        u64 n_rows = 0;
        u64 count[kBwtAlphabet + 1] = {};
        PackedRank rank;
        BitVector sa_sampled;
        Storage<u32> sa_values;
    };

    /** Restore from serialized parts. */
    explicit FmIndex(Restored parts);

    /** Number of BW-matrix rows (|ref| + 1). */
    u64 size() const { return n_rows_; }

    /** Reference length |ref|. */
    u64 textLength() const { return n_rows_ - 1; }

    /** The whole-matrix interval (initial search state). */
    Interval fullInterval() const { return {0, n_rows_}; }

    /** Count(s): number of BWT symbols lexicographically below @p sym. */
    u64 count(u8 sym) const { return count_[sym]; }

    /**
     * Occ(s, i): occurrences of @p sym in BWT[0, i). sym is 0..4.
     * One 32-byte packed-rank block per resolution (see packed_rank.hh).
     */
    u64 occ(u8 sym, u64 i) const { return rank_.occ(sym, i); }

    /** One backward-search step: prepend base @p c (0..3) to the match. */
    Interval extend(const Interval &iv, Base c) const;

    /** Full backward search of @p query; optional access trace. */
    Interval search(const std::vector<Base> &query,
                    SearchTrace *trace = nullptr) const;

    /** BWT symbol at row (0..4). */
    u8 bwtAt(u64 row) const { return rank_.symAt(row); }

    /** LF mapping: row of the suffix one position earlier in the text. */
    u64 lf(u64 row) const;

    /** Text position of the suffix at @p row (uses SA samples). */
    u64 locate(u64 row) const;

    /** Positions of up to @p limit occurrences in an interval. */
    std::vector<u64> locateAll(const Interval &iv, u64 limit = ~u64{0}) const;

    /** Approximate heap footprint. */
    u64 sizeBytes() const;

    const Config &config() const { return cfg_; }

    /** The rank structure (serialization). */
    const PackedRank &packedRank() const { return rank_; }

    /** The sampled-row bit vector (serialization). */
    const BitVector &saSampled() const { return sa_sampled_; }

    /** The rank-indexed SA sample values (serialization). */
    std::span<const u32> saValues() const { return sa_values_.span(); }

    /** The cumulative Count array, kBwtAlphabet+1 entries. */
    std::span<const u64> countArray() const { return {count_, kBwtAlphabet + 1}; }

  private:
    void build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa);

    Config cfg_;
    u64 n_rows_ = 0;
    PackedRank rank_; ///< 2-bit BWT + interleaved Occ checkpoints
    u64 count_[kBwtAlphabet + 1] = {};
    BitVector sa_sampled_;    ///< rows with a sampled SA value
    Storage<u32> sa_values_; ///< sampled values, rank-indexed
};

} // namespace exma

#endif // EXMA_FMINDEX_FM_INDEX_HH
