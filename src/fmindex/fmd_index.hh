/**
 * @file
 * FMD index: a bidirectional FM-Index over T·#·revcomp(T)·$ supporting
 * forward and backward extension of bi-intervals, plus super-maximal
 * exact match (SMEM) collection (Li 2012, as used by BWA-MEM's seeding
 * stage — the workload of the paper's Fig. 1 and Fig. 19 alignment
 * rows).
 *
 * Alphabet (BWT coding): $ = 0, # = 1, A..T = 2..5. The separator #
 * prevents matches from straddling the strand boundary; $ terminates.
 * DNA queries can match neither.
 */

#ifndef EXMA_FMINDEX_FMD_INDEX_HH
#define EXMA_FMINDEX_FMD_INDEX_HH

#include <vector>

#include "common/bitvector.hh"
#include "common/dna.hh"
#include "common/types.hh"

namespace exma {

/**
 * A bi-interval: rows [x, x+s) start with the current match W; rows
 * [rx, rx+s) start with revcomp(W).
 */
struct BiInterval
{
    u64 x = 0;
    u64 rx = 0;
    u64 s = 0;

    bool empty() const { return s == 0; }
};

/** A super-maximal exact match of a query against both strands. */
struct Smem
{
    int qb = 0; ///< query begin (inclusive)
    int qe = 0; ///< query end (exclusive)
    BiInterval bi;

    int length() const { return qe - qb; }
    u64 hits() const { return bi.s; }
};

class FmdIndex
{
  public:
    struct Config
    {
        u32 occ_sample = 64;
        u32 sa_sample = 32;
    };

    explicit FmdIndex(const std::vector<Base> &ref);
    FmdIndex(const std::vector<Base> &ref, Config cfg);

    /** Rows of the doubled BW-matrix: 2|ref| + 2. */
    u64 size() const { return n_rows_; }

    /** Forward-strand reference length. */
    u64 refLength() const { return n_; }

    /** Bi-interval of the single-base string @p c. */
    BiInterval initInterval(Base c) const;

    /** Extend W -> cW (prepend on the forward strand). */
    BiInterval backwardExt(const BiInterval &bi, Base c) const;

    /** Extend W -> Wc (append on the forward strand). */
    BiInterval forwardExt(const BiInterval &bi, Base c) const;

    /** Occurrences of @p w across both strands (0 if empty/impossible). */
    u64 countOccurrences(const std::vector<Base> &w) const;

    /**
     * All SMEMs of @p query with length >= @p min_len and at least
     * @p min_intv occurrences. Output is sorted by query begin and
     * contains no interval nested inside another.
     */
    std::vector<Smem> collectSmems(const std::vector<Base> &query,
                                   int min_len, u64 min_intv = 1) const;

    /** A located occurrence mapped back to the forward strand. */
    struct HitPos
    {
        u64 pos = 0;    ///< forward-strand start of the (rc-)match
        bool is_rc = false;
    };

    /** Map up to @p limit occurrences of a SMEM to reference positions. */
    std::vector<HitPos> locate(const Smem &m, u64 limit) const;

    /** Approximate heap footprint. */
    u64 sizeBytes() const;

  private:
    static constexpr int kSigma = 6;

    void occ6(u64 i, u64 out[kSigma]) const;
    u64 occ1(u8 sym, u64 i) const;
    u64 lf(u64 row) const;

    /** SMEMs through pivot @p x0; returns the furthest forward end. */
    int smem1(const std::vector<Base> &q, int x0, u64 min_intv,
              std::vector<Smem> &out) const;

    Config cfg_;
    u64 n_ = 0;       ///< forward reference length
    u64 n_rows_ = 0;  ///< 2n + 2
    std::vector<u8> bwt_;
    std::vector<u32> occ_ckpt_; ///< kSigma checkpoints per bucket
    u64 count_[kSigma + 1] = {};
    BitVector sa_sampled_;
    std::vector<u32> sa_values_;
};

} // namespace exma

#endif // EXMA_FMINDEX_FMD_INDEX_HH
