/**
 * @file
 * Cache-line-conscious rank over a DNA BWT — the software analogue of
 * the paper's "one memory access per Occ" goal (§III, Fig. 4-5), using
 * the BWA occurrence-array layout.
 *
 * The BWT ($,A..T coded 0..4) is stored 2-bit-packed in 64-symbol
 * blocks; each block carries its four interleaved Occ checkpoints
 * (counts of A,C,G,T before the block), so the checkpoint and the
 * symbols it covers live in the same 32-byte block — one Occ(sym, i)
 * resolution touches a single cache line, via mask + popcount over at
 * most two 64-bit words, instead of a separate checkpoint array plus up
 * to occ_sample-1 byte loads.
 *
 * The sentinel has no 2-bit code: its row stores code 0 ('A') and its
 * position is kept as `primary_`; occ() subtracts the phantom 'A' and
 * answers Occ($, i) directly from the primary row, exactly like the
 * FM-index primary-row special case this structure replaces.
 */

#ifndef EXMA_FMINDEX_PACKED_RANK_HH
#define EXMA_FMINDEX_PACKED_RANK_HH

#include <bit>
#include <span>
#include <vector>

#include "common/logging.hh"
#include "common/storage.hh"
#include "common/types.hh"

namespace exma {

class PackedRank
{
  public:
    /** Symbols per block (and per checkpoint). */
    static constexpr u64 kBlockSymbols = 64;

    /**
     * One rank block: checkpoints and the 64 symbols they describe,
     * interleaved. 32 bytes, so two blocks share a cache line and no
     * lookup ever straddles one. Public (and trivially copyable)
     * because this is exactly the record the `.exma.sa` file stores —
     * a loaded PackedRank points blocks_ straight into the mapping.
     */
    struct alignas(32) Block
    {
        u32 ckpt[4] = {}; ///< Occ(A..T) before the block (phantom 'A'
                          ///< of the primary row included)
        u64 data[2] = {}; ///< 2-bit symbol codes, lane j of word j>>5
    };
    static_assert(sizeof(Block) == 32, "rank block must stay 32 bytes");

    PackedRank() = default;

    /**
     * Build from a BWT in 0..4 coding. At most one symbol may be the
     * sentinel (0); a sentinel-free sequence is also accepted (occ(0,·)
     * is then identically 0).
     */
    explicit PackedRank(std::span<const u8> bwt);

    /**
     * Restore from serialized parts (src/io/index_io.cc): @p blocks is
     * typically borrowed from an mmap'd `.exma.sa` section.
     */
    PackedRank(u64 n, u64 primary, Storage<Block> blocks)
        : n_(n), primary_(primary), blocks_(std::move(blocks))
    {
        exma_assert(blocks_.size() == (n_ >> 6) + 1,
                    "rank restore: %llu blocks cannot cover %llu symbols",
                    (unsigned long long)blocks_.size(),
                    (unsigned long long)n_);
    }

    /** The raw block array (serialization). */
    std::span<const Block> blocks() const { return blocks_.span(); }

    /** Number of symbols. */
    u64 size() const { return n_; }

    /** Row of the sentinel, or ~0 (past any row) if there is none. */
    u64 primary() const { return primary_; }

    /** Occ(sym, i): occurrences of @p sym (0..4) in BWT[0, i). */
    u64
    occ(u8 sym, u64 i) const
    {
        exma_dassert(sym <= 4 && i <= n_,
                     "occ(%u, %llu) out of range (n=%llu)", sym,
                     (unsigned long long)i, (unsigned long long)n_);
        if (sym == 0)
            return i > primary_ ? 1 : 0;
        const u64 c = sym - 1u;
        const Block &b = blocks_[i >> 6];
        const unsigned off = i & 63;
        const u64 pat = c * kEvenBits; // symbol code replicated per lane
        const unsigned l0 = off < 32 ? off : 32;
        const unsigned l1 = off < 32 ? 0 : off - 32;
        u64 r = b.ckpt[c];
        r += static_cast<u64>(
            std::popcount(eqLanes(b.data[0], pat) & laneMask(l0)));
        r += static_cast<u64>(
            std::popcount(eqLanes(b.data[1], pat) & laneMask(l1)));
        // The primary row stores a phantom 'A'; Occ(A, i) must not
        // count it (checkpoints include it, so one subtract fixes all).
        r -= static_cast<u64>(c == 0) & static_cast<u64>(i > primary_);
        return r;
    }

    /** BWT symbol at @p row (0..4). */
    u8
    symAt(u64 row) const
    {
        exma_dassert(row < n_, "row %llu out of range %llu",
                     (unsigned long long)row, (unsigned long long)n_);
        if (row == primary_)
            return 0;
        const Block &b = blocks_[row >> 6];
        const unsigned j = row & 63;
        return static_cast<u8>(((b.data[j >> 5] >> (2 * (j & 31))) & 3) +
                               1);
    }

    /** Heap footprint in bytes. */
    u64 sizeBytes() const { return blocks_.size() * sizeof(Block); }

  private:
    /** Every even bit set: one marker bit position per 2-bit lane. */
    static constexpr u64 kEvenBits = 0x5555555555555555ULL;

    /** 1 at the even bit of every 2-bit lane of @p w equal to @p pat. */
    static u64
    eqLanes(u64 w, u64 pat)
    {
        const u64 x = w ^ pat; // equal lanes become 00
        return ~(x | (x >> 1)) & kEvenBits;
    }

    /** Marker-bit mask covering the first @p lanes lanes (0..32). */
    static u64
    laneMask(unsigned lanes)
    {
        return lanes >= 32 ? ~u64{0} : (u64{1} << (2 * lanes)) - 1;
    }

    u64 n_ = 0;
    u64 primary_ = ~u64{0}; ///< ~0 (= "past any i") when sentinel-free
    Storage<Block> blocks_;
};

} // namespace exma

#endif // EXMA_FMINDEX_PACKED_RANK_HH
