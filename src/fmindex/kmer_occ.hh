/**
 * @file
 * Occurrence table over k-symbol windows of the BW-matrix — the shared
 * core of the k-step FM-Index and the EXMA table.
 *
 * For every BW-matrix row r, the "window" is the k symbols that precede
 * the suffix at r (circularly over ref·$). Occ_k(P, i) — the number of
 * rows below i whose window equals P — is exactly the rank of i in the
 * sorted list of rows where P occurs. The paper's EXMA table (Fig. 8)
 * stores precisely these sorted row lists ("increments"), one `base`
 * pointer per k-mer, and the per-k-mer occurrence count f_i.
 *
 * Windows containing the sentinel exist (there are exactly k of them,
 * since $ occurs once); they are kept separately because DNA queries can
 * never match them, but they must participate in the cumulative Count_k.
 */

#ifndef EXMA_FMINDEX_KMER_OCC_HH
#define EXMA_FMINDEX_KMER_OCC_HH

#include <span>
#include <utility>
#include <vector>

#include "common/dna.hh"
#include "common/storage.hh"
#include "common/types.hh"
#include "fmindex/suffix_array.hh"

namespace exma {

class KmerOccTable
{
  public:
    /**
     * Build from @p ref and its suffix array (of ref·$).
     * @param k number of DNA symbols per window (the "step").
     * @param build_threads construction parallelism: 0 picks the
     *        automatic policy (pool-parallel chunked build for big
     *        references, serial otherwise), 1 forces serial, >= 2
     *        requests the chunked parallel build at that width (the
     *        width is still clamped — with a warning — when the
     *        per-chunk 4^k histograms would blow the memory budget,
     *        i.e. for very large k). The resulting table is identical
     *        in every case.
     */
    KmerOccTable(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
                 int k, unsigned build_threads = 0);

    /** Convenience constructor that builds its own suffix array. */
    KmerOccTable(const std::vector<Base> &ref, int k,
                 unsigned build_threads = 0);

    /**
     * Serialized parts of a table (src/io/index_io.cc). On a load the
     * two hot arrays are borrowed straight from the mmap'd `.exma.occ`
     * file; the tiny sentinel arrays (k entries each) are owned copies.
     */
    struct Restored
    {
        int k = 0;
        u64 n_rows = 0;
        u64 distinct = 0;
        Storage<u32> bases;
        Storage<u32> rows;
        std::vector<std::pair<u64, u32>> sentinel_windows;
        std::vector<u64> sentinel_thresholds;
    };

    /** Restore from serialized parts; nothing is recomputed. */
    explicit KmerOccTable(Restored parts);

    int k() const { return k_; }

    /** Number of BW-matrix rows (|ref| + 1). */
    u64 rows() const { return n_rows_; }

    /** Packed 2-bit code of a pure-DNA k-mer (see common/dna.hh). */
    Kmer codeOf(const Base *bases) const { return packKmer(bases, k_); }

    /**
     * Count_k(P): number of rows whose *first* k symbols are
     * lexicographically smaller than pure-DNA k-mer @p code
     * (sentinel-containing windows included, $ smallest).
     */
    u64 countBefore(Kmer code) const;

    /** Occ_k(P, row): rank of @p row among the increments of @p code. */
    u64 occ(Kmer code, u64 row) const;

    /** Number of increments (occurrences) of k-mer @p code: f_i. */
    u64
    frequency(Kmer code) const
    {
        return bases_[code + 1] - bases_[code];
    }

    /** Sorted increment rows of k-mer @p code (paper Fig. 8 columns). */
    std::span<const u32>
    increments(Kmer code) const
    {
        return {rows_.data() + bases_[code],
                rows_.data() + bases_[code + 1]};
    }

    /** Offset of the first increment of @p code — the EXMA `base`. */
    u64 baseOf(Kmer code) const { return bases_[code]; }

    /** Concatenated increments of all pure-DNA k-mers. */
    std::span<const u32> allIncrements() const { return rows_.span(); }

    /** The raw base-offset array (4^k + 1 entries, non-decreasing). */
    std::span<const u32> baseArray() const { return bases_.span(); }

    /** Sentinel-containing windows, sorted by code (serialization). */
    const std::vector<std::pair<u64, u32>> &
    sentinelWindows() const
    {
        return sentinel_windows_;
    }

    /** Per-window pure-code thresholds, ascending (serialization). */
    const std::vector<u64> &
    sentinelThresholds() const
    {
        return sentinel_thresholds_;
    }

    /** Number of distinct pure-DNA k-mers that occur at least once. */
    u64 distinctKmers() const { return distinct_; }

    /** Approximate heap footprint. */
    u64 sizeBytes() const;

  private:
    void build(const std::vector<Base> &ref, const std::vector<SaIndex> &sa,
               unsigned build_threads);

    int k_;
    u64 n_rows_ = 0;
    u64 distinct_ = 0;
    Storage<u32> bases_; ///< 4^k + 1 prefix offsets into rows_
    Storage<u32> rows_;  ///< concatenated sorted increment rows
    /** Sentinel-containing windows: (base-5 code, row), sorted by code. */
    std::vector<std::pair<u64, u32>> sentinel_windows_;
    /**
     * Per sentinel window: the smallest pure k-mer code sorting above
     * it (4^k if none), ascending. countBefore() counts `t <= code`
     * over this tiny array instead of re-deriving the query's base-5
     * code on every k-step iteration.
     */
    std::vector<u64> sentinel_thresholds_;
};

} // namespace exma

#endif // EXMA_FMINDEX_KMER_OCC_HH
