#include "fmindex/size_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace exma {

u32
addressBits(u64 genome_len)
{
    exma_assert(genome_len > 1, "degenerate genome length");
    u32 bits = 0;
    u64 v = genome_len - 1;
    while (v) {
        ++bits;
        v >>= 1;
    }
    return bits;
}

double
fmkSizeBytes(u64 genome_len, int k)
{
    const double g = static_cast<double>(genome_len);
    const double sigma_k = std::pow(4.0, k);
    const double d = 128.0;
    const double occ_bits = static_cast<double>(addressBits(genome_len));
    const double bwt_bits = std::ceil(std::log2(sigma_k + 1.0));
    return occ_bits * g * sigma_k / (8.0 * d) + g * bwt_bits / 8.0;
}

LisaSizes
lisaSizeBytes(u64 genome_len, int k)
{
    const double g = static_cast<double>(genome_len);
    LisaSizes s;
    const double entry_bits =
        2.0 * k + static_cast<double>(addressBits(genome_len));
    s.ipbwt = g * entry_bits / 8.0;
    s.index = g / 2.0; // fixed param-to-entry ratio; ~1.5 GB at 3 Gbp
    return s;
}

ExmaSizes
exmaSizeBytes(u64 genome_len, int k)
{
    const double g = static_cast<double>(genome_len);
    const double row_bytes =
        std::ceil(static_cast<double>(addressBits(genome_len)) / 8.0);
    ExmaSizes s;
    s.increments = g * row_bytes;
    s.bases = std::pow(4.0, k) * 4.0;
    s.sa = g * 4.0;
    s.index = g / 4.0; // MTL: half of LISA's parameter budget
    s.bwt = g * 3.0 / 8.0;
    return s;
}

} // namespace exma
