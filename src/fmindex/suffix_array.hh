/**
 * @file
 * Suffix-array construction via the linear-time SA-IS algorithm
 * (Nong, Zhang, Chan 2009), plus a naive reference implementation used
 * to cross-check it in tests.
 *
 * The suffix array is built over the sentinel-terminated text T$ where
 * $ is lexicographically smallest, so SA[0] is always the sentinel
 * suffix and the array has |T|+1 entries.
 */

#ifndef EXMA_FMINDEX_SUFFIX_ARRAY_HH
#define EXMA_FMINDEX_SUFFIX_ARRAY_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace exma {

/** Index type for suffix arrays; supports texts up to 4 Gbp. */
using SaIndex = u32;

/**
 * Build the suffix array of ref·$ with SA-IS.
 * @param ref DNA reference, 0..3 base codes.
 * @return SA of length |ref|+1; SA[0] == |ref| (the sentinel suffix).
 */
std::vector<SaIndex> buildSuffixArray(const std::vector<Base> &ref);

/**
 * Build a suffix array over an arbitrary small-alphabet string
 * (values in [0, sigma)), appending a unique sentinel internally.
 * Exposed for the FMD index which uses a 6-symbol alphabet.
 */
std::vector<SaIndex> buildSuffixArrayGeneric(const std::vector<u8> &text,
                                             u32 sigma);

/** O(n^2 log n) reference implementation for tests. */
std::vector<SaIndex> buildSuffixArrayNaive(const std::vector<Base> &ref);

} // namespace exma

#endif // EXMA_FMINDEX_SUFFIX_ARRAY_HH
