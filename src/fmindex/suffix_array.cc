#include "fmindex/suffix_array.hh"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "common/logging.hh"

namespace exma {
namespace {

constexpr SaIndex kEmpty = std::numeric_limits<SaIndex>::max();

/** Compute bucket start (end=false) or end (end=true) offsets. */
void
getBuckets(const u32 *s, u32 n, u32 sigma, std::vector<u32> &bkt, bool end)
{
    std::fill(bkt.begin(), bkt.end(), 0);
    for (u32 i = 0; i < n; ++i)
        ++bkt[s[i]];
    u32 sum = 0;
    for (u32 c = 0; c < sigma; ++c) {
        sum += bkt[c];
        bkt[c] = end ? sum : sum - bkt[c];
    }
}

/** Induce-sort L-type suffixes from sorted LMS suffixes. */
void
induceL(const u32 *s, SaIndex *sa, u32 n, u32 sigma,
        const std::vector<bool> &stype, std::vector<u32> &bkt)
{
    getBuckets(s, n, sigma, bkt, false);
    for (u32 i = 0; i < n; ++i) {
        SaIndex j = sa[i];
        if (j != kEmpty && j > 0 && !stype[j - 1])
            sa[bkt[s[j - 1]]++] = j - 1;
    }
}

/** Induce-sort S-type suffixes after L-types are in place. */
void
induceS(const u32 *s, SaIndex *sa, u32 n, u32 sigma,
        const std::vector<bool> &stype, std::vector<u32> &bkt)
{
    getBuckets(s, n, sigma, bkt, true);
    for (u32 i = n; i-- > 0;) {
        SaIndex j = sa[i];
        if (j != kEmpty && j > 0 && stype[j - 1])
            sa[--bkt[s[j - 1]]] = j - 1;
    }
}

/**
 * Core SA-IS recursion. @p s must end with a unique smallest sentinel
 * (value 0 occurring exactly once, at position n-1).
 */
void
saIs(const u32 *s, SaIndex *sa, u32 n, u32 sigma)
{
    exma_assert(n > 0, "empty string in saIs");
    if (n == 1) {
        sa[0] = 0;
        return;
    }

    // Classify suffixes: S-type if smaller than successor suffix.
    std::vector<bool> stype(n, false);
    stype[n - 1] = true;
    for (u32 i = n - 1; i-- > 0;)
        stype[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && stype[i + 1]);

    auto is_lms = [&](u32 i) { return i > 0 && stype[i] && !stype[i - 1]; };

    std::vector<u32> bkt(sigma);

    // Stage 1: place LMS suffixes at bucket ends and induce-sort.
    std::fill(sa, sa + n, kEmpty);
    getBuckets(s, n, sigma, bkt, true);
    for (u32 i = 1; i < n; ++i)
        if (is_lms(i))
            sa[--bkt[s[i]]] = i;
    induceL(s, sa, n, sigma, stype, bkt);
    induceS(s, sa, n, sigma, stype, bkt);

    // Compact the sorted LMS suffixes into the front of sa.
    u32 n1 = 0;
    for (u32 i = 0; i < n; ++i)
        if (sa[i] != kEmpty && is_lms(sa[i]))
            sa[n1++] = sa[i];

    // Name LMS substrings in sa[n1..n).
    std::fill(sa + n1, sa + n, kEmpty);
    u32 name = 0;
    SaIndex prev = kEmpty;
    for (u32 i = 0; i < n1; ++i) {
        SaIndex pos = sa[i];
        bool diff = false;
        if (prev == kEmpty) {
            diff = true;
        } else {
            for (u32 d = 0; d < n; ++d) {
                if (s[pos + d] != s[prev + d] ||
                    stype[pos + d] != stype[prev + d]) {
                    diff = true;
                    break;
                }
                if (d > 0 && (is_lms(pos + d) || is_lms(prev + d)))
                    break;
            }
        }
        if (diff) {
            ++name;
            prev = pos;
        }
        sa[n1 + pos / 2] = name - 1;
    }
    for (u32 i = n, j = n; i-- > n1;)
        if (sa[i] != kEmpty)
            sa[--j] = sa[i];

    // Stage 2: recurse on the reduced string if names are not unique.
    // SA-IS reuses the tail of the output buffer as scratch for the
    // reduced string — s1 aliases sa[n-n1, n) by design (that reuse is
    // what makes the algorithm O(n) extra space). The u32 view of
    // SaIndex storage is only legal because they are the same type; if
    // SaIndex ever widens (e.g. to u64 for >4 Gbp references) this
    // must become a separate reduced-string buffer, not a cast.
    static_assert(std::is_same_v<SaIndex, u32>,
                  "saIs reuses the SaIndex output buffer as u32 "
                  "reduced-string storage; the types must be identical");
    SaIndex *sa1 = sa;
    u32 *s1 = sa + n - n1;
    if (name < n1) {
        saIs(s1, sa1, n1, name);
    } else {
        for (u32 i = 0; i < n1; ++i)
            sa1[s1[i]] = i;
    }

    // Stage 3: induce the full SA from the sorted LMS order.
    for (u32 i = 1, j = 0; i < n; ++i)
        if (is_lms(i))
            s1[j++] = i; // s1 now maps LMS rank-in-text to position
    for (u32 i = 0; i < n1; ++i)
        sa1[i] = s1[sa1[i]];
    std::fill(sa + n1, sa + n, kEmpty);
    getBuckets(s, n, sigma, bkt, true);
    for (u32 i = n1; i-- > 0;) {
        SaIndex j = sa[i];
        sa[i] = kEmpty;
        sa[--bkt[s[j]]] = j;
    }
    induceL(s, sa, n, sigma, stype, bkt);
    induceS(s, sa, n, sigma, stype, bkt);
}

} // namespace

std::vector<SaIndex>
buildSuffixArrayGeneric(const std::vector<u8> &text, u32 sigma)
{
    const u32 n = static_cast<u32>(text.size()) + 1;
    std::vector<u32> s(n);
    for (u32 i = 0; i + 1 < n; ++i) {
        exma_assert(text[i] < sigma, "symbol %u out of range", text[i]);
        s[i] = text[i] + 1u; // shift to make room for the sentinel
    }
    s[n - 1] = 0;
    std::vector<SaIndex> sa(n);
    saIs(s.data(), sa.data(), n, sigma + 1);
    return sa;
}

std::vector<SaIndex>
buildSuffixArray(const std::vector<Base> &ref)
{
    exma_assert(ref.size() < std::numeric_limits<u32>::max() - 2,
                "reference too long for 32-bit suffix array");
    std::vector<u8> text(ref.begin(), ref.end());
    return buildSuffixArrayGeneric(text, kDnaAlphabet);
}

std::vector<SaIndex>
buildSuffixArrayNaive(const std::vector<Base> &ref)
{
    const u32 n = static_cast<u32>(ref.size()) + 1;
    std::vector<SaIndex> sa(n);
    for (u32 i = 0; i < n; ++i)
        sa[i] = i;
    auto suffix_less = [&](SaIndex a, SaIndex b) {
        while (true) {
            const bool ea = a == n - 1, eb = b == n - 1;
            if (ea || eb)
                return ea && !eb;
            if (ref[a] != ref[b])
                return ref[a] < ref[b];
            ++a;
            ++b;
        }
    };
    std::sort(sa.begin(), sa.end(), suffix_less);
    return sa;
}

} // namespace exma
