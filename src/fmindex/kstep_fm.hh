/**
 * @file
 * k-step FM-Index backward search (Chacón et al., "n-step FM-index"),
 * processing k DNA symbols per iteration over a KmerOccTable, with a
 * 1-step FM-Index handling the query-length remainder and locate.
 */

#ifndef EXMA_FMINDEX_KSTEP_FM_HH
#define EXMA_FMINDEX_KSTEP_FM_HH

#include <vector>

#include "common/dna.hh"
#include "common/search_stats.hh"
#include "fmindex/fm_index.hh"
#include "fmindex/kmer_occ.hh"

namespace exma {

/**
 * Per-search instrumentation for the timing models — the shared
 * SearchStats counters (this engine only drives the two iteration
 * counts; the error/probe/model fields stay zero).
 */
using KStepStats = SearchStats;

class KStepFmIndex
{
  public:
    /**
     * @param fm  1-step index over the same reference (not owned).
     * @param occ k-mer occurrence table over the same reference
     *            (not owned).
     */
    KStepFmIndex(const FmIndex &fm, const KmerOccTable &occ);

    int k() const { return occ_.k(); }

    /** One k-step iteration: prepend k-mer @p code to the match. */
    Interval stepKmer(const Interval &iv, Kmer code) const;

    /**
     * Full backward search. The trailing floor(|Q|/k) chunks are
     * processed k symbols at a time; the leading |Q| mod k symbols use
     * the 1-step index. Must return exactly FmIndex::search's interval.
     */
    Interval search(const std::vector<Base> &query,
                    KStepStats *stats = nullptr) const;

  private:
    const FmIndex &fm_;
    const KmerOccTable &occ_;
};

} // namespace exma

#endif // EXMA_FMINDEX_KSTEP_FM_HH
