/**
 * @file
 * The out-of-process Transport: each replica is a real child process
 * (tools/exma-worker) spawned over a Unix-domain socketpair and
 * spoken to in wire.hh frames. The parent side keeps the exact inbox
 * discipline of the in-process ShardWorker — an owned thread drains
 * submitted requests in order and fulfils futures — but "serving" a
 * request is a frame round-trip: encode, write, then read frames
 * until the response with the matching sequence number arrives
 * (heartbeat frames tick the liveness counter in between, so the
 * supervisor sees chunk-granular progress across the process
 * boundary).
 *
 * Failure semantics are the seam contract made physical. A broken
 * channel — the child died, a read stalled out and was shut down, a
 * frame failed validation — resolves the in-flight request as
 * WorkerDown and puts the replica away; kill() sends a real SIGKILL
 * and shuts the socket down so any blocked read unblocks immediately
 * (idempotent: the supervisor and the router's reap path may call it
 * repeatedly). The child is reaped (waitpid) exactly once, in the
 * destructor.
 *
 * Fault injection stays parent-side, probed at the same per-replica
 * site name as in-process — EXMA_FAULTS/EXMA_FAULT_SEED are stripped
 * from the child's environment — so the injector's per-site nth
 * counters survive respawns and one fault plan drives both
 * transports identically. KillWorker becomes a real SIGKILL;
 * HangRequest/DelayMs park the parent lane (a stalled channel);
 * ThrowInProcess synthesizes the in-process Failed response without
 * contacting the child (the fault models *compute* throwing, not the
 * channel — no respawn, same as in-process); CorruptResponse flips
 * the decoded payload after the child stamped its canary, which the
 * router must catch by recompute.
 */

#ifndef EXMA_TRANSPORT_SOCKET_TRANSPORT_HH
#define EXMA_TRANSPORT_SOCKET_TRANSPORT_HH

#include <sys/types.h>

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "fault/fault_injector.hh"
#include "transport/transport.hh"

namespace exma {

/** How to spawn one exma-worker child. */
struct SocketTransportConfig
{
    std::string binary; ///< resolved exma-worker executable path
    std::string stem;   ///< shard file stem ("" for an empty shard)
    std::string state;  ///< "table" | "scan" | "empty"
};

/**
 * Resolve the exma-worker binary: @p hint if non-empty, else
 * $EXMA_WORKER_BIN, else a walk up from /proc/self/exe looking for
 * tools/exma-worker/exma-worker (the build-tree layout), else the
 * bare name for a PATH lookup.
 */
std::string discoverWorkerBinary(const std::string &hint);

class SocketTransport final : public Transport
{
  public:
    /**
     * Spawns the child and the parent-side serving thread. A spawn
     * failure is not fatal: the first request finds a closed channel
     * and resolves WorkerDown, which is exactly what the failover
     * tier expects from a replica that cannot come up.
     *
     * @param name       stable replica name (fault-injection site).
     * @param cfg        child binary + shard files to serve.
     * @param has_table  what hasTable() reports (the shard files are
     *                   in the child; the parent only knows the
     *                   shape).
     * @param is_empty   what isEmpty() reports.
     */
    SocketTransport(std::string name, SocketTransportConfig cfg,
                    bool has_table, bool is_empty);

    /**
     * Stops the serving thread (shutting the socket down to unblock
     * any in-flight round-trip), SIGKILLs and reaps the child, and
     * resolves everything still queued with WorkerDown.
     */
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    std::future<WorkerResponse> submit(WorkerRequest req) override;

    /**
     * Real worker death: SIGKILL the child, shut the socket down so
     * any blocked read unblocks, and resolve every queued request
     * with WorkerDown. Idempotent.
     */
    void kill() override;

    bool isDead() const override
    {
        return dead_.load(std::memory_order_acquire);
    }

    u64 inboxDepth() const override
    {
        return inbox_depth_.load(std::memory_order_relaxed);
    }

    u64 heartbeat() const override
    {
        return heartbeat_.load(std::memory_order_relaxed);
    }

    const std::string &name() const override { return name_; }
    bool hasTable() const override { return has_table_; }
    bool isEmpty() const override { return is_empty_; }

    u64 processed() const override
    {
        return processed_.load(std::memory_order_relaxed);
    }

  private:
    struct Pending
    {
        WorkerRequest req;
        std::promise<WorkerResponse> promise;
    };

    void spawnChild();
    void run();
    void serve(Pending p);
    /** One request over the wire; throws TransportError on breakage. */
    WorkerResponse roundTrip(const WorkerRequest &req);
    /** Resolve @p p with WorkerDown and release its inbox-depth slot. */
    void resolveDown(Pending &p);
    void markDead();
    /** SIGKILL the child if it was ever spawned (idempotent). */
    void killProcess();

    std::string name_;
    SocketTransportConfig cfg_;
    const bool has_table_;
    const bool is_empty_;

    int fd_ = -1;     ///< parent socket end; immutable after ctor
    pid_t pid_ = -1;  ///< child pid, or -1 if spawn failed
    u32 seq_ = 0;     ///< request sequence; serving-thread-only

    std::atomic<u64> processed_{0};
    std::atomic<u64> heartbeat_{0};
    std::atomic<u64> inbox_depth_{0};
    std::atomic<bool> dead_{false};
    CancelToken cancel_;

    Mutex mtx_;
    CondVar cv_;
    std::deque<Pending> inbox_ EXMA_GUARDED_BY(mtx_);
    bool stop_ EXMA_GUARDED_BY(mtx_) = false;
    std::thread thread_; ///< last member: joins before the rest dies
};

} // namespace exma

#endif // EXMA_TRANSPORT_SOCKET_TRANSPORT_HH
