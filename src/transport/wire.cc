#include "transport/wire.hh"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace exma {
namespace {

// Serialized wire PODs (see ondisk-pod-assert): layouts are frozen in
// src/io/format_abi.lock; a drift here is a router/worker wire break.
static_assert(sizeof(FrameHeader) == 32, "wire ABI drift");
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(WireRequestHead) == 24, "wire ABI drift");
static_assert(std::is_trivially_copyable_v<WireRequestHead>);
static_assert(sizeof(WireResponseHead) == 64, "wire ABI drift");
static_assert(std::is_trivially_copyable_v<WireResponseHead>);

/** Append-only body builder; PODs are byte-copied little-endian. */
class WireWriter
{
  public:
    template <typename T>
    void putPod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        putRaw(&v, sizeof(T));
    }

    void putU32(u32 v) { putRaw(&v, sizeof v); }
    void putU64(u64 v) { putRaw(&v, sizeof v); }
    void putBytes(const void *p, size_t n) { putRaw(p, n); }

    std::vector<u8> take() { return std::move(buf_); }

  private:
    void putRaw(const void *p, size_t n)
    {
        const u8 *b = static_cast<const u8 *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<u8> buf_;
};

/**
 * Bounds-checked body cursor: every get validates against the bytes
 * actually present before touching them, so a corrupt length can
 * never over-read. All failures throw TransportError with the body
 * offset where decoding stopped.
 */
class WireReader
{
  public:
    WireReader(std::span<const u8> body, int fd) : body_(body), fd_(fd) {}

    template <typename T>
    T getPod(const char *what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        getRaw(&v, sizeof(T), what);
        return v;
    }

    u32 getU32(const char *what)
    {
        u32 v;
        getRaw(&v, sizeof v, what);
        return v;
    }

    u64 getU64(const char *what)
    {
        u64 v;
        getRaw(&v, sizeof v, what);
        return v;
    }

    std::span<const u8> getBytes(u64 n, const char *what)
    {
        need(n, what);
        const auto s = body_.subspan(pos_, n);
        pos_ += n;
        return s;
    }

    u64 remaining() const { return body_.size() - pos_; }
    u64 pos() const { return pos_; }

    [[noreturn]] void fail(const std::string &msg) const
    {
        throw TransportError(msg, fd_, pos_);
    }

    void finish(const char *what) const
    {
        if (pos_ != body_.size())
            fail(std::string(what) + ": " + std::to_string(remaining()) +
                 " trailing bytes");
    }

  private:
    void need(u64 n, const char *what) const
    {
        // pos_ <= size always holds, so the subtraction cannot wrap.
        if (n > body_.size() - pos_)
            fail(std::string(what) + ": needs " + std::to_string(n) +
                 " bytes, " + std::to_string(remaining()) + " left");
    }

    void getRaw(void *out, size_t n, const char *what)
    {
        need(n, what);
        std::memcpy(out, body_.data() + pos_, n);
        pos_ += n;
    }

    std::span<const u8> body_;
    u64 pos_ = 0;
    int fd_;
};

void
readFully(int fd, void *buf, size_t n, u64 frame_offset, const char *what,
          bool *clean_eof)
{
    u8 *p = static_cast<u8 *>(buf);
    size_t got = 0;
    while (got < n) {
        const ssize_t rc = ::read(fd, p + got, n - got);
        if (rc == 0) {
            if (clean_eof && got == 0) {
                *clean_eof = true;
                return;
            }
            throw TransportError(std::string(what) + ": peer closed after " +
                                     std::to_string(got) + " of " +
                                     std::to_string(n) + " bytes",
                                 fd, frame_offset + got);
        }
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(std::string(what) + ": read failed: " +
                                     std::strerror(errno),
                                 fd, frame_offset + got);
        }
        got += static_cast<size_t>(rc);
    }
}

void
writeFully(int fd, const void *buf, size_t n, u64 frame_offset,
           const char *what)
{
    const u8 *p = static_cast<const u8 *>(buf);
    size_t put = 0;
    while (put < n) {
        const ssize_t rc = ::write(fd, p + put, n - put);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(std::string(what) + ": write failed: " +
                                     std::strerror(errno),
                                 fd, frame_offset + put);
        }
        put += static_cast<size_t>(rc);
    }
}

} // namespace

std::vector<u8>
encodeRequest(const WorkerRequest &req)
{
    WireWriter w;
    WireRequestHead head;
    exma_assert(req.batch.size() <= ~u32{0},
                "request batch of %zu queries is too large to frame",
                req.batch.size());
    head.n_queries = static_cast<u32>(req.batch.size());
    head.grain = req.cfg.grain;
    head.total_bases = req.batch.totalBases();
    w.putPod<WireRequestHead>(head);
    for (size_t j = 0; j < req.batch.size(); ++j) {
        const std::vector<Base> &q = req.batch.query(j);
        exma_assert(q.size() <= ~u32{0},
                    "query of %zu bases is too long to frame", q.size());
        w.putU32(req.batch.ids()[j]);
        w.putU32(static_cast<u32>(q.size()));
        u64 word = 0;
        for (size_t i = 0; i < q.size(); ++i) {
            exma_assert(q[i] <= 3,
                        "query base %u is not 2-bit-packable",
                        (unsigned)q[i]);
            word |= u64{q[i]} << ((i & 31) * 2);
            if ((i & 31) == 31) {
                w.putU64(word);
                word = 0;
            }
        }
        if ((q.size() & 31) != 0)
            w.putU64(word);
    }
    return w.take();
}

WorkerRequest
decodeRequest(std::span<const u8> body, int fd)
{
    WireReader r(body, fd);
    const auto head = r.getPod<WireRequestHead>("request head");
    // Every query costs at least 8 body bytes (id + length); refuse a
    // count the frame cannot possibly hold before any allocation.
    if (u64{head.n_queries} * 8 > r.remaining())
        r.fail("request head claims " + std::to_string(head.n_queries) +
               " queries; the frame cannot hold them");
    std::vector<std::vector<Base>> queries(head.n_queries);
    std::vector<u32> ids(head.n_queries);
    u64 total_bases = 0;
    for (u32 j = 0; j < head.n_queries; ++j) {
        ids[j] = r.getU32("query id");
        const u32 n = r.getU32("query length");
        const u64 n_words = (u64{n} + 31) / 32;
        if (n_words * 8 > r.remaining())
            r.fail("query of " + std::to_string(n) +
                   " bases overruns the frame");
        std::vector<Base> &q = queries[j];
        q.resize(n);
        for (u64 wi = 0; wi < n_words; ++wi) {
            const u64 word = r.getU64("packed query word");
            const u64 base0 = wi * 32;
            const u64 limit = std::min<u64>(32, u64{n} - base0);
            for (u64 k = 0; k < limit; ++k)
                q[base0 + k] = static_cast<Base>((word >> (k * 2)) & 3);
        }
        total_bases += n;
    }
    if (total_bases != head.total_bases)
        r.fail("request base-count mismatch: head says " +
               std::to_string(head.total_bases) + ", queries carry " +
               std::to_string(total_bases));
    r.finish("request body");
    WorkerRequest req;
    req.batch = QueryBatchView::own(std::move(queries), std::move(ids));
    req.cfg.grain = head.grain;
    return req;
}

std::vector<u8>
encodeResponse(const WorkerResponse &resp)
{
    WireWriter w;
    WireResponseHead head;
    head.status = static_cast<u32>(resp.status);
    exma_assert(resp.ids.size() <= ~u32{0},
                "response carries %zu ids — too many to frame",
                resp.ids.size());
    head.n_ids = static_cast<u32>(resp.ids.size());
    head.canary = resp.canary;
    head.seconds = resp.seconds;
    head.stats = resp.stats;
    w.putPod<WireResponseHead>(head);
    // Length-prefixed and capped both ways: the decoder refuses
    // anything larger, so truncate at the source too.
    const size_t err_len =
        std::min<size_t>(resp.error.size(), kMaxErrorBytes);
    w.putU32(static_cast<u32>(err_len));
    w.putBytes(resp.error.data(), err_len);
    for (const u32 id : resp.ids)
        w.putU32(id);
    exma_assert(resp.hits.size() <= ~u32{0},
                "response carries %zu hit rows — too many to frame",
                resp.hits.size());
    w.putU32(static_cast<u32>(resp.hits.size()));
    for (const auto &row : resp.hits) {
        w.putU64(row.size());
        for (const u64 pos : row)
            w.putU64(pos);
    }
    return w.take();
}

WorkerResponse
decodeResponse(std::span<const u8> body, int fd)
{
    WireReader r(body, fd);
    const auto head = r.getPod<WireResponseHead>("response head");
    if (head.status > static_cast<u32>(WorkerStatus::WorkerDown))
        r.fail("response status " + std::to_string(head.status) +
               " is not a WorkerStatus");
    WorkerResponse resp;
    resp.status = static_cast<WorkerStatus>(head.status);
    resp.canary = head.canary;
    resp.seconds = head.seconds;
    resp.stats = head.stats;
    const u32 err_len = r.getU32("error length");
    if (err_len > kMaxErrorBytes)
        r.fail("error string of " + std::to_string(err_len) +
               " bytes exceeds the " + std::to_string(kMaxErrorBytes) +
               "-byte cap");
    const std::span<const u8> err = r.getBytes(err_len, "error string");
    resp.error.assign(reinterpret_cast<const char *>(err.data()),
                      err.size());
    if (u64{head.n_ids} * 4 > r.remaining())
        r.fail("response head claims " + std::to_string(head.n_ids) +
               " ids; the frame cannot hold them");
    resp.ids.resize(head.n_ids);
    for (u32 j = 0; j < head.n_ids; ++j)
        resp.ids[j] = r.getU32("response id");
    const u32 n_rows = r.getU32("hit row count");
    if (u64{n_rows} * 8 > r.remaining())
        r.fail("response claims " + std::to_string(n_rows) +
               " hit rows; the frame cannot hold them");
    resp.hits.resize(n_rows);
    for (u32 j = 0; j < n_rows; ++j) {
        const u64 n_hits = r.getU64("hit count");
        if (n_hits > r.remaining() / 8)
            r.fail("hit row of " + std::to_string(n_hits) +
                   " positions overruns the frame");
        resp.hits[j].resize(n_hits);
        for (u64 k = 0; k < n_hits; ++k)
            resp.hits[j][k] = r.getU64("hit position");
    }
    r.finish("response body");
    return resp;
}

bool
readFrame(int fd, WireFrame &out)
{
    bool clean_eof = false;
    out.header = FrameHeader{};
    readFully(fd, &out.header, sizeof(FrameHeader), 0, "frame header",
              &clean_eof);
    if (clean_eof)
        return false;
    const FrameHeader &h = out.header;
    if (std::memcmp(h.magic, "EXMF", 4) != 0)
        throw TransportError("bad frame magic", fd, 0);
    if (h.version != kFormatVersion)
        throw TransportError("frame version " + std::to_string(h.version) +
                                 " != built " +
                                 std::to_string(kFormatVersion) +
                                 " (router/worker binary skew)",
                             fd, offsetof(FrameHeader, version));
    if (h.type < kFrameRequest || h.type > kFrameHeartbeat)
        throw TransportError("unknown frame type " + std::to_string(h.type),
                             fd, offsetof(FrameHeader, type));
    if (h.body_bytes > kMaxFrameBytes)
        throw TransportError("frame body of " +
                                 std::to_string(h.body_bytes) +
                                 " bytes exceeds the cap",
                             fd, offsetof(FrameHeader, body_bytes));
    out.body.resize(h.body_bytes);
    if (h.body_bytes)
        readFully(fd, out.body.data(), out.body.size(),
                  sizeof(FrameHeader), "frame body", nullptr);
    if (fnv1a(std::span<const u8>(out.body)) != h.canary)
        throw TransportError("frame canary mismatch", fd,
                             sizeof(FrameHeader));
    return true;
}

void
writeFrame(int fd, u16 type, u32 seq, std::span<const u8> body)
{
    exma_assert(body.size() <= kMaxFrameBytes,
                "frame body of %zu bytes exceeds the cap", body.size());
    FrameHeader h;
    h.type = type;
    h.seq = seq;
    h.body_bytes = body.size();
    h.canary = fnv1a(body);
    writeFully(fd, &h, sizeof h, 0, "frame header");
    if (!body.empty())
        writeFully(fd, body.data(), body.size(), sizeof h, "frame body");
}

void
ignoreSigpipe()
{
    // A write to a dead peer must surface as EPIPE -> TransportError,
    // not kill the process. Thread-safe via the magic static.
    static const bool installed = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)installed;
}

} // namespace exma
