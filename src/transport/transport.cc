#include "transport/transport.hh"

namespace exma {

u64
responseCanary(const WorkerResponse &r)
{
    u64 h = 14695981039346656037ULL; // FNV-1a offset basis
    const auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(r.ids.size());
    for (const u32 id : r.ids)
        mix(id);
    for (const auto &hits : r.hits) {
        mix(hits.size());
        for (const u64 pos : hits)
            mix(pos);
    }
    return h;
}

} // namespace exma
