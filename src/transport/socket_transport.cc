#include "transport/socket_transport.hh"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.hh"
#include "transport/wire.hh"

extern char **environ;

namespace exma {

std::string
discoverWorkerBinary(const std::string &hint)
{
    namespace fs = std::filesystem;
    if (!hint.empty())
        return hint;
    if (const char *env = std::getenv("EXMA_WORKER_BIN"); env && *env)
        return env;
    // Build-tree layout: any binary under build/ has the worker at
    // build/tools/exma-worker/exma-worker — walk up from our own
    // executable until the relative path resolves.
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec) {
        fs::path dir = self.parent_path();
        for (;;) {
            const fs::path cand =
                dir / "tools" / "exma-worker" / "exma-worker";
            if (fs::exists(cand, ec) && !ec)
                return cand.string();
            const fs::path parent = dir.parent_path();
            if (parent == dir)
                break;
            dir = parent;
        }
    }
    return "exma-worker"; // last resort: PATH lookup (posix_spawnp)
}

SocketTransport::SocketTransport(std::string name,
                                 SocketTransportConfig cfg, bool has_table,
                                 bool is_empty)
    : name_(std::move(name)), cfg_(std::move(cfg)), has_table_(has_table),
      is_empty_(is_empty)
{
    ignoreSigpipe();
    spawnChild();
    thread_ = std::thread([this] { run(); });
}

void
SocketTransport::spawnChild()
{
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        exma_warn("socket worker '%s': socketpair failed: %s",
                  name_.c_str(), std::strerror(errno));
        return; // fd_ stays -1; every request resolves WorkerDown
    }
    // Parent end must not leak into other spawned children.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    if (sv[1] != 3) {
        posix_spawn_file_actions_adddup2(&fa, sv[1], 3);
        posix_spawn_file_actions_addclose(&fa, sv[1]);
    }

    const std::string fd_arg = "3";
    const char *argv[] = {
        cfg_.binary.c_str(), "--fd",    fd_arg.c_str(),
        "--name",            name_.c_str(),
        "--state",           cfg_.state.c_str(),
        "--stem",            cfg_.stem.c_str(),
        nullptr,
    };
    // Faults are injected parent-side only: the injector's per-site
    // nth counters must survive child respawns, and a child running
    // its own injector would double-fire every plan. Strip the fault
    // environment from the child.
    std::vector<char *> envp;
    for (char **e = environ; *e != nullptr; ++e) {
        if (std::strncmp(*e, "EXMA_FAULTS=", 12) == 0 ||
            std::strncmp(*e, "EXMA_FAULT_SEED=", 16) == 0)
            continue;
        envp.push_back(*e);
    }
    envp.push_back(nullptr);

    pid_t pid = -1;
    const int rc =
        ::posix_spawnp(&pid, cfg_.binary.c_str(), &fa, nullptr,
                       const_cast<char *const *>(argv), envp.data());
    posix_spawn_file_actions_destroy(&fa);
    ::close(sv[1]);
    fd_ = sv[0];
    if (rc != 0) {
        // Not fatal: with the child end closed and no child, the
        // first round-trip reads EOF and resolves WorkerDown — the
        // same signal as a replica crashing at startup.
        exma_warn("socket worker '%s': spawn of '%s' failed: %s",
                  name_.c_str(), cfg_.binary.c_str(), std::strerror(rc));
        return;
    }
    pid_ = pid;
}

SocketTransport::~SocketTransport()
{
    {
        MutexLock lock(mtx_);
        stop_ = true;
    }
    cancel_.cancel();
    cv_.notify_all();
    // Unblock an in-flight round-trip; a healthy child's pending
    // response is abandoned (the router reaps every future before
    // tearing transports down, so nothing user-visible is in flight).
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    killProcess();
    if (pid_ > 0)
        ::waitpid(pid_, nullptr, 0); // reap exactly once, here
    if (fd_ >= 0)
        ::close(fd_);
    // Anything still queued resolves with a typed WorkerDown response —
    // never a broken promise surfacing as std::future_error.
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    for (Pending &p : doomed)
        resolveDown(p);
}

std::future<WorkerResponse>
SocketTransport::submit(WorkerRequest req)
{
    Pending p;
    p.req = std::move(req);
    std::future<WorkerResponse> future = p.promise.get_future();
    inbox_depth_.fetch_add(1, std::memory_order_relaxed);

    bool down = false;
    {
        MutexLock lock(mtx_);
        // The dead_ check lives under the inbox lock: kill() stores
        // dead_ before draining under this lock, so either we observe
        // dead_ here, or our entry is in the inbox before the drain
        // sweeps it. No request can slip between the two and dangle.
        if (dead_.load(std::memory_order_acquire) || stop_)
            down = true;
        else
            inbox_.push_back(std::move(p));
    }
    if (down)
        resolveDown(p);
    else
        cv_.notify_one();
    return future;
}

void
SocketTransport::kill()
{
    markDead();
    killProcess(); // the real signal: SIGKILL, repeatable
    // Unblock a round-trip parked in read()/write() on either side.
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    cv_.notify_all();
    for (Pending &p : doomed)
        resolveDown(p);
}

void
SocketTransport::markDead()
{
    dead_.store(true, std::memory_order_release);
    cancel_.cancel(); // wake any injected hang/delay immediately
}

void
SocketTransport::killProcess()
{
    if (pid_ > 0)
        ::kill(pid_, SIGKILL);
}

void
SocketTransport::resolveDown(Pending &p)
{
    WorkerResponse r;
    r.status = WorkerStatus::WorkerDown;
    r.error = "worker '" + name_ + "' down";
    r.ids = p.req.batch.ids();
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(r));
}

void
SocketTransport::run()
{
    for (;;) {
        Pending p;
        {
            MutexLock lock(mtx_);
            while (!stop_ && !dead_.load(std::memory_order_relaxed) &&
                   inbox_.empty())
                cv_.wait(lock);
            if (stop_ || dead_.load(std::memory_order_relaxed))
                return; // queued entries are drained by kill()/dtor
            p = std::move(inbox_.front());
            inbox_.pop_front();
        }
        serve(std::move(p));
        if (isDead())
            return;
    }
}

WorkerResponse
SocketTransport::roundTrip(const WorkerRequest &req)
{
    if (fd_ < 0)
        throw TransportError("worker '" + name_ + "' has no channel",
                             -1, 0);
    const u32 seq = ++seq_;
    const std::vector<u8> body = encodeRequest(req);
    writeFrame(fd_, kFrameRequest, seq, body);
    WireFrame frame;
    for (;;) {
        if (!readFrame(fd_, frame))
            throw TransportError("worker '" + name_ +
                                     "' closed the channel mid-request",
                                 fd_, 0);
        if (frame.header.type == kFrameHeartbeat) {
            // Chunk-granular liveness across the process boundary.
            heartbeat_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (frame.header.type != kFrameResponse ||
            frame.header.seq != seq)
            throw TransportError(
                "worker '" + name_ + "' sent frame type " +
                    std::to_string(frame.header.type) + " seq " +
                    std::to_string(frame.header.seq) +
                    " while awaiting response " + std::to_string(seq),
                fd_, 0);
        return decodeResponse(
            std::span<const u8>(frame.body.data(), frame.body.size()),
            fd_);
    }
}

void
SocketTransport::serve(Pending p)
{
    heartbeat_.fetch_add(1, std::memory_order_relaxed);

    bool inject_throw = false;
    bool inject_corrupt = false;
    if (FaultInjector *fi = faultInjector()) {
        for (const FaultAction &a : fi->at(name_)) {
            switch (a.kind) {
            case FaultKind::KillWorker:
                // Real worker death: kill() SIGKILLs the child.
                markDead();
                resolveDown(p);
                kill(); // drain whatever queued behind this request
                return;
            case FaultKind::HangRequest:
                // Stuck replica: the serving lane stalls, the child
                // is never contacted, no heartbeat ticks — until the
                // supervisor (or a kill) cancels the sleep; then the
                // worker is gone for real.
                cancel_.sleepFor(a.ms);
                markDead();
                resolveDown(p);
                kill();
                return;
            case FaultKind::DelayMs:
                // Slow replica: serve late — unless the worker died
                // (or is being destroyed) mid-sleep.
                if (!cancel_.sleepFor(a.ms)) {
                    resolveDown(p);
                    return;
                }
                break;
            case FaultKind::ThrowInProcess:
                inject_throw = true;
                break;
            case FaultKind::CorruptResponse:
                inject_corrupt = true;
                break;
            }
        }
    }

    WorkerResponse out;
    if (inject_throw) {
        // Parity with the in-process worker: the fault models the
        // shard *compute* throwing, not the channel. The child is
        // never contacted, stays alive, and nothing respawns —
        // identical retry behaviour on both transports.
        out.status = WorkerStatus::Failed;
        out.error = "injected fault: process() threw in worker '" +
                    name_ + "'";
        out.ids = p.req.batch.ids();
    } else {
        try {
            out = roundTrip(p.req);
        } catch (const TransportError &e) {
            // A broken channel is a dead worker: the child crashed,
            // the stream was shut down, or a frame failed validation.
            // One consistent signal for the failover path.
            exma_warn("socket worker '%s': %s", name_.c_str(), e.what());
            markDead();
            resolveDown(p);
            kill();
            return;
        }
    }

    if (isDead()) {
        // Killed while the request was on the wire: a dead worker
        // never answers Ok, so failover sees one consistent signal.
        resolveDown(p);
        return;
    }

    if (out.ok() && inject_corrupt) {
        // Flip payload *after* the child stamped its canary — the
        // router must catch this via recompute, like a wire checksum.
        bool flipped = false;
        for (auto &hits : out.hits) {
            if (!hits.empty()) {
                hits.front() ^= 1;
                flipped = true;
                break;
            }
        }
        if (!flipped)
            out.ids.push_back(~u32{0});
    }
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    processed_.fetch_add(1, std::memory_order_relaxed);
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(out));
}

} // namespace exma
