/**
 * @file
 * One shard's in-process execution engine behind the Transport seam:
 * a ShardWorker owns a dedicated thread whose work queue is the
 * worker's inbox. Callers submit a WorkerRequest (a QueryBatchView
 * over a shared query batch) and get a completion future; the worker
 * thread drains its inbox in order and fulfils each future with
 * translated global hit positions (serveShardRequest — the same
 * compute the out-of-process exma-worker binary runs).
 *
 * The shape is deliberately that of an RPC endpoint — request in,
 * response out, no shared mutable state beyond the inbox — and since
 * this PR it *is* one implementation of the Transport interface, with
 * SocketTransport as the out-of-process sibling (the EXMA paper's
 * channels are physically separate DIMMs; FindeR's banks are
 * independent rank engines). Failures are *data, not exceptions*:
 * every submitted future resolves with a typed WorkerResponse whose
 * status says Ok, Failed (compute threw; the message rides along), or
 * WorkerDown (the worker died or was destroyed before serving it). A
 * future obtained from submit() never throws and is never abandoned
 * to std::future_error — exactly the contract the socket transport
 * gives, which is what makes this worker the differential oracle.
 *
 * Fault injection (src/fault/) probes the worker's stable name as its
 * site on every dequeue, so a FaultInjector can kill this worker on
 * its Nth request, hang it, delay it, make compute throw, or corrupt
 * the response payload after the integrity canary is stamped. The
 * heartbeat counter ticks on every dequeue and every processed batch
 * chunk (BatchConfig::progress), letting a WorkerSupervisor tell a
 * slow worker from a hung one.
 *
 * Thread-safety analysis: the inbox deque and stop flag are
 * EXMA_GUARDED_BY the worker mutex; depth/heartbeat/processed/dead
 * are lock-free atomics. Everything else the worker touches (the
 * ShardState pointers) is immutable after construction. Route new
 * mutable state through the mutex or an atomic; the analysis gate is
 * on the clang CI leg.
 */

#ifndef EXMA_TRANSPORT_SHARD_WORKER_HH
#define EXMA_TRANSPORT_SHARD_WORKER_HH

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "fault/fault_injector.hh"
#include "transport/transport.hh"
#include "transport/worker_core.hh"

namespace exma {

class ShardWorker final : public Transport
{
  public:
    /** Legacy spellings; the seam types live in transport.hh. */
    using Request = WorkerRequest;
    using Response = WorkerResponse;
    using Status = WorkerStatus;

    /** The integrity stamp Response::canary carries (FNV-1a). */
    static u64 responseCanary(const Response &r)
    {
        return exma::responseCanary(r);
    }

    /**
     * @param name      stable worker name; also the fault-injection
     *                  site ("<shard>/r<i>" in a ReplicaSet).
     * @param table     the shard's segment-mapped ExmaTable, or null
     *                  when the shard is too small to index.
     * @param scan_ref  extracted local reference for table-less shards
     *                  (served by direct scanning), or null.
     * @param segments  the shard's segment map; may be empty/null only
     *                  with both @p table and @p scan_ref null — an
     *                  empty shard, which answers every query with no
     *                  hits.
     */
    ShardWorker(std::string name, const ExmaTable *table,
                const std::vector<Base> *scan_ref,
                const std::vector<TextSegment> *segments);

    /**
     * Stops the worker thread. Pending inbox entries resolve with
     * WorkerDown (never a broken promise); an in-flight request is
     * allowed to finish, with injected sleeps cancelled.
     */
    ~ShardWorker() override;

    ShardWorker(const ShardWorker &) = delete;
    ShardWorker &operator=(const ShardWorker &) = delete;

    std::future<Response> submit(Request req) override;

    /**
     * Simulate worker death: mark dead, cancel any injected sleep, and
     * resolve every queued request with WorkerDown. The supervisor
     * uses this to put down hung workers; tests and the kill-loop soak
     * use it as the crash switch.
     */
    void kill() override;

    bool isDead() const override
    {
        return dead_.load(std::memory_order_acquire);
    }

    u64 inboxDepth() const override
    {
        return inbox_depth_.load(std::memory_order_relaxed);
    }

    u64 heartbeat() const override
    {
        return heartbeat_.load(std::memory_order_relaxed);
    }

    const std::string &name() const override { return name_; }

    bool hasTable() const override { return state_.table != nullptr; }

    bool isEmpty() const override
    {
        return state_.table == nullptr && state_.scan_ref == nullptr;
    }

    u64 processed() const override
    {
        return processed_.load(std::memory_order_relaxed);
    }

  private:
    struct Pending
    {
        Request req;
        std::promise<Response> promise;
    };

    void run();
    void serve(Pending p);
    /** Resolve @p p with WorkerDown and release its inbox-depth slot. */
    void resolveDown(Pending &p);
    void markDead();
    Response process(const Request &req);

    std::string name_;
    ShardState state_;

    std::atomic<u64> processed_{0};
    std::atomic<u64> heartbeat_{0};
    std::atomic<u64> inbox_depth_{0};
    std::atomic<bool> dead_{false};
    CancelToken cancel_;

    Mutex mtx_;
    CondVar cv_;
    std::deque<Pending> inbox_ EXMA_GUARDED_BY(mtx_);
    bool stop_ EXMA_GUARDED_BY(mtx_) = false;
    std::thread thread_; ///< last member: joins before the rest dies
};

/** The in-process Transport is the plain ShardWorker. */
using InProcessTransport = ShardWorker;

} // namespace exma

#endif // EXMA_TRANSPORT_SHARD_WORKER_HH
