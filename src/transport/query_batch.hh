/**
 * @file
 * The query payload of a worker request, owned or borrowed. The old
 * seam aliased the router's whole batch through a raw pointer —
 * fine in-process, meaningless across a process boundary. A
 * QueryBatchView is the encodable replacement: the router borrows its
 * shared batch (zero copies, exactly the old data path), while a wire
 * decoder owns the queries it just unpacked. Either way the view
 * presents one shape — query(j) is the j-th query this worker must
 * serve and ids()[j] is the router-side id its response row echoes.
 */

#ifndef EXMA_TRANSPORT_QUERY_BATCH_HH
#define EXMA_TRANSPORT_QUERY_BATCH_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace exma {

class QueryBatchView
{
  public:
    /** An empty batch (serves zero queries). */
    QueryBatchView() = default;

    /**
     * Borrow @p batch — the router's shared query storage, which must
     * outlive the completion future — and serve batch[ids[j]] for
     * every j. This is the in-process fast path: no query is copied.
     */
    static QueryBatchView borrow(const std::vector<std::vector<Base>> &batch,
                                 std::vector<u32> ids);

    /**
     * Own @p queries (one per served query, index-aligned with
     * @p ids); this is what a wire decoder builds. ids[j] is only an
     * echo for the router-side scatter — it does not index queries.
     */
    static QueryBatchView own(std::vector<std::vector<Base>> queries,
                              std::vector<u32> ids);

    /** Number of queries this request asks the worker to serve. */
    size_t size() const { return ids_.size(); }

    bool empty() const { return ids_.empty(); }

    /** Router-side query ids, index-aligned with the response rows. */
    const std::vector<u32> &ids() const { return ids_; }

    /** The j-th query to serve, j in [0, size()). */
    const std::vector<Base> &query(size_t j) const
    {
        return borrowed_ ? (*borrowed_)[ids_[j]] : owned_[j];
    }

    /**
     * Batch storage + index list in the shape BatchSearcher's routed
     * overload takes: storage()[storageIds()[j]] == query(j).
     */
    const std::vector<std::vector<Base>> &storage() const
    {
        return borrowed_ ? *borrowed_ : owned_;
    }

    const std::vector<u32> &storageIds() const
    {
        return borrowed_ ? ids_ : owned_ids_;
    }

    /** Total bases across the served queries (wire cross-check). */
    u64 totalBases() const;

  private:
    const std::vector<std::vector<Base>> *borrowed_ = nullptr;
    std::vector<std::vector<Base>> owned_;
    std::vector<u32> ids_;
    std::vector<u32> owned_ids_; ///< iota over owned_, owned mode only
};

} // namespace exma

#endif // EXMA_TRANSPORT_QUERY_BATCH_HH
