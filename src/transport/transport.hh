/**
 * @file
 * The transport-agnostic worker seam. A Transport is one replica's
 * endpoint: submit a WorkerRequest, get a future that always resolves
 * with a typed WorkerResponse — Ok, Failed (the worker's compute
 * threw; the message rides along), or WorkerDown (the worker died or
 * was destroyed before serving it). Failures are data, not
 * exceptions, and a future obtained from submit() is never abandoned
 * to std::future_error.
 *
 * Two implementations exist: ShardWorker (the in-process inbox +
 * dedicated thread — the default, and the differential oracle) and
 * SocketTransport (a spawned exma-worker child process behind a Unix
 * socket speaking length-prefixed canary-stamped frames). ReplicaSet,
 * WorkerSupervisor and ShardRouter only ever talk through this
 * interface, so the process boundary is a construction-time choice,
 * not a routing-code fork.
 *
 * The liveness surface (inboxDepth / heartbeat / processed / isDead /
 * kill) is part of the interface because the failover tier is built
 * on it: power-of-two-choices reads inboxDepth, the supervisor reads
 * heartbeat, and kill() is the one idempotent crash switch every
 * layer (supervisor, router reap path, tests) may pull.
 */

#ifndef EXMA_TRANSPORT_TRANSPORT_HH
#define EXMA_TRANSPORT_TRANSPORT_HH

#include <future>
#include <string>
#include <vector>

#include "batch/batch_searcher.hh"
#include "common/search_stats.hh"
#include "common/types.hh"
#include "transport/query_batch.hh"

namespace exma {

/** One unit of worker work: serve the batch with these knobs. */
struct WorkerRequest
{
    /** The queries to serve plus their router-side ids. */
    QueryBatchView batch;
    /** Per-request search knobs (threads are forced to 1: the
     *  worker's parallelism is the worker, cross-shard). */
    BatchConfig cfg;
};

enum class WorkerStatus : u8 {
    Ok,         ///< hits are valid (canary-checkable)
    Failed,     ///< worker compute threw; error holds the message
    WorkerDown, ///< worker died/destroyed before serving this
};

/** Outcome, index-aligned with the request's batch ids. */
struct WorkerResponse
{
    WorkerStatus status = WorkerStatus::Ok;
    std::string error; ///< diagnostic for Failed / WorkerDown
    std::vector<u32> ids;
    /** Global match positions per id, sorted ascending. Within one
     *  shard a global position occurs at most once (segment maps
     *  never overlap themselves), so no per-shard dedup is run. */
    std::vector<std::vector<u64>> hits;
    /** Integrity stamp over ids+hits (responseCanary); the router
     *  recomputes it and discards mismatching responses the way it
     *  would a failed checksum on a wire transport. */
    u64 canary = 0;
    SearchStats stats;
    double seconds = 0.0; ///< worker-side wall clock for the batch

    bool ok() const { return status == WorkerStatus::Ok; }
};

/** The integrity stamp WorkerResponse::canary carries (FNV-1a). */
u64 responseCanary(const WorkerResponse &r);

/** One replica endpoint; see file comment for the contract. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Enqueue a request; the future resolves when the replica has
     * served it. Requests are served in submission order. Never
     * blocks; submitting to a dead replica resolves immediately with
     * WorkerDown.
     */
    virtual std::future<WorkerResponse> submit(WorkerRequest req) = 0;

    /**
     * Put the replica down: mark dead, interrupt whatever it is
     * doing, and resolve every queued request with WorkerDown.
     * Idempotent — the supervisor and the router's reap path may call
     * it repeatedly on an already-dead replica.
     */
    virtual void kill() = 0;

    virtual bool isDead() const = 0;

    /** Queued + in-flight requests — the power-of-two-choices load
     *  signal. */
    virtual u64 inboxDepth() const = 0;

    /** Liveness counter: ticks on dequeue and per processed chunk. A
     *  replica with inboxDepth() > 0 and a frozen heartbeat is hung. */
    virtual u64 heartbeat() const = 0;

    /** Requests served to completion (Ok or Failed; monotonic). */
    virtual u64 processed() const = 0;

    /** Stable replica name; also the fault-injection site. */
    virtual const std::string &name() const = 0;

    virtual bool hasTable() const = 0;
    virtual bool isEmpty() const = 0;
};

} // namespace exma

#endif // EXMA_TRANSPORT_TRANSPORT_HH
