#include "transport/shard_worker.hh"

#include <stdexcept>
#include <utility>

#include "common/logging.hh"

namespace exma {

ShardWorker::ShardWorker(std::string name, const ExmaTable *table,
                         const std::vector<Base> *scan_ref,
                         const std::vector<TextSegment> *segments)
    : name_(std::move(name)), state_{table, scan_ref, segments}
{
    validateShardState(name_, state_);
    thread_ = std::thread([this] { run(); });
}

ShardWorker::~ShardWorker()
{
    {
        MutexLock lock(mtx_);
        stop_ = true;
    }
    cancel_.cancel();
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Anything still queued resolves with a typed WorkerDown response —
    // never a broken promise surfacing as std::future_error.
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    for (Pending &p : doomed)
        resolveDown(p);
}

std::future<ShardWorker::Response>
ShardWorker::submit(Request req)
{
    Pending p;
    p.req = std::move(req);
    std::future<Response> future = p.promise.get_future();
    inbox_depth_.fetch_add(1, std::memory_order_relaxed);

    bool down = false;
    {
        MutexLock lock(mtx_);
        // The dead_ check lives under the inbox lock: kill() stores
        // dead_ before draining under this lock, so either we observe
        // dead_ here, or our entry is in the inbox before the drain
        // sweeps it. No request can slip between the two and dangle.
        if (dead_.load(std::memory_order_acquire) || stop_)
            down = true;
        else
            inbox_.push_back(std::move(p));
    }
    if (down)
        resolveDown(p);
    else
        cv_.notify_one();
    return future;
}

void
ShardWorker::kill()
{
    markDead();
    std::deque<Pending> doomed;
    {
        MutexLock lock(mtx_);
        doomed.swap(inbox_);
    }
    cv_.notify_all();
    for (Pending &p : doomed)
        resolveDown(p);
}

void
ShardWorker::markDead()
{
    dead_.store(true, std::memory_order_release);
    cancel_.cancel(); // wake any injected hang/delay immediately
}

void
ShardWorker::resolveDown(Pending &p)
{
    Response r;
    r.status = Status::WorkerDown;
    r.error = "worker '" + name_ + "' down";
    r.ids = p.req.batch.ids();
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(r));
}

void
ShardWorker::run()
{
    for (;;) {
        Pending p;
        {
            MutexLock lock(mtx_);
            while (!stop_ && !dead_.load(std::memory_order_relaxed) &&
                   inbox_.empty())
                cv_.wait(lock);
            if (stop_ || dead_.load(std::memory_order_relaxed))
                return; // queued entries are drained by kill()/dtor
            p = std::move(inbox_.front());
            inbox_.pop_front();
        }
        serve(std::move(p));
        if (isDead())
            return;
    }
}

void
ShardWorker::serve(Pending p)
{
    heartbeat_.fetch_add(1, std::memory_order_relaxed);

    bool inject_throw = false;
    bool inject_corrupt = false;
    if (FaultInjector *fi = faultInjector()) {
        for (const FaultAction &a : fi->at(name_)) {
            switch (a.kind) {
            case FaultKind::KillWorker:
                markDead();
                resolveDown(p);
                kill(); // drain whatever queued behind this request
                return;
            case FaultKind::HangRequest:
                // Stuck replica: no heartbeat until the supervisor (or
                // a kill) cancels the sleep; then the worker is gone.
                cancel_.sleepFor(a.ms);
                markDead();
                resolveDown(p);
                kill();
                return;
            case FaultKind::DelayMs:
                // Slow replica: serve late — unless the worker died
                // (or is being destroyed) mid-sleep.
                if (!cancel_.sleepFor(a.ms)) {
                    resolveDown(p);
                    return;
                }
                break;
            case FaultKind::ThrowInProcess:
                inject_throw = true;
                break;
            case FaultKind::CorruptResponse:
                inject_corrupt = true;
                break;
            }
        }
    }

    Response out;
    try {
        if (inject_throw)
            throw std::runtime_error("injected fault: process() threw in "
                                     "worker '" +
                                     name_ + "'");
        out = process(p.req);
    } catch (const std::exception &e) {
        out = Response{};
        out.status = Status::Failed;
        out.error = e.what();
        out.ids = p.req.batch.ids();
    }

    if (isDead()) {
        // Killed while computing: a dead worker never answers Ok, so
        // the router's failover path sees one consistent signal.
        resolveDown(p);
        return;
    }

    if (out.ok()) {
        out.canary = responseCanary(out);
        if (inject_corrupt) {
            // Flip payload *after* the canary stamp — the router must
            // catch this via recompute, like a wire checksum would.
            bool flipped = false;
            for (auto &hits : out.hits) {
                if (!hits.empty()) {
                    hits.front() ^= 1;
                    flipped = true;
                    break;
                }
            }
            if (!flipped)
                out.ids.push_back(~u32{0});
        }
    }
    // Counters first, delivery last: a caller that observed the future
    // ready must see the post-request counter state.
    processed_.fetch_add(1, std::memory_order_relaxed);
    inbox_depth_.fetch_sub(1, std::memory_order_relaxed);
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(out));
}

ShardWorker::Response
ShardWorker::process(const Request &req)
{
    return serveShardRequest(state_, req, [this] {
        heartbeat_.fetch_add(1, std::memory_order_relaxed);
    });
}

} // namespace exma
