/**
 * @file
 * The shard-serving compute, factored out of the transport layer so
 * the in-process ShardWorker and the out-of-process exma-worker
 * binary run the *same* code on a request — which is what makes the
 * socket path differentially testable against the inbox path.
 *
 * A ShardState is one shard's immutable serving state: a
 * segment-mapped ExmaTable, or an extracted scan reference plus its
 * segment map (shards too small to index), or neither (an empty
 * shard, which answers every query with no hits).
 */

#ifndef EXMA_TRANSPORT_WORKER_CORE_HH
#define EXMA_TRANSPORT_WORKER_CORE_HH

#include <functional>
#include <string>
#include <vector>

#include "core/exma_table.hh"
#include "transport/transport.hh"

namespace exma {

/** One shard's immutable serving state (pointers are borrowed). */
struct ShardState
{
    /** Segment-mapped table, or null when the shard is too small. */
    const ExmaTable *table = nullptr;
    /** Extracted local reference for table-less shards, or null. */
    const std::vector<Base> *scan_ref = nullptr;
    /** Segment map; may be null only for an empty shard. */
    const std::vector<TextSegment> *segments = nullptr;
};

/** Asserts the table/scan_ref/segments combination is coherent. */
void validateShardState(const std::string &name, const ShardState &st);

/**
 * Serve @p req against @p st: search (or scan) every query in the
 * batch and return global hit positions index-aligned with the
 * request ids. @p progress ticks per processed chunk — both sides
 * turn it into heartbeats so a supervisor can tell a slow batch from
 * a hung worker. Status is always Ok; callers translate exceptions.
 */
WorkerResponse serveShardRequest(const ShardState &st,
                                 const WorkerRequest &req,
                                 const std::function<void()> &progress);

} // namespace exma

#endif // EXMA_TRANSPORT_WORKER_CORE_HH
