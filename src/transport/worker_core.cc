#include "transport/worker_core.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace exma {
namespace {

void
scanQuery(const ShardState &st, const std::vector<Base> &query,
          std::vector<u64> &hits)
{
    // Tiny shards are not worth an ExmaTable: scan each segment
    // directly. A match must fit inside one segment, which the
    // per-segment search range enforces by construction; segments
    // ascend in both coordinate spaces, so hits come out sorted.
    for (const TextSegment &seg : *st.segments) {
        if (seg.length < query.size())
            continue;
        const auto begin = st.scan_ref->begin() +
                           static_cast<std::ptrdiff_t>(seg.local_begin);
        const auto end = begin + static_cast<std::ptrdiff_t>(seg.length);
        for (auto it = std::search(begin, end, query.begin(), query.end());
             it != end;
             it = std::search(it + 1, end, query.begin(), query.end()))
            hits.push_back(seg.global_begin + static_cast<u64>(it - begin));
    }
}

} // namespace

void
validateShardState(const std::string &name, const ShardState &st)
{
    exma_assert(!(st.table && st.scan_ref),
                "worker '%s' got both a table and a scan reference",
                name.c_str());
    if (st.table)
        exma_assert(st.table->segmented(),
                    "worker '%s' needs a segment-mapped table to "
                    "translate hits into global coordinates",
                    name.c_str());
    if (st.scan_ref) {
        exma_assert(st.segments && !st.segments->empty(),
                    "worker '%s' scans but has no segment map",
                    name.c_str());
        exma_assert(st.scan_ref->size() ==
                        segmentsLocalLength(*st.segments),
                    "worker '%s': scan reference holds %zu bases but "
                    "the segment map covers %llu",
                    name.c_str(), st.scan_ref->size(),
                    (unsigned long long)segmentsLocalLength(*st.segments));
    }
}

WorkerResponse
serveShardRequest(const ShardState &st, const WorkerRequest &req,
                  const std::function<void()> &progress)
{
    const auto t0 = std::chrono::steady_clock::now();
    WorkerResponse out;
    out.ids = req.batch.ids();

    if (st.table) {
        BatchConfig cfg = req.cfg;
        cfg.threads = 1; // the worker thread IS the execution lane
        cfg.locate = true;
        cfg.per_query_stats = false;
        // Caps are the router's job, applied after the cross-shard
        // merge; a per-shard cap would keep a shard-dependent subset.
        cfg.locate_limit = 0;
        // Chunk-granular liveness: the supervisor reads this to tell
        // "slow batch" from "hung worker".
        cfg.progress = progress;
        BatchResult br = BatchSearcher(*st.table, cfg)
                             .search(req.batch.storage(),
                                     req.batch.storageIds());
        out.hits = std::move(br.positions);
        out.stats = br.stats;
    } else {
        out.hits.resize(req.batch.size());
        if (st.scan_ref) {
            for (size_t j = 0; j < req.batch.size(); ++j) {
                scanQuery(st, req.batch.query(j), out.hits[j]);
                if (progress)
                    progress();
            }
        }
        // Empty shard: its prefix range has no occurrences, so no
        // query routed here can match — every response is hitless.
    }

    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

} // namespace exma
