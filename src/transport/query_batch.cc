#include "transport/query_batch.hh"

#include <numeric>
#include <utility>

#include "common/logging.hh"

namespace exma {

QueryBatchView
QueryBatchView::borrow(const std::vector<std::vector<Base>> &batch,
                       std::vector<u32> ids)
{
    QueryBatchView v;
    v.borrowed_ = &batch;
    v.ids_ = std::move(ids);
    for (const u32 id : v.ids_)
        exma_assert(id < batch.size(),
                    "query id %u outside the %zu-query batch",
                    (unsigned)id, batch.size());
    return v;
}

QueryBatchView
QueryBatchView::own(std::vector<std::vector<Base>> queries,
                    std::vector<u32> ids)
{
    QueryBatchView v;
    v.owned_ = std::move(queries);
    v.ids_ = std::move(ids);
    exma_assert(v.owned_.size() == v.ids_.size(),
                "owned batch carries %zu queries but %zu ids",
                v.owned_.size(), v.ids_.size());
    v.owned_ids_.resize(v.owned_.size());
    std::iota(v.owned_ids_.begin(), v.owned_ids_.end(), u32{0});
    return v;
}

u64
QueryBatchView::totalBases() const
{
    u64 total = 0;
    for (size_t j = 0; j < size(); ++j)
        total += query(j).size();
    return total;
}

} // namespace exma
