/**
 * @file
 * The wire protocol between a router and an out-of-process shard
 * worker: length-prefixed, canary-stamped, version-tagged frames over
 * a byte stream (a Unix-domain socket in practice).
 *
 * Every frame is a fixed 32-byte FrameHeader followed by body_bytes
 * of payload. The header carries the magic, the on-disk format
 * version (a router and a worker built from different format
 * generations refuse each other outright — the same policy the mmap
 * loaders apply), the frame type, a request sequence number the
 * response echoes, and an FNV-1a canary over the body so a flipped
 * bit anywhere in the payload is a detected transport error, not a
 * silently wrong answer.
 *
 * Request bodies 2-bit-pack each query (the alphabet is ACGT), so a
 * batch frame costs ~n/4 bytes of query payload. Response bodies
 * carry the typed WorkerResponse: status, a length-prefixed error
 * string (capped at kMaxErrorBytes — a corrupt length fails closed,
 * it never over-reads), ids, per-id hit rows, the application-level
 * response canary, timing and search stats.
 *
 * Decoding is fail-closed end to end: every length is bounds-checked
 * against the remaining body before any allocation, trailing bytes
 * are an error, and all failures throw TransportError carrying the
 * fd and the frame/body offset — the transport analogue of
 * LoadError's path + section offset.
 *
 * The framing structs are serialized PODs and therefore registered
 * in src/io/format_abi.lock by the ondisk-abi analyzer pass: a
 * layout drift between a router and an older worker binary is a CI
 * failure, not a wire corruption.
 */

#ifndef EXMA_TRANSPORT_WIRE_HH
#define EXMA_TRANSPORT_WIRE_HH

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/search_stats.hh"
#include "common/types.hh"
#include "io/format.hh"
#include "transport/transport.hh"

namespace exma {

/**
 * A wire-layer failure: framing, I/O, or a bounds/validation error
 * while decoding. Carries the fd and the byte offset (within the
 * frame being read or written) where decoding stopped, like
 * LoadError carries path + offset for the mmap path.
 */
class TransportError : public std::runtime_error
{
  public:
    TransportError(const std::string &what, int fd, u64 offset)
        : std::runtime_error(what + " (fd " + std::to_string(fd) +
                             " @+" + std::to_string(offset) + ")"),
          fd_(fd), offset_(offset)
    {
    }

    int fd() const { return fd_; }
    u64 frameOffset() const { return offset_; }

  private:
    int fd_;
    u64 offset_;
};

/** Frame types (FrameHeader::type). */
enum : u16 {
    kFrameRequest = 1,   ///< router -> worker: encoded WorkerRequest
    kFrameResponse = 2,  ///< worker -> router: encoded WorkerResponse
    kFrameHeartbeat = 3, ///< worker -> router: liveness tick, no body
};

/** Hard cap on a frame body; a corrupt length fails closed here. */
constexpr u64 kMaxFrameBytes = u64{1} << 31;
/** Hard cap on a decoded WorkerResponse::error string. */
constexpr u32 kMaxErrorBytes = 4096;

/** Fixed preamble of every frame. */
struct FrameHeader
{
    char magic[4] = {'E', 'X', 'M', 'F'};
    u32 version = kFormatVersion; ///< wire format == on-disk format
    u16 type = 0;                 ///< kFrame*
    u16 reserved0 = 0;
    u32 seq = 0;        ///< request sequence; responses echo it
    u64 body_bytes = 0; ///< payload length following this header
    u64 canary = 0;     ///< fnv1a over the body bytes
};

/** Leading record of a request body. */
struct WireRequestHead
{
    u32 n_queries = 0;
    u32 reserved0 = 0;
    u64 grain = 0;       ///< BatchConfig::grain
    u64 total_bases = 0; ///< cross-check over all packed queries
};

/** Leading record of a response body. */
struct WireResponseHead
{
    u32 status = 0; ///< WorkerStatus, validated on decode
    u32 n_ids = 0;
    u64 canary = 0; ///< application-level responseCanary
    double seconds = 0.0;
    SearchStats stats;
};

/** One decoded frame: validated header + raw body bytes. */
struct WireFrame
{
    FrameHeader header;
    std::vector<u8> body;
};

/** Encode @p req (queries 2-bit-packed) into a request body. */
std::vector<u8> encodeRequest(const WorkerRequest &req);

/** Decode a request body; throws TransportError on any violation. */
WorkerRequest decodeRequest(std::span<const u8> body, int fd);

/** Encode @p resp into a response body. */
std::vector<u8> encodeResponse(const WorkerResponse &resp);

/** Decode a response body; throws TransportError on any violation. */
WorkerResponse decodeResponse(std::span<const u8> body, int fd);

/**
 * Read one frame from @p fd (blocking, EINTR-safe). Returns false on
 * a clean EOF at a frame boundary — the peer closed the stream
 * between frames. Anything else that is not a whole valid frame
 * (truncation, bad magic, version skew, oversized body, canary
 * mismatch, I/O error) throws TransportError.
 */
bool readFrame(int fd, WireFrame &out);

/** Write one frame (header + body) to @p fd; EINTR/partial-safe. */
void writeFrame(int fd, u16 type, u32 seq, std::span<const u8> body);

/**
 * Process-wide, once: ignore SIGPIPE so a write to a dead peer
 * surfaces as an EPIPE TransportError instead of killing the
 * process. Both sides of the socket call this before first I/O.
 */
void ignoreSigpipe();

} // namespace exma

#endif // EXMA_TRANSPORT_WIRE_HH
