#include "apps/app_model.hh"

namespace exma {

AppBreakdown
cpuBreakdown(const std::string &app, const AppCounts &counts,
             const CpuCostModel &model)
{
    AppBreakdown b;
    b.app = app;
    b.fm_s = static_cast<double>(counts.fm_symbols) *
             model.fm_ns_per_symbol * 1e-9;
    b.dp_s = static_cast<double>(counts.dp_cells) * model.dp_ns_per_cell *
             1e-9;
    b.other_s = static_cast<double>(counts.other_ops) *
                model.other_ns_per_op * 1e-9;
    return b;
}

double
exmaAppSpeedup(const AppBreakdown &cpu, double fm_speedup)
{
    const double accelerated =
        cpu.fm_s / fm_speedup + cpu.dp_s + cpu.other_s;
    return accelerated > 0.0 ? cpu.total() / accelerated : 1.0;
}

AppEnergy
cpuAppEnergy(const AppBreakdown &cpu, const CpuCostModel &model)
{
    AppEnergy e;
    // CPU active for the entire run; DRAM background charged to the
    // chip/IO split used by Fig. 20.
    e.cpu_j = model.cpu_power_w * cpu.total();
    const double dram_w = 72.0;
    e.dram_chip_j = dram_w * 0.8 * cpu.total();
    e.dram_io_j = dram_w * 0.2 * cpu.total();
    return e;
}

AppEnergy
exmaAppEnergy(const AppBreakdown &cpu, double fm_speedup,
              double exma_power_w, double dram_power_w,
              const CpuCostModel &model)
{
    AppEnergy e;
    const double fm_s = cpu.fm_s / fm_speedup;
    const double host_s = cpu.dp_s + cpu.other_s;
    // The CPU idles (near-zero dynamic power) while EXMA runs searches.
    e.cpu_j = model.cpu_power_w * host_s;
    e.dram_chip_j = dram_power_w * 0.8 * (fm_s + host_s);
    e.dram_io_j = dram_power_w * 0.2 * (fm_s + host_s);
    e.exma_dyn_j = exma_power_w * 0.75 * fm_s;
    e.exma_leak_j = exma_power_w * 0.25 * (fm_s + host_s);
    return e;
}

} // namespace exma
