#include "apps/assembler.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "fmindex/fm_index.hh"

namespace exma {
namespace {

/**
 * FM-Index over the concatenated reads with per-read boundaries, so a
 * matched row can be attributed to the read containing it.
 */
struct ReadsIndex
{
    std::vector<Base> text;
    std::vector<u64> starts; ///< read r begins at starts[r]
    std::unique_ptr<FmIndex> fm;

    explicit ReadsIndex(const std::vector<Read> &reads)
    {
        for (const Read &r : reads) {
            starts.push_back(text.size());
            text.insert(text.end(), r.seq.begin(), r.seq.end());
        }
        fm = std::make_unique<FmIndex>(text);
    }

    u32
    readOf(u64 pos) const
    {
        auto it = std::upper_bound(starts.begin(), starts.end(), pos);
        return static_cast<u32>(it - starts.begin() - 1);
    }
};

} // namespace

AssembleResult
assembleOverlaps(const std::vector<Read> &reads,
                 const AssemblerParams &params)
{
    AssembleResult result;
    if (reads.empty())
        return result;

    ReadsIndex idx(reads);

    // Optional FM-Index-based error correction (long reads): vote each
    // k-mer's support; the FM search work is what matters for Fig. 1.
    std::vector<Read> working = reads;
    if (params.error_correct) {
        const int k = params.correct_k;
        for (Read &r : working) {
            if (static_cast<int>(r.seq.size()) <= k)
                continue;
            for (size_t i = 0; i + static_cast<size_t>(k) <= r.seq.size();
                 i += static_cast<size_t>(k)) {
                std::vector<Base> kmer(r.seq.begin() +
                                           static_cast<std::ptrdiff_t>(i),
                                       r.seq.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               i + static_cast<size_t>(k)));
                auto iv = idx.fm->search(kmer);
                result.counts.fm_symbols += static_cast<u64>(k);
                if (iv.count() <= 1) {
                    // Weakly supported k-mer: try the 4 single-base
                    // repairs of its first symbol (bounded FMLRC-style
                    // voting).
                    for (Base b = 0; b < 4; ++b) {
                        if (b == kmer[0])
                            continue;
                        kmer[0] = b;
                        auto alt = idx.fm->search(kmer);
                        result.counts.fm_symbols += static_cast<u64>(k);
                        if (alt.count() > 2) {
                            r.seq[i] = b;
                            ++result.corrected_bases;
                            break;
                        }
                    }
                }
            }
        }
    }

    // Overlap detection: search each read's suffix of min_overlap; any
    // other read whose body contains it at a prefix position overlaps.
    for (u32 r = 0; r < working.size(); ++r) {
        const auto &seq = working[r].seq;
        if (static_cast<int>(seq.size()) < params.min_overlap)
            continue;
        std::vector<Base> suffix(
            seq.end() - params.min_overlap, seq.end());
        auto iv = idx.fm->search(suffix);
        result.counts.fm_symbols += static_cast<u64>(params.min_overlap);
        auto hits = idx.fm->locateAll(iv, 16);
        result.counts.fm_symbols += hits.size() * 8; // LF walks
        for (u64 pos : hits) {
            const u32 other = idx.readOf(pos);
            if (other == r)
                continue;
            if (pos == idx.starts[other]) // suffix matches their prefix
                result.overlaps.push_back(
                    OverlapEdge{r, other, params.min_overlap});
        }
        result.counts.other_ops += seq.size();
    }
    return result;
}

} // namespace exma
