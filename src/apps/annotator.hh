/**
 * @file
 * Exact-word-match genome annotation (Healy et al., the paper's
 * "ExactWordMatch" workload): slide a window over annotation queries
 * and report occurrence counts of every word in the reference.
 */

#ifndef EXMA_APPS_ANNOTATOR_HH
#define EXMA_APPS_ANNOTATOR_HH

#include <vector>

#include "apps/app_model.hh"
#include "fmindex/fm_index.hh"

namespace exma {

struct AnnotateResult
{
    u64 words = 0;
    u64 matched_words = 0;   ///< words occurring at least once
    u64 unique_words = 0;    ///< words occurring exactly once
    AppCounts counts;
};

/**
 * Annotate @p queries against @p fm using non-overlapping windows of
 * @p word_len.
 */
AnnotateResult annotate(const FmIndex &fm,
                        const std::vector<std::vector<Base>> &queries,
                        int word_len = 20);

} // namespace exma

#endif // EXMA_APPS_ANNOTATOR_HH
