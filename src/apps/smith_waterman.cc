#include "apps/smith_waterman.hh"

#include <algorithm>

namespace exma {

SwResult
smithWaterman(const std::vector<Base> &query,
              const std::vector<Base> &target, const SwParams &p)
{
    SwResult res;
    const int m = static_cast<int>(query.size());
    const int n = static_cast<int>(target.size());
    if (m == 0 || n == 0)
        return res;

    constexpr int kNegInf = -(1 << 28);
    // Rolling rows of H (match), E (gap in query), F (gap in target).
    std::vector<int> h_prev(static_cast<size_t>(n) + 1, 0);
    std::vector<int> e_prev(static_cast<size_t>(n) + 1, kNegInf);
    std::vector<int> h_cur(static_cast<size_t>(n) + 1, 0);
    std::vector<int> e_cur(static_cast<size_t>(n) + 1, kNegInf);

    for (int i = 1; i <= m; ++i) {
        const int lo = std::max(1, i - p.band);
        const int hi = std::min(n, i + p.band);
        // Once the band slides entirely past the target (query much
        // longer than target), no row has any cells left — and lo - 1
        // would index past the end of the rolling rows.
        if (lo > hi)
            break;
        h_cur[static_cast<size_t>(lo - 1)] = 0;
        int f = kNegInf;
        for (int j = lo; j <= hi; ++j) {
            ++res.cells;
            const int e = std::max(
                e_prev[static_cast<size_t>(j)] + p.gap_extend,
                h_prev[static_cast<size_t>(j)] + p.gap_open);
            f = std::max(f + p.gap_extend,
                         h_cur[static_cast<size_t>(j - 1)] + p.gap_open);
            const int diag =
                h_prev[static_cast<size_t>(j - 1)] +
                (query[static_cast<size_t>(i - 1)] ==
                         target[static_cast<size_t>(j - 1)]
                     ? p.match
                     : p.mismatch);
            int h = std::max({0, diag, e, f});
            h_cur[static_cast<size_t>(j)] = h;
            e_cur[static_cast<size_t>(j)] = e;
            if (h > res.score) {
                res.score = h;
                res.query_end = i;
                res.ref_end = j;
            }
        }
        // The band shifts by at most one column per row, so the next
        // row only reads indices lo-1..hi+1 of these buffers: every
        // in-band cell was written above, and the two boundary cells
        // are reset here. No full-row clear — that would make the
        // banded kernel O(m*n) instead of O(m*band).
        if (hi < n) {
            h_cur[static_cast<size_t>(hi + 1)] = 0;
            e_cur[static_cast<size_t>(hi + 1)] = kNegInf;
        }
        std::swap(h_prev, h_cur);
        std::swap(e_prev, e_cur);
    }
    return res;
}

} // namespace exma
