/**
 * @file
 * Reference-based sequence compression via FM-Index longest-match
 * parsing (Prochazka & Holub, the paper's "compress" workload): factor
 * a target sequence into (position, length) copies from the reference
 * plus literal bases.
 */

#ifndef EXMA_APPS_COMPRESSOR_HH
#define EXMA_APPS_COMPRESSOR_HH

#include <vector>

#include "apps/app_model.hh"
#include "fmindex/fm_index.hh"

namespace exma {

struct CompressResult
{
    u64 input_bytes = 0;
    u64 compressed_bytes = 0;
    u64 copy_tokens = 0;
    u64 literal_bases = 0;
    AppCounts counts;

    double
    ratio() const
    {
        return input_bytes ? static_cast<double>(compressed_bytes) /
                                 static_cast<double>(input_bytes)
                           : 1.0;
    }
};

/**
 * Greedy longest-match parse of @p target against @p fm's reference.
 * Copy tokens cost 8 bytes (position + length); literals 1 byte each.
 */
CompressResult compressAgainstReference(const FmIndex &fm,
                                        const std::vector<Base> &target,
                                        int min_match = 12);

/** Verify a parse by re-expanding it (used by tests and examples). */
std::vector<Base> decompressTokens(const std::vector<Base> &ref,
                                   const std::vector<u8> &blob);

/** Serialised token stream for round-trip verification. */
CompressResult compressWithBlob(const FmIndex &fm,
                                const std::vector<Base> &target,
                                std::vector<u8> &blob, int min_match = 12);

} // namespace exma

#endif // EXMA_APPS_COMPRESSOR_HH
