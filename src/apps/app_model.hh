/**
 * @file
 * Operation accounting and CPU/EXMA time-energy models for the genome
 * analysis applications (Fig. 1 execution-time breakdown, Fig. 19
 * speedups, Fig. 20 energy). Applications count the real operations
 * they execute — FM-Index symbols searched, dynamic-programming cells
 * filled, other bytes touched — and these models convert counts to
 * time on the paper's 16-core CPU, with and without the EXMA
 * accelerator owning the FM-Index portion.
 */

#ifndef EXMA_APPS_APP_MODEL_HH
#define EXMA_APPS_APP_MODEL_HH

#include <string>

#include "common/types.hh"

namespace exma {

/** Real operation counts collected by an application run. */
struct AppCounts
{
    u64 fm_symbols = 0;  ///< DNA symbols resolved via FM-Index search
    u64 dp_cells = 0;    ///< Smith-Waterman cells filled
    u64 other_ops = 0;   ///< misc. linear work (bytes touched)

    AppCounts &
    operator+=(const AppCounts &o)
    {
        fm_symbols += o.fm_symbols;
        dp_cells += o.dp_cells;
        other_ops += o.other_ops;
        return *this;
    }
};

/** Unit costs on the CPU baseline. */
struct CpuCostModel
{
    double fm_ns_per_symbol = 60.0; ///< LISA-21 software search
    double dp_ns_per_cell = 0.8;    ///< vectorised SW on 16 cores
    double other_ns_per_op = 0.35;

    double cpu_power_w = 95.0;
};

/** Execution-time split of one application run (seconds). */
struct AppBreakdown
{
    std::string app;
    double fm_s = 0.0;
    double dp_s = 0.0;
    double other_s = 0.0;

    double total() const { return fm_s + dp_s + other_s; }
    double fmFraction() const { return total() > 0 ? fm_s / total() : 0; }
    double dpFraction() const { return total() > 0 ? dp_s / total() : 0; }
};

/** CPU-only execution time of an application run. */
AppBreakdown cpuBreakdown(const std::string &app, const AppCounts &counts,
                          const CpuCostModel &model = CpuCostModel());

/** Speedup when EXMA accelerates the FM portion by @p fm_speedup. */
double exmaAppSpeedup(const AppBreakdown &cpu, double fm_speedup);

/** Energy split of a run (Joules), CPU-only and with EXMA. */
struct AppEnergy
{
    double cpu_j = 0.0;
    double dram_chip_j = 0.0;
    double dram_io_j = 0.0;
    double exma_dyn_j = 0.0;
    double exma_leak_j = 0.0;

    double
    total() const
    {
        return cpu_j + dram_chip_j + dram_io_j + exma_dyn_j + exma_leak_j;
    }
};

/**
 * Energy model: on CPU the processor burns cpu_power_w for the whole
 * run and DRAM serves everything; with EXMA the CPU is off during the
 * FM phase (the accelerator and DRAM run it) — §VI's energy argument.
 */
AppEnergy cpuAppEnergy(const AppBreakdown &cpu,
                       const CpuCostModel &model = CpuCostModel());
AppEnergy exmaAppEnergy(const AppBreakdown &cpu, double fm_speedup,
                        double exma_power_w, double dram_power_w,
                        const CpuCostModel &model = CpuCostModel());

} // namespace exma

#endif // EXMA_APPS_APP_MODEL_HH
