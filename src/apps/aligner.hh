/**
 * @file
 * Seed-and-extend read alignment (BWA-MEM/MA style, §II.A): SMEM
 * seeding through the FMD index, then banded Smith-Waterman extension
 * around the best seeds. Counts the real work in each phase so the
 * time models can reproduce Fig. 1 / Fig. 19 / Fig. 20.
 */

#ifndef EXMA_APPS_ALIGNER_HH
#define EXMA_APPS_ALIGNER_HH

#include <vector>

#include "apps/app_model.hh"
#include "fmindex/fmd_index.hh"
#include "genome/reads.hh"

namespace exma {

struct AlignerParams
{
    int min_seed_len = 17;   ///< BWA-MEM default -k 19, shortened a bit
    u64 max_seed_hits = 8;   ///< extend at most this many seed hits
    int flank = 32;          ///< reference flank around a seed
};

struct Alignment
{
    bool mapped = false;
    u64 ref_pos = 0;
    bool is_rc = false;
    int score = 0;
};

struct AlignResult
{
    std::vector<Alignment> alignments;
    AppCounts counts;
    u64 mapped = 0;
    u64 correct = 0; ///< mapped within tolerance of the true origin
};

/** Align @p reads against @p ref via @p fmd. */
AlignResult alignReads(const std::vector<Base> &ref, const FmdIndex &fmd,
                       const std::vector<Read> &reads,
                       const AlignerParams &params = AlignerParams());

} // namespace exma

#endif // EXMA_APPS_ALIGNER_HH
