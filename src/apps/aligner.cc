#include "apps/aligner.hh"

#include <algorithm>

#include "apps/smith_waterman.hh"

namespace exma {
namespace {

/** Extract ref[lo, hi) clamped to bounds. */
std::vector<Base>
refSlice(const std::vector<Base> &ref, i64 lo, i64 hi)
{
    lo = std::max<i64>(lo, 0);
    hi = std::min<i64>(hi, static_cast<i64>(ref.size()));
    if (hi <= lo)
        return {};
    return {ref.begin() + lo, ref.begin() + hi};
}

} // namespace

AlignResult
alignReads(const std::vector<Base> &ref, const FmdIndex &fmd,
           const std::vector<Read> &reads, const AlignerParams &params)
{
    AlignResult result;
    result.alignments.reserve(reads.size());
    const SwParams sw_params;

    for (const Read &read : reads) {
        Alignment best;
        AppCounts &c = result.counts;
        const int rlen = static_cast<int>(read.seq.size());

        // Seeding: every SMEM pass touches each read symbol roughly
        // twice (forward sweep + backward sweep) — this is the
        // FM-Index work the accelerator absorbs.
        auto smems = fmd.collectSmems(read.seq, params.min_seed_len);
        c.fm_symbols += 2 * read.seq.size();

        // Rank seeds: longer first (rarer, more anchoring).
        std::sort(smems.begin(), smems.end(),
                  [](const Smem &a, const Smem &b) {
                      return a.length() > b.length();
                  });

        const int perfect = sw_params.match * rlen;
        bool done = false;
        for (size_t s = 0; s < smems.size() && s < 4 && !done; ++s) {
            const Smem &m = smems[s];
            auto hits = fmd.locate(m, params.max_seed_hits);
            // Each locate is an LF-walk: more FM work.
            c.fm_symbols += hits.size() * 16;
            for (const auto &h : hits) {
                // Seed-and-extend: the seed bases are already an exact
                // match; only the unseeded flanks need dynamic
                // programming (BWA-MEM's extension model). Error-free
                // reads are fully covered by one SMEM and do ~no DP.
                const int qb = h.is_rc ? rlen - m.qe : m.qb;
                const int qe = h.is_rc ? rlen - m.qb : m.qe;
                auto query = h.is_rc ? reverseComplement(read.seq)
                                     : read.seq;

                int score = sw_params.match * m.length();
                const i64 seed_ref = static_cast<i64>(h.pos);

                if (qb > 0) {
                    std::vector<Base> left(query.begin(),
                                           query.begin() + qb);
                    auto target = refSlice(
                        ref, seed_ref - qb - params.flank, seed_ref);
                    SwResult sw = smithWaterman(left, target, sw_params);
                    c.dp_cells += sw.cells;
                    score += sw.score;
                }
                if (qe < rlen) {
                    std::vector<Base> right(query.begin() + qe,
                                            query.end());
                    const i64 seed_end =
                        seed_ref + static_cast<i64>(m.length());
                    auto target = refSlice(ref, seed_end,
                                           seed_end + (rlen - qe) +
                                               params.flank);
                    SwResult sw = smithWaterman(right, target, sw_params);
                    c.dp_cells += sw.cells;
                    score += sw.score;
                }

                if (score > best.score) {
                    best.mapped = true;
                    best.score = score;
                    best.is_rc = h.is_rc;
                    best.ref_pos =
                        static_cast<u64>(std::max<i64>(seed_ref - qb, 0));
                }
                if (best.score >= perfect * 9 / 10) {
                    done = true; // near-perfect alignment found
                    break;
                }
            }
        }
        // Output/bookkeeping work.
        result.counts.other_ops += read.seq.size();

        if (best.mapped) {
            ++result.mapped;
            const u64 tol = 64 + read.seq.size() / 4;
            const u64 lo = read.true_pos > tol ? read.true_pos - tol : 0;
            if (best.ref_pos >= lo && best.ref_pos <= read.true_pos + tol)
                ++result.correct;
        }
        result.alignments.push_back(best);
    }
    return result;
}

} // namespace exma
