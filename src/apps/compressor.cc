#include "apps/compressor.hh"

#include "common/logging.hh"

namespace exma {

CompressResult
compressWithBlob(const FmIndex &fm, const std::vector<Base> &target,
                 std::vector<u8> &blob, int min_match)
{
    CompressResult res;
    res.input_bytes = target.size();
    blob.clear();

    // Parse right-to-left: FM backward search naturally extends a match
    // leftwards, so the longest factor *ending* at i is found by
    // extending until the interval empties.
    i64 i = static_cast<i64>(target.size());
    std::vector<u8> rev_blob;
    while (i > 0) {
        Interval iv = fm.fullInterval();
        i64 j = i;
        Interval last_nonempty = iv;
        while (j > 0) {
            Interval next = fm.extend(iv, target[static_cast<size_t>(j - 1)]);
            ++res.counts.fm_symbols;
            if (next.empty())
                break;
            iv = next;
            last_nonempty = next;
            --j;
        }
        const i64 len = i - j;
        if (len >= min_match) {
            const u64 pos = fm.locate(last_nonempty.low);
            res.counts.fm_symbols += 8; // LF walk for locate
            ++res.copy_tokens;
            rev_blob.push_back(1);
            for (int b = 0; b < 4; ++b)
                rev_blob.push_back(static_cast<u8>(pos >> (8 * b)));
            const u16 len16 = static_cast<u16>(std::min<i64>(len, 65535));
            rev_blob.push_back(static_cast<u8>(len16 & 0xff));
            rev_blob.push_back(static_cast<u8>(len16 >> 8));
            i = j + (len - len16); // only if clamped (never for our sizes)
        } else {
            ++res.literal_bases;
            rev_blob.push_back(0);
            rev_blob.push_back(target[static_cast<size_t>(i - 1)]);
            --i;
        }
        res.counts.other_ops += 4;
    }
    // Tokens were produced back-to-front; reverse token-wise.
    std::vector<std::pair<size_t, size_t>> spans;
    size_t off = 0;
    while (off < rev_blob.size()) {
        const size_t len = rev_blob[off] == 1 ? 7 : 2;
        spans.emplace_back(off, len);
        off += len;
    }
    for (auto it = spans.rbegin(); it != spans.rend(); ++it)
        blob.insert(blob.end(), rev_blob.begin() +
                                    static_cast<std::ptrdiff_t>(it->first),
                    rev_blob.begin() +
                        static_cast<std::ptrdiff_t>(it->first + it->second));
    res.compressed_bytes = blob.size();
    return res;
}

CompressResult
compressAgainstReference(const FmIndex &fm, const std::vector<Base> &target,
                         int min_match)
{
    std::vector<u8> blob;
    return compressWithBlob(fm, target, blob, min_match);
}

std::vector<Base>
decompressTokens(const std::vector<Base> &ref, const std::vector<u8> &blob)
{
    std::vector<Base> out;
    size_t off = 0;
    while (off < blob.size()) {
        if (blob[off] == 1) {
            exma_assert(off + 7 <= blob.size(), "truncated copy token");
            u64 pos = 0;
            for (int b = 0; b < 4; ++b)
                pos |= static_cast<u64>(blob[off + 1 +
                                             static_cast<size_t>(b)])
                       << (8 * b);
            const u16 len = static_cast<u16>(blob[off + 5] |
                                             (blob[off + 6] << 8));
            exma_assert(pos + len <= ref.size(), "copy out of range");
            out.insert(out.end(),
                       ref.begin() + static_cast<std::ptrdiff_t>(pos),
                       ref.begin() + static_cast<std::ptrdiff_t>(pos + len));
            off += 7;
        } else {
            exma_assert(off + 2 <= blob.size(), "truncated literal");
            out.push_back(blob[off + 1]);
            off += 2;
        }
    }
    return out;
}

} // namespace exma
