/**
 * @file
 * SGA-style FM-Index read-overlap computation (§V "SGA for read
 * assembly"): build an FM-Index over the read set and find, for every
 * read, the reads whose prefix exactly overlaps its suffix by at least
 * min_overlap bases. Long-read assembly first runs FM-Index-based
 * error correction (the FMLRC-style scheme the paper cites).
 */

#ifndef EXMA_APPS_ASSEMBLER_HH
#define EXMA_APPS_ASSEMBLER_HH

#include <vector>

#include "apps/app_model.hh"
#include "genome/reads.hh"

namespace exma {

struct AssemblerParams
{
    int min_overlap = 31;
    bool error_correct = false; ///< k-mer-vote correction (long reads)
    int correct_k = 15;
};

struct OverlapEdge
{
    u32 from = 0;
    u32 to = 0;
    int length = 0;
};

struct AssembleResult
{
    std::vector<OverlapEdge> overlaps;
    AppCounts counts;
    u64 corrected_bases = 0;
};

/** Compute the overlap graph of @p reads. */
AssembleResult assembleOverlaps(const std::vector<Read> &reads,
                                const AssemblerParams &params =
                                    AssemblerParams());

} // namespace exma

#endif // EXMA_APPS_ASSEMBLER_HH
