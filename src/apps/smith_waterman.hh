/**
 * @file
 * Banded affine-gap Smith-Waterman — the seed-extension kernel of
 * seed-and-extend read alignment (§II.A), and the "DynPro" component of
 * Fig. 1's execution-time breakdown.
 */

#ifndef EXMA_APPS_SMITH_WATERMAN_HH
#define EXMA_APPS_SMITH_WATERMAN_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace exma {

struct SwParams
{
    int match = 2;
    int mismatch = -4;
    int gap_open = -6;
    int gap_extend = -1;
    int band = 32; ///< half-width of the anti-diagonal band
};

struct SwResult
{
    int score = 0;
    u64 cells = 0;    ///< DP cells actually filled (for Fig. 1)
    int query_end = 0;
    int ref_end = 0;
};

/** Local alignment of @p query against @p target within a band. */
SwResult smithWaterman(const std::vector<Base> &query,
                       const std::vector<Base> &target,
                       const SwParams &params = SwParams());

} // namespace exma

#endif // EXMA_APPS_SMITH_WATERMAN_HH
