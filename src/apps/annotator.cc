#include "apps/annotator.hh"

namespace exma {

AnnotateResult
annotate(const FmIndex &fm, const std::vector<std::vector<Base>> &queries,
         int word_len)
{
    AnnotateResult res;
    for (const auto &q : queries) {
        for (size_t i = 0; i + static_cast<size_t>(word_len) <= q.size();
             i += static_cast<size_t>(word_len)) {
            std::vector<Base> word(
                q.begin() + static_cast<std::ptrdiff_t>(i),
                q.begin() +
                    static_cast<std::ptrdiff_t>(i +
                                                static_cast<size_t>(
                                                    word_len)));
            auto iv = fm.search(word);
            res.counts.fm_symbols += static_cast<u64>(word_len);
            ++res.words;
            if (!iv.empty()) {
                ++res.matched_words;
                if (iv.count() == 1)
                    ++res.unique_words;
            }
        }
        res.counts.other_ops += q.size() / 8;
    }
    return res;
}

} // namespace exma
