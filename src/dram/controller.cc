#include "dram/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace exma {

ChannelController::ChannelController(EventQueue &eq, const DramConfig &cfg,
                                     int channel)
    : eq_(eq), cfg_(cfg), channel_(channel)
{
    const int lanes = cfg.chip_level_parallelism ? cfg.chips_per_rank : 1;
    const int n_banks = cfg.banksPerChannel() * lanes;
    banks_.resize(static_cast<size_t>(n_banks));
    lane_free_.assign(static_cast<size_t>(lanes), 0);
    faw_.resize(static_cast<size_t>(cfg.ranksPerChannel()));
    rrd_rank_.assign(static_cast<size_t>(cfg.ranksPerChannel()), 0);
    rrd_bg_.assign(static_cast<size_t>(cfg.ranksPerChannel() *
                                       cfg.bankgroups_per_rank),
                   0);
}

int
ChannelController::bankIndex(const DramCoord &c) const
{
    int idx = (c.rank * cfg_.bankgroups_per_rank + c.bankgroup) *
                  cfg_.banks_per_bankgroup +
              c.bank;
    if (cfg_.chip_level_parallelism) {
        exma_assert(c.chip >= 0 && c.chip < cfg_.chips_per_rank,
                    "chip id required in chip-level-parallelism mode");
        idx = idx * cfg_.chips_per_rank + c.chip;
    }
    return idx;
}

int
ChannelController::laneIndex(const DramCoord &c) const
{
    return cfg_.chip_level_parallelism ? c.chip : 0;
}

u64
ChannelController::demandKey(int bank_idx, u64 row) const
{
    return (static_cast<u64>(bank_idx) << 40) | row;
}

u32
ChannelController::rowDemand(const DramCoord &c, u64 row) const
{
    auto it = row_demand_.find(demandKey(bankIndex(c), row));
    return it == row_demand_.end() ? 0 : it->second;
}

void
ChannelController::enqueue(DramRequest req)
{
    exma_assert(req.coord.channel == channel_, "request on wrong channel");
    Pending p;
    p.req = std::move(req);
    p.arrival = eq_.now();
    ++row_demand_[demandKey(bankIndex(p.req.coord), p.req.coord.row)];
    queue_.push_back(std::move(p));
    scheduleEval(eq_.now());
}

Tick
ChannelController::actReadyAt(const DramCoord &c, Tick now) const
{
    const BankState &b = banks_[bankIndex(c)];
    Tick t = std::max(now, b.next_act);
    t = std::max(t, cmd_bus_free_);
    const size_t rank = static_cast<size_t>(c.rank);
    const size_t bg = static_cast<size_t>(c.rank * cfg_.bankgroups_per_rank +
                                          c.bankgroup);
    if (rrd_rank_[rank])
        t = std::max(t, rrd_rank_[rank] + clk(cfg_.tRRD_S));
    if (rrd_bg_[bg])
        t = std::max(t, rrd_bg_[bg] + clk(cfg_.tRRD_L));
    const auto &w = faw_[rank];
    if (w.size() >= 4)
        t = std::max(t, w[w.size() - 4] + clk(cfg_.tFAW));
    return t;
}

void
ChannelController::record(Tick t, DramCmd cmd, const DramCoord &c)
{
    if (log_enabled_)
        log_.push_back(CommandRecord{t, cmd, c});
}

void
ChannelController::touchActivity(Tick t)
{
    stats_.first_activity = std::min(stats_.first_activity, t);
    stats_.last_activity = std::max(stats_.last_activity, t);
}

void
ChannelController::scheduleEval(Tick when)
{
    when = std::max(when, eq_.now());
    if (eval_pending_ && eval_tick_ <= when)
        return;
    // Supersede any already-scheduled (later) evaluation: only the
    // event carrying the current generation is allowed to run, so at
    // most one live evaluation exists per channel.
    eval_pending_ = true;
    eval_tick_ = when;
    const u64 gen = ++eval_gen_;
    eq_.schedule(when, [this, gen] {
        if (gen != eval_gen_)
            return; // stale: an earlier evaluation superseded this one
        eval_pending_ = false;
        evaluate();
    });
}

void
ChannelController::evaluate()
{
    const Tick now = eq_.now();
    bool issued = true;
    // Issue as many commands as legally possible at `now`; each command
    // occupies the shared command bus for one clock, so at most one can
    // issue per clock — the loop exits once the bus moves past `now`.
    while (issued && !queue_.empty()) {
        issued = false;
        if (cmd_bus_free_ > now)
            break;

        // Pass 1 (FR-FCFS): oldest request whose open-row column
        // command can issue right now.
        Pending *column_ready = nullptr;
        for (Pending &p : queue_) {
            const DramCoord &c = p.req.coord;
            BankState &b = bank(c);
            if (!b.open || b.row != c.row || b.col_ready > now)
                continue;
            // Column-to-column spacing on the channel.
            const int bg = c.rank * cfg_.bankgroups_per_rank + c.bankgroup;
            const Tick ccd = last_col_tick_ +
                             clk(bg == last_col_bg_ ? cfg_.tCCD_L
                                                    : cfg_.tCCD_S);
            if (last_col_tick_ && ccd > now)
                continue;
            // Data lane availability at data time.
            const int lat = p.req.is_write ? cfg_.tCWL : cfg_.tCL;
            const Tick data_start = now + clk(lat);
            if (lane_free_[static_cast<size_t>(laneIndex(c))] > data_start)
                continue;
            column_ready = &p;
            break;
        }

        if (column_ready) {
            Pending &p = *column_ready;
            const DramCoord &c = p.req.coord;
            BankState &b = bank(c);
            const int lat = p.req.is_write ? cfg_.tCWL : cfg_.tCL;
            const Tick data_start = now + clk(lat);
            // A whole line always moves: over the full 64-bit bus in
            // tBL clocks, or over one chip's narrow lanes (MEDAL
            // chip-level parallelism) in chips_per_rank x tBL clocks.
            const int burst = cfg_.chip_level_parallelism
                                  ? cfg_.tBL * cfg_.chips_per_rank
                                  : cfg_.tBL;
            const Tick data_end = data_start + clk(burst);

            // Page policy: close after this access or keep the row open?
            bool keep_open = false;
            switch (cfg_.page_policy) {
                case PagePolicy::Open:
                    keep_open = true;
                    break;
                case PagePolicy::Close:
                    keep_open = false;
                    break;
                case PagePolicy::Dynamic:
                    // Keep open iff another queued request (beyond this
                    // one) wants the same row.
                    keep_open = rowDemand(c, c.row) > 1;
                    break;
            }

            const DramCmd cmd = p.req.is_write
                                    ? (keep_open ? DramCmd::Wr : DramCmd::WrA)
                                    : (keep_open ? DramCmd::Rd : DramCmd::RdA);
            record(now, cmd, c);
            cmd_bus_free_ = now + clk(1);
            stats_.cmd_busy += clk(1);
            last_col_tick_ = now;
            last_col_bg_ = c.rank * cfg_.bankgroups_per_rank + c.bankgroup;
            lane_free_[static_cast<size_t>(laneIndex(c))] = data_end;
            stats_.data_busy += data_end - data_start;
            stats_.bytes_transferred += cfg_.line_bytes;
            if (p.req.is_write) {
                ++stats_.writes;
                b.pre_ready = std::max(b.pre_ready,
                                       data_end + clk(cfg_.tWR));
            } else {
                ++stats_.reads;
                b.pre_ready = std::max(b.pre_ready, now + clk(cfg_.tRTP));
            }
            if (p.needed_act)
                ++stats_.row_misses;
            else
                ++stats_.row_hits;

            if (!keep_open) {
                // Auto-precharge at pre_ready.
                ++stats_.precharges;
                b.open = false;
                b.next_act = std::max(b.pre_ready,
                                      b.act_tick + clk(cfg_.tRAS)) +
                             clk(cfg_.tRP);
            }

            ++stats_.completed;
            stats_.total_latency_ns +=
                static_cast<double>(data_end - p.arrival) / 1000.0;
            touchActivity(data_end);

            auto cb = std::move(p.req.on_complete);
            // Erase the pending entry and its row-demand record.
            const u64 key = demandKey(bankIndex(c), c.row);
            auto dit = row_demand_.find(key);
            if (dit != row_demand_.end() && --dit->second == 0)
                row_demand_.erase(dit);
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (&*it == &p) {
                    queue_.erase(it);
                    break;
                }
            }
            if (cb)
                eq_.schedule(data_end, [cb = std::move(cb), data_end] {
                    cb(data_end);
                });
            issued = true;
            continue;
        }

        // Pass 2: oldest request that needs a PRE or ACT issuable now.
        for (Pending &p : queue_) {
            const DramCoord &c = p.req.coord;
            BankState &b = bank(c);
            if (b.open && b.row != c.row) {
                // Never close a row that a queued request still wants;
                // FR-FCFS will drain those hits first.
                if (rowDemand(c, b.row) > 0)
                    continue;
                if (b.pre_ready <= now) {
                    record(now, DramCmd::Pre, c);
                    cmd_bus_free_ = now + clk(1);
                    stats_.cmd_busy += clk(1);
                    ++stats_.precharges;
                    b.open = false;
                    b.next_act = now + clk(cfg_.tRP);
                    touchActivity(now);
                    issued = true;
                    break;
                }
            } else if (!b.open) {
                if (actReadyAt(c, now) <= now) {
                    record(now, DramCmd::Act, c);
                    cmd_bus_free_ = now + clk(1);
                    stats_.cmd_busy += clk(1);
                    ++stats_.activates;
                    b.open = true;
                    b.row = c.row;
                    b.act_tick = now;
                    b.col_ready = now + clk(cfg_.tRCD);
                    b.pre_ready = now + clk(cfg_.tRAS);
                    b.next_act = now + clk(cfg_.tRC());
                    p.needed_act = true;
                    const size_t rank = static_cast<size_t>(c.rank);
                    rrd_rank_[rank] = now;
                    rrd_bg_[static_cast<size_t>(
                        c.rank * cfg_.bankgroups_per_rank + c.bankgroup)] =
                        now;
                    faw_[rank].push_back(now);
                    if (faw_[rank].size() > 8)
                        faw_[rank].pop_front();
                    touchActivity(now);
                    issued = true;
                    break;
                }
            }
        }
    }

    if (queue_.empty())
        return;

    // Nothing more can issue at `now`; find the earliest future tick at
    // which any queued request could make progress. Requests blocked
    // behind a row another request still needs are event-driven (the
    // drain re-triggers evaluation), not time-driven — skip them.
    Tick next = ~Tick{0};
    const Tick bus = std::max(cmd_bus_free_, now + clk(1));
    for (Pending &p : queue_) {
        const DramCoord &c = p.req.coord;
        BankState &b = bank(c);
        Tick t;
        if (b.open && b.row == c.row) {
            t = std::max(b.col_ready, bus);
            const int bg = c.rank * cfg_.bankgroups_per_rank + c.bankgroup;
            if (last_col_tick_)
                t = std::max(t, last_col_tick_ +
                                    clk(bg == last_col_bg_ ? cfg_.tCCD_L
                                                           : cfg_.tCCD_S));
        } else if (b.open) {
            if (rowDemand(c, b.row) > 0)
                continue; // unblocked by a future column issue
            t = std::max(b.pre_ready, bus);
        } else {
            t = std::max(actReadyAt(c, now), bus);
        }
        next = std::min(next, t);
    }
    if (next != ~Tick{0})
        scheduleEval(next);
}

} // namespace exma
