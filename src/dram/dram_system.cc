#include "dram/dram_system.hh"

#include "common/logging.hh"

namespace exma {

DramSystem::DramSystem(EventQueue &eq, const DramConfig &cfg)
    : eq_(eq), cfg_(cfg), mapper_(cfg)
{
    for (int c = 0; c < cfg.channels; ++c)
        channels_.push_back(
            std::make_unique<ChannelController>(eq, cfg, c));
}

void
DramSystem::access(u64 addr, bool is_write,
                   std::function<void(Tick)> on_complete, int chip)
{
    DramRequest req;
    req.coord = mapper_.decode(addr);
    req.coord.chip = chip;
    req.is_write = is_write;
    req.on_complete = std::move(on_complete);
    accessCoord(std::move(req));
}

void
DramSystem::accessCoord(DramRequest req)
{
    exma_assert(req.coord.channel >= 0 &&
                    req.coord.channel < cfg_.channels,
                "bad channel %d", req.coord.channel);
    channels_[static_cast<size_t>(req.coord.channel)]->enqueue(
        std::move(req));
}

bool
DramSystem::idle() const
{
    for (const auto &c : channels_)
        if (!c->idle())
            return false;
    return true;
}

DramStats
DramSystem::stats() const
{
    DramStats s;
    for (const auto &c : channels_)
        s.merge(c->stats());
    return s;
}

double
DramSystem::bandwidthUtilization() const
{
    const DramStats s = stats();
    if (s.last_activity <= s.first_activity)
        return 0.0;
    // Fig. 21's definition: data fetched over peak deliverable bytes in
    // the active window.
    const double window_s =
        static_cast<double>(s.last_activity - s.first_activity) * 1e-12;
    return static_cast<double>(s.bytes_transferred) /
           (cfg_.peakBw() * window_s);
}

double
DramSystem::avgLatencyNs() const
{
    const DramStats s = stats();
    return s.completed ? s.total_latency_ns /
                             static_cast<double>(s.completed)
                       : 0.0;
}

double
DramSystem::rowHitRate() const
{
    const DramStats s = stats();
    const u64 cols = s.row_hits + s.row_misses;
    return cols ? static_cast<double>(s.row_hits) /
                      static_cast<double>(cols)
                : 0.0;
}

} // namespace exma
