/**
 * @file
 * DDR4 main-memory configuration. Defaults reproduce the paper's
 * Table I system: DDR4-2400, 384 GB, 4 channels, 3 DIMMs/channel,
 * 4 ranks/DIMM, 2 bank groups/rank, 2 banks/bank group, 16 chips/rank,
 * 2 KB rows, tRCD-tCAS-tRP = 16-16-16.
 */

#ifndef EXMA_DRAM_CONFIG_HH
#define EXMA_DRAM_CONFIG_HH

#include "common/types.hh"

namespace exma {

/** DRAM page-management policy (§IV.C.3). */
enum class PagePolicy
{
    Open,    ///< rows stay open until a conflict forces a precharge
    Close,   ///< auto-precharge after every column access
    Dynamic, ///< EXMA: keep open only while a same-row request is queued
};

struct DramConfig
{
    // Topology (Table I).
    int channels = 4;
    int dimms_per_channel = 3;
    int ranks_per_dimm = 4;
    int bankgroups_per_rank = 2;
    int banks_per_bankgroup = 2;
    int chips_per_rank = 16;
    u64 row_bytes = 2048;
    u64 line_bytes = 64;

    // Timing in DRAM clock cycles (DDR4-2400: tCK = 833 ps).
    Tick tck_ps = 833;
    int tRCD = 16;
    int tCL = 16;
    int tRP = 16;
    int tRAS = 39;
    int tRTP = 9;
    int tBL = 4;    ///< burst of 8 on a DDR bus = 4 clocks
    int tCCD_L = 6; ///< same bank group column-to-column
    int tCCD_S = 4;
    int tRRD_L = 6;
    int tRRD_S = 4;
    int tFAW = 26;
    int tWR = 18;
    int tCWL = 12;

    PagePolicy page_policy = PagePolicy::Close;

    /**
     * MEDAL chip-level parallelism (§III.B): each chip independently
     * activates a 1/16 partial row and returns data on its own lanes;
     * every per-chip ACT/RD still occupies the shared address bus.
     */
    bool chip_level_parallelism = false;

    int ranksPerChannel() const { return dimms_per_channel * ranks_per_dimm; }
    int banksPerRank() const { return bankgroups_per_rank * banks_per_bankgroup; }
    int banksPerChannel() const { return ranksPerChannel() * banksPerRank(); }
    u64 linesPerRow() const { return row_bytes / line_bytes; }
    int tRC() const { return tRAS + tRP; }

    /** Peak data bandwidth of one channel in bytes/second. */
    double
    channelPeakBw() const
    {
        // 8 bytes per clock edge pair (64-bit bus, DDR).
        const double clocks_per_s = 1e12 / static_cast<double>(tck_ps);
        return clocks_per_s * 16.0;
    }

    /** Peak bandwidth of the whole memory system. */
    double peakBw() const { return channelPeakBw() * channels; }

    /** The paper's Table I configuration. */
    static DramConfig
    ddr4_2400()
    {
        return DramConfig{};
    }
};

/** Decoded physical location of a memory line. */
struct DramCoord
{
    int channel = 0;
    int rank = 0;      ///< global rank id within the channel
    int bankgroup = 0;
    int bank = 0;
    u64 row = 0;
    u64 col = 0;       ///< line index within the row
    int chip = -1;     ///< >= 0 only in chip-level-parallelism mode
};

/**
 * Address mapper: line-interleaved across channels, then banks, then
 * ranks, so consecutive lines spread maximally (close-page friendly —
 * the layout prior FM-Index accelerators assume).
 */
class AddressMapper
{
  public:
    explicit AddressMapper(const DramConfig &cfg) : cfg_(cfg) {}

    DramCoord
    decode(u64 addr) const
    {
        DramCoord c;
        u64 line = addr / cfg_.line_bytes;
        c.col = line % cfg_.linesPerRow();
        line /= cfg_.linesPerRow();
        c.channel = static_cast<int>(line % cfg_.channels);
        line /= cfg_.channels;
        c.bank = static_cast<int>(line % cfg_.banks_per_bankgroup);
        line /= cfg_.banks_per_bankgroup;
        c.bankgroup = static_cast<int>(line % cfg_.bankgroups_per_rank);
        line /= cfg_.bankgroups_per_rank;
        c.rank = static_cast<int>(line % cfg_.ranksPerChannel());
        line /= cfg_.ranksPerChannel();
        c.row = line;
        return c;
    }

  private:
    DramConfig cfg_;
};

} // namespace exma

#endif // EXMA_DRAM_CONFIG_HH
