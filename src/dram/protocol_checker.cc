#include "dram/protocol_checker.hh"

#include <deque>
#include <map>

#include "common/logging.hh"

namespace exma {
namespace {

struct BankTrace
{
    bool open = false;
    u64 row = 0;
    Tick act = 0;
    Tick ready_act = 0;  ///< after tRP / tRC
    Tick ready_col = 0;  ///< after tRCD
    Tick ready_pre = 0;  ///< after tRAS / tRTP / tWR
};

} // namespace

std::vector<ProtocolViolation>
ProtocolChecker::check(const std::vector<CommandRecord> &log) const
{
    std::vector<ProtocolViolation> out;
    auto clk = [&](int c) { return static_cast<Tick>(c) * cfg_.tck_ps; };
    auto violate = [&](size_t i, const char *rule, std::string detail) {
        out.push_back(ProtocolViolation{i, rule, std::move(detail)});
    };

    std::map<int, BankTrace> banks; // keyed like the controller
    auto bank_key = [&](const DramCoord &c) {
        int idx = (c.rank * cfg_.bankgroups_per_rank + c.bankgroup) *
                      cfg_.banks_per_bankgroup +
                  c.bank;
        if (cfg_.chip_level_parallelism)
            idx = idx * cfg_.chips_per_rank + std::max(c.chip, 0);
        return idx;
    };

    Tick last_cmd = 0;
    bool have_last_cmd = false;
    std::map<int, std::deque<Tick>> faw; // per rank
    std::map<int, Tick> lane_end;        // per data lane
    Tick last_col = 0;
    int last_col_bg = -1;
    bool have_last_col = false;

    for (size_t i = 0; i < log.size(); ++i) {
        const CommandRecord &r = log[i];
        const DramCoord &c = r.coord;
        BankTrace &b = banks[bank_key(c)];

        // Shared command bus: one command per clock.
        if (have_last_cmd && r.tick < last_cmd + clk(1))
            violate(i, "cmd-bus", "two commands within one clock");
        last_cmd = r.tick;
        have_last_cmd = true;

        switch (r.cmd) {
            case DramCmd::Act: {
                if (b.open)
                    violate(i, "act-on-open", "ACT to an open bank");
                if (r.tick < b.ready_act)
                    violate(i, "tRP/tRC", "ACT before precharge completed");
                auto &w = faw[c.rank];
                while (!w.empty() && w.front() + clk(cfg_.tFAW) <= r.tick)
                    w.pop_front();
                if (w.size() >= 4)
                    violate(i, "tFAW", "5th ACT inside the tFAW window");
                w.push_back(r.tick);
                b.open = true;
                b.row = c.row;
                b.act = r.tick;
                b.ready_col = r.tick + clk(cfg_.tRCD);
                b.ready_pre = r.tick + clk(cfg_.tRAS);
                b.ready_act = r.tick + clk(cfg_.tRC());
                break;
            }
            case DramCmd::Pre: {
                if (!b.open)
                    violate(i, "pre-on-closed", "PRE to a closed bank");
                if (r.tick < b.ready_pre)
                    violate(i, "tRAS/tRTP", "PRE too early");
                b.open = false;
                b.ready_act = std::max(b.ready_act, r.tick + clk(cfg_.tRP));
                break;
            }
            case DramCmd::Rd:
            case DramCmd::RdA:
            case DramCmd::Wr:
            case DramCmd::WrA: {
                const bool is_write =
                    r.cmd == DramCmd::Wr || r.cmd == DramCmd::WrA;
                if (!b.open)
                    violate(i, "col-on-closed", "column cmd to closed bank");
                else if (b.row != c.row)
                    violate(i, "row-mismatch", "column cmd to wrong row");
                if (r.tick < b.ready_col)
                    violate(i, "tRCD", "column cmd before tRCD");
                const int bg = c.rank * cfg_.bankgroups_per_rank + c.bankgroup;
                if (have_last_col) {
                    const Tick gap =
                        clk(bg == last_col_bg ? cfg_.tCCD_L : cfg_.tCCD_S);
                    if (r.tick < last_col + gap)
                        violate(i, "tCCD", "column commands too close");
                }
                last_col = r.tick;
                last_col_bg = bg;
                have_last_col = true;

                const int lane = cfg_.chip_level_parallelism
                                     ? std::max(c.chip, 0)
                                     : 0;
                const Tick data_start =
                    r.tick + clk(is_write ? cfg_.tCWL : cfg_.tCL);
                auto it = lane_end.find(lane);
                if (it != lane_end.end() && data_start < it->second)
                    violate(i, "data-bus", "overlapping bursts on a lane");
                const int burst = cfg_.chip_level_parallelism
                                      ? cfg_.tBL * cfg_.chips_per_rank
                                      : cfg_.tBL;
                lane_end[lane] = data_start + clk(burst);

                if (is_write)
                    b.ready_pre = std::max(
                        b.ready_pre, data_start + clk(cfg_.tBL + cfg_.tWR));
                else
                    b.ready_pre =
                        std::max(b.ready_pre, r.tick + clk(cfg_.tRTP));

                if (r.cmd == DramCmd::RdA || r.cmd == DramCmd::WrA) {
                    b.open = false;
                    b.ready_act = std::max(b.ready_pre + clk(cfg_.tRP),
                                           b.act + clk(cfg_.tRC()));
                }
                break;
            }
        }
    }
    return out;
}

} // namespace exma
