/**
 * @file
 * Cycle-level DDR4 channel controller with FR-FCFS scheduling, the
 * three page policies (§IV.C.3), a shared one-command-per-clock
 * address/command bus (the resource whose contention throttles MEDAL,
 * §III.B/Fig. 7), bank/rank timing (tRCD/tCL/tRP/tRAS/tRTP/tCCD/tRRD/
 * tFAW) and per-chip data lanes for MEDAL-style chip-level parallelism.
 */

#ifndef EXMA_DRAM_CONTROLLER_HH
#define EXMA_DRAM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/event_sim.hh"
#include "common/types.hh"
#include "dram/config.hh"

namespace exma {

/** DRAM commands (A-suffixed = with auto-precharge). */
enum class DramCmd
{
    Act,
    Pre,
    Rd,
    RdA,
    Wr,
    WrA,
};

/** One issued command, for the protocol checker. */
struct CommandRecord
{
    Tick tick = 0;
    DramCmd cmd = DramCmd::Act;
    DramCoord coord;
};

/** A memory transaction presented to the controller. */
struct DramRequest
{
    DramCoord coord;
    bool is_write = false;
    std::function<void(Tick)> on_complete; ///< called with finish tick
};

/** Aggregated counters across a controller's lifetime. */
struct DramStats
{
    u64 activates = 0;
    u64 precharges = 0; ///< explicit PRE plus auto-precharges
    u64 reads = 0;
    u64 writes = 0;
    u64 row_hits = 0;   ///< column commands that needed no ACT
    u64 row_misses = 0;
    u64 bytes_transferred = 0;
    Tick data_busy = 0; ///< ticks any data lane carried a burst
    Tick cmd_busy = 0;
    u64 completed = 0;
    double total_latency_ns = 0.0; ///< arrival -> data completion
    Tick first_activity = ~Tick{0};
    Tick last_activity = 0;

    void
    merge(const DramStats &o)
    {
        activates += o.activates;
        precharges += o.precharges;
        reads += o.reads;
        writes += o.writes;
        row_hits += o.row_hits;
        row_misses += o.row_misses;
        bytes_transferred += o.bytes_transferred;
        data_busy += o.data_busy;
        cmd_busy += o.cmd_busy;
        completed += o.completed;
        total_latency_ns += o.total_latency_ns;
        first_activity = std::min(first_activity, o.first_activity);
        last_activity = std::max(last_activity, o.last_activity);
    }
};

class ChannelController
{
  public:
    ChannelController(EventQueue &eq, const DramConfig &cfg, int channel);

    /** Queue a transaction (coord.channel must match this channel). */
    void enqueue(DramRequest req);

    bool idle() const { return queue_.empty(); }
    size_t queueDepth() const { return queue_.size(); }

    const DramStats &stats() const { return stats_; }

    /** Enable command logging for protocol verification. */
    void enableLog() { log_enabled_ = true; }
    const std::vector<CommandRecord> &log() const { return log_; }

  private:
    struct BankState
    {
        bool open = false;
        u64 row = 0;
        Tick act_tick = 0;  ///< when the open row was activated
        Tick next_act = 0;  ///< earliest next ACT (tRP/tRC honoured)
        Tick col_ready = 0; ///< earliest RD/WR to the open row
        Tick pre_ready = 0; ///< earliest PRE (tRAS/tRTP honoured)
    };

    struct Pending
    {
        DramRequest req;
        Tick arrival = 0;
        bool needed_act = false;
    };

    int bankIndex(const DramCoord &c) const;
    int laneIndex(const DramCoord &c) const;
    BankState &bank(const DramCoord &c) { return banks_[bankIndex(c)]; }

    /** Earliest tick an ACT to @p c could issue, >= now. */
    Tick actReadyAt(const DramCoord &c, Tick now) const;

    /** Number of queued requests targeting (bank of @p c, @p row). */
    u32 rowDemand(const DramCoord &c, u64 row) const;
    u64 demandKey(int bank_idx, u64 row) const;

    void evaluate();
    void scheduleEval(Tick when);
    void record(Tick t, DramCmd cmd, const DramCoord &c);
    void touchActivity(Tick t);

    Tick clk(int cycles) const { return static_cast<Tick>(cycles) * cfg_.tck_ps; }

    EventQueue &eq_;
    DramConfig cfg_;
    int channel_;

    std::vector<BankState> banks_;
    std::vector<Tick> lane_free_;           ///< per data-lane group
    std::vector<std::deque<Tick>> faw_;     ///< ACT window per rank
    std::vector<Tick> rrd_rank_;            ///< last ACT per rank
    std::vector<Tick> rrd_bg_;              ///< last ACT per (rank, bg)
    Tick cmd_bus_free_ = 0;
    Tick last_col_tick_ = 0;
    int last_col_bg_ = -1;

    std::deque<Pending> queue_;
    /** Queued-request count per (bank, row), for O(1) policy checks. */
    std::unordered_map<u64, u32> row_demand_;
    bool eval_pending_ = false;
    Tick eval_tick_ = 0;
    u64 eval_gen_ = 0; ///< stale-event filter for scheduleEval

    DramStats stats_;
    bool log_enabled_ = false;
    std::vector<CommandRecord> log_;
};

} // namespace exma

#endif // EXMA_DRAM_CONTROLLER_HH
