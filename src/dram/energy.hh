/**
 * @file
 * DRAMPower-style energy model: per-command energies derived from DDR4
 * IDD current classes plus a background term proportional to chip-time.
 * The paper models its 384 GB DDR4 system at ~72 W (Table II "Mem
 * Power"); these defaults land in that regime.
 */

#ifndef EXMA_DRAM_ENERGY_HH
#define EXMA_DRAM_ENERGY_HH

#include "common/types.hh"
#include "dram/controller.hh"

namespace exma {

struct DramEnergyParams
{
    /** ACT+PRE energy for a full-row activation across a rank (nJ). */
    double act_nj = 18.0;
    /** One 64-byte read burst incl. chip I/O (nJ). */
    double rd_nj = 11.0;
    /** One 64-byte write burst (nJ). */
    double wr_nj = 12.0;
    /** Background (standby + refresh blend) per chip (mW). */
    double background_mw_per_chip = 90.0;
};

struct DramEnergyReport
{
    double act_j = 0.0;
    double rw_j = 0.0;
    double background_j = 0.0;

    double chipJoules() const { return act_j + rw_j + background_j * 0.85; }
    double ioJoules() const { return background_j * 0.15 + rw_j * 0.3; }
    double totalJoules() const { return act_j + rw_j + background_j; }

    /** Average power over the elapsed window (W). */
    double avg_power_w = 0.0;
};

/**
 * Energy for a command mix over @p elapsed simulated time.
 * @param total_chips all chips in the system (background scales with
 *        capacity — the dominant term for a 384 GB system).
 * @param chip_mode   MEDAL-style partial-row activations cost
 *        1/chips_per_rank of a full-row ACT.
 */
DramEnergyReport dramEnergy(const DramStats &stats, Tick elapsed,
                            const DramConfig &cfg,
                            const DramEnergyParams &params,
                            bool chip_mode = false);

/** Total chips in the configured system. */
int totalChips(const DramConfig &cfg);

} // namespace exma

#endif // EXMA_DRAM_ENERGY_HH
