#include "dram/energy.hh"

namespace exma {

int
totalChips(const DramConfig &cfg)
{
    return cfg.channels * cfg.dimms_per_channel * cfg.ranks_per_dimm *
           cfg.chips_per_rank;
}

DramEnergyReport
dramEnergy(const DramStats &stats, Tick elapsed, const DramConfig &cfg,
           const DramEnergyParams &params, bool chip_mode)
{
    DramEnergyReport r;
    const double act_scale =
        chip_mode ? 1.0 / static_cast<double>(cfg.chips_per_rank) : 1.0;
    r.act_j = static_cast<double>(stats.activates) * params.act_nj *
              act_scale * 1e-9;

    const double bytes_scale =
        chip_mode ? 1.0 / static_cast<double>(cfg.chips_per_rank) : 1.0;
    r.rw_j = (static_cast<double>(stats.reads) * params.rd_nj +
              static_cast<double>(stats.writes) * params.wr_nj) *
             bytes_scale * 1e-9;

    const double seconds = static_cast<double>(elapsed) * 1e-12;
    r.background_j = params.background_mw_per_chip * 1e-3 *
                     static_cast<double>(totalChips(cfg)) * seconds;

    if (seconds > 0.0)
        r.avg_power_w = r.totalJoules() / seconds;
    return r;
}

} // namespace exma
