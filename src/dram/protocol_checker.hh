/**
 * @file
 * Offline DDR4 protocol checker: replays a controller's command log and
 * verifies every inter-command timing constraint independently of the
 * controller's own bookkeeping. Used by the test suite to prove the
 * timing model honours the JEDEC-style rules it claims to.
 */

#ifndef EXMA_DRAM_PROTOCOL_CHECKER_HH
#define EXMA_DRAM_PROTOCOL_CHECKER_HH

#include <string>
#include <vector>

#include "dram/controller.hh"

namespace exma {

struct ProtocolViolation
{
    size_t index = 0;     ///< offending command's position in the log
    std::string rule;     ///< e.g.\ "tRCD"
    std::string detail;
};

class ProtocolChecker
{
  public:
    explicit ProtocolChecker(const DramConfig &cfg) : cfg_(cfg) {}

    /** Check a single channel's command log. */
    std::vector<ProtocolViolation>
    check(const std::vector<CommandRecord> &log) const;

  private:
    DramConfig cfg_;
};

} // namespace exma

#endif // EXMA_DRAM_PROTOCOL_CHECKER_HH
