/**
 * @file
 * Multi-channel DDR4 memory system facade: address decoding, per-channel
 * controllers, aggregate statistics, bandwidth-utilization and latency
 * summaries (Fig. 21's metric), and the energy report hook.
 */

#ifndef EXMA_DRAM_DRAM_SYSTEM_HH
#define EXMA_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/event_sim.hh"
#include "dram/controller.hh"

namespace exma {

class DramSystem
{
  public:
    DramSystem(EventQueue &eq, const DramConfig &cfg);

    const DramConfig &config() const { return cfg_; }

    /** Queue a transaction by physical address. */
    void access(u64 addr, bool is_write,
                std::function<void(Tick)> on_complete,
                int chip = -1);

    /** Queue a pre-decoded transaction. */
    void accessCoord(DramRequest req);

    bool idle() const;

    /** Aggregate statistics over all channels. */
    DramStats stats() const;

    /**
     * Fraction of the data-bus capacity carrying bursts over the active
     * window (Fig. 21's "bandwidth utilization").
     */
    double bandwidthUtilization() const;

    /** Mean request latency (arrival to last data beat) in ns. */
    double avgLatencyNs() const;

    /** Row-buffer hit rate over all column accesses. */
    double rowHitRate() const;

    ChannelController &channel(int i) { return *channels_[static_cast<size_t>(i)]; }

    const AddressMapper &mapper() const { return mapper_; }

  private:
    EventQueue &eq_;
    DramConfig cfg_;
    AddressMapper mapper_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
};

} // namespace exma

#endif // EXMA_DRAM_DRAM_SYSTEM_HH
