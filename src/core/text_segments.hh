/**
 * @file
 * Segment-mapped sub-references: the geometry that lets an ExmaTable be
 * built over a *non-contiguous* selection of the global reference.
 *
 * A segment list describes a sub-reference assembled from contiguous
 * global slices, concatenated in local coordinate order. The table is
 * built over the concatenation; located matches are translated back to
 * global coordinates through the segment list, and matches that span
 * the junction between two concatenated slices — text that never
 * occurs in the real reference — are filtered out.
 *
 * This is the software seam of the EXMA paper's channel-parallel
 * placement (§V): a k-mer-prefix shard owns every text position whose
 * leading p bases fall in its prefix range, which is a scattered set of
 * positions, not a slice. Each owned position contributes a
 * max_query_len window of following context; the union of those
 * windows, merged into maximal runs, is exactly the segment list the
 * shard's table is built over.
 */

#ifndef EXMA_CORE_TEXT_SEGMENTS_HH
#define EXMA_CORE_TEXT_SEGMENTS_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace exma {

/** One contiguous global slice of a segment-mapped sub-reference. */
struct TextSegment
{
    u64 global_begin = 0; ///< first base in the global reference
    u64 local_begin = 0;  ///< first base in the concatenated sub-reference
    u64 length = 0;       ///< slice length in bases

    u64 global_end() const { return global_begin + length; }
    u64 local_end() const { return local_begin + length; }
    bool operator==(const TextSegment &) const = default;
};

/**
 * Check that @p segments form a well-formed segment map over a
 * @p ref_len-base reference: non-empty, every slice non-empty and
 * within [0, ref_len), local coordinates dense from 0 in order, and
 * global slices strictly increasing without overlap (so every global
 * position appears at most once and translated hit sets need no
 * per-table dedup). Panics on violation.
 */
void validateSegments(const std::vector<TextSegment> &segments, u64 ref_len);

/** Total local length of a segment map (sum of slice lengths). */
u64 segmentsLocalLength(const std::vector<TextSegment> &segments);

/** Concatenate the global slices of @p segments into a local reference. */
std::vector<Base> extractSegments(const std::vector<Base> &ref,
                                  const std::vector<TextSegment> &segments);

/**
 * Translate a local match position back to global coordinates.
 * Returns false — a junction artifact — when the @p query_len bases
 * starting at @p local_pos do not fit inside one segment; otherwise
 * stores the global position in @p global_pos.
 */
bool translateLocalMatch(const std::vector<TextSegment> &segments,
                         u64 local_pos, u64 query_len, u64 *global_pos);

} // namespace exma

#endif // EXMA_CORE_TEXT_SEGMENTS_HH
